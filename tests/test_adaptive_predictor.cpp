// The combined ARMA + SPRT pipeline (forecast/adaptive_predictor.hpp):
// rebuild-on-trend-break behaviour of Sec. IV.
#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "forecast/adaptive_predictor.hpp"

namespace liquid3d {
namespace {

AdaptivePredictorConfig fast_config() {
  AdaptivePredictorConfig cfg;
  cfg.arma.ar_order = 4;
  cfg.arma.ma_order = 0;
  cfg.window_capacity = 64;
  cfg.input_smoothing = 1.0;  // raw signal for deterministic tests
  return cfg;
}

TEST(AdaptivePredictor, TracksStationarySignal) {
  AdaptivePredictor p(fast_config());
  Rng rng(3);
  for (int i = 0; i < 80; ++i) p.observe(70.0 + 0.1 * rng.normal());
  ASSERT_TRUE(p.ready());
  EXPECT_NEAR(p.forecast(), 70.0, 0.5);
  EXPECT_EQ(p.rebuild_count(), 0u);
}

TEST(AdaptivePredictor, TrendBreakTriggersSprtAndRebuild) {
  // The paper's day/night scenario: a sudden sustained level change must
  // alarm the SPRT and reconstruct the ARMA model.
  AdaptivePredictor p(fast_config());
  Rng rng(4);
  for (int i = 0; i < 80; ++i) p.observe(65.0 + 0.1 * rng.normal());
  ASSERT_TRUE(p.ready());
  ASSERT_EQ(p.sprt_alarm_count(), 0u);
  // Enough post-break samples to flush the fitting window (capacity 64).
  for (int i = 0; i < 70; ++i) p.observe(78.0 + 0.1 * rng.normal());
  EXPECT_GE(p.sprt_alarm_count(), 1u);
  EXPECT_GE(p.rebuild_count(), 1u);
  // After the rebuild the forecast follows the new level.
  EXPECT_NEAR(p.forecast(), 78.0, 1.5);
}

TEST(AdaptivePredictor, ServesOldModelWhileRebuilding) {
  AdaptivePredictorConfig cfg = fast_config();
  cfg.rebuild_delay_samples = 10;
  AdaptivePredictor p(cfg);
  Rng rng(5);
  for (int i = 0; i < 80; ++i) p.observe(65.0 + 0.05 * rng.normal());
  ASSERT_TRUE(p.ready());
  // Jump; within the rebuild delay the forecast is still usable (finite,
  // between the two levels).
  for (int i = 0; i < 5; ++i) p.observe(80.0 + 0.05 * rng.normal());
  const double f = p.forecast();
  EXPECT_TRUE(std::isfinite(f));
  EXPECT_GT(f, 60.0);
  EXPECT_LT(f, 90.0);
}

TEST(AdaptivePredictor, FallsBackToLastValueBeforeReady) {
  AdaptivePredictor p(fast_config());
  p.observe(55.0);
  EXPECT_FALSE(p.ready());
  EXPECT_DOUBLE_EQ(p.forecast(), 55.0);
}

TEST(AdaptivePredictor, SmoothingReducesForecastJitter) {
  // Same noisy signal through a smoothing and a non-smoothing pipeline: the
  // smoothed forecasts have lower variance.
  AdaptivePredictorConfig raw = fast_config();
  AdaptivePredictorConfig smooth = fast_config();
  smooth.input_smoothing = 0.3;
  AdaptivePredictor p_raw(raw);
  AdaptivePredictor p_smooth(smooth);
  Rng rng(6);
  double var_raw = 0.0;
  double var_smooth = 0.0;
  int count = 0;
  for (int i = 0; i < 300; ++i) {
    const double v = 70.0 + 2.0 * rng.normal();
    p_raw.observe(v);
    p_smooth.observe(v);
    if (i > 100) {
      var_raw += (p_raw.forecast() - 70.0) * (p_raw.forecast() - 70.0);
      var_smooth += (p_smooth.forecast() - 70.0) * (p_smooth.forecast() - 70.0);
      ++count;
    }
  }
  EXPECT_LT(var_smooth, var_raw);
}

class RebuildDelaySweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(RebuildDelaySweep, RebuildAlwaysCompletesAfterDelay) {
  AdaptivePredictorConfig cfg = fast_config();
  cfg.rebuild_delay_samples = GetParam();
  AdaptivePredictor p(cfg);
  Rng rng(7);
  for (int i = 0; i < 80; ++i) p.observe(60.0 + 0.05 * rng.normal());
  const std::size_t before = p.rebuild_count();
  for (int i = 0; i < 60 + static_cast<int>(GetParam()); ++i) {
    p.observe(75.0 + 0.05 * rng.normal());
  }
  EXPECT_GT(p.rebuild_count(), before);
}

INSTANTIATE_TEST_SUITE_P(Delays, RebuildDelaySweep, ::testing::Values(0, 2, 5, 15));

}  // namespace
}  // namespace liquid3d
