// Cross-module property tests: invariants that must hold across the whole
// (setting x utilization x system) plane, i.e. everything the controller's
// characterization relies on.
#include <gtest/gtest.h>

#include "control/characterize.hpp"
#include "control/flow_lut.hpp"
#include "coolant/flow.hpp"

namespace liquid3d {
namespace {

ThermalModelParams tiny_grid() {
  ThermalModelParams p;
  p.grid_rows = 8;
  p.grid_cols = 9;
  return p;
}

struct PlaneCase {
  std::size_t layer_pairs;
  double utilization;
};

class PlaneSweep : public ::testing::TestWithParam<PlaneCase> {};

TEST_P(PlaneSweep, SteadyEnergyBalanceHoldsEverywhere) {
  // Property: at every operating point of either system, the coolant
  // removes exactly the injected power in steady state.
  const auto [pairs, u] = GetParam();
  CharacterizationHarness h(make_niagara_stack(pairs, CoolingType::kLiquid),
                            tiny_grid(), PowerModelParams{}, PumpModel::laing_ddc(),
                            FlowDeliveryMode::kPressureLimited);
  for (std::size_t s = 0; s < h.setting_count(); s += 2) {
    (void)h.steady_tmax(u, s);
    double absorbed = 0.0;
    for (std::size_t k = 0; k < h.model().stack().cavity_count(); ++k) {
      absorbed += h.model().cavity_absorbed_power(k);
    }
    const double injected = h.model().total_power();
    EXPECT_NEAR(absorbed, injected, 0.02 * injected)
        << "pairs=" << pairs << " u=" << u << " s=" << s;
  }
}

TEST_P(PlaneSweep, TmaxBoundedBelowByInletAboveByRunawayCheck) {
  const auto [pairs, u] = GetParam();
  CharacterizationHarness h(make_niagara_stack(pairs, CoolingType::kLiquid),
                            tiny_grid(), PowerModelParams{}, PumpModel::laing_ddc(),
                            FlowDeliveryMode::kPressureLimited);
  for (std::size_t s = 0; s < h.setting_count(); s += 2) {
    const double t = h.steady_tmax(u, s);
    EXPECT_GT(t, tiny_grid().inlet_temperature) << "s=" << s;
    EXPECT_LT(t, 450.0) << "s=" << s;  // no numerical blow-up anywhere
  }
}

INSTANTIATE_TEST_SUITE_P(OperatingPlane, PlaneSweep,
                         ::testing::Values(PlaneCase{1, 0.0}, PlaneCase{1, 0.5},
                                           PlaneCase{1, 1.0}, PlaneCase{2, 0.0},
                                           PlaneCase{2, 0.5}, PlaneCase{2, 1.0}));

TEST(Properties, LutFromRealSystemIsInternallyConsistent) {
  // The controller's core soundness property, on the real (small-grid)
  // system: if the LUT says setting k suffices for an observation made at
  // setting s, then the steady temperature at setting k actually meets the
  // characterization target.
  CharacterizationHarness h(make_2layer_system(), tiny_grid(), PowerModelParams{},
                            PumpModel::laing_ddc(),
                            FlowDeliveryMode::kPressureLimited);
  const double target = 78.0;
  const FlowLut lut = FlowLut::characterize(
      [&](double u, std::size_t s) { return h.steady_tmax(u, s); },
      h.setting_count(), target, 13);

  for (double u : {0.0, 0.3, 0.7, 1.0}) {
    for (std::size_t s_cur = 0; s_cur < h.setting_count(); ++s_cur) {
      const double observed = h.steady_tmax(u, s_cur);
      const std::size_t required = lut.required_setting(s_cur, observed);
      // Steady state at the required setting honours the target (within the
      // characterization sweep's grid resolution).
      EXPECT_LE(h.steady_tmax(u, required), target + 1.0)
          << "u=" << u << " s_cur=" << s_cur << " required=" << required;
    }
  }
}

TEST(Properties, FourLayerRunsHotterThanTwoLayerAtSameSetting) {
  // Fig. 5's system-size ordering, asserted across the plane: the 4-layer
  // system (double the power, same per-cavity flow) is hotter everywhere.
  CharacterizationHarness h2(make_2layer_system(), tiny_grid(), PowerModelParams{},
                             PumpModel::laing_ddc(),
                             FlowDeliveryMode::kPressureLimited);
  CharacterizationHarness h4(make_4layer_system(), tiny_grid(), PowerModelParams{},
                             PumpModel::laing_ddc(),
                             FlowDeliveryMode::kPressureLimited);
  for (double u : {0.2, 0.6, 1.0}) {
    for (std::size_t s : {std::size_t{1}, std::size_t{3}}) {
      EXPECT_GT(h4.steady_tmax(u, s), h2.steady_tmax(u, s))
          << "u=" << u << " s=" << s;
    }
  }
}

}  // namespace
}  // namespace liquid3d
