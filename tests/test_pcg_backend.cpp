// Iterative thermal backend (thermal/solver/{sparse_matrix,pcg,backend}):
// CSR assembly, preconditioned CG against the dense and banded direct
// solvers, warm starts, the bandwidth cost-model cutover, and
// direct-vs-PCG agreement of full ThermalModel3D transient and steady
// solves across grids, stacks, and flow vectors.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <vector>

#include "common/error.hpp"
#include "common/linalg.hpp"
#include "common/rng.hpp"
#include "coolant/flow.hpp"
#include "geom/stack.hpp"
#include "thermal/batch_stepper.hpp"
#include "thermal/model3d.hpp"
#include "thermal/solver/backend.hpp"
#include "thermal/solver/pcg.hpp"
#include "thermal/solver/sparse_matrix.hpp"

namespace liquid3d {
namespace {

/// Random SPD conduction-style network stamped into both a SparseMatrix and
/// a dense mirror (same generator family as the banded solver tests).
SparseMatrix random_network(std::size_t n, std::size_t reach, Rng& rng,
                            Matrix* dense = nullptr) {
  SparseMatrix m(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double c = 0.5 + rng.uniform();
    m.add_diagonal(i, c);
    if (dense) (*dense)(i, i) += c;
  }
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < std::min(n, i + reach + 1); ++j) {
      if (!rng.bernoulli(0.3)) continue;
      const double g = rng.uniform(0.1, 2.0);
      m.add_coupling(i, j, g);
      if (dense) {
        (*dense)(i, i) += g;
        (*dense)(j, j) += g;
        (*dense)(i, j) -= g;
        (*dense)(j, i) -= g;
      }
    }
  }
  return m;
}

TEST(SparseMatrix, MultiplyMatchesDense) {
  constexpr std::size_t n = 70;
  Rng rng(5);
  Matrix dense(n, n);
  SparseMatrix m = random_network(n, 9, rng, &dense);
  m.finalize();
  ASSERT_TRUE(m.finalized());

  std::vector<double> x(n);
  for (double& v : x) v = rng.uniform(-3, 3);
  std::vector<double> y(n);
  m.multiply(x.data(), y.data());
  for (std::size_t i = 0; i < n; ++i) {
    double ref = 0.0;
    for (std::size_t j = 0; j < n; ++j) ref += dense(i, j) * x[j];
    EXPECT_NEAR(y[i], ref, 1e-12 * (1.0 + std::abs(ref))) << "row " << i;
  }
}

TEST(SparseMatrix, DuplicateStampsMergeAndColumnsSort) {
  SparseMatrix m(3);
  m.add_diagonal(0, 1.0);
  m.add_diagonal(1, 1.0);
  m.add_diagonal(2, 1.0);
  m.add_coupling(0, 2, 2.0);
  m.add_coupling(2, 0, 3.0);  // duplicate of (0,2), reversed order
  m.add_coupling(1, 2, 1.0);
  m.finalize();
  // Row 0: diag 1 + 5 coupling = 6; off-diag (0,2) = -5 merged.
  EXPECT_DOUBLE_EQ(m.diagonal(0), 6.0);
  EXPECT_DOUBLE_EQ(m.diagonal(2), 1.0 + 5.0 + 1.0);
  std::vector<double> x = {1.0, 0.0, 1.0};
  std::vector<double> y(3);
  m.multiply(x.data(), y.data());
  EXPECT_DOUBLE_EQ(y[0], 6.0 - 5.0);
  EXPECT_DOUBLE_EQ(y[1], -1.0);
  EXPECT_DOUBLE_EQ(y[2], -5.0 + 7.0);
  // Columns within each row are sorted ascending.
  for (std::size_t i = 0; i < 3; ++i) {
    for (std::size_t p = m.row_ptr()[i] + 1; p < m.row_ptr()[i + 1]; ++p) {
      EXPECT_LT(m.col()[p - 1], m.col()[p]);
    }
  }
}

TEST(Pcg, AllPreconditionersMatchDenseSolve) {
  constexpr std::size_t n = 90;
  for (const PcgPreconditioner pre :
       {PcgPreconditioner::kJacobi, PcgPreconditioner::kSsor,
        PcgPreconditioner::kIncompleteCholesky}) {
    Rng rng(11);
    Matrix dense(n, n);
    SparseMatrix m = random_network(n, 7, rng, &dense);
    m.finalize();
    PcgParams params;
    params.preconditioner = pre;
    PcgSolver solver(std::move(m), params);

    std::vector<double> b(n);
    for (double& v : b) v = rng.uniform(-5, 5);
    std::vector<double> x(n, 0.0);
    const PcgSummary s = solver.solve(b.data(), x.data());
    EXPECT_TRUE(s.converged) << to_string(pre);
    EXPECT_LE(s.relative_residual, 1e-8);

    // True residual, independently of the recurrence estimate.
    std::vector<double> ax(n);
    solver.matrix().multiply(x.data(), ax.data());
    double r2 = 0.0;
    double b2 = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      r2 += (b[i] - ax[i]) * (b[i] - ax[i]);
      b2 += b[i] * b[i];
    }
    EXPECT_LE(std::sqrt(r2 / b2), 1e-8) << to_string(pre);

    const std::vector<double> x_ref = solve_linear(dense, b);
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_NEAR(x[i], x_ref[i], 1e-7 * (1.0 + std::abs(x_ref[i])))
          << to_string(pre) << " row " << i;
    }
  }
}

TEST(Pcg, PreconditionersRankAsExpected) {
  // IC(0) must not iterate more than SSOR, which must not iterate more
  // than plain Jacobi — on the stencil-like networks the backend serves.
  constexpr std::size_t n = 200;
  std::vector<std::size_t> iters;
  for (const PcgPreconditioner pre :
       {PcgPreconditioner::kIncompleteCholesky, PcgPreconditioner::kSsor,
        PcgPreconditioner::kJacobi}) {
    Rng rng(23);
    SparseMatrix m = random_network(n, 5, rng);
    m.finalize();
    PcgParams params;
    params.preconditioner = pre;
    PcgSolver solver(std::move(m), params);
    std::vector<double> b(n, 1.0);
    std::vector<double> x(n, 0.0);
    const PcgSummary s = solver.solve(b.data(), x.data());
    ASSERT_TRUE(s.converged);
    iters.push_back(s.iterations);
  }
  EXPECT_LE(iters[0], iters[1]);  // ic0 <= ssor
  EXPECT_LE(iters[1], iters[2]);  // ssor <= jacobi
}

TEST(Pcg, WarmStartFromSolutionConvergesInstantly) {
  constexpr std::size_t n = 120;
  Rng rng(31);
  SparseMatrix m = random_network(n, 6, rng);
  m.finalize();
  PcgSolver solver(std::move(m), PcgParams{});
  std::vector<double> b(n);
  for (double& v : b) v = rng.uniform(-2, 2);

  std::vector<double> cold(n, 0.0);
  const PcgSummary first = solver.solve(b.data(), cold.data());
  ASSERT_TRUE(first.converged);
  ASSERT_GE(first.iterations, 1u);

  std::vector<double> warm = cold;  // seed with the solution
  const PcgSummary again = solver.solve(b.data(), warm.data());
  EXPECT_TRUE(again.converged);
  EXPECT_EQ(again.iterations, 0u);
  EXPECT_EQ(solver.solves(), 2u);
}

TEST(Pcg, ZeroRhsReturnsZeroSolution) {
  SparseMatrix m(4);
  for (std::size_t i = 0; i < 4; ++i) m.add_diagonal(i, 2.0);
  m.add_coupling(0, 1, 1.0);
  m.finalize();
  PcgSolver solver(std::move(m), PcgParams{});
  std::vector<double> b(4, 0.0);
  std::vector<double> x(4, 7.0);  // stale guess must be overwritten
  const PcgSummary s = solver.solve(b.data(), x.data());
  EXPECT_TRUE(s.converged);
  for (double v : x) EXPECT_EQ(v, 0.0);
}

// -- Backend selection --------------------------------------------------------

TEST(SolverBackendSelection, AutoFollowsBandwidthCostModel) {
  // Every current grid (b <= 208) stays direct; paper-native bands go PCG.
  EXPECT_EQ(resolve_solver_backend(SolverBackend::kAuto, 1196, 52),
            SolverBackend::kDirect);
  EXPECT_EQ(resolve_solver_backend(SolverBackend::kAuto, 4784, 208),
            SolverBackend::kDirect);
  EXPECT_EQ(resolve_solver_backend(SolverBackend::kAuto, 200000, 1000),
            SolverBackend::kPcg);
  EXPECT_EQ(resolve_solver_backend(SolverBackend::kAuto, 400000, 2000),
            SolverBackend::kPcg);
  // Tiny systems clamp the bandwidth to n-1 — always direct.
  EXPECT_EQ(resolve_solver_backend(SolverBackend::kAuto, 16, 5000),
            SolverBackend::kDirect);
}

TEST(SolverBackendSelection, ExplicitRequestsPassThrough) {
  EXPECT_EQ(resolve_solver_backend(SolverBackend::kDirect, 200000, 1000),
            SolverBackend::kDirect);
  EXPECT_EQ(resolve_solver_backend(SolverBackend::kPcg, 100, 5),
            SolverBackend::kPcg);
}

TEST(SolverBackendSelection, NamesRoundTrip) {
  for (SolverBackend b :
       {SolverBackend::kAuto, SolverBackend::kDirect, SolverBackend::kPcg}) {
    EXPECT_EQ(solver_backend_from_name(to_string(b)), b);
  }
  EXPECT_THROW((void)solver_backend_from_name("bogus"), ConfigError);
  for (PcgPreconditioner p :
       {PcgPreconditioner::kJacobi, PcgPreconditioner::kSsor,
        PcgPreconditioner::kIncompleteCholesky}) {
    EXPECT_EQ(pcg_preconditioner_from_name(to_string(p)), p);
  }
  EXPECT_THROW((void)pcg_preconditioner_from_name("bogus"), ConfigError);
}

// -- Model-level direct vs PCG agreement --------------------------------------

ThermalModel3D make_backend_model(SolverBackend backend, std::size_t rows,
                                  std::size_t cols, std::size_t pairs,
                                  CoolingType cooling = CoolingType::kLiquid) {
  ThermalModelParams p;
  p.grid_rows = rows;
  p.grid_cols = cols;
  p.solver_backend = backend;
  ThermalModel3D m(make_niagara_stack(pairs, cooling), p);
  const Floorplan& fp = m.stack().layer(0).floorplan;
  std::vector<double> watts(fp.block_count(), 0.0);
  for (std::size_t b = 0; b < fp.block_count(); ++b) {
    if (fp.block(b).type == BlockType::kCore) watts[b] = 2.8;
  }
  m.set_block_power(0, watts);
  return m;
}

TEST(PcgBackend, TransientStepsMatchDirectAcrossGrids) {
  struct Case {
    std::size_t rows, cols, pairs;
  };
  for (const Case c : {Case{8, 9, 1}, Case{6, 7, 2}, Case{12, 13, 1}}) {
    ThermalModel3D direct =
        make_backend_model(SolverBackend::kDirect, c.rows, c.cols, c.pairs);
    ThermalModel3D pcg =
        make_backend_model(SolverBackend::kPcg, c.rows, c.cols, c.pairs);
    EXPECT_EQ(direct.solver_backend(), SolverBackend::kDirect);
    EXPECT_EQ(pcg.solver_backend(), SolverBackend::kPcg);
    for (ThermalModel3D* m : {&direct, &pcg}) {
      m->set_cavity_flow(VolumetricFlow::from_ml_per_min(18.0));
      m->initialize(45.0);
      for (int i = 0; i < 25; ++i) m->step(0.1);
    }
    EXPECT_TRUE(pcg.last_pcg().converged);
    EXPECT_LE(pcg.last_pcg().relative_residual, 1e-8);
    for (std::size_t l = 0; l < direct.layer_count(); ++l) {
      for (std::size_t cell = 0; cell < direct.grid().cell_count(); ++cell) {
        ASSERT_NEAR(pcg.cell_temperature(l, cell),
                    direct.cell_temperature(l, cell), 5e-6)
            << c.rows << "x" << c.cols << " pairs=" << c.pairs << " layer " << l
            << " cell " << cell;
      }
    }
  }
}

TEST(PcgBackend, TransientMatchesDirectOnAirStack) {
  ThermalModel3D direct = make_backend_model(SolverBackend::kDirect, 8, 9, 1,
                                             CoolingType::kAir);
  ThermalModel3D pcg =
      make_backend_model(SolverBackend::kPcg, 8, 9, 1, CoolingType::kAir);
  for (ThermalModel3D* m : {&direct, &pcg}) {
    m->initialize(45.0);
    for (int i = 0; i < 30; ++i) m->step(0.1);
  }
  EXPECT_NEAR(pcg.max_temperature(), direct.max_temperature(), 5e-6);
  EXPECT_NEAR(pcg.sink_temperature(), direct.sink_temperature(), 5e-6);
}

TEST(PcgBackend, SteadyStateMatchesDirectAcrossFlowsAndVectors) {
  for (const double flow_ml : {8.0, 25.0, 45.0}) {
    ThermalModel3D direct = make_backend_model(SolverBackend::kDirect, 9, 10, 1);
    ThermalModel3D pcg = make_backend_model(SolverBackend::kPcg, 9, 10, 1);
    for (ThermalModel3D* m : {&direct, &pcg}) {
      m->set_cavity_flow(VolumetricFlow::from_ml_per_min(flow_ml));
      m->initialize(45.0);
      m->solve_steady_state();
    }
    // Direct backend solves the fluid-eliminated system exactly; the PCG
    // backend stops at the pseudo-transient 1e-4 K criterion (same bound
    // the direct-vs-continuation contract uses).
    EXPECT_NEAR(pcg.max_temperature(), direct.max_temperature(), 5e-3)
        << "flow " << flow_ml;
    for (std::size_t cav = 0; cav < direct.stack().cavity_count(); ++cav) {
      EXPECT_NEAR(pcg.fluid_outlet_temperature(cav),
                  direct.fluid_outlet_temperature(cav), 5e-3);
    }
  }

  // Skewed per-cavity flow vector (valve-network operating point).
  ThermalModel3D direct = make_backend_model(SolverBackend::kDirect, 9, 10, 1);
  ThermalModel3D pcg = make_backend_model(SolverBackend::kPcg, 9, 10, 1);
  const VolumetricFlow f = VolumetricFlow::from_ml_per_min(20.0);
  const std::vector<VolumetricFlow> skew = {f * 1.4, f * 1.0, f * 0.6};
  for (ThermalModel3D* m : {&direct, &pcg}) {
    m->set_cavity_flow(skew);
    m->initialize(45.0);
    m->solve_steady_state();
  }
  EXPECT_NEAR(pcg.max_temperature(), direct.max_temperature(), 5e-3);
}

TEST(PcgBackend, CachesSystemsPerDt) {
  ThermalModel3D m = make_backend_model(SolverBackend::kPcg, 6, 7, 1);
  m.set_cavity_flow(VolumetricFlow::from_ml_per_min(20.0));
  m.initialize(45.0);
  m.step(0.05);
  m.step(0.1);
  m.step(0.05);
  m.step(0.1);
  EXPECT_EQ(m.pcg_cache().misses(), 2u);
  EXPECT_GE(m.pcg_cache().hits(), 2u);
  EXPECT_EQ(m.factorization_cache().misses(), 0u);  // direct path never ran
}

TEST(PcgBackend, FingerprintSeparatesBackendsAndStepperFallsBack) {
  ThermalModel3D direct = make_backend_model(SolverBackend::kDirect, 6, 7, 1);
  ThermalModel3D pcg_a = make_backend_model(SolverBackend::kPcg, 6, 7, 1);
  ThermalModel3D pcg_b = make_backend_model(SolverBackend::kPcg, 6, 7, 1);
  ThermalModel3D serial = make_backend_model(SolverBackend::kPcg, 6, 7, 1);
  // Same topology, different backend: must not land in one batch group.
  EXPECT_NE(direct.topology_fingerprint(), pcg_a.topology_fingerprint());
  EXPECT_EQ(pcg_a.topology_fingerprint(), pcg_b.topology_fingerprint());

  BatchThermalStepper stepper;
  std::vector<ThermalModel3D*> mixed = {&direct, &pcg_a};
  EXPECT_THROW(stepper.step(mixed, 0.05), ConfigError);

  for (ThermalModel3D* m : {&pcg_a, &pcg_b, &serial}) {
    m->set_cavity_flow(VolumetricFlow::from_ml_per_min(15.0));
    m->initialize(45.0);
  }
  std::vector<ThermalModel3D*> batch = {&pcg_a, &pcg_b};
  for (int i = 0; i < 10; ++i) {
    stepper.step(batch, 0.05);
    serial.step(0.05);
  }
  EXPECT_EQ(stepper.shared_solves(), 0u);  // serial fallback: nothing shared
  for (std::size_t l = 0; l < serial.layer_count(); ++l) {
    for (std::size_t cell = 0; cell < serial.grid().cell_count(); ++cell) {
      ASSERT_EQ(pcg_a.cell_temperature(l, cell), serial.cell_temperature(l, cell));
      ASSERT_EQ(pcg_b.cell_temperature(l, cell), serial.cell_temperature(l, cell));
    }
  }
}

}  // namespace
}  // namespace liquid3d
