// TALB thermal weight tables (control/talb_weights.hpp).
#include <gtest/gtest.h>

#include <limits>
#include <numeric>

#include "common/error.hpp"
#include "control/talb_weights.hpp"

namespace liquid3d {
namespace {

TEST(TalbWeights, WeightsFromTempsNormalizeToMeanOne) {
  const std::vector<double> temps = {70.0, 75.0, 80.0, 95.0};
  const std::vector<double> w = TalbWeightTable::weights_from_temps(temps, 45.0);
  ASSERT_EQ(w.size(), 4u);
  const double mean = std::accumulate(w.begin(), w.end(), 0.0) / 4.0;
  EXPECT_NEAR(mean, 1.0, 1e-9);
}

TEST(TalbWeights, HotterCoresGetLargerWeights) {
  // A thermally disadvantaged core (hotter under uniform load) must look
  // "longer" to the balancer, i.e. weight > 1 (Sec. IV: inverse balanced
  // power, p_i ~ 1/R_i).
  const std::vector<double> temps = {60.0, 70.0, 80.0, 90.0};
  const std::vector<double> w = TalbWeightTable::weights_from_temps(temps, 45.0);
  for (std::size_t i = 1; i < w.size(); ++i) EXPECT_GT(w[i], w[i - 1]);
  EXPECT_LT(w.front(), 1.0);
  EXPECT_GT(w.back(), 1.0);
}

TEST(TalbWeights, UniformTempsGiveUniformWeights) {
  const std::vector<double> w =
      TalbWeightTable::weights_from_temps({75.0, 75.0, 75.0}, 45.0);
  for (double x : w) EXPECT_NEAR(x, 1.0, 1e-9);
}

TEST(TalbWeights, ReferenceAboveTempsStaysPositive) {
  // Degenerate input (temps below the reference) must not produce zero or
  // negative weights.
  const std::vector<double> w =
      TalbWeightTable::weights_from_temps({40.0, 41.0}, 45.0);
  for (double x : w) EXPECT_GT(x, 0.0);
}

TEST(TalbWeights, BandLookupSelectsByTmax) {
  TalbWeightTable table({{70.0, {1.0, 1.0}},   // below 70
                         {80.0, {1.2, 0.8}},   // 70..80
                         {std::numeric_limits<double>::infinity(), {1.5, 0.5}}});
  EXPECT_EQ(table.lookup(60.0)[0], 1.0);
  EXPECT_EQ(table.lookup(75.0)[0], 1.2);
  EXPECT_EQ(table.lookup(95.0)[0], 1.5);
  // Exactly at a boundary: the next band applies (bands are [.., upper)).
  EXPECT_EQ(table.lookup(70.0)[0], 1.2);
  EXPECT_EQ(table.core_count(), 2u);
}

TEST(TalbWeights, UniformFactoryReducesToLb) {
  const TalbWeightTable t = TalbWeightTable::uniform(8);
  EXPECT_EQ(t.core_count(), 8u);
  for (double w : t.lookup(85.0)) EXPECT_DOUBLE_EQ(w, 1.0);
}

TEST(TalbWeights, ValidationRejectsMalformedBands) {
  using Bands = std::vector<TalbWeightTable::Band>;
  // Empty.
  EXPECT_THROW(TalbWeightTable(Bands{}), ConfigError);
  // Mismatched arity.
  EXPECT_THROW(TalbWeightTable(Bands{{70.0, {1.0, 1.0}}, {80.0, {1.0}}}), ConfigError);
  // Unsorted upper bounds.
  EXPECT_THROW(TalbWeightTable(Bands{{80.0, {1.0}}, {70.0, {1.0}}}), ConfigError);
  // Non-positive weight.
  EXPECT_THROW(TalbWeightTable(Bands{{80.0, {0.0}}}), ConfigError);
}

}  // namespace
}  // namespace liquid3d
