// Evaluation metrics (sim/metrics.hpp): hot spots, gradients, thermal
// cycles (Figs. 6-7).
#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "common/error.hpp"
#include "sim/metrics.hpp"

namespace liquid3d {
namespace {

TEST(ThermalCycleCounter, CountsLargeTriangleWaves) {
  ThermalCycleCounter c;
  // 3 full triangle cycles of 30 C amplitude: 6 swings above the 20 C
  // threshold (each peak->valley and valley->peak counts once).
  for (int cycle = 0; cycle < 3; ++cycle) {
    for (double t = 50.0; t <= 80.0; t += 2.0) c.add_sample(t);
    for (double t = 80.0; t >= 50.0; t -= 2.0) c.add_sample(t);
  }
  c.add_sample(80.0);  // confirm the final valley
  EXPECT_GE(c.cycles_above_threshold(), 5u);
  EXPECT_LE(c.cycles_above_threshold(), 6u);
}

TEST(ThermalCycleCounter, IgnoresSmallSwings) {
  ThermalCycleCounter c;
  for (int cycle = 0; cycle < 10; ++cycle) {
    for (double t = 70.0; t <= 80.0; t += 1.0) c.add_sample(t);  // 10 C swings
    for (double t = 80.0; t >= 70.0; t -= 1.0) c.add_sample(t);
  }
  EXPECT_EQ(c.cycles_above_threshold(), 0u);
}

TEST(ThermalCycleCounter, NoiseWithinBandDoesNotCreateReversals) {
  MetricThresholds thr;
  thr.cycle_noise_band_c = 1.0;
  ThermalCycleCounter c(thr);
  // Rising staircase with +-0.4 C jitter: one long upswing, zero cycles
  // (the jitter must not be mistaken for peaks).
  double t = 50.0;
  for (int i = 0; i < 100; ++i) {
    t += 0.5;
    c.add_sample(t + ((i % 2 == 0) ? 0.4 : -0.4));
  }
  EXPECT_EQ(c.cycles_above_threshold(), 0u);
}

TEST(ThermalCycleCounter, SinusoidCountsOncePerHalfPeriod) {
  ThermalCycleCounter c;
  // 25 C amplitude sine: every half period is a >20 C swing.
  const int periods = 5;
  const int samples_per_period = 40;
  for (int i = 0; i < periods * samples_per_period; ++i) {
    const double phase =
        2.0 * std::numbers::pi * static_cast<double>(i) / samples_per_period;
    c.add_sample(70.0 + 25.0 * std::sin(phase));
  }
  EXPECT_GE(c.cycles_above_threshold(), 2u * periods - 2);
  EXPECT_LE(c.cycles_above_threshold(), 2u * periods);
}

TEST(MetricsCollector, HotspotAndTargetFractions) {
  MetricsCollector m(2);
  // 1 of 4 samples above 85; 3 of 4 above the 80 C target (83, 86, 81).
  m.add_sample({83.0, 70.0}, {83.0, 70.0});
  m.add_sample({86.0, 71.0}, {86.0, 71.0});
  m.add_sample({79.0, 75.0}, {79.0, 75.0});
  m.add_sample({81.0, 60.0}, {81.0, 60.0});
  EXPECT_DOUBLE_EQ(m.hotspot_percent(), 25.0);
  EXPECT_DOUBLE_EQ(m.above_target_percent(), 75.0);
}

TEST(MetricsCollector, SpatialGradientUsesUnitSpread) {
  MetricsCollector m(2);
  m.add_sample({80.0, 70.0, 64.0}, {80.0, 70.0});  // spread 16 > 15
  m.add_sample({80.0, 70.0, 66.0}, {80.0, 70.0});  // spread 14
  EXPECT_DOUBLE_EQ(m.spatial_gradient_percent(), 50.0);
  EXPECT_NEAR(m.gradient_stats().mean(), 15.0, 1e-9);
}

TEST(MetricsCollector, TmaxStatsTrackMaxUnit) {
  MetricsCollector m(1);
  m.add_sample({50.0, 60.0}, {50.0});
  m.add_sample({90.0, 40.0}, {90.0});
  EXPECT_DOUBLE_EQ(m.tmax_stats().max(), 90.0);
  EXPECT_DOUBLE_EQ(m.tmax_stats().mean(), 75.0);
}

TEST(MetricsCollector, CyclesNormalizedPerThousandCoreSamples) {
  MetricsCollector m(1);
  // One 30 C cycle over ~32 samples on a single core.
  for (double t = 50.0; t <= 80.0; t += 2.0) m.add_sample({t}, {t});
  for (double t = 80.0; t >= 50.0; t -= 2.0) m.add_sample({t}, {t});
  m.add_sample({80.0}, {80.0});
  const double per1000 = m.thermal_cycles_per_1000();
  EXPECT_GT(per1000, 0.0);
  EXPECT_LT(per1000, 1000.0);
}

TEST(MetricsCollector, ArityValidated) {
  MetricsCollector m(2);
  EXPECT_THROW(m.add_sample({80.0}, {80.0}), ConfigError);
  EXPECT_THROW(m.add_sample({}, {80.0, 70.0}), ConfigError);
}

TEST(MetricsCollector, CustomThresholds) {
  MetricThresholds thr;
  thr.hotspot_c = 90.0;
  thr.spatial_gradient_c = 5.0;
  MetricsCollector m(1, thr);
  m.add_sample({88.0, 80.0}, {88.0});
  EXPECT_DOUBLE_EQ(m.hotspot_percent(), 0.0);   // 88 < 90
  EXPECT_DOUBLE_EQ(m.spatial_gradient_percent(), 100.0);  // 8 > 5
}

}  // namespace
}  // namespace liquid3d
