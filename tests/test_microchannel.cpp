// Microchannel convective model and hydraulics (coolant/microchannel.hpp),
// checked against the printed Table I values.
#include <gtest/gtest.h>

#include "coolant/microchannel.hpp"
#include "geom/stack.hpp"

namespace liquid3d {
namespace {

MicrochannelModel paper_model() {
  return MicrochannelModel(CavitySpec{}, CoolantProperties::water());
}

TEST(MicrochannelModel, RBeolMatchesTableI) {
  // Table I: R_th-BEOL = t_B / k_BEOL = 12 µm / 2.25 W/(m K)
  //                    = 5.333 (K mm^2)/W.
  const MicrochannelModelParams p{};
  EXPECT_NEAR(p.r_beol_area() * 1e6, 5.333, 0.001);  // K mm^2 / W
}

TEST(MicrochannelModel, HEffFoldsFinGeometry) {
  // h_eff = h * 2 (w_c + t_c) / p = 37132 * 2 * 150µm / 100µm = 3 h.
  const MicrochannelModel m = paper_model();
  EXPECT_NEAR(m.h_eff(), 3.0 * 37132.0, 1.0);
}

TEST(MicrochannelModel, DeltaTConvAtPaperHeatFlux) {
  // At the 200 W/cm^2 the paper cites for interlayer cooling capability,
  // the convective drop is ~18 K — consistent with the quoted
  // ΔT_jmax-in of 60 K budget.
  const MicrochannelModel m = paper_model();
  const double q = 200.0 * 1e4;  // W/m^2
  EXPECT_NEAR(m.delta_t_conv(q), q / (3.0 * 37132.0), 1e-9);
  EXPECT_GT(m.delta_t_conv(q), 15.0);
  EXPECT_LT(m.delta_t_conv(q), 20.0);
}

TEST(MicrochannelModel, RThHeatMatchesEquation5) {
  // R_th-heat = A_heater / (c_p rho V̇); check against hand-computed value
  // for a 1 cm^2 heater at 1 l/min.
  const MicrochannelModel m = paper_model();
  const double r = m.r_th_heat(1e-4, VolumetricFlow::from_l_per_min(1.0));
  const double expected = 1e-4 / (4183.0 * 998.0 * (1e-3 / 60.0));
  EXPECT_NEAR(r, expected, 1e-12);
  // Doubling the flow halves the resistance.
  EXPECT_NEAR(m.r_th_heat(1e-4, VolumetricFlow::from_l_per_min(2.0)), r / 2.0, 1e-12);
}

TEST(MicrochannelModel, HydraulicDiameterOfPaperChannel) {
  // D_h = 2ab/(a+b) = 2*50*100/150 µm = 66.67 µm.
  const MicrochannelModel m = paper_model();
  EXPECT_NEAR(m.hydraulic_diameter(), 66.6667e-6, 1e-9);
}

TEST(MicrochannelModel, FlowIsLaminarAcrossOperatingRange) {
  const MicrochannelModel m = paper_model();
  // Even at the nominal (optimistic) per-cavity upper bound of Table I the
  // channel Reynolds number stays well below transition (~2300).
  const double re = m.reynolds(VolumetricFlow::from_l_per_min(1.0));
  EXPECT_LT(re, 2300.0 * 1.5);
  EXPECT_GT(re, 0.0);
  // At the pressure-limited delivered flows (~5-15 ml/min per cavity) the
  // flow is deeply laminar.
  EXPECT_LT(m.reynolds(VolumetricFlow::from_ml_per_min(15.0)), 60.0);
}

TEST(MicrochannelModel, PressureDropLinearInFlow) {
  const MicrochannelModel m = paper_model();
  const double l = 11.5e-3;  // die width
  const double dp1 = m.pressure_drop(VolumetricFlow::from_ml_per_min(5.0), l);
  const double dp2 = m.pressure_drop(VolumetricFlow::from_ml_per_min(10.0), l);
  EXPECT_NEAR(dp2, 2.0 * dp1, 1e-6 * dp2);  // laminar: dP ~ u
  EXPECT_GT(dp1, 0.0);
}

TEST(MicrochannelModel, DeliveredFlowsSitInDatasheetPressureRange) {
  // The paper quotes 300-600 mbar across the settings; the pressure-limited
  // delivery model is built to invert exactly this relation, so the drops
  // at its flows must land in (or near) that band.
  const MicrochannelModel m = paper_model();
  const double l = 11.5e-3;
  const double dp_lo = m.pressure_drop(VolumetricFlow::from_ml_per_min(3.6), l);
  const double dp_hi = m.pressure_drop(VolumetricFlow::from_ml_per_min(14.5), l);
  EXPECT_GT(dp_lo, 0.10e5);  // > 100 mbar
  EXPECT_LT(dp_hi, 0.70e5);  // < 700 mbar
}

TEST(MicrochannelModel, TransitTimeJustifiesQuasiStaticFluid) {
  // The fluid crosses the die orders of magnitude faster than the 100 ms
  // sampling interval, which is what licenses the algebraic fluid treatment
  // in the thermal model.
  const MicrochannelModel m = paper_model();
  const double t = m.transit_time(VolumetricFlow::from_ml_per_min(3.6), 11.5e-3);
  EXPECT_LT(t, 0.1);   // far below the sampling interval
  EXPECT_GT(t, 1e-5);  // but finite and physical
}

TEST(MicrochannelModel, PerChannelFlowDividesEqually) {
  const MicrochannelModel m = paper_model();
  const VolumetricFlow cavity = VolumetricFlow::from_ml_per_min(65.0);
  EXPECT_NEAR(m.per_channel_flow(cavity).ml_per_min(), 1.0, 1e-12);
}

TEST(CoolantProperties, WaterMatchesTableI) {
  const CoolantProperties w = CoolantProperties::water();
  EXPECT_DOUBLE_EQ(w.heat_capacity, 4183.0);  // Table I c_p
  EXPECT_DOUBLE_EQ(w.density, 998.0);         // Table I rho
  EXPECT_NEAR(w.volumetric_heat_capacity(), 4.175e6, 1e4);
}

}  // namespace
}  // namespace liquid3d
