// 3D stack description (geom/stack.hpp, geom/sites.hpp).
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "geom/sites.hpp"
#include "geom/stack.hpp"

namespace liquid3d {
namespace {

TEST(Stack, TwoLayerSystemMatchesPaper) {
  const Stack3D s = make_2layer_system();
  EXPECT_EQ(s.layer_count(), 2u);
  EXPECT_EQ(s.cavity_count(), 3u);  // below, between, above
  // 195 microchannels in the 2-layer system (Sec. III-A).
  EXPECT_EQ(s.total_channel_count(), 195u);
  EXPECT_EQ(s.total_count(BlockType::kCore), 8u);
  EXPECT_EQ(s.total_count(BlockType::kL2Cache), 4u);
  EXPECT_EQ(s.cooling(), CoolingType::kLiquid);
}

TEST(Stack, FourLayerSystemMatchesPaper) {
  const Stack3D s = make_4layer_system();
  EXPECT_EQ(s.layer_count(), 4u);
  EXPECT_EQ(s.cavity_count(), 5u);
  // 325 microchannels in the 4-layer system (Sec. III-A).
  EXPECT_EQ(s.total_channel_count(), 325u);
  EXPECT_EQ(s.total_count(BlockType::kCore), 16u);
  EXPECT_EQ(s.total_count(BlockType::kL2Cache), 8u);
}

TEST(Stack, AirVariantHasNoCavities) {
  const Stack3D s = make_2layer_system(CoolingType::kAir);
  EXPECT_EQ(s.cavity_count(), 0u);
  EXPECT_EQ(s.total_channel_count(), 0u);
  EXPECT_FALSE(s.has_cavities());
}

TEST(Stack, CavityGeometryMatchesTableI) {
  const CavitySpec c = make_2layer_system().cavity();
  EXPECT_DOUBLE_EQ(c.channel_width, 50e-6);    // w_c
  EXPECT_DOUBLE_EQ(c.channel_height, 100e-6);  // t_c
  EXPECT_DOUBLE_EQ(c.wall_thickness, 50e-6);   // t_s
  EXPECT_DOUBLE_EQ(c.pitch, 100e-6);           // p
  EXPECT_EQ(c.channel_count, 65u);
  EXPECT_DOUBLE_EQ(c.channel_cross_section(), 5e-9);
}

TEST(Stack, TsvSpecMatchesPaper) {
  const TsvSpec t = make_2layer_system().tsvs();
  EXPECT_EQ(t.count, 128u);  // 128 TSVs within the crossbar
  EXPECT_DOUBLE_EQ(t.side, 50e-6);
  EXPECT_NEAR(t.total_area(), 128 * 2.5e-9, 1e-15);
}

TEST(Stack, DieThicknessMatchesTableIII) {
  const Stack3D s = make_2layer_system();
  for (const LayerSpec& l : s.layers()) {
    EXPECT_DOUBLE_EQ(l.die_thickness, 0.15e-3);  // Table III
    EXPECT_DOUBLE_EQ(l.beol_thickness, 12e-6);   // Table I t_B
  }
  EXPECT_DOUBLE_EQ(s.bond_thickness(), 0.02e-3);        // Table III
  EXPECT_DOUBLE_EQ(s.interlayer_resistivity(), 0.25);   // Table III
}

TEST(Stack, MismatchedLayerOutlineRejected) {
  Stack3D s("custom", CoolingType::kAir);
  s.add_layer(LayerSpec{Floorplan("a", 10e-3, 10e-3)});
  EXPECT_THROW(s.add_layer(LayerSpec{Floorplan("b", 11e-3, 10e-3)}), ConfigError);
}

TEST(Stack, CavitiesRejectedOnAirStacks) {
  Stack3D s("custom", CoolingType::kAir);
  s.add_layer(LayerSpec{Floorplan("a", 10e-3, 10e-3)});
  EXPECT_THROW(s.set_cavities(CavitySpec{}), ConfigError);
}

TEST(Sites, CoreEnumerationIsLayerMajor) {
  const Stack3D s = make_4layer_system();
  const std::vector<BlockSite> cores = enumerate_sites(s, BlockType::kCore);
  ASSERT_EQ(cores.size(), 16u);
  // Layers 0 and 2 are core dies in the 4-layer system.
  for (std::size_t i = 0; i < 8; ++i) EXPECT_EQ(cores[i].layer, 0u);
  for (std::size_t i = 8; i < 16; ++i) EXPECT_EQ(cores[i].layer, 2u);
  const std::vector<BlockSite> caches = enumerate_sites(s, BlockType::kL2Cache);
  ASSERT_EQ(caches.size(), 8u);
  EXPECT_EQ(caches.front().layer, 1u);
  EXPECT_EQ(caches.back().layer, 3u);
}

class LayerPairSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(LayerPairSweep, ChannelCountScalesWithCavities) {
  const std::size_t pairs = GetParam();
  const Stack3D s = make_niagara_stack(pairs, CoolingType::kLiquid);
  EXPECT_EQ(s.layer_count(), 2 * pairs);
  EXPECT_EQ(s.cavity_count(), 2 * pairs + 1);
  EXPECT_EQ(s.total_channel_count(), 65 * (2 * pairs + 1));
  EXPECT_EQ(s.total_count(BlockType::kCore), 8 * pairs);
}

INSTANTIATE_TEST_SUITE_P(Pairs, LayerPairSweep, ::testing::Values(1, 2, 3, 4));

}  // namespace
}  // namespace liquid3d
