// RingBuffer semantics (common/ring_buffer.hpp).
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/ring_buffer.hpp"

namespace liquid3d {
namespace {

TEST(RingBuffer, FillsThenEvictsOldest) {
  RingBuffer<int> rb(3);
  EXPECT_TRUE(rb.empty());
  rb.push(1);
  rb.push(2);
  rb.push(3);
  EXPECT_TRUE(rb.full());
  EXPECT_EQ(rb.front(), 1);
  EXPECT_EQ(rb.back(), 3);
  rb.push(4);  // evicts 1
  EXPECT_EQ(rb.size(), 3u);
  EXPECT_EQ(rb.front(), 2);
  EXPECT_EQ(rb.back(), 4);
  EXPECT_EQ(rb[0], 2);
  EXPECT_EQ(rb[1], 3);
  EXPECT_EQ(rb[2], 4);
}

TEST(RingBuffer, ToVectorPreservesOrderAcrossWrap) {
  RingBuffer<int> rb(4);
  for (int i = 0; i < 11; ++i) rb.push(i);
  const std::vector<int> v = rb.to_vector();
  ASSERT_EQ(v.size(), 4u);
  EXPECT_EQ(v, (std::vector<int>{7, 8, 9, 10}));
}

TEST(RingBuffer, ClearResets) {
  RingBuffer<double> rb(2);
  rb.push(1.0);
  rb.push(2.0);
  rb.clear();
  EXPECT_TRUE(rb.empty());
  rb.push(5.0);
  EXPECT_EQ(rb.front(), 5.0);
  EXPECT_EQ(rb.size(), 1u);
}

TEST(RingBuffer, ZeroCapacityRejected) {
  EXPECT_THROW(RingBuffer<int>(0), ConfigError);
}

class RingBufferSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(RingBufferSweep, SizeNeverExceedsCapacityAndOrderHolds) {
  const std::size_t cap = GetParam();
  RingBuffer<std::size_t> rb(cap);
  for (std::size_t i = 0; i < 3 * cap + 7; ++i) {
    rb.push(i);
    EXPECT_LE(rb.size(), cap);
    EXPECT_EQ(rb.back(), i);
    // Elements are consecutive ending at i.
    for (std::size_t j = 0; j < rb.size(); ++j) {
      EXPECT_EQ(rb[j], i - (rb.size() - 1 - j));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Capacities, RingBufferSweep,
                         ::testing::Values(1, 2, 3, 5, 16, 128));

}  // namespace
}  // namespace liquid3d
