// The Fig. 4 runtime loop (control/thermal_manager.hpp): forecast-driven
// commands, safe defaults, fixed-max mode, and the reactive ablation.
#include <gtest/gtest.h>

#include <limits>

#include "common/error.hpp"
#include "control/thermal_manager.hpp"

namespace liquid3d {
namespace {

double analytic_tmax(double u, std::size_t s) {
  const double base[] = {70.0, 62.0, 56.0, 51.0, 47.0};
  const double slope[] = {40.0, 30.0, 30.0, 32.0, 17.0};
  return base[s] + slope[s] * u;
}

FlowLut make_lut() { return FlowLut::characterize(analytic_tmax, 5, 80.0, 101); }

ThermalManagerConfig fast_cfg() {
  ThermalManagerConfig cfg;
  cfg.predictor.arma.ar_order = 3;
  cfg.predictor.arma.ma_order = 0;
  cfg.predictor.window_capacity = 64;
  cfg.predictor.input_smoothing = 1.0;
  return cfg;
}

ThermalManager make_manager(ThermalManagerConfig cfg) {
  return ThermalManager(make_lut(), TalbWeightTable::uniform(8),
                        PumpModel::laing_ddc(), cfg);
}

TEST(ThermalManager, StartsAtMaximumFlow) {
  ThermalManager m = make_manager(fast_cfg());
  EXPECT_EQ(m.actuator().effective_setting(), 4u);
}

TEST(ThermalManager, StaysAtMaxUntilPredictorReady) {
  ThermalManager m = make_manager(fast_cfg());
  // Feed a cool signal for fewer samples than the ARMA window needs: the
  // safe default (max flow) must hold.
  for (int i = 0; i < 10; ++i) {
    const SimTime now = SimTime::from_ms(100 * (i + 1));
    EXPECT_EQ(m.update(now, 50.0), 4u) << "sample " << i;
  }
}

TEST(ThermalManager, ScalesDownOnceConfident) {
  ThermalManager m = make_manager(fast_cfg());
  std::size_t setting = 4;
  for (int i = 0; i < 100; ++i) {
    setting = m.update(SimTime::from_ms(100 * (i + 1)), 50.0);
  }
  EXPECT_LT(setting, 4u);  // cool steady signal -> lower flow
  EXPECT_GT(m.actuator().transition_count(), 0u);
}

TEST(ThermalManager, FixedMaxModeNeverMoves) {
  ThermalManagerConfig cfg = fast_cfg();
  cfg.variable_flow = false;
  ThermalManager m = make_manager(cfg);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(m.update(SimTime::from_ms(100 * (i + 1)), 50.0), 4u);
  }
  EXPECT_EQ(m.actuator().transition_count(), 0u);
}

TEST(ThermalManager, ReactiveModeFollowsMeasurementImmediately) {
  ThermalManagerConfig cfg = fast_cfg();
  cfg.reactive = true;
  ThermalManager m = make_manager(cfg);
  // Reactive mode needs no predictor warm-up: a cold reading drops flow on
  // the very first sample (measured-guard path).
  const std::size_t s = m.update(SimTime::from_ms(100), 40.0);
  EXPECT_LT(s, 4u);
  EXPECT_DOUBLE_EQ(m.last_forecast(), 40.0);
}

TEST(ThermalManager, HotForecastRaisesFlow) {
  ThermalManagerConfig cfg = fast_cfg();
  cfg.reactive = true;  // deterministic (no ARMA warm-up)
  ThermalManager m = make_manager(cfg);
  SimTime now = SimTime::from_ms(100);
  m.update(now, 40.0);  // drops low
  now += SimTime::from_ms(100);
  m.actuator().tick(now + SimTime::from_ms(300));  // let transition finish
  const std::size_t s = m.update(now + SimTime::from_ms(400), 115.0);
  EXPECT_EQ(s, 4u);  // hot reading -> max immediately
}

TEST(ThermalManager, WeightLookupPassesThrough) {
  TalbWeightTable table({{75.0, {1.5, 0.5}},
                         {std::numeric_limits<double>::infinity(), {2.0, 0.1}}});
  ThermalManager m(make_lut(), table, PumpModel::laing_ddc(), fast_cfg());
  EXPECT_DOUBLE_EQ(m.thermal_weights(60.0)[0], 1.5);
  EXPECT_DOUBLE_EQ(m.thermal_weights(90.0)[0], 2.0);
}

TEST(ThermalManager, TransitionLatencyDelaysEffectiveSetting) {
  ThermalManagerConfig cfg = fast_cfg();
  cfg.reactive = true;
  ThermalManager m = make_manager(cfg);
  m.update(SimTime::from_ms(100), 40.0);  // command a drop at t=100ms
  EXPECT_EQ(m.actuator().target_setting(), 3u);  // one setting per decision
  // At t=200 ms the 275 ms pump transition is still in flight.
  m.update(SimTime::from_ms(200), 40.0);
  EXPECT_TRUE(m.actuator().in_transition());
  EXPECT_EQ(m.actuator().effective_setting(), 4u);
  // By t=500 ms the first step has completed; the still-cool reading then
  // commands the *next* single-step drop (gradual descent, never a jump).
  m.update(SimTime::from_ms(500), 40.0);
  EXPECT_EQ(m.actuator().effective_setting(), 3u);
  EXPECT_EQ(m.actuator().target_setting(), 2u);
}

TEST(ThermalManager, ValveNetworkSteersTowardHotCavity) {
  ThermalManagerConfig cfg = fast_cfg();
  cfg.reactive = true;  // deterministic
  cfg.variable_flow = false;  // fixed-max pump: pure redistribution
  const MicrochannelModel channels(CavitySpec{}, CoolantProperties::water());
  ValveNetwork net(FlowDelivery(PumpModel::laing_ddc(),
                                FlowDeliveryMode::kPressureLimited, channels,
                                11.5e-3, 3),
                   ValveNetworkParams{});
  const double total = net.total_delivered(4).ml_per_min();
  ThermalManager m(make_lut(), TalbWeightTable::uniform(8),
                   PumpModel::laing_ddc(), cfg, net);
  ASSERT_TRUE(m.has_valve_network());

  // Hot cavity 0, cool cavity 2: the valves start moving.
  m.update(SimTime::from_ms(100), 78.0, {78.0, 72.0, 60.0});
  ASSERT_NE(m.valves(), nullptr);
  EXPECT_TRUE(m.valves()->in_transition());
  m.update(SimTime::from_ms(300), 78.0, {78.0, 72.0, 60.0});  // latency done

  const std::vector<VolumetricFlow> flows = m.cavity_flows();
  ASSERT_EQ(flows.size(), 3u);
  EXPECT_GT(flows[0].ml_per_min(), flows[1].ml_per_min());
  EXPECT_GT(flows[1].ml_per_min(), flows[2].ml_per_min());
  // Conservation: redistribution never changes the total delivered flow.
  EXPECT_NEAR(flows[0].ml_per_min() + flows[1].ml_per_min() +
                  flows[2].ml_per_min(),
              total, 1e-9 * total);
  // Fixed-max mode: the pump itself never moved.
  EXPECT_EQ(m.actuator().effective_setting(), 4u);
  EXPECT_EQ(m.actuator().transition_count(), 0u);
}

TEST(ThermalManager, NoValveNetworkKeepsUniformApi) {
  ThermalManager m = make_manager(fast_cfg());
  EXPECT_FALSE(m.has_valve_network());
  EXPECT_EQ(m.valves(), nullptr);
  EXPECT_THROW((void)m.cavity_flows(), ConfigError);
}

}  // namespace
}  // namespace liquid3d
