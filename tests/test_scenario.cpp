// Scenario layer (sim/scenario.hpp): named cell specs, registry, CSV
// serialization, scenario binding, and the deterministic per-cell seed mix.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "geom/stack_spec.hpp"
#include "sim/scenario.hpp"
#include "sim/session.hpp"

namespace liquid3d {
namespace {

TEST(Scenario, PaperGridMatchesFig6Order) {
  const std::vector<ScenarioSpec> grid = paper_scenario_grid();
  ASSERT_EQ(grid.size(), 7u);
  EXPECT_EQ(grid[0].name, "lb-air");
  EXPECT_EQ(grid[0].display_label(), "LB (Air)");
  EXPECT_EQ(grid[3].name, "lb-max");
  EXPECT_EQ(grid[3].display_label(), "LB (Max)");
  EXPECT_EQ(grid[6].name, "talb-var");
  EXPECT_EQ(grid[6].display_label(), "TALB (Var)");
  for (const ScenarioSpec& s : grid) {
    EXPECT_FALSE(s.valve_network);
    EXPECT_TRUE(s.skew.empty());
  }
}

TEST(Scenario, EnumNamesRoundTrip) {
  for (Policy p : {Policy::kLoadBalancing, Policy::kReactiveMigration, Policy::kTalb}) {
    EXPECT_EQ(policy_from_name(policy_name(p)), p);
  }
  for (CoolingMode m :
       {CoolingMode::kAir, CoolingMode::kLiquidMax, CoolingMode::kLiquidVar}) {
    EXPECT_EQ(cooling_from_name(cooling_name(m)), m);
  }
  EXPECT_THROW((void)policy_from_name("bogus"), ConfigError);
  EXPECT_THROW((void)cooling_from_name("bogus"), ConfigError);
}

TEST(Scenario, CsvRowRoundTrips) {
  ScenarioSpec s;
  s.name = "lb-max-valved/hot-corner";
  s.policy = Policy::kLoadBalancing;
  s.cooling = CoolingMode::kLiquidMax;
  s.valve_network = true;
  s.skew = "hot-corner";
  s.label = "LB (Max) [valved]";
  s.solver = SolverBackend::kPcg;
  s.stack = "niagara-4layer";

  const std::vector<std::string> row = to_csv_row(s);
  ASSERT_EQ(row.size(), scenario_csv_header().size());
  const ScenarioSpec back = scenario_from_csv_row(row);
  EXPECT_EQ(back.name, s.name);
  EXPECT_EQ(back.policy, s.policy);
  EXPECT_EQ(back.cooling, s.cooling);
  EXPECT_EQ(back.valve_network, s.valve_network);
  EXPECT_EQ(back.skew, s.skew);
  EXPECT_EQ(back.label, s.label);
  EXPECT_EQ(back.solver, s.solver);
  EXPECT_EQ(back.stack, s.stack);

  EXPECT_THROW((void)scenario_from_csv_row({"too", "short"}), ConfigError);
  std::vector<std::string> bad = row;
  bad[3] = "yes";
  EXPECT_THROW((void)scenario_from_csv_row(bad), ConfigError);
  std::vector<std::string> bad_solver = row;
  bad_solver[6] = "cholesky?";
  EXPECT_THROW((void)scenario_from_csv_row(bad_solver), ConfigError);
}

TEST(Scenario, MalformedRowsNameTheOffendingColumn) {
  // Shard/plan readers prepend the row number; the scenario parser itself
  // must pinpoint the column, so the combined diagnostic reads
  // "<file> row N: column 'policy': unknown policy name 'bogus'".
  auto error_of = [](std::vector<std::string> row) -> std::string {
    try {
      (void)scenario_from_csv_row(row);
      return "";
    } catch (const ConfigError& e) {
      return e.what();
    }
  };
  const std::vector<std::string> good = {"cell", "talb", "var", "0",
                                         "",     "",     "auto"};
  ASSERT_EQ(error_of(good), "");

  std::vector<std::string> bad = good;
  bad[1] = "bogus";
  EXPECT_NE(error_of(bad).find("column 'policy'"), std::string::npos)
      << error_of(bad);
  EXPECT_NE(error_of(bad).find("bogus"), std::string::npos);

  bad = good;
  bad[2] = "steam";
  EXPECT_NE(error_of(bad).find("column 'cooling'"), std::string::npos);

  bad = good;
  bad[3] = "maybe";
  EXPECT_NE(error_of(bad).find("column 'valves'"), std::string::npos);

  bad = good;
  bad[6] = "cholesky?";
  EXPECT_NE(error_of(bad).find("column 'solver'"), std::string::npos);

  // Arity failures spell out expected vs. actual counts.
  const std::string arity = error_of({"too", "short"});
  EXPECT_NE(arity.find("got 2"), std::string::npos) << arity;
  EXPECT_NE(arity.find("expected 8"), std::string::npos) << arity;
}

TEST(Scenario, LegacyRowsWithoutSolverColumnStillParse) {
  // Rows checkpointed before the solver axis existed (6 columns) must keep
  // loading; the backend defaults to auto.
  const std::vector<std::string> legacy = {"talb-var", "talb", "var",
                                           "0",        "",     "TALB (Var)"};
  const ScenarioSpec s = scenario_from_csv_row(legacy);
  EXPECT_EQ(s.name, "talb-var");
  EXPECT_EQ(s.solver, SolverBackend::kAuto);
}

TEST(Scenario, LegacyRowsWithoutStackColumnStillParse) {
  // Rows checkpointed before the stack axis existed (7 columns) must keep
  // loading; the stack axis defaults to empty (built-in Niagara geometry).
  const std::vector<std::string> legacy = {
      "talb-var", "talb", "var", "0", "", "TALB (Var)", "pcg"};
  const ScenarioSpec s = scenario_from_csv_row(legacy);
  EXPECT_EQ(s.name, "talb-var");
  EXPECT_EQ(s.solver, SolverBackend::kPcg);
  EXPECT_TRUE(s.stack.empty());
}

TEST(Scenario, GlobalRegistryServesPaperGridAndRejectsDuplicates) {
  ScenarioRegistry& reg = ScenarioRegistry::global();
  EXPECT_GE(reg.size(), 7u);
  const ScenarioSpec& talb_var = reg.at("talb-var");
  EXPECT_EQ(talb_var.policy, Policy::kTalb);
  EXPECT_EQ(talb_var.cooling, CoolingMode::kLiquidVar);
  EXPECT_EQ(reg.find("definitely-not-registered"), nullptr);
  EXPECT_THROW((void)reg.at("definitely-not-registered"), ConfigError);

  ScenarioSpec dup = talb_var;
  EXPECT_THROW(reg.add(dup), ConfigError);
  ScenarioSpec unnamed;
  unnamed.name.clear();
  EXPECT_THROW(reg.add(unnamed), ConfigError);
}

TEST(Scenario, RegistryPointersSurviveGrowth) {
  ScenarioRegistry reg;
  ScenarioSpec first;
  first.name = "first";
  reg.add(first);
  const ScenarioSpec* p = reg.find("first");
  for (int i = 0; i < 100; ++i) {
    ScenarioSpec s;
    s.name = "filler-" + std::to_string(i);
    reg.add(std::move(s));
  }
  EXPECT_EQ(reg.find("first"), p);  // deque storage: stable references
}

TEST(Scenario, ApplyBindsPolicyCoolingValvesAndSkew) {
  SimulationConfig cfg;
  cfg.layer_pairs = 1;

  ScenarioSpec s;
  s.name = "lb-max-valved/hot-corner";
  s.policy = Policy::kLoadBalancing;
  s.cooling = CoolingMode::kLiquidMax;
  s.valve_network = true;
  s.skew = "hot-corner";
  apply_scenario(s, cfg);
  EXPECT_EQ(cfg.policy, Policy::kLoadBalancing);
  EXPECT_EQ(cfg.cooling, CoolingMode::kLiquidMax);
  EXPECT_TRUE(cfg.manager.valve_network);
  ASSERT_EQ(cfg.core_bias.size(), 8u);
  EXPECT_GT(cfg.core_bias[0], cfg.core_bias[7]);
  EXPECT_EQ(cfg.label, "LB (Max)");

  // Re-binding a uniform scenario clears the bias again.
  ScenarioSpec uniform;
  uniform.name = "talb-var";
  apply_scenario(uniform, cfg);
  EXPECT_TRUE(cfg.core_bias.empty());
  EXPECT_FALSE(cfg.manager.valve_network);

  ScenarioSpec bad_skew;
  bad_skew.name = "x";
  bad_skew.policy = Policy::kLoadBalancing;
  bad_skew.skew = "no-such-skew";
  EXPECT_THROW(apply_scenario(bad_skew, cfg), ConfigError);

  ScenarioSpec air_valves;
  air_valves.name = "y";
  air_valves.cooling = CoolingMode::kAir;
  air_valves.policy = Policy::kLoadBalancing;
  air_valves.valve_network = true;
  EXPECT_THROW(apply_scenario(air_valves, cfg), ConfigError);
}

TEST(Scenario, ApplyBindsSolverBackend) {
  SimulationConfig cfg;
  ScenarioSpec s;
  s.name = "talb-var-pcg";
  s.policy = Policy::kTalb;
  s.cooling = CoolingMode::kLiquidVar;
  s.solver = SolverBackend::kPcg;
  apply_scenario(s, cfg);
  EXPECT_EQ(cfg.thermal.solver_backend, SolverBackend::kPcg);

  ScenarioSpec dflt;
  dflt.name = "talb-var";
  apply_scenario(dflt, cfg);
  EXPECT_EQ(cfg.thermal.solver_backend, SolverBackend::kAuto);
}

TEST(Scenario, ApplyBindsStackAxis) {
  SimulationConfig cfg;
  ScenarioSpec s;
  s.name = "talb-var@4layer";
  s.policy = Policy::kTalb;
  s.cooling = CoolingMode::kLiquidVar;
  s.stack = "niagara-4layer";
  apply_scenario(s, cfg);
  ASSERT_TRUE(cfg.stack.has_value());
  EXPECT_EQ(make_simulation_stack(cfg).layer_count(), 4u);

  // Skew bias vectors scale to the resolved stack's core count: hot-corner
  // on the 4-layer system biases all 16 cores, not the default 8.
  s.skew = "hot-corner";
  apply_scenario(s, cfg);
  EXPECT_EQ(cfg.core_bias.size(), 16u);

  // Embedded specs (the suite's decoded #suite metadata) win over presets
  // and file lookups when the axis string matches an embedded name.
  StackSpec embedded = niagara_stack_spec(1, CoolingType::kLiquid);
  embedded.name = "my-stack";
  ScenarioSpec via_embedded;
  via_embedded.name = "talb-var@mine";
  via_embedded.policy = Policy::kTalb;
  via_embedded.cooling = CoolingMode::kLiquidVar;
  via_embedded.stack = "my-stack";
  apply_scenario(via_embedded, cfg, {embedded});
  ASSERT_TRUE(cfg.stack.has_value());
  EXPECT_EQ(cfg.stack->name, "my-stack");

  // An unresolvable axis is a configuration error.
  ScenarioSpec bad = via_embedded;
  bad.stack = "no-such-stack";
  EXPECT_THROW(apply_scenario(bad, cfg), ConfigError);
}

TEST(Scenario, CellSeedIgnoresStackAxis) {
  // The stack axis is seed-neutral: comparing geometries replays the
  // identical workload trace on every arm, like the valve/skew/solver axes.
  const BenchmarkSpec gzip = *find_benchmark("gzip");
  ScenarioSpec uniform;
  uniform.policy = Policy::kTalb;
  uniform.cooling = CoolingMode::kLiquidVar;
  ScenarioSpec stacked = uniform;
  stacked.stack = "niagara-4layer";
  EXPECT_EQ(cell_seed(7, uniform, gzip), cell_seed(7, stacked, gzip));
}

TEST(Scenario, CellSeedDependsOnIdentityOnly) {
  const BenchmarkSpec gzip = *find_benchmark("gzip");
  const BenchmarkSpec web = *find_benchmark("Web-med");

  const std::uint64_t a =
      cell_seed(7, Policy::kLoadBalancing, CoolingMode::kAir, gzip);
  // Deterministic.
  EXPECT_EQ(a, cell_seed(7, Policy::kLoadBalancing, CoolingMode::kAir, gzip));
  // Every identity axis moves the seed...
  EXPECT_NE(a, cell_seed(8, Policy::kLoadBalancing, CoolingMode::kAir, gzip));
  EXPECT_NE(a, cell_seed(7, Policy::kTalb, CoolingMode::kAir, gzip));
  EXPECT_NE(a, cell_seed(7, Policy::kLoadBalancing, CoolingMode::kLiquidMax, gzip));
  EXPECT_NE(a, cell_seed(7, Policy::kLoadBalancing, CoolingMode::kAir, web));

  // ...but the valve/skew axes deliberately do not: a delivery comparison
  // must replay the identical workload trace on both arms.
  ScenarioSpec uniform;
  uniform.policy = Policy::kLoadBalancing;
  uniform.cooling = CoolingMode::kLiquidMax;
  ScenarioSpec valved = uniform;
  valved.valve_network = true;
  valved.skew = "hot-corner";
  EXPECT_EQ(cell_seed(7, uniform, gzip), cell_seed(7, valved, gzip));

  // The solver backend is a numerics axis, not an identity axis: a
  // direct-vs-PCG comparison runs the same workload trace on both arms.
  ScenarioSpec pcg = uniform;
  pcg.solver = SolverBackend::kPcg;
  EXPECT_EQ(cell_seed(7, uniform, gzip), cell_seed(7, pcg, gzip));
}

TEST(Scenario, CellSeedsAreDistinctAcrossTheGrid) {
  std::vector<std::uint64_t> seeds;
  for (const ScenarioSpec& sc : paper_scenario_grid()) {
    for (const BenchmarkSpec& wl : table2_benchmarks()) {
      seeds.push_back(cell_seed(7, sc, wl));
    }
  }
  std::sort(seeds.begin(), seeds.end());
  EXPECT_EQ(std::adjacent_find(seeds.begin(), seeds.end()), seeds.end())
      << "56-cell paper grid produced a seed collision";
}

}  // namespace
}  // namespace liquid3d
