// Reduced-order steady model (serve/rom.hpp) and the exported steady
// operator (thermal/steady_operator.hpp).  The contract under test: reduced
// answers agree with the full steady solver within the error bound across
// cooling modes, stack specs, flow vectors, and boundary references — and
// when the basis cannot represent a query, the estimator says so and the
// service falls back to the full path.
#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>
#include <string>
#include <vector>

#include "geom/stack_spec.hpp"
#include "serve/rom.hpp"
#include "serve/service.hpp"
#include "thermal/model3d.hpp"

namespace liquid3d {
namespace {

ThermalModelParams small_params(std::size_t rows = 8, std::size_t cols = 9) {
  ThermalModelParams p;
  p.grid_rows = rows;
  p.grid_cols = cols;
  return p;
}

/// Zero-shaped [layer][block] power map for a stack.
std::vector<std::vector<double>> zero_watts(const Stack3D& stack) {
  std::vector<std::vector<double>> watts(stack.layer_count());
  for (std::size_t l = 0; l < stack.layer_count(); ++l) {
    watts[l].assign(stack.layer(l).floorplan.block_count(), 0.0);
  }
  return watts;
}

/// Full-solver reference T_max for a power map on a prepared model.
double full_tmax(ThermalModel3D& model,
                 const std::vector<std::vector<double>>& watts) {
  for (std::size_t l = 0; l < watts.size(); ++l) {
    model.set_block_power(l, watts[l]);
  }
  model.solve_steady_state();
  return model.max_temperature();
}

/// A deterministic skewed power pattern (ramp across blocks and layers).
std::vector<std::vector<double>> ramp_watts(const Stack3D& stack) {
  auto watts = zero_watts(stack);
  std::size_t cursor = 0;
  for (auto& layer : watts) {
    for (double& w : layer) {
      w = 0.3 + 0.37 * static_cast<double>(cursor++ % 7);
    }
  }
  return watts;
}

TEST(ServeRom, LiquidMatchesFullAcrossPowerPatterns) {
  ThermalModel3D model(make_niagara_stack(1, CoolingType::kLiquid),
                       small_params());
  model.set_cavity_flow(VolumetricFlow::from_ml_per_min(30.0));
  const ReducedSteadyModel rom = ReducedSteadyModel::build(model, RomParams{});
  EXPECT_GT(rom.dimension(), 1u);
  EXPECT_LT(rom.certified_error_c(), 1e-6);

  auto uniform = zero_watts(model.stack());
  for (auto& layer : uniform) {
    for (double& w : layer) w = 1.5;
  }
  auto hot = zero_watts(model.stack());
  hot[0][2] = 7.0;  // one hot block, everything else idle

  ReducedSteadyModel::Scratch scratch;
  RomEvaluation eval;
  for (const auto& watts : {uniform, hot, ramp_watts(model.stack())}) {
    const double reference = full_tmax(model, watts);
    rom.evaluate(watts, model.params().inlet_temperature, 0.0, scratch, eval);
    EXPECT_TRUE(eval.within_bound);
    EXPECT_NEAR(eval.t_max_c, reference, 1e-6);
    EXPECT_EQ(eval.layer_max_c.size(), model.stack().layer_count());
  }
}

TEST(ServeRom, AirMatchesFull) {
  ThermalModel3D model(make_niagara_stack(1, CoolingType::kAir), small_params());
  const ReducedSteadyModel rom = ReducedSteadyModel::build(model, RomParams{});

  const auto watts = ramp_watts(model.stack());
  const double reference = full_tmax(model, watts);
  ReducedSteadyModel::Scratch scratch;
  RomEvaluation eval;
  rom.evaluate(watts, model.params().ambient_temperature, 0.0, scratch, eval);
  EXPECT_TRUE(eval.within_bound);
  // The air steady path is pseudo-transient (tolerance 1e-4 K), so both the
  // snapshots and the reference carry that tolerance.
  EXPECT_NEAR(eval.t_max_c, reference, 5e-3);
}

TEST(ServeRom, SkewedFlowVectorMatchesFull) {
  ThermalModel3D model(make_niagara_stack(1, CoolingType::kLiquid),
                       small_params());
  std::vector<VolumetricFlow> flows;
  for (std::size_t c = 0; c < model.stack().cavity_count(); ++c) {
    flows.push_back(VolumetricFlow::from_ml_per_min(
        12.0 + 14.0 * static_cast<double>(c)));
  }
  model.set_cavity_flow(flows);
  const ReducedSteadyModel rom = ReducedSteadyModel::build(model, RomParams{});

  const auto watts = ramp_watts(model.stack());
  const double reference = full_tmax(model, watts);
  ReducedSteadyModel::Scratch scratch;
  RomEvaluation eval;
  rom.evaluate(watts, model.params().inlet_temperature, 0.0, scratch, eval);
  EXPECT_TRUE(eval.within_bound);
  EXPECT_NEAR(eval.t_max_c, reference, 1e-6);
}

TEST(ServeRom, BoundaryReferenceIsAffineExact) {
  // Build the ROM at inlet 30 C, query at 45 C: the constant basis vector
  // makes the reference affine-exact, so the answer must match a model
  // *parameterized* at 45 C.
  ThermalModelParams p30 = small_params();
  p30.inlet_temperature = 30.0;
  ThermalModel3D model30(make_niagara_stack(1, CoolingType::kLiquid), p30);
  model30.set_cavity_flow(VolumetricFlow::from_ml_per_min(25.0));
  const ReducedSteadyModel rom = ReducedSteadyModel::build(model30, RomParams{});

  ThermalModelParams p45 = small_params();
  p45.inlet_temperature = 45.0;
  ThermalModel3D model45(make_niagara_stack(1, CoolingType::kLiquid), p45);
  model45.set_cavity_flow(VolumetricFlow::from_ml_per_min(25.0));
  const auto watts = ramp_watts(model45.stack());
  const double reference = full_tmax(model45, watts);

  ReducedSteadyModel::Scratch scratch;
  RomEvaluation eval;
  rom.evaluate(watts, 45.0, 0.0, scratch, eval);
  EXPECT_TRUE(eval.within_bound);
  EXPECT_NEAR(eval.t_max_c, reference, 1e-6);
}

// -- Through the service across stack specs ----------------------------------

SimulationConfig small_config(CoolingMode cooling) {
  SimulationConfig cfg;
  cfg.cooling = cooling;
  cfg.thermal = small_params();
  return cfg;
}

void expect_rom_matches_full(ThermalService& service, const SteadyQuery& base) {
  SteadyQuery q = base;
  q.force_full = false;
  const SteadyAnswer reduced = service.steady(q);
  q.force_full = true;
  const SteadyAnswer full = service.steady(q);
  ASSERT_TRUE(reduced.used_rom);
  EXPECT_FALSE(full.used_rom);
  EXPECT_NEAR(reduced.t_max_c, full.t_max_c,
              std::max(reduced.estimated_error_c, 1e-6));
}

TEST(ServeRom, FourLayerPresetThroughService) {
  ThermalService service;
  SteadyQuery q;
  q.config = small_config(CoolingMode::kLiquidMax);
  q.config.layer_pairs = 2;  // 4-layer Niagara system
  q.core_watts = 2.0;
  expect_rom_matches_full(service, q);
}

TEST(ServeRom, StackFileSpecThroughService) {
  ThermalService service;
  SteadyQuery q;
  q.config = small_config(CoolingMode::kLiquidMax);
  // CMake runs tests from the build directory; the examples live one up.
  const std::string root = std::filesystem::exists("examples/stacks")
                               ? "examples/stacks"
                               : "../examples/stacks";
  q.config.stack = load_stack_file(root + "/asym-3die.stack");
  q.core_watts = 2.5;
  expect_rom_matches_full(service, q);

  // Skewed valve-steered flow on the same stack file.
  SteadyQuery skew = q;
  skew.valve_openings.assign(
      make_simulation_stack(q.config).cavity_count(), 1.0);
  skew.valve_openings.front() = 0.35;
  expect_rom_matches_full(service, skew);
}

TEST(ServeRom, AirThroughService) {
  ThermalService service;
  SteadyQuery q;
  q.config = small_config(CoolingMode::kAir);
  q.core_watts = 2.0;
  SteadyQuery full = q;
  full.force_full = true;
  const SteadyAnswer reduced = service.steady(q);
  const SteadyAnswer exact = service.steady(full);
  ASSERT_TRUE(reduced.used_rom);
  EXPECT_NEAR(reduced.t_max_c, exact.t_max_c, 5e-3);
}

TEST(ServeRom, FallbackOnBoundViolation) {
  // A basis truncated to 2 directions cannot represent a localized hot
  // block; the residual estimator must flag it and the service must answer
  // through the full solver instead.
  ServeParams params;
  params.rom.max_basis = 2;
  ThermalService service(params);

  SteadyQuery q;
  q.config = small_config(CoolingMode::kLiquidMax);
  const Stack3D stack = make_simulation_stack(q.config);
  q.block_watts.assign(stack.layer_count(), {});
  for (std::size_t l = 0; l < stack.layer_count(); ++l) {
    q.block_watts[l].assign(stack.layer(l).floorplan.block_count(), 0.0);
  }
  q.block_watts[0][1] = 6.0;

  const SteadyAnswer answer = service.steady(q);
  EXPECT_FALSE(answer.used_rom);  // fell back
  const ServeStats stats = service.stats();
  EXPECT_GE(stats.rom_fallbacks, 1u);
  EXPECT_GE(stats.full_solves, 1u);

  // The fallback answer is the full solver's.
  SteadyQuery forced = q;
  forced.force_full = true;
  EXPECT_DOUBLE_EQ(answer.t_max_c, service.steady(forced).t_max_c);
}

TEST(ServeRom, CacheEvictionUnderLoad) {
  ServeParams params;
  params.rom_cache_capacity = 2;
  ThermalService service(params);

  SteadyQuery q;
  q.config = small_config(CoolingMode::kLiquidMax);
  const std::size_t cavities = make_simulation_stack(q.config).cavity_count();

  // Three distinct flow vectors = three ROM keys through a 2-entry cache.
  const double levels[3] = {15.0, 25.0, 40.0};
  double tmax[3];
  for (int round = 0; round < 2; ++round) {
    for (int i = 0; i < 3; ++i) {
      q.flows_ml_per_min.assign(cavities, levels[i]);
      const SteadyAnswer a = service.steady(q);
      ASSERT_TRUE(a.used_rom);
      if (round == 0) {
        tmax[i] = a.t_max_c;
      } else {
        // A rebuilt-after-eviction ROM answers identically.
        EXPECT_DOUBLE_EQ(a.t_max_c, tmax[i]);
      }
    }
  }
  const ServeStats stats = service.stats();
  EXPECT_GE(stats.rom_evictions, 1u);
  EXPECT_GT(stats.rom_builds, 3u);  // at least one rebuild after eviction
}

}  // namespace
}  // namespace liquid3d
