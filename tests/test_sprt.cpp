// Sequential probability ratio test (forecast/sprt.hpp).
#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "forecast/sprt.hpp"

namespace liquid3d {
namespace {

TEST(Sprt, ThresholdsFollowWald) {
  SprtParams p;
  p.false_alarm_prob = 0.01;
  p.missed_alarm_prob = 0.05;
  const SprtDetector d(p);
  EXPECT_NEAR(d.upper_threshold(), std::log(0.95 / 0.01), 1e-12);
  EXPECT_NEAR(d.lower_threshold(), std::log(0.05 / 0.99), 1e-12);
}

TEST(Sprt, QuietOnWellBehavedResiduals) {
  SprtDetector d;
  d.set_noise_std(1.0);
  Rng rng(5);
  std::size_t alarms = 0;
  for (int i = 0; i < 5000; ++i) {
    if (d.observe(rng.normal())) ++alarms;
  }
  // alpha = 1 %: expect on the order of tens of alarms at most over 5000
  // samples of perfectly matched noise.
  EXPECT_LT(alarms, 60u);
}

TEST(Sprt, DetectsPositiveShiftQuickly) {
  SprtDetector d;
  d.set_noise_std(1.0);
  Rng rng(6);
  int detect_at = -1;
  for (int i = 0; i < 200; ++i) {
    if (d.observe(3.0 + rng.normal())) {  // the H1 magnitude itself
      detect_at = i;
      break;
    }
  }
  ASSERT_GE(detect_at, 0) << "shift never detected";
  EXPECT_LT(detect_at, 10);  // SPRT is fast at the design magnitude
}

TEST(Sprt, DetectsNegativeShiftToo) {
  SprtDetector d;
  d.set_noise_std(1.0);
  Rng rng(7);
  int detect_at = -1;
  for (int i = 0; i < 200; ++i) {
    if (d.observe(-3.0 + rng.normal())) {
      detect_at = i;
      break;
    }
  }
  ASSERT_GE(detect_at, 0);
  EXPECT_LT(detect_at, 10);
}

TEST(Sprt, AlarmResetsState) {
  SprtDetector d;
  d.set_noise_std(1.0);
  // Drive to alarm deterministically.
  while (!d.observe(3.0)) {
  }
  EXPECT_EQ(d.llr_positive(), 0.0);
  EXPECT_EQ(d.llr_negative(), 0.0);
  EXPECT_EQ(d.alarm_count(), 1u);
}

TEST(Sprt, NoiseFloorPreventsDustAlarms) {
  // With a perfectly fitting model (sigma ~ 0), numerical dust in the
  // residuals must not alarm thanks to the min_noise_std floor.
  SprtDetector d;
  d.set_noise_std(0.0);  // floored internally to 0.05
  Rng rng(8);
  std::size_t alarms = 0;
  for (int i = 0; i < 2000; ++i) {
    if (d.observe(1e-9 * rng.normal())) ++alarms;
  }
  EXPECT_EQ(alarms, 0u);
}

TEST(Sprt, ManualResetClearsLlr) {
  SprtDetector d;
  d.set_noise_std(1.0);
  // Above m/2 (the drift zero point at the default 4-sigma design
  // magnitude), so the positive LLR moves up without reaching the alarm.
  d.observe(2.5);
  EXPECT_GT(d.llr_positive(), 0.0);
  d.reset();
  EXPECT_EQ(d.llr_positive(), 0.0);
  EXPECT_EQ(d.llr_negative(), 0.0);
}

TEST(Sprt, InvalidParamsRejected) {
  SprtParams p;
  p.false_alarm_prob = 0.0;
  EXPECT_THROW(SprtDetector{p}, ConfigError);
  p = SprtParams{};
  p.magnitude_sigmas = 0.0;
  EXPECT_THROW(SprtDetector{p}, ConfigError);
}

class MagnitudeSweep : public ::testing::TestWithParam<double> {};

TEST_P(MagnitudeSweep, LargerShiftsDetectFaster) {
  // Detection latency decreases with the true shift magnitude.  The default
  // design magnitude is 4 sigma; shifts at or above ~3 sigma drift the LLR
  // upward and must be caught quickly.
  const double shift = GetParam();
  SprtDetector d;
  d.set_noise_std(1.0);
  Rng rng(11);
  int detect_at = 1000;
  for (int i = 0; i < 1000; ++i) {
    if (d.observe(shift + rng.normal())) {
      detect_at = i;
      break;
    }
  }
  if (shift >= 4.0) {
    EXPECT_LT(detect_at, 8);
  } else if (shift >= 3.0) {
    EXPECT_LT(detect_at, 30);
  }
}

INSTANTIATE_TEST_SUITE_P(Shifts, MagnitudeSweep, ::testing::Values(3.0, 4.0, 6.0, 9.0));

}  // namespace
}  // namespace liquid3d
