// Unit conversions and strong types (common/units.hpp).
#include <gtest/gtest.h>

#include "common/units.hpp"

namespace liquid3d {
namespace {

TEST(Units, ScalarConversions) {
  EXPECT_DOUBLE_EQ(um(100.0), 100e-6);
  EXPECT_DOUBLE_EQ(mm(11.5), 11.5e-3);
  EXPECT_DOUBLE_EQ(mm2(115.0), 115e-6);
  EXPECT_DOUBLE_EQ(cm2(1.0), 1e-4);
  EXPECT_DOUBLE_EQ(celsius_to_kelvin(80.0), 353.15);
  EXPECT_DOUBLE_EQ(kelvin_to_celsius(353.15), 80.0);
  EXPECT_DOUBLE_EQ(ms(275.0), 0.275);
}

TEST(VolumetricFlow, RoundTripsThroughAllUnits) {
  const VolumetricFlow f = VolumetricFlow::from_l_per_min(0.5);
  EXPECT_NEAR(f.l_per_min(), 0.5, 1e-12);
  EXPECT_NEAR(f.ml_per_min(), 500.0, 1e-9);
  EXPECT_NEAR(f.l_per_hour(), 30.0, 1e-9);
  EXPECT_NEAR(f.m3_per_s(), 0.5e-3 / 60.0, 1e-15);
}

TEST(VolumetricFlow, PaperUnitEquivalences) {
  // Fig. 3 uses l/h at the pump and ml/min per cavity; Table I uses l/min.
  EXPECT_NEAR(VolumetricFlow::from_l_per_hour(75.0).ml_per_min(), 1250.0, 1e-9);
  EXPECT_NEAR(VolumetricFlow::from_l_per_hour(375.0).l_per_min(), 6.25, 1e-12);
  EXPECT_NEAR(VolumetricFlow::from_ml_per_min(1000.0).l_per_min(), 1.0, 1e-12);
}

TEST(VolumetricFlow, ComparisonAndArithmetic) {
  const VolumetricFlow a = VolumetricFlow::from_ml_per_min(100.0);
  const VolumetricFlow b = VolumetricFlow::from_ml_per_min(200.0);
  EXPECT_LT(a, b);
  EXPECT_EQ(a * 2.0, b);
  EXPECT_EQ(b / 2.0, a);
  EXPECT_EQ((a + a), b);
  EXPECT_NEAR((b - a).ml_per_min(), 100.0, 1e-9);
  EXPECT_TRUE(VolumetricFlow{}.is_zero());
  EXPECT_FALSE(a.is_zero());
}

TEST(SimTime, MillisecondExactness) {
  const SimTime t = SimTime::from_ms(100);
  EXPECT_EQ(t.as_ms(), 100);
  EXPECT_DOUBLE_EQ(t.as_s(), 0.1);
  // 18,000 ticks of 100 ms == exactly 30 minutes (no float drift).
  SimTime acc{};
  for (int i = 0; i < 18000; ++i) acc += t;
  EXPECT_EQ(acc.as_ms(), 30 * 60 * 1000);
}

TEST(SimTime, ComparisonAndArithmetic) {
  const SimTime a = SimTime::from_ms(250);
  const SimTime b = SimTime::from_s(0.3);
  EXPECT_LT(a, b);
  EXPECT_EQ((b - a).as_ms(), 50);
  EXPECT_EQ((a + b).as_ms(), 550);
  EXPECT_EQ(SimTime::from_s(0.2755).as_ms(), 276);  // rounds to nearest ms
}

}  // namespace
}  // namespace liquid3d
