// Structured result export (sim/report.hpp).
#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>
#include <string>

#include "sim/report.hpp"

namespace liquid3d {
namespace {

SimulationResult sample_result(const std::string& label) {
  SimulationResult r;
  r.label = label;
  r.benchmark = "Web-med";
  r.hotspot_percent = 1.25;
  r.hotspot_max_sample = 86.5;
  r.avg_tmax = 79.125;
  r.chip_energy_j = 1234.5;
  r.pump_energy_j = 17.0;
  r.total_energy_j = 1251.5;
  r.throughput_per_s = 41.75;
  r.avg_utilization = 0.53;
  r.migrations = 3;
  r.pump_transitions = 9;
  r.valve_transitions = 4;
  r.avg_flow_skew = 1.5;
  r.forecast_rmse = 0.25;
  r.avg_pump_setting = 2.5;
  r.elapsed_s = 60.0;
  return r;
}

std::size_t count_lines(const std::string& s) {
  std::size_t n = 0;
  for (char c : s) n += c == '\n';
  return n;
}

TEST(Report, HeaderAndRowStayInSync) {
  const SimulationResult r = sample_result("TALB (Var)");
  EXPECT_EQ(to_csv_row(r).size(), simulation_result_csv_header().size());
  EXPECT_EQ(simulation_result_csv_header().front(), "label");
  EXPECT_EQ(simulation_result_csv_header().back(), "elapsed_s");
}

TEST(Report, ResultsCsvHasHeaderPlusOneRowPerResult) {
  std::ostringstream out;
  write_results_csv(out, {sample_result("LB (Air)"), sample_result("TALB (Var)")});
  const std::string csv = out.str();
  EXPECT_EQ(count_lines(csv), 3u);
  EXPECT_EQ(csv.rfind("label,benchmark,", 0), 0u);  // header first
  EXPECT_NE(csv.find("\nLB (Air),Web-med,1.25,86.5,"), std::string::npos);
  EXPECT_NE(csv.find(",3,9,4,1.5,"), std::string::npos);  // counts as integers
}

TEST(Report, CsvQuotesFieldsContainingSeparators) {
  SimulationResult r = sample_result("weird, \"label\"");
  std::ostringstream out;
  write_results_csv(out, {r});
  EXPECT_NE(out.str().find("\"weird, \"\"label\"\"\","), std::string::npos);
}

TEST(Report, CsvNumbersRoundTripBitExactly) {
  SimulationResult r = sample_result("x");
  r.avg_tmax = 79.0 + 1.0 / 3.0;  // not representable in few digits
  const std::vector<std::string> row = to_csv_row(r);
  // avg_tmax is the column after the five percent/cycle metrics.
  const std::string& formatted = row[7];
  EXPECT_EQ(std::stod(formatted), r.avg_tmax);
}

TEST(Report, ResultsJsonIsWellFormedEnough) {
  std::ostringstream out;
  write_results_json(out, {sample_result("LB (Air)"), sample_result("TALB (Var)")});
  const std::string json = out.str();
  EXPECT_EQ(json.rfind("[\n", 0), 0u);
  EXPECT_NE(json.find("{\"label\": \"LB (Air)\""), std::string::npos);
  EXPECT_NE(json.find("\"avg_tmax\": 79.125"), std::string::npos);
  EXPECT_NE(json.find("\"migrations\": 3"), std::string::npos);
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
  EXPECT_EQ(std::count(json.begin(), json.end(), '['),
            std::count(json.begin(), json.end(), ']'));
}

TEST(Report, JsonEscapesStrings) {
  std::ostringstream out;
  write_results_json(out, {sample_result("quote\"back\\slash")});
  EXPECT_NE(out.str().find("quote\\\"back\\\\slash"), std::string::npos);
}

TEST(Report, SummariesFlattenPerWorkloadRows) {
  PolicySummary a;
  a.label = "LB (Air)";
  a.per_workload = {sample_result("LB (Air)"), sample_result("LB (Air)")};
  PolicySummary b;
  b.label = "TALB (Var)";
  b.per_workload = {sample_result("TALB (Var)")};

  std::ostringstream csv;
  write_summaries_csv(csv, {a, b});
  EXPECT_EQ(count_lines(csv.str()), 4u);  // header + 3 rows
  EXPECT_EQ(csv.str().rfind("policy,label,benchmark,", 0), 0u);

  std::ostringstream json;
  write_summaries_json(json, {a, b});
  EXPECT_NE(json.str().find("\"aggregates\": {\"mean_hotspot_percent\": 1.25"),
            std::string::npos);
  EXPECT_NE(json.str().find("\"total_chip_energy\": 2469"), std::string::npos);
}

}  // namespace
}  // namespace liquid3d
