// Structured result export (sim/report.hpp).
#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>
#include <string>

#include "common/error.hpp"
#include "sim/report.hpp"

namespace liquid3d {
namespace {

SimulationResult sample_result(const std::string& label) {
  SimulationResult r;
  r.label = label;
  r.benchmark = "Web-med";
  r.hotspot_percent = 1.25;
  r.hotspot_max_sample = 86.5;
  r.avg_tmax = 79.125;
  r.chip_energy_j = 1234.5;
  r.pump_energy_j = 17.0;
  r.total_energy_j = 1251.5;
  r.throughput_per_s = 41.75;
  r.avg_utilization = 0.53;
  r.migrations = 3;
  r.pump_transitions = 9;
  r.valve_transitions = 4;
  r.avg_flow_skew = 1.5;
  r.forecast_rmse = 0.25;
  r.avg_pump_setting = 2.5;
  r.elapsed_s = 60.0;
  return r;
}

std::size_t count_lines(const std::string& s) {
  std::size_t n = 0;
  for (char c : s) n += c == '\n';
  return n;
}

TEST(Report, HeaderAndRowStayInSync) {
  const SimulationResult r = sample_result("TALB (Var)");
  EXPECT_EQ(to_csv_row(r).size(), simulation_result_csv_header().size());
  EXPECT_EQ(simulation_result_csv_header().front(), "label");
  EXPECT_EQ(simulation_result_csv_header().back(), "elapsed_s");
}

TEST(Report, ResultsCsvHasHeaderPlusOneRowPerResult) {
  std::ostringstream out;
  write_results_csv(out, {sample_result("LB (Air)"), sample_result("TALB (Var)")});
  const std::string csv = out.str();
  EXPECT_EQ(count_lines(csv), 3u);
  EXPECT_EQ(csv.rfind("label,benchmark,", 0), 0u);  // header first
  EXPECT_NE(csv.find("\nLB (Air),Web-med,1.25,86.5,"), std::string::npos);
  EXPECT_NE(csv.find(",3,9,4,1.5,"), std::string::npos);  // counts as integers
}

TEST(Report, CsvQuotesFieldsContainingSeparators) {
  SimulationResult r = sample_result("weird, \"label\"");
  std::ostringstream out;
  write_results_csv(out, {r});
  EXPECT_NE(out.str().find("\"weird, \"\"label\"\"\","), std::string::npos);
}

TEST(Report, CsvNumbersRoundTripBitExactly) {
  SimulationResult r = sample_result("x");
  r.avg_tmax = 79.0 + 1.0 / 3.0;  // not representable in few digits
  const std::vector<std::string> row = to_csv_row(r);
  // avg_tmax is the column after the five percent/cycle metrics.
  const std::string& formatted = row[7];
  EXPECT_EQ(std::stod(formatted), r.avg_tmax);
}

TEST(Report, ResultsJsonIsWellFormedEnough) {
  std::ostringstream out;
  write_results_json(out, {sample_result("LB (Air)"), sample_result("TALB (Var)")});
  const std::string json = out.str();
  EXPECT_EQ(json.rfind("[\n", 0), 0u);
  EXPECT_NE(json.find("{\"label\": \"LB (Air)\""), std::string::npos);
  EXPECT_NE(json.find("\"avg_tmax\": 79.125"), std::string::npos);
  EXPECT_NE(json.find("\"migrations\": 3"), std::string::npos);
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
  EXPECT_EQ(std::count(json.begin(), json.end(), '['),
            std::count(json.begin(), json.end(), ']'));
}

TEST(Report, JsonEscapesStrings) {
  std::ostringstream out;
  write_results_json(out, {sample_result("quote\"back\\slash")});
  EXPECT_NE(out.str().find("quote\\\"back\\\\slash"), std::string::npos);
}

TEST(Report, ResultRowRoundTripsExactly) {
  // The reader is the merge path's foundation: every field — including
  // doubles written with %.17g — must come back comparing == against the
  // in-process original.
  SimulationResult r = sample_result("TALB (Var)");
  r.avg_tmax = 79.0 + 1.0 / 3.0;
  r.forecast_rmse = 0.1 + 0.2;  // classic non-representable sum
  const SimulationResult back = simulation_result_from_csv_row(to_csv_row(r));
  EXPECT_TRUE(results_identical(r, back));
  EXPECT_EQ(back.avg_tmax, r.avg_tmax);
  EXPECT_EQ(back.migrations, r.migrations);
}

TEST(Report, ResultRowParseErrorsNameTheColumn) {
  std::vector<std::string> row = to_csv_row(sample_result("x"));
  row[7] = "not-a-number";  // avg_tmax
  try {
    (void)simulation_result_from_csv_row(row);
    FAIL() << "expected ConfigError";
  } catch (const ConfigError& e) {
    EXPECT_NE(std::string(e.what()).find("avg_tmax"), std::string::npos)
        << e.what();
  }
  EXPECT_THROW((void)simulation_result_from_csv_row({"too", "short"}),
               ConfigError);

  // Count columns are strict integers: negative or fractional input is a
  // corrupt row, not a value to wrap or truncate.
  std::vector<std::string> counts = to_csv_row(sample_result("x"));
  const std::size_t migrations_col = 13;  // label, benchmark, 11 doubles, then
  ASSERT_EQ(counts[migrations_col], "3");  // migrations (sample_result sets 3)
  counts[migrations_col] = "-1";
  EXPECT_THROW((void)simulation_result_from_csv_row(counts), ConfigError);
  counts[migrations_col] = "3.7";
  EXPECT_THROW((void)simulation_result_from_csv_row(counts), ConfigError);
}

TEST(Report, ResultsCsvReadsBackWhatItWrote) {
  // Quoted labels (commas, quotes) included: the writer escapes, the
  // reader unescapes, and the round trip is exact.
  std::vector<SimulationResult> results = {sample_result("weird, \"label\""),
                                           sample_result("TALB (Var)")};
  results[0].avg_tmax = 79.0 + 1.0 / 3.0;
  std::ostringstream out;
  write_results_csv(out, results);
  std::istringstream in(out.str());
  const std::vector<SimulationResult> back = read_results_csv(in);
  ASSERT_EQ(back.size(), results.size());
  for (std::size_t i = 0; i < results.size(); ++i) {
    EXPECT_TRUE(results_identical(results[i], back[i])) << i;
  }
}

TEST(Report, ResultsCsvReaderReportsRowNumbers) {
  std::ostringstream out;
  write_results_csv(out, {sample_result("a"), sample_result("b")});
  std::string csv = out.str();
  // Corrupt the second data row (row 3 counting the header).
  const std::size_t pos = csv.rfind("\nb,");
  ASSERT_NE(pos, std::string::npos);
  csv.replace(pos + 1, 1, "b,oops");
  std::istringstream in(csv);
  try {
    (void)read_results_csv(in);
    FAIL() << "expected ConfigError";
  } catch (const ConfigError& e) {
    EXPECT_NE(std::string(e.what()).find("row 3"), std::string::npos)
        << e.what();
  }

  std::istringstream no_header("not,the,header\n");
  EXPECT_THROW((void)read_results_csv(no_header), ConfigError);
}

TEST(Report, SummariesFlattenPerWorkloadRows) {
  PolicySummary a;
  a.label = "LB (Air)";
  a.per_workload = {sample_result("LB (Air)"), sample_result("LB (Air)")};
  PolicySummary b;
  b.label = "TALB (Var)";
  b.per_workload = {sample_result("TALB (Var)")};

  std::ostringstream csv;
  write_summaries_csv(csv, {a, b});
  EXPECT_EQ(count_lines(csv.str()), 4u);  // header + 3 rows
  EXPECT_EQ(csv.str().rfind("policy,label,benchmark,", 0), 0u);

  std::ostringstream json;
  write_summaries_json(json, {a, b});
  EXPECT_NE(json.str().find("\"aggregates\": {\"mean_hotspot_percent\": 1.25"),
            std::string::npos);
  EXPECT_NE(json.str().find("\"total_chip_energy\": 2469"), std::string::npos);
}

}  // namespace
}  // namespace liquid3d
