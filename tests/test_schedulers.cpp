// Scheduling policies (sched/): LB, reactive migration, TALB (Eq. 8).
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "sched/scheduler.hpp"

namespace liquid3d {
namespace {

Thread make_thread(std::uint64_t id, int ms = 100) {
  Thread t;
  t.id = id;
  t.total_length = SimTime::from_ms(ms);
  t.remaining = t.total_length;
  return t;
}

SchedulerContext make_ctx(std::vector<double> temps,
                          std::vector<double> weights = {}) {
  SchedulerContext ctx;
  ctx.core_temperature = std::move(temps);
  if (weights.empty()) {
    ctx.thermal_weight.assign(ctx.core_temperature.size(), 1.0);
  } else {
    ctx.thermal_weight = std::move(weights);
  }
  return ctx;
}

TEST(LoadBalancer, DispatchesToShortestQueue) {
  auto lb = make_load_balancer();
  CoreQueues q(3);
  q.push_back(0, make_thread(100));
  q.push_back(0, make_thread(101));
  q.push_back(1, make_thread(102));
  const auto ctx = make_ctx({70, 70, 70});
  lb->dispatch({make_thread(1)}, q, ctx);
  EXPECT_EQ(q.length(2), 1u);  // empty queue got the thread
  lb->dispatch({make_thread(2)}, q, ctx);
  EXPECT_EQ(q.length(1) + q.length(2), 3u);  // ties go to lowest index
}

TEST(LoadBalancer, RebalancesWaitingThreads) {
  LoadBalancerParams p;
  p.imbalance_threshold = 1;
  auto lb = make_load_balancer(p);
  CoreQueues q(2);
  for (int i = 0; i < 6; ++i) q.push_back(0, make_thread(i));
  lb->manage(q, make_ctx({70, 70}));
  // Balanced to within the threshold.
  EXPECT_LE(q.length(0), q.length(1) + 1);
  EXPECT_GE(q.length(0) + q.length(1), 6u);
}

TEST(LoadBalancer, BiasedDispatchFavorsHighBiasCores) {
  LoadBalancerParams p;
  p.core_bias = {1.0, 6.0};
  auto lb = make_load_balancer(p);
  CoreQueues q(2);
  const auto ctx = make_ctx({70, 70});
  std::vector<Thread> arrivals;
  for (int i = 0; i < 7; ++i) arrivals.push_back(make_thread(i));
  lb->dispatch(std::move(arrivals), q, ctx);
  // Effective length = length / bias: core 1 absorbs ~6x the load.
  EXPECT_GT(q.length(1), q.length(0));
}

TEST(LoadBalancer, SmallBiasesDoNotLivelockManage) {
  // Regression: with biases < 1 one move shifts the effective spread by
  // 1/b_hi + 1/b_lo (here 10), far past the integer threshold — the seed
  // of this feature ping-ponged the same thread between the queues forever.
  // manage() must terminate and leave the queues unchanged-or-better.
  LoadBalancerParams p;
  p.core_bias = {0.2, 0.2};
  p.imbalance_threshold = 2;
  auto lb = make_load_balancer(p);
  CoreQueues q(2);
  for (int i = 0; i < 4; ++i) q.push_back(0, make_thread(i));
  for (int i = 4; i < 9; ++i) q.push_back(1, make_thread(i));
  lb->manage(q, make_ctx({70, 70}));  // must return
  EXPECT_EQ(q.length(0) + q.length(1), 9u);
}

TEST(LoadBalancer, BiasArityMismatchRejected) {
  LoadBalancerParams p;
  p.core_bias = {1.0, 2.0, 1.0};  // 3 entries, 2 cores
  auto lb = make_load_balancer(p);
  CoreQueues q(2);
  EXPECT_THROW(lb->manage(q, make_ctx({70, 70})), ConfigError);
  EXPECT_THROW(lb->dispatch({make_thread(1)}, q, make_ctx({70, 70})), ConfigError);
}

TEST(LoadBalancer, NonPositiveBiasRejected) {
  LoadBalancerParams p;
  p.core_bias = {1.0, 0.0};
  EXPECT_THROW((void)make_load_balancer(p), ConfigError);
}

TEST(LoadBalancer, NeverMovesRunningHead) {
  LoadBalancerParams p;
  p.imbalance_threshold = 0;
  auto lb = make_load_balancer(p);
  CoreQueues q(2);
  q.push_back(0, make_thread(42));
  lb->manage(q, make_ctx({90, 30}));
  // Only one thread exists and it is running: it must stay.
  EXPECT_EQ(q.length(0), 1u);
  EXPECT_EQ(q.queue(0).front().id, 42u);
}

TEST(LoadBalancer, NoMigrationCount) {
  auto lb = make_load_balancer();
  EXPECT_EQ(lb->migration_count(), 0u);
  EXPECT_EQ(lb->name(), "LB");
}

TEST(Migration, MovesRunningThreadOffHotCore) {
  auto mig = make_reactive_migration();
  CoreQueues q(3);
  q.push_back(0, make_thread(1, 200));
  q.push_back(0, make_thread(2, 200));
  // Core 0 above the 85 C trigger; core 2 coolest.
  mig->manage(q, make_ctx({88, 80, 60}));
  EXPECT_EQ(mig->migration_count(), 1u);
  EXPECT_EQ(q.queue(2).front().id, 1u);          // running thread moved
  EXPECT_EQ(q.queue(2).front().migrations, 1u);  // stamped
  // Migration penalty added to remaining time.
  EXPECT_GT(q.queue(2).front().remaining.as_ms(), 200);
}

TEST(Migration, RequiresMeaningfullyCoolerTarget) {
  MigrationParams p;
  p.min_improvement = 5.0;
  auto mig = make_reactive_migration(p);
  CoreQueues q(2);
  q.push_back(0, make_thread(1));
  // Both cores hot and within 5 C of each other: no migration.
  mig->manage(q, make_ctx({88, 86}));
  EXPECT_EQ(mig->migration_count(), 0u);
  EXPECT_EQ(q.length(0), 1u);
}

TEST(Migration, NoTriggerBelowThreshold) {
  auto mig = make_reactive_migration();
  CoreQueues q(2);
  q.push_back(0, make_thread(1));
  mig->manage(q, make_ctx({84, 60}));
  EXPECT_EQ(mig->migration_count(), 0u);
}

TEST(Migration, DispatchFallsBackToLoadBalancing) {
  auto mig = make_reactive_migration();
  CoreQueues q(2);
  q.push_back(0, make_thread(9));
  mig->dispatch({make_thread(1)}, q, make_ctx({70, 70}));
  EXPECT_EQ(q.length(1), 1u);
  EXPECT_EQ(mig->name(), "Mig");
}

TEST(Talb, WeightedDispatchAvoidsThermallyWeakCores) {
  // Core 0 has weight 2 (thermally disadvantaged): a single thread on it
  // counts like two, so new work prefers core 1 until the weighted lengths
  // equalize (Eq. 8).
  auto talb = make_talb();
  CoreQueues q(2);
  const auto ctx = make_ctx({75, 75}, {2.0, 1.0});
  talb->dispatch({make_thread(1)}, q, ctx);
  EXPECT_EQ(q.length(1), 0u);  // first thread to lowest weighted (both 0 -> core 0? no:
  // both zero-length: tie at 0, first index wins; verify placement happened.
  EXPECT_EQ(q.total_queued(), 1u);
  // Load up: dispatch 6 threads; heavy-weight core must end with fewer.
  for (int i = 2; i <= 7; ++i) talb->dispatch({make_thread(i)}, q, ctx);
  EXPECT_LT(q.length(0), q.length(1));
}

TEST(Talb, WeightedRebalanceMovesWork) {
  TalbParams p;
  p.imbalance_threshold = 0.5;
  auto talb = make_talb(p);
  CoreQueues q(2);
  for (int i = 0; i < 6; ++i) q.push_back(0, make_thread(i));
  // Equal weights: reduces to plain LB.
  talb->manage(q, make_ctx({70, 70}, {1.0, 1.0}));
  EXPECT_EQ(q.length(0), 3u);
  EXPECT_EQ(q.length(1), 3u);
}

TEST(Talb, AsymmetricWeightsShiftTheBalancePoint) {
  TalbParams p;
  p.imbalance_threshold = 0.5;
  auto talb = make_talb(p);
  CoreQueues q(2);
  for (int i = 0; i < 8; ++i) q.push_back(0, make_thread(i));
  // Core 0 weight 3: its threads count triple, so most work moves to core 1.
  talb->manage(q, make_ctx({82, 65}, {3.0, 1.0}));
  EXPECT_LT(q.length(0), q.length(1));
  EXPECT_EQ(q.length(0) + q.length(1), 8u);
}

TEST(Talb, ConvergesWithoutOscillation) {
  // The balance loop must terminate even when a move cannot improve the
  // weighted imbalance (the guard against ping-ponging a single thread).
  auto talb = make_talb();
  CoreQueues q(2);
  q.push_back(0, make_thread(1));
  q.push_back(0, make_thread(2));
  talb->manage(q, make_ctx({70, 70}, {1.0, 10.0}));
  // With such asymmetric weights the thread stays put: moving it to the
  // weight-10 core would make things worse.
  EXPECT_EQ(q.length(0), 2u);
  EXPECT_EQ(talb->name(), "TALB");
}

TEST(Talb, MissingWeightsDefaultToUniform) {
  auto talb = make_talb();
  CoreQueues q(2);
  SchedulerContext ctx;  // no weights at all
  ctx.core_temperature = {70, 70};
  talb->dispatch({make_thread(1), make_thread(2)}, q, ctx);
  EXPECT_EQ(q.total_queued(), 2u);
}

}  // namespace
}  // namespace liquid3d
