// The versioned serve wire envelope (serve/net/envelope.hpp).  Contracts
// under test: every request/response payload round-trips bit-exactly
// (doubles through %.17g, strings through percent-encoding, optionals and
// repeated fields preserved); decoding is strict — a foreign magic, an
// unsupported version, an unknown tag, an unknown key, and malformed
// values all throw ConfigError naming the offender; and peek_request_id
// salvages the correlation id from envelopes too broken to decode.
#include <gtest/gtest.h>

#include <cmath>
#include <string>

#include "common/error.hpp"
#include "geom/stack_spec.hpp"
#include "serve/net/envelope.hpp"

namespace liquid3d {
namespace {

SteadyQuery sample_steady() {
  SteadyQuery q;
  q.config.cooling = CoolingMode::kLiquidVar;
  q.config.layer_pairs = 2;
  q.config.delivery_mode = FlowDeliveryMode::kPaperNominal;
  q.config.thermal.grid_rows = 8;
  q.config.thermal.grid_cols = 9;
  q.config.thermal.inlet_temperature = 32.25;
  q.config.thermal.alternate_flow_direction = true;
  q.config.thermal.solver_backend = SolverBackend::kPcg;
  q.config.thermal.pcg.tolerance = 1.0 / 3.0;  // not exactly representable
  q.config.thermal.pcg.preconditioner = PcgPreconditioner::kSsor;
  q.block_watts = {{0.5, 1.0 / 7.0}, {}, {2.25}};
  q.core_watts = 3.125;
  q.flows_ml_per_min = {11.0, 13.5};
  q.valve_openings = {0.25, 0.75};
  q.pump_setting = 3;
  q.reference_c = 41.5;
  q.max_error_c = 0.01;
  q.force_full = true;
  return q;
}

WireRequest roundtrip_request(const WireRequest& request) {
  return decode_request(encode_request(request));
}

WireResponse roundtrip_response(const WireResponse& response) {
  return decode_response(encode_response(response));
}

TEST(ServeEnvelope, SteadyQueryRoundTripsBitExactly) {
  WireRequest request;
  request.id = 42;
  request.deadline_ms = 1.5;
  request.payload = sample_steady();

  const WireRequest out = roundtrip_request(request);
  EXPECT_EQ(out.id, 42u);
  EXPECT_EQ(out.deadline_ms, 1.5);
  const auto& q = std::get<SteadyQuery>(out.payload);
  const SteadyQuery ref = sample_steady();
  EXPECT_EQ(q.config.cooling, ref.config.cooling);
  EXPECT_EQ(q.config.layer_pairs, ref.config.layer_pairs);
  EXPECT_EQ(q.config.delivery_mode, ref.config.delivery_mode);
  EXPECT_EQ(q.config.thermal.grid_rows, ref.config.thermal.grid_rows);
  EXPECT_EQ(q.config.thermal.inlet_temperature,
            ref.config.thermal.inlet_temperature);
  EXPECT_EQ(q.config.thermal.alternate_flow_direction, true);
  EXPECT_EQ(q.config.thermal.solver_backend, SolverBackend::kPcg);
  // The bit-identity linchpin: a double that has no short decimal form.
  EXPECT_EQ(q.config.thermal.pcg.tolerance, 1.0 / 3.0);
  EXPECT_EQ(q.config.thermal.pcg.preconditioner, PcgPreconditioner::kSsor);
  EXPECT_EQ(q.block_watts, ref.block_watts);
  EXPECT_EQ(q.core_watts, ref.core_watts);
  EXPECT_EQ(q.flows_ml_per_min, ref.flows_ml_per_min);
  EXPECT_EQ(q.valve_openings, ref.valve_openings);
  EXPECT_EQ(q.pump_setting, 3u);
  ASSERT_TRUE(q.reference_c.has_value());
  EXPECT_EQ(*q.reference_c, 41.5);
  EXPECT_EQ(q.max_error_c, 0.01);
  EXPECT_TRUE(q.force_full);
}

TEST(ServeEnvelope, SteadyQueryDefaultsSurviveOmission) {
  // A default-constructed query encodes only what it carries; decoding
  // restores the same defaults (kTopSetting, no stack, empty power map).
  WireRequest request;
  request.payload = SteadyQuery{};
  const WireRequest rt = roundtrip_request(request);
  const auto& q = std::get<SteadyQuery>(rt.payload);
  EXPECT_EQ(q.pump_setting, SteadyQuery::kTopSetting);
  EXPECT_FALSE(q.config.stack.has_value());
  EXPECT_FALSE(q.reference_c.has_value());
  EXPECT_TRUE(q.block_watts.empty());
  EXPECT_FALSE(q.force_full);
}

TEST(ServeEnvelope, WhatIfWithStackSpecRoundTrips) {
  WhatIfQuery q;
  q.scenario = "lb-max-valved/hot corner";  // space forces percent-encoding
  q.benchmark = "Web-med";
  q.duration_s = 2.5;
  q.seed = 77;
  q.layer_pairs = 2;
  q.stack = niagara_stack_spec(2, CoolingType::kLiquid);
  q.grid_rows = 8;
  q.grid_cols = 9;

  WireRequest request;
  request.id = 7;
  request.payload = q;
  const WireRequest rt = roundtrip_request(request);
  const auto& out = std::get<WhatIfQuery>(rt.payload);
  EXPECT_EQ(out.scenario, q.scenario);
  EXPECT_EQ(out.benchmark, q.benchmark);
  EXPECT_EQ(out.duration_s, q.duration_s);
  EXPECT_EQ(out.seed, q.seed);
  EXPECT_EQ(out.layer_pairs, q.layer_pairs);
  ASSERT_TRUE(out.stack.has_value());
  EXPECT_EQ(encode_stack_spec(*out.stack), encode_stack_spec(*q.stack));
  EXPECT_EQ(out.grid_rows, 8u);
  EXPECT_EQ(out.grid_cols, 9u);
}

TEST(ServeEnvelope, ReplayPhasesRoundTripInOrder) {
  ReplayQuery q;
  q.base.scenario = "talb-var";
  q.base.benchmark = "Web-med";
  q.phases.push_back({SimTime::from_s(60), 0.25});
  q.phases.push_back({SimTime::from_ms(90500), 1.0 / 3.0});
  q.trace_period_s = 10.0;

  WireRequest request;
  request.payload = q;
  const WireRequest rt = roundtrip_request(request);
  const auto& out = std::get<ReplayQuery>(rt.payload);
  ASSERT_EQ(out.phases.size(), 2u);
  EXPECT_EQ(out.phases[0].at.as_ms(), 60000);
  EXPECT_EQ(out.phases[0].utilization_scale, 0.25);
  EXPECT_EQ(out.phases[1].at.as_ms(), 90500);
  EXPECT_EQ(out.phases[1].utilization_scale, 1.0 / 3.0);
  EXPECT_EQ(out.trace_period_s, 10.0);
}

TEST(ServeEnvelope, PhaseKeyIsIllegalForPlainWhatIf) {
  ReplayQuery q;
  q.base.scenario = "talb-var";
  q.base.benchmark = "Web-med";
  q.phases.push_back({SimTime::from_s(1), 0.5});
  WireRequest request;
  request.payload = q;
  // Re-tag the replay body as a whatif: the phase line must now be rejected.
  std::string text = encode_request(request);
  const std::string from = "liquid3d-serve 1 replay";
  text.replace(text.find(from), from.size(), "liquid3d-serve 1 whatif");
  EXPECT_THROW((void)decode_request(text), ConfigError);
}

TEST(ServeEnvelope, ResponsesRoundTrip) {
  SteadyAnswer a;
  a.t_max_c = 57.123456789012345;
  a.layer_max_c = {57.1, 56.0};
  a.used_rom = true;
  a.estimated_error_c = 7.3e-11;
  a.certified_error_c = 4.0e-13;
  a.rom_dimension = 21;
  a.elapsed_us = 31.5;
  WireResponse response;
  response.id = 9;
  response.payload = a;
  const WireResponse out = roundtrip_response(response);
  EXPECT_EQ(out.id, 9u);
  const auto& b = std::get<SteadyAnswer>(out.payload);
  EXPECT_EQ(b.t_max_c, a.t_max_c);
  EXPECT_EQ(b.layer_max_c, a.layer_max_c);
  EXPECT_TRUE(b.used_rom);
  EXPECT_EQ(b.estimated_error_c, a.estimated_error_c);
  EXPECT_EQ(b.certified_error_c, a.certified_error_c);
  EXPECT_EQ(b.rom_dimension, 21u);
  EXPECT_EQ(b.elapsed_us, 31.5);
}

TEST(ServeEnvelope, OutcomeWithTraceRoundTripsBitExactly) {
  SessionOutcome o;
  o.result.label = "TALB (Var)";
  o.result.benchmark = "Web-med";
  o.result.avg_tmax = 61.234567890123456;
  o.result.forecast_rmse = 1.0 / 7.0;
  o.result.migrations = 12;
  o.result.avg_flow_skew = 1.0625;
  SampleTrace s;
  s.now = SimTime::from_ms(1500);
  s.tmax = 58.5;
  s.forecast = 59.0;
  s.pump_setting = 4;
  s.flow_ml_per_min = 42.5;
  s.chip_watts = 36.0;
  s.pump_watts = 0.75;
  s.mean_busy = 1.0 / 3.0;
  s.queued_threads = 2;
  o.trace.push_back(s);

  WireResponse response;
  response.id = 3;
  response.payload = o;
  const WireResponse rt = roundtrip_response(response);
  const auto& out = std::get<SessionOutcome>(rt.payload);
  EXPECT_EQ(out.result.label, o.result.label);
  EXPECT_EQ(out.result.benchmark, o.result.benchmark);
  EXPECT_EQ(out.result.avg_tmax, o.result.avg_tmax);
  EXPECT_EQ(out.result.forecast_rmse, o.result.forecast_rmse);
  EXPECT_EQ(out.result.migrations, 12u);
  EXPECT_EQ(out.result.avg_flow_skew, 1.0625);
  ASSERT_EQ(out.trace.size(), 1u);
  EXPECT_EQ(out.trace[0].now.as_ms(), 1500);
  EXPECT_EQ(out.trace[0].tmax, 58.5);
  EXPECT_EQ(out.trace[0].forecast, 59.0);
  EXPECT_EQ(out.trace[0].pump_setting, 4u);
  EXPECT_EQ(out.trace[0].flow_ml_per_min, 42.5);
  EXPECT_EQ(out.trace[0].chip_watts, 36.0);
  EXPECT_EQ(out.trace[0].pump_watts, 0.75);
  EXPECT_EQ(out.trace[0].mean_busy, 1.0 / 3.0);
  EXPECT_EQ(out.trace[0].queued_threads, 2u);
}

TEST(ServeEnvelope, StatsAndErrorRoundTrip) {
  ServeStats stats;
  stats.steady_queries = 5;
  stats.rom_hits = 4;
  stats.wire_accepted = 51;
  stats.wire_rejected = 3;
  stats.wire_timed_out = 1;
  stats.wire_connections = 2;
  stats.wire_queue_hwm = 8;
  WireResponse response;
  response.id = 1;
  response.payload = stats;
  const WireResponse rt = roundtrip_response(response);
  const auto& s = std::get<ServeStats>(rt.payload);
  EXPECT_EQ(s.steady_queries, 5u);
  EXPECT_EQ(s.rom_hits, 4u);
  EXPECT_EQ(s.wire_accepted, 51u);
  EXPECT_EQ(s.wire_rejected, 3u);
  EXPECT_EQ(s.wire_timed_out, 1u);
  EXPECT_EQ(s.wire_connections, 2u);
  EXPECT_EQ(s.wire_queue_hwm, 8u);

  WireResponse err;
  err.id = 2;
  err.payload = ErrorReply{WireErrorCode::kOverloaded,
                           "admission queue full\nretry later"};
  const WireResponse err_rt = roundtrip_response(err);
  const auto& e = std::get<ErrorReply>(err_rt.payload);
  EXPECT_EQ(e.code, WireErrorCode::kOverloaded);
  EXPECT_EQ(e.message, "admission queue full\nretry later");  // newline encoded
}

TEST(ServeEnvelope, StatsRequestRoundTrips) {
  WireRequest request;
  request.id = 99;
  request.payload = StatsQuery{};
  const WireRequest out = roundtrip_request(request);
  EXPECT_EQ(out.id, 99u);
  EXPECT_TRUE(std::holds_alternative<StatsQuery>(out.payload));
}

TEST(ServeEnvelope, RejectsForeignMagicUnknownVersionAndUnknownTag) {
  EXPECT_THROW((void)decode_request("not-liquid3d 1 steady\nid 1\n"),
               ConfigError);
  EXPECT_THROW((void)decode_request("liquid3d-serve 2 steady\nid 1\n"),
               ConfigError);
  EXPECT_THROW((void)decode_request("liquid3d-serve 1 bogus\nid 1\n"),
               ConfigError);
  EXPECT_THROW((void)decode_response("liquid3d-serve 1 bogus\nid 1\n"),
               ConfigError);
}

TEST(ServeEnvelope, RejectsUnknownKeysAndMalformedValues) {
  EXPECT_THROW(
      (void)decode_request("liquid3d-serve 1 steady\nid 1\nbogus_key 3\n"),
      ConfigError);
  EXPECT_THROW(
      (void)decode_request("liquid3d-serve 1 steady\nid 1\ncore_watts abc\n"),
      ConfigError);
  EXPECT_THROW(
      (void)decode_request("liquid3d-serve 1 steady\nid notanumber\n"),
      ConfigError);
  EXPECT_THROW(
      (void)decode_request("liquid3d-serve 1 steady\nid 1\ncooling steam\n"),
      ConfigError);
  // A stats request carries no payload keys at all.
  EXPECT_THROW(
      (void)decode_request("liquid3d-serve 1 stats\nid 1\ncore_watts 3\n"),
      ConfigError);
}

TEST(ServeEnvelope, PeekRequestIdSalvagesBrokenEnvelopes) {
  EXPECT_EQ(peek_request_id("liquid3d-serve 1 steady\nid 42\nbogus_key 1\n"),
            42u);
  EXPECT_EQ(peek_request_id("garbage with no id line"), 0u);
  EXPECT_EQ(peek_request_id("liquid3d-serve 1 steady\nid junk\n"), 0u);
}

TEST(ServeEnvelope, WireErrorCodeNamesRoundTrip) {
  // Every server-sent code must survive the wire; client-local codes
  // (protocol, disconnected) never appear in an ErrorReply.
  for (const WireErrorCode code :
       {WireErrorCode::kBadRequest, WireErrorCode::kOverloaded,
        WireErrorCode::kDeadlineExceeded, WireErrorCode::kShuttingDown,
        WireErrorCode::kSolver, WireErrorCode::kInternal}) {
    WireResponse response;
    response.payload = ErrorReply{code, "x"};
    const WireResponse rt = roundtrip_response(response);
    EXPECT_EQ(std::get<ErrorReply>(rt.payload).code, code) << to_string(code);
  }
}

}  // namespace
}  // namespace liquid3d
