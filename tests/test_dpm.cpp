// Fixed-timeout dynamic power management (power/dpm.hpp).
#include <gtest/gtest.h>

#include "power/dpm.hpp"

namespace liquid3d {
namespace {

constexpr SimTime kTick = SimTime::from_ms(100);

TEST(Dpm, SleepsAfterTimeout) {
  FixedTimeoutDpm dpm(1);  // 200 ms timeout (paper)
  const std::vector<double> idle = {0.0};
  dpm.tick(idle, kTick);  // 100 ms idle
  EXPECT_EQ(dpm.state(0), CoreState::kIdle);
  dpm.tick(idle, kTick);  // 200 ms idle -> timeout reached
  EXPECT_EQ(dpm.state(0), CoreState::kSleep);
  EXPECT_EQ(dpm.sleep_transitions(), 1u);
}

TEST(Dpm, WakesOnWork) {
  FixedTimeoutDpm dpm(1);
  const std::vector<double> idle = {0.0};
  const std::vector<double> busy = {0.5};
  dpm.tick(idle, kTick);
  dpm.tick(idle, kTick);
  ASSERT_EQ(dpm.state(0), CoreState::kSleep);
  dpm.tick(busy, kTick);
  EXPECT_EQ(dpm.state(0), CoreState::kActive);
  EXPECT_EQ(dpm.wake_transitions(), 1u);
}

TEST(Dpm, ActivityResetsIdleTimer) {
  FixedTimeoutDpm dpm(1);
  const std::vector<double> idle = {0.0};
  const std::vector<double> busy = {1.0};
  dpm.tick(idle, kTick);
  dpm.tick(busy, kTick);  // resets the timer
  dpm.tick(idle, kTick);
  EXPECT_EQ(dpm.state(0), CoreState::kIdle);  // only 100 ms idle again
  dpm.tick(idle, kTick);
  EXPECT_EQ(dpm.state(0), CoreState::kSleep);
}

TEST(Dpm, DisabledNeverSleeps) {
  DpmParams params;
  params.enabled = false;
  FixedTimeoutDpm dpm(2, params);
  const std::vector<double> idle = {0.0, 0.0};
  for (int i = 0; i < 20; ++i) dpm.tick(idle, kTick);
  EXPECT_EQ(dpm.state(0), CoreState::kIdle);
  EXPECT_EQ(dpm.state(1), CoreState::kIdle);
  EXPECT_EQ(dpm.sleep_transitions(), 0u);
}

TEST(Dpm, PerCoreIndependence) {
  FixedTimeoutDpm dpm(3);
  // Core 0 busy, cores 1-2 idle.
  for (int i = 0; i < 3; ++i) dpm.tick({1.0, 0.0, 0.0}, kTick);
  EXPECT_EQ(dpm.state(0), CoreState::kActive);
  EXPECT_EQ(dpm.state(1), CoreState::kSleep);
  EXPECT_EQ(dpm.state(2), CoreState::kSleep);
  EXPECT_EQ(dpm.sleep_transitions(), 2u);
}

class TimeoutSweep : public ::testing::TestWithParam<int> {};

TEST_P(TimeoutSweep, SleepHappensExactlyAtTimeout) {
  DpmParams params;
  params.timeout = SimTime::from_ms(GetParam());
  FixedTimeoutDpm dpm(1, params);
  const std::vector<double> idle = {0.0};
  const int ticks_to_sleep = GetParam() / 100;
  for (int i = 0; i < ticks_to_sleep - 1; ++i) {
    dpm.tick(idle, kTick);
    ASSERT_EQ(dpm.state(0), CoreState::kIdle) << "tick " << i;
  }
  dpm.tick(idle, kTick);
  EXPECT_EQ(dpm.state(0), CoreState::kSleep);
}

INSTANTIATE_TEST_SUITE_P(Timeouts, TimeoutSweep, ::testing::Values(100, 200, 500, 1000));

}  // namespace
}  // namespace liquid3d
