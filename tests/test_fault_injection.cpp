// Unit tests for the deterministic fault injector (common/fault_injection).
#include "common/fault_injection.hpp"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "common/error.hpp"

namespace liquid3d::fault_injection {
namespace {

class FaultInjectionTest : public ::testing::Test {
 protected:
  void TearDown() override { disarm_all(); }
};

TEST_F(FaultInjectionTest, DisarmedNeverFailsAndIsCheap) {
  EXPECT_FALSE(armed());
  for (int i = 0; i < 1000; ++i) {
    EXPECT_FALSE(should_fail("pcg.solve"));
  }
  // Disarmed hits take the fast path and are not recorded.
  EXPECT_EQ(hits("pcg.solve"), 0u);
}

TEST_F(FaultInjectionTest, FailsEveryHitWhenArmedBare) {
  ScopedFaults faults("pcg.solve");
  EXPECT_TRUE(armed());
  EXPECT_TRUE(should_fail("pcg.solve"));
  EXPECT_TRUE(should_fail("pcg.solve"));
  EXPECT_FALSE(should_fail("journal.append"));  // other sites untouched
  EXPECT_EQ(hits("pcg.solve"), 2u);
  EXPECT_EQ(hits("journal.append"), 1u);
}

TEST_F(FaultInjectionTest, NthSkipsEarlierHits) {
  ScopedFaults faults("worker.chunk:nth=3");
  EXPECT_FALSE(should_fail("worker.chunk"));
  EXPECT_FALSE(should_fail("worker.chunk"));
  EXPECT_TRUE(should_fail("worker.chunk"));
  EXPECT_TRUE(should_fail("worker.chunk"));  // unlimited count from nth on
}

TEST_F(FaultInjectionTest, CountBoundsTheFailureWindow) {
  ScopedFaults faults("worker.chunk:nth=2:count=2");
  EXPECT_FALSE(should_fail("worker.chunk"));
  EXPECT_TRUE(should_fail("worker.chunk"));
  EXPECT_TRUE(should_fail("worker.chunk"));
  EXPECT_FALSE(should_fail("worker.chunk"));
  EXPECT_FALSE(should_fail("worker.chunk"));
}

TEST_F(FaultInjectionTest, KeyedSpecMatchesOnlyItsKey) {
  ScopedFaults faults("worker.cell:key=7");
  EXPECT_FALSE(should_fail("worker.cell", 3));
  EXPECT_TRUE(should_fail("worker.cell", 7));
  EXPECT_FALSE(should_fail("worker.cell", 8));
  EXPECT_TRUE(should_fail("worker.cell", 7));
}

TEST_F(FaultInjectionTest, SemicolonArmsMultipleSpecs) {
  ScopedFaults faults("worker.cell:key=1;worker.cell:key=2");
  EXPECT_TRUE(should_fail("worker.cell", 1));
  EXPECT_TRUE(should_fail("worker.cell", 2));
  EXPECT_FALSE(should_fail("worker.cell", 3));
}

TEST_F(FaultInjectionTest, ProbabilisticScheduleIsSeedDeterministic) {
  std::vector<bool> first;
  {
    ScopedFaults faults("pcg.solve:p=0.5:seed=42");
    for (int i = 0; i < 64; ++i) first.push_back(should_fail("pcg.solve"));
  }
  std::vector<bool> second;
  {
    ScopedFaults faults("pcg.solve:p=0.5:seed=42");
    for (int i = 0; i < 64; ++i) second.push_back(should_fail("pcg.solve"));
  }
  EXPECT_EQ(first, second);
  // The coin actually lands on both sides somewhere in 64 flips.
  EXPECT_NE(std::count(first.begin(), first.end(), true), 0);
  EXPECT_NE(std::count(first.begin(), first.end(), false), 0);

  std::vector<bool> other_seed;
  {
    ScopedFaults faults("pcg.solve:p=0.5:seed=43");
    for (int i = 0; i < 64; ++i) {
      other_seed.push_back(should_fail("pcg.solve"));
    }
  }
  EXPECT_NE(first, other_seed);
}

TEST_F(FaultInjectionTest, MalformedSpecsThrowConfigError) {
  EXPECT_THROW(arm(":nth=1"), ConfigError);  // empty site inside a spec
  EXPECT_THROW(arm("pcg.solve:bogus=1"), ConfigError);
  EXPECT_THROW(arm("pcg.solve:nth=0"), ConfigError);
  EXPECT_THROW(arm("pcg.solve:p=1.5"), ConfigError);
  EXPECT_THROW(arm("pcg.solve:kill=1"), ConfigError);
  EXPECT_FALSE(armed());  // nothing half-armed
}

TEST_F(FaultInjectionTest, DisarmResetsCountersAndSpecs) {
  arm("pcg.solve:nth=2");
  EXPECT_FALSE(should_fail("pcg.solve"));
  disarm_all();
  EXPECT_FALSE(armed());
  EXPECT_EQ(hits("pcg.solve"), 0u);
  // Re-arming starts a fresh schedule: the first hit is hit #1 again.
  ScopedFaults faults("pcg.solve:nth=2");
  EXPECT_FALSE(should_fail("pcg.solve"));
  EXPECT_TRUE(should_fail("pcg.solve"));
}

TEST_F(FaultInjectionTest, ConcurrentHitsAreCountedExactly) {
  ScopedFaults faults("worker.cell:key=999");  // armed, but no hit matches
  constexpr int kThreads = 8;
  constexpr int kHitsPerThread = 500;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([] {
      for (int i = 0; i < kHitsPerThread; ++i) {
        (void)should_fail("worker.cell", 1);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(hits("worker.cell"),
            static_cast<std::uint64_t>(kThreads) * kHitsPerThread);
}

}  // namespace
}  // namespace liquid3d::fault_injection
