// The observability metrics layer (obs/metrics.hpp): sharded counters,
// gauges, max trackers, log-bucketed histograms, and the registry's text
// exposition.  Contracts under test:
//
//   * concurrent Counter::add / Histogram::record from many threads lose
//     nothing (these tests run under TSan in CI — the Obs suites are in
//     the sanitizer regex);
//   * bucket geometry: every positive finite value lands in the bucket
//     whose [lower, upper) range contains it; out-of-range and pathological
//     values clamp to bucket 0 / the overflow bucket, never misfile;
//   * the kill switch turns Histogram::record and ScopedTimer into no-ops
//     but never gates Counter::add (counters back functional stats);
//   * MaxTracker's window resets independently of its lifetime max;
//   * the registry exposes counters/gauges/histograms as Prometheus-style
//     text, name-sorted.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"

namespace liquid3d::obs {
namespace {

TEST(ObsMetrics, ConcurrentCounterAddsLoseNothing) {
  Counter c;
  constexpr std::size_t kThreads = 8;
  constexpr std::size_t kAdds = 20000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c] {
      for (std::size_t i = 0; i < kAdds; ++i) c.add();
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(c.value(), kThreads * kAdds);

  c.reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(ObsMetrics, CounterAddN) {
  Counter c;
  c.add(5);
  c.add(7);
  EXPECT_EQ(c.value(), 12u);
}

TEST(ObsMetrics, ConcurrentHistogramRecordsLoseNothing) {
  ScopedEnabled on(true);
  Histogram h;
  constexpr std::size_t kThreads = 8;
  constexpr std::size_t kRecords = 10000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h, t] {
      // Distinct per-thread values so the sum check would catch a lost
      // update from any one thread.
      const double v = 1.0e-6 * static_cast<double>(t + 1);
      for (std::size_t i = 0; i < kRecords; ++i) h.record(v);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(h.count(), kThreads * kRecords);
  // Sum of 1..8 = 36.
  EXPECT_NEAR(h.sum(), 36.0e-6 * kRecords, 1e-12 * kRecords);
}

TEST(ObsMetrics, BucketGeometryContainsValue) {
  // Sweep several octaves: each value must land in a bucket whose
  // [lower, upper) range contains it, and edges must be monotone.
  for (double v : {1.0e-9, 3.7e-6, 1.0e-3, 0.999, 1.0, 1.0001, 42.0,
                   1.0e6, 9.99e11}) {
    const std::size_t idx = Histogram::bucket_index(v);
    ASSERT_LT(idx, Histogram::kBuckets);
    EXPECT_LE(Histogram::bucket_lower(idx), v) << "value " << v;
    EXPECT_LT(v, Histogram::bucket_upper(idx)) << "value " << v;
  }
  for (std::size_t i = 1; i + 1 < Histogram::kBuckets; ++i) {
    EXPECT_EQ(Histogram::bucket_upper(i - 1), Histogram::bucket_lower(i));
    EXPECT_LT(Histogram::bucket_lower(i), Histogram::bucket_upper(i));
  }
}

TEST(ObsMetrics, BucketSubdivisionIsQuarterOctave) {
  // Within one octave the four sub-bucket edges step by 2^0.25, so the
  // worst-case relative quantile error is ~19%.
  const std::size_t idx = Histogram::bucket_index(1.0);
  const double ratio =
      Histogram::bucket_upper(idx) / Histogram::bucket_lower(idx);
  EXPECT_NEAR(ratio, std::pow(2.0, 0.25), 1e-12);
}

TEST(ObsMetrics, OverflowUnderflowAndPathologicalValues) {
  ScopedEnabled on(true);
  const std::size_t overflow = Histogram::kBuckets - 1;

  // Above the top edge -> overflow bucket; below the bottom edge ->
  // bucket 0 (clamped, not dropped).
  EXPECT_EQ(Histogram::bucket_index(1.0e15), overflow);
  EXPECT_EQ(Histogram::bucket_index(1.0e-20), 0u);

  // +inf -> overflow; NaN and non-positive fail the positivity test and
  // clamp to bucket 0 (misfiled, never dropped or out of bounds).
  EXPECT_EQ(Histogram::bucket_index(
                std::numeric_limits<double>::infinity()),
            overflow);
  EXPECT_EQ(Histogram::bucket_index(
                std::numeric_limits<double>::quiet_NaN()),
            0u);
  EXPECT_EQ(Histogram::bucket_index(0.0), 0u);
  EXPECT_EQ(Histogram::bucket_index(-3.5), 0u);

  Histogram h;
  h.record(1.0e15);
  h.record(1.0e-20);
  h.record(-1.0);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_EQ(h.bucket_count(overflow), 1u);
  EXPECT_EQ(h.bucket_count(0), 2u);
}

TEST(ObsMetrics, QuantileFindsTheBucketMidpoint) {
  ScopedEnabled on(true);
  Histogram h;
  // 90 fast samples, 10 slow ones: p50 must sit near 100us, p99 near 10ms.
  for (int i = 0; i < 90; ++i) h.record(100e-6);
  for (int i = 0; i < 10; ++i) h.record(10e-3);
  EXPECT_NEAR(h.quantile(0.5), 100e-6, 100e-6 * 0.2);
  EXPECT_NEAR(h.quantile(0.99), 10e-3, 10e-3 * 0.2);
  // Empty histogram -> 0.
  Histogram empty;
  EXPECT_EQ(empty.quantile(0.5), 0.0);

  h.reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.sum(), 0.0);
}

TEST(ObsMetrics, KillSwitchGatesHistogramsNotCounters) {
  ScopedEnabled off(false);
  EXPECT_FALSE(enabled());

  Histogram h;
  h.record(1.0);
  EXPECT_EQ(h.count(), 0u);  // gated

  {
    ScopedTimer t(h);  // armed_ = false: no clock reads, no record
  }
  EXPECT_EQ(h.count(), 0u);

  Counter c;
  c.add();  // counters are functional stats: never gated
  EXPECT_EQ(c.value(), 1u);

  // record_always bypasses the gate (used by callers that pre-check).
  h.record_always(1.0);
  EXPECT_EQ(h.count(), 1u);
}

TEST(ObsMetrics, ScopedTimerRecordsElapsedSeconds) {
  ScopedEnabled on(true);
  Histogram h;
  {
    ScopedTimer t(h);
  }
  EXPECT_EQ(h.count(), 1u);
  EXPECT_GE(h.sum(), 0.0);
  EXPECT_LT(h.sum(), 1.0);  // an empty scope does not take a second

  // stop() is idempotent: a second stop (and the destructor) do nothing.
  ScopedTimer t2(h);
  t2.stop();
  t2.stop();
  EXPECT_EQ(h.count(), 2u);
}

TEST(ObsMetrics, GaugeSetAndAdd) {
  Gauge g;
  g.set(4.5);
  EXPECT_EQ(g.value(), 4.5);
  g.add(-1.5);
  EXPECT_EQ(g.value(), 3.0);
}

TEST(ObsMetrics, MaxTrackerWindowResetsIndependently) {
  MaxTracker m;
  m.observe(5);
  m.observe(3);
  EXPECT_EQ(m.lifetime(), 5u);
  EXPECT_EQ(m.window(), 5u);

  m.reset_window();
  EXPECT_EQ(m.lifetime(), 5u);  // lifetime is monotonic
  EXPECT_EQ(m.window(), 0u);

  m.observe(2);
  EXPECT_EQ(m.lifetime(), 5u);
  EXPECT_EQ(m.window(), 2u);
}

TEST(ObsMetrics, ConcurrentMaxTrackerKeepsTheMax) {
  MaxTracker m;
  constexpr std::size_t kThreads = 8;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&m, t] {
      for (std::uint64_t v = 0; v <= 1000; ++v) m.observe(v * (t + 1));
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(m.lifetime(), 8000u);
}

TEST(ObsMetrics, RegistryExposesPrometheusText) {
  ScopedEnabled on(true);
  Registry& reg = Registry::global();
  reg.counter("test_obs_requests_total").add(3);
  reg.gauge("test_obs_depth").set(2.5);
  Histogram& h = reg.histogram("test_obs_latency_seconds");
  h.reset();
  h.record(1.0e-3);

  const std::string text = reg.prometheus();
  EXPECT_NE(text.find("test_obs_requests_total 3"), std::string::npos) << text;
  EXPECT_NE(text.find("test_obs_depth 2.5"), std::string::npos) << text;
  EXPECT_NE(text.find("test_obs_latency_seconds_count 1"), std::string::npos)
      << text;
  EXPECT_NE(text.find("test_obs_latency_seconds_sum"), std::string::npos);
  EXPECT_NE(
      text.find("test_obs_latency_seconds{quantile=\"0.5\"}"),
      std::string::npos)
      << text;

  // find-or-create returns the same instrument.
  EXPECT_EQ(&reg.counter("test_obs_requests_total"),
            &reg.counter("test_obs_requests_total"));
}

TEST(ObsMetrics, RegistryNamesAreSorted) {
  Registry& reg = Registry::global();
  reg.counter("test_sort_b").add();
  reg.counter("test_sort_a").add();
  const std::string text = reg.prometheus();
  const std::size_t a = text.find("test_sort_a");
  const std::size_t b = text.find("test_sort_b");
  ASSERT_NE(a, std::string::npos);
  ASSERT_NE(b, std::string::npos);
  EXPECT_LT(a, b);
}

}  // namespace
}  // namespace liquid3d::obs
