// Per-cavity flow vectors end to end: ThermalModel3D's vector
// set_cavity_flow (scalar-broadcast equivalence, steady-system cache
// correctness on single-cavity changes, flow steering physics), the
// CavityFlowController, and the per-cavity characterization grid.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/error.hpp"
#include "control/cavity_flow_controller.hpp"
#include "control/characterize.hpp"
#include "coolant/valve_network.hpp"
#include "geom/stack.hpp"
#include "thermal/model3d.hpp"

namespace liquid3d {
namespace {

ThermalModelParams small_params() {
  ThermalModelParams p;
  p.grid_rows = 10;
  p.grid_cols = 11;
  return p;
}

/// 3 W per core on the core die (layer 0), everything else unpowered.
void apply_core_power(ThermalModel3D& m) {
  const Floorplan& fp = m.stack().layer(0).floorplan;
  std::vector<double> watts(fp.block_count(), 0.0);
  for (std::size_t b = 0; b < fp.block_count(); ++b) {
    if (fp.block(b).type == BlockType::kCore) watts[b] = 3.0;
  }
  m.set_block_power(0, watts);
}

VolumetricFlow ml(double v) { return VolumetricFlow::from_ml_per_min(v); }

TEST(CavityFlowVector, ScalarBroadcastIsBitIdenticalToVector) {
  ThermalModel3D scalar_m(make_2layer_system(), small_params());
  ThermalModel3D vector_m(make_2layer_system(), small_params());
  apply_core_power(scalar_m);
  apply_core_power(vector_m);

  scalar_m.set_cavity_flow(ml(9.0));
  vector_m.set_cavity_flow(std::vector<VolumetricFlow>(3, ml(9.0)));
  ASSERT_EQ(vector_m.cavity_flows().size(), 3u);
  EXPECT_DOUBLE_EQ(vector_m.cavity_flow(1).ml_per_min(), 9.0);

  scalar_m.solve_steady_state();
  vector_m.solve_steady_state();
  for (std::size_t l = 0; l < scalar_m.layer_count(); ++l) {
    for (std::size_t c = 0; c < scalar_m.grid().cell_count(); ++c) {
      ASSERT_DOUBLE_EQ(scalar_m.cell_temperature(l, c),
                       vector_m.cell_temperature(l, c));
    }
  }

  // Transient path: identical stepping too.
  scalar_m.initialize(45.0);
  vector_m.initialize(45.0);
  for (int i = 0; i < 5; ++i) {
    scalar_m.step(0.05);
    vector_m.step(0.05);
  }
  EXPECT_DOUBLE_EQ(scalar_m.max_temperature(), vector_m.max_temperature());
  EXPECT_DOUBLE_EQ(scalar_m.fluid_outlet_temperature(1),
                   vector_m.fluid_outlet_temperature(1));
}

TEST(CavityFlowVector, SingleCavityChangeInvalidatesSteadyCache) {
  // The direct steady system is cached per flow *vector*: changing one
  // cavity's flow must rebuild it (a stale factorization would silently
  // keep the old cavity's elimination coefficients).
  ThermalModel3D m(make_2layer_system(), small_params());
  apply_core_power(m);
  m.set_cavity_flow({ml(9.0), ml(9.0), ml(9.0)});
  m.solve_steady_state();
  const double t_uniform = m.max_temperature();

  m.set_cavity_flow({ml(9.0), ml(9.0), ml(18.0)});
  m.solve_steady_state();
  const double t_changed = m.max_temperature();
  EXPECT_GT(std::abs(t_changed - t_uniform), 1e-4);

  // The post-change solution matches a fresh model that never saw the old
  // flow (the steady state is unique given power and flow).
  ThermalModel3D fresh(make_2layer_system(), small_params());
  apply_core_power(fresh);
  fresh.set_cavity_flow({ml(9.0), ml(9.0), ml(18.0)});
  fresh.solve_steady_state();
  for (std::size_t l = 0; l < m.layer_count(); ++l) {
    for (std::size_t c = 0; c < m.grid().cell_count(); ++c) {
      ASSERT_NEAR(m.cell_temperature(l, c), fresh.cell_temperature(l, c), 1e-7);
    }
  }

  // And changing back reproduces the original answer (no key aliasing).
  m.set_cavity_flow({ml(9.0), ml(9.0), ml(9.0)});
  m.solve_steady_state();
  EXPECT_NEAR(m.max_temperature(), t_uniform, 1e-7);
}

TEST(CavityFlowVector, SteeringFlowTowardHotCavitiesLowersTmax) {
  // All power sits on the core die (layer 0), which cavities 0 and 1 touch;
  // cavity 2 only cools the unpowered cache die.  Moving cavity 2's share
  // to the hot cavities at the same total must lower T_max — the whole
  // point of valve-network delivery.
  ThermalModel3D uniform(make_2layer_system(), small_params());
  ThermalModel3D skewed(make_2layer_system(), small_params());
  apply_core_power(uniform);
  apply_core_power(skewed);

  uniform.set_cavity_flow({ml(6.0), ml(6.0), ml(6.0)});
  skewed.set_cavity_flow({ml(8.0), ml(8.0), ml(2.0)});  // same 18 ml/min total
  uniform.solve_steady_state();
  skewed.solve_steady_state();
  EXPECT_LT(skewed.max_temperature(), uniform.max_temperature());
}

TEST(CavityFlowVector, CavityMaxTemperatureTracksAdjacentDies) {
  ThermalModel3D m(make_2layer_system(), small_params());
  apply_core_power(m);
  m.set_cavity_flow(ml(9.0));
  m.solve_steady_state();
  // Cavities 0 and 1 touch the powered core die; cavity 2 only the cache
  // die above it, which runs cooler.
  EXPECT_GT(m.cavity_max_temperature(0), m.cavity_max_temperature(2));
  EXPECT_GT(m.cavity_max_temperature(1), m.cavity_max_temperature(2));
  EXPECT_DOUBLE_EQ(m.cavity_max_temperature(1), m.max_temperature());
  std::vector<double> all;
  m.cavity_max_temperatures(all);
  ASSERT_EQ(all.size(), 3u);
  EXPECT_DOUBLE_EQ(all[0], m.cavity_max_temperature(0));

  EXPECT_THROW((void)m.cavity_max_temperature(3), ConfigError);
  EXPECT_THROW(m.set_cavity_flow({ml(1.0), ml(1.0)}), ConfigError);  // arity
}

// ---------------------------------------------------------------------------
// CavityFlowController
// ---------------------------------------------------------------------------

TEST(CavityFlowController, UniformFallbackWithoutObservations) {
  const CavityFlowController c(3);
  const auto openings = c.valve_openings({});
  ASSERT_EQ(openings.size(), 3u);
  for (double o : openings) EXPECT_DOUBLE_EQ(o, 1.0);
}

TEST(CavityFlowController, HottestCavityOpensFullyCoolestThrottles) {
  const CavityFlowController c(3);
  // Spread 15 K > the 8 K full-scale span: full throttle depth.
  const auto openings = c.valve_openings({70.0, 75.0, 60.0});
  EXPECT_DOUBLE_EQ(openings[1], 1.0);
  // The coolest cavity bottoms out within one quantum of the lossy floor.
  EXPECT_LE(openings[2], c.params().min_opening + c.params().opening_quantum);
  EXPECT_GE(openings[2], c.params().min_opening);
  EXPECT_GT(openings[0], openings[2]);
  EXPECT_LT(openings[0], openings[1]);
}

TEST(CavityFlowController, ThrottleDepthScalesWithSpread) {
  const CavityFlowController c(3);
  // Spread 2 K (one quarter of the 8 K full scale): the coolest cavity only
  // closes a quarter of the way to the floor — gentle corrections for small
  // asymmetries, so the controller cannot invert the thermal profile.
  const auto openings = c.valve_openings({70.0, 72.0, 71.0});
  const double depth = 2.0 / c.params().full_scale_span_c;
  const double q = c.params().opening_quantum;
  EXPECT_DOUBLE_EQ(openings[1], 1.0);
  // Raw proportional value, snapped to the quantum grid.
  EXPECT_NEAR(openings[0], 1.0 - (1.0 - c.params().min_opening) * depth, q);
  EXPECT_DOUBLE_EQ(openings[0], std::round(openings[0] / q) * q);  // on-grid
  EXPECT_GT(openings[2], openings[0]);
}

TEST(CavityFlowController, QuantumNotDividingOneStillYieldsInRangeOpenings) {
  // A 0.15 quantum does not divide 1: un-clamped snapping would round the
  // hottest cavity to 1.05 (past fully open).  Every opening must stay in
  // [min_opening, 1].
  CavityFlowControllerParams p;
  p.opening_quantum = 0.15;
  const CavityFlowController c(3, p);
  const auto openings = c.valve_openings({70.0, 75.0, 60.0});
  for (double o : openings) {
    EXPECT_GE(o, p.min_opening);
    EXPECT_LE(o, 1.0);
  }
  EXPECT_DOUBLE_EQ(openings[1], 1.0);  // hottest clamps back to fully open
}

TEST(CavityFlowController, QuantizationAbsorbsSmallDrift) {
  // Chatter suppression: sample-to-sample temperature drift that moves the
  // raw proportional openings by less than half a quantum produces the
  // *identical* command, so the valve actuator sees no change at all.
  const CavityFlowController c(3);
  const auto a = c.valve_openings({70.0, 74.0, 72.0});
  const auto b = c.valve_openings({70.05, 74.1, 72.02});
  EXPECT_EQ(a, b);
}

TEST(CavityFlowController, ActivationBandKeepsValvesUniform) {
  const CavityFlowController c(3);
  // Spread 0.2 K < the 0.75 K activation band: nothing to win by steering.
  const auto openings = c.valve_openings({70.0, 70.2, 70.1});
  for (double o : openings) EXPECT_DOUBLE_EQ(o, 1.0);
}

TEST(CavityFlowController, RejectsBadArityAndParams) {
  const CavityFlowController c(3);
  EXPECT_THROW((void)c.valve_openings({70.0, 71.0}), ConfigError);
  CavityFlowControllerParams bad;
  bad.full_scale_span_c = 0.0;
  EXPECT_THROW(CavityFlowController(3, bad), ConfigError);
}

// ---------------------------------------------------------------------------
// Per-cavity characterization grid
// ---------------------------------------------------------------------------

TEST(CavitySkewGrid, GridCapturesAsymmetricCavitySensitivity) {
  ThermalModelParams p = small_params();
  const Stack3D stack = make_2layer_system();
  auto factory = [&]() {
    return std::make_unique<CharacterizationHarness>(
        stack, p, PowerModelParams{}, PumpModel::laing_ddc(),
        FlowDeliveryMode::kPressureLimited);
  };
  const MicrochannelModel channels(stack.cavity(), p.coolant, p.channel_params);
  const ValveNetwork net(
      FlowDelivery(PumpModel::laing_ddc(), FlowDeliveryMode::kPressureLimited,
                   channels, stack.width(), stack.cavity_count()),
      ValveNetworkParams{});

  const CavitySkewGrid grid =
      sample_cavity_skew_grid(factory, net, /*setting=*/2, /*utilization=*/0.6,
                              /*opening_points=*/3, /*threads=*/2);
  ASSERT_EQ(grid.tmax.size(), 3u);
  ASSERT_EQ(grid.openings.size(), 3u);
  EXPECT_DOUBLE_EQ(grid.openings.front(), net.params().min_opening);
  EXPECT_DOUBLE_EQ(grid.openings.back(), 1.0);
  for (const auto& row : grid.tmax) ASSERT_EQ(row.size(), 3u);
  // Cavities 0 and 1 touch the powered core die: starving them concentrates
  // heat, so T_max rises as their opening shrinks.
  EXPECT_GT(grid.tmax[0].front(), grid.tmax[0].back());
  EXPECT_GT(grid.tmax[1].front(), grid.tmax[1].back());
  // Cavity 2 only cools the cache die: starving it hands its flow to the
  // hot cavities, so T_max *drops* — the asymmetry the valve controller
  // exploits, made visible by the characterization grid.
  EXPECT_LT(grid.tmax[2].front(), grid.tmax[2].back());
  // The fully-open corner of every row is the same operating point.
  EXPECT_NEAR(grid.tmax[0].back(), grid.tmax[1].back(), 0.05);
  EXPECT_NEAR(grid.tmax[1].back(), grid.tmax[2].back(), 0.05);
}

}  // namespace
}  // namespace liquid3d
