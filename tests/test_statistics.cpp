// Streaming and batch statistics (common/statistics.hpp).
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "common/statistics.hpp"

namespace liquid3d {
namespace {

TEST(RunningStats, MatchesClosedFormOnSmallSet) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStats, EmptyAndSingle) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.variance(), 0.0);
  s.add(3.5);
  EXPECT_EQ(s.mean(), 3.5);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.min(), 3.5);
  EXPECT_EQ(s.max(), 3.5);
}

class MergeSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MergeSweep, MergeEqualsCombinedStream) {
  // Property: merging two accumulators is identical to accumulating the
  // concatenated stream, for arbitrary splits.
  Rng rng(GetParam());
  const std::size_t n = 200 + rng.uniform_index(300);
  const std::size_t split = rng.uniform_index(n);
  RunningStats a;
  RunningStats b;
  RunningStats combined;
  for (std::size_t i = 0; i < n; ++i) {
    const double x = rng.normal(10.0, 4.0);
    combined.add(x);
    (i < split ? a : b).add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), combined.count());
  EXPECT_NEAR(a.mean(), combined.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), combined.variance(), 1e-7);
  EXPECT_DOUBLE_EQ(a.min(), combined.min());
  EXPECT_DOUBLE_EQ(a.max(), combined.max());
}

INSTANTIATE_TEST_SUITE_P(Seeds, MergeSweep, ::testing::Values(1, 2, 3, 11, 42, 1234));

TEST(FractionCounter, CountsAndPercent) {
  FractionCounter f;
  EXPECT_EQ(f.fraction(), 0.0);
  for (int i = 0; i < 10; ++i) f.add(i < 3);
  EXPECT_EQ(f.hits(), 3u);
  EXPECT_EQ(f.total(), 10u);
  EXPECT_DOUBLE_EQ(f.percent(), 30.0);
  f.reset();
  EXPECT_EQ(f.total(), 0u);
}

TEST(Percentile, InterpolatesBetweenOrderStatistics) {
  std::vector<double> v = {10, 20, 30, 40};
  EXPECT_DOUBLE_EQ(percentile(v, 0), 10.0);
  EXPECT_DOUBLE_EQ(percentile(v, 100), 40.0);
  EXPECT_DOUBLE_EQ(percentile(v, 50), 25.0);
  EXPECT_NEAR(percentile(v, 25), 17.5, 1e-12);
  EXPECT_THROW((void)percentile({}, 50), ConfigError);
  EXPECT_THROW((void)percentile(v, 101), ConfigError);
}

TEST(Correlation, DetectsPerfectAndAnti) {
  const std::vector<double> x = {1, 2, 3, 4, 5};
  const std::vector<double> y = {2, 4, 6, 8, 10};
  std::vector<double> z = {10, 8, 6, 4, 2};
  EXPECT_NEAR(pearson_correlation(x, y), 1.0, 1e-12);
  EXPECT_NEAR(pearson_correlation(x, z), -1.0, 1e-12);
  const std::vector<double> c = {3, 3, 3, 3, 3};
  EXPECT_EQ(pearson_correlation(x, c), 0.0);  // degenerate
}

TEST(Rmse, ComputesRootMeanSquare) {
  EXPECT_DOUBLE_EQ(rmse({1, 2, 3}, {1, 2, 3}), 0.0);
  EXPECT_NEAR(rmse({0, 0}, {3, 4}), std::sqrt(12.5), 1e-12);
  EXPECT_THROW((void)rmse({1}, {1, 2}), ConfigError);
}

}  // namespace
}  // namespace liquid3d
