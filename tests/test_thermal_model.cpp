// The 3D thermal model (thermal/model3d.hpp): conservation, monotonicity,
// transient-vs-steady consistency, TSV and grid-refinement behaviour.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "common/fault_injection.hpp"
#include "coolant/flow.hpp"
#include "geom/sites.hpp"
#include "geom/stack.hpp"
#include "thermal/model3d.hpp"

namespace liquid3d {
namespace {

ThermalModelParams fast_params() {
  ThermalModelParams p;
  p.grid_rows = 12;
  p.grid_cols = 13;
  return p;
}

/// Uniform power on all cores of every layer; zero elsewhere.
void set_core_power(ThermalModel3D& m, double watts_per_core) {
  const Stack3D& stack = m.stack();
  for (std::size_t l = 0; l < stack.layer_count(); ++l) {
    const Floorplan& fp = stack.layer(l).floorplan;
    std::vector<double> w(fp.block_count(), 0.0);
    for (std::size_t b = 0; b < fp.block_count(); ++b) {
      if (fp.block(b).type == BlockType::kCore) w[b] = watts_per_core;
    }
    m.set_block_power(l, w);
  }
}

VolumetricFlow setting_flow(std::size_t s) {
  const MicrochannelModel channels(CavitySpec{}, CoolantProperties::water());
  const FlowDelivery d(PumpModel::laing_ddc(), FlowDeliveryMode::kPressureLimited,
                       channels, 11.5e-3, 3);
  return d.per_cavity(s);
}

TEST(ThermalModel, ZeroPowerSettlesAtInletTemperature) {
  ThermalModel3D m(make_2layer_system(), fast_params());
  m.set_cavity_flow(setting_flow(2));
  m.solve_steady_state();
  EXPECT_NEAR(m.max_temperature(), m.params().inlet_temperature, 0.05);
  EXPECT_NEAR(m.min_temperature(), m.params().inlet_temperature, 0.05);
}

TEST(ThermalModel, SteadyStateConservesEnergyLiquid) {
  // All injected power must leave through the coolant.
  ThermalModel3D m(make_2layer_system(), fast_params());
  m.set_cavity_flow(setting_flow(3));
  set_core_power(m, 2.0);
  m.solve_steady_state();
  double absorbed = 0.0;
  for (std::size_t k = 0; k < m.stack().cavity_count(); ++k) {
    absorbed += m.cavity_absorbed_power(k);
  }
  EXPECT_NEAR(absorbed, m.total_power(), 0.02 * m.total_power());
}

TEST(ThermalModel, MoreFlowMeansCooler) {
  ThermalModel3D m(make_2layer_system(), fast_params());
  set_core_power(m, 3.0);
  double prev = 1e9;
  for (std::size_t s = 0; s < 5; ++s) {
    m.set_cavity_flow(setting_flow(s));
    m.solve_steady_state();
    const double tmax = m.max_temperature();
    EXPECT_LT(tmax, prev) << "setting " << s;
    prev = tmax;
  }
}

TEST(ThermalModel, MorePowerMeansHotter) {
  ThermalModel3D m(make_2layer_system(), fast_params());
  m.set_cavity_flow(setting_flow(2));
  double prev = 0.0;
  for (double p : {0.5, 1.0, 2.0, 3.0}) {
    set_core_power(m, p);
    m.solve_steady_state();
    EXPECT_GT(m.max_temperature(), prev);
    prev = m.max_temperature();
  }
}

TEST(ThermalModel, TransientConvergesToSteadyState) {
  ThermalModel3D steady(make_2layer_system(), fast_params());
  steady.set_cavity_flow(setting_flow(2));
  set_core_power(steady, 2.5);
  steady.solve_steady_state();

  ThermalModel3D trans(make_2layer_system(), fast_params());
  trans.set_cavity_flow(setting_flow(2));
  set_core_power(trans, 2.5);
  trans.initialize(trans.params().inlet_temperature);
  for (int i = 0; i < 2000; ++i) trans.step(0.05);  // 100 s simulated

  EXPECT_NEAR(trans.max_temperature(), steady.max_temperature(), 0.2);
  EXPECT_NEAR(trans.min_temperature(), steady.min_temperature(), 0.2);
}

TEST(ThermalModel, CoolantHeatsDownstream) {
  ThermalModelParams p = fast_params();
  p.alternate_flow_direction = false;  // all cavities flow +x for this check
  ThermalModel3D m(make_2layer_system(), p);
  m.set_cavity_flow(setting_flow(1));
  set_core_power(m, 3.0);
  m.solve_steady_state();
  for (std::size_t k = 0; k < m.stack().cavity_count(); ++k) {
    EXPECT_GT(m.fluid_outlet_temperature(k), m.params().inlet_temperature + 1.0)
        << "cavity " << k;
  }
  // Junction cells get hotter toward the outlet (ΔT_heat accumulation).
  const Grid& g = m.grid();
  const std::size_t row = g.rows() / 2;
  const double t_in_side = m.cell_temperature(0, g.index(row, 1));
  const double t_out_side = m.cell_temperature(0, g.index(row, g.cols() - 2));
  EXPECT_GT(t_out_side, t_in_side + 1.0);
}

TEST(ThermalModel, CounterflowWastesCapacityInAdvectionLimitedRegime) {
  // At the pressure-limited flows the coolant saturates to the wall
  // temperature within a couple of cells (advection-limited cooling).
  // Reversing the middle cavity then makes it exhaust at the cold end: it
  // absorbs far less than its share and the stack runs hotter.  This is why
  // alternate_flow_direction defaults to off (see ThermalModelParams).
  auto run = [](bool alternate) {
    ThermalModelParams p = fast_params();
    p.alternate_flow_direction = alternate;
    ThermalModel3D m(make_2layer_system(), p);
    m.set_cavity_flow(setting_flow(1));
    set_core_power(m, 3.0);
    m.solve_steady_state();
    return m;
  };
  ThermalModel3D uni = run(false);
  ThermalModel3D alt = run(true);

  // Unidirectional: the three cavities share the load roughly equally.
  const double uni_mid_share =
      uni.cavity_absorbed_power(1) /
      (uni.cavity_absorbed_power(0) + uni.cavity_absorbed_power(2));
  EXPECT_GT(uni_mid_share, 0.35);
  // Counterflow: the reversed middle cavity carries a small fraction.
  const double alt_mid_share =
      alt.cavity_absorbed_power(1) /
      (alt.cavity_absorbed_power(0) + alt.cavity_absorbed_power(2));
  EXPECT_LT(alt_mid_share, 0.25);
  // And the stack runs hotter overall.
  EXPECT_GT(alt.max_temperature(), uni.max_temperature() + 3.0);
}

TEST(ThermalModel, TsvsCoolTheCrossbarRegion) {
  // Copper TSVs lower the vertical resistance under the crossbar, so the
  // crossbar block runs cooler with TSVs than without, all else equal.
  Stack3D with_tsv = make_2layer_system();
  Stack3D no_tsv = make_2layer_system();
  no_tsv.set_tsvs(TsvSpec{0, 50e-6, 400.0});

  auto xbar_temp = [](Stack3D stack) {
    ThermalModel3D m(std::move(stack), fast_params());
    m.set_cavity_flow(setting_flow(1));
    const Floorplan& fp = m.stack().layer(0).floorplan;
    std::vector<double> w(fp.block_count(), 0.0);
    for (std::size_t b = 0; b < fp.block_count(); ++b) {
      if (fp.block(b).type == BlockType::kCrossbar) w[b] = 3.0;
    }
    m.set_block_power(0, w);
    m.solve_steady_state();
    return m.block_temperature(0, *fp.find("xbar"));
  };
  EXPECT_LT(xbar_temp(std::move(with_tsv)), xbar_temp(std::move(no_tsv)));
}

TEST(ThermalModel, AirPackageTracksPower) {
  ThermalModel3D m(make_2layer_system(CoolingType::kAir), fast_params());
  set_core_power(m, 1.0);
  m.solve_steady_state();
  const double sink_low = m.sink_temperature();
  const double tmax_low = m.max_temperature();
  set_core_power(m, 3.0);
  m.solve_steady_state();
  EXPECT_GT(m.sink_temperature(), sink_low);
  EXPECT_GT(m.max_temperature(), tmax_low);
  EXPECT_GT(m.sink_temperature(), m.params().ambient_temperature);
  // Junction is hotter than the sink (heat flows outward).
  EXPECT_GT(m.max_temperature(), m.sink_temperature());
}

TEST(ThermalModel, AirTransientMatchesSteady) {
  ThermalModel3D steady(make_2layer_system(CoolingType::kAir), fast_params());
  set_core_power(steady, 2.0);
  steady.solve_steady_state();

  ThermalModel3D trans(make_2layer_system(CoolingType::kAir), fast_params());
  set_core_power(trans, 2.0);
  trans.initialize(trans.params().ambient_temperature);
  for (int i = 0; i < 4000; ++i) trans.step(0.1);  // 400 s: package tau is slow
  EXPECT_NEAR(trans.max_temperature(), steady.max_temperature(), 0.5);
  EXPECT_NEAR(trans.sink_temperature(), steady.sink_temperature(), 0.5);
}

TEST(ThermalModel, LiquidBeatsAirAtSamePower) {
  // The paper's premise: interlayer liquid cooling removes heat far better
  // than the conventional package.
  ThermalModel3D liquid(make_2layer_system(), fast_params());
  liquid.set_cavity_flow(setting_flow(4));
  set_core_power(liquid, 3.0);
  liquid.solve_steady_state();

  ThermalModel3D air(make_2layer_system(CoolingType::kAir), fast_params());
  set_core_power(air, 3.0);
  air.solve_steady_state();

  EXPECT_LT(liquid.max_temperature(), air.max_temperature());
}

class GridRefinementSweep
    : public ::testing::TestWithParam<std::pair<std::size_t, std::size_t>> {};

TEST_P(GridRefinementSweep, TmaxIsGridStable) {
  // Refining the grid must not change the steady maximum temperature by
  // more than a few percent of its rise over the inlet.
  ThermalModelParams coarse = fast_params();
  ThermalModelParams fine = fast_params();
  fine.grid_rows = GetParam().first;
  fine.grid_cols = GetParam().second;

  auto tmax = [](ThermalModelParams p) {
    ThermalModel3D m(make_2layer_system(), p);
    m.set_cavity_flow(setting_flow(2));
    set_core_power(m, 3.0);
    m.solve_steady_state();
    return m.max_temperature();
  };
  const double t_coarse = tmax(coarse);
  const double t_fine = tmax(fine);
  const double rise = t_coarse - 45.0;
  EXPECT_NEAR(t_fine, t_coarse, 0.15 * rise);
}

INSTANTIATE_TEST_SUITE_P(
    Grids, GridRefinementSweep,
    ::testing::Values(std::pair<std::size_t, std::size_t>{23, 26},
                      std::pair<std::size_t, std::size_t>{34, 39},
                      std::pair<std::size_t, std::size_t>{46, 52}));

TEST(ThermalModel, StagnantCoolantHasNoSteadyStateAndHeatsWithoutBound) {
  ThermalModel3D m(make_2layer_system(), fast_params());
  set_core_power(m, 1.0);
  m.set_cavity_flow(setting_flow(0));
  m.solve_steady_state();
  const double flowing = m.max_temperature();

  // Pump off: a steady solve must be rejected (no heat path to anywhere)...
  m.set_cavity_flow(VolumetricFlow{});
  EXPECT_THROW(m.solve_steady_state(), ConfigError);

  // ...and the transient just keeps climbing.
  m.initialize(m.params().inlet_temperature);
  for (int i = 0; i < 400; ++i) m.step(0.1);
  const double t_40s = m.max_temperature();
  for (int i = 0; i < 400; ++i) m.step(0.1);
  EXPECT_GT(m.max_temperature(), t_40s + 1.0);
  EXPECT_GT(m.max_temperature(), flowing);
}

TEST(ThermalModel, BlockReadbackConsistent) {
  ThermalModel3D m(make_2layer_system(), fast_params());
  m.set_cavity_flow(setting_flow(2));
  set_core_power(m, 3.0);
  m.solve_steady_state();
  const Floorplan& fp = m.stack().layer(0).floorplan;
  for (std::size_t b = 0; b < fp.block_count(); ++b) {
    EXPECT_GE(m.block_temperature(0, b), m.block_mean_temperature(0, b) - 1e-9);
    EXPECT_LE(m.block_temperature(0, b), m.max_temperature() + 1e-9);
  }
  // Cores (powered) run hotter than the die's unpowered blocks.
  const std::vector<BlockSite> cores = enumerate_sites(m.stack(), BlockType::kCore);
  double core_min = 1e9;
  for (const BlockSite& c : cores) {
    core_min = std::min(core_min, m.block_temperature(c.layer, c.block));
  }
  EXPECT_GT(core_min, m.min_temperature());
}

// --- Failure taxonomy: numerical outcomes raise SolverError, not
// ConfigError (nothing wrong with the inputs) or LogicError (nothing wrong
// with the code). ---------------------------------------------------------

TEST(ThermalModelFailures, NonFinitePowerThrowsSolverError) {
  ThermalModel3D m(make_2layer_system(), fast_params());
  const Floorplan& fp = m.stack().layer(0).floorplan;

  std::vector<double> w(fp.block_count(), 1.0);
  w[0] = std::numeric_limits<double>::quiet_NaN();
  EXPECT_THROW(m.set_block_power(0, w), SolverError);
  w[0] = std::numeric_limits<double>::infinity();
  EXPECT_THROW(m.set_block_power(0, w), SolverError);

  // Merely invalid (finite, negative) power is still the caller's mistake.
  w[0] = -1.0;
  EXPECT_THROW(m.set_block_power(0, w), ConfigError);
}

TEST(ThermalModelFailures, PcgIterationCapThrowsSolverErrorWithDiagnostics) {
  ThermalModelParams p = fast_params();
  p.solver_backend = SolverBackend::kPcg;
  p.pcg.max_iterations = 1;  // no chance against a cold transient step
  ThermalModel3D m(make_2layer_system(), p);
  m.set_cavity_flow(setting_flow(2));
  set_core_power(m, 2.0);
  try {
    m.step(0.1);
    FAIL() << "expected SolverError";
  } catch (const SolverError& e) {
    EXPECT_EQ(e.backend(), "pcg");
    EXPECT_EQ(e.iterations(), 1u);
    EXPECT_GT(e.residual(), 0.0);
    EXPECT_NE(std::string(e.what()).find("backend=pcg"), std::string::npos);
  }
}

TEST(ThermalModelFailures, SteadyStallThrowsSolverErrorWithDiagnostics) {
  ThermalModelParams p = fast_params();
  // The PCG backend always takes the pseudo-transient continuation (the
  // direct fluid-eliminated solve would bypass the iteration cap entirely).
  p.solver_backend = SolverBackend::kPcg;
  p.max_steady_iterations = 2;  // force the pseudo-transient loop to stall
  p.steady_tolerance = 1e-12;
  ThermalModel3D m(make_2layer_system(), p);
  m.set_cavity_flow(setting_flow(2));
  set_core_power(m, 2.0);
  try {
    m.solve_steady_state();
    FAIL() << "expected SolverError";
  } catch (const SolverError& e) {
    EXPECT_EQ(e.iterations(), 2u);
    EXPECT_GT(e.residual(), 0.0);  // the last pseudo-transient delta in K
  }
}

TEST(ThermalModelFailures, InjectedPcgFaultSurfacesAsSolverError) {
  ThermalModelParams p = fast_params();
  p.solver_backend = SolverBackend::kPcg;
  ThermalModel3D m(make_2layer_system(), p);
  m.set_cavity_flow(setting_flow(2));
  set_core_power(m, 2.0);
  m.step(0.1);  // sanity: healthy solves succeed before the fault arms

  fault_injection::ScopedFaults faults("pcg.solve");
  EXPECT_THROW(m.step(0.1), SolverError);
}

}  // namespace
}  // namespace liquid3d
