// Multi-queue execution substrate (sched/queues.hpp).
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "sched/queues.hpp"

namespace liquid3d {
namespace {

Thread make_thread(std::uint64_t id, int ms) {
  Thread t;
  t.id = id;
  t.total_length = SimTime::from_ms(ms);
  t.remaining = t.total_length;
  return t;
}

constexpr SimTime kTick = SimTime::from_ms(100);

TEST(Queues, ExecutesFifoWithinTick) {
  CoreQueues q(1);
  q.push_back(0, make_thread(1, 30));
  q.push_back(0, make_thread(2, 30));
  q.push_back(0, make_thread(3, 30));
  const auto r = q.execute(kTick);
  EXPECT_EQ(r.completed, 3u);
  EXPECT_NEAR(r.busy_fraction[0], 0.9, 1e-9);
  EXPECT_EQ(q.length(0), 0u);
}

TEST(Queues, PartialExecutionCarriesRemainder) {
  CoreQueues q(1);
  q.push_back(0, make_thread(1, 250));
  auto r = q.execute(kTick);
  EXPECT_EQ(r.completed, 0u);
  EXPECT_DOUBLE_EQ(r.busy_fraction[0], 1.0);
  EXPECT_EQ(q.queue(0).front().remaining.as_ms(), 150);
  r = q.execute(kTick);
  EXPECT_EQ(q.queue(0).front().remaining.as_ms(), 50);
  r = q.execute(kTick);
  EXPECT_EQ(r.completed, 1u);
  EXPECT_NEAR(r.busy_fraction[0], 0.5, 1e-9);
}

TEST(Queues, IdleCoreReportsZeroBusy) {
  CoreQueues q(2);
  q.push_back(0, make_thread(1, 100));
  const auto r = q.execute(kTick);
  EXPECT_DOUBLE_EQ(r.busy_fraction[0], 1.0);
  EXPECT_DOUBLE_EQ(r.busy_fraction[1], 0.0);
}

TEST(Queues, BacklogAndLengthTrackContents) {
  CoreQueues q(2);
  q.push_back(0, make_thread(1, 100));
  q.push_back(0, make_thread(2, 50));
  EXPECT_EQ(q.length(0), 2u);
  EXPECT_EQ(q.total_queued(), 2u);
  EXPECT_NEAR(q.backlog_seconds(0), 0.15, 1e-9);
  EXPECT_NEAR(q.backlog_seconds(1), 0.0, 1e-9);
}

TEST(Queues, PopFrontAndBack) {
  CoreQueues q(1);
  q.push_back(0, make_thread(1, 10));
  q.push_back(0, make_thread(2, 10));
  q.push_back(0, make_thread(3, 10));
  EXPECT_EQ(q.pop_back(0).id, 3u);
  EXPECT_EQ(q.pop_front(0).id, 1u);
  EXPECT_EQ(q.length(0), 1u);
  EXPECT_EQ(q.queue(0).front().id, 2u);
}

TEST(Queues, PushFrontPreempts) {
  CoreQueues q(1);
  q.push_back(0, make_thread(1, 500));
  q.push_front(0, make_thread(2, 40));
  const auto r = q.execute(kTick);
  // Thread 2 runs first (40 ms), then thread 1 gets the remaining 60 ms.
  EXPECT_EQ(r.completed, 1u);
  EXPECT_EQ(q.queue(0).front().id, 1u);
  EXPECT_EQ(q.queue(0).front().remaining.as_ms(), 440);
}

TEST(Queues, CompletedTotalAccumulates) {
  CoreQueues q(1);
  for (int i = 0; i < 5; ++i) q.push_back(0, make_thread(i, 20));
  q.execute(kTick);
  EXPECT_EQ(q.completed_total(), 5u);
  for (int i = 0; i < 3; ++i) q.push_back(0, make_thread(10 + i, 20));
  q.execute(kTick);
  EXPECT_EQ(q.completed_total(), 8u);
}

TEST(Queues, WorkIsConservedAcrossTicks) {
  // Total executed busy time equals total thread length regardless of how
  // threads straddle tick boundaries.
  CoreQueues q(2);
  double total_work = 0.0;
  for (int i = 0; i < 7; ++i) {
    const int len = 37 + 61 * i % 250;
    q.push_back(i % 2, make_thread(i, len));
    total_work += len * 1e-3;
  }
  double busy_time = 0.0;
  for (int t = 0; t < 30; ++t) {
    const auto r = q.execute(kTick);
    busy_time += (r.busy_fraction[0] + r.busy_fraction[1]) * 0.1;
  }
  EXPECT_NEAR(busy_time, total_work, 1e-9);
  EXPECT_EQ(q.total_queued(), 0u);
}

TEST(Queues, ZeroCoresRejected) { EXPECT_THROW(CoreQueues(0), ConfigError); }

}  // namespace
}  // namespace liquid3d
