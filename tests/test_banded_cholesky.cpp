// Banded SPD direct solver (thermal/banded_cholesky.hpp), validated against
// the dense Gaussian solver on random diffusion-like matrices.
#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "common/linalg.hpp"
#include "common/rng.hpp"
#include "thermal/banded_cholesky.hpp"

namespace liquid3d {
namespace {

TEST(BandedCholesky, SolvesSmallKnownSystem) {
  // Tridiagonal Laplacian-like SPD system.
  BandedSpdMatrix m(4, 1);
  for (std::size_t i = 0; i < 4; ++i) m.add_diagonal(i, 2.0);
  for (std::size_t i = 0; i + 1 < 4; ++i) m.add_coupling(i, i + 1, 1.0);
  // add_coupling adds +1 to both diagonals and -1 off-diagonal:
  // diag = [3,4,4,3], off = -1.
  m.factorize();
  std::vector<double> rhs = {1, 0, 0, 1};
  m.solve(rhs);
  // Verify by residual against the explicit matrix.
  const double d[4] = {3, 4, 4, 3};
  for (std::size_t i = 0; i < 4; ++i) {
    double ax = d[i] * rhs[i];
    if (i > 0) ax -= rhs[i - 1];
    if (i < 3) ax += -rhs[i + 1];
    const double b = (i == 0 || i == 3) ? 1.0 : 0.0;
    EXPECT_NEAR(ax, b, 1e-12);
  }
}

struct BandCase {
  std::size_t n;
  std::size_t bandwidth;
  std::uint64_t seed;
};

class BandedSweep : public ::testing::TestWithParam<BandCase> {};

TEST_P(BandedSweep, MatchesDenseSolver) {
  const auto [n, bw, seed] = GetParam();
  Rng rng(seed);

  BandedSpdMatrix banded(n, bw);
  Matrix dense(n, n);

  // Random conduction network restricted to the band: this is exactly the
  // structure the thermal model produces (diagonal capacitance + couplings).
  for (std::size_t i = 0; i < n; ++i) {
    const double c = 0.5 + rng.uniform();
    banded.add_diagonal(i, c);
    dense(i, i) += c;
  }
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < std::min(n, i + bw + 1); ++j) {
      if (!rng.bernoulli(0.4)) continue;
      const double g = rng.uniform(0.1, 2.0);
      banded.add_coupling(i, j, g);
      dense(i, i) += g;
      dense(j, j) += g;
      dense(i, j) -= g;
      dense(j, i) -= g;
    }
  }

  std::vector<double> b(n);
  for (double& v : b) v = rng.uniform(-3, 3);

  banded.factorize();
  std::vector<double> x_banded = b;
  banded.solve(x_banded);
  const std::vector<double> x_dense = solve_linear(dense, b);

  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_NEAR(x_banded[i], x_dense[i], 1e-8 * (1.0 + std::abs(x_dense[i])));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, BandedSweep,
    ::testing::Values(BandCase{10, 1, 1}, BandCase{25, 3, 2}, BandCase{50, 7, 3},
                      BandCase{80, 12, 4}, BandCase{120, 20, 5}, BandCase{64, 63, 6},
                      BandCase{200, 2, 7}));

TEST(BandedCholesky, MultipleSolvesReuseFactorization) {
  BandedSpdMatrix m(3, 1);
  for (std::size_t i = 0; i < 3; ++i) m.add_diagonal(i, 1.0);
  m.add_coupling(0, 1, 0.5);
  m.add_coupling(1, 2, 0.5);
  m.factorize();
  for (double scale : {1.0, 2.0, -3.0}) {
    std::vector<double> rhs = {scale, 0.0, 0.0};
    m.solve(rhs);
    EXPECT_NE(rhs[0], 0.0);
    // Linearity: solution scales with rhs.
    std::vector<double> rhs2 = {2.0 * scale, 0.0, 0.0};
    m.solve(rhs2);
    EXPECT_NEAR(rhs2[0], 2.0 * rhs[0], 1e-12);
  }
}

TEST(BandedCholesky, NonSpdDetected) {
  BandedSpdMatrix m(2, 1);
  m.add_diagonal(0, 1.0);
  m.add_diagonal(1, -2.0);  // negative pivot -> not SPD
  EXPECT_THROW(m.factorize(), LogicError);
}

TEST(BandedCholesky, RhsSizeMismatchRejected) {
  BandedSpdMatrix m(3, 1);
  for (std::size_t i = 0; i < 3; ++i) m.add_diagonal(i, 1.0);
  m.factorize();
  std::vector<double> bad = {1.0, 2.0};
  EXPECT_THROW(m.solve(bad), ConfigError);
}

}  // namespace
}  // namespace liquid3d
