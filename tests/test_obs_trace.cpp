// Per-query tracing (obs/trace.hpp): the fixed-size span ring, snapshot
// ordering, and the ScopedSpan gate.  The ObsTrace suite also runs under
// TSan in CI.
#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "obs/trace.hpp"

namespace liquid3d::obs {
namespace {

/// Restore the global tracing flag when a test flips it.
class ScopedTracing {
 public:
  explicit ScopedTracing(bool on) : prev_(tracing_enabled()) {
    set_tracing(on);
  }
  ~ScopedTracing() { set_tracing(prev_); }

 private:
  bool prev_;
};

TraceSpan make_span(std::uint64_t trace_id, const char* stage) {
  TraceSpan s;
  s.trace_id = trace_id;
  s.span_id = next_span_id();
  s.stage = stage;
  s.start_ns = trace_id * 100;
  s.end_ns = trace_id * 100 + 50;
  return s;
}

TEST(ObsTrace, MonotonicClock) {
  const std::uint64_t a = now_ns();
  const std::uint64_t b = now_ns();
  EXPECT_LE(a, b);
}

TEST(ObsTrace, IdsAreFreshAndNonzero) {
  const std::uint64_t t1 = next_trace_id();
  const std::uint64_t t2 = next_trace_id();
  EXPECT_NE(t1, 0u);
  EXPECT_NE(t1, t2);
  const std::uint32_t s1 = next_span_id();
  const std::uint32_t s2 = next_span_id();
  EXPECT_NE(s1, 0u);
  EXPECT_NE(s1, s2);
}

TEST(ObsTrace, RingKeepsTheMostRecentSpans) {
  TraceRing ring(4);
  for (std::uint64_t i = 1; i <= 6; ++i) ring.record(make_span(i, "solve"));
  EXPECT_EQ(ring.size(), 4u);

  // Overwrote 1 and 2: the snapshot is {3,4,5,6}, oldest first.
  const std::vector<TraceSpan> spans = ring.snapshot();
  ASSERT_EQ(spans.size(), 4u);
  for (std::size_t i = 0; i < spans.size(); ++i) {
    EXPECT_EQ(spans[i].trace_id, i + 3);
  }
}

TEST(ObsTrace, SnapshotLimitReturnsTheMostRecent) {
  TraceRing ring(8);
  for (std::uint64_t i = 1; i <= 5; ++i) ring.record(make_span(i, "solve"));

  const std::vector<TraceSpan> two = ring.snapshot(2);
  ASSERT_EQ(two.size(), 2u);
  EXPECT_EQ(two[0].trace_id, 4u);  // still oldest-first
  EXPECT_EQ(two[1].trace_id, 5u);

  // A limit past the retained count returns everything.
  EXPECT_EQ(ring.snapshot(100).size(), 5u);

  ring.clear();
  EXPECT_EQ(ring.size(), 0u);
  EXPECT_TRUE(ring.snapshot().empty());
}

TEST(ObsTrace, ConcurrentRecordsAreTSanClean) {
  TraceRing ring(64);
  constexpr std::size_t kThreads = 4;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&ring, t] {
      for (std::uint64_t i = 0; i < 100; ++i) {
        ring.record(make_span(t * 1000 + i, "solve"));
      }
      (void)ring.snapshot(8);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(ring.size(), 64u);
}

TEST(ObsTrace, ScopedSpanDisabledRecordsNothing) {
  ScopedTracing off(false);
  TraceRing::global().clear();
  {
    ScopedSpan span(next_trace_id(), 0, "request");
    span.set_stage("renamed");
    EXPECT_EQ(span.span_id(), 0u);  // unarmed
  }
  EXPECT_EQ(TraceRing::global().size(), 0u);
}

TEST(ObsTrace, ScopedSpanRecordsIntoTheGlobalRing) {
  ScopedTracing on(true);
  TraceRing::global().clear();
  const std::uint64_t trace_id = next_trace_id();
  std::uint32_t root_id = 0;
  {
    ScopedSpan root(trace_id, 0, "request");
    root_id = root.span_id();
    EXPECT_NE(root_id, 0u);
    {
      ScopedSpan child(trace_id, root_id, "solve");
      child.set_stage("solve/rom");
    }
  }
  const std::vector<TraceSpan> spans = TraceRing::global().snapshot();
  ASSERT_EQ(spans.size(), 2u);
  // The child finishes (and records) first.
  EXPECT_EQ(spans[0].stage, "solve/rom");
  EXPECT_EQ(spans[0].parent_id, root_id);
  EXPECT_EQ(spans[0].trace_id, trace_id);
  EXPECT_EQ(spans[1].stage, "request");
  EXPECT_EQ(spans[1].parent_id, 0u);
  for (const TraceSpan& s : spans) {
    EXPECT_LE(s.start_ns, s.end_ns);
  }
  // The child's window nests inside the root's.
  EXPECT_GE(spans[0].start_ns, spans[1].start_ns);
  EXPECT_LE(spans[0].end_ns, spans[1].end_ns);
  TraceRing::global().clear();
}

TEST(ObsTrace, FinishIsIdempotent) {
  ScopedTracing on(true);
  TraceRing::global().clear();
  {
    ScopedSpan span(next_trace_id(), 0, "request");
    span.finish();
    span.finish();  // second finish is a no-op; so is the destructor
  }
  EXPECT_EQ(TraceRing::global().size(), 1u);
  TraceRing::global().clear();
}

}  // namespace
}  // namespace liquid3d::obs
