// Sharded CharacterizationCache (sim/characterization_cache.hpp).  The
// locking contract under test: concurrent same-key requesters share exactly
// one build (pointer-equal artifacts), different keys build independently,
// and a rejected request leaves the cache clean.  Runs under TSan in CI.
#include <gtest/gtest.h>

#include <memory>
#include <thread>
#include <vector>

#include "common/error.hpp"
#include "sim/characterization_cache.hpp"

namespace liquid3d {
namespace {

SimulationConfig small_config(CoolingMode cooling, std::size_t rows = 8,
                              std::size_t cols = 9) {
  SimulationConfig cfg;
  cfg.cooling = cooling;
  cfg.thermal.grid_rows = rows;
  cfg.thermal.grid_cols = cols;
  return cfg;
}

TEST(CharacterizationCache, SameKeyConcurrentGetsShareOneBuild) {
  CharacterizationCache cache;
  const SimulationConfig cfg = small_config(CoolingMode::kAir);

  constexpr std::size_t kThreads = 4;
  std::vector<std::shared_ptr<const TalbWeightTable>> results(kThreads);
  std::vector<std::thread> threads;
  for (std::size_t i = 0; i < kThreads; ++i) {
    threads.emplace_back(
        [&cache, &cfg, &results, i] { results[i] = cache.talb_weights(cfg); });
  }
  for (std::thread& t : threads) t.join();

  // Pointer equality proves the build ran once and everyone shared it.
  for (std::size_t i = 1; i < kThreads; ++i) {
    EXPECT_EQ(results[i].get(), results[0].get());
  }
  EXPECT_EQ(cache.size(), 1u);
}

TEST(CharacterizationCache, DistinctKeysBuildIndependently) {
  CharacterizationCache cache;
  const SimulationConfig a = small_config(CoolingMode::kAir, 8, 9);
  const SimulationConfig b = small_config(CoolingMode::kAir, 9, 8);
  ASSERT_NE(CharacterizationCache::talb_key(a), CharacterizationCache::talb_key(b));

  std::shared_ptr<const TalbWeightTable> wa, wb;
  std::thread ta([&] { wa = cache.talb_weights(a); });
  std::thread tb([&] { wb = cache.talb_weights(b); });
  ta.join();
  tb.join();

  EXPECT_NE(wa.get(), wb.get());
  EXPECT_EQ(cache.size(), 2u);

  // Repeat lookups hit the existing entries.
  EXPECT_EQ(cache.talb_weights(a).get(), wa.get());
  EXPECT_EQ(cache.size(), 2u);
}

TEST(CharacterizationCache, RejectedRequestLeavesCacheClean) {
  CharacterizationCache cache;
  // A flow LUT for an air configuration is invalid; the cache must reject
  // it before publishing any entry.
  EXPECT_THROW((void)cache.flow_lut(small_config(CoolingMode::kAir)),
               ConfigError);
  EXPECT_EQ(cache.size(), 0u);
}

TEST(CharacterizationCache, ClearEmptiesEveryShard) {
  CharacterizationCache cache;
  (void)cache.talb_weights(small_config(CoolingMode::kAir, 8, 9));
  (void)cache.talb_weights(small_config(CoolingMode::kAir, 9, 8));
  EXPECT_EQ(cache.size(), 2u);
  cache.clear();
  EXPECT_EQ(cache.size(), 0u);
}

}  // namespace
}  // namespace liquid3d
