// Power and leakage models (power/power_model.hpp, power/leakage.hpp).
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "power/power_model.hpp"

namespace liquid3d {
namespace {

TEST(LeakageModel, UnityAtReference) {
  const LeakageModel m;
  EXPECT_DOUBLE_EQ(m.scale(80.0), 1.0);
}

TEST(LeakageModel, MonotoneInTemperature) {
  const LeakageModel m;
  double prev = 0.0;
  for (double t = 40.0; t <= 120.0; t += 5.0) {
    const double s = m.scale(t);
    EXPECT_GT(s, prev);
    prev = s;
  }
}

TEST(LeakageModel, QuadraticGrowthAboveReference) {
  // The polynomial (Su et al.) grows superlinearly: the increase from
  // 80->120 exceeds twice the increase from 80->100.
  const LeakageModel m;
  const double d1 = m.scale(100.0) - m.scale(80.0);
  const double d2 = m.scale(120.0) - m.scale(80.0);
  EXPECT_GT(d2, 2.0 * d1);
}

TEST(LeakageModel, PowerScalesReference) {
  const LeakageModel m;
  EXPECT_DOUBLE_EQ(m.power(0.5, 80.0), 0.5);
  EXPECT_GT(m.power(0.5, 100.0), 0.5);
  EXPECT_LT(m.power(0.5, 60.0), 0.5);
  EXPECT_GE(m.power(0.5, -300.0), 0.0);  // clamped, never negative
}

TEST(LeakageModel, RejectsDecreasingCoefficients) {
  LeakageParams p;
  p.linear_coeff = -0.1;
  EXPECT_THROW(LeakageModel{p}, ConfigError);
}

TEST(PowerModel, CoreStateOrdering) {
  const PowerModel m;
  const double t = 80.0;
  const double sleep = m.core_power(CoreState::kSleep, 0.0, 1.0, t);
  const double idle = m.core_power(CoreState::kIdle, 0.0, 1.0, t);
  const double active = m.core_power(CoreState::kActive, 1.0, 1.0, t);
  EXPECT_LT(sleep, idle);
  EXPECT_LT(idle, active);
  EXPECT_NEAR(sleep, 0.02, 1e-12);  // paper's sleep power, leakage folded in
}

TEST(PowerModel, ActivePowerInterpolatesWithBusyFraction) {
  const PowerModel m;
  const double t = 80.0;
  const double p25 = m.core_power(CoreState::kActive, 0.25, 1.0, t);
  const double p75 = m.core_power(CoreState::kActive, 0.75, 1.0, t);
  const double p0 = m.core_power(CoreState::kActive, 0.0, 1.0, t);
  const double p100 = m.core_power(CoreState::kActive, 1.0, 1.0, t);
  EXPECT_NEAR(p25, p0 + 0.25 * (p100 - p0), 1e-9);
  EXPECT_NEAR(p75, p0 + 0.75 * (p100 - p0), 1e-9);
}

TEST(PowerModel, FullyBusyCoreDrawsPaperActivePower) {
  // 3 W active power (paper / ISSCC'06) at nominal activity, plus leakage.
  PowerModelParams params;
  const PowerModel m(params);
  const double p = m.core_power(CoreState::kActive, 1.0, 1.0, 80.0);
  EXPECT_NEAR(p, 3.0 + params.core_leak_ref_w, 1e-9);
}

TEST(PowerModel, ActivityFactorScalesDynamicPart) {
  const PowerModel m;
  const double lo = m.core_power(CoreState::kActive, 1.0, 0.92, 80.0);
  const double hi = m.core_power(CoreState::kActive, 1.0, 1.08, 80.0);
  EXPECT_GT(hi, lo);
  EXPECT_NEAR(hi - lo, 3.0 * 0.16, 1e-9);
}

TEST(PowerModel, L2MatchesCacti) {
  PowerModelParams params;
  const PowerModel m(params);
  // 1.28 W per L2 (paper / CACTI 4.0) plus leakage at reference temp.
  EXPECT_NEAR(m.l2_power(80.0), 1.28 + params.l2_leak_ref_w, 1e-9);
}

TEST(PowerModel, CrossbarScalesWithActivityAndMemory) {
  const PowerModel m;
  const double t = 80.0;
  const double idle = m.crossbar_power(0.0, 0.0, t);
  const double half = m.crossbar_power(0.5, 0.5, t);
  const double full = m.crossbar_power(1.0, 1.0, t);
  EXPECT_LT(idle, half);
  EXPECT_LT(half, full);
  // Clamped inputs do not blow up.
  EXPECT_DOUBLE_EQ(m.crossbar_power(2.0, 5.0, t), full);
  EXPECT_DOUBLE_EQ(m.crossbar_power(-1.0, -1.0, t), idle);
}

TEST(PowerModel, MiscScalesWithArea) {
  const PowerModel m;
  const double small = m.misc_power(10e-6, 80.0);
  const double large = m.misc_power(20e-6, 80.0);
  EXPECT_NEAR(large, 2.0 * small, 1e-12);
}

TEST(PowerModel, LeakageRaisesAllUnitPowersWithTemperature) {
  const PowerModel m;
  EXPECT_GT(m.core_power(CoreState::kActive, 1.0, 1.0, 100.0),
            m.core_power(CoreState::kActive, 1.0, 1.0, 60.0));
  EXPECT_GT(m.l2_power(100.0), m.l2_power(60.0));
  EXPECT_GT(m.crossbar_power(0.5, 0.5, 100.0), m.crossbar_power(0.5, 0.5, 60.0));
  EXPECT_GT(m.misc_power(10e-6, 100.0), m.misc_power(10e-6, 60.0));
}

TEST(PowerModel, InvalidConfigsRejected) {
  PowerModelParams bad;
  bad.core_idle_w = 5.0;  // above active
  EXPECT_THROW(PowerModel{bad}, ConfigError);
  const PowerModel m;
  EXPECT_THROW((void)m.core_power(CoreState::kActive, 1.5, 1.0, 80.0), ConfigError);
}

}  // namespace
}  // namespace liquid3d
