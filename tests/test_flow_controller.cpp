// Hysteretic proactive flow controller (control/flow_controller.hpp).
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "control/flow_controller.hpp"

namespace liquid3d {
namespace {

/// Same analytic LUT as test_flow_lut (required-setting crossings at
/// u = 0.25, 0.6, 0.8, 0.906 against the 80 C target).
double analytic_tmax(double u, std::size_t s) {
  const double base[] = {70.0, 62.0, 56.0, 51.0, 47.0};
  const double slope[] = {40.0, 30.0, 30.0, 32.0, 17.0};
  return base[s] + slope[s] * u;
}

FlowRateController make_controller(double hysteresis = 2.0) {
  FlowControllerParams p;
  p.hysteresis = hysteresis;
  return FlowRateController(FlowLut::characterize(analytic_tmax, 5, 80.0, 101), p);
}

TEST(FlowController, ScalesUpImmediately) {
  const FlowRateController c = make_controller();
  // Forecast far above any boundary at the current setting: go to max.
  EXPECT_EQ(c.decide(/*forecast=*/120.0, /*measured=*/70.0, /*current=*/0), 4u);
  // Moderate forecast: an intermediate setting.
  const std::size_t mid = c.decide(85.0, 70.0, 0);
  EXPECT_GT(mid, 0u);
  EXPECT_LT(mid, 5u);
}

TEST(FlowController, HoldsWhenForecastWithinCurrentBand) {
  const FlowRateController c = make_controller();
  // At setting 2 the band to stay at 2 (observed at setting 2) spans
  // [boundary(2,2), boundary(2,3)); a forecast inside holds.
  const double in_band = (c.lut().boundary(2, 2) + c.lut().boundary(2, 3)) / 2.0;
  EXPECT_EQ(c.decide(in_band, in_band, 2), 2u);
}

TEST(FlowController, DownswitchRequiresHysteresisMargin) {
  const FlowRateController c = make_controller(2.0);
  const double boundary = c.lut().boundary(3, 3);  // where setting 3 starts
  // Just below the boundary: required would be 2, but hysteresis holds 3.
  EXPECT_EQ(c.decide(boundary - 1.0, boundary - 1.0, 3), 3u);
  // More than the 2 C margin below: allowed to drop.
  EXPECT_LT(c.decide(boundary - 2.5, boundary - 2.5, 3), 3u);
}

TEST(FlowController, ZeroHysteresisDropsAtBoundary) {
  const FlowRateController c = make_controller(0.0);
  const double boundary = c.lut().boundary(3, 3);
  EXPECT_LT(c.decide(boundary - 0.1, boundary - 0.1, 3), 3u);
}

TEST(FlowController, MeasuredGuardOverridesOptimisticForecast) {
  const FlowRateController c = make_controller();
  // Forecast says cool, measurement says hot: the guard must win and scale
  // up (the paper's "guarantee" depends on never trusting a stale forecast
  // downward).
  const std::size_t decision = c.decide(/*forecast=*/50.0, /*measured=*/115.0, 1);
  EXPECT_EQ(decision, 4u);
}

TEST(FlowController, MeasuredGuardBlocksPrematureDownswitch) {
  const FlowRateController c = make_controller();
  const double boundary = c.lut().boundary(4, 4);
  // Forecast comfortably low but the measurement still near the boundary:
  // hold the higher setting.
  EXPECT_EQ(c.decide(boundary - 10.0, boundary - 0.5, 4), 4u);
}

TEST(FlowController, GuardCanBeDisabled) {
  FlowControllerParams p;
  p.guard_on_measured = false;
  const FlowRateController c(FlowLut::characterize(analytic_tmax, 5, 80.0, 101), p);
  // Without the guard, a hot measurement with a cool forecast does not
  // force max (the reactive-vs-proactive ablation uses this).
  EXPECT_LT(c.decide(50.0, 115.0, 1), 4u);
}

TEST(FlowController, StableFixedPointUnderConstantLoad) {
  // Simulate the closed loop coarsely: constant utilization, temperature
  // settles at the steady value of the commanded setting.  The controller
  // must reach a fixed point (no oscillation), as the paper's hysteresis
  // is designed to guarantee.
  const FlowRateController c = make_controller();
  const double u = 0.55;
  std::size_t setting = 4;  // safe start
  std::size_t changes = 0;
  std::size_t last = setting;
  for (int iter = 0; iter < 50; ++iter) {
    const double t = analytic_tmax(u, setting);
    setting = c.decide(t, t, setting);
    if (setting != last) {
      ++changes;
      last = setting;
    }
  }
  EXPECT_LE(changes, 3u);  // settles after at most a few moves
  // And the fixed point honours the target.
  EXPECT_LE(analytic_tmax(u, setting), 80.0);
}

TEST(FlowController, ScaleDownIsClampedToOneSettingPerDecision) {
  // A very cool forecast at setting 4 requires setting 0 (more than one
  // below), but the hysteresis check only consults boundary(4, 4) — jumping
  // to 0 would skip the boundaries of settings 3, 2, and 1.  The fixed
  // controller descends one setting per decision.
  const FlowRateController c = make_controller();
  EXPECT_EQ(c.decide(30.0, 30.0, 4), 3u);
  EXPECT_EQ(c.decide(30.0, 30.0, 3), 2u);
  EXPECT_EQ(c.decide(30.0, 30.0, 2), 1u);
  EXPECT_EQ(c.decide(30.0, 30.0, 1), 0u);
  EXPECT_EQ(c.decide(30.0, 30.0, 0), 0u);
}

TEST(FlowController, GradualDescentRevalidatesEveryBoundary) {
  // Closed loop at light load: each decision re-reads the temperature the
  // *new* setting produces, so every intermediate setting's boundary is
  // consulted on the way down.  At u = 0.2 the descent runs 4->3->2->1 one
  // step per decision and parks at 1: setting 1's own boundary (69.8 °C at
  // the analytic LUT) is less than 2 °C above the observed 68 °C, so the
  // hysteresis holds the last step — exactly the guard the old jump to the
  // required setting skipped.
  const FlowRateController c = make_controller(2.0);
  const double u = 0.2;
  std::size_t s = 4;
  std::vector<std::size_t> path;
  for (int i = 0; i < 6; ++i) {
    const double t = analytic_tmax(u, s);
    s = c.decide(t, t, s);
    path.push_back(s);
  }
  const std::vector<std::size_t> expected = {3, 2, 1, 1, 1, 1};
  EXPECT_EQ(path, expected);
}

TEST(FlowController, NegativeHysteresisRejected) {
  FlowControllerParams p;
  p.hysteresis = -1.0;
  EXPECT_THROW(FlowRateController(FlowLut::characterize(analytic_tmax, 5, 80.0, 21), p),
               ConfigError);
}

}  // namespace
}  // namespace liquid3d
