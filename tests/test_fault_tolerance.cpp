// End-to-end failure containment: injected solver faults become FAILED
// journal records through the worker's quarantine ladder, survivors stay
// bit-identical to fault-free runs, and the degraded merge turns the
// failures into a manifest instead of an exception.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "common/fault_injection.hpp"
#include "sim/report.hpp"
#include "sweep/journal.hpp"
#include "sweep/merge.hpp"
#include "sweep/plan.hpp"
#include "sweep/worker.hpp"
#include "workload/benchmarks.hpp"

namespace liquid3d {
namespace {

/// Same tiny grid as test_sweep.cpp: 2 scenarios x 2 workloads, 2 s, coarse
/// thermal grid — cells 0..3.
SweepGridSpec tiny_grid() {
  SweepGridSpec grid;
  grid.scenarios = {ScenarioRegistry::global().at("lb-air"),
                    ScenarioRegistry::global().at("talb-var")};
  grid.workloads = {"gzip", "Web-med"};
  grid.duration = SimTime::from_s(2);
  grid.seed = 7;
  grid.grid_rows = 8;
  grid.grid_cols = 9;
  return grid;
}

std::string temp_path(const std::string& name) {
  return ::testing::TempDir() + "/liquid3d_ft_" + name;
}

class FaultToleranceTest : public ::testing::Test {
 protected:
  void TearDown() override { fault_injection::disarm_all(); }

  static SweepCellFile full_shard(const SweepGridSpec& grid) {
    SweepCellFile shard;
    shard.grid = grid;
    shard.cells = expand_grid(grid);
    return shard;
  }

  static std::vector<PolicySummary> single_process(const SweepGridSpec& grid) {
    std::vector<BenchmarkSpec> workloads;
    for (const std::string& name : grid.workloads) {
      workloads.push_back(*find_benchmark(name));
    }
    ExperimentSuite suite(to_suite_config(grid));
    return suite.run(grid.scenarios, workloads);
  }

  /// results_identical() against the fault-free reference, restricted to
  /// the cells NOT in `excluded` — the (b) clause of the acceptance
  /// criterion.
  static void expect_survivors_identical(
      const SweepGridSpec& grid, const std::vector<PolicySummary>& merged,
      const std::vector<std::size_t>& excluded) {
    const std::vector<PolicySummary> reference = single_process(grid);
    ASSERT_EQ(merged.size(), reference.size());
    const std::size_t workloads = grid.workloads.size();
    for (std::size_t s = 0; s < reference.size(); ++s) {
      for (std::size_t w = 0; w < workloads; ++w) {
        const std::size_t cell = s * workloads + w;
        if (std::find(excluded.begin(), excluded.end(), cell) !=
            excluded.end()) {
          continue;
        }
        EXPECT_TRUE(results_identical(reference[s].per_workload[w],
                                      merged[s].per_workload[w]))
            << "cell " << cell << " diverged from the fault-free reference";
      }
    }
  }
};

TEST_F(FaultToleranceTest, InjectedCellFaultsBecomeFailedRecords) {
  const SweepGridSpec grid = tiny_grid();
  const std::string journal = temp_path("quarantine_batched.csv");
  std::remove(journal.c_str());

  fault_injection::arm("worker.cell:key=1;worker.cell:key=2");
  const SweepWorkerStats stats = run_sweep_shard(full_shard(grid), journal);
  fault_injection::disarm_all();

  EXPECT_EQ(stats.completed, 2u);
  EXPECT_EQ(stats.failed, 2u);
  EXPECT_EQ(stats.remaining, 0u);

  std::size_t failed_records = 0;
  for (const JournalEntry& e : SweepJournal::load(journal)) {
    if (!e.failed) continue;
    ++failed_records;
    EXPECT_TRUE(e.cell == 1 || e.cell == 2);
    EXPECT_EQ(e.attempts, 3u);  // the full default ladder ran dry
    EXPECT_NE(e.error.find("injected worker.cell fault"), std::string::npos);
    EXPECT_FALSE(e.scenario.empty());
    EXPECT_FALSE(e.workload.empty());
  }
  EXPECT_EQ(failed_records, 2u);

  // Degraded merge: manifest names exactly the injected cells, and the
  // surviving cells are bit-identical to the fault-free reference.
  SweepMergeStats merge_stats;
  std::vector<SweepFailure> manifest;
  SweepMergeOptions partial;
  partial.allow_partial = true;
  const std::vector<PolicySummary> merged =
      merge_sweep_entries(full_shard(grid), SweepJournal::load(journal),
                          &merge_stats, partial, &manifest);
  EXPECT_EQ(merge_stats.failed, 2u);
  EXPECT_EQ(merge_stats.missing, 0u);
  ASSERT_EQ(manifest.size(), 2u);
  EXPECT_EQ(manifest[0].cell, 1u);
  EXPECT_EQ(manifest[1].cell, 2u);
  EXPECT_EQ(manifest[0].attempts, 3u);
  expect_survivors_identical(grid, merged, {1, 2});

  // Strict mode still refuses the same journals.
  EXPECT_THROW((void)merge_sweep_entries(full_shard(grid),
                                         SweepJournal::load(journal)),
               ConfigError);
  std::remove(journal.c_str());
}

TEST_F(FaultToleranceTest, SingleCellChunksSurviveFullyQuarantinedChunks) {
  // With --batch 1 a faulted cell leaves its chunk with ZERO buildable
  // configs; the batch phase must skip the (empty) lockstep group instead
  // of handing BatchRunner an empty session list.  Regression test for the
  // crash the chaos smoke first caught.
  const SweepGridSpec grid = tiny_grid();
  const std::string journal = temp_path("one_cell_chunks.csv");
  std::remove(journal.c_str());

  SweepWorkerOptions options;
  options.batch_limit = 1;
  fault_injection::arm("worker.cell:key=1;worker.cell:key=2");
  const SweepWorkerStats stats =
      run_sweep_shard(full_shard(grid), journal, options);
  fault_injection::disarm_all();

  EXPECT_EQ(stats.completed, 2u);
  EXPECT_EQ(stats.failed, 2u);
  EXPECT_EQ(stats.remaining, 0u);
  const std::vector<PolicySummary> merged = merge_sweep_entries(
      full_shard(grid), SweepJournal::load(journal), nullptr,
      SweepMergeOptions{.allow_partial = true});
  expect_survivors_identical(grid, merged, {1, 2});
  std::remove(journal.c_str());
}

TEST_F(FaultToleranceTest, EscalationLadderRecoversTransientFaults) {
  // The fault hits cell 3 exactly once: the as-configured rung fails, the
  // direct-backend rung succeeds, and the shard completes with no FAILED
  // record and full stats.
  const SweepGridSpec grid = tiny_grid();
  const std::string journal = temp_path("escalate.csv");
  std::remove(journal.c_str());

  fault_injection::arm("worker.cell:key=3:count=1");
  const SweepWorkerStats stats = run_sweep_shard(full_shard(grid), journal);
  fault_injection::disarm_all();

  EXPECT_EQ(stats.completed, 4u);
  EXPECT_EQ(stats.failed, 0u);
  for (const JournalEntry& e : SweepJournal::load(journal)) {
    EXPECT_FALSE(e.failed);
  }
  // Survivors (cells never faulted) match the reference bit-exactly; cell 3
  // completed on the escalated backend, so its row is legitimately
  // different from the as-configured reference.
  SweepMergeStats merge_stats;
  const std::vector<PolicySummary> merged = merge_sweep_entries(
      full_shard(grid), SweepJournal::load(journal), &merge_stats);
  expect_survivors_identical(grid, merged, {3});
  std::remove(journal.c_str());
}

TEST_F(FaultToleranceTest, ChunkFaultFallsBackToBitIdenticalSoloRuns) {
  // worker.chunk aborts the lockstep batch; the solo fallback must
  // reproduce every cell byte-for-byte (the batch==solo contract).
  const SweepGridSpec grid = tiny_grid();
  const std::string journal = temp_path("chunk_fault.csv");
  std::remove(journal.c_str());

  fault_injection::arm("worker.chunk");
  const SweepWorkerStats stats = run_sweep_shard(full_shard(grid), journal);
  fault_injection::disarm_all();

  EXPECT_EQ(stats.completed, 4u);
  EXPECT_EQ(stats.failed, 0u);
  const std::vector<PolicySummary> merged =
      merge_sweep_entries(full_shard(grid), SweepJournal::load(journal));
  expect_survivors_identical(grid, merged, {});
  std::remove(journal.c_str());
}

TEST_F(FaultToleranceTest, ThreadPoolExecutionContainsFailuresToo) {
  // Same containment contract under kThreadPool: the failing cell is
  // quarantined from inside the pool lambda, the pool itself survives to
  // run the rest, and the journal stays loadable.
  const SweepGridSpec grid = tiny_grid();
  const std::string journal = temp_path("quarantine_pool.csv");
  std::remove(journal.c_str());

  SweepWorkerOptions options;
  options.execution = SuiteExecution::kThreadPool;
  options.worker_threads = 4;

  fault_injection::arm("worker.cell:key=0");
  const SweepWorkerStats stats =
      run_sweep_shard(full_shard(grid), journal, options);
  fault_injection::disarm_all();

  EXPECT_EQ(stats.completed, 3u);
  EXPECT_EQ(stats.failed, 1u);
  const std::vector<JournalEntry> entries = SweepJournal::load(journal);
  EXPECT_EQ(entries.size(), 4u);

  SweepMergeOptions partial;
  partial.allow_partial = true;
  std::vector<SweepFailure> manifest;
  const std::vector<PolicySummary> merged = merge_sweep_entries(
      full_shard(grid), entries, nullptr, partial, &manifest);
  ASSERT_EQ(manifest.size(), 1u);
  EXPECT_EQ(manifest[0].cell, 0u);
  expect_survivors_identical(grid, merged, {0});
  std::remove(journal.c_str());
}

TEST_F(FaultToleranceTest, ResumeSkipsFailedCellsInsteadOfRetrying) {
  const SweepGridSpec grid = tiny_grid();
  const std::string journal = temp_path("resume_failed.csv");
  std::remove(journal.c_str());

  fault_injection::arm("worker.cell:key=1");
  (void)run_sweep_shard(full_shard(grid), journal);
  fault_injection::disarm_all();

  // Faults are gone now, but the FAILED record is checkpoint state: the
  // resumed worker must not burn time re-solving a cell a prior run
  // already escalated through the whole ladder.
  const SweepWorkerStats resumed = run_sweep_shard(full_shard(grid), journal);
  EXPECT_EQ(resumed.already_done, 4u);
  EXPECT_EQ(resumed.completed, 0u);
  EXPECT_EQ(resumed.failed, 0u);
  std::remove(journal.c_str());
}

TEST_F(FaultToleranceTest, OkRecordBeatsFailedRecordAcrossJournals) {
  // Shard A failed cell 1 and journaled it; a later rerun (shard B,
  // fault-free) succeeded.  The merge must take the completed result and
  // keep the manifest empty.
  const SweepGridSpec grid = tiny_grid();
  const std::string journal_a = temp_path("dup_failed_a.csv");
  const std::string journal_b = temp_path("dup_failed_b.csv");
  std::remove(journal_a.c_str());
  std::remove(journal_b.c_str());

  fault_injection::arm("worker.cell:key=1");
  (void)run_sweep_shard(full_shard(grid), journal_a);
  fault_injection::disarm_all();
  (void)run_sweep_shard(full_shard(grid), journal_b);

  std::vector<JournalEntry> entries = SweepJournal::load(journal_a);
  const std::vector<JournalEntry> rerun = SweepJournal::load(journal_b);
  entries.insert(entries.end(), rerun.begin(), rerun.end());

  SweepMergeStats stats;
  std::vector<SweepFailure> manifest;
  const std::vector<PolicySummary> merged = merge_sweep_entries(
      full_shard(grid), entries, &stats, SweepMergeOptions{}, &manifest);
  EXPECT_EQ(stats.failed, 0u);
  EXPECT_TRUE(manifest.empty());
  expect_survivors_identical(grid, merged, {1});  // cell 1 via rerun …
  expect_survivors_identical(grid, merged, {});   // … and it matches too
  std::remove(journal_a.c_str());
  std::remove(journal_b.c_str());
}

TEST_F(FaultToleranceTest, FailedJournalRecordsRoundTripThroughCsv) {
  const std::string path = temp_path("failed_roundtrip.csv");
  std::remove(path.c_str());

  JournalEntry failed;
  failed.cell = 7;
  failed.failed = true;
  failed.scenario = "talb-var";
  failed.workload = "Web-med";
  failed.error = "PCG stalled [backend=pcg, iterations=1000, residual=1]";
  failed.attempts = 3;
  {
    SweepJournal journal(path);
    journal.append(failed);
  }
  const std::vector<JournalEntry> entries = SweepJournal::load(path);
  ASSERT_EQ(entries.size(), 1u);
  EXPECT_TRUE(entries[0].failed);
  EXPECT_EQ(entries[0].cell, 7u);
  EXPECT_EQ(entries[0].scenario, failed.scenario);
  EXPECT_EQ(entries[0].workload, failed.workload);
  EXPECT_EQ(entries[0].error, failed.error);
  EXPECT_EQ(entries[0].attempts, 3u);
  std::remove(path.c_str());
}

TEST_F(FaultToleranceTest, InjectedAppendFailureNeverWelds) {
  // The journal.append site persists a torn half-record and throws.  The
  // loader must drop the torn tail, and the next open must truncate it so
  // the following append cannot weld onto the debris.
  const std::string path = temp_path("append_fault.csv");
  std::remove(path.c_str());

  SimulationResult r;
  r.label = "LB (Air), \"quoted\"";  // quoting stresses the tail scanner
  r.benchmark = "gzip";
  r.avg_tmax = 79.25;

  JournalEntry first;
  first.cell = 0;
  first.result = r;
  JournalEntry second = first;
  second.cell = 1;

  {
    SweepJournal journal(path);
    journal.append(first);
    fault_injection::arm("journal.append");
    EXPECT_THROW(journal.append(second), ConfigError);
    fault_injection::disarm_all();
  }
  {
    const std::vector<JournalEntry> entries = SweepJournal::load(path);
    ASSERT_EQ(entries.size(), 1u);  // torn record dropped
    EXPECT_EQ(entries[0].cell, 0u);
  }
  {
    SweepJournal journal(path);  // reopen: truncates the torn tail
    journal.append(second);
  }
  const std::vector<JournalEntry> entries = SweepJournal::load(path);
  ASSERT_EQ(entries.size(), 2u);
  EXPECT_EQ(entries[0].cell, 0u);
  EXPECT_EQ(entries[1].cell, 1u);  // clean record, no welded hybrid
  EXPECT_TRUE(results_identical(entries[1].result, r));
  std::remove(path.c_str());
}

TEST_F(FaultToleranceTest, ManifestCsvWriterEmitsOneRowPerFailure) {
  std::vector<SweepFailure> manifest(2);
  manifest[0] = {1, "lb-air", "Web-med", "injected worker.cell fault", 3};
  manifest[1] = {5, "talb-var", "gzip", "missing from every journal", 0};
  std::ostringstream out;
  write_failure_manifest_csv(out, manifest);
  EXPECT_EQ(out.str(),
            "cell,scenario,workload,error,attempts\n"
            "1,lb-air,Web-med,injected worker.cell fault,3\n"
            "5,talb-var,gzip,missing from every journal,0\n");
}

}  // namespace
}  // namespace liquid3d
