// ThreadPool (common/thread_pool.hpp): result delivery, exception
// propagation, parallel_for coverage, and the parallel characterization
// sampler producing the same grid as a serial sweep.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/thread_pool.hpp"
#include "control/characterize.hpp"
#include "coolant/pump.hpp"
#include "geom/stack.hpp"

namespace liquid3d {
namespace {

TEST(ThreadPool, SubmitDeliversResults) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.thread_count(), 3u);
  auto f1 = pool.submit([] { return 6 * 7; });
  auto f2 = pool.submit([] { return std::string("ok"); });
  EXPECT_EQ(f1.get(), 42);
  EXPECT_EQ(f2.get(), "ok");
}

TEST(ThreadPool, SubmitPropagatesExceptions) {
  ThreadPool pool(2);
  auto f = pool.submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(f.get(), std::runtime_error);
}

TEST(ThreadPool, ParallelForCoversEveryIndexOnce) {
  ThreadPool pool(4);
  constexpr std::size_t kN = 257;
  std::vector<std::atomic<int>> hits(kN);
  pool.parallel_for(0, kN, [&](std::size_t i) {
    hits[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (std::size_t i = 0; i < kN; ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPool, ParallelForRethrowsFirstExceptionAmongConcurrentFailures) {
  // Several indices fail at once; parallel_for must still run EVERY index
  // (fn is borrowed by reference — early return would leave workers calling
  // a destroyed callable), then rethrow the lowest-index failure: futures
  // drain in submission order, so "first" is deterministic, not a race.
  ThreadPool pool(4);
  constexpr std::size_t kN = 64;
  std::vector<std::atomic<int>> hits(kN);
  try {
    pool.parallel_for(0, kN, [&](std::size_t i) {
      hits[i].fetch_add(1, std::memory_order_relaxed);
      if (i % 5 == 2) {  // indices 2, 7, 12, … all throw
        throw std::runtime_error("task " + std::to_string(i));
      }
    });
    FAIL() << "expected an exception";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "task 2");
  }
  for (std::size_t i = 0; i < kN; ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }

  // The pool outlives the failure: same pool, fresh parallel_for, clean run.
  std::atomic<int> after{0};
  pool.parallel_for(0, kN, [&](std::size_t) {
    after.fetch_add(1, std::memory_order_relaxed);
  });
  EXPECT_EQ(after.load(), static_cast<int>(kN));
}

TEST(ThreadPool, ManyTasksDrainAcrossWorkers) {
  ThreadPool pool(2);
  std::atomic<long> sum{0};
  std::vector<std::future<void>> futs;
  futs.reserve(200);
  for (long i = 1; i <= 200; ++i) {
    futs.push_back(pool.submit([&sum, i] { sum.fetch_add(i); }));
  }
  for (auto& f : futs) f.get();
  EXPECT_EQ(sum.load(), 200L * 201L / 2L);
}

TEST(ParallelCharacterization, GridMatchesSerialSweep) {
  ThermalModelParams p;
  p.grid_rows = 6;
  p.grid_cols = 7;
  const Stack3D stack = make_2layer_system();
  auto factory = [&]() {
    return std::make_unique<CharacterizationHarness>(
        stack, p, PowerModelParams{}, PumpModel::laing_ddc(),
        FlowDeliveryMode::kPressureLimited);
  };

  const std::size_t settings = factory()->setting_count();
  constexpr std::size_t kPoints = 5;
  const auto parallel = sample_tmax_grid(factory, settings, kPoints, 3);
  const auto serial = sample_tmax_grid(factory, settings, kPoints, 1);

  ASSERT_EQ(parallel.size(), settings);
  for (std::size_t s = 0; s < settings; ++s) {
    ASSERT_EQ(parallel[s].size(), kPoints);
    for (std::size_t i = 0; i < kPoints; ++i) {
      // Warm-start trajectories differ between schedules, but the steady
      // fixed point is unique — grids must agree to solver tolerance.
      EXPECT_NEAR(parallel[s][i], serial[s][i], 0.2)
          << "setting " << s << " point " << i;
    }
  }

  // And the LUT built from those samples must be internally consistent.
  const FlowLut lut = characterize_flow_lut(factory, 80.0, kPoints, 2);
  EXPECT_EQ(lut.setting_count(), settings);
}

}  // namespace
}  // namespace liquid3d
