// Evaluation-grid helper (sim/experiment.hpp).
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "sim/experiment.hpp"

namespace liquid3d {
namespace {

TEST(Experiment, PaperPolicyGridMatchesFig6Order) {
  const std::vector<PolicyConfig> grid = paper_policy_grid();
  ASSERT_EQ(grid.size(), 7u);
  EXPECT_EQ(policy_label(grid[0].policy, grid[0].cooling), "LB (Air)");
  EXPECT_EQ(policy_label(grid[1].policy, grid[1].cooling), "Mig (Air)");
  EXPECT_EQ(policy_label(grid[2].policy, grid[2].cooling), "TALB (Air)");
  EXPECT_EQ(policy_label(grid[3].policy, grid[3].cooling), "LB (Max)");
  EXPECT_EQ(policy_label(grid[4].policy, grid[4].cooling), "Mig (Max)");
  EXPECT_EQ(policy_label(grid[5].policy, grid[5].cooling), "TALB (Max)");
  EXPECT_EQ(policy_label(grid[6].policy, grid[6].cooling), "TALB (Var)");
}

SuiteConfig tiny_suite() {
  SuiteConfig sc;
  sc.duration = SimTime::from_s(6);
  sc.base.thermal.grid_rows = 10;
  sc.base.thermal.grid_cols = 11;
  return sc;
}

TEST(Experiment, SuiteRunsAndAggregates) {
  ExperimentSuite suite(tiny_suite());
  const std::vector<PolicyConfig> policies = {
      {Policy::kLoadBalancing, CoolingMode::kAir},
      {Policy::kTalb, CoolingMode::kLiquidVar},
  };
  const std::vector<BenchmarkSpec> workloads = {*find_benchmark("gzip"),
                                                *find_benchmark("Web-med")};
  const auto results = suite.run(policies, workloads);
  ASSERT_EQ(results.size(), 2u);
  EXPECT_EQ(results[0].label, "LB (Air)");
  EXPECT_EQ(results[1].label, "TALB (Var)");
  ASSERT_EQ(results[0].per_workload.size(), 2u);
  EXPECT_GT(results[0].total_chip_energy(), 0.0);
  EXPECT_EQ(results[0].total_pump_energy(), 0.0);  // air has no pump
  EXPECT_GT(results[1].total_pump_energy(), 0.0);
  EXPECT_GE(results[0].max_hotspot_percent(), results[0].mean_hotspot_percent());
}

TEST(Experiment, CharacterizationsAreSharedAcrossCells) {
  ExperimentSuite suite(tiny_suite());
  const BenchmarkSpec wl = *find_benchmark("gzip");
  const SimulationConfig a =
      suite.make_config({Policy::kTalb, CoolingMode::kLiquidVar}, wl);
  const SimulationConfig b =
      suite.make_config({Policy::kTalb, CoolingMode::kLiquidMax}, wl);
  EXPECT_EQ(a.flow_lut.get(), b.flow_lut.get());  // same shared object
  EXPECT_NE(a.flow_lut, nullptr);
  EXPECT_EQ(a.talb_weights.get(), b.talb_weights.get());
}

TEST(Experiment, SeedVariesPerWorkload) {
  ExperimentSuite suite(tiny_suite());
  const SimulationConfig a = suite.make_config(
      {Policy::kLoadBalancing, CoolingMode::kAir}, *find_benchmark("gzip"));
  const SimulationConfig b = suite.make_config(
      {Policy::kLoadBalancing, CoolingMode::kAir}, *find_benchmark("Web-med"));
  EXPECT_NE(a.seed, b.seed);
}

TEST(Experiment, BaselineLookup) {
  PolicySummary lb_air;
  lb_air.label = "LB (Air)";
  PolicySummary var;
  var.label = "TALB (Var)";
  const std::vector<PolicySummary> rs = {lb_air, var};
  EXPECT_EQ(&find_baseline(rs), &rs[0]);
  EXPECT_THROW((void)find_baseline(rs, "nonexistent"), ConfigError);
}

}  // namespace
}  // namespace liquid3d
