// Evaluation-grid helper (sim/experiment.hpp).
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "sim/experiment.hpp"

namespace liquid3d {
namespace {

TEST(Experiment, PaperPolicyGridMatchesFig6Order) {
  const std::vector<PolicyConfig> grid = paper_policy_grid();
  ASSERT_EQ(grid.size(), 7u);
  EXPECT_EQ(policy_label(grid[0].policy, grid[0].cooling), "LB (Air)");
  EXPECT_EQ(policy_label(grid[1].policy, grid[1].cooling), "Mig (Air)");
  EXPECT_EQ(policy_label(grid[2].policy, grid[2].cooling), "TALB (Air)");
  EXPECT_EQ(policy_label(grid[3].policy, grid[3].cooling), "LB (Max)");
  EXPECT_EQ(policy_label(grid[4].policy, grid[4].cooling), "Mig (Max)");
  EXPECT_EQ(policy_label(grid[5].policy, grid[5].cooling), "TALB (Max)");
  EXPECT_EQ(policy_label(grid[6].policy, grid[6].cooling), "TALB (Var)");
}

SuiteConfig tiny_suite() {
  SuiteConfig sc;
  sc.duration = SimTime::from_s(6);
  sc.base.thermal.grid_rows = 10;
  sc.base.thermal.grid_cols = 11;
  return sc;
}

TEST(Experiment, SuiteRunsAndAggregates) {
  ExperimentSuite suite(tiny_suite());
  const std::vector<PolicyConfig> policies = {
      {Policy::kLoadBalancing, CoolingMode::kAir},
      {Policy::kTalb, CoolingMode::kLiquidVar},
  };
  const std::vector<BenchmarkSpec> workloads = {*find_benchmark("gzip"),
                                                *find_benchmark("Web-med")};
  const auto results = suite.run(policies, workloads);
  ASSERT_EQ(results.size(), 2u);
  EXPECT_EQ(results[0].label, "LB (Air)");
  EXPECT_EQ(results[1].label, "TALB (Var)");
  ASSERT_EQ(results[0].per_workload.size(), 2u);
  EXPECT_GT(results[0].total_chip_energy(), 0.0);
  EXPECT_EQ(results[0].total_pump_energy(), 0.0);  // air has no pump
  EXPECT_GT(results[1].total_pump_energy(), 0.0);
  EXPECT_GE(results[0].max_hotspot_percent(), results[0].mean_hotspot_percent());
}

TEST(Experiment, CharacterizationsAreSharedAcrossCells) {
  ExperimentSuite suite(tiny_suite());
  const BenchmarkSpec wl = *find_benchmark("gzip");
  const SimulationConfig a =
      suite.make_config({Policy::kTalb, CoolingMode::kLiquidVar}, wl);
  const SimulationConfig b =
      suite.make_config({Policy::kTalb, CoolingMode::kLiquidMax}, wl);
  EXPECT_EQ(a.flow_lut.get(), b.flow_lut.get());  // same shared object
  EXPECT_NE(a.flow_lut, nullptr);
  EXPECT_EQ(a.talb_weights.get(), b.talb_weights.get());
}

TEST(Experiment, SeedVariesPerWorkload) {
  ExperimentSuite suite(tiny_suite());
  const SimulationConfig a = suite.make_config(
      {Policy::kLoadBalancing, CoolingMode::kAir}, *find_benchmark("gzip"));
  const SimulationConfig b = suite.make_config(
      {Policy::kLoadBalancing, CoolingMode::kAir}, *find_benchmark("Web-med"));
  EXPECT_NE(a.seed, b.seed);
}

TEST(Experiment, SeedVariesPerPolicyCell) {
  // Cells of the same workload under different policies used to share one
  // RNG stream; the cell_seed mix separates every (policy, cooling) cell.
  ExperimentSuite suite(tiny_suite());
  const BenchmarkSpec wl = *find_benchmark("gzip");
  const SimulationConfig lb =
      suite.make_config({Policy::kLoadBalancing, CoolingMode::kAir}, wl);
  const SimulationConfig mig =
      suite.make_config({Policy::kReactiveMigration, CoolingMode::kAir}, wl);
  EXPECT_NE(lb.seed, mig.seed);
}

void expect_same_result(const SimulationResult& a, const SimulationResult& b) {
  EXPECT_EQ(a.label, b.label);
  EXPECT_EQ(a.benchmark, b.benchmark);
  EXPECT_EQ(a.avg_tmax, b.avg_tmax);
  EXPECT_EQ(a.chip_energy_j, b.chip_energy_j);
  EXPECT_EQ(a.pump_energy_j, b.pump_energy_j);
  EXPECT_EQ(a.throughput_per_s, b.throughput_per_s);
  EXPECT_EQ(a.migrations, b.migrations);
  EXPECT_EQ(a.hotspot_percent, b.hotspot_percent);
}

TEST(Experiment, CellResultsInvariantUnderGridReordering) {
  // A cell's seed (and therefore its result) depends only on its identity,
  // never on its position in the sweep — the property sharding and
  // checkpointing rely on.
  SuiteConfig sc = tiny_suite();
  sc.duration = SimTime::from_s(3);
  sc.base.thermal.grid_rows = 8;
  sc.base.thermal.grid_cols = 9;

  const std::vector<PolicyConfig> order_a = {
      {Policy::kLoadBalancing, CoolingMode::kAir},
      {Policy::kReactiveMigration, CoolingMode::kAir},
  };
  const std::vector<PolicyConfig> order_b = {order_a[1], order_a[0]};
  const std::vector<BenchmarkSpec> wl_a = {*find_benchmark("gzip"),
                                           *find_benchmark("Web-med")};
  const std::vector<BenchmarkSpec> wl_b = {wl_a[1], wl_a[0]};

  ExperimentSuite suite_a(sc);
  ExperimentSuite suite_b(sc);
  const auto res_a = suite_a.run(order_a, wl_a);
  const auto res_b = suite_b.run(order_b, wl_b);
  ASSERT_EQ(res_a.size(), 2u);
  ASSERT_EQ(res_b.size(), 2u);
  // Match cells by identity: summary i of run A is summary (1-i) of run B,
  // with workloads likewise swapped.
  for (std::size_t p = 0; p < 2; ++p) {
    for (std::size_t w = 0; w < 2; ++w) {
      SCOPED_TRACE(res_a[p].label + " / " + res_a[p].per_workload[w].benchmark);
      expect_same_result(res_a[p].per_workload[w],
                         res_b[1 - p].per_workload[1 - w]);
    }
  }
}

TEST(Experiment, BatchedExecutionMatchesThreadPool) {
  SuiteConfig sc = tiny_suite();
  sc.duration = SimTime::from_s(3);
  const std::vector<PolicyConfig> policies = {
      {Policy::kLoadBalancing, CoolingMode::kLiquidMax},
      {Policy::kLoadBalancing, CoolingMode::kAir},
  };
  const std::vector<BenchmarkSpec> workloads = {*find_benchmark("gzip"),
                                                *find_benchmark("Web-med")};

  ExperimentSuite pooled(sc);
  sc.execution = SuiteExecution::kBatched;
  ExperimentSuite batched(sc);
  const auto res_pool = pooled.run(policies, workloads);
  const auto res_batch = batched.run(policies, workloads);
  ASSERT_EQ(res_pool.size(), res_batch.size());
  for (std::size_t p = 0; p < res_pool.size(); ++p) {
    for (std::size_t w = 0; w < workloads.size(); ++w) {
      SCOPED_TRACE(res_pool[p].label);
      expect_same_result(res_pool[p].per_workload[w],
                         res_batch[p].per_workload[w]);
    }
  }
}

TEST(Experiment, SkewScenariosMatchSystemShape) {
  const auto two_layer = skewed_workload_scenarios(1);
  ASSERT_EQ(two_layer.size(), 2u);
  EXPECT_EQ(two_layer[0].name, "hot-upper-die");
  EXPECT_EQ(two_layer[0].core_bias.size(), 8u);
  EXPECT_GT(two_layer[0].core_bias[7], two_layer[0].core_bias[0]);
  EXPECT_EQ(two_layer[1].name, "hot-corner");
  EXPECT_GT(two_layer[1].core_bias[0], two_layer[1].core_bias[7]);
  const auto four_layer = skewed_workload_scenarios(2);
  EXPECT_EQ(four_layer[0].core_bias.size(), 16u);
  // 4-layer: the entire upper core die (second half of the core sites).
  EXPECT_GT(four_layer[0].core_bias[8], four_layer[0].core_bias[7]);
}

TEST(Experiment, ValveNetworkBeatsUniformFlowOnSkewedLoad) {
  // The acceptance experiment: same skewed workload, same pump pinned at
  // max (equal total delivered flow and equal pump energy), only the
  // per-cavity distribution differs.  Steering flow toward the hot cavities
  // must lower T_max.
  SuiteConfig sc = tiny_suite();
  sc.duration = SimTime::from_s(10);
  ExperimentSuite suite(sc);
  const SkewScenario scenario = skewed_workload_scenarios(sc.layer_pairs)[0];
  const FlowComparisonResult r =
      suite.run_flow_comparison(scenario, *find_benchmark("Web-med"));

  EXPECT_EQ(r.scenario, "hot-upper-die");
  // Equal total delivered flow -> identical pump energy by construction.
  EXPECT_DOUBLE_EQ(r.valved.pump_energy_j, r.uniform.pump_energy_j);
  EXPECT_EQ(r.uniform.valve_transitions, 0u);
  EXPECT_DOUBLE_EQ(r.uniform.avg_flow_skew, 1.0);
  // The valve network actually acted...
  EXPECT_GT(r.valved.valve_transitions, 0u);
  EXPECT_GT(r.valved.avg_flow_skew, 1.0);
  // ...and cooled the stack at the same total flow.
  EXPECT_LT(r.valved.avg_tmax, r.uniform.avg_tmax);
}

TEST(Experiment, BaselineLookup) {
  PolicySummary lb_air;
  lb_air.label = "LB (Air)";
  PolicySummary var;
  var.label = "TALB (Var)";
  const std::vector<PolicySummary> rs = {lb_air, var};
  EXPECT_EQ(&find_baseline(rs), &rs[0]);
  EXPECT_THROW((void)find_baseline(rs, "nonexistent"), ConfigError);
}

}  // namespace
}  // namespace liquid3d
