// Valve-network delivery (coolant/valve_network.hpp): conservation of total
// delivered flow, the lossy-valve floor, and the actuator's latency /
// deadband / cancel semantics.
#include <gtest/gtest.h>

#include <numeric>

#include "common/error.hpp"
#include "coolant/valve_network.hpp"
#include "geom/stack.hpp"

namespace liquid3d {
namespace {

ValveNetwork make_network(std::size_t cavities = 3, ValveNetworkParams params = {}) {
  const MicrochannelModel channels(CavitySpec{}, CoolantProperties::water());
  FlowDelivery delivery(PumpModel::laing_ddc(), FlowDeliveryMode::kPressureLimited,
                        channels, 11.5e-3, cavities);
  return ValveNetwork(std::move(delivery), params);
}

double total_ml(const std::vector<VolumetricFlow>& flows) {
  double acc = 0.0;
  for (const VolumetricFlow& f : flows) acc += f.ml_per_min();
  return acc;
}

TEST(ValveNetwork, FullyOpenEqualsUniformSplit) {
  const ValveNetwork net = make_network();
  const std::vector<double> open(3, 1.0);
  for (std::size_t s = 0; s < net.setting_count(); ++s) {
    const auto flows = net.flows(s, open);
    const auto uniform = net.uniform_flows(s);
    ASSERT_EQ(flows.size(), 3u);
    for (std::size_t k = 0; k < 3; ++k) {
      EXPECT_DOUBLE_EQ(flows[k].ml_per_min(), uniform[k].ml_per_min());
      EXPECT_DOUBLE_EQ(flows[k].ml_per_min(), net.delivery().per_cavity(s).ml_per_min());
    }
  }
}

TEST(ValveNetwork, ThrottlingConservesTotalDeliveredFlow) {
  const ValveNetwork net = make_network();
  const double total = net.total_delivered(3).ml_per_min();
  for (const std::vector<double>& openings :
       {std::vector<double>{1.0, 1.0, 1.0}, std::vector<double>{1.0, 0.5, 0.05},
        std::vector<double>{0.05, 0.05, 1.0}, std::vector<double>{0.3, 0.3, 0.3}}) {
    EXPECT_NEAR(total_ml(net.flows(3, openings)), total, 1e-9 * total);
  }
}

TEST(ValveNetwork, ThrottledBranchLosesFlowToOpenBranches) {
  const ValveNetwork net = make_network();
  const auto uniform = net.flows(2, {1.0, 1.0, 1.0});
  const auto skewed = net.flows(2, {1.0, 1.0, 0.25});
  EXPECT_LT(skewed[2].ml_per_min(), uniform[2].ml_per_min());
  EXPECT_GT(skewed[0].ml_per_min(), uniform[0].ml_per_min());
  EXPECT_GT(skewed[1].ml_per_min(), uniform[1].ml_per_min());
  // Proportional split: the open branches share equally.
  EXPECT_DOUBLE_EQ(skewed[0].ml_per_min(), skewed[1].ml_per_min());
}

TEST(ValveNetwork, LossyValvesNeverSeal) {
  ValveNetworkParams p;
  p.min_opening = 0.1;
  const ValveNetwork net = make_network(3, p);
  // A commanded closure clamps to the leak floor: every branch keeps flow.
  const auto flows = net.flows(4, {0.0, -5.0, 1.0});
  for (const VolumetricFlow& f : flows) EXPECT_GT(f.ml_per_min(), 0.0);
  // Both "closed" branches sit at the same floor.
  EXPECT_DOUBLE_EQ(flows[0].ml_per_min(), flows[1].ml_per_min());
  EXPECT_NEAR(flows[0].ml_per_min() / flows[2].ml_per_min(), 0.1, 1e-12);
}

TEST(ValveNetwork, RejectsBadConfigs) {
  ValveNetworkParams bad;
  bad.min_opening = 0.0;
  EXPECT_THROW(make_network(3, bad), ConfigError);
  const ValveNetwork net = make_network();
  EXPECT_THROW((void)net.flows(0, {1.0, 1.0}), ConfigError);  // wrong arity
}

TEST(ValveActuator, StartsFullyOpenAndUniform) {
  const ValveNetworkActuator a(make_network());
  EXPECT_FALSE(a.in_transition());
  EXPECT_EQ(a.transition_count(), 0u);
  const auto flows = a.effective_flows(2);
  EXPECT_DOUBLE_EQ(flows[0].ml_per_min(), flows[1].ml_per_min());
  EXPECT_DOUBLE_EQ(flows[1].ml_per_min(), flows[2].ml_per_min());
}

TEST(ValveActuator, TransitionCompletesAfterLatency) {
  ValveNetworkActuator a(make_network());
  a.command({1.0, 1.0, 0.3}, SimTime::from_ms(1000));
  EXPECT_TRUE(a.in_transition());
  EXPECT_EQ(a.transition_count(), 1u);
  EXPECT_DOUBLE_EQ(a.effective_openings()[2], 1.0);  // still moving

  a.tick(SimTime::from_ms(1100));  // 100 ms < 150 ms latency
  EXPECT_DOUBLE_EQ(a.effective_openings()[2], 1.0);
  a.tick(SimTime::from_ms(1150));
  EXPECT_FALSE(a.in_transition());
  EXPECT_DOUBLE_EQ(a.effective_openings()[2], 0.3);
}

TEST(ValveActuator, DeadbandSuppressesChatter) {
  ValveNetworkActuator a(make_network());
  a.command({1.0, 1.0, 0.5}, SimTime::from_ms(0));
  a.tick(SimTime::from_ms(150));
  EXPECT_EQ(a.transition_count(), 1u);
  // A command within the deadband of the target is a no-op.
  a.command({1.0, 1.0, 0.51}, SimTime::from_ms(200));
  EXPECT_EQ(a.transition_count(), 1u);
  EXPECT_FALSE(a.in_transition());
  // Beyond the deadband (and past the dwell) it counts.
  a.command({1.0, 1.0, 0.6}, SimTime::from_ms(600));
  EXPECT_EQ(a.transition_count(), 2u);
}

TEST(ValveActuator, DwellBoundsTheRetargetRate) {
  // The steering loop is self-attenuating, so without a dwell the
  // controller retargets nearly every 100 ms sample; accepted retargets
  // are limited to one per min_dwell (500 ms default).
  ValveNetworkActuator a(make_network());
  a.command({1.0, 1.0, 0.5}, SimTime::from_ms(0));
  EXPECT_EQ(a.transition_count(), 1u);
  a.tick(SimTime::from_ms(200));
  // Inside the dwell window: a genuinely different command is deferred.
  a.command({1.0, 1.0, 0.8}, SimTime::from_ms(300));
  EXPECT_EQ(a.transition_count(), 1u);
  EXPECT_DOUBLE_EQ(a.target_openings()[2], 0.5);
  // After the dwell elapses it is accepted.
  a.command({1.0, 1.0, 0.8}, SimTime::from_ms(500));
  EXPECT_EQ(a.transition_count(), 2u);
  EXPECT_DOUBLE_EQ(a.target_openings()[2], 0.8);
  // Cancels back to the effective state stay free even inside the dwell.
  a.command({1.0, 1.0, 0.5}, SimTime::from_ms(550));
  EXPECT_EQ(a.transition_count(), 2u);
  EXPECT_FALSE(a.in_transition());
}

TEST(ValveActuator, CancelBackToEffectiveIsFree) {
  // Same semantics as the fixed PumpActuator: commanding the openings the
  // valves are already at cancels a pending transition without counting.
  ValveNetworkActuator a(make_network());
  a.command({1.0, 1.0, 0.3}, SimTime::from_ms(0));
  EXPECT_EQ(a.transition_count(), 1u);
  a.command({1.0, 1.0, 1.0}, SimTime::from_ms(50));  // back to where we are
  EXPECT_EQ(a.transition_count(), 1u);
  EXPECT_FALSE(a.in_transition());
  EXPECT_DOUBLE_EQ(a.target_openings()[2], 1.0);
}

}  // namespace
}  // namespace liquid3d
