// Dense linear algebra used by the ARMA fitter (common/linalg.hpp).
#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "common/linalg.hpp"
#include "common/rng.hpp"

namespace liquid3d {
namespace {

TEST(Matrix, MultiplyAndTranspose) {
  Matrix a(2, 3);
  a(0, 0) = 1;
  a(0, 1) = 2;
  a(0, 2) = 3;
  a(1, 0) = 4;
  a(1, 1) = 5;
  a(1, 2) = 6;
  const Matrix at = a.transposed();
  EXPECT_EQ(at.rows(), 3u);
  EXPECT_EQ(at.cols(), 2u);
  const Matrix ata = at * a;  // 3x3
  EXPECT_DOUBLE_EQ(ata(0, 0), 17.0);
  EXPECT_DOUBLE_EQ(ata(1, 2), 36.0);
  const std::vector<double> v = a * std::vector<double>{1.0, 1.0, 1.0};
  EXPECT_DOUBLE_EQ(v[0], 6.0);
  EXPECT_DOUBLE_EQ(v[1], 15.0);
}

TEST(SolveLinear, KnownSystem) {
  Matrix a(3, 3);
  a(0, 0) = 4;
  a(0, 1) = 1;
  a(0, 2) = 0;
  a(1, 0) = 1;
  a(1, 1) = 3;
  a(1, 2) = 1;
  a(2, 0) = 0;
  a(2, 1) = 1;
  a(2, 2) = 2;
  // x = (1, 2, 3) -> b = (6, 10, 8).
  const std::vector<double> x = solve_linear(a, {6, 10, 8});
  EXPECT_NEAR(x[0], 1.0, 1e-12);
  EXPECT_NEAR(x[1], 2.0, 1e-12);
  EXPECT_NEAR(x[2], 3.0, 1e-12);
}

TEST(SolveLinear, RequiresPivoting) {
  // Leading zero forces a row swap.
  Matrix a(2, 2);
  a(0, 0) = 0;
  a(0, 1) = 1;
  a(1, 0) = 2;
  a(1, 1) = 0;
  const std::vector<double> x = solve_linear(a, {3, 4});
  EXPECT_NEAR(x[0], 2.0, 1e-12);
  EXPECT_NEAR(x[1], 3.0, 1e-12);
}

TEST(SolveLinear, SingularThrows) {
  Matrix a(2, 2);
  a(0, 0) = 1;
  a(0, 1) = 2;
  a(1, 0) = 2;
  a(1, 1) = 4;
  EXPECT_THROW(solve_linear(a, {1, 2}), ConfigError);
}

class RandomSolveSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomSolveSweep, SolvesRandomDiagonallyDominantSystems) {
  Rng rng(GetParam());
  const std::size_t n = 4 + rng.uniform_index(12);
  Matrix a(n, n);
  std::vector<double> x_true(n);
  for (std::size_t i = 0; i < n; ++i) {
    x_true[i] = rng.uniform(-5, 5);
    double row_sum = 0.0;
    for (std::size_t j = 0; j < n; ++j) {
      if (i == j) continue;
      a(i, j) = rng.uniform(-1, 1);
      row_sum += std::abs(a(i, j));
    }
    a(i, i) = row_sum + 1.0 + rng.uniform();  // strictly dominant
  }
  const std::vector<double> b = a * x_true;
  const std::vector<double> x = solve_linear(a, b);
  for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(x[i], x_true[i], 1e-8);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomSolveSweep,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

TEST(LeastSquares, RecoversRegressionCoefficients) {
  // y = 2 a - 3 b + small noise, overdetermined.
  Rng rng(99);
  const std::size_t n = 200;
  Matrix a(n, 2);
  std::vector<double> y(n);
  for (std::size_t i = 0; i < n; ++i) {
    a(i, 0) = rng.uniform(-1, 1);
    a(i, 1) = rng.uniform(-1, 1);
    y[i] = 2.0 * a(i, 0) - 3.0 * a(i, 1) + 1e-3 * rng.normal();
  }
  const std::vector<double> c = solve_least_squares(a, y);
  EXPECT_NEAR(c[0], 2.0, 1e-2);
  EXPECT_NEAR(c[1], -3.0, 1e-2);
}

TEST(LeastSquares, RidgeHandlesCollinearColumns) {
  // Two identical columns: exactly singular normal equations; the ridge
  // fallback must still return a finite solution with c0 + c1 ~= 2.
  const std::size_t n = 50;
  Matrix a(n, 2);
  std::vector<double> y(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double v = static_cast<double>(i) / n;
    a(i, 0) = v;
    a(i, 1) = v;
    y[i] = 2.0 * v;
  }
  const std::vector<double> c = solve_least_squares(a, y, 1e-8);
  EXPECT_TRUE(std::isfinite(c[0]) && std::isfinite(c[1]));
  EXPECT_NEAR(c[0] + c[1], 2.0, 1e-3);
}

TEST(LeastSquares, UnderdeterminedThrows) {
  Matrix a(2, 3);
  EXPECT_THROW(solve_least_squares(a, {1, 2}), ConfigError);
}

}  // namespace
}  // namespace liquid3d
