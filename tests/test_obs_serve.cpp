// Observability through the serve stack, end to end: the metrics/trace
// control-plane wire tags, the windowed queue-HWM reset, and the contract
// that tracing never perturbs answers (bit-identity on vs off).
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/error.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "serve/net/client.hpp"
#include "serve/net/envelope.hpp"
#include "serve/net/server.hpp"
#include "serve/service.hpp"

namespace liquid3d {
namespace {

Endpoint loopback() { return parse_endpoint("127.0.0.1:0", "test"); }

WhatIfQuery small_whatif(std::uint64_t seed, double duration_s = 2.0) {
  WhatIfQuery q;
  q.scenario = "talb-var";
  q.benchmark = "Web-med";
  q.duration_s = duration_s;
  q.seed = seed;
  q.grid_rows = 8;
  q.grid_cols = 9;
  return q;
}

SteadyQuery small_steady() {
  SteadyQuery q;
  q.config.cooling = CoolingMode::kLiquidMax;
  q.config.layer_pairs = 1;
  q.config.thermal.grid_rows = 8;
  q.config.thermal.grid_cols = 9;
  q.core_watts = 3.0;
  return q;
}

/// Service + started server on an ephemeral loopback port.
struct Fixture {
  explicit Fixture(ServerParams server_params = {}, ServeParams params = {})
      : service(params), server(service, server_params) {
    server.start(loopback());
  }
  ThermalService service;
  ServeServer server;
};

/// Restore the global tracing flag on scope exit.
class ScopedTracing {
 public:
  explicit ScopedTracing(bool on) : prev_(obs::tracing_enabled()) {
    obs::set_tracing(on);
  }
  ~ScopedTracing() { obs::set_tracing(prev_); }

 private:
  bool prev_;
};

// -- envelope round trips for the new control-plane tags ----------------------

TEST(ObsServe, MetricsQueryRoundTrips) {
  WireRequest req;
  req.id = 7;
  req.payload = MetricsQuery{};
  const WireRequest back = decode_request(encode_request(req));
  EXPECT_EQ(back.id, 7u);
  EXPECT_TRUE(std::holds_alternative<MetricsQuery>(back.payload));
}

TEST(ObsServe, TraceQueryRoundTripsWithAndWithoutLimit) {
  WireRequest req;
  req.id = 9;
  req.payload = TraceQuery{0};
  WireRequest back = decode_request(encode_request(req));
  ASSERT_TRUE(std::holds_alternative<TraceQuery>(back.payload));
  EXPECT_EQ(std::get<TraceQuery>(back.payload).limit, 0u);

  req.payload = TraceQuery{32};
  back = decode_request(encode_request(req));
  ASSERT_TRUE(std::holds_alternative<TraceQuery>(back.payload));
  EXPECT_EQ(std::get<TraceQuery>(back.payload).limit, 32u);
}

TEST(ObsServe, StatsQueryResetHwmRoundTripsAndStaysByteIdentical) {
  WireRequest plain;
  plain.id = 1;
  plain.payload = StatsQuery{};
  const std::string plain_text = encode_request(plain);
  // The reset_hwm key is only emitted when set, so a plain stats request
  // encodes exactly as it did before the key existed (old servers keep
  // answering it).
  EXPECT_EQ(plain_text.find("reset_hwm"), std::string::npos);
  EXPECT_FALSE(
      std::get<StatsQuery>(decode_request(plain_text).payload).reset_hwm);

  WireRequest reset;
  reset.id = 2;
  reset.payload = StatsQuery{true};
  EXPECT_TRUE(
      std::get<StatsQuery>(decode_request(encode_request(reset)).payload)
          .reset_hwm);
}

TEST(ObsServe, MetricsAnswerRoundTripsArbitraryText) {
  WireResponse resp;
  resp.id = 3;
  resp.payload =
      MetricsAnswer{"a_total 1\nlatency{quantile=\"0.5\"} 2.5e-05\n"};
  const WireResponse back = decode_response(encode_response(resp));
  ASSERT_TRUE(std::holds_alternative<MetricsAnswer>(back.payload));
  EXPECT_EQ(std::get<MetricsAnswer>(back.payload).text,
            "a_total 1\nlatency{quantile=\"0.5\"} 2.5e-05\n");
}

TEST(ObsServe, TraceAnswerRoundTripsSpans) {
  obs::TraceSpan a;
  a.trace_id = 11;
  a.span_id = 21;
  a.parent_id = 0;
  a.stage = "request";
  a.start_ns = 100;
  a.end_ns = 900;
  obs::TraceSpan b;
  b.trace_id = 11;
  b.span_id = 22;
  b.parent_id = 21;
  b.stage = "solve/rom";  // the '/' survives percent-encoding
  b.start_ns = 200;
  b.end_ns = 700;

  WireResponse resp;
  resp.id = 4;
  resp.payload = TraceAnswer{{a, b}};
  const WireResponse back = decode_response(encode_response(resp));
  ASSERT_TRUE(std::holds_alternative<TraceAnswer>(back.payload));
  const std::vector<obs::TraceSpan>& spans =
      std::get<TraceAnswer>(back.payload).spans;
  ASSERT_EQ(spans.size(), 2u);
  EXPECT_EQ(spans[0].trace_id, 11u);
  EXPECT_EQ(spans[0].span_id, 21u);
  EXPECT_EQ(spans[0].stage, "request");
  EXPECT_EQ(spans[1].parent_id, 21u);
  EXPECT_EQ(spans[1].stage, "solve/rom");
  EXPECT_EQ(spans[1].start_ns, 200u);
  EXPECT_EQ(spans[1].end_ns, 700u);
}

TEST(ObsServe, UnknownKeysOnNewTagsAreRejected) {
  EXPECT_THROW(
      (void)decode_request("liquid3d-serve 1 metrics\nid 1\nbogus 1\n"),
      ConfigError);
  EXPECT_THROW(
      (void)decode_request("liquid3d-serve 1 trace\nid 1\nbogus 1\n"),
      ConfigError);
  // A malformed span line (wrong field count) is a decode error, not a
  // silently dropped span.
  EXPECT_THROW((void)decode_response(
                   "liquid3d-serve 1 trace-answer\nid 1\nspan 1%202%203\n"),
               ConfigError);
}

// -- wire control plane end to end --------------------------------------------

TEST(ObsServe, MetricsScrapeMatchesServedQueries) {
  Fixture fx;
  ServeClient client(fx.server.endpoint());

  const ServeStats before = client.stats();
  const SteadyAnswer first = client.steady(small_steady());
  const SteadyAnswer second = client.steady(small_steady());
  EXPECT_EQ(first.t_max_c, second.t_max_c);

  const std::string text = client.metrics();
  const auto expect_line = [&text](const std::string& line) {
    EXPECT_NE(text.find(line + "\n"), std::string::npos)
        << "missing '" << line << "' in:\n"
        << text;
  };
  expect_line("liquid3d_serve_steady_queries_total " +
              std::to_string(before.steady_queries + 2));
  expect_line("liquid3d_serve_wire_accepted_total " +
              std::to_string(before.wire_accepted + 2));
  // The global registry's serve-latency histogram saw both queries (one
  // full solve, one ROM hit).
  EXPECT_NE(text.find("liquid3d_serve_steady_rom_seconds_count"),
            std::string::npos)
      << text;
}

TEST(ObsServe, WindowedHwmResetsButLifetimeDoesNot) {
  Fixture fx;
  ServeClient client(fx.server.endpoint());
  (void)client.steady(small_steady());

  const ServeStats before = client.stats();
  EXPECT_GE(before.wire_queue_hwm, 1u);
  EXPECT_EQ(before.wire_queue_hwm_window, before.wire_queue_hwm);

  // Report-then-reset: the resetting call still reports the pre-reset
  // window.
  const ServeStats resetting = client.stats(/*reset_hwm=*/true);
  EXPECT_EQ(resetting.wire_queue_hwm_window, before.wire_queue_hwm_window);

  const ServeStats after = client.stats();
  EXPECT_EQ(after.wire_queue_hwm_window, 0u);
  EXPECT_EQ(after.wire_queue_hwm, before.wire_queue_hwm);  // lifetime

  // The next admitted query raises the window again.
  (void)client.steady(small_steady());
  EXPECT_GE(client.stats().wire_queue_hwm_window, 1u);
}

TEST(ObsServe, TraceDumpCoversTheQueryStages) {
  ScopedTracing tracing(true);
  obs::TraceRing::global().clear();

  Fixture fx;
  ServeClient client(fx.server.endpoint());
  (void)client.steady(small_steady());

  const std::vector<obs::TraceSpan> spans = client.trace();
  ASSERT_FALSE(spans.empty());

  // Exactly one root span; its children cover the pipeline stages and nest
  // inside the root's window.
  const obs::TraceSpan* root = nullptr;
  for (const obs::TraceSpan& s : spans) {
    if (s.parent_id == 0) {
      EXPECT_EQ(root, nullptr) << "two roots in one query's trace";
      root = &s;
      EXPECT_EQ(s.stage, "request");
    }
  }
  ASSERT_NE(root, nullptr);
  std::vector<std::string> stages;
  for (const obs::TraceSpan& s : spans) {
    EXPECT_EQ(s.trace_id, root->trace_id);
    EXPECT_LE(s.start_ns, s.end_ns);
    if (s.parent_id != 0) {
      EXPECT_EQ(s.parent_id, root->span_id);
      EXPECT_GE(s.start_ns, root->start_ns);
      EXPECT_LE(s.end_ns, root->end_ns);
      stages.push_back(s.stage);
    }
  }
  const auto has = [&stages](const char* stage) {
    for (const std::string& s : stages) {
      if (s == stage || s.rfind(std::string(stage) + "/", 0) == 0) return true;
    }
    return false;
  };
  EXPECT_TRUE(has("decode"));
  EXPECT_TRUE(has("admission"));
  EXPECT_TRUE(has("dispatch"));
  EXPECT_TRUE(has("solve"));
  EXPECT_TRUE(has("encode"));

  // The limit parameter caps the dump.
  EXPECT_EQ(client.trace(1).size(), 1u);
  obs::TraceRing::global().clear();
}

TEST(ObsServe, AnswersAreBitIdenticalWithTracingOnAndOff) {
  SimulationResult traced_result;
  double traced_tmax = 0.0;
  {
    ScopedTracing tracing(true);
    Fixture fx;
    ServeClient client(fx.server.endpoint());
    traced_result = client.what_if(small_whatif(1234)).result;
    traced_tmax = client.steady(small_steady()).t_max_c;
  }
  SimulationResult plain_result;
  double plain_tmax = 0.0;
  {
    ScopedTracing tracing(false);
    Fixture fx;
    ServeClient client(fx.server.endpoint());
    plain_result = client.what_if(small_whatif(1234)).result;
    plain_tmax = client.steady(small_steady()).t_max_c;
  }

  EXPECT_EQ(traced_tmax, plain_tmax);
  EXPECT_EQ(traced_result.hotspot_max_sample, plain_result.hotspot_max_sample);
  EXPECT_EQ(traced_result.avg_tmax, plain_result.avg_tmax);
  EXPECT_EQ(traced_result.total_energy_j, plain_result.total_energy_j);
  EXPECT_EQ(traced_result.chip_energy_j, plain_result.chip_energy_j);
  EXPECT_EQ(traced_result.pump_energy_j, plain_result.pump_energy_j);
  EXPECT_EQ(traced_result.throughput_per_s, plain_result.throughput_per_s);
  EXPECT_EQ(traced_result.migrations, plain_result.migrations);
  EXPECT_EQ(traced_result.forecast_rmse, plain_result.forecast_rmse);
  obs::TraceRing::global().clear();
}

}  // namespace
}  // namespace liquid3d
