// Deterministic RNG (common/rng.hpp): reproducibility and distribution
// sanity (moment checks, not full GoF — determinism makes these exact
// regression tests as well).
#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "common/statistics.hpp"

namespace liquid3d {
namespace {

TEST(Rng, SameSeedSameStream) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 1000; ++i) {
    ASSERT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int differences = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() != b.next_u64()) ++differences;
  }
  EXPECT_GT(differences, 60);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  RunningStats s;
  for (int i = 0; i < 20000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    s.add(u);
  }
  EXPECT_NEAR(s.mean(), 0.5, 0.01);
  EXPECT_NEAR(s.variance(), 1.0 / 12.0, 0.005);
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(8);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-3.0, 5.0);
    ASSERT_GE(u, -3.0);
    ASSERT_LT(u, 5.0);
  }
}

TEST(Rng, UniformIndexIsUnbiasedEnough) {
  Rng rng(9);
  const std::uint64_t n = 7;
  std::vector<int> counts(n, 0);
  const int draws = 70000;
  for (int i = 0; i < draws; ++i) ++counts[rng.uniform_index(n)];
  for (std::uint64_t k = 0; k < n; ++k) {
    EXPECT_NEAR(static_cast<double>(counts[k]) / draws, 1.0 / 7.0, 0.01);
  }
}

TEST(Rng, NormalMoments) {
  Rng rng(10);
  RunningStats s;
  for (int i = 0; i < 50000; ++i) s.add(rng.normal(2.0, 3.0));
  EXPECT_NEAR(s.mean(), 2.0, 0.05);
  EXPECT_NEAR(s.stddev(), 3.0, 0.05);
}

TEST(Rng, ExponentialMean) {
  Rng rng(11);
  RunningStats s;
  for (int i = 0; i < 50000; ++i) {
    const double x = rng.exponential(0.12);
    ASSERT_GE(x, 0.0);
    s.add(x);
  }
  EXPECT_NEAR(s.mean(), 0.12, 0.003);
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(12);
  int hits = 0;
  for (int i = 0; i < 20000; ++i) hits += rng.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(hits / 20000.0, 0.3, 0.01);
}

}  // namespace
}  // namespace liquid3d
