// Distributed sweep subsystem (src/sweep/): shard planner, worker driver,
// checkpoint journal, deterministic merge.  The load-bearing contract:
// merged output from K-sharded runs — any shard order, any resume history —
// is bit-identical to a single-process ExperimentSuite::run of the grid.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "geom/stack.hpp"
#include "geom/stack_spec.hpp"
#include "sim/report.hpp"
#include "sweep/journal.hpp"
#include "sweep/merge.hpp"
#include "sweep/plan.hpp"
#include "sweep/worker.hpp"

namespace liquid3d {
namespace {

/// Small, fast grid: 2 scenarios x 2 workloads on a coarse thermal grid.
SweepGridSpec tiny_grid() {
  SweepGridSpec grid;
  grid.scenarios = {ScenarioRegistry::global().at("lb-air"),
                    ScenarioRegistry::global().at("talb-var")};
  grid.workloads = {"gzip", "Web-med"};
  grid.duration = SimTime::from_s(2);
  grid.seed = 7;
  grid.grid_rows = 8;
  grid.grid_cols = 9;
  return grid;
}

/// Byte-level report comparison: the acceptance criterion is bit-identical
/// *exports*, not just numerically close summaries.
std::string summaries_csv(const std::vector<PolicySummary>& summaries) {
  std::ostringstream out;
  write_summaries_csv(out, summaries);
  return out.str();
}

void expect_identical_summaries(const std::vector<PolicySummary>& a,
                                const std::vector<PolicySummary>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t s = 0; s < a.size(); ++s) {
    EXPECT_EQ(a[s].label, b[s].label);
    ASSERT_EQ(a[s].per_workload.size(), b[s].per_workload.size());
    for (std::size_t w = 0; w < a[s].per_workload.size(); ++w) {
      EXPECT_TRUE(
          results_identical(a[s].per_workload[w], b[s].per_workload[w]))
          << a[s].label << " / " << a[s].per_workload[w].benchmark;
    }
  }
  EXPECT_EQ(summaries_csv(a), summaries_csv(b));
}

std::string temp_path(const std::string& name) {
  return ::testing::TempDir() + "/liquid3d_sweep_" + name;
}

JournalEntry ok_entry(std::size_t cell, const SimulationResult& r) {
  JournalEntry e;
  e.cell = cell;
  e.result = r;
  return e;
}

TEST(SweepPlan, ExpandsGridInScenarioMajorOrder) {
  const SweepGridSpec grid = tiny_grid();
  const std::vector<SweepCell> cells = expand_grid(grid);
  ASSERT_EQ(cells.size(), 4u);
  EXPECT_EQ(cells[0].index, 0u);
  EXPECT_EQ(cells[0].scenario.name, "lb-air");
  EXPECT_EQ(cells[0].workload, "gzip");
  EXPECT_EQ(cells[3].index, 3u);
  EXPECT_EQ(cells[3].scenario.name, "talb-var");
  EXPECT_EQ(cells[3].workload, "Web-med");
}

TEST(SweepPlan, RoundRobinPartitionCoversAllCellsOnce) {
  const SweepGridSpec grid = tiny_grid();
  const auto shards =
      partition_cells(grid, expand_grid(grid), 3, ShardStrategy::kRoundRobin);
  ASSERT_EQ(shards.size(), 3u);
  EXPECT_EQ(shards[0].size(), 2u);  // cells 0, 3
  EXPECT_EQ(shards[1].size(), 1u);
  EXPECT_EQ(shards[2].size(), 1u);
  std::vector<std::size_t> seen;
  for (const auto& shard : shards) {
    for (const SweepCell& c : shard) seen.push_back(c.index);
  }
  std::sort(seen.begin(), seen.end());
  EXPECT_EQ(seen, (std::vector<std::size_t>{0, 1, 2, 3}));
}

TEST(SweepPlan, MoreShardsThanCellsLeavesEmptyShards) {
  const SweepGridSpec grid = tiny_grid();
  const auto shards =
      partition_cells(grid, expand_grid(grid), 6, ShardStrategy::kRoundRobin);
  ASSERT_EQ(shards.size(), 6u);
  EXPECT_TRUE(shards[4].empty());
  EXPECT_TRUE(shards[5].empty());
}

TEST(SweepPlan, CostWeightedPartitionIsDeterministicAndComplete) {
  SweepGridSpec grid = tiny_grid();
  // Mix cheap air cells with liquid and PCG cells so costs genuinely differ.
  ScenarioSpec pcg = ScenarioRegistry::global().at("talb-var");
  pcg.name = "talb-var-pcg";
  pcg.solver = SolverBackend::kPcg;
  grid.scenarios.push_back(pcg);

  const double air = estimate_cell_cost(grid, grid.scenarios[0]);
  const double liquid = estimate_cell_cost(grid, grid.scenarios[1]);
  const double pcg_cost = estimate_cell_cost(grid, pcg);
  EXPECT_GT(air, 0.0);
  EXPECT_GT(liquid, air);    // liquid stacks add cavities + fluid march
  EXPECT_GT(pcg_cost, liquid);  // forced PCG at this bandwidth is pricier

  const auto a =
      partition_cells(grid, expand_grid(grid), 3, ShardStrategy::kCostWeighted);
  const auto b =
      partition_cells(grid, expand_grid(grid), 3, ShardStrategy::kCostWeighted);
  ASSERT_EQ(a.size(), 3u);
  std::vector<std::size_t> seen;
  for (std::size_t k = 0; k < a.size(); ++k) {
    ASSERT_EQ(a[k].size(), b[k].size());
    for (std::size_t i = 0; i < a[k].size(); ++i) {
      EXPECT_EQ(a[k][i].index, b[k][i].index);  // deterministic
      seen.push_back(a[k][i].index);
    }
    // Canonical in-shard order.
    EXPECT_TRUE(std::is_sorted(a[k].begin(), a[k].end(),
                               [](const SweepCell& x, const SweepCell& y) {
                                 return x.index < y.index;
                               }));
  }
  std::sort(seen.begin(), seen.end());
  EXPECT_EQ(seen.size(), 6u);
  EXPECT_EQ(std::adjacent_find(seen.begin(), seen.end()), seen.end());
}

TEST(SweepPlan, CellFileRoundTripsIncludingAwkwardNames) {
  SweepGridSpec grid = tiny_grid();
  // Scenario names/labels are user-supplied: commas and quotes must survive.
  ScenarioSpec awkward = grid.scenarios[1];
  awkward.name = "weird, \"name\"";
  awkward.label = "Label, with commas";
  grid.scenarios.push_back(awkward);
  grid.duration = SimTime::from_ms(2500);
  grid.layer_pairs = 2;
  grid.seed = 99;
  grid.dpm_enabled = false;

  const std::vector<SweepCell> cells = expand_grid(grid);
  std::ostringstream out;
  write_sweep_cells(out, grid, cells);
  std::istringstream in(out.str());
  const SweepCellFile back = read_sweep_cells(in, "test");

  EXPECT_EQ(back.grid.layer_pairs, 2u);
  EXPECT_EQ(back.grid.duration.as_ms(), 2500);
  EXPECT_EQ(back.grid.seed, 99u);
  EXPECT_FALSE(back.grid.dpm_enabled);
  EXPECT_EQ(back.grid.grid_rows, 8u);
  EXPECT_EQ(back.grid.grid_cols, 9u);
  ASSERT_EQ(back.cells.size(), cells.size());
  ASSERT_EQ(back.grid.scenarios.size(), 3u);
  EXPECT_EQ(back.grid.scenarios[2].name, "weird, \"name\"");
  EXPECT_EQ(back.grid.scenarios[2].label, "Label, with commas");
  EXPECT_EQ(back.grid.workloads, grid.workloads);
  for (std::size_t i = 0; i < cells.size(); ++i) {
    EXPECT_EQ(back.cells[i].index, cells[i].index);
    EXPECT_EQ(back.cells[i].scenario.name, cells[i].scenario.name);
    EXPECT_EQ(back.cells[i].workload, cells[i].workload);
  }
}

TEST(SweepPlan, ReaderReportsRowAndColumn) {
  const std::string good =
      "#liquid3d-sweep v1\n"
      "#suite layer_pairs=1 duration_ms=2000 seed=7 dpm=1\n"
      "cell,name,policy,cooling,valves,skew,label,solver,workload\n"
      "0,lb-air,lb,air,0,,,auto,gzip\n";
  {
    std::istringstream in(good);
    EXPECT_EQ(read_sweep_cells(in, "shard.csv").cells.size(), 1u);
  }
  // Bad policy on data row 4 (comments + header count as rows).
  std::string bad = good;
  bad.replace(bad.find(",lb,"), 4, ",zz,");
  std::istringstream in(bad);
  try {
    (void)read_sweep_cells(in, "shard.csv");
    FAIL() << "expected ConfigError";
  } catch (const ConfigError& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("shard.csv row 4"), std::string::npos) << msg;
    EXPECT_NE(msg.find("column 'policy'"), std::string::npos) << msg;
  }

  std::istringstream no_header("#liquid3d-sweep v1\nnot,a,header\n");
  EXPECT_THROW((void)read_sweep_cells(no_header, "x"), ConfigError);

  std::istringstream dup(
      "cell,name,policy,cooling,valves,skew,label,solver,workload\n"
      "0,lb-air,lb,air,0,,,auto,gzip\n"
      "0,lb-air,lb,air,0,,,auto,gzip\n");
  EXPECT_THROW((void)read_sweep_cells(dup, "x"), ConfigError);
}

TEST(SweepJournal, AppendLoadRoundTripsBitExactly) {
  const std::string path = temp_path("journal_roundtrip.csv");
  std::remove(path.c_str());

  SimulationResult r;
  r.label = "LB (Air), \"quoted\"";
  r.benchmark = "gzip";
  r.avg_tmax = 79.0 + 1.0 / 3.0;
  r.migrations = 42;
  {
    SweepJournal journal(path);
    journal.append(ok_entry(3, r));
    journal.append(ok_entry(5, r));
  }
  const std::vector<JournalEntry> entries = SweepJournal::load(path);
  ASSERT_EQ(entries.size(), 2u);
  EXPECT_EQ(entries[0].cell, 3u);
  EXPECT_EQ(entries[1].cell, 5u);
  EXPECT_TRUE(results_identical(entries[0].result, r));
  std::remove(path.c_str());
}

TEST(SweepJournal, MissingFileIsEmpty) {
  EXPECT_TRUE(SweepJournal::load(temp_path("never_written.csv")).empty());
}

TEST(SweepJournal, TornTailIsDroppedOnLoadAndRepairedOnAppend) {
  const std::string path = temp_path("journal_torn.csv");
  std::remove(path.c_str());
  SimulationResult r;
  r.label = "x";
  r.benchmark = "gzip";
  {
    SweepJournal journal(path);
    journal.append(ok_entry(0, r));
  }
  // Simulate a crash mid-write: append half a record, no newline.
  {
    std::ofstream out(path, std::ios::app);
    out << "1,torn,gzip,0,0,0";
  }
  // The loader drops the torn tail...
  std::vector<JournalEntry> entries = SweepJournal::load(path);
  ASSERT_EQ(entries.size(), 1u);
  EXPECT_EQ(entries[0].cell, 0u);
  // ...and re-opening for append truncates it, so the next record doesn't
  // weld onto the torn bytes.
  {
    SweepJournal journal(path);
    journal.append(ok_entry(2, r));
  }
  entries = SweepJournal::load(path);
  ASSERT_EQ(entries.size(), 2u);
  EXPECT_EQ(entries[0].cell, 0u);
  EXPECT_EQ(entries[1].cell, 2u);
  std::remove(path.c_str());
}

TEST(SweepJournal, TornHeaderIsRestartedOnReopen) {
  // A crash inside the very first write can persist the schema comment but
  // tear the header row; reopening must restart the preamble so appended
  // entries stay loadable.
  const std::string path = temp_path("journal_torn_header.csv");
  std::remove(path.c_str());
  {
    std::ofstream out(path);
    out << "#liquid3d-sweep-journal v1\ncell,label,benchm";  // torn header
  }
  SimulationResult r;
  r.label = "x";
  r.benchmark = "gzip";
  {
    SweepJournal journal(path);
    journal.append(ok_entry(4, r));
  }
  const std::vector<JournalEntry> entries = SweepJournal::load(path);
  ASSERT_EQ(entries.size(), 1u);
  EXPECT_EQ(entries[0].cell, 4u);
  std::remove(path.c_str());
}

TEST(SweepJournal, CorruptInteriorRecordThrows) {
  const std::string path = temp_path("journal_corrupt.csv");
  std::remove(path.c_str());
  SimulationResult r;
  r.label = "x";
  r.benchmark = "gzip";
  {
    SweepJournal journal(path);
    journal.append(ok_entry(0, r));
  }
  {
    std::ofstream out(path, std::ios::app);
    out << "not-a-cell-index,x,gzip\n";  // terminated, wrong arity
  }
  EXPECT_THROW((void)SweepJournal::load(path), ConfigError);
  std::remove(path.c_str());
}

/// Fixture for the end-to-end distributed contract: plan -> workers (with
/// resume) -> merge == single-process suite run.
class SweepEndToEnd : public ::testing::Test {
 protected:
  static std::vector<PolicySummary> single_process(const SweepGridSpec& grid) {
    std::vector<BenchmarkSpec> workloads;
    for (const std::string& name : grid.workloads) {
      workloads.push_back(*find_benchmark(name));
    }
    ExperimentSuite suite(to_suite_config(grid));
    return suite.run(grid.scenarios, workloads);
  }

  /// Plan into `shard_count` shards, run every shard through its own
  /// journal, and return the journal paths (plan cells via expand_grid).
  std::vector<std::string> run_sharded(const SweepGridSpec& grid,
                                       std::size_t shard_count,
                                       const SweepWorkerOptions& options = {},
                                       const std::string& tag = "e2e") {
    const auto shards = partition_cells(grid, expand_grid(grid), shard_count,
                                        ShardStrategy::kRoundRobin);
    std::vector<std::string> journals;
    for (std::size_t k = 0; k < shards.size(); ++k) {
      SweepCellFile shard;
      shard.grid = grid;
      shard.cells = shards[k];
      const std::string path =
          temp_path(tag + "_journal_" + std::to_string(k) + ".csv");
      std::remove(path.c_str());
      run_sweep_shard(shard, path, options);
      journals.push_back(path);
    }
    return journals;
  }

  static SweepCellFile plan_file(const SweepGridSpec& grid) {
    SweepCellFile plan;
    plan.grid = grid;
    plan.cells = expand_grid(grid);
    return plan;
  }

  static void cleanup(const std::vector<std::string>& paths) {
    for (const std::string& p : paths) std::remove(p.c_str());
  }
};

TEST_F(SweepEndToEnd, MergedShardsMatchSingleProcessBitExactly) {
  const SweepGridSpec grid = tiny_grid();
  const std::vector<PolicySummary> reference = single_process(grid);

  const std::vector<std::string> journals = run_sharded(grid, 3);
  std::vector<JournalEntry> entries;
  for (const std::string& path : journals) {
    auto loaded = SweepJournal::load(path);
    entries.insert(entries.end(), loaded.begin(), loaded.end());
  }
  SweepMergeStats stats;
  const std::vector<PolicySummary> merged =
      merge_sweep_entries(plan_file(grid), entries, &stats);
  EXPECT_EQ(stats.cells, 4u);
  EXPECT_EQ(stats.duplicates, 0u);
  expect_identical_summaries(reference, merged);

  // Merge is invariant under shard/journal order: reverse every entry.
  std::vector<JournalEntry> shuffled(entries.rbegin(), entries.rend());
  expect_identical_summaries(
      reference, merge_sweep_entries(plan_file(grid), shuffled));
  cleanup(journals);
}

TEST_F(SweepEndToEnd, KilledWorkerResumesWithoutRecomputingJournaledCells) {
  const SweepGridSpec grid = tiny_grid();
  const auto shards =
      partition_cells(grid, expand_grid(grid), 1, ShardStrategy::kRoundRobin);
  SweepCellFile shard;
  shard.grid = grid;
  shard.cells = shards[0];  // all 4 cells
  const std::string path = temp_path("resume_journal.csv");
  std::remove(path.c_str());

  // "Kill" after one cell: max_new_cells cuts the run short exactly the
  // way a SIGKILL between chunks would.
  SweepWorkerOptions partial;
  partial.batch_limit = 1;
  partial.max_new_cells = 1;
  SweepWorkerStats stats = run_sweep_shard(shard, path, partial);
  EXPECT_EQ(stats.completed, 1u);
  EXPECT_EQ(stats.remaining, 3u);
  EXPECT_EQ(SweepJournal::load(path).size(), 1u);

  // Resume to completion: the journaled cell is skipped, not recomputed.
  stats = run_sweep_shard(shard, path);
  EXPECT_EQ(stats.already_done, 1u);
  EXPECT_EQ(stats.completed, 3u);
  EXPECT_EQ(stats.remaining, 0u);

  expect_identical_summaries(
      single_process(grid),
      merge_sweep_entries(plan_file(grid), SweepJournal::load(path)));
  cleanup({path});
}

TEST_F(SweepEndToEnd, DuplicateJournalEntriesMergeCleanly) {
  // A worker killed after computing (but before the journal fsync was
  // observed) re-runs the cell on resume; determinism makes the duplicate
  // byte-identical, and the merge folds it without complaint.
  const SweepGridSpec grid = tiny_grid();
  const std::vector<std::string> journals = run_sharded(grid, 2, {}, "dup");
  std::vector<JournalEntry> entries;
  for (const std::string& path : journals) {
    auto loaded = SweepJournal::load(path);
    entries.insert(entries.end(), loaded.begin(), loaded.end());
  }
  entries.push_back(entries.front());  // exact duplicate
  SweepMergeStats stats;
  const std::vector<PolicySummary> merged =
      merge_sweep_entries(plan_file(grid), entries, &stats);
  EXPECT_EQ(stats.duplicates, 1u);
  expect_identical_summaries(single_process(grid), merged);

  // A *conflicting* duplicate is a broken determinism contract: loud error.
  entries.push_back(entries.front());
  entries.back().result.avg_tmax += 1.0;
  EXPECT_THROW((void)merge_sweep_entries(plan_file(grid), entries),
               ConfigError);
  cleanup(journals);
}

TEST_F(SweepEndToEnd, IncompleteSweepAndStrayCellsAreRejected) {
  const SweepGridSpec grid = tiny_grid();
  const std::vector<std::string> journals = run_sharded(grid, 2, {}, "gap");
  std::vector<JournalEntry> entries = SweepJournal::load(journals[0]);

  // Only shard 0's cells: the merge must name the gap, not fabricate rows.
  try {
    (void)merge_sweep_entries(plan_file(grid), entries);
    FAIL() << "expected ConfigError";
  } catch (const ConfigError& e) {
    EXPECT_NE(std::string(e.what()).find("incomplete"), std::string::npos);
  }

  // An entry outside the plan's grid is rejected too.
  JournalEntry stray = entries.front();
  stray.cell = 99;
  entries.push_back(stray);
  EXPECT_THROW((void)merge_sweep_entries(plan_file(grid), entries),
               ConfigError);
  cleanup(journals);
}

TEST_F(SweepEndToEnd, SingleCellGridAndEmptyShardsWork) {
  SweepGridSpec grid = tiny_grid();
  grid.scenarios.resize(1);
  grid.workloads.resize(1);
  ASSERT_EQ(grid.cell_count(), 1u);

  // 3 shards for 1 cell: two are empty; empty workers are no-ops.
  const std::vector<std::string> journals = run_sharded(grid, 3, {}, "one");
  std::vector<JournalEntry> entries;
  for (const std::string& path : journals) {
    auto loaded = SweepJournal::load(path);
    entries.insert(entries.end(), loaded.begin(), loaded.end());
  }
  ASSERT_EQ(entries.size(), 1u);
  expect_identical_summaries(single_process(grid),
                             merge_sweep_entries(plan_file(grid), entries));
  cleanup(journals);
}

TEST_F(SweepEndToEnd, ThreadPoolExecutionMatchesBatched) {
  const SweepGridSpec grid = tiny_grid();
  SweepWorkerOptions pooled;
  pooled.execution = SuiteExecution::kThreadPool;
  pooled.worker_threads = 2;
  const std::vector<std::string> a = run_sharded(grid, 2, pooled, "pool");
  const std::vector<std::string> b = run_sharded(grid, 2, {}, "batch");
  auto load_all = [](const std::vector<std::string>& paths) {
    std::vector<JournalEntry> entries;
    for (const std::string& p : paths) {
      auto loaded = SweepJournal::load(p);
      entries.insert(entries.end(), loaded.begin(), loaded.end());
    }
    return entries;
  };
  expect_identical_summaries(
      merge_sweep_entries(plan_file(grid), load_all(a)),
      merge_sweep_entries(plan_file(grid), load_all(b)));
  cleanup(a);
  cleanup(b);
}

TEST_F(SweepEndToEnd, FilePlanRoundTripMatchesInMemoryPlan) {
  // write_sweep_plan -> read_sweep_file -> worker -> merge: the full
  // on-disk path, exactly what the sweep_worker CLI drives.
  const SweepGridSpec grid = tiny_grid();
  const std::string dir = temp_path("plan_dir");
  const std::vector<std::string> shard_paths =
      write_sweep_plan(grid, 2, ShardStrategy::kCostWeighted, dir, "t");

  std::vector<std::string> journals;
  for (std::size_t k = 0; k < shard_paths.size(); ++k) {
    const SweepCellFile shard = read_sweep_file(shard_paths[k]);
    EXPECT_EQ(shard.grid.duration.as_ms(), grid.duration.as_ms());
    const std::string journal =
        temp_path("plan_dir_journal_" + std::to_string(k) + ".csv");
    std::remove(journal.c_str());
    run_sweep_shard(shard, journal);
    journals.push_back(journal);
  }
  SweepMergeStats stats;
  const std::vector<PolicySummary> merged =
      merge_sweep_journals(dir + "/t-plan.csv", journals, &stats);
  EXPECT_EQ(stats.cells, grid.cell_count());
  expect_identical_summaries(single_process(grid), merged);
  cleanup(journals);
  for (const std::string& p : shard_paths) std::remove(p.c_str());
  std::remove((dir + "/t-plan.csv").c_str());
}

/// A non-Niagara custom stack for the stack-axis sweep test: one 6 mm x 6 mm
/// quad-core die under liquid cooling.
StackSpec custom_test_stack() {
  StackSpec spec;
  spec.name = "quad-die";
  spec.cooling = CoolingType::kLiquid;
  spec.die_width = 6e-3;
  spec.die_height = 6e-3;
  StackLayerEntry layer;
  layer.blocks.push_back({"core0", BlockType::kCore, Rect{0, 0, 3e-3, 3e-3}});
  layer.blocks.push_back({"core1", BlockType::kCore, Rect{3e-3, 0, 3e-3, 3e-3}});
  layer.blocks.push_back({"core2", BlockType::kCore, Rect{0, 3e-3, 3e-3, 3e-3}});
  layer.blocks.push_back(
      {"core3", BlockType::kCore, Rect{3e-3, 3e-3, 3e-3, 3e-3}});
  spec.layers.push_back(layer);
  CavitySpec cavity;
  cavity.channel_count = 40;
  cavity.pitch = 150e-6;
  cavity.channel_width = 70e-6;
  spec.cavities = {cavity};
  return spec;
}

TEST_F(SweepEndToEnd, CustomStackSweepShardsResumeAndMergeBitExactly) {
  // The ISSUE acceptance bar: a file-defined custom stack rides the stack
  // axis through plan -> shard -> resume -> merge, with the spec carried
  // entirely in #suite metadata (the file is DELETED before workers run),
  // and the merged output is bit-identical to a single-process run.
  const std::string stack_path = temp_path("custom_stack.stack");
  {
    std::ofstream out(stack_path);
    write_stack_file(out, custom_test_stack());
  }

  SweepGridSpec grid = tiny_grid();
  // The stack file fixes liquid cooling, so the grid is liquid-only.
  grid.scenarios = {ScenarioRegistry::global().at("lb-max"),
                    ScenarioRegistry::global().at("talb-var")};
  for (ScenarioSpec& s : grid.scenarios) s.stack = stack_path;

  // Reference: resolve the file into an embedded spec, run in-process.
  SweepGridSpec resolved = grid;
  resolve_grid_stacks(resolved);
  ASSERT_EQ(resolved.stacks.size(), 1u);
  EXPECT_EQ(resolved.stacks[0].name, stack_path);
  const std::vector<PolicySummary> reference = single_process(resolved);

  // Plan to disk; write_sweep_plan embeds the resolved spec itself.
  const std::string dir = temp_path("stack_plan_dir");
  const std::vector<std::string> shard_paths =
      write_sweep_plan(grid, 2, ShardStrategy::kRoundRobin, dir, "s");
  const std::string plan_path = dir + "/s-plan.csv";
  {
    std::ifstream in(plan_path);
    std::stringstream text;
    text << in.rdbuf();
    EXPECT_NE(text.str().find("stack="), std::string::npos)
        << "plan #suite line lacks the embedded stack spec";
  }

  // Remote shards have no access to the original file: delete it.  Every
  // worker below must rebuild the geometry from #suite metadata alone.
  std::remove(stack_path.c_str());

  std::vector<std::string> journals;
  for (std::size_t k = 0; k < shard_paths.size(); ++k) {
    const SweepCellFile shard = read_sweep_file(shard_paths[k]);
    const std::string journal =
        temp_path("stack_journal_" + std::to_string(k) + ".csv");
    std::remove(journal.c_str());
    if (k == 0) {
      // Kill shard 0 after one cell, then resume it to completion.
      SweepWorkerOptions partial;
      partial.batch_limit = 1;
      partial.max_new_cells = 1;
      SweepWorkerStats stats = run_sweep_shard(shard, journal, partial);
      EXPECT_EQ(stats.completed, 1u);
      stats = run_sweep_shard(shard, journal);
      EXPECT_EQ(stats.already_done, 1u);
    } else {
      run_sweep_shard(shard, journal);
    }
    journals.push_back(journal);
  }

  SweepMergeStats stats;
  const std::vector<PolicySummary> merged =
      merge_sweep_journals(plan_path, journals, &stats);
  EXPECT_EQ(stats.cells, 4u);
  expect_identical_summaries(reference, merged);

  cleanup(journals);
  for (const std::string& p : shard_paths) std::remove(p.c_str());
  std::remove(plan_path.c_str());
}

TEST(SweepPlan, StackAxisRoundTripsThroughSuiteMetadata) {
  // write_sweep_cells / read_sweep_cells carry embedded specs losslessly,
  // and pre-stack-axis shard files (9-column header) still load.
  SweepGridSpec grid = tiny_grid();
  grid.scenarios = {ScenarioRegistry::global().at("talb-var")};
  grid.scenarios[0].stack = "quad-die";
  grid.stacks = {custom_test_stack()};

  std::ostringstream out;
  write_sweep_cells(out, grid, expand_grid(grid));
  EXPECT_NE(out.str().find("stack="), std::string::npos);

  std::istringstream in(out.str());
  const SweepCellFile back = read_sweep_cells(in, "mem");
  ASSERT_EQ(back.grid.stacks.size(), 1u);
  EXPECT_EQ(back.grid.stacks[0].name, "quad-die");
  EXPECT_EQ(stack_fingerprint(make_stack(back.grid.stacks[0])),
            stack_fingerprint(make_stack(custom_test_stack())));
  ASSERT_EQ(back.grid.scenarios.size(), 1u);
  EXPECT_EQ(back.grid.scenarios[0].stack, "quad-die");

  // Legacy 9-column file (no stack column, no stack= token) still loads,
  // with the stack axis defaulting to empty.
  std::istringstream legacy_in(
      "#liquid3d-sweep v1\n"
      "#suite layer_pairs=1 duration_ms=2000 seed=7 dpm=1\n"
      "cell,name,policy,cooling,valves,skew,label,solver,workload\n"
      "0,talb-var,talb,var,0,,,auto,gzip\n");
  const SweepCellFile legacy_back = read_sweep_cells(legacy_in, "legacy");
  ASSERT_EQ(legacy_back.cells.size(), 1u);
  EXPECT_TRUE(legacy_back.grid.stacks.empty());
  EXPECT_TRUE(legacy_back.grid.scenarios[0].stack.empty());
}

}  // namespace
}  // namespace liquid3d
