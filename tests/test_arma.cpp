// ARMA fitting and forecasting (forecast/arma.hpp).
#include <gtest/gtest.h>

#include <cmath>
#include <numbers>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "forecast/arma.hpp"

namespace liquid3d {
namespace {

std::vector<double> synth_ar2(std::size_t n, double phi1, double phi2, double noise,
                              std::uint64_t seed) {
  Rng rng(seed);
  std::vector<double> x(n, 0.0);
  for (std::size_t t = 2; t < n; ++t) {
    x[t] = phi1 * x[t - 1] + phi2 * x[t - 2] + noise * rng.normal();
  }
  return x;
}

TEST(ArmaModel, RecoversAr2Coefficients) {
  const std::vector<double> x = synth_ar2(2000, 0.6, 0.25, 0.1, 17);
  ArmaConfig cfg;
  cfg.ar_order = 2;
  cfg.ma_order = 0;
  const ArmaModel m = ArmaModel::fit(x, cfg);
  ASSERT_EQ(m.ar().size(), 2u);
  EXPECT_NEAR(m.ar()[0], 0.6, 0.06);
  EXPECT_NEAR(m.ar()[1], 0.25, 0.06);
  EXPECT_NEAR(m.residual_std(), 0.1, 0.02);
}

TEST(ArmaModel, ConstantSeriesPredictsConstant) {
  const std::vector<double> x(100, 73.5);
  const ArmaModel m = ArmaModel::fit(x, ArmaConfig{});
  EXPECT_DOUBLE_EQ(m.mean(), 73.5);
  EXPECT_NEAR(m.forecast(x, {}, 5), 73.5, 1e-9);
  EXPECT_EQ(m.residual_std(), 0.0);
}

TEST(ArmaModel, TooShortSeriesRejected) {
  const std::vector<double> x(10, 1.0);
  EXPECT_THROW(ArmaModel::fit(x, ArmaConfig{}), ConfigError);
}

TEST(ArmaModel, MultiStepForecastTracksLinearRamp) {
  // A ramp is perfectly predictable by an AR model fit on its differences'
  // structure; 5-step-ahead error must be far below the naive last-value
  // error (which is 5 * slope).
  std::vector<double> x(200);
  for (std::size_t i = 0; i < x.size(); ++i) x[i] = 50.0 + 0.1 * static_cast<double>(i);
  ArmaConfig cfg;
  cfg.ar_order = 4;
  cfg.ma_order = 0;
  const ArmaModel m = ArmaModel::fit(x, cfg);
  const double pred = m.forecast(x, {}, 5);
  const double truth = 50.0 + 0.1 * static_cast<double>(x.size() - 1 + 5);
  EXPECT_NEAR(pred, truth, 0.25);  // naive last-value would be off by 0.5
}

class HorizonSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(HorizonSweep, SinusoidForecastBeatsLastValue) {
  // Serially correlated signal (the paper's argument for ARMA): forecast a
  // slow sinusoid h steps ahead and compare against carrying the last value
  // forward, accumulated over a test window.
  const std::size_t horizon = GetParam();
  std::vector<double> x(600);
  Rng rng(23);
  for (std::size_t i = 0; i < x.size(); ++i) {
    x[i] = 75.0 + 5.0 * std::sin(2.0 * std::numbers::pi * static_cast<double>(i) / 60.0) +
           0.05 * rng.normal();
  }
  ArmaConfig cfg;
  cfg.ar_order = 6;
  cfg.ma_order = 0;

  double err_arma = 0.0;
  double err_naive = 0.0;
  std::size_t count = 0;
  for (std::size_t t = 400; t + horizon < x.size(); ++t) {
    const std::vector<double> history(x.begin(), x.begin() + static_cast<long>(t) + 1);
    const ArmaModel m = ArmaModel::fit(history, cfg);
    const double pred = m.forecast(history, {}, horizon);
    const double truth = x[t + horizon];
    err_arma += (pred - truth) * (pred - truth);
    err_naive += (x[t] - truth) * (x[t] - truth);
    ++count;
  }
  EXPECT_LT(err_arma, 0.5 * err_naive) << "horizon " << horizon;
}

INSTANTIATE_TEST_SUITE_P(Horizons, HorizonSweep, ::testing::Values(1, 3, 5, 8));

TEST(ArmaPredictor, BecomesReadyAtMinWindow) {
  ArmaConfig cfg;
  cfg.ar_order = 3;
  cfg.ma_order = 1;
  ArmaPredictor p(cfg, 64);
  const std::size_t need = p.min_fit_window();
  for (std::size_t i = 0; i < need - 1; ++i) {
    p.observe(70.0 + 0.01 * static_cast<double>(i));
    EXPECT_FALSE(p.fit()) << "observation " << i;
  }
  p.observe(71.0);
  EXPECT_TRUE(p.fit());
  EXPECT_TRUE(p.ready());
}

TEST(ArmaPredictor, FallsBackToLastValueBeforeFit) {
  ArmaPredictor p(ArmaConfig{}, 64);
  p.observe(42.0);
  EXPECT_DOUBLE_EQ(p.forecast(5), 42.0);
}

TEST(ArmaPredictor, InnovationsTrackPredictionErrors) {
  ArmaPredictor p(ArmaConfig{}, 128);
  // Feed a constant: once fitted, innovations must be ~0.
  for (int i = 0; i < 100; ++i) p.observe(60.0);
  p.fit();
  p.observe(60.0);
  EXPECT_NEAR(p.last_innovation(), 0.0, 1e-6);
  // A sudden jump shows up as a large innovation.
  p.observe(70.0);
  EXPECT_GT(std::abs(p.last_innovation()), 5.0);
}

TEST(ArmaPredictor, WindowTooSmallRejected) {
  ArmaConfig cfg;
  cfg.ar_order = 8;
  cfg.ma_order = 4;
  EXPECT_THROW(ArmaPredictor(cfg, 16), ConfigError);
}

TEST(ArmaModel, HannanRissanenHandlesMaTerms) {
  // ARMA(1,1) synthetic: x_t = 0.7 x_{t-1} + e_t + 0.4 e_{t-1}.
  Rng rng(31);
  std::vector<double> x(3000, 0.0);
  double e_prev = 0.0;
  for (std::size_t t = 1; t < x.size(); ++t) {
    const double e = 0.1 * rng.normal();
    x[t] = 0.7 * x[t - 1] + e + 0.4 * e_prev;
    e_prev = e;
  }
  ArmaConfig cfg;
  cfg.ar_order = 1;
  cfg.ma_order = 1;
  const ArmaModel m = ArmaModel::fit(x, cfg);
  EXPECT_NEAR(m.ar()[0], 0.7, 0.1);
  EXPECT_NEAR(m.ma()[0], 0.4, 0.15);
}

}  // namespace
}  // namespace liquid3d
