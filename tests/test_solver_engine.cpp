// Solver engine (thermal/solver/): multi-RHS batching, refactorization
// after set_zero, the dt-keyed factorization cache, warm-started
// characterization equivalence, and the no-allocation guarantee of the
// transient hot loop.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdlib>
#include <new>
#include <span>
#include <vector>

#include "common/error.hpp"
#include "common/linalg.hpp"
#include "common/rng.hpp"
#include "control/characterize.hpp"
#include "coolant/flow.hpp"
#include "coolant/pump.hpp"
#include "geom/stack.hpp"
#include "thermal/model3d.hpp"
#include "thermal/solver/banded_lu.hpp"
#include "thermal/solver/banded_spd.hpp"
#include "thermal/solver/factorization_cache.hpp"

// -- Global allocation counter ----------------------------------------------
//
// Replacing the global operator new/delete in this TU instruments every heap
// allocation in the test binary; the hot-loop test below asserts the count
// stays flat across 1000 warmed-up steps.
namespace {
std::atomic<std::size_t> g_allocations{0};

void* counted_alloc(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size == 0 ? 1 : size)) return p;
  throw std::bad_alloc{};
}
}  // namespace

void* operator new(std::size_t size) { return counted_alloc(size); }
void* operator new[](std::size_t size) { return counted_alloc(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace liquid3d {
namespace {

BandedSpdMatrix random_network(std::size_t n, std::size_t bw, Rng& rng,
                               Matrix* dense = nullptr) {
  BandedSpdMatrix banded(n, bw);
  for (std::size_t i = 0; i < n; ++i) {
    const double c = 0.5 + rng.uniform();
    banded.add_diagonal(i, c);
    if (dense) (*dense)(i, i) += c;
  }
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < std::min(n, i + bw + 1); ++j) {
      if (!rng.bernoulli(0.4)) continue;
      const double g = rng.uniform(0.1, 2.0);
      banded.add_coupling(i, j, g);
      if (dense) {
        (*dense)(i, i) += g;
        (*dense)(j, j) += g;
        (*dense)(i, j) -= g;
        (*dense)(j, i) -= g;
      }
    }
  }
  return banded;
}

TEST(SolverEngine, MultiRhsMatchesSingleRhsSolves) {
  constexpr std::size_t n = 90;
  constexpr std::size_t bw = 11;
  constexpr std::size_t nrhs = 5;
  Rng rng(11);
  BandedSpdMatrix m = random_network(n, bw, rng);
  m.factorize();

  // nrhs independent right-hand sides.
  std::vector<std::vector<double>> singles(nrhs, std::vector<double>(n));
  std::vector<double> batched(n * nrhs);
  for (std::size_t r = 0; r < nrhs; ++r) {
    for (std::size_t i = 0; i < n; ++i) {
      const double v = rng.uniform(-5, 5);
      singles[r][i] = v;
      batched[i * nrhs + r] = v;  // node-major interleaved layout
    }
  }
  for (auto& rhs : singles) m.solve(rhs);
  m.solve(std::span<double>(batched), nrhs);

  for (std::size_t r = 0; r < nrhs; ++r) {
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_NEAR(batched[i * nrhs + r], singles[r][i],
                  1e-10 * (1.0 + std::abs(singles[r][i])))
          << "rhs " << r << " row " << i;
    }
  }
}

TEST(SolverEngine, MultiRhsIsBitIdenticalToSingleRhs) {
  // The batched kernel replicates the single-RHS operation order per
  // system, so batched transient scenarios reproduce serial runs exactly.
  // Exercised across sizes covering the blocked path, its remainder tail,
  // and bands narrower than the block.
  struct Case {
    std::size_t n, bw, nrhs;
  };
  for (const Case c : {Case{90, 11, 5}, Case{64, 3, 2}, Case{131, 40, 16},
                       Case{7, 2, 3}}) {
    Rng rng(17 + c.n);
    BandedSpdMatrix m = random_network(c.n, c.bw, rng);
    m.factorize();
    std::vector<std::vector<double>> singles(c.nrhs, std::vector<double>(c.n));
    std::vector<double> batched(c.n * c.nrhs);
    for (std::size_t r = 0; r < c.nrhs; ++r) {
      for (std::size_t i = 0; i < c.n; ++i) {
        const double v = rng.uniform(-5, 5);
        singles[r][i] = v;
        batched[i * c.nrhs + r] = v;
      }
    }
    for (auto& rhs : singles) m.solve(rhs);
    m.solve(std::span<double>(batched), c.nrhs);
    for (std::size_t r = 0; r < c.nrhs; ++r) {
      for (std::size_t i = 0; i < c.n; ++i) {
        EXPECT_EQ(batched[i * c.nrhs + r], singles[r][i])
            << "n=" << c.n << " bw=" << c.bw << " rhs " << r << " row " << i;
      }
    }
  }
}

TEST(SolverEngine, MultiRhsBitIdenticalAcrossBatchWidths) {
  // A batch's width must not affect any member system: the lockstep
  // stepper's active set shrinks as models converge, so one model's solves
  // run at many widths within a single simulation.
  constexpr std::size_t n = 120;
  constexpr std::size_t bw = 17;
  Rng rng(29);
  BandedSpdMatrix m = random_network(n, bw, rng);
  m.factorize();
  std::vector<double> probe(n);
  for (double& v : probe) v = rng.uniform(-4, 4);

  std::vector<double> reference = probe;
  m.solve(reference);
  for (std::size_t nrhs : {2u, 3u, 5u, 8u, 13u, 16u, 19u}) {
    std::vector<double> batched(n * nrhs);
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t r = 0; r < nrhs; ++r) {
        // Column 0 is the probe; the rest is arbitrary filler.
        batched[i * nrhs + r] = r == 0 ? probe[i] : probe[(i + r) % n];
      }
    }
    m.solve(std::span<double>(batched), nrhs);
    for (std::size_t i = 0; i < n; ++i) {
      ASSERT_EQ(batched[i * nrhs], reference[i]) << "nrhs " << nrhs << " row " << i;
    }
  }
}

TEST(SolverEngine, MultiRhsMatchesDenseSolver) {
  constexpr std::size_t n = 60;
  constexpr std::size_t bw = 9;
  constexpr std::size_t nrhs = 3;
  Rng rng(12);
  Matrix dense(n, n);
  BandedSpdMatrix m = random_network(n, bw, rng, &dense);
  m.factorize();

  std::vector<double> batched(n * nrhs);
  std::vector<std::vector<double>> b(nrhs, std::vector<double>(n));
  for (std::size_t r = 0; r < nrhs; ++r) {
    for (std::size_t i = 0; i < n; ++i) {
      b[r][i] = rng.uniform(-3, 3);
      batched[i * nrhs + r] = b[r][i];
    }
  }
  m.solve(std::span<double>(batched), nrhs);
  for (std::size_t r = 0; r < nrhs; ++r) {
    const std::vector<double> x = solve_linear(dense, b[r]);
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_NEAR(batched[i * nrhs + r], x[i], 1e-8 * (1.0 + std::abs(x[i])));
    }
  }
}

TEST(SolverEngine, RefactorizeAfterSetZero) {
  constexpr std::size_t n = 40;
  constexpr std::size_t bw = 6;
  Rng rng(13);
  BandedSpdMatrix m = random_network(n, bw, rng);
  m.factorize();
  ASSERT_TRUE(m.factorized());

  // Rebuild with a different network and factorize again; the solution must
  // match a fresh matrix assembled identically.
  m.set_zero();
  EXPECT_FALSE(m.factorized());
  Rng rng2(14);
  Matrix dense(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    const double c = 0.5 + rng2.uniform();
    m.add_diagonal(i, c);
    dense(i, i) += c;
  }
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < std::min(n, i + bw + 1); ++j) {
      if (!rng2.bernoulli(0.4)) continue;
      const double g = rng2.uniform(0.1, 2.0);
      m.add_coupling(i, j, g);
      dense(i, i) += g;
      dense(j, j) += g;
      dense(i, j) -= g;
      dense(j, i) -= g;
    }
  }
  m.factorize();
  std::vector<double> rhs(n, 1.0);
  std::vector<double> x = rhs;
  m.solve(x);
  const std::vector<double> x_ref = solve_linear(dense, rhs);
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_NEAR(x[i], x_ref[i], 1e-8 * (1.0 + std::abs(x_ref[i])));
  }
}

TEST(SolverEngine, BatchedSolveRejectsBadSizes) {
  BandedSpdMatrix m(4, 1);
  for (std::size_t i = 0; i < 4; ++i) m.add_diagonal(i, 2.0);
  m.factorize();
  std::vector<double> wrong(7, 1.0);
  EXPECT_THROW(m.solve(std::span<double>(wrong), 2), ConfigError);
  std::vector<double> ok(8, 1.0);
  EXPECT_THROW(m.solve(std::span<double>(ok), 0), ConfigError);
}

// -- Banded LU (non-symmetric) ----------------------------------------------

TEST(BandedLu, MatchesDenseSolverOnRandomDiagDominant) {
  constexpr std::size_t n = 70;
  constexpr std::size_t bl = 8;
  constexpr std::size_t bu = 5;
  Rng rng(21);
  BandedLuMatrix m(n, bl, bu);
  Matrix dense(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      const bool in_band = (j <= i && i - j <= bl) || (j > i && j - i <= bu);
      if (!in_band || (i != j && !rng.bernoulli(0.5))) continue;
      const double v = (i == j) ? 0.0 : rng.uniform(-1.0, 1.0);
      if (i != j) {
        m.add(i, j, v);
        dense(i, j) += v;
      }
    }
  }
  // Strict diagonal dominance guarantees the unpivoted factorization.
  for (std::size_t i = 0; i < n; ++i) {
    double row_sum = 1.0;
    for (std::size_t j = 0; j < n; ++j) {
      if (j != i) row_sum += std::abs(dense(i, j));
    }
    m.add(i, i, row_sum);
    dense(i, i) += row_sum;
  }
  m.factorize();
  std::vector<double> b(n);
  for (double& v : b) v = rng.uniform(-3, 3);
  std::vector<double> x = b;
  m.solve(x);
  const std::vector<double> x_ref = solve_linear(dense, b);
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_NEAR(x[i], x_ref[i], 1e-9 * (1.0 + std::abs(x_ref[i])));
  }
}

TEST(BandedLu, VanishingPivotDetected) {
  BandedLuMatrix m(2, 1, 1);
  m.add(0, 1, 1.0);
  m.add(1, 0, 1.0);  // zero diagonal -> zero pivot
  EXPECT_THROW(m.factorize(), LogicError);
}

// -- Direct steady solver (fluid elimination) ---------------------------------

TEST(DirectSteady, MatchesPseudoTransientContinuation) {
  auto make = [](bool direct) {
    ThermalModelParams p;
    p.grid_rows = 9;
    p.grid_cols = 10;
    p.direct_steady_solver = direct;
    return ThermalModel3D(make_niagara_stack(1, CoolingType::kLiquid), p);
  };
  for (const double flow_ml : {6.0, 20.0, 45.0}) {
    ThermalModel3D direct = make(true);
    ThermalModel3D pseudo = make(false);
    for (ThermalModel3D* m : {&direct, &pseudo}) {
      m->set_cavity_flow(VolumetricFlow::from_ml_per_min(flow_ml));
      const Floorplan& fp = m->stack().layer(0).floorplan;
      std::vector<double> watts(fp.block_count(), 0.0);
      for (std::size_t b = 0; b < fp.block_count(); ++b) {
        if (fp.block(b).type == BlockType::kCore) watts[b] = 2.8;
      }
      m->set_block_power(0, watts);
      m->initialize(45.0);
      m->solve_steady_state();
    }
    // The elimination is exact; both paths solve the same linear steady
    // state, the continuation just stops at its 1e-4 K tolerance.
    EXPECT_NEAR(direct.max_temperature(), pseudo.max_temperature(), 5e-3)
        << "flow " << flow_ml;
    for (std::size_t cav = 0; cav < direct.stack().cavity_count(); ++cav) {
      EXPECT_NEAR(direct.fluid_outlet_temperature(cav),
                  pseudo.fluid_outlet_temperature(cav), 5e-3);
    }
  }
}

TEST(DirectSteady, ReusesFactorizationPerFlowSetting) {
  ThermalModelParams p;
  p.grid_rows = 6;
  p.grid_cols = 7;
  ThermalModel3D m(make_niagara_stack(1, CoolingType::kLiquid), p);
  const Floorplan& fp = m.stack().layer(0).floorplan;
  std::vector<double> watts(fp.block_count(), 1.5);
  m.set_block_power(0, watts);
  m.set_cavity_flow(VolumetricFlow::from_ml_per_min(12.0));
  m.solve_steady_state();
  const double t1 = m.max_temperature();
  m.solve_steady_state();  // same flow: cached factorization, same answer
  EXPECT_DOUBLE_EQ(m.max_temperature(), t1);
  m.set_cavity_flow(VolumetricFlow::from_ml_per_min(30.0));
  m.solve_steady_state();  // higher flow must cool the stack
  EXPECT_LT(m.max_temperature(), t1);
}

// -- Factorization cache -----------------------------------------------------

TEST(FactorizationCache, ToleratesLastUlpKeys) {
  // 0.1/2 vs 0.05 differ in arithmetic provenance; both must hit one entry.
  const double a = 0.1 / 2.0;
  const double b = 0.05;
  EXPECT_TRUE(FactorizationCache::keys_match(a, b));
  EXPECT_FALSE(FactorizationCache::keys_match(0.05, 0.051));
}

TEST(FactorizationCache, LruEvictsOldestEntry) {
  FactorizationCache cache(2);
  auto make = [] {
    auto m = std::make_unique<BandedSpdMatrix>(3, 1);
    for (std::size_t i = 0; i < 3; ++i) m->add_diagonal(i, 1.0);
    m->factorize();
    return m;
  };
  cache.insert(0.1, make());
  cache.insert(0.2, make());
  EXPECT_NE(cache.find(0.1), nullptr);  // refresh 0.1 -> 0.2 becomes LRU
  cache.insert(0.3, make());            // evicts 0.2
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_NE(cache.find(0.1), nullptr);
  EXPECT_EQ(cache.find(0.2), nullptr);
  EXPECT_NE(cache.find(0.3), nullptr);
}

TEST(FactorizationCache, EvictionFollowsLeastRecentUseOrder) {
  // Recency is what find() and insert() touch — verify the full eviction
  // order over several rounds, not just one eviction.
  FactorizationCache cache(3);
  auto make = [] {
    auto m = std::make_unique<BandedSpdMatrix>(3, 1);
    for (std::size_t i = 0; i < 3; ++i) m->add_diagonal(i, 1.0);
    m->factorize();
    return m;
  };
  cache.insert(0.1, make());
  cache.insert(0.2, make());
  cache.insert(0.3, make());
  // Touch in the order 0.3, 0.1 -> LRU is now 0.2.
  EXPECT_NE(cache.find(0.3), nullptr);
  EXPECT_NE(cache.find(0.1), nullptr);
  cache.insert(0.4, make());  // evicts 0.2
  EXPECT_EQ(cache.find(0.2), nullptr);
  // LRU is now 0.3 (0.4 and 0.1 are fresher; the failed find(0.2) must not
  // have refreshed anything).
  cache.insert(0.5, make());  // evicts 0.3
  EXPECT_EQ(cache.find(0.3), nullptr);
  EXPECT_NE(cache.find(0.1), nullptr);
  EXPECT_NE(cache.find(0.4), nullptr);
  EXPECT_NE(cache.find(0.5), nullptr);
  EXPECT_EQ(cache.size(), 3u);
}

TEST(FactorizationCache, CapacityOneReplacesOnEveryNewKey) {
  FactorizationCache cache(1);
  auto make = [] {
    auto m = std::make_unique<BandedSpdMatrix>(2, 1);
    m->add_diagonal(0, 1.0);
    m->add_diagonal(1, 1.0);
    m->factorize();
    return m;
  };
  BandedSpdMatrix* first = &cache.insert(0.1, make());
  EXPECT_EQ(cache.find(0.1), first);
  cache.insert(0.2, make());  // evicts 0.1 immediately
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(cache.find(0.1), nullptr);
  EXPECT_NE(cache.find(0.2), nullptr);
  // Re-inserting the resident key replaces the payload in place, no
  // eviction churn.
  BandedSpdMatrix* replaced = &cache.insert(0.2, make());
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(cache.find(0.2), replaced);
}

TEST(FactorizationCache, ModelReusesFactorizationsAcrossDts) {
  ThermalModelParams p;
  p.grid_rows = 6;
  p.grid_cols = 7;
  ThermalModel3D model(make_niagara_stack(1, CoolingType::kLiquid), p);
  model.set_cavity_flow(VolumetricFlow::from_ml_per_min(20.0));
  model.initialize(45.0);
  model.step(0.05);
  model.step(0.1);
  model.step(0.05);  // alternating dts must both stay cached
  model.step(0.1);
  const auto& cache = model.factorization_cache();
  EXPECT_EQ(cache.misses(), 2u);
  EXPECT_GE(cache.hits(), 2u);
}

// -- Warm-started characterization -------------------------------------------

TEST(WarmStart, MatchesColdStartSteadyState) {
  ThermalModelParams p;
  p.grid_rows = 8;
  p.grid_cols = 9;
  CharacterizationHarness warm(make_2layer_system(), p, PowerModelParams{},
                               PumpModel::laing_ddc(),
                               FlowDeliveryMode::kPressureLimited);
  // Visit several operating points first so the warm path genuinely seeds
  // from a cached neighbour rather than from the virgin state.
  (void)warm.steady_tmax(0.2, 1);
  (void)warm.steady_tmax(0.8, 3);
  (void)warm.steady_tmax(0.4, 2);
  EXPECT_GE(warm.warm_point_count(), 3u);
  const double t_warm = warm.steady_tmax(0.6, 2);

  CharacterizationHarness cold(make_2layer_system(), p, PowerModelParams{},
                               PumpModel::laing_ddc(),
                               FlowDeliveryMode::kPressureLimited);
  cold.set_warm_start(false);
  const double t_cold = cold.steady_tmax(0.6, 2);

  // Same steady state regardless of the seed trajectory: the fixed point is
  // unique, warm-starting only changes how fast we reach it.
  EXPECT_NEAR(t_warm, t_cold, 0.2);
  EXPECT_EQ(cold.warm_point_count(), 0u);
}

TEST(WarmStart, StateRoundTripRestoresTemperatures) {
  ThermalModelParams p;
  p.grid_rows = 6;
  p.grid_cols = 7;
  ThermalModel3D model(make_niagara_stack(1, CoolingType::kLiquid), p);
  model.set_cavity_flow(VolumetricFlow::from_ml_per_min(15.0));
  model.initialize(45.0);
  const Floorplan& fp = model.stack().layer(0).floorplan;
  std::vector<double> watts(fp.block_count(), 0.0);
  for (std::size_t b = 0; b < fp.block_count(); ++b) {
    if (fp.block(b).type == BlockType::kCore) watts[b] = 2.5;
  }
  model.set_block_power(0, watts);
  for (int i = 0; i < 20; ++i) model.step(0.1);

  ThermalState snap;
  model.save_state(snap);
  const double tmax_before = model.max_temperature();
  for (int i = 0; i < 20; ++i) model.step(0.1);
  EXPECT_NE(model.max_temperature(), tmax_before);
  model.restore_state(snap);
  EXPECT_DOUBLE_EQ(model.max_temperature(), tmax_before);
}

// -- No-allocation hot loop --------------------------------------------------

TEST(HotLoop, StepDoesNotAllocateAfterWarmup) {
  ThermalModelParams p;
  p.grid_rows = 10;
  p.grid_cols = 11;
  ThermalModel3D model(make_niagara_stack(1, CoolingType::kLiquid), p);
  model.set_cavity_flow(VolumetricFlow::from_ml_per_min(20.0));
  const Floorplan& fp = model.stack().layer(0).floorplan;
  std::vector<double> watts(fp.block_count(), 0.0);
  for (std::size_t b = 0; b < fp.block_count(); ++b) {
    if (fp.block(b).type == BlockType::kCore) watts[b] = 3.0;
  }
  model.set_block_power(0, watts);
  model.initialize(45.0);

  // Warm-up: first step of each dt assembles + factorizes (allocates), and
  // scratch buffers reach their steady capacity.
  model.step(0.05);
  model.step(0.05);

  const std::size_t before = g_allocations.load(std::memory_order_relaxed);
  for (int i = 0; i < 1000; ++i) {
    model.step(0.05);
    (void)model.max_temperature();
    (void)model.block_temperature(0, 0);
    (void)model.block_mean_temperature(0, 0);
  }
  const std::size_t after = g_allocations.load(std::memory_order_relaxed);
  EXPECT_EQ(after, before) << "hot loop performed " << (after - before)
                           << " heap allocations over 1000 steps";
}

TEST(HotLoop, PcgStepDoesNotAllocateAfterWarmup) {
  // The iterative backend's hot loop must hold the same contract: the CSR
  // system and preconditioner are cached per dt, and the PCG scratch
  // vectors are persistent members.
  ThermalModelParams p;
  p.grid_rows = 10;
  p.grid_cols = 11;
  p.solver_backend = SolverBackend::kPcg;
  ThermalModel3D model(make_niagara_stack(1, CoolingType::kLiquid), p);
  model.set_cavity_flow(VolumetricFlow::from_ml_per_min(20.0));
  const Floorplan& fp = model.stack().layer(0).floorplan;
  std::vector<double> watts(fp.block_count(), 0.0);
  for (std::size_t b = 0; b < fp.block_count(); ++b) {
    if (fp.block(b).type == BlockType::kCore) watts[b] = 3.0;
  }
  model.set_block_power(0, watts);
  model.initialize(45.0);

  model.step(0.05);
  model.step(0.05);

  const std::size_t before = g_allocations.load(std::memory_order_relaxed);
  for (int i = 0; i < 1000; ++i) {
    model.step(0.05);
    (void)model.max_temperature();
  }
  const std::size_t after = g_allocations.load(std::memory_order_relaxed);
  EXPECT_EQ(after, before) << "PCG hot loop performed " << (after - before)
                           << " heap allocations over 1000 steps";
}

}  // namespace
}  // namespace liquid3d
