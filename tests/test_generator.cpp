// Workload synthesis (workload/generator.hpp): the traces must reproduce the
// Table II statistics they are matched to.
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "workload/generator.hpp"

namespace liquid3d {
namespace {

constexpr SimTime kTick = SimTime::from_ms(100);

/// Total offered work (thread-seconds) over a run.
double offered_work_seconds(WorkloadGenerator& gen, std::size_t ticks) {
  double acc = 0.0;
  for (std::size_t t = 0; t < ticks; ++t) {
    const SimTime now = SimTime::from_ms(static_cast<std::int64_t>(t) * 100);
    for (const Thread& th : gen.tick(now, kTick)) {
      acc += th.total_length.as_s();
    }
  }
  return acc;
}

class UtilizationSweep : public ::testing::TestWithParam<const char*> {};

TEST_P(UtilizationSweep, LongRunOfferedLoadMatchesTableII) {
  // Property: for every Table II benchmark, the synthesized offered load
  // (thread-seconds per second per core) converges to the published average
  // utilization.
  const BenchmarkSpec bench = *find_benchmark(GetParam());
  const std::size_t cores = 8;
  const std::size_t ticks = 6000;  // 10 simulated minutes
  WorkloadGenerator gen(bench, cores, 12345);
  const double work = offered_work_seconds(gen, ticks);
  const double capacity = static_cast<double>(cores) * 600.0;
  EXPECT_NEAR(work / capacity, bench.avg_utilization,
              0.12 * bench.avg_utilization + 0.01)
      << bench.name;
}

INSTANTIATE_TEST_SUITE_P(AllBenchmarks, UtilizationSweep,
                         ::testing::Values("Web-med", "Web-high", "Database", "Web&DB",
                                           "gcc", "gzip", "MPlayer", "MPlayer&Web"));

TEST(Generator, ThreadLengthsWithinPaperRange) {
  // "a few to several hundred milliseconds".
  WorkloadGenerator gen(*find_benchmark("Web-high"), 8, 7);
  GeneratorConfig cfg;
  std::size_t seen = 0;
  for (std::size_t t = 0; t < 2000; ++t) {
    for (const Thread& th : gen.tick(SimTime::from_ms(100 * static_cast<int>(t)), kTick)) {
      ++seen;
      EXPECT_GE(th.total_length.as_s() * 1000.0, cfg.min_thread_ms - 1e-9);
      EXPECT_LE(th.total_length.as_s() * 1000.0, cfg.max_thread_ms + 1e-9);
      EXPECT_EQ(th.remaining.as_ms(), th.total_length.as_ms());
    }
  }
  EXPECT_GT(seen, 1000u);
}

TEST(Generator, DeterministicGivenSeed) {
  WorkloadGenerator a(*find_benchmark("Web-med"), 8, 99);
  WorkloadGenerator b(*find_benchmark("Web-med"), 8, 99);
  for (std::size_t t = 0; t < 200; ++t) {
    const SimTime now = SimTime::from_ms(100 * static_cast<int>(t));
    const auto ta = a.tick(now, kTick);
    const auto tb = b.tick(now, kTick);
    ASSERT_EQ(ta.size(), tb.size());
    for (std::size_t i = 0; i < ta.size(); ++i) {
      EXPECT_EQ(ta[i].total_length.as_ms(), tb[i].total_length.as_ms());
    }
  }
}

TEST(Generator, SeedsProduceDifferentTraces) {
  WorkloadGenerator a(*find_benchmark("Web-med"), 8, 1);
  WorkloadGenerator b(*find_benchmark("Web-med"), 8, 2);
  std::size_t na = 0;
  std::size_t nb = 0;
  for (std::size_t t = 0; t < 500; ++t) {
    const SimTime now = SimTime::from_ms(100 * static_cast<int>(t));
    na += a.tick(now, kTick).size();
    nb += b.tick(now, kTick).size();
  }
  EXPECT_NE(na, nb);
}

TEST(Generator, PhaseScheduleScalesLoad) {
  // Halving the utilization at t = 60 s must show up in the offered work.
  const BenchmarkSpec bench = *find_benchmark("Web-med");
  WorkloadGenerator gen(bench, 8, 55);
  gen.set_phase_schedule({{SimTime::from_s(60), 0.3}});
  double first_half = 0.0;
  double second_half = 0.0;
  for (std::size_t t = 0; t < 1200; ++t) {
    const SimTime now = SimTime::from_ms(100 * static_cast<int>(t));
    for (const Thread& th : gen.tick(now, kTick)) {
      (t < 600 ? first_half : second_half) += th.total_length.as_s();
    }
  }
  EXPECT_LT(second_half, 0.6 * first_half);
}

TEST(Generator, UnsortedPhaseScheduleRejected) {
  WorkloadGenerator gen(*find_benchmark("gzip"), 8, 1);
  EXPECT_THROW(
      gen.set_phase_schedule({{SimTime::from_s(60), 0.5}, {SimTime::from_s(30), 1.0}}),
      ConfigError);
}

TEST(Generator, OfferedLoadNeverExceedsCapacityCap) {
  // Even the burstiest trace cannot offer more than max_load_factor x
  // capacity in the long run (clamped arrival rate).
  BenchmarkSpec bench = *find_benchmark("Web-high");
  bench.burstiness = 1.5;  // exaggerate
  WorkloadGenerator gen(bench, 4, 77);
  const double work = offered_work_seconds(gen, 3000);
  const double capacity = 4.0 * 300.0;
  EXPECT_LT(work, capacity * 1.02);
}

TEST(Generator, ThreadIdsAreUniqueAndMonotone) {
  WorkloadGenerator gen(*find_benchmark("Web-high"), 8, 3);
  std::uint64_t last = 0;
  bool first = true;
  for (std::size_t t = 0; t < 100; ++t) {
    for (const Thread& th :
         gen.tick(SimTime::from_ms(100 * static_cast<int>(t)), kTick)) {
      if (!first) {
        EXPECT_GT(th.id, last);
      }
      last = th.id;
      first = false;
    }
  }
}

}  // namespace
}  // namespace liquid3d
