// Console table and CSV writers (common/table.hpp, common/csv.hpp).
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/csv.hpp"
#include "common/error.hpp"
#include "common/table.hpp"

namespace liquid3d {
namespace {

TEST(TablePrinter, AlignsColumnsAndSeparatesHeader) {
  TablePrinter t({"name", "value"});
  t.add_row({"alpha", "1"});
  t.add_row({"b", "12345"});
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("-----"), std::string::npos);
  EXPECT_NE(out.find("12345"), std::string::npos);
  // Header line and separator come first.
  EXPECT_LT(out.find("name"), out.find("---"));
  EXPECT_LT(out.find("---"), out.find("alpha"));
}

TEST(TablePrinter, RowArityEnforced) {
  TablePrinter t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), ConfigError);
}

TEST(TablePrinter, NumberFormatting) {
  EXPECT_EQ(TablePrinter::num(3.14159, 2), "3.14");
  EXPECT_EQ(TablePrinter::num(2.0, 0), "2");
  EXPECT_EQ(TablePrinter::pct(12.345, 1), "12.3%");
}

TEST(CsvWriter, WritesHeaderAndRows) {
  const std::string path = ::testing::TempDir() + "/liquid3d_test.csv";
  {
    CsvWriter csv(path, {"x", "y"});
    csv.add_row(std::vector<std::string>{"1", "2"});
    csv.add_row(std::vector<double>{3.5, 4.5});
    ASSERT_TRUE(csv.ok());
  }
  std::ifstream in(path);
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "x,y");
  std::getline(in, line);
  EXPECT_EQ(line, "1,2");
  std::getline(in, line);
  EXPECT_EQ(line, "3.5,4.5");
  std::remove(path.c_str());
}

TEST(CsvWriter, EscapesSpecialCharacters) {
  const std::string path = ::testing::TempDir() + "/liquid3d_escape.csv";
  {
    CsvWriter csv(path, {"a"});
    csv.add_row(std::vector<std::string>{"hello, \"world\""});
  }
  std::ifstream in(path);
  std::string line;
  std::getline(in, line);  // header
  std::getline(in, line);
  EXPECT_EQ(line, "\"hello, \"\"world\"\"\"");
  std::remove(path.c_str());
}

TEST(CsvWriter, ArityEnforced) {
  const std::string path = ::testing::TempDir() + "/liquid3d_arity.csv";
  CsvWriter csv(path, {"a", "b"});
  EXPECT_THROW(csv.add_row(std::vector<std::string>{"1"}), ConfigError);
  std::remove(path.c_str());
}

TEST(CsvReader, RoundTripsEscapedFields) {
  // Fields with commas, quotes, and embedded newlines survive
  // write -> read: the reader is the exact inverse of csv_escape.
  const std::vector<std::string> row = {"plain", "comma, field",
                                        "quote \"inside\"", "line\nbreak",
                                        "trailing cr\r", ""};
  std::istringstream in(to_csv_line(row) + to_csv_line({"second", "row"}));
  std::vector<std::string> fields;
  bool terminated = false;
  ASSERT_TRUE(read_csv_record(in, fields, &terminated));
  EXPECT_TRUE(terminated);
  EXPECT_EQ(fields, row);
  ASSERT_TRUE(read_csv_record(in, fields, &terminated));
  EXPECT_EQ(fields, (std::vector<std::string>{"second", "row"}));
  EXPECT_FALSE(read_csv_record(in, fields));
}

TEST(CsvReader, ReportsTornTailRecords) {
  // No trailing newline: the record is returned but flagged unterminated.
  std::istringstream truncated("a,b,c");
  std::vector<std::string> fields;
  bool terminated = true;
  ASSERT_TRUE(read_csv_record(truncated, fields, &terminated));
  EXPECT_FALSE(terminated);
  EXPECT_EQ(fields, (std::vector<std::string>{"a", "b", "c"}));

  // EOF inside a quoted field: also a torn record.
  std::istringstream open_quote("x,\"unclosed field\nwith newline");
  ASSERT_TRUE(read_csv_record(open_quote, fields, &terminated));
  EXPECT_FALSE(terminated);
  ASSERT_EQ(fields.size(), 2u);
}

TEST(CsvReader, HandlesCrLfLineEndings) {
  std::istringstream in("a,b\r\nc,d\r\n");
  std::vector<std::string> fields;
  bool terminated = false;
  ASSERT_TRUE(read_csv_record(in, fields, &terminated));
  EXPECT_TRUE(terminated);
  EXPECT_EQ(fields, (std::vector<std::string>{"a", "b"}));
  ASSERT_TRUE(read_csv_record(in, fields, &terminated));
  EXPECT_EQ(fields, (std::vector<std::string>{"c", "d"}));
}

}  // namespace
}  // namespace liquid3d
