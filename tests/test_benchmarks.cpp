// Table II benchmark descriptors (workload/benchmarks.hpp).
#include <gtest/gtest.h>

#include "workload/benchmarks.hpp"

namespace liquid3d {
namespace {

TEST(Benchmarks, TableIIValuesExact) {
  const auto& t = table2_benchmarks();
  ASSERT_EQ(t.size(), 8u);
  // Spot-check every row against the printed table.
  EXPECT_EQ(t[0].name, "Web-med");
  EXPECT_NEAR(t[0].avg_utilization, 0.5312, 1e-9);
  EXPECT_NEAR(t[0].l2_i_miss, 12.9, 1e-9);
  EXPECT_NEAR(t[0].l2_d_miss, 167.7, 1e-9);
  EXPECT_NEAR(t[0].fp_per_100k, 31.2, 1e-9);

  EXPECT_EQ(t[1].name, "Web-high");
  EXPECT_NEAR(t[1].avg_utilization, 0.9287, 1e-9);
  EXPECT_NEAR(t[1].l2_i_miss, 67.6, 1e-9);
  EXPECT_NEAR(t[1].l2_d_miss, 288.7, 1e-9);

  EXPECT_EQ(t[2].name, "Database");
  EXPECT_NEAR(t[2].avg_utilization, 0.1775, 1e-9);
  EXPECT_NEAR(t[2].fp_per_100k, 5.9, 1e-9);

  EXPECT_EQ(t[3].name, "Web&DB");
  EXPECT_NEAR(t[3].avg_utilization, 0.7512, 1e-9);

  EXPECT_EQ(t[4].name, "gcc");
  EXPECT_NEAR(t[4].avg_utilization, 0.1525, 1e-9);
  EXPECT_NEAR(t[4].l2_i_miss, 31.7, 1e-9);

  EXPECT_EQ(t[5].name, "gzip");
  EXPECT_NEAR(t[5].avg_utilization, 0.09, 1e-9);
  EXPECT_NEAR(t[5].fp_per_100k, 0.2, 1e-9);

  EXPECT_EQ(t[6].name, "MPlayer");
  EXPECT_NEAR(t[6].avg_utilization, 0.065, 1e-9);
  EXPECT_NEAR(t[6].l2_d_miss, 136.0, 1e-9);

  EXPECT_EQ(t[7].name, "MPlayer&Web");
  EXPECT_NEAR(t[7].avg_utilization, 0.2662, 1e-9);
  EXPECT_NEAR(t[7].fp_per_100k, 29.9, 1e-9);
}

TEST(Benchmarks, IdsAreTableRowNumbers) {
  const auto& t = table2_benchmarks();
  for (std::size_t i = 0; i < t.size(); ++i) {
    EXPECT_EQ(t[i].id, static_cast<int>(i) + 1);
  }
}

TEST(Benchmarks, FindByName) {
  EXPECT_TRUE(find_benchmark("gzip").has_value());
  EXPECT_EQ(find_benchmark("gzip")->id, 6);
  EXPECT_FALSE(find_benchmark("nonexistent").has_value());
}

TEST(Benchmarks, ActivityFactorOrderingFollowsFpIntensity) {
  // Web workloads (31.2 FP/100K) must have the highest activity factor,
  // gzip (0.2) the lowest.
  const auto web = *find_benchmark("Web-high");
  const auto gz = *find_benchmark("gzip");
  const auto gcc = *find_benchmark("gcc");
  EXPECT_GT(web.activity_factor(), gcc.activity_factor());
  EXPECT_GT(gcc.activity_factor(), gz.activity_factor());
  EXPECT_NEAR(web.activity_factor(), 1.08, 1e-9);
  EXPECT_GE(gz.activity_factor(), 0.92);
}

TEST(Benchmarks, MemoryIntensityNormalizedToWebHigh) {
  const auto web = *find_benchmark("Web-high");
  EXPECT_NEAR(web.memory_intensity(), 1.0, 1e-9);
  for (const BenchmarkSpec& b : table2_benchmarks()) {
    EXPECT_GE(b.memory_intensity(), 0.0);
    EXPECT_LE(b.memory_intensity(), 1.0);
  }
  EXPECT_LT(find_benchmark("gzip")->memory_intensity(), 0.2);
}

TEST(Benchmarks, BurstinessReflectsWorkloadClass) {
  // Interactive/database traffic is bursty; saturated web serving and
  // media decoding are steady.
  EXPECT_GT(find_benchmark("Database")->burstiness,
            find_benchmark("Web-high")->burstiness);
  EXPECT_GT(find_benchmark("Web-med")->burstiness,
            find_benchmark("MPlayer")->burstiness);
}

}  // namespace
}  // namespace liquid3d
