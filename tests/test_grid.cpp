// Grid rasterization (geom/grid.hpp): power conservation and readback.
#include <gtest/gtest.h>

#include <numeric>

#include "geom/grid.hpp"
#include "geom/niagara.hpp"

namespace liquid3d {
namespace {

TEST(Grid, CellGeometry) {
  const Grid g(10, 23, 11.5e-3, 10e-3);
  EXPECT_EQ(g.cell_count(), 230u);
  EXPECT_DOUBLE_EQ(g.cell_width(), 0.5e-3);
  EXPECT_DOUBLE_EQ(g.cell_height(), 1e-3);
  EXPECT_DOUBLE_EQ(g.cell_area(), 0.5e-6);
  const std::size_t cell = g.index(3, 7);
  EXPECT_EQ(g.row_of(cell), 3u);
  EXPECT_EQ(g.col_of(cell), 7u);
  const Rect r = g.cell_rect(cell);
  EXPECT_DOUBLE_EQ(r.x, 3.5e-3);
  EXPECT_DOUBLE_EQ(r.y, 3e-3);
}

class RasterSweep : public ::testing::TestWithParam<std::pair<std::size_t, std::size_t>> {
};

TEST_P(RasterSweep, PowerIsConservedAtAnyResolution) {
  // Property: distributing block power onto cells conserves total power for
  // any grid resolution, including ones that do not align with block edges.
  const auto [rows, cols] = GetParam();
  const Floorplan fp = make_niagara_core_die();
  const Grid g(rows, cols, fp.width(), fp.height());
  const BlockCellMap map(g, fp);

  std::vector<double> block_power(fp.block_count());
  for (std::size_t b = 0; b < block_power.size(); ++b) {
    block_power[b] = 0.5 + static_cast<double>(b);
  }
  std::vector<double> cell_power(g.cell_count());
  map.distribute_power(block_power, cell_power);

  const double total_blocks =
      std::accumulate(block_power.begin(), block_power.end(), 0.0);
  const double total_cells = std::accumulate(cell_power.begin(), cell_power.end(), 0.0);
  EXPECT_NEAR(total_cells, total_blocks, 1e-9 * total_blocks);
}

INSTANTIATE_TEST_SUITE_P(
    Resolutions, RasterSweep,
    ::testing::Values(std::pair<std::size_t, std::size_t>{5, 6},
                      std::pair<std::size_t, std::size_t>{10, 10},
                      std::pair<std::size_t, std::size_t>{23, 26},
                      std::pair<std::size_t, std::size_t>{46, 52},
                      std::pair<std::size_t, std::size_t>{7, 13},
                      std::pair<std::size_t, std::size_t>{100, 115}));

TEST(BlockCellMap, EveryCellHasAnOwnerOnTilingFloorplan) {
  const Floorplan fp = make_niagara_cache_die();
  const Grid g(23, 26, fp.width(), fp.height());
  const BlockCellMap map(g, fp);
  for (std::size_t cell = 0; cell < g.cell_count(); ++cell) {
    EXPECT_NE(map.owner(cell), BlockCellMap::npos) << "cell " << cell;
  }
}

TEST(BlockCellMap, CellSharesSumToOnePerBlock) {
  const Floorplan fp = make_niagara_core_die();
  const Grid g(23, 26, fp.width(), fp.height());
  const BlockCellMap map(g, fp);
  for (std::size_t b = 0; b < fp.block_count(); ++b) {
    double sum = 0.0;
    for (const BlockCellMap::CellShare& s : map.cells_of(b)) sum += s.weight;
    EXPECT_NEAR(sum, 1.0, 1e-9) << fp.block(b).name;
  }
}

TEST(BlockCellMap, BlockMaxAndMeanReadback) {
  Floorplan fp("t", 4e-3, 2e-3);
  fp.add_block({"left", BlockType::kCore, Rect{0, 0, 2e-3, 2e-3}, 0});
  fp.add_block({"right", BlockType::kCore, Rect{2e-3, 0, 2e-3, 2e-3}, 1});
  const Grid g(2, 4, fp.width(), fp.height());
  const BlockCellMap map(g, fp);
  // Values: columns 0..3, rows 0..1 -> value = col + 10*row.
  std::vector<double> values(g.cell_count());
  for (std::size_t c = 0; c < g.cell_count(); ++c) {
    values[c] = static_cast<double>(g.col_of(c)) + 10.0 * static_cast<double>(g.row_of(c));
  }
  // Left block covers cols 0-1; right covers cols 2-3.
  EXPECT_DOUBLE_EQ(map.block_max(values, 0), 11.0);
  EXPECT_DOUBLE_EQ(map.block_max(values, 1), 13.0);
  EXPECT_DOUBLE_EQ(map.block_mean(values, 0), (0 + 1 + 10 + 11) / 4.0);
  EXPECT_DOUBLE_EQ(map.block_mean(values, 1), (2 + 3 + 12 + 13) / 4.0);
}

TEST(BlockCellMap, MajorityOwnerOnMisalignedGrid) {
  Floorplan fp("t", 3e-3, 1e-3);
  fp.add_block({"a", BlockType::kCore, Rect{0, 0, 1.8e-3, 1e-3}, 0});
  fp.add_block({"b", BlockType::kCore, Rect{1.8e-3, 0, 1.2e-3, 1e-3}, 1});
  const Grid g(1, 2, fp.width(), fp.height());  // cells split at 1.5 mm
  const BlockCellMap map(g, fp);
  EXPECT_EQ(map.owner(0), 0u);  // cell [0,1.5): all block a
  EXPECT_EQ(map.owner(1), 1u);  // cell [1.5,3): 0.3 of a, 1.2 of b -> b
}

}  // namespace
}  // namespace liquid3d
