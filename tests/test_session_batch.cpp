// Steppable session + batch runner (sim/session.hpp, sim/batch_runner.hpp)
// and the lockstep thermal stepper (thermal/batch_stepper.hpp).  The core
// guarantee under test: batching never changes results — a BatchRunner of
// many sessions sharing one factorization is bit-identical to serial
// Simulator::run() calls.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "common/error.hpp"
#include "sim/batch_runner.hpp"
#include "sim/simulator.hpp"
#include "thermal/batch_stepper.hpp"
#include "thermal/model3d.hpp"

namespace liquid3d {
namespace {

ThermalModelParams small_params(std::size_t rows = 8, std::size_t cols = 9) {
  ThermalModelParams p;
  p.grid_rows = rows;
  p.grid_cols = cols;
  return p;
}

std::unique_ptr<ThermalModel3D> make_loaded_model(double core_watts,
                                                  double flow_ml,
                                                  CoolingType cooling) {
  auto m = std::make_unique<ThermalModel3D>(make_niagara_stack(1, cooling),
                                            small_params());
  if (cooling == CoolingType::kLiquid) {
    m->set_cavity_flow(VolumetricFlow::from_ml_per_min(flow_ml));
  }
  const Floorplan& fp = m->stack().layer(0).floorplan;
  std::vector<double> watts(fp.block_count(), 0.0);
  for (std::size_t b = 0; b < fp.block_count(); ++b) {
    if (fp.block(b).type == BlockType::kCore) watts[b] = core_watts;
  }
  m->set_block_power(0, watts);
  m->initialize(45.0);
  return m;
}

TEST(BatchStepper, LockstepIsBitIdenticalToSerialSteps) {
  // Eight models with different power maps and flows (different fluid
  // fixed-point trajectories — some converge in fewer iterations than
  // others, exercising the active-set masking).
  constexpr std::size_t kModels = 8;
  std::vector<std::unique_ptr<ThermalModel3D>> batched;
  std::vector<std::unique_ptr<ThermalModel3D>> serial;
  std::vector<ThermalModel3D*> ptrs;
  for (std::size_t i = 0; i < kModels; ++i) {
    const double watts = 1.0 + 0.4 * static_cast<double>(i);
    const double flow = 8.0 + 5.0 * static_cast<double>(i);
    batched.push_back(make_loaded_model(watts, flow, CoolingType::kLiquid));
    serial.push_back(make_loaded_model(watts, flow, CoolingType::kLiquid));
    ptrs.push_back(batched.back().get());
  }

  BatchThermalStepper stepper;
  for (int tick = 0; tick < 25; ++tick) {
    stepper.step(ptrs, 0.05);
    for (auto& m : serial) m->step(0.05);
  }
  EXPECT_GT(stepper.shared_solves(), 25u);  // fluid fixed point iterates
  EXPECT_GT(stepper.solved_columns(), stepper.shared_solves());

  for (std::size_t i = 0; i < kModels; ++i) {
    for (std::size_t l = 0; l < batched[i]->layer_count(); ++l) {
      for (std::size_t c = 0; c < batched[i]->grid().cell_count(); ++c) {
        ASSERT_EQ(batched[i]->cell_temperature(l, c),
                  serial[i]->cell_temperature(l, c))
            << "model " << i << " layer " << l << " cell " << c;
      }
    }
    EXPECT_EQ(batched[i]->fluid_outlet_temperature(1),
              serial[i]->fluid_outlet_temperature(1));
  }
}

TEST(BatchStepper, AirPackageMatchesSerial) {
  std::vector<std::unique_ptr<ThermalModel3D>> batched;
  std::vector<std::unique_ptr<ThermalModel3D>> serial;
  std::vector<ThermalModel3D*> ptrs;
  for (double watts : {1.5, 2.5, 3.5}) {
    batched.push_back(make_loaded_model(watts, 0.0, CoolingType::kAir));
    serial.push_back(make_loaded_model(watts, 0.0, CoolingType::kAir));
    ptrs.push_back(batched.back().get());
  }
  BatchThermalStepper stepper;
  for (int tick = 0; tick < 40; ++tick) {
    stepper.step(ptrs, 0.05);
    for (auto& m : serial) m->step(0.05);
  }
  for (std::size_t i = 0; i < batched.size(); ++i) {
    EXPECT_EQ(batched[i]->max_temperature(), serial[i]->max_temperature());
    EXPECT_EQ(batched[i]->sink_temperature(), serial[i]->sink_temperature());
  }
}

TEST(BatchStepper, RejectsMismatchedTopologies) {
  auto liquid = make_loaded_model(2.0, 20.0, CoolingType::kLiquid);
  auto air = make_loaded_model(2.0, 0.0, CoolingType::kAir);
  EXPECT_NE(liquid->topology_fingerprint(), air->topology_fingerprint());
  std::vector<ThermalModel3D*> mixed = {liquid.get(), air.get()};
  BatchThermalStepper stepper;
  EXPECT_THROW(stepper.step(mixed, 0.05), ConfigError);
}

TEST(BatchStepper, SingleModelDegeneratesToSerialStep) {
  auto batched = make_loaded_model(2.2, 18.0, CoolingType::kLiquid);
  auto serial = make_loaded_model(2.2, 18.0, CoolingType::kLiquid);
  BatchThermalStepper stepper;
  std::vector<ThermalModel3D*> one = {batched.get()};
  for (int tick = 0; tick < 10; ++tick) {
    stepper.step(one, 0.1);
    serial->step(0.1);
  }
  EXPECT_EQ(batched->max_temperature(), serial->max_temperature());
}

// -- Session / batch-runner parity -------------------------------------------

/// A fast liquid cell; the characterization is shared process-wide through
/// CharacterizationCache::global(), so only the first build pays.
SimulationConfig session_config(std::uint64_t seed, const char* workload,
                                CoolingMode cooling = CoolingMode::kLiquidMax) {
  SimulationConfig cfg;
  cfg.benchmark = *find_benchmark(workload);
  cfg.cooling = cooling;
  cfg.policy = Policy::kLoadBalancing;
  cfg.duration = SimTime::from_s(3);
  cfg.seed = seed;
  cfg.thermal.grid_rows = 8;
  cfg.thermal.grid_cols = 9;
  return cfg;
}

void expect_bit_identical(const SimulationResult& a, const SimulationResult& b) {
  EXPECT_EQ(a.label, b.label);
  EXPECT_EQ(a.benchmark, b.benchmark);
  EXPECT_EQ(a.hotspot_percent, b.hotspot_percent);
  EXPECT_EQ(a.hotspot_max_sample, b.hotspot_max_sample);
  EXPECT_EQ(a.above_target_percent, b.above_target_percent);
  EXPECT_EQ(a.spatial_gradient_percent, b.spatial_gradient_percent);
  EXPECT_EQ(a.thermal_cycles_per_1000, b.thermal_cycles_per_1000);
  EXPECT_EQ(a.avg_tmax, b.avg_tmax);
  EXPECT_EQ(a.chip_energy_j, b.chip_energy_j);
  EXPECT_EQ(a.pump_energy_j, b.pump_energy_j);
  EXPECT_EQ(a.total_energy_j, b.total_energy_j);
  EXPECT_EQ(a.throughput_per_s, b.throughput_per_s);
  EXPECT_EQ(a.avg_utilization, b.avg_utilization);
  EXPECT_EQ(a.migrations, b.migrations);
  EXPECT_EQ(a.pump_transitions, b.pump_transitions);
  EXPECT_EQ(a.valve_transitions, b.valve_transitions);
  EXPECT_EQ(a.avg_flow_skew, b.avg_flow_skew);
  EXPECT_EQ(a.predictor_rebuilds, b.predictor_rebuilds);
  EXPECT_EQ(a.forecast_rmse, b.forecast_rmse);
  EXPECT_EQ(a.avg_pump_setting, b.avg_pump_setting);
  EXPECT_EQ(a.elapsed_s, b.elapsed_s);
}

TEST(SimulationSession, HandSteppedLoopMatchesSimulatorRun) {
  const SimulationResult via_run = Simulator(session_config(3, "Web-med")).run();

  SimulationSession s(session_config(3, "Web-med"));
  EXPECT_FALSE(s.initialized());
  s.init();
  EXPECT_TRUE(s.initialized());
  EXPECT_EQ(s.tick_count(), 30u);  // 3 s / 100 ms
  std::size_t steps = 0;
  while (!s.done()) {
    // Decomposed form of step(): pre-thermal, substeps, post-thermal.
    s.begin_tick();
    for (std::size_t k = 0; k < s.substep_count(); ++k) {
      s.thermal().step(s.substep_dt());
    }
    s.finish_tick();
    ++steps;
    // Mid-run state is inspectable.
    EXPECT_GT(s.chip_watts(), 0.0);
    EXPECT_EQ(s.busy_fraction().size(), s.core_count());
    EXPECT_GT(s.thermal().max_temperature(), 40.0);
  }
  EXPECT_EQ(steps, 30u);
  EXPECT_FALSE(s.step());  // stepping past the end is a no-op
  expect_bit_identical(s.result(), via_run);
}

TEST(SimulationSession, StepRequiresInit) {
  SimulationSession s(session_config(4, "gzip"));
  EXPECT_THROW(s.begin_tick(), ConfigError);
  EXPECT_THROW((void)s.result(), ConfigError);
}

TEST(SimulationSession, MidRunResultIsPartialAggregate) {
  SimulationSession s(session_config(5, "Web-med"));
  s.init();
  for (int i = 0; i < 10; ++i) s.step();
  const SimulationResult mid = s.result();
  EXPECT_DOUBLE_EQ(mid.elapsed_s, 1.0);  // 10 ticks x 100 ms
  EXPECT_GT(mid.chip_energy_j, 0.0);
  while (s.step()) {
  }
  const SimulationResult full = s.result();
  EXPECT_DOUBLE_EQ(full.elapsed_s, 3.0);
  EXPECT_GT(full.chip_energy_j, mid.chip_energy_j);
}

TEST(SimulationSession, ReinitReportsOnlyTheCurrentRun) {
  SimulationSession s(session_config(6, "Web-med"));
  s.init();
  while (s.step()) {
  }
  const SimulationResult first = s.result();
  // Restart: aggregates reset, cumulative counters re-baselined — the
  // second result must cover only the second run (not report doubled
  // throughput/migration counts from the object's lifetime).
  s.init();
  while (s.step()) {
  }
  const SimulationResult second = s.result();
  EXPECT_DOUBLE_EQ(second.elapsed_s, first.elapsed_s);
  EXPECT_GT(second.throughput_per_s, 0.0);
  EXPECT_LT(second.throughput_per_s, 1.5 * first.throughput_per_s);
  EXPECT_GT(second.chip_energy_j, 0.0);
  EXPECT_LT(second.chip_energy_j, 1.5 * first.chip_energy_j);
}

TEST(BatchRunner, EightSessionsBitIdenticalToSerialRuns) {
  // Eight cells differing in workload, seed, and policy/cooling knobs that
  // keep one shared topology (all liquid, same grid/stack/dt).
  const char* workloads[] = {"Web-med", "Web-high", "gzip",    "Database",
                             "Web&DB",  "gcc",      "MPlayer", "MPlayer&Web"};
  std::vector<SimulationResult> serial;
  BatchRunner batch;
  for (std::size_t i = 0; i < 8; ++i) {
    SimulationConfig cfg = session_config(100 + i, workloads[i]);
    serial.push_back(Simulator(cfg).run());
    batch.add(cfg);
  }
  const std::vector<SimulationResult> batched = batch.run();
  ASSERT_EQ(batched.size(), 8u);
  EXPECT_EQ(batch.group_count(), 1u);  // one shared factorization group
  EXPECT_GT(batch.stepper().solved_columns(), batch.stepper().shared_solves());
  for (std::size_t i = 0; i < 8; ++i) {
    SCOPED_TRACE(workloads[i]);
    expect_bit_identical(batched[i], serial[i]);
  }
}

TEST(BatchRunner, MixedDurationsDropFinishedSessionsFromLockstep) {
  BatchRunner batch;
  SimulationConfig short_cfg = session_config(7, "gzip");
  short_cfg.duration = SimTime::from_s(1);
  SimulationConfig long_cfg = session_config(8, "Web-med");
  long_cfg.duration = SimTime::from_s(2);
  batch.add(short_cfg);
  batch.add(long_cfg);

  const SimulationResult short_serial = Simulator(short_cfg).run();
  const SimulationResult long_serial = Simulator(long_cfg).run();
  const auto results = batch.run();
  ASSERT_EQ(results.size(), 2u);
  expect_bit_identical(results[0], short_serial);
  expect_bit_identical(results[1], long_serial);
}

TEST(BatchRunner, IncompatibleTopologiesFormSeparateGroups) {
  BatchRunner batch;
  batch.add(session_config(9, "gzip"));                         // liquid
  SimulationConfig air = session_config(10, "gzip", CoolingMode::kAir);
  air.policy = Policy::kLoadBalancing;
  batch.add(air);                                               // air package
  SimulationConfig coarse = session_config(11, "gzip");
  coarse.thermal.grid_rows = 6;
  coarse.thermal.grid_cols = 7;
  batch.add(coarse);                                            // other grid
  const auto results = batch.run();
  ASSERT_EQ(results.size(), 3u);
  EXPECT_EQ(batch.group_count(), 3u);
  for (const SimulationResult& r : results) EXPECT_GT(r.avg_tmax, 40.0);
}

}  // namespace
}  // namespace liquid3d
