// Flow delivery models (coolant/flow.hpp): the paper-nominal accounting of
// Fig. 3 and the pressure-limited model used by the thermal simulation.
#include <gtest/gtest.h>

#include "coolant/flow.hpp"
#include "geom/stack.hpp"

namespace liquid3d {
namespace {

FlowDelivery make_delivery(FlowDeliveryMode mode, std::size_t cavities) {
  const MicrochannelModel channels(CavitySpec{}, CoolantProperties::water());
  return FlowDelivery(PumpModel::laing_ddc(), mode, channels, 11.5e-3, cavities);
}

TEST(FlowDelivery, PaperNominalMatchesFig3TwoLayer) {
  const FlowDelivery d = make_delivery(FlowDeliveryMode::kPaperNominal, 3);
  // Fig. 3 per-cavity series for the 2-layer system after the 50 % factor:
  // 208.3, 416.7, 625, 833.3, 1041.7 ml/min.
  const double expected[] = {208.33, 416.67, 625.0, 833.33, 1041.67};
  for (std::size_t s = 0; s < 5; ++s) {
    EXPECT_NEAR(d.per_cavity(s).ml_per_min(), expected[s], 0.01) << "setting " << s;
  }
}

TEST(FlowDelivery, PaperNominalMatchesFig3FourLayer) {
  const FlowDelivery d = make_delivery(FlowDeliveryMode::kPaperNominal, 5);
  const double expected[] = {125.0, 250.0, 375.0, 500.0, 625.0};
  for (std::size_t s = 0; s < 5; ++s) {
    EXPECT_NEAR(d.per_cavity(s).ml_per_min(), expected[s], 0.01) << "setting " << s;
  }
}

TEST(FlowDelivery, PressureLimitedIsMonotoneAndPhysical) {
  const FlowDelivery d = make_delivery(FlowDeliveryMode::kPressureLimited, 3);
  for (std::size_t s = 1; s < d.setting_count(); ++s) {
    EXPECT_GT(d.per_cavity(s), d.per_cavity(s - 1));
  }
  // The 50 µm channels pass a few ml/min per cavity at these heads, not the
  // hundreds the nominal accounting suggests (see flow.hpp).
  EXPECT_GT(d.per_cavity(0).ml_per_min(), 1.0);
  EXPECT_LT(d.per_cavity(4).ml_per_min(), 50.0);
  // Flow is proportional to head in the laminar regime: ratio = 600/150.
  EXPECT_NEAR(d.per_cavity(4).ml_per_min() / d.per_cavity(0).ml_per_min(), 4.0, 1e-6);
}

TEST(FlowDelivery, PressureLimitedIndependentOfCavityCount) {
  // Cavities are hydraulically parallel: each cavity passes what its own
  // channels allow at the pump head, so per-cavity flow does not change
  // with the number of cavities (unlike the nominal equal-split model).
  const FlowDelivery d3 = make_delivery(FlowDeliveryMode::kPressureLimited, 3);
  const FlowDelivery d5 = make_delivery(FlowDeliveryMode::kPressureLimited, 5);
  for (std::size_t s = 0; s < 5; ++s) {
    EXPECT_NEAR(d3.per_cavity(s).ml_per_min(), d5.per_cavity(s).ml_per_min(), 1e-9);
  }
}

TEST(FlowDelivery, PerChannelDividesByChannelCount) {
  const FlowDelivery d = make_delivery(FlowDeliveryMode::kPressureLimited, 3);
  for (std::size_t s = 0; s < 5; ++s) {
    EXPECT_NEAR(d.per_channel(s).ml_per_min() * 65.0, d.per_cavity(s).ml_per_min(),
                1e-9);
  }
}

TEST(FlowDelivery, HeadInterpolatesAcrossSettings) {
  EXPECT_DOUBLE_EQ(FlowDelivery::head_pa(0, 5), FlowDelivery::kMinHeadPa);
  EXPECT_DOUBLE_EQ(FlowDelivery::head_pa(4, 5), FlowDelivery::kMaxHeadPa);
  const double mid = FlowDelivery::head_pa(2, 5);
  EXPECT_GT(mid, FlowDelivery::kMinHeadPa);
  EXPECT_LT(mid, FlowDelivery::kMaxHeadPa);
  // Paper: "the pressure drop for these flow rates changes between
  // 300-600 mbar"; our range covers it.
  EXPECT_LE(FlowDelivery::kMaxHeadPa, 60000.0 + 1e-9);
}

TEST(FlowDelivery, ModeNamesForReports) {
  EXPECT_STREQ(to_string(FlowDeliveryMode::kPaperNominal), "paper-nominal");
  EXPECT_STREQ(to_string(FlowDeliveryMode::kPressureLimited), "pressure-limited");
}

}  // namespace
}  // namespace liquid3d
