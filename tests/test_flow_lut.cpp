// The flow-rate look-up table (control/flow_lut.hpp), characterized from an
// analytic stand-in system so every boundary is known in closed form.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "common/error.hpp"
#include "control/flow_lut.hpp"

namespace liquid3d {
namespace {

/// Analytic system: T(u, s) = base(s) + slope(s) * u, hotter at lower
/// settings — the qualitative shape of Fig. 5.  Slopes are chosen so that
/// against an 80 C target the required setting sweeps 0..4 as u rises
/// (crossings at u = 0.25, 0.6, 0.8, 0.906).
double analytic_tmax(double u, std::size_t s) {
  const double base[] = {70.0, 62.0, 56.0, 51.0, 47.0};
  const double slope[] = {40.0, 30.0, 30.0, 32.0, 17.0};
  return base[s] + slope[s] * u;
}

FlowLut make_lut(double target = 80.0) {
  return FlowLut::characterize(analytic_tmax, 5, target, 101);
}

TEST(FlowLut, RequiredSettingIsMonotoneInTemperature) {
  const FlowLut lut = make_lut();
  for (std::size_t s_cur = 0; s_cur < 5; ++s_cur) {
    std::size_t prev = 0;
    for (double t = 40.0; t <= 120.0; t += 0.5) {
      const std::size_t req = lut.required_setting(s_cur, t);
      EXPECT_GE(req, prev);
      prev = req;
    }
  }
}

TEST(FlowLut, ColdSystemNeedsMinimumSetting) {
  const FlowLut lut = make_lut();
  // At u=0 the analytic system reaches 70 C at setting 0 — under the 80 C
  // target, so setting 0 is usable and a cold reading requires setting 0.
  EXPECT_EQ(lut.required_setting(0, 50.0), 0u);
  EXPECT_EQ(lut.required_setting(4, 40.0), 0u);
}

TEST(FlowLut, BoundariesMatchAnalyticCrossings) {
  const FlowLut lut = make_lut();
  // Setting 0 holds the target while 70 + 40u <= 80, i.e. u <= 0.25.
  // Observed at setting 0, the boundary to setting 1 is T(0.25, 0) = 80.
  EXPECT_NEAR(lut.boundary(0, 1), 80.0, 0.5);
  // Observed while running at setting 4, the same u=0.25 boundary reads
  // T(0.25, 4) = 47 + 17*0.25 = 51.25.
  EXPECT_NEAR(lut.boundary(4, 1), 51.25, 0.5);
}

TEST(FlowLut, HotterObservationsRequireMoreFlowAtAnyCurrentSetting) {
  const FlowLut lut = make_lut();
  for (std::size_t s_cur = 0; s_cur < 5; ++s_cur) {
    // At the analytic extremes: cold -> setting 0, very hot -> max.
    EXPECT_EQ(lut.required_setting(s_cur, 20.0), 0u);
    EXPECT_EQ(lut.required_setting(s_cur, 300.0), 4u);
  }
}

TEST(FlowLut, UnreachableTargetForbidsLowSettings) {
  // Target 55 C: settings 0-2 (bases 70, 62, 56) can never meet it even at
  // zero load; the floor rule must make them unconditionally forbidden.
  const FlowLut lut = make_lut(55.0);
  EXPECT_GE(lut.required_setting(0, 0.0), 3u);
  EXPECT_GE(lut.required_setting(4, -100.0), 3u);
  EXPECT_EQ(lut.boundary(1, 3), -std::numeric_limits<double>::infinity());
}

TEST(FlowLut, ImpossibleTargetSaturatesAtMax) {
  const FlowLut lut = make_lut(30.0);  // nothing can cool below 30
  EXPECT_EQ(lut.required_setting(0, 10.0), 4u);
  EXPECT_EQ(lut.required_setting(4, 90.0), 4u);
}

TEST(FlowLut, ValidatesRowShape) {
  // Wrong arity.
  EXPECT_THROW(FlowLut({{1.0, 2.0}}, 80.0), ConfigError);
  // Non-monotone row.
  EXPECT_THROW(FlowLut({{70.0, 60.0, 75.0, 80.0},
                        {70.0, 71.0, 75.0, 80.0},
                        {70.0, 71.0, 75.0, 80.0},
                        {70.0, 71.0, 75.0, 80.0},
                        {70.0, 71.0, 75.0, 80.0}},
                       80.0),
               ConfigError);
}

TEST(FlowLut, SettingZeroBoundaryIsMinusInfinity) {
  const FlowLut lut = make_lut();
  EXPECT_EQ(lut.boundary(2, 0), -std::numeric_limits<double>::infinity());
}

class TargetSweep : public ::testing::TestWithParam<double> {};

TEST_P(TargetSweep, LooserTargetsNeverRequireMoreFlow) {
  // Property: for any observation, raising the target temperature can only
  // lower (or keep) the required setting.
  const FlowLut tight = make_lut(GetParam());
  const FlowLut loose = make_lut(GetParam() + 10.0);
  for (double t = 40.0; t <= 110.0; t += 1.0) {
    for (std::size_t s = 0; s < 5; ++s) {
      EXPECT_LE(loose.required_setting(s, t), tight.required_setting(s, t))
          << "target " << GetParam() << " T " << t << " s " << s;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Targets, TargetSweep, ::testing::Values(60.0, 70.0, 80.0, 90.0));

}  // namespace
}  // namespace liquid3d
