// Steady-state characterization harness (control/characterize.hpp) on a
// small grid: the physical monotonicities every LUT build depends on.
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "control/characterize.hpp"
#include "control/flow_lut.hpp"

namespace liquid3d {
namespace {

ThermalModelParams small_grid() {
  ThermalModelParams p;
  p.grid_rows = 10;
  p.grid_cols = 11;
  return p;
}

CharacterizationHarness make_liquid_harness() {
  return CharacterizationHarness(make_2layer_system(), small_grid(), PowerModelParams{},
                                 PumpModel::laing_ddc(),
                                 FlowDeliveryMode::kPressureLimited);
}

TEST(Characterize, TmaxMonotoneInUtilization) {
  CharacterizationHarness h = make_liquid_harness();
  double prev = 0.0;
  for (double u : {0.0, 0.25, 0.5, 0.75, 1.0}) {
    const double t = h.steady_tmax(u, 3);
    EXPECT_GT(t, prev) << "u=" << u;
    prev = t;
  }
}

TEST(Characterize, TmaxMonotoneDecreasingInSetting) {
  CharacterizationHarness h = make_liquid_harness();
  double prev = 1e9;
  for (std::size_t s = 0; s < h.setting_count(); ++s) {
    const double t = h.steady_tmax(0.6, s);
    EXPECT_LT(t, prev) << "setting " << s;
    prev = t;
  }
}

TEST(Characterize, CoreTempsHaveExpectedArity) {
  CharacterizationHarness h = make_liquid_harness();
  const std::vector<double> temps = h.steady_core_temps(0.5, 2);
  EXPECT_EQ(temps.size(), 8u);  // 2-layer system: 8 cores
  for (double t : temps) {
    EXPECT_GT(t, 45.0);
    EXPECT_LT(t, 200.0);
  }
}

TEST(Characterize, MinFlowBisectionBracketsTarget) {
  CharacterizationHarness h = make_liquid_harness();
  const VolumetricFlow lo = VolumetricFlow::from_ml_per_min(1.0);
  const VolumetricFlow hi = VolumetricFlow::from_ml_per_min(40.0);
  const VolumetricFlow f = h.min_flow_for_target(0.5, 80.0, lo, hi);
  // The found flow meets the target...
  EXPECT_LE(h.steady_tmax_at_flow(0.5, f), 80.5);
  // ...and is minimal: 10 % less flow violates it (unless already at lo).
  if (f > lo * 1.05) {
    EXPECT_GT(h.steady_tmax_at_flow(0.5, f * 0.9), 79.5);
  }
}

TEST(Characterize, MinFlowSaturatesWhenTargetUnreachable) {
  CharacterizationHarness h = make_liquid_harness();
  const VolumetricFlow lo = VolumetricFlow::from_ml_per_min(0.5);
  const VolumetricFlow hi = VolumetricFlow::from_ml_per_min(1.0);
  // Full load cannot be cooled to 50 C by ~1 ml/min: returns hi.
  const VolumetricFlow f = h.min_flow_for_target(1.0, 50.0, lo, hi);
  EXPECT_EQ(f.ml_per_min(), hi.ml_per_min());
}

TEST(Characterize, HigherUtilizationNeedsMoreFlow) {
  CharacterizationHarness h = make_liquid_harness();
  const VolumetricFlow lo = VolumetricFlow::from_ml_per_min(1.0);
  const VolumetricFlow hi = VolumetricFlow::from_ml_per_min(40.0);
  const double f_low = h.min_flow_for_target(0.2, 80.0, lo, hi).ml_per_min();
  const double f_high = h.min_flow_for_target(0.9, 80.0, lo, hi).ml_per_min();
  EXPECT_GT(f_high, f_low);
}

TEST(Characterize, AirHarnessWorksWithoutPump) {
  CharacterizationHarness h(make_2layer_system(CoolingType::kAir), small_grid(),
                            PowerModelParams{});
  EXPECT_EQ(h.setting_count(), 1u);
  const double t_low = h.steady_tmax(0.2, 0);
  const double t_high = h.steady_tmax(0.9, 0);
  EXPECT_GT(t_high, t_low);
  EXPECT_THROW((void)h.steady_tmax(0.5, 1), ConfigError);
}

TEST(Characterize, LiquidConstructorRejectsAirStack) {
  EXPECT_THROW(CharacterizationHarness(make_2layer_system(CoolingType::kAir),
                                       small_grid(), PowerModelParams{},
                                       PumpModel::laing_ddc(),
                                       FlowDeliveryMode::kPressureLimited),
               ConfigError);
}

TEST(Characterize, BuiltLutIsUsableEndToEnd) {
  CharacterizationHarness h = make_liquid_harness();
  const FlowLut lut = FlowLut::characterize(
      [&](double u, std::size_t s) { return h.steady_tmax(u, s); },
      h.setting_count(), 78.0, 9);
  // Hot observations require at least as much flow as cool ones.
  for (std::size_t s = 0; s < 5; ++s) {
    EXPECT_LE(lut.required_setting(s, 50.0), lut.required_setting(s, 95.0));
    EXPECT_LE(lut.required_setting(s, 95.0), lut.required_setting(s, 250.0));
  }
  // A scorching reading always needs a real flow bump over the minimum.
  EXPECT_GE(lut.required_setting(0, 250.0), 2u);
}

}  // namespace
}  // namespace liquid3d
