// Pump model and actuator (coolant/pump.hpp): Fig. 3's operating points and
// the transition-latency semantics that motivate proactive control.
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "coolant/pump.hpp"

namespace liquid3d {
namespace {

TEST(PumpModel, LaingDdcHasFivePaperSettings) {
  const PumpModel p = PumpModel::laing_ddc();
  ASSERT_EQ(p.setting_count(), 5u);
  for (std::size_t s = 0; s < 5; ++s) {
    EXPECT_DOUBLE_EQ(p.setting(s).nominal_flow_l_per_hour, 75.0 * (s + 1));
  }
}

TEST(PumpModel, PowerCurveEndpointsMatchFig3Axis) {
  // Fig. 3 right axis: ~3 W at 75 l/h, 21 W at 375 l/h, quadratic.
  const PumpModel p = PumpModel::laing_ddc();
  EXPECT_NEAR(p.power(0), 3.0, 1e-9);
  EXPECT_NEAR(p.power(4), 21.0, 1e-9);
  // Quadratic interior values: P = 2.25 + 1.3333e-4 FR^2.
  EXPECT_NEAR(p.power(1), 5.25, 1e-9);
  EXPECT_NEAR(p.power(2), 9.0, 1e-9);
  EXPECT_NEAR(p.power(3), 14.25, 1e-9);
}

TEST(PumpModel, PowerGrowsSuperlinearlyWithFlow) {
  // The quadratic pump law is the whole reason variable flow saves energy:
  // halving the flow costs much less than half the power.
  const PumpModel p = PumpModel::laing_ddc();
  const double power_ratio = p.power(4) / p.power(1);
  const double flow_ratio =
      p.setting(4).nominal_flow_l_per_hour / p.setting(1).nominal_flow_l_per_hour;
  EXPECT_GT(power_ratio, flow_ratio);
}

TEST(PumpModel, DeliveredFlowAppliesFiftyPercentLoss) {
  // Sec. III-B: "a global reduction in the flow rate by 50 %".
  const PumpModel p = PumpModel::laing_ddc();
  EXPECT_NEAR(p.delivered_flow(4).l_per_hour(), 375.0 * 0.5, 1e-9);
  EXPECT_DOUBLE_EQ(p.delivery_efficiency(), 0.5);
}

TEST(PumpModel, PerCavityFlowMatchesFig3) {
  // Fig. 3: per-cavity flow for the 2-layer system (3 cavities) at the top
  // setting: 375 l/h * 0.5 / 3 = 62.5 l/h = 1041.7 ml/min.
  const PumpModel p = PumpModel::laing_ddc();
  EXPECT_NEAR(p.per_cavity_flow(4, 3).ml_per_min(), 1041.67, 0.01);
  // 4-layer (5 cavities): 625 ml/min.
  EXPECT_NEAR(p.per_cavity_flow(4, 5).ml_per_min(), 625.0, 0.01);
  // Lowest setting, 2-layer: 75 * 0.5 / 3 = 12.5 l/h = 208.3 ml/min.
  EXPECT_NEAR(p.per_cavity_flow(0, 3).ml_per_min(), 208.33, 0.01);
}

TEST(PumpModel, TransitionLatencyInPaperRange) {
  // "A typical impeller pump ... takes around 250-300 ms to complete the
  // transition to a new flow rate."
  const PumpModel p = PumpModel::laing_ddc();
  EXPECT_GE(p.transition_latency().as_ms(), 250);
  EXPECT_LE(p.transition_latency().as_ms(), 300);
}

TEST(PumpModel, ValidationRejectsBadConfigs) {
  EXPECT_THROW(PumpModel({}, 0.5, SimTime::from_ms(275)), ConfigError);
  EXPECT_THROW(PumpModel({{75, 3}, {50, 5}}, 0.5, SimTime::from_ms(275)), ConfigError);
  EXPECT_THROW(PumpModel({{75, 3}, {150, 2}}, 0.5, SimTime::from_ms(275)), ConfigError);
  EXPECT_THROW(PumpModel({{75, 3}}, 0.0, SimTime::from_ms(275)), ConfigError);
}

TEST(PumpActuator, TransitionCompletesAfterLatency) {
  const PumpModel p = PumpModel::laing_ddc();
  PumpActuator a(p, 0);
  EXPECT_EQ(a.effective_setting(), 0u);

  a.command(3, SimTime::from_ms(1000));
  EXPECT_TRUE(a.in_transition());
  EXPECT_EQ(a.effective_setting(), 0u);
  EXPECT_EQ(a.target_setting(), 3u);

  a.tick(SimTime::from_ms(1100));  // 100 ms elapsed < 275 ms
  EXPECT_EQ(a.effective_setting(), 0u);
  a.tick(SimTime::from_ms(1275));  // exactly the latency
  EXPECT_EQ(a.effective_setting(), 3u);
  EXPECT_FALSE(a.in_transition());
  EXPECT_EQ(a.transition_count(), 1u);
}

TEST(PumpActuator, RepeatedSameCommandIsIdempotent) {
  const PumpModel p = PumpModel::laing_ddc();
  PumpActuator a(p, 2);
  a.command(2, SimTime::from_ms(0));
  EXPECT_EQ(a.transition_count(), 0u);
  a.command(4, SimTime::from_ms(0));
  a.command(4, SimTime::from_ms(100));
  EXPECT_EQ(a.transition_count(), 1u);
}

TEST(PumpActuator, PowerIsConservativeDuringTransition) {
  const PumpModel p = PumpModel::laing_ddc();
  PumpActuator a(p, 0);
  EXPECT_NEAR(a.power(), 3.0, 1e-9);
  a.command(4, SimTime::from_ms(0));
  // Spinning up: charged at the higher of the two settings.
  EXPECT_NEAR(a.power(), 21.0, 1e-9);
  a.tick(SimTime::from_ms(275));
  EXPECT_NEAR(a.power(), 21.0, 1e-9);
  // Spinning down: still charged at the higher power until complete.
  a.command(1, SimTime::from_ms(300));
  EXPECT_NEAR(a.power(), 21.0, 1e-9);
  a.tick(SimTime::from_ms(575));
  EXPECT_NEAR(a.power(), 5.25, 1e-9);
}

TEST(PumpActuator, RetargetingDuringTransitionRestartsLatency) {
  const PumpModel p = PumpModel::laing_ddc();
  PumpActuator a(p, 0);
  a.command(2, SimTime::from_ms(0));
  a.command(4, SimTime::from_ms(200));  // changes mind mid-transition
  a.tick(SimTime::from_ms(300));        // 300 ms after first, 100 after second
  EXPECT_EQ(a.effective_setting(), 0u);
  a.tick(SimTime::from_ms(475));
  EXPECT_EQ(a.effective_setting(), 4u);
  EXPECT_EQ(a.transition_count(), 2u);
}

TEST(PumpActuator, CancelBackToEffectiveIsFree) {
  // effective=2, target=3, then command(2): the pump never left setting 2,
  // so the cancel must not count a transition nor impose latency (the seed
  // compared only against target_ and did both).
  const PumpModel p = PumpModel::laing_ddc();
  PumpActuator a(p, 2);
  a.command(3, SimTime::from_ms(0));
  EXPECT_EQ(a.transition_count(), 1u);
  EXPECT_TRUE(a.in_transition());

  a.command(2, SimTime::from_ms(100));  // cancel before the latency elapsed
  EXPECT_EQ(a.transition_count(), 1u);  // no spurious transition counted
  EXPECT_FALSE(a.in_transition());      // no latency stall
  EXPECT_EQ(a.effective_setting(), 2u);
  EXPECT_EQ(a.target_setting(), 2u);
  // And the actuator is immediately commandable again.
  a.command(4, SimTime::from_ms(150));
  EXPECT_EQ(a.transition_count(), 2u);
  a.tick(SimTime::from_ms(425));
  EXPECT_EQ(a.effective_setting(), 4u);
}

TEST(PumpActuator, CancelDoesNotAffectPowerAccounting) {
  // During the canceled transition the conservative (higher) power was
  // charged; after the cancel the power must return to the effective
  // setting's immediately.
  const PumpModel p = PumpModel::laing_ddc();
  PumpActuator a(p, 1);
  a.command(4, SimTime::from_ms(0));
  EXPECT_NEAR(a.power(), 21.0, 1e-9);
  a.command(1, SimTime::from_ms(50));
  EXPECT_NEAR(a.power(), 5.25, 1e-9);
}

TEST(PumpActuator, InvalidSettingRejected) {
  const PumpModel p = PumpModel::laing_ddc();
  EXPECT_THROW(PumpActuator(p, 9), ConfigError);
  PumpActuator a(p, 0);
  EXPECT_THROW(a.command(9, SimTime{}), ConfigError);
}

}  // namespace
}  // namespace liquid3d
