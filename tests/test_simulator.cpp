// Full-system integration (sim/simulator.hpp).  These are the slowest tests
// in the suite; they use short runs and a coarse thermal grid.
#include <gtest/gtest.h>

#include <cmath>

#include "sim/simulator.hpp"

namespace liquid3d {
namespace {

SimulationConfig fast_config(const char* workload = "Web-med") {
  SimulationConfig cfg;
  cfg.benchmark = *find_benchmark(workload);
  cfg.duration = SimTime::from_s(12);
  cfg.seed = 11;
  cfg.thermal.grid_rows = 10;
  cfg.thermal.grid_cols = 11;
  return cfg;
}

/// Characterizations shared across all tests in this TU (expensive).
std::shared_ptr<const FlowLut> shared_lut() {
  static std::shared_ptr<const FlowLut> lut = Simulator::build_flow_lut(fast_config());
  return lut;
}
std::shared_ptr<const TalbWeightTable> shared_weights() {
  static std::shared_ptr<const TalbWeightTable> w =
      Simulator::build_talb_weights(fast_config());
  return w;
}

SimulationConfig liquid_config(CoolingMode mode, Policy policy,
                               const char* workload = "Web-med") {
  SimulationConfig cfg = fast_config(workload);
  cfg.cooling = mode;
  cfg.policy = policy;
  cfg.flow_lut = shared_lut();
  cfg.talb_weights = shared_weights();
  return cfg;
}

TEST(Simulator, VariableFlowHoldsTemperatureNearTarget) {
  Simulator sim(liquid_config(CoolingMode::kLiquidVar, Policy::kTalb));
  const SimulationResult r = sim.run();
  // The controller's job: essentially no time above the hot-spot threshold
  // and bounded excursions above the 80 C target.
  EXPECT_LT(r.hotspot_percent, 2.0);
  EXPECT_LT(r.hotspot_max_sample, 88.0);
  EXPECT_LT(r.above_target_percent, 12.0);
}

TEST(Simulator, VariableFlowSavesPumpEnergyVsMax) {
  Simulator max_sim(liquid_config(CoolingMode::kLiquidMax, Policy::kTalb));
  Simulator var_sim(liquid_config(CoolingMode::kLiquidVar, Policy::kTalb));
  const SimulationResult r_max = max_sim.run();
  const SimulationResult r_var = var_sim.run();
  EXPECT_LT(r_var.pump_energy_j, r_max.pump_energy_j);
  // Throughput is not sacrificed (the paper: "without any effect on the
  // performance").
  EXPECT_NEAR(r_var.throughput_per_s, r_max.throughput_per_s,
              0.02 * r_max.throughput_per_s + 0.5);
}

TEST(Simulator, AirRunsHotterThanLiquid) {
  SimulationConfig air = fast_config();
  air.cooling = CoolingMode::kAir;
  air.policy = Policy::kLoadBalancing;
  Simulator air_sim(air);
  Simulator liq_sim(liquid_config(CoolingMode::kLiquidMax, Policy::kLoadBalancing));
  const SimulationResult r_air = air_sim.run();
  const SimulationResult r_liq = liq_sim.run();
  EXPECT_GT(r_air.avg_tmax, r_liq.avg_tmax + 5.0);
}

TEST(Simulator, DeterministicGivenSeed) {
  const SimulationResult a = Simulator(liquid_config(CoolingMode::kLiquidVar,
                                                     Policy::kTalb))
                                 .run();
  const SimulationResult b = Simulator(liquid_config(CoolingMode::kLiquidVar,
                                                     Policy::kTalb))
                                 .run();
  EXPECT_DOUBLE_EQ(a.avg_tmax, b.avg_tmax);
  EXPECT_DOUBLE_EQ(a.chip_energy_j, b.chip_energy_j);
  EXPECT_DOUBLE_EQ(a.pump_energy_j, b.pump_energy_j);
  EXPECT_DOUBLE_EQ(a.throughput_per_s, b.throughput_per_s);
  EXPECT_EQ(a.pump_transitions, b.pump_transitions);
}

TEST(Simulator, EnergyAccountingIsConsistent) {
  const SimulationResult r =
      Simulator(liquid_config(CoolingMode::kLiquidVar, Policy::kTalb)).run();
  EXPECT_NEAR(r.total_energy_j, r.chip_energy_j + r.pump_energy_j, 1e-6);
  EXPECT_GT(r.chip_energy_j, 0.0);
  EXPECT_GT(r.pump_energy_j, 0.0);
  EXPECT_DOUBLE_EQ(r.elapsed_s, 12.0);
}

TEST(Simulator, UtilizationTracksTableII) {
  // The load modulation has an 8 s time constant, so short runs carry real
  // variance in the mean; 60 s gives ~8 independent modulation periods.
  SimulationConfig cfg = liquid_config(CoolingMode::kLiquidMax, Policy::kTalb);
  cfg.duration = SimTime::from_s(60);
  const SimulationResult r = Simulator(cfg).run();
  EXPECT_NEAR(r.avg_utilization, cfg.benchmark.avg_utilization, 0.15);
}

TEST(Simulator, MigrationPolicyCountsMigrations) {
  // On the air system, hot cores trigger reactive migration.
  SimulationConfig cfg = fast_config("Web-high");
  cfg.cooling = CoolingMode::kAir;
  cfg.policy = Policy::kReactiveMigration;
  const SimulationResult r = Simulator(cfg).run();
  EXPECT_GT(r.migrations, 0u);
  EXPECT_EQ(r.label, "Mig (Air)");
}

TEST(Simulator, MaxFlowNeverMigratesNorTransitions) {
  Simulator sim(liquid_config(CoolingMode::kLiquidMax, Policy::kLoadBalancing));
  const SimulationResult r = sim.run();
  EXPECT_EQ(r.migrations, 0u);
  EXPECT_EQ(r.pump_transitions, 0u);
  EXPECT_DOUBLE_EQ(r.avg_pump_setting, 4.0);
}

TEST(Simulator, TraceCallbackSeesEverySample) {
  SimulationConfig cfg = liquid_config(CoolingMode::kLiquidVar, Policy::kTalb);
  cfg.duration = SimTime::from_s(5);
  Simulator sim(cfg);
  std::size_t samples = 0;
  double last_t = 0.0;
  sim.set_trace_callback([&](const SampleTrace& t) {
    ++samples;
    EXPECT_GT(t.now.as_s(), last_t);
    last_t = t.now.as_s();
    EXPECT_GT(t.chip_watts, 0.0);
    EXPECT_GT(t.flow_ml_per_min, 0.0);
    EXPECT_TRUE(std::isfinite(t.tmax));
  });
  sim.run();
  EXPECT_EQ(samples, 50u);  // 5 s / 100 ms
}

TEST(Simulator, LabelsMatchPaperNotation) {
  EXPECT_EQ(policy_label(Policy::kTalb, CoolingMode::kLiquidVar), "TALB (Var)");
  EXPECT_EQ(policy_label(Policy::kLoadBalancing, CoolingMode::kAir), "LB (Air)");
  EXPECT_EQ(policy_label(Policy::kReactiveMigration, CoolingMode::kLiquidMax),
            "Mig (Max)");
}

TEST(Simulator, FourLayerSystemRuns) {
  SimulationConfig cfg;
  cfg.layer_pairs = 2;
  cfg.cooling = CoolingMode::kLiquidMax;  // no LUT build needed
  cfg.policy = Policy::kLoadBalancing;
  cfg.benchmark = *find_benchmark("gzip");
  cfg.duration = SimTime::from_s(4);
  cfg.thermal.grid_rows = 8;
  cfg.thermal.grid_cols = 9;
  // Provide a trivial LUT-free path: LiquidMax still builds a LUT via the
  // manager; supply a shared one from a matching 4-layer config.
  cfg.flow_lut = Simulator::build_flow_lut(cfg);
  Simulator sim(cfg);
  const SimulationResult r = sim.run();
  EXPECT_GT(r.avg_tmax, 45.0);
  EXPECT_EQ(sim.core_count(), 16u);
}

}  // namespace
}  // namespace liquid3d
