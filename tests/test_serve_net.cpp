// The thermal service's wire transport (serve/net/): framing, the server's
// admission/fairness/deadline/drain behaviour, and the client library.
// Contracts under test:
//
//   * wire answers are bit-identical to in-process calls for all three
//     query families (the envelope round-trips every double exactly);
//   * protocol edge cases — torn frames, oversized length prefixes,
//     unknown versions/tags, mid-request disconnects — yield typed errors
//     on the offending connection and the server keeps serving others;
//   * admission control rejects past max_inflight with `overloaded`
//     instead of queueing without bound; drain answers `shutting-down`;
//   * per-request deadlines answer `deadline-exceeded`;
//   * a single worker round-robins across connections, so a pipelining
//     client cannot starve a one-query client.
#include <gtest/gtest.h>

#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <thread>

#include "common/error.hpp"
#include "serve/net/client.hpp"
#include "serve/net/frame.hpp"
#include "serve/net/server.hpp"
#include "serve/service.hpp"
#include "sim/session.hpp"

namespace liquid3d {
namespace {

Endpoint loopback() { return parse_endpoint("127.0.0.1:0", "test"); }

WhatIfQuery small_whatif(std::uint64_t seed, double duration_s = 2.0) {
  WhatIfQuery q;
  q.scenario = "talb-var";
  q.benchmark = "Web-med";
  q.duration_s = duration_s;
  q.seed = seed;
  q.grid_rows = 8;
  q.grid_cols = 9;
  return q;
}

SteadyQuery small_steady() {
  SteadyQuery q;
  q.config.cooling = CoolingMode::kLiquidMax;
  q.config.layer_pairs = 1;
  q.config.thermal.grid_rows = 8;
  q.config.thermal.grid_cols = 9;
  q.core_watts = 3.0;
  return q;
}

void expect_bit_identical(const SimulationResult& a, const SimulationResult& b) {
  EXPECT_EQ(a.label, b.label);
  EXPECT_EQ(a.benchmark, b.benchmark);
  EXPECT_EQ(a.hotspot_percent, b.hotspot_percent);
  EXPECT_EQ(a.hotspot_max_sample, b.hotspot_max_sample);
  EXPECT_EQ(a.above_target_percent, b.above_target_percent);
  EXPECT_EQ(a.spatial_gradient_percent, b.spatial_gradient_percent);
  EXPECT_EQ(a.thermal_cycles_per_1000, b.thermal_cycles_per_1000);
  EXPECT_EQ(a.avg_tmax, b.avg_tmax);
  EXPECT_EQ(a.chip_energy_j, b.chip_energy_j);
  EXPECT_EQ(a.pump_energy_j, b.pump_energy_j);
  EXPECT_EQ(a.total_energy_j, b.total_energy_j);
  EXPECT_EQ(a.throughput_per_s, b.throughput_per_s);
  EXPECT_EQ(a.avg_utilization, b.avg_utilization);
  EXPECT_EQ(a.migrations, b.migrations);
  EXPECT_EQ(a.pump_transitions, b.pump_transitions);
  EXPECT_EQ(a.valve_transitions, b.valve_transitions);
  EXPECT_EQ(a.avg_flow_skew, b.avg_flow_skew);
  EXPECT_EQ(a.predictor_rebuilds, b.predictor_rebuilds);
  EXPECT_EQ(a.forecast_rmse, b.forecast_rmse);
  EXPECT_EQ(a.avg_pump_setting, b.avg_pump_setting);
}

/// Service + started server on an ephemeral loopback port.
struct Fixture {
  explicit Fixture(ServerParams server_params = {}, ServeParams params = {})
      : service(params), server(service, server_params) {
    server.start(loopback());
  }
  ThermalService service;
  ServeServer server;
};

// -- frame layer --------------------------------------------------------------

struct SocketPair {
  SocketPair() {
    int fds[2];
    EXPECT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
    a = fds[0];
    b = fds[1];
  }
  ~SocketPair() {
    if (a >= 0) ::close(a);
    if (b >= 0) ::close(b);
  }
  int a = -1;
  int b = -1;
};

TEST(ServeFrame, RoundTripsAndCleanEof) {
  SocketPair pair;
  send_frame(pair.a, "hello");
  send_frame(pair.a, "");  // empty payloads are legal frames
  auto first = recv_frame(pair.b);
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(*first, "hello");
  auto second = recv_frame(pair.b);
  ASSERT_TRUE(second.has_value());
  EXPECT_TRUE(second->empty());
  ::close(pair.a);
  pair.a = -1;
  EXPECT_FALSE(recv_frame(pair.b).has_value());  // EOF at a frame boundary
}

TEST(ServeFrame, TornFrameIsDisconnectNotEof) {
  SocketPair pair;
  // Prefix promises 100 bytes; only 3 arrive before the close.
  const char prefix[4] = {0, 0, 0, 100};
  ASSERT_EQ(::send(pair.a, prefix, 4, 0), 4);
  ASSERT_EQ(::send(pair.a, "abc", 3, 0), 3);
  ::close(pair.a);
  pair.a = -1;
  try {
    (void)recv_frame(pair.b);
    FAIL() << "torn frame must throw";
  } catch (const WireError& e) {
    EXPECT_EQ(e.code(), WireErrorCode::kDisconnected);
  }
}

TEST(ServeFrame, OversizedLengthPrefixIsProtocolError) {
  SocketPair pair;
  const unsigned char prefix[4] = {0xff, 0xff, 0xff, 0xff};
  ASSERT_EQ(::send(pair.a, prefix, 4, 0), 4);
  try {
    (void)recv_frame(pair.b);
    FAIL() << "oversized prefix must throw";
  } catch (const WireError& e) {
    EXPECT_EQ(e.code(), WireErrorCode::kProtocol);
  }
}

// -- bit identity across the wire ---------------------------------------------

TEST(ServeNet, SteadyAnswerBitIdenticalToInProcess) {
  Fixture fx;
  const SteadyQuery q = small_steady();
  const SteadyAnswer local = fx.service.steady(q);

  ServeClient client(fx.server.endpoint());
  const SteadyAnswer wire = client.steady(q);
  EXPECT_EQ(wire.t_max_c, local.t_max_c);
  EXPECT_EQ(wire.layer_max_c, local.layer_max_c);
  EXPECT_EQ(wire.used_rom, local.used_rom);
  EXPECT_EQ(wire.estimated_error_c, local.estimated_error_c);
  EXPECT_EQ(wire.certified_error_c, local.certified_error_c);
  EXPECT_EQ(wire.rom_dimension, local.rom_dimension);
}

TEST(ServeNet, WhatIfAnswerBitIdenticalToInProcess) {
  Fixture fx;
  const WhatIfQuery q = small_whatif(11);
  const SessionOutcome local = fx.service.what_if(q).get();

  ServeClient client(fx.server.endpoint());
  const SessionOutcome wire = client.what_if(q);
  expect_bit_identical(wire.result, local.result);
  EXPECT_TRUE(wire.trace.empty());
}

TEST(ServeNet, ReplayAnswerBitIdenticalToInProcessIncludingTrace) {
  Fixture fx;
  ReplayQuery q;
  q.base = small_whatif(5);
  q.phases.push_back({SimTime::from_s(1), 0.5});
  q.trace_period_s = 0.5;
  const SessionOutcome local = fx.service.replay(q).get();

  ServeClient client(fx.server.endpoint());
  const SessionOutcome wire = client.replay(q);
  expect_bit_identical(wire.result, local.result);
  ASSERT_EQ(wire.trace.size(), local.trace.size());
  for (std::size_t i = 0; i < wire.trace.size(); ++i) {
    EXPECT_EQ(wire.trace[i].now.as_ms(), local.trace[i].now.as_ms());
    EXPECT_EQ(wire.trace[i].tmax, local.trace[i].tmax);
    EXPECT_EQ(wire.trace[i].forecast, local.trace[i].forecast);
    EXPECT_EQ(wire.trace[i].pump_setting, local.trace[i].pump_setting);
    EXPECT_EQ(wire.trace[i].flow_ml_per_min, local.trace[i].flow_ml_per_min);
    EXPECT_EQ(wire.trace[i].chip_watts, local.trace[i].chip_watts);
    EXPECT_EQ(wire.trace[i].pump_watts, local.trace[i].pump_watts);
    EXPECT_EQ(wire.trace[i].mean_busy, local.trace[i].mean_busy);
    EXPECT_EQ(wire.trace[i].queued_threads, local.trace[i].queued_threads);
  }
}

// -- error taxonomy across the wire -------------------------------------------

TEST(ServeNet, ServerSideConfigErrorRethrowsAsConfigError) {
  Fixture fx;
  ServeClient client(fx.server.endpoint());
  WhatIfQuery q = small_whatif(1);
  q.scenario = "no-such-scenario";
  EXPECT_THROW((void)client.what_if(q), ConfigError);
  // The connection survives a bad request.
  EXPECT_EQ(client.steady(small_steady()).t_max_c,
            fx.service.steady(small_steady()).t_max_c);
}

TEST(ServeNet, MalformedEnvelopeGetsTypedReplyAndServerKeepsServing) {
  Fixture fx;
  const int fd = connect_socket(fx.server.endpoint());
  send_frame(fd, "liquid3d-serve 999 steady\nid 77\n");  // unsupported version
  const auto reply = recv_frame(fd);
  ASSERT_TRUE(reply.has_value());
  const WireResponse response = decode_response(*reply);
  EXPECT_EQ(response.id, 77u);  // salvaged by peek_request_id
  const auto& error = std::get<ErrorReply>(response.payload);
  EXPECT_EQ(error.code, WireErrorCode::kBadRequest);

  // Same connection still serves well-formed requests...
  send_frame(fd, "liquid3d-serve 1 bogus-tag\nid 78\n");
  const auto reply2 = recv_frame(fd);
  ASSERT_TRUE(reply2.has_value());
  EXPECT_EQ(std::get<ErrorReply>(decode_response(*reply2).payload).code,
            WireErrorCode::kBadRequest);
  ::close(fd);

  // ...and so does the rest of the server.
  ServeClient client(fx.server.endpoint());
  EXPECT_GT(client.steady(small_steady()).t_max_c, 0.0);
}

TEST(ServeNet, OversizedPrefixDropsConnectionButServerKeepsServing) {
  Fixture fx;
  const int fd = connect_socket(fx.server.endpoint());
  const unsigned char prefix[4] = {0xff, 0xff, 0xff, 0xff};
  ASSERT_EQ(::send(fd, prefix, 4, MSG_NOSIGNAL), 4);
  // The server cannot resynchronize after a bad length: it must drop this
  // connection (EOF from our side of it) rather than reply.
  char byte;
  EXPECT_EQ(::recv(fd, &byte, 1, 0), 0);
  ::close(fd);

  ServeClient client(fx.server.endpoint());
  EXPECT_GT(client.steady(small_steady()).t_max_c, 0.0);
}

TEST(ServeNet, MidRequestDisconnectLeavesServerServing) {
  Fixture fx;
  {
    const int fd = connect_socket(fx.server.endpoint());
    WireRequest request;
    request.id = 1;
    request.payload = small_whatif(3);
    send_frame(fd, encode_request(request));
    ::close(fd);  // vanish before the answer
  }
  // The abandoned session still runs to completion server-side; the server
  // swallows the undeliverable reply and serves the next client.
  ServeClient client(fx.server.endpoint());
  const SessionOutcome outcome = client.what_if(small_whatif(4));
  EXPECT_GT(outcome.result.avg_tmax, 0.0);
  fx.service.wait_idle();
}

// -- admission, deadlines, drain, fairness ------------------------------------

/// Polls the server's stats until `pred` holds (bounded wait).
template <class Pred>
void await(const ServeServer& server, Pred pred) {
  for (int i = 0; i < 2000; ++i) {
    if (pred(server.stats())) return;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  FAIL() << "server never reached the awaited state";
}

TEST(ServeNet, OverloadRejectsWithTypedErrorNotQueueing) {
  ServerParams params;
  params.workers = 1;
  params.max_inflight = 1;
  Fixture fx(params);

  // Fill the single in-flight slot with a slow what-if...
  std::thread slow([&] {
    ServeClient client(fx.server.endpoint());
    (void)client.what_if(small_whatif(1, /*duration_s=*/60.0));
  });
  await(fx.server, [](const ServeStats& s) { return s.wire_accepted >= 1; });

  // ...then the next request must be rejected, typed, immediately.
  ServeClient client(fx.server.endpoint());
  try {
    (void)client.steady(small_steady());
    FAIL() << "expected overloaded rejection";
  } catch (const WireError& e) {
    EXPECT_EQ(e.code(), WireErrorCode::kOverloaded);
  }
  slow.join();

  const ServeStats stats = fx.server.stats();
  EXPECT_EQ(stats.wire_rejected, 1u);
  EXPECT_EQ(stats.wire_queue_hwm, 1u);
  // After the burst drains, the slot frees up again.
  EXPECT_GT(client.steady(small_steady()).t_max_c, 0.0);
}

TEST(ServeNet, DeadlineExceededIsTypedAndCounted) {
  Fixture fx;
  ServeClient client(fx.server.endpoint());
  client.set_deadline_ms(1.0);  // a 60 s cell cannot finish in 1 ms
  try {
    (void)client.what_if(small_whatif(2, /*duration_s=*/60.0));
    FAIL() << "expected deadline-exceeded";
  } catch (const WireError& e) {
    EXPECT_EQ(e.code(), WireErrorCode::kDeadlineExceeded);
  }
  EXPECT_EQ(fx.server.stats().wire_timed_out, 1u);
  fx.service.wait_idle();  // the abandoned session still completes

  client.set_deadline_ms(0.0);
  EXPECT_GT(client.steady(small_steady()).t_max_c, 0.0);
}

TEST(ServeNet, DrainRejectsNewWorkAndFinishesInFlight) {
  ServerParams params;
  params.workers = 2;
  Fixture fx(params);

  std::atomic<bool> answered{false};
  std::thread inflight([&] {
    ServeClient client(fx.server.endpoint());
    const SessionOutcome outcome = client.what_if(small_whatif(1, 30.0));
    EXPECT_GT(outcome.result.avg_tmax, 0.0);
    answered = true;
  });
  await(fx.server, [](const ServeStats& s) { return s.wire_accepted >= 1; });

  // A client connected before the drain: its next request is rejected typed.
  ServeClient early(fx.server.endpoint());
  std::thread drainer([&] { fx.server.drain(); });
  await(fx.server, [](const ServeStats&) { return true; });
  // drain() blocks until the in-flight answer lands; poke from here.
  for (;;) {
    try {
      (void)early.steady(small_steady());
      // Raced ahead of the drain flag; retry until the drain is visible.
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    } catch (const WireError& e) {
      EXPECT_EQ(e.code(), WireErrorCode::kShuttingDown);
      break;
    }
  }
  drainer.join();
  inflight.join();
  EXPECT_TRUE(answered.load());  // drain waited for the admitted request
  EXPECT_GE(fx.server.stats().wire_rejected, 1u);
}

TEST(ServeNet, SingleWorkerRoundRobinsAcrossConnections) {
  ServerParams params;
  params.workers = 1;
  params.max_inflight = 8;
  Fixture fx(params);

  // Client A pipelines 4 slow cells on one connection (raw frames — the
  // library client is deliberately one-request-at-a-time).
  const int fd = connect_socket(fx.server.endpoint());
  for (std::uint64_t i = 1; i <= 4; ++i) {
    WireRequest request;
    request.id = i;
    request.payload = small_whatif(i, /*duration_s=*/20.0);
    send_frame(fd, encode_request(request));
  }
  await(fx.server, [](const ServeStats& s) { return s.wire_accepted >= 4; });

  // Client B's single query must be served after at most one of A's
  // remaining cells — not behind all four.
  std::atomic<int> a_replies{0};
  std::thread a_reader([&] {
    for (int i = 0; i < 4; ++i) {
      const auto reply = recv_frame(fd);
      if (!reply.has_value()) break;
      ++a_replies;
    }
  });

  ServeClient b(fx.server.endpoint());
  (void)b.what_if(small_whatif(9, /*duration_s=*/2.0));
  const int a_done_when_b_answered = a_replies.load();

  a_reader.join();
  ::close(fd);
  // With fair round-robin, B ran right after A's in-flight cell: at most
  // 2 of A's four replies (execution overlap slack) had landed.  A
  // FIFO-across-all-connections server would finish all 4 first.
  EXPECT_LE(a_done_when_b_answered, 2);
  EXPECT_EQ(a_replies.load(), 4);
}

TEST(ServeNet, StatsBypassAdmissionAndReportTransportCounters) {
  ServerParams params;
  params.workers = 1;
  params.max_inflight = 1;
  Fixture fx(params);

  std::thread slow([&] {
    ServeClient client(fx.server.endpoint());
    (void)client.what_if(small_whatif(1, /*duration_s=*/60.0));
  });
  await(fx.server, [](const ServeStats& s) { return s.wire_accepted >= 1; });

  // The in-flight slot is full, yet stats answer inline.
  ServeClient client(fx.server.endpoint());
  const ServeStats stats = client.stats();
  EXPECT_GE(stats.wire_accepted, 1u);
  EXPECT_GE(stats.wire_connections, 1u);
  EXPECT_GE(stats.wire_queue_hwm, 1u);
  slow.join();
}

TEST(ServeNet, UnixDomainSocketServesQueries) {
  const std::string path = testing::TempDir() + "/liquid3d_serve_test.sock";
  ThermalService service;
  ServeServer server(service);
  server.start(parse_endpoint("unix:" + path, "test"));
  ServeClient client(server.endpoint());
  EXPECT_EQ(client.steady(small_steady()).t_max_c,
            service.steady(small_steady()).t_max_c);
  server.stop();
}

}  // namespace
}  // namespace liquid3d
