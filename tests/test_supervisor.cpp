// Supervisor unit tests — exercised with stub commands (/bin/true, shells)
// instead of real sweep workers, so they run in milliseconds and test only
// the supervision logic: spawn, reap, backoff, restart caps, stall kills.
#include "sweep/supervisor.hpp"

#include <gtest/gtest.h>

#include <csignal>
#include <cstdio>
#include <fstream>

#include "common/error.hpp"

namespace liquid3d {
namespace {

using std::chrono::milliseconds;

SupervisorOptions stub_options(std::size_t workers) {
  SupervisorOptions o;
  for (std::size_t i = 0; i < workers; ++i) {
    o.shard_paths.push_back("shard-" + std::to_string(i));
    o.journal_paths.push_back(::testing::TempDir() +
                              "/liquid3d_supervisor_journal_" +
                              std::to_string(i) + ".csv");
    std::remove(o.journal_paths.back().c_str());
  }
  o.command_override.resize(workers);
  o.initial_backoff = milliseconds(1);
  o.max_backoff = milliseconds(8);
  o.poll_interval = milliseconds(2);
  return o;
}

TEST(RestartBackoff, GrowsExponentiallyAndCaps) {
  SupervisorOptions o;
  o.initial_backoff = milliseconds(200);
  o.backoff_multiplier = 2.0;
  o.max_backoff = milliseconds(1000);
  EXPECT_EQ(restart_backoff(o, 0), milliseconds(200));
  EXPECT_EQ(restart_backoff(o, 1), milliseconds(400));
  EXPECT_EQ(restart_backoff(o, 2), milliseconds(800));
  EXPECT_EQ(restart_backoff(o, 3), milliseconds(1000));  // capped
  EXPECT_EQ(restart_backoff(o, 30), milliseconds(1000));
}

TEST(Supervisor, RejectsMalformedOptions) {
  SupervisorOptions none;
  EXPECT_THROW((void)supervise_sweep(none), ConfigError);

  SupervisorOptions mismatch = stub_options(2);
  mismatch.journal_paths.pop_back();
  EXPECT_THROW((void)supervise_sweep(mismatch), ConfigError);
}

TEST(Supervisor, SucceedingWorkersRunExactlyOnce) {
  SupervisorOptions o = stub_options(3);
  for (auto& cmd : o.command_override) cmd = {"/bin/true"};
  const SupervisorResult result = supervise_sweep(o);
  EXPECT_TRUE(result.all_succeeded);
  ASSERT_EQ(result.workers.size(), 3u);
  for (const WorkerReport& w : result.workers) {
    EXPECT_TRUE(w.succeeded);
    EXPECT_EQ(w.spawns, 1u);
    EXPECT_EQ(w.stall_kills, 0u);
    EXPECT_EQ(w.last_exit_code, 0);
  }
}

TEST(Supervisor, CrashingWorkerIsRestartedUpToTheCap) {
  SupervisorOptions o = stub_options(1);
  o.command_override[0] = {"/bin/false"};
  o.max_restarts = 3;
  const SupervisorResult result = supervise_sweep(o);
  EXPECT_FALSE(result.all_succeeded);
  ASSERT_EQ(result.workers.size(), 1u);
  EXPECT_FALSE(result.workers[0].succeeded);
  EXPECT_EQ(result.workers[0].spawns, 4u);  // initial + 3 restarts
  EXPECT_EQ(result.workers[0].last_exit_code, 1);
}

TEST(Supervisor, CrashingWorkerEventuallySucceeding) {
  // Fails until a marker file exists, creating it on the first run: run 1
  // crashes, run 2 succeeds.  Exercises the restart-then-recover path.
  SupervisorOptions o = stub_options(1);
  const std::string marker =
      ::testing::TempDir() + "/liquid3d_supervisor_marker";
  std::remove(marker.c_str());
  o.command_override[0] = {
      "/bin/sh", "-c",
      "test -e '" + marker + "' || { : > '" + marker + "'; exit 9; }"};
  o.max_restarts = 5;
  const SupervisorResult result = supervise_sweep(o);
  EXPECT_TRUE(result.all_succeeded);
  EXPECT_EQ(result.workers[0].spawns, 2u);
  std::remove(marker.c_str());
}

TEST(Supervisor, MixedFleetReportsPerWorker) {
  SupervisorOptions o = stub_options(2);
  o.command_override[0] = {"/bin/true"};
  o.command_override[1] = {"/bin/false"};
  o.max_restarts = 1;
  const SupervisorResult result = supervise_sweep(o);
  EXPECT_FALSE(result.all_succeeded);
  EXPECT_TRUE(result.workers[0].succeeded);
  EXPECT_FALSE(result.workers[1].succeeded);
  EXPECT_EQ(result.workers[1].spawns, 2u);
}

TEST(Supervisor, StallWatchdogKillsWedgedWorker) {
  // The stub never touches its journal, so the watchdog must SIGKILL it;
  // with restarts exhausted the supervisor then gives up.
  SupervisorOptions o = stub_options(1);
  o.command_override[0] = {"/bin/sh", "-c", "sleep 60"};
  o.max_restarts = 0;
  o.stall_timeout = milliseconds(50);
  const SupervisorResult result = supervise_sweep(o);
  EXPECT_FALSE(result.all_succeeded);
  EXPECT_EQ(result.workers[0].spawns, 1u);
  EXPECT_GE(result.workers[0].stall_kills, 1u);
  EXPECT_EQ(result.workers[0].last_signal, SIGKILL);
}

TEST(Supervisor, JournalGrowthDefersTheWatchdog) {
  // A worker that keeps appending to its journal must never be stall-killed
  // even when the stall timeout is far shorter than its total runtime.
  SupervisorOptions o = stub_options(1);
  const std::string& journal = o.journal_paths[0];
  o.command_override[0] = {
      "/bin/sh", "-c",
      "for i in 1 2 3 4 5 6 7 8; do echo row >> '" + journal +
          "'; sleep 0.05; done"};
  o.stall_timeout = milliseconds(150);
  o.poll_interval = milliseconds(10);
  const SupervisorResult result = supervise_sweep(o);
  EXPECT_TRUE(result.all_succeeded);
  EXPECT_EQ(result.workers[0].spawns, 1u);
  EXPECT_EQ(result.workers[0].stall_kills, 0u);
  std::remove(journal.c_str());
}

}  // namespace
}  // namespace liquid3d
