// Declarative stack compositions (geom/stack_spec.hpp): golden parity with
// the legacy Niagara builders, stack-file parse/round-trip and diagnostics,
// #suite token encoding, axis resolution, and config-level validation.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "common/error.hpp"
#include "geom/niagara.hpp"
#include "geom/stack_spec.hpp"
#include "sim/session.hpp"

namespace liquid3d {
namespace {

// -- Golden parity ------------------------------------------------------------

/// The legacy make_niagara_stack construction, replicated verbatim from
/// before the StackSpec refactor.  The production function now delegates to
/// make_stack(niagara_stack_spec(...)); these tests lock that delegation to
/// the historical field values.
Stack3D legacy_niagara_stack(std::size_t layer_pairs, CoolingType cooling) {
  const std::string name = std::to_string(2 * layer_pairs) + "layer_" +
                           std::string(to_string(cooling));
  Stack3D stack(name, cooling);
  for (std::size_t p = 0; p < layer_pairs; ++p) {
    stack.add_layer(LayerSpec{make_niagara_core_die()});
    stack.add_layer(LayerSpec{make_niagara_cache_die()});
  }
  if (cooling == CoolingType::kLiquid) {
    stack.set_cavities(CavitySpec{});
    stack.set_tsvs(TsvSpec{});
  }
  return stack;
}

void expect_stacks_identical(const Stack3D& a, const Stack3D& b) {
  EXPECT_EQ(a.name(), b.name());
  EXPECT_EQ(a.cooling(), b.cooling());
  ASSERT_EQ(a.layer_count(), b.layer_count());
  for (std::size_t l = 0; l < a.layer_count(); ++l) {
    const LayerSpec& la = a.layer(l);
    const LayerSpec& lb = b.layer(l);
    EXPECT_EQ(la.die_thickness, lb.die_thickness);
    EXPECT_EQ(la.beol_thickness, lb.beol_thickness);
    ASSERT_EQ(la.floorplan.block_count(), lb.floorplan.block_count());
    EXPECT_EQ(la.floorplan.width(), lb.floorplan.width());
    EXPECT_EQ(la.floorplan.height(), lb.floorplan.height());
    for (std::size_t i = 0; i < la.floorplan.block_count(); ++i) {
      const Block& ba = la.floorplan.block(i);
      const Block& bb = lb.floorplan.block(i);
      EXPECT_EQ(ba.name, bb.name);
      EXPECT_EQ(ba.type, bb.type);
      EXPECT_EQ(ba.type_index, bb.type_index);
      EXPECT_EQ(ba.rect.x, bb.rect.x);
      EXPECT_EQ(ba.rect.y, bb.rect.y);
      EXPECT_EQ(ba.rect.w, bb.rect.w);
      EXPECT_EQ(ba.rect.h, bb.rect.h);
    }
  }
  EXPECT_EQ(a.cavity_count(), b.cavity_count());
  EXPECT_EQ(a.cavity().channel_count, b.cavity().channel_count);
  EXPECT_EQ(a.cavity().channel_width, b.cavity().channel_width);
  EXPECT_EQ(a.cavity().channel_height, b.cavity().channel_height);
  EXPECT_EQ(a.cavity().wall_thickness, b.cavity().wall_thickness);
  EXPECT_EQ(a.cavity().pitch, b.cavity().pitch);
  EXPECT_EQ(a.cavity().cavity_thickness, b.cavity().cavity_thickness);
  EXPECT_EQ(a.tsvs().count, b.tsvs().count);
  EXPECT_EQ(a.tsvs().side, b.tsvs().side);
  EXPECT_EQ(a.tsvs().cu_conductivity, b.tsvs().cu_conductivity);
  EXPECT_EQ(stack_fingerprint(a), stack_fingerprint(b));
}

TEST(StackSpecParity, PresetSpecsReproduceLegacyStacks) {
  for (const std::size_t pairs : {std::size_t{1}, std::size_t{2}}) {
    for (const CoolingType cooling : {CoolingType::kAir, CoolingType::kLiquid}) {
      SCOPED_TRACE(std::to_string(pairs) + " pairs, " + to_string(cooling));
      const Stack3D legacy = legacy_niagara_stack(pairs, cooling);
      expect_stacks_identical(make_stack(niagara_stack_spec(pairs, cooling)),
                              legacy);
      expect_stacks_identical(make_niagara_stack(pairs, cooling), legacy);
    }
  }
}

TEST(StackSpecParity, StackPresetNamesResolve) {
  EXPECT_TRUE(is_stack_preset("niagara-2layer"));
  EXPECT_TRUE(is_stack_preset("niagara-4layer"));
  EXPECT_FALSE(is_stack_preset("niagara-6layer"));
  const StackSpec two = stack_preset("niagara-2layer", CoolingType::kLiquid);
  EXPECT_EQ(make_stack(two).layer_count(), 2u);
  const StackSpec four = stack_preset("niagara-4layer", CoolingType::kAir);
  const Stack3D s = make_stack(four);
  EXPECT_EQ(s.layer_count(), 4u);
  EXPECT_EQ(s.cooling(), CoolingType::kAir);
  EXPECT_THROW((void)stack_preset("nope", CoolingType::kAir), ConfigError);
  EXPECT_THROW((void)make_floorplan_preset("nope"), ConfigError);
}

// -- Fingerprint --------------------------------------------------------------

TEST(StackFingerprint, NamesAreIdentityNeutral) {
  StackSpec a = niagara_stack_spec(1, CoolingType::kLiquid);
  StackSpec b = a;
  b.name = "renamed";
  EXPECT_EQ(stack_fingerprint(make_stack(a)), stack_fingerprint(make_stack(b)));
}

TEST(StackFingerprint, GeometryChangesFingerprint) {
  const StackSpec base = niagara_stack_spec(1, CoolingType::kLiquid);
  const std::uint64_t fp = stack_fingerprint(make_stack(base));

  StackSpec thick = base;
  thick.layers[0].die_thickness *= 2.0;
  EXPECT_NE(stack_fingerprint(make_stack(thick)), fp);

  StackSpec channels = base;
  channels.cavities.front().channel_count = 64;
  EXPECT_NE(stack_fingerprint(make_stack(channels)), fp);

  EXPECT_NE(stack_fingerprint(make_stack(niagara_stack_spec(1, CoolingType::kAir))),
            fp);
  EXPECT_NE(stack_fingerprint(make_stack(niagara_stack_spec(2, CoolingType::kLiquid))),
            fp);
}

// -- Validation ---------------------------------------------------------------

StackSpec tiny_inline_spec() {
  StackSpec spec;
  spec.name = "tiny";
  spec.cooling = CoolingType::kLiquid;
  spec.die_width = 4e-3;
  spec.die_height = 4e-3;
  StackLayerEntry layer;
  layer.blocks.push_back({"core0", BlockType::kCore, Rect{0, 0, 4e-3, 4e-3}});
  spec.layers.push_back(layer);
  CavitySpec cavity;
  cavity.channel_count = 20;
  cavity.pitch = 150e-6;
  cavity.channel_width = 70e-6;
  spec.cavities = {cavity};
  return spec;
}

void expect_validation_error(StackSpec spec, const std::string& field) {
  try {
    validate_stack_spec(spec);
    FAIL() << "expected ConfigError naming '" << field << "'";
  } catch (const ConfigError& e) {
    EXPECT_NE(std::string(e.what()).find(field), std::string::npos)
        << "diagnostic: " << e.what();
  }
}

TEST(StackSpecValidation, NamesTheOffendingField) {
  EXPECT_NO_THROW(validate_stack_spec(tiny_inline_spec()));

  StackSpec spec = tiny_inline_spec();
  spec.name.clear();
  expect_validation_error(spec, "name");

  spec = tiny_inline_spec();
  spec.die_width = 0.0;
  expect_validation_error(spec, "die_width");

  spec = tiny_inline_spec();
  spec.layers.clear();
  expect_validation_error(spec, "layers");

  spec = tiny_inline_spec();
  spec.layers[0].die_thickness = -1.0;
  expect_validation_error(spec, "layers[0].die_thickness");

  spec = tiny_inline_spec();
  spec.layers[0].floorplan = "no-such-preset";
  spec.layers[0].blocks.clear();
  expect_validation_error(spec, "layers[0].floorplan");

  // Preset outline must match the declared die dimensions.
  spec = tiny_inline_spec();
  spec.layers[0].floorplan = "niagara-core";
  spec.layers[0].blocks.clear();
  expect_validation_error(spec, "layers[0].floorplan");

  spec = tiny_inline_spec();
  spec.layers[0].blocks.clear();
  expect_validation_error(spec, "layers[0].blocks");

  // Overlapping inline blocks surface with the layer named.
  spec = tiny_inline_spec();
  spec.layers[0].blocks.push_back(
      {"core1", BlockType::kCore, Rect{0, 0, 4e-3, 4e-3}});
  expect_validation_error(spec, "layers[0].blocks");

  // Cavity/layer mismatches: air with cavities, liquid without, wrong count.
  spec = tiny_inline_spec();
  spec.cooling = CoolingType::kAir;
  expect_validation_error(spec, "cavities");

  spec = tiny_inline_spec();
  spec.cavities.clear();
  expect_validation_error(spec, "cavities");

  spec = tiny_inline_spec();
  spec.cavities.resize(3, spec.cavities.front());  // 1 layer wants 1 or 2
  expect_validation_error(spec, "cavities");

  spec = tiny_inline_spec();
  spec.cavities.resize(2, spec.cavities.front());
  spec.cavities[1].channel_count += 1;  // non-uniform
  expect_validation_error(spec, "cavities[1]");

  spec = tiny_inline_spec();
  spec.cavities.front().pitch = spec.cavities.front().channel_width / 2.0;
  expect_validation_error(spec, "pitch");

  spec = tiny_inline_spec();
  spec.cavities.front().channel_count = 1000;  // band wider than the die
  expect_validation_error(spec, "channel_count");

  spec = tiny_inline_spec();
  spec.tsvs.side = 0.0;
  expect_validation_error(spec, "tsvs.side");

  // A stack with no cores cannot host the workload model.
  spec = tiny_inline_spec();
  spec.layers[0].blocks[0].type = BlockType::kMisc;
  expect_validation_error(spec, "layers");
}

// -- Stack files --------------------------------------------------------------

TEST(StackFile, WriteParseRoundTripsBitExactly) {
  for (const StackSpec& spec :
       {niagara_stack_spec(2, CoolingType::kLiquid), tiny_inline_spec()}) {
    std::ostringstream first;
    write_stack_file(first, spec);
    std::istringstream in(first.str());
    const StackSpec reparsed = parse_stack_file(in, "roundtrip");
    std::ostringstream second;
    write_stack_file(second, reparsed);
    EXPECT_EQ(first.str(), second.str());
    EXPECT_EQ(stack_fingerprint(make_stack(spec)),
              stack_fingerprint(make_stack(reparsed)));
  }
}

void expect_parse_error(const std::string& text, const std::string& needle) {
  std::istringstream in(text);
  try {
    (void)parse_stack_file(in, "bad.stack");
    FAIL() << "expected ConfigError containing '" << needle << "'";
  } catch (const ConfigError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("bad.stack:"), std::string::npos)
        << "diagnostic lacks source:line prefix: " << what;
    EXPECT_NE(what.find(needle), std::string::npos) << "diagnostic: " << what;
  }
}

TEST(StackFile, MalformedInputNamesSourceLineAndKey) {
  expect_parse_error("cooling = air\n", "outside any section");
  expect_parse_error("[stack]\nbogus_key = 1\n", "bogus_key");
  expect_parse_error("[stack]\ncooling = steam\n", "cooling");
  expect_parse_error("[stack]\ndie_width = wide\n", "die_width");
  expect_parse_error("[rocket]\n", "[rocket]");
  expect_parse_error("[stack]\nname =\n", "empty value");
  expect_parse_error("[stack]\nname no equals sign\n", "key = value");
  expect_parse_error("[stack]\n[layer]\nblock a core 0 0\n", "7 tokens");
  expect_parse_error("[stack]\n[layer]\nblock a rocket 0 0 1e-3 1e-3\n",
                     "block type");
  expect_parse_error("[layer]\nfloorplan = niagara-core\n",
                     "missing [stack] section");
  expect_parse_error("[stack]\nname = a\n[stack]\n", "duplicate [stack]");

  // The line number points at the offending line.
  expect_parse_error("[stack]\nname = ok\nbogus_key = 1\n", "bad.stack:3");
}

TEST(StackFile, CheckedInExamplesParseAndBuild) {
  // CMake runs tests from the build directory; the examples live one up.
  const std::string root = std::filesystem::exists("examples/stacks")
                               ? "examples/stacks"
                               : "../examples/stacks";
  const StackSpec paper = load_stack_file(root + "/niagara-4layer.stack");
  const Stack3D paper_stack = make_stack(paper);
  // The file spells the paper's 4-layer system digit-for-digit: it must
  // build the same geometry (same fingerprint) as the preset, name aside.
  EXPECT_EQ(stack_fingerprint(paper_stack),
            stack_fingerprint(make_niagara_stack(2, CoolingType::kLiquid)));

  const StackSpec asym = load_stack_file(root + "/asym-3die.stack");
  const Stack3D asym_stack = make_stack(asym);
  EXPECT_EQ(asym_stack.layer_count(), 3u);
  EXPECT_EQ(asym_stack.total_count(BlockType::kCore), 6u);
  EXPECT_EQ(asym_stack.cavity_count(), 4u);
}

// -- #suite token encoding ----------------------------------------------------

TEST(StackSpecEncoding, TokenIsWhitespaceFreeAndRoundTrips) {
  for (const StackSpec& spec :
       {niagara_stack_spec(1, CoolingType::kLiquid), tiny_inline_spec()}) {
    const std::string token = encode_stack_spec(spec);
    for (const char c : token) {
      EXPECT_FALSE(std::isspace(static_cast<unsigned char>(c)))
          << "token contains whitespace";
      EXPECT_GT(static_cast<unsigned char>(c), 0x20);
    }
    const StackSpec decoded = decode_stack_spec(token, "token");
    EXPECT_EQ(decoded.name, spec.name);
    EXPECT_EQ(stack_fingerprint(make_stack(decoded)),
              stack_fingerprint(make_stack(spec)));
  }
}

TEST(StackSpecEncoding, MalformedTokensThrow) {
  EXPECT_THROW((void)decode_stack_spec("abc%2", "t"), ConfigError);
  EXPECT_THROW((void)decode_stack_spec("abc%zz1", "t"), ConfigError);
}

// -- Axis resolution ----------------------------------------------------------

TEST(StackAxis, ResolvesEmbeddedThenPresetThenFile) {
  // Embedded specs win over everything.
  StackSpec embedded = tiny_inline_spec();
  embedded.name = "niagara-2layer";  // shadows the preset deliberately
  const StackSpec via_embedded =
      resolve_stack_axis("niagara-2layer", CoolingType::kLiquid, {embedded});
  EXPECT_EQ(make_stack(via_embedded).layer_count(), 1u);

  // Preset, adapted to the requested cooling.
  const StackSpec via_preset =
      resolve_stack_axis("niagara-2layer", CoolingType::kAir, {});
  EXPECT_EQ(via_preset.cooling, CoolingType::kAir);

  // File path: the axis string becomes the spec's name.
  const std::string dir = std::filesystem::temp_directory_path().string();
  const std::string path = dir + "/liquid3d_axis_test.stack";
  {
    std::ofstream out(path);
    write_stack_file(out, tiny_inline_spec());
  }
  const StackSpec via_file =
      resolve_stack_axis(path, CoolingType::kLiquid, {});
  EXPECT_EQ(via_file.name, path);
  EXPECT_EQ(stack_fingerprint(make_stack(via_file)),
            stack_fingerprint(make_stack(tiny_inline_spec())));
  // Cooling mismatch against the file is an error.
  EXPECT_THROW((void)resolve_stack_axis(path, CoolingType::kAir, {}),
               ConfigError);
  std::filesystem::remove(path);

  EXPECT_THROW((void)resolve_stack_axis("no-such-stack", CoolingType::kAir, {}),
               ConfigError);
}

// -- SimulationConfig resolution ----------------------------------------------

TEST(ConfigStackResolution, LegacyLayerPairsStillResolve) {
  SimulationConfig cfg;
  cfg.layer_pairs = 2;
  cfg.cooling = CoolingMode::kLiquidMax;
  const StackSpec spec = resolved_stack_spec(cfg);
  EXPECT_EQ(spec.name, "4layer_liquid");
  expect_stacks_identical(make_simulation_stack(cfg),
                          legacy_niagara_stack(2, CoolingType::kLiquid));
}

TEST(ConfigStackResolution, BadLayerPairsNamesTheField) {
  SimulationConfig cfg;
  cfg.layer_pairs = 3;
  try {
    (void)resolved_stack_spec(cfg);
    FAIL() << "expected ConfigError";
  } catch (const ConfigError& e) {
    EXPECT_NE(std::string(e.what()).find("layer_pairs"), std::string::npos)
        << "diagnostic: " << e.what();
  }
}

TEST(ConfigStackResolution, ExplicitSpecOverridesLayerPairs) {
  SimulationConfig cfg;
  cfg.layer_pairs = 99;  // would be rejected on its own; spec wins
  cfg.cooling = CoolingMode::kLiquidVar;
  cfg.stack = tiny_inline_spec();
  const Stack3D stack = make_simulation_stack(cfg);
  EXPECT_EQ(stack.name(), "tiny");
  EXPECT_EQ(stack.layer_count(), 1u);
}

TEST(ConfigStackResolution, CoolingMismatchNamesTheField) {
  SimulationConfig cfg;
  cfg.cooling = CoolingMode::kAir;
  cfg.stack = tiny_inline_spec();  // liquid spec
  try {
    (void)resolved_stack_spec(cfg);
    FAIL() << "expected ConfigError";
  } catch (const ConfigError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("stack"), std::string::npos) << what;
    EXPECT_NE(what.find("liquid"), std::string::npos) << what;
  }
}

TEST(ConfigStackResolution, InvalidSpecIsRejectedUpFront) {
  SimulationConfig cfg;
  cfg.cooling = CoolingMode::kLiquidVar;
  StackSpec bad = tiny_inline_spec();
  bad.cavities.clear();  // liquid spec without cavities
  cfg.stack = bad;
  EXPECT_THROW((void)resolved_stack_spec(cfg), ConfigError);
}

}  // namespace
}  // namespace liquid3d
