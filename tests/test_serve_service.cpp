// ThermalService (serve/service.hpp) and its query queue (serve/queue.hpp).
// Contracts under test: asynchronous what-if/replay answers are bit-identical
// to solo SimulationSession runs of the same cell, concurrent same-topology
// queries share lockstep batches, malformed queries fail fast through the
// future, and the session's service-facing const accessors report what a
// server needs without touching internals.
#include <gtest/gtest.h>

#include <future>
#include <vector>

#include "common/error.hpp"
#include "serve/service.hpp"
#include "sim/session.hpp"

namespace liquid3d {
namespace {

/// Small-grid what-if cell: fast enough for a unit test, full-fidelity in
/// every other respect.
WhatIfQuery small_whatif(std::uint64_t seed) {
  WhatIfQuery q;
  q.scenario = "talb-var";
  q.benchmark = "Web-med";
  q.duration_s = 2.0;
  q.seed = seed;
  q.grid_rows = 8;
  q.grid_cols = 9;
  return q;
}

void expect_bit_identical(const SimulationResult& a, const SimulationResult& b) {
  EXPECT_EQ(a.label, b.label);
  EXPECT_EQ(a.benchmark, b.benchmark);
  EXPECT_EQ(a.hotspot_percent, b.hotspot_percent);
  EXPECT_EQ(a.hotspot_max_sample, b.hotspot_max_sample);
  EXPECT_EQ(a.above_target_percent, b.above_target_percent);
  EXPECT_EQ(a.spatial_gradient_percent, b.spatial_gradient_percent);
  EXPECT_EQ(a.thermal_cycles_per_1000, b.thermal_cycles_per_1000);
  EXPECT_EQ(a.avg_tmax, b.avg_tmax);
  EXPECT_EQ(a.chip_energy_j, b.chip_energy_j);
  EXPECT_EQ(a.pump_energy_j, b.pump_energy_j);
  EXPECT_EQ(a.total_energy_j, b.total_energy_j);
  EXPECT_EQ(a.throughput_per_s, b.throughput_per_s);
  EXPECT_EQ(a.avg_utilization, b.avg_utilization);
  EXPECT_EQ(a.migrations, b.migrations);
  EXPECT_EQ(a.pump_transitions, b.pump_transitions);
  EXPECT_EQ(a.valve_transitions, b.valve_transitions);
  EXPECT_EQ(a.avg_flow_skew, b.avg_flow_skew);
  EXPECT_EQ(a.predictor_rebuilds, b.predictor_rebuilds);
  EXPECT_EQ(a.forecast_rmse, b.forecast_rmse);
  EXPECT_EQ(a.avg_pump_setting, b.avg_pump_setting);
}

SimulationResult run_solo(const SimulationConfig& cfg) {
  SimulationSession session(cfg);
  session.init();
  while (session.step()) {
  }
  return session.result();
}

TEST(ServeService, WhatIfBitIdenticalToSoloSession) {
  ThermalService service;
  const WhatIfQuery q = small_whatif(11);
  const SessionOutcome outcome = service.what_if(q).get();
  EXPECT_TRUE(outcome.trace.empty());
  expect_bit_identical(outcome.result,
                       run_solo(ThermalService::session_config(q)));
}

TEST(ServeService, ConcurrentWhatIfsShareLockstepBatches) {
  ServeParams params;
  params.queue.max_batch = 8;
  params.queue.batch_window_ms = 50.0;  // generous: all submits join one batch
  ThermalService service(params);

  std::vector<std::future<SessionOutcome>> futures;
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    futures.push_back(service.what_if(small_whatif(seed)));
  }
  std::vector<SessionOutcome> outcomes;
  for (auto& f : futures) outcomes.push_back(f.get());

  const ServeStats stats = service.stats();
  EXPECT_EQ(stats.session_queries, 4u);
  EXPECT_EQ(stats.batched_sessions, 4u);
  EXPECT_LT(stats.batches, 4u);   // same topology => grouped, not serial
  EXPECT_GE(stats.max_batch, 2u);
  EXPECT_EQ(stats.solo_fallbacks, 0u);

  // Batched answers are the solo answers, bitwise.
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    expect_bit_identical(
        outcomes[seed - 1].result,
        run_solo(ThermalService::session_config(small_whatif(seed))));
  }
}

TEST(ServeService, ReplayAppliesPhasesAndTraces) {
  ThermalService service;
  ReplayQuery q;
  q.base = small_whatif(5);
  q.base.duration_s = 3.0;
  q.phases = {{SimTime::from_s(1.0), 0.25}, {SimTime::from_s(2.0), 1.0}};
  q.trace_period_s = 0.5;

  const SessionOutcome outcome = service.replay(q).get();
  // 3 s at a 0.5 s trace period: six samples, strictly increasing time.
  ASSERT_GE(outcome.trace.size(), 5u);
  for (std::size_t i = 1; i < outcome.trace.size(); ++i) {
    EXPECT_GT(outcome.trace[i].now.as_ms(), outcome.trace[i - 1].now.as_ms());
  }

  SimulationConfig cfg = ThermalService::session_config(q.base);
  cfg.phases = q.phases;
  expect_bit_identical(outcome.result, run_solo(cfg));
}

TEST(ServeService, UnknownNamesFailFastThroughFuture) {
  ThermalService service;
  WhatIfQuery bad_scenario = small_whatif(1);
  bad_scenario.scenario = "no-such-scenario";
  EXPECT_THROW(service.what_if(bad_scenario).get(), ConfigError);

  WhatIfQuery bad_benchmark = small_whatif(1);
  bad_benchmark.benchmark = "no-such-benchmark";
  EXPECT_THROW(service.what_if(bad_benchmark).get(), ConfigError);

  // The queue stays usable after rejected submissions.
  EXPECT_NO_THROW(service.what_if(small_whatif(2)).get());
}

TEST(ServeService, SteadyQueryValidation) {
  ThermalService service;
  SteadyQuery q;
  q.config.cooling = CoolingMode::kLiquidMax;
  q.config.thermal.grid_rows = 8;
  q.config.thermal.grid_cols = 9;

  SteadyQuery bad_flow_arity = q;
  bad_flow_arity.flows_ml_per_min = {10.0};  // cavity count is > 1
  EXPECT_THROW((void)service.steady(bad_flow_arity), ConfigError);

  SteadyQuery negative_power = q;
  negative_power.core_watts = -1.0;
  EXPECT_THROW((void)service.steady(negative_power), ConfigError);

  SteadyQuery air_with_flows = q;
  air_with_flows.config.cooling = CoolingMode::kAir;
  air_with_flows.flows_ml_per_min = {10.0, 10.0, 10.0};
  EXPECT_THROW((void)service.steady(air_with_flows), ConfigError);
}

// -- Session const-inspection surface (service-facing accessors) --------------

TEST(ServeSession, ConstAccessorsExposeServiceState) {
  SimulationConfig cfg = ThermalService::session_config(small_whatif(3));
  cfg.phases = {{SimTime::from_s(1.0), 0.5}};
  SimulationSession session(cfg);
  const SimulationSession& view = session;

  session.init();
  EXPECT_EQ(view.phase_index(), 0u);
  EXPECT_GT(view.current_tmax(), cfg.thermal.inlet_temperature);
  EXPECT_EQ(view.current_tmax(), view.thermal().max_temperature());
  // talb-var steers the pump but has no valve network: empty openings.
  EXPECT_TRUE(view.valve_openings().empty());
  EXPECT_LT(view.pump_setting(), 100u);

  while (session.step()) {
  }
  // All phases fired by the end of the run.
  EXPECT_EQ(view.phase_index(), cfg.phases.size());
  EXPECT_EQ(view.current_tmax(), view.thermal().max_temperature());
}

}  // namespace
}  // namespace liquid3d
