// Floorplan geometry and the Niagara dies (geom/floorplan.hpp, niagara.hpp).
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "geom/floorplan.hpp"
#include "geom/niagara.hpp"

namespace liquid3d {
namespace {

TEST(Rect, OverlapArea) {
  const Rect a{0, 0, 2, 2};
  EXPECT_DOUBLE_EQ(a.overlap_area({1, 1, 2, 2}), 1.0);
  EXPECT_DOUBLE_EQ(a.overlap_area({2, 2, 1, 1}), 0.0);  // touching, not overlapping
  EXPECT_DOUBLE_EQ(a.overlap_area({0.5, 0.5, 1, 1}), 1.0);
  EXPECT_DOUBLE_EQ(a.overlap_area({-1, -1, 4, 4}), 4.0);
  EXPECT_TRUE(a.contains(0.0, 0.0));
  EXPECT_FALSE(a.contains(2.0, 2.0));  // half-open
}

TEST(Floorplan, RejectsOverlapsAndOutOfBounds) {
  Floorplan fp("t", 10e-3, 10e-3);
  fp.add_block({"a", BlockType::kCore, Rect{0, 0, 5e-3, 5e-3}, 0});
  EXPECT_THROW(
      fp.add_block({"b", BlockType::kCore, Rect{4e-3, 4e-3, 3e-3, 3e-3}, 1}),
      ConfigError);
  EXPECT_THROW(
      fp.add_block({"c", BlockType::kCore, Rect{8e-3, 8e-3, 5e-3, 5e-3}, 1}),
      ConfigError);
  EXPECT_THROW(fp.add_block({"d", BlockType::kCore, Rect{6e-3, 6e-3, 0, 1e-3}, 1}),
               ConfigError);
}

TEST(Floorplan, LookupsWork) {
  Floorplan fp("t", 10e-3, 10e-3);
  fp.add_block({"left", BlockType::kCore, Rect{0, 0, 5e-3, 10e-3}, 0});
  fp.add_block({"right", BlockType::kL2Cache, Rect{5e-3, 0, 5e-3, 10e-3}, 0});
  EXPECT_EQ(fp.count(BlockType::kCore), 1u);
  EXPECT_EQ(fp.find("right"), std::optional<std::size_t>{1});
  EXPECT_FALSE(fp.find("missing").has_value());
  EXPECT_EQ(fp.block_at(1e-3, 1e-3), std::optional<std::size_t>{0});
  EXPECT_EQ(fp.block_at(7e-3, 1e-3), std::optional<std::size_t>{1});
  EXPECT_NEAR(fp.coverage(), 1.0, 1e-12);
}

TEST(NiagaraCoreDie, MatchesTableIII) {
  const Floorplan fp = make_niagara_core_die();
  // Total layer area 115 mm^2.
  EXPECT_NEAR(fp.area(), 115e-6, 1e-12);
  EXPECT_EQ(fp.count(BlockType::kCore), 8u);
  EXPECT_EQ(fp.count(BlockType::kCrossbar), 1u);
  // Each core 10 mm^2 (Table III).
  for (const Block& b : fp.blocks()) {
    if (b.type == BlockType::kCore) {
      EXPECT_NEAR(b.rect.area(), 10e-6, 1e-10) << b.name;
    }
  }
  // The die is fully tiled.
  EXPECT_NEAR(fp.coverage(), 1.0, 1e-9);
}

TEST(NiagaraCacheDie, MatchesTableIII) {
  const Floorplan fp = make_niagara_cache_die();
  EXPECT_NEAR(fp.area(), 115e-6, 1e-12);
  EXPECT_EQ(fp.count(BlockType::kL2Cache), 4u);
  for (const Block& b : fp.blocks()) {
    if (b.type == BlockType::kL2Cache) {
      EXPECT_NEAR(b.rect.area(), 19e-6, 1e-10) << b.name;
    }
  }
  EXPECT_NEAR(fp.coverage(), 1.0, 1e-9);
}

TEST(NiagaraDies, CrossbarAlignsAcrossDies) {
  // TSVs live in the crossbar; the rect must be identical on both dies so
  // the bundle lines up vertically (Sec. III-A).
  const Floorplan core = make_niagara_core_die();
  const Floorplan cache = make_niagara_cache_die();
  const Block& xc = core.block(*core.find("xbar"));
  const Block& xs = cache.block(*cache.find("xbar"));
  EXPECT_DOUBLE_EQ(xc.rect.x, xs.rect.x);
  EXPECT_DOUBLE_EQ(xc.rect.y, xs.rect.y);
  EXPECT_DOUBLE_EQ(xc.rect.w, xs.rect.w);
  EXPECT_DOUBLE_EQ(xc.rect.h, xs.rect.h);
  // ~14 mm^2 central crossbar.
  EXPECT_NEAR(xc.rect.area(), 14e-6, 0.5e-6);
}

TEST(NiagaraCoreDie, CoreIndicesAreStable) {
  const Floorplan fp = make_niagara_core_die();
  std::size_t idx = 0;
  for (const Block& b : fp.blocks()) {
    if (b.type != BlockType::kCore) continue;
    EXPECT_EQ(b.type_index, idx);
    EXPECT_EQ(b.name, "core" + std::to_string(idx));
    ++idx;
  }
  EXPECT_EQ(idx, 8u);
}

}  // namespace
}  // namespace liquid3d
