// serve_ctl — command-line front end for the always-on thermal service.
//
// One binary, five subcommands, each usable against an in-process service
// (default) or a running serve_daemon (`--connect HOST:PORT|unix:PATH`):
//
//   serve_ctl steady [system flags] [--core-watts W] [--pump-setting N]
//            [--flows a,b,..] [--valves a,b,..] [--reference C]
//            [--max-error K] [--force-full] [--repeat N]
//       One steady T_max query.  --repeat re-issues it against the warm
//       service and reports p50/p99 latency (service-side compute latency
//       in-process, client-observed round-trip over the wire).
//   serve_ctl whatif --scenario NAME --benchmark NAME [--duration-s S]
//            [--seed N] [system flags]
//       One full-fidelity scenario run through the async queue.
//   serve_ctl replay [whatif flags] [--phase T:SCALE]... [--trace-period-s S]
//       Transient replay over a workload phase schedule; prints the trace.
//   serve_ctl burst --count N [whatif flags] [--steady N] [--verify]
//       Fire a mixed burst (N what-if + steady queries + one replay)
//       concurrently — one connection per in-flight query over the wire —
//       wait, and print service statistics.  Typed transport rejections
//       (overloaded / shutting-down / deadline-exceeded) are counted and
//       reported, not fatal: a draining server answering "shutting-down"
//       is correct behaviour, not a client failure.  --verify re-runs
//       every answered what-if through a solo SimulationSession and
//       requires bit-identical results — the CI smoke check that service
//       answers (batched, and over the wire) match single-shot runs
//       exactly.
//   serve_ctl stats --connect ENDPOINT [--reset-hwm]
//       Print the daemon's ServeStats counters, including the wire_*
//       transport counters.  Answered inline by the server (bypasses
//       admission), so it works against an overloaded daemon.
//       --reset-hwm zeroes the windowed queue high-water mark after
//       reporting it (the lifetime HWM is never reset).
//   serve_ctl metrics --connect ENDPOINT
//       Scrape the daemon's Prometheus-style metrics exposition (the
//       global obs registry plus the ServeStats counters).
//   serve_ctl trace --connect ENDPOINT [--limit N]
//       Dump the daemon's most recent query spans (requires the daemon
//       to run with LIQUID3D_TRACE=1).
//
// Exit codes: 0 success, 1 verification mismatch, 2 usage/config error.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <future>
#include <iostream>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "common/error.hpp"
#include "common/flags.hpp"
#include "geom/stack_spec.hpp"
#include "serve/net/client.hpp"
#include "serve/service.hpp"

namespace {

using namespace liquid3d;

int usage(const char* argv0) {
  std::cerr
      << "usage: " << argv0 << " COMMAND [options]\n"
      << "\n"
      << "global options (every command):\n"
      << "  --connect HOST:PORT|unix:PATH   query a running serve_daemon\n"
      << "  --deadline-ms D                 per-request deadline (wire only)\n"
      << "\n"
      << "  steady [--cooling liquid|air] [--layer-pairs N] [--stack AXIS]\n"
      << "         [--grid-rows N] [--grid-cols N] [--core-watts W]\n"
      << "         [--pump-setting N] [--flows a,b,..] [--valves a,b,..]\n"
      << "         [--reference C] [--max-error K] [--force-full]\n"
      << "         [--repeat N]\n"
      << "  whatif --scenario NAME --benchmark NAME [--duration-s S]\n"
      << "         [--seed N] [--layer-pairs N] [--stack AXIS]\n"
      << "         [--grid-rows N] [--grid-cols N]\n"
      << "  replay [whatif options] [--phase T:SCALE]... [--trace-period-s S]\n"
      << "  burst  --count N [whatif options] [--steady N] [--verify]\n"
      << "  stats  --connect ENDPOINT [--reset-hwm]\n"
      << "  metrics --connect ENDPOINT      Prometheus-style exposition\n"
      << "  trace  --connect ENDPOINT [--limit N]   recent query spans\n";
  return 2;
}

// -- backends -----------------------------------------------------------------

/// Where queries go: an in-process ThermalService or a daemon over the
/// wire.  Answers are bit-identical either way (locked by `burst --verify`
/// and the ServeNet tests), so subcommands are written once against this.
class Backend {
 public:
  virtual ~Backend() = default;
  virtual SteadyAnswer steady(const SteadyQuery& q) = 0;
  virtual SessionOutcome what_if(const WhatIfQuery& q) = 0;
  virtual SessionOutcome replay(const ReplayQuery& q) = 0;
  virtual ServeStats stats() = 0;
};

class LocalBackend : public Backend {
 public:
  explicit LocalBackend(ServeParams params) : service_(params) {}
  ThermalService& service() { return service_; }
  SteadyAnswer steady(const SteadyQuery& q) override { return service_.steady(q); }
  SessionOutcome what_if(const WhatIfQuery& q) override {
    return service_.what_if(q).get();
  }
  SessionOutcome replay(const ReplayQuery& q) override {
    return service_.replay(q).get();
  }
  ServeStats stats() override { return service_.stats(); }

 private:
  ThermalService service_;
};

class WireBackend : public Backend {
 public:
  WireBackend(const Endpoint& ep, double deadline_ms) : client_(ep) {
    client_.set_deadline_ms(deadline_ms);
  }
  SteadyAnswer steady(const SteadyQuery& q) override { return client_.steady(q); }
  SessionOutcome what_if(const WhatIfQuery& q) override {
    return client_.what_if(q);
  }
  SessionOutcome replay(const ReplayQuery& q) override {
    return client_.replay(q);
  }
  ServeStats stats() override { return client_.stats(); }

 private:
  ServeClient client_;
};

/// Cross-cutting connection options, registered on every subcommand.
struct ConnectOpts {
  std::string connect;  ///< empty = in-process
  double deadline_ms = 0.0;

  [[nodiscard]] bool wire() const { return !connect.empty(); }
  [[nodiscard]] Endpoint endpoint() const {
    return parse_endpoint(connect, "--connect");
  }
  [[nodiscard]] std::unique_ptr<Backend> make(ServeParams local = {}) const {
    if (wire()) return std::make_unique<WireBackend>(endpoint(), deadline_ms);
    return std::make_unique<LocalBackend>(local);
  }
  void register_on(FlagSet& flags) {
    flags.text("--connect", &connect);
    flags.number("--deadline-ms", &deadline_ms);
  }
};

// -- shared flag groups -------------------------------------------------------

std::vector<double> split_doubles(const std::string& s, const std::string& flag) {
  std::vector<double> out;
  for (std::size_t pos = 0; pos <= s.size();) {
    const std::size_t comma = std::min(s.find(',', pos), s.size());
    const std::string item = s.substr(pos, comma - pos);
    if (!item.empty()) out.push_back(parse_double(item, flag));
    pos = comma + 1;
  }
  return out;
}

/// System-identity axes shared by every query family.  `cooling` is read
/// lazily (at --stack resolution a steady command may have set it first).
void register_system_flags(FlagSet& flags, WhatIfQuery* q,
                           const CoolingMode* cooling) {
  flags.number("--layer-pairs", &q->layer_pairs);
  flags.value("--stack", [q, cooling](const std::string& v) {
    const CoolingType type = *cooling == CoolingMode::kAir
                                 ? CoolingType::kAir
                                 : CoolingType::kLiquid;
    q->stack = resolve_stack_axis(v, type, {});
  });
  flags.number("--grid-rows", &q->grid_rows);
  flags.number("--grid-cols", &q->grid_cols);
}

void register_whatif_flags(FlagSet& flags, WhatIfQuery* q) {
  flags.text("--scenario", &q->scenario);
  flags.text("--benchmark", &q->benchmark);
  flags.number("--duration-s", &q->duration_s);
  flags.number("--seed", &q->seed);
}

void require_whatif(const WhatIfQuery& q) {
  LIQUID3D_REQUIRE(!q.scenario.empty(), "--scenario is required");
  LIQUID3D_REQUIRE(!q.benchmark.empty(), "--benchmark is required");
}

void print_result(const SimulationResult& r) {
  std::printf("label=%s benchmark=%s\n", r.label.c_str(), r.benchmark.c_str());
  std::printf("peak_tmax_c=%.3f avg_tmax_c=%.3f hotspot_pct=%.2f\n",
              r.hotspot_max_sample, r.avg_tmax, r.hotspot_percent);
  std::printf("energy_j=%.2f throughput_per_s=%.2f migrations=%zu\n",
              r.total_energy_j, r.throughput_per_s, r.migrations);
}

[[nodiscard]] bool results_equal(const SimulationResult& a,
                                 const SimulationResult& b) {
  return a.label == b.label && a.benchmark == b.benchmark &&
         a.hotspot_percent == b.hotspot_percent &&
         a.hotspot_max_sample == b.hotspot_max_sample &&
         a.above_target_percent == b.above_target_percent &&
         a.spatial_gradient_percent == b.spatial_gradient_percent &&
         a.thermal_cycles_per_1000 == b.thermal_cycles_per_1000 &&
         a.avg_tmax == b.avg_tmax && a.chip_energy_j == b.chip_energy_j &&
         a.pump_energy_j == b.pump_energy_j &&
         a.total_energy_j == b.total_energy_j &&
         a.throughput_per_s == b.throughput_per_s &&
         a.avg_utilization == b.avg_utilization &&
         a.migrations == b.migrations &&
         a.pump_transitions == b.pump_transitions &&
         a.valve_transitions == b.valve_transitions &&
         a.avg_flow_skew == b.avg_flow_skew &&
         a.predictor_rebuilds == b.predictor_rebuilds &&
         a.forecast_rmse == b.forecast_rmse &&
         a.avg_pump_setting == b.avg_pump_setting;
}

// -- subcommands --------------------------------------------------------------

int cmd_steady(int argc, char** argv) {
  SteadyQuery q;
  WhatIfQuery system;  // flag container for the shared system axes
  std::size_t repeat = 1;
  CoolingMode cooling = CoolingMode::kLiquidMax;
  ConnectOpts conn;

  FlagSet flags("steady");
  conn.register_on(flags);
  register_system_flags(flags, &system, &cooling);
  flags.value("--cooling", [&cooling](const std::string& v) {
    if (v == "air") {
      cooling = CoolingMode::kAir;
    } else if (v == "liquid") {
      cooling = CoolingMode::kLiquidMax;
    } else {
      throw ConfigError("--cooling must be liquid or air, got '" + v + "'");
    }
  });
  flags.number("--core-watts", &q.core_watts);
  flags.number("--pump-setting", &q.pump_setting);
  flags.value("--flows", [&q](const std::string& v) {
    q.flows_ml_per_min = split_doubles(v, "--flows");
  });
  flags.value("--valves", [&q](const std::string& v) {
    q.valve_openings = split_doubles(v, "--valves");
  });
  flags.value("--reference", [&q](const std::string& v) {
    q.reference_c = parse_double(v, "--reference");
  });
  flags.number("--max-error", &q.max_error_c);
  flags.flag("--force-full", &q.force_full);
  flags.number("--repeat", &repeat);
  flags.parse(argc, argv);

  q.config.cooling = cooling;
  q.config.layer_pairs = system.layer_pairs;
  if (system.stack) q.config.stack = *system.stack;
  if (system.grid_rows > 0) q.config.thermal.grid_rows = system.grid_rows;
  if (system.grid_cols > 0) q.config.thermal.grid_cols = system.grid_cols;

  const std::unique_ptr<Backend> backend = conn.make();
  SteadyAnswer answer = backend->steady(q);
  if (repeat > 1) {
    // In-process the ROM compute time is the story; over the wire the
    // client-observed round trip is (that is what a remote caller pays).
    std::vector<double> lat;
    lat.reserve(repeat);
    for (std::size_t i = 0; i < repeat; ++i) {
      const auto start = std::chrono::steady_clock::now();
      answer = backend->steady(q);
      const double rtt_us = std::chrono::duration<double, std::micro>(
                                std::chrono::steady_clock::now() - start)
                                .count();
      lat.push_back(conn.wire() ? rtt_us : answer.elapsed_us);
    }
    std::sort(lat.begin(), lat.end());
    std::printf("repeat=%zu p50_us=%.1f p99_us=%.1f\n", repeat,
                lat[lat.size() / 2], lat[(lat.size() * 99) / 100]);
  }
  std::printf("t_max_c=%.4f path=%s elapsed_us=%.1f\n", answer.t_max_c,
              answer.used_rom ? "rom" : "full", answer.elapsed_us);
  if (answer.used_rom) {
    std::printf("rom_dimension=%zu estimated_error_c=%.3g certified_error_c=%.3g\n",
                answer.rom_dimension, answer.estimated_error_c,
                answer.certified_error_c);
  }
  for (std::size_t l = 0; l < answer.layer_max_c.size(); ++l) {
    std::printf("layer%zu_max_c=%.4f\n", l, answer.layer_max_c[l]);
  }
  return 0;
}

int cmd_whatif(int argc, char** argv) {
  WhatIfQuery q;
  ConnectOpts conn;
  const CoolingMode cooling = CoolingMode::kLiquidVar;
  FlagSet flags("whatif");
  conn.register_on(flags);
  register_whatif_flags(flags, &q);
  register_system_flags(flags, &q, &cooling);
  flags.parse(argc, argv);
  require_whatif(q);

  const SessionOutcome outcome = conn.make()->what_if(q);
  print_result(outcome.result);
  return 0;
}

int cmd_replay(int argc, char** argv) {
  ReplayQuery q;
  q.trace_period_s = 1.0;
  ConnectOpts conn;
  const CoolingMode cooling = CoolingMode::kLiquidVar;
  FlagSet flags("replay");
  conn.register_on(flags);
  register_whatif_flags(flags, &q.base);
  register_system_flags(flags, &q.base, &cooling);
  flags.value("--phase", [&q](const std::string& v) {
    const std::size_t colon = v.find(':');
    LIQUID3D_REQUIRE(colon != std::string::npos,
                     "--phase expects T_SECONDS:SCALE, got '" + v + "'");
    PhaseChange phase;
    phase.at = SimTime::from_s(parse_double(v.substr(0, colon), "--phase"));
    phase.utilization_scale = parse_double(v.substr(colon + 1), "--phase");
    q.phases.push_back(phase);
  });
  flags.number("--trace-period-s", &q.trace_period_s);
  flags.parse(argc, argv);
  require_whatif(q.base);

  const SessionOutcome outcome = conn.make()->replay(q);
  for (const SampleTrace& s : outcome.trace) {
    std::printf("t=%7.1fs tmax=%6.2fC pump=%zu flow=%6.1fml/min chip=%5.1fW\n",
                s.now.as_s(), s.tmax, s.pump_setting, s.flow_ml_per_min,
                s.chip_watts);
  }
  print_result(outcome.result);
  return 0;
}

/// One burst lane: the outcome, or the typed transport code that rejected
/// it (rejections are expected behaviour under overload/drain, not bugs).
struct BurstLane {
  std::optional<SessionOutcome> outcome;
  std::optional<WireErrorCode> rejected;
};

BurstLane run_wire_lane(const ConnectOpts& conn,
                        const std::function<SessionOutcome(Backend&)>& go) {
  BurstLane lane;
  try {
    WireBackend backend(conn.endpoint(), conn.deadline_ms);
    lane.outcome = go(backend);
  } catch (const WireError& e) {
    lane.rejected = e.code();
  }
  return lane;
}

int cmd_burst(int argc, char** argv) {
  std::size_t count = 8;
  std::size_t steady_count = 4;
  bool verify = false;
  WhatIfQuery base;
  ConnectOpts conn;
  const CoolingMode cooling = CoolingMode::kLiquidVar;
  FlagSet flags("burst");
  conn.register_on(flags);
  register_whatif_flags(flags, &base);
  register_system_flags(flags, &base, &cooling);
  flags.number("--count", &count);
  flags.number("--steady", &steady_count);
  flags.flag("--verify", &verify);
  flags.parse(argc, argv);
  require_whatif(base);

  // Mixed concurrent burst: what-if queries (distinct seeds — same topology,
  // so the queue batches them), one replay, and steady queries in between.
  std::vector<WhatIfQuery> queries;
  for (std::size_t i = 0; i < count; ++i) {
    WhatIfQuery q = base;
    q.seed = base.seed + i;
    queries.push_back(q);
  }
  ReplayQuery replay;
  replay.base = base;
  replay.base.seed = base.seed + count;
  replay.phases.push_back({SimTime::from_s(base.duration_s / 2), 0.5});
  replay.trace_period_s = 1.0;

  SteadyQuery steady;
  steady.config.cooling =
      ThermalService::session_config(base).cooling == CoolingMode::kAir
          ? CoolingMode::kAir
          : CoolingMode::kLiquidMax;
  steady.config.layer_pairs = base.layer_pairs;
  if (base.stack) steady.config.stack = *base.stack;
  if (base.grid_rows > 0) steady.config.thermal.grid_rows = base.grid_rows;
  if (base.grid_cols > 0) steady.config.thermal.grid_cols = base.grid_cols;

  std::vector<BurstLane> lanes(queries.size());
  BurstLane replay_lane;
  double steady_tmax = 0.0;
  std::size_t rom_answers = 0;
  std::size_t steady_rejected = 0;
  ServeStats stats;

  if (conn.wire()) {
    // One connection per in-flight query — the shape the daemon's
    // per-client fairness and admission control are built for.
    std::vector<std::thread> threads;
    threads.reserve(queries.size() + 1);
    for (std::size_t i = 0; i < queries.size(); ++i) {
      threads.emplace_back([&, i] {
        lanes[i] = run_wire_lane(
            conn, [&](Backend& b) { return b.what_if(queries[i]); });
      });
    }
    threads.emplace_back([&] {
      replay_lane =
          run_wire_lane(conn, [&](Backend& b) { return b.replay(replay); });
    });
    {
      try {
        WireBackend backend(conn.endpoint(), conn.deadline_ms);
        for (std::size_t i = 0; i < steady_count; ++i) {
          try {
            const SteadyAnswer a = backend.steady(steady);
            steady_tmax = a.t_max_c;
            rom_answers += a.used_rom ? 1 : 0;
          } catch (const WireError&) {
            ++steady_rejected;
          }
        }
        stats = backend.stats();
      } catch (const WireError&) {
        steady_rejected += steady_count;
      }
    }
    for (std::thread& t : threads) t.join();
  } else {
    ServeParams params;
    params.queue.max_batch = std::max<std::size_t>(count, 1);
    LocalBackend local(params);
    ThermalService& service = local.service();
    std::vector<std::future<SessionOutcome>> futures;
    futures.reserve(queries.size());
    for (const WhatIfQuery& q : queries) futures.push_back(service.what_if(q));
    std::future<SessionOutcome> replay_future = service.replay(replay);
    for (std::size_t i = 0; i < steady_count; ++i) {
      const SteadyAnswer a = service.steady(steady);
      steady_tmax = a.t_max_c;
      rom_answers += a.used_rom ? 1 : 0;
    }
    for (std::size_t i = 0; i < futures.size(); ++i) {
      lanes[i].outcome = futures[i].get();
    }
    replay_lane.outcome = replay_future.get();
    service.wait_idle();
    stats = service.stats();
  }

  std::size_t rejected = steady_rejected;
  std::size_t answered = 0;
  for (const BurstLane& lane : lanes) {
    if (lane.outcome) {
      ++answered;
    } else {
      ++rejected;
    }
  }
  if (!replay_lane.outcome) ++rejected;

  int failures = 0;
  if (verify) {
    // Contract: a service answer — batched in-process or through the
    // daemon — is bit-identical to a single-shot session run of the same
    // cell.  Rejected lanes have no answer to check.
    std::size_t checked = 0;
    for (std::size_t i = 0; i < queries.size(); ++i) {
      if (!lanes[i].outcome) continue;
      SimulationSession solo(ThermalService::session_config(queries[i]));
      solo.init();
      while (solo.step()) {
      }
      ++checked;
      if (!results_equal(lanes[i].outcome->result, solo.result())) {
        std::fprintf(stderr, "VERIFY MISMATCH: what-if %zu (seed %llu)\n", i,
                     static_cast<unsigned long long>(queries[i].seed));
        ++failures;
      }
    }
    std::printf("verify=%s checked=%zu\n", failures == 0 ? "ok" : "FAILED",
                checked);
  }

  std::printf("whatif=%zu rejected=%zu replay_trace=%zu steady=%zu "
              "steady_tmax_c=%.3f rom_answers=%zu\n",
              answered, rejected,
              replay_lane.outcome ? replay_lane.outcome->trace.size() : 0,
              steady_count - steady_rejected, steady_tmax, rom_answers);
  std::printf("batches=%zu batched_sessions=%zu max_batch=%zu "
              "solo_fallbacks=%zu rom_builds=%zu full_solves=%zu\n",
              stats.batches, stats.batched_sessions, stats.max_batch,
              stats.solo_fallbacks, stats.rom_builds, stats.full_solves);
  if (conn.wire()) {
    std::printf("wire_accepted=%zu wire_rejected=%zu wire_timed_out=%zu "
                "wire_connections=%zu wire_queue_hwm=%zu "
                "wire_queue_hwm_window=%zu\n",
                stats.wire_accepted, stats.wire_rejected, stats.wire_timed_out,
                stats.wire_connections, stats.wire_queue_hwm,
                stats.wire_queue_hwm_window);
  }
  return failures == 0 ? 0 : 1;
}

int cmd_stats(int argc, char** argv) {
  ConnectOpts conn;
  bool reset_hwm = false;
  FlagSet flags("stats");
  conn.register_on(flags);
  flags.flag("--reset-hwm", &reset_hwm);
  flags.parse(argc, argv);
  LIQUID3D_REQUIRE(conn.wire(),
                   "stats requires --connect (an in-process service would "
                   "have nothing to report)");

  ServeClient client(conn.endpoint());
  client.set_deadline_ms(conn.deadline_ms);
  const ServeStats s = client.stats(reset_hwm);
  std::printf("steady_queries=%zu rom_hits=%zu rom_builds=%zu "
              "rom_fallbacks=%zu rom_evictions=%zu full_solves=%zu "
              "model_evictions=%zu\n",
              s.steady_queries, s.rom_hits, s.rom_builds, s.rom_fallbacks,
              s.rom_evictions, s.full_solves, s.model_evictions);
  std::printf("session_queries=%zu batches=%zu batched_sessions=%zu "
              "max_batch=%zu solo_fallbacks=%zu\n",
              s.session_queries, s.batches, s.batched_sessions, s.max_batch,
              s.solo_fallbacks);
  std::printf("wire_accepted=%zu wire_rejected=%zu wire_timed_out=%zu "
              "wire_connections=%zu wire_queue_hwm=%zu "
              "wire_queue_hwm_window=%zu\n",
              s.wire_accepted, s.wire_rejected, s.wire_timed_out,
              s.wire_connections, s.wire_queue_hwm, s.wire_queue_hwm_window);
  return 0;
}

int cmd_metrics(int argc, char** argv) {
  ConnectOpts conn;
  FlagSet flags("metrics");
  conn.register_on(flags);
  flags.parse(argc, argv);
  LIQUID3D_REQUIRE(conn.wire(),
                   "metrics requires --connect (an in-process service would "
                   "have nothing to report)");

  ServeClient client(conn.endpoint());
  client.set_deadline_ms(conn.deadline_ms);
  std::fputs(client.metrics().c_str(), stdout);
  return 0;
}

int cmd_trace(int argc, char** argv) {
  ConnectOpts conn;
  std::size_t limit = 0;
  FlagSet flags("trace");
  conn.register_on(flags);
  flags.number("--limit", &limit);
  flags.parse(argc, argv);
  LIQUID3D_REQUIRE(conn.wire(),
                   "trace requires --connect (an in-process service would "
                   "have nothing to report)");

  ServeClient client(conn.endpoint());
  client.set_deadline_ms(conn.deadline_ms);
  const std::vector<obs::TraceSpan> spans = client.trace(limit);
  for (const obs::TraceSpan& s : spans) {
    std::printf("trace=%llu span=%u parent=%u stage=%s start_ns=%llu "
                "dur_us=%.1f\n",
                static_cast<unsigned long long>(s.trace_id), s.span_id,
                s.parent_id, s.stage.c_str(),
                static_cast<unsigned long long>(s.start_ns),
                static_cast<double>(s.end_ns - s.start_ns) * 1e-3);
  }
  std::printf("spans=%zu\n", spans.size());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage(argv[0]);
  const std::string cmd = argv[1];
  try {
    if (cmd == "steady") return cmd_steady(argc - 2, argv + 2);
    if (cmd == "whatif") return cmd_whatif(argc - 2, argv + 2);
    if (cmd == "replay") return cmd_replay(argc - 2, argv + 2);
    if (cmd == "burst") return cmd_burst(argc - 2, argv + 2);
    if (cmd == "stats") return cmd_stats(argc - 2, argv + 2);
    if (cmd == "metrics") return cmd_metrics(argc - 2, argv + 2);
    if (cmd == "trace") return cmd_trace(argc - 2, argv + 2);
    return usage(argv[0]);
  } catch (const std::exception& e) {
    std::cerr << "serve_ctl: " << e.what() << "\n";
    return 2;
  }
}
