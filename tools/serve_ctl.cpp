// serve_ctl — command-line front end for the always-on thermal service.
//
// One binary, four subcommands:
//
//   serve_ctl steady [system flags] [--core-watts W] [--pump-setting N]
//            [--flows a,b,..] [--valves a,b,..] [--reference C]
//            [--max-error K] [--force-full] [--repeat N]
//       One steady T_max query.  --repeat re-issues it against the warm
//       service and reports p50/p99 latency; the first call pays the ROM
//       build, the rest answer from the cache.
//   serve_ctl whatif --scenario NAME --benchmark NAME [--duration-s S]
//            [--seed N] [system flags]
//       One full-fidelity scenario run through the async queue.
//   serve_ctl replay [whatif flags] [--phase T:SCALE]... [--trace-period-s S]
//       Transient replay over a workload phase schedule; prints the trace.
//   serve_ctl burst --count N [whatif flags] [--steady N] [--verify]
//       Fire a mixed burst (N what-if + steady queries + one replay)
//       concurrently, wait, and print service statistics.  --verify re-runs
//       every what-if answer through a solo SimulationSession and requires
//       bit-identical results — the CI smoke check that batched service
//       answers match single-shot runs exactly.
//
// Exit codes: 0 success, 1 verification mismatch, 2 usage/config error.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <future>
#include <iostream>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "common/parse.hpp"
#include "geom/stack_spec.hpp"
#include "serve/service.hpp"

namespace {

using namespace liquid3d;

int usage(const char* argv0) {
  std::cerr
      << "usage: " << argv0 << " COMMAND [options]\n"
      << "\n"
      << "  steady [--cooling liquid|air] [--layer-pairs N] [--stack AXIS]\n"
      << "         [--grid-rows N] [--grid-cols N] [--core-watts W]\n"
      << "         [--pump-setting N] [--flows a,b,..] [--valves a,b,..]\n"
      << "         [--reference C] [--max-error K] [--force-full]\n"
      << "         [--repeat N]\n"
      << "  whatif --scenario NAME --benchmark NAME [--duration-s S]\n"
      << "         [--seed N] [--layer-pairs N] [--stack AXIS]\n"
      << "         [--grid-rows N] [--grid-cols N]\n"
      << "  replay [whatif options] [--phase T:SCALE]... [--trace-period-s S]\n"
      << "  burst  --count N [whatif options] [--steady N] [--verify]\n";
  return 2;
}

/// Minimal flag cursor: options take one value unless noted.
class Args {
 public:
  Args(int argc, char** argv) : argc_(argc), argv_(argv) {}
  [[nodiscard]] bool done() const { return i_ >= argc_; }
  [[nodiscard]] std::string take() { return argv_[i_++]; }
  [[nodiscard]] std::string value(const std::string& flag) {
    LIQUID3D_REQUIRE(i_ < argc_, "missing value for " + flag);
    return argv_[i_++];
  }

 private:
  int argc_;
  char** argv_;
  int i_ = 0;
};

std::vector<double> split_doubles(const std::string& s, const std::string& flag) {
  std::vector<double> out;
  std::string item;
  for (std::size_t pos = 0; pos <= s.size();) {
    const std::size_t comma = std::min(s.find(',', pos), s.size());
    item = s.substr(pos, comma - pos);
    if (!item.empty()) out.push_back(parse_double(item, flag));
    pos = comma + 1;
  }
  return out;
}

/// Shared system-identity flags.  Returns true when `flag` was consumed.
bool parse_system_flag(const std::string& flag, Args& args, WhatIfQuery& q,
                       CoolingMode cooling) {
  if (flag == "--layer-pairs") {
    q.layer_pairs = static_cast<std::size_t>(parse_u64(args.value(flag), flag));
  } else if (flag == "--stack") {
    const CoolingType type = cooling == CoolingMode::kAir ? CoolingType::kAir
                                                          : CoolingType::kLiquid;
    q.stack = resolve_stack_axis(args.value(flag), type, {});
  } else if (flag == "--grid-rows") {
    q.grid_rows = static_cast<std::size_t>(parse_u64(args.value(flag), flag));
  } else if (flag == "--grid-cols") {
    q.grid_cols = static_cast<std::size_t>(parse_u64(args.value(flag), flag));
  } else {
    return false;
  }
  return true;
}

void print_result(const SimulationResult& r) {
  std::printf("label=%s benchmark=%s\n", r.label.c_str(), r.benchmark.c_str());
  std::printf("peak_tmax_c=%.3f avg_tmax_c=%.3f hotspot_pct=%.2f\n",
              r.hotspot_max_sample, r.avg_tmax, r.hotspot_percent);
  std::printf("energy_j=%.2f throughput_per_s=%.2f migrations=%zu\n",
              r.total_energy_j, r.throughput_per_s, r.migrations);
}

[[nodiscard]] bool results_equal(const SimulationResult& a,
                                 const SimulationResult& b) {
  return a.label == b.label && a.benchmark == b.benchmark &&
         a.hotspot_percent == b.hotspot_percent &&
         a.hotspot_max_sample == b.hotspot_max_sample &&
         a.above_target_percent == b.above_target_percent &&
         a.spatial_gradient_percent == b.spatial_gradient_percent &&
         a.thermal_cycles_per_1000 == b.thermal_cycles_per_1000 &&
         a.avg_tmax == b.avg_tmax && a.chip_energy_j == b.chip_energy_j &&
         a.pump_energy_j == b.pump_energy_j &&
         a.total_energy_j == b.total_energy_j &&
         a.throughput_per_s == b.throughput_per_s &&
         a.avg_utilization == b.avg_utilization &&
         a.migrations == b.migrations &&
         a.pump_transitions == b.pump_transitions &&
         a.valve_transitions == b.valve_transitions &&
         a.avg_flow_skew == b.avg_flow_skew &&
         a.predictor_rebuilds == b.predictor_rebuilds &&
         a.forecast_rmse == b.forecast_rmse &&
         a.avg_pump_setting == b.avg_pump_setting;
}

int cmd_steady(Args& args) {
  SteadyQuery q;
  WhatIfQuery system;  // reused only as a flag container for the system axes
  std::size_t repeat = 1;
  CoolingMode cooling = CoolingMode::kLiquidMax;
  std::vector<std::string> deferred;
  while (!args.done()) {
    const std::string flag = args.take();
    if (flag == "--cooling") {
      const std::string v = args.value(flag);
      if (v == "air") {
        cooling = CoolingMode::kAir;
      } else if (v == "liquid") {
        cooling = CoolingMode::kLiquidMax;
      } else {
        throw ConfigError("--cooling must be liquid or air, got '" + v + "'");
      }
    } else if (flag == "--core-watts") {
      q.core_watts = parse_double(args.value(flag), flag);
    } else if (flag == "--pump-setting") {
      q.pump_setting = static_cast<std::size_t>(parse_u64(args.value(flag), flag));
    } else if (flag == "--flows") {
      q.flows_ml_per_min = split_doubles(args.value(flag), flag);
    } else if (flag == "--valves") {
      q.valve_openings = split_doubles(args.value(flag), flag);
    } else if (flag == "--reference") {
      q.reference_c = parse_double(args.value(flag), flag);
    } else if (flag == "--max-error") {
      q.max_error_c = parse_double(args.value(flag), flag);
    } else if (flag == "--force-full") {
      q.force_full = true;
    } else if (flag == "--repeat") {
      repeat = static_cast<std::size_t>(parse_u64(args.value(flag), flag));
    } else if (parse_system_flag(flag, args, system, cooling)) {
    } else {
      throw ConfigError("unknown steady flag: " + flag);
    }
  }
  q.config.cooling = cooling;
  q.config.layer_pairs = system.layer_pairs;
  if (system.stack) q.config.stack = *system.stack;
  if (system.grid_rows > 0) q.config.thermal.grid_rows = system.grid_rows;
  if (system.grid_cols > 0) q.config.thermal.grid_cols = system.grid_cols;

  ThermalService service;
  SteadyAnswer answer = service.steady(q);
  if (repeat > 1) {
    std::vector<double> lat;
    lat.reserve(repeat);
    for (std::size_t i = 0; i < repeat; ++i) {
      answer = service.steady(q);
      lat.push_back(answer.elapsed_us);
    }
    std::sort(lat.begin(), lat.end());
    std::printf("repeat=%zu p50_us=%.1f p99_us=%.1f\n", repeat,
                lat[lat.size() / 2], lat[(lat.size() * 99) / 100]);
  }
  std::printf("t_max_c=%.4f path=%s elapsed_us=%.1f\n", answer.t_max_c,
              answer.used_rom ? "rom" : "full", answer.elapsed_us);
  if (answer.used_rom) {
    std::printf("rom_dimension=%zu estimated_error_c=%.3g certified_error_c=%.3g\n",
                answer.rom_dimension, answer.estimated_error_c,
                answer.certified_error_c);
  }
  for (std::size_t l = 0; l < answer.layer_max_c.size(); ++l) {
    std::printf("layer%zu_max_c=%.4f\n", l, answer.layer_max_c[l]);
  }
  return 0;
}

WhatIfQuery parse_whatif_flags(Args& args, std::vector<PhaseChange>* phases,
                               double* trace_period_s, std::size_t* count,
                               std::size_t* steady_count, bool* verify) {
  WhatIfQuery q;
  while (!args.done()) {
    const std::string flag = args.take();
    if (flag == "--scenario") {
      q.scenario = args.value(flag);
    } else if (flag == "--benchmark") {
      q.benchmark = args.value(flag);
    } else if (flag == "--duration-s") {
      q.duration_s = parse_double(args.value(flag), flag);
    } else if (flag == "--seed") {
      q.seed = parse_u64(args.value(flag), flag);
    } else if (phases != nullptr && flag == "--phase") {
      const std::string v = args.value(flag);
      const std::size_t colon = v.find(':');
      LIQUID3D_REQUIRE(colon != std::string::npos,
                       "--phase expects T_SECONDS:SCALE, got '" + v + "'");
      PhaseChange phase;
      phase.at = SimTime::from_s(parse_double(v.substr(0, colon), flag));
      phase.utilization_scale = parse_double(v.substr(colon + 1), flag);
      phases->push_back(phase);
    } else if (trace_period_s != nullptr && flag == "--trace-period-s") {
      *trace_period_s = parse_double(args.value(flag), flag);
    } else if (count != nullptr && flag == "--count") {
      *count = static_cast<std::size_t>(parse_u64(args.value(flag), flag));
    } else if (steady_count != nullptr && flag == "--steady") {
      *steady_count = static_cast<std::size_t>(parse_u64(args.value(flag), flag));
    } else if (verify != nullptr && flag == "--verify") {
      *verify = true;
    } else if (parse_system_flag(flag, args, q, CoolingMode::kLiquidVar)) {
    } else {
      throw ConfigError("unknown flag: " + flag);
    }
  }
  LIQUID3D_REQUIRE(!q.scenario.empty(), "--scenario is required");
  LIQUID3D_REQUIRE(!q.benchmark.empty(), "--benchmark is required");
  return q;
}

int cmd_whatif(Args& args) {
  const WhatIfQuery q =
      parse_whatif_flags(args, nullptr, nullptr, nullptr, nullptr, nullptr);
  ThermalService service;
  SessionOutcome outcome = service.what_if(q).get();
  print_result(outcome.result);
  return 0;
}

int cmd_replay(Args& args) {
  ReplayQuery q;
  q.trace_period_s = 1.0;
  q.base = parse_whatif_flags(args, &q.phases, &q.trace_period_s, nullptr,
                              nullptr, nullptr);
  ThermalService service;
  SessionOutcome outcome = service.replay(q).get();
  for (const SampleTrace& s : outcome.trace) {
    std::printf("t=%7.1fs tmax=%6.2fC pump=%zu flow=%6.1fml/min chip=%5.1fW\n",
                s.now.as_s(), s.tmax, s.pump_setting, s.flow_ml_per_min,
                s.chip_watts);
  }
  print_result(outcome.result);
  return 0;
}

int cmd_burst(Args& args) {
  std::size_t count = 8;
  std::size_t steady_count = 4;
  bool verify = false;
  WhatIfQuery base =
      parse_whatif_flags(args, nullptr, nullptr, &count, &steady_count, &verify);

  ServeParams params;
  params.queue.max_batch = std::max<std::size_t>(count, 1);
  ThermalService service(params);

  // Mixed concurrent burst: what-if queries (distinct seeds — same topology,
  // so the queue batches them), one replay, and steady queries in between.
  std::vector<std::future<SessionOutcome>> futures;
  std::vector<WhatIfQuery> queries;
  for (std::size_t i = 0; i < count; ++i) {
    WhatIfQuery q = base;
    q.seed = base.seed + i;
    queries.push_back(q);
    futures.push_back(service.what_if(q));
  }
  ReplayQuery replay;
  replay.base = base;
  replay.base.seed = base.seed + count;
  replay.phases.push_back({SimTime::from_s(base.duration_s / 2), 0.5});
  replay.trace_period_s = 1.0;
  std::future<SessionOutcome> replay_future = service.replay(replay);

  SteadyQuery steady;
  steady.config.cooling =
      ThermalService::session_config(base).cooling == CoolingMode::kAir
          ? CoolingMode::kAir
          : CoolingMode::kLiquidMax;
  steady.config.layer_pairs = base.layer_pairs;
  if (base.stack) steady.config.stack = *base.stack;
  if (base.grid_rows > 0) steady.config.thermal.grid_rows = base.grid_rows;
  if (base.grid_cols > 0) steady.config.thermal.grid_cols = base.grid_cols;
  double steady_tmax = 0.0;
  std::size_t rom_answers = 0;
  for (std::size_t i = 0; i < steady_count; ++i) {
    const SteadyAnswer a = service.steady(steady);
    steady_tmax = a.t_max_c;
    rom_answers += a.used_rom ? 1 : 0;
  }

  std::vector<SessionOutcome> outcomes;
  outcomes.reserve(futures.size());
  for (std::future<SessionOutcome>& f : futures) outcomes.push_back(f.get());
  const SessionOutcome replay_outcome = replay_future.get();
  service.wait_idle();

  int failures = 0;
  if (verify) {
    // Contract: a batched service answer is bit-identical to a single-shot
    // session run of the same cell.
    for (std::size_t i = 0; i < queries.size(); ++i) {
      SimulationSession solo(ThermalService::session_config(queries[i]));
      solo.init();
      while (solo.step()) {
      }
      if (!results_equal(outcomes[i].result, solo.result())) {
        std::fprintf(stderr, "VERIFY MISMATCH: what-if %zu (seed %llu)\n", i,
                     static_cast<unsigned long long>(queries[i].seed));
        ++failures;
      }
    }
    std::printf("verify=%s checked=%zu\n", failures == 0 ? "ok" : "FAILED",
                queries.size());
  }

  const ServeStats stats = service.stats();
  std::printf("whatif=%zu replay_trace=%zu steady=%zu steady_tmax_c=%.3f "
              "rom_answers=%zu\n",
              outcomes.size(), replay_outcome.trace.size(), steady_count,
              steady_tmax, rom_answers);
  std::printf("batches=%zu batched_sessions=%zu max_batch=%zu "
              "solo_fallbacks=%zu rom_builds=%zu full_solves=%zu\n",
              stats.batches, stats.batched_sessions, stats.max_batch,
              stats.solo_fallbacks, stats.rom_builds, stats.full_solves);
  return failures == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage(argv[0]);
  Args args(argc - 2, argv + 2);
  const std::string cmd = argv[1];
  try {
    if (cmd == "steady") return cmd_steady(args);
    if (cmd == "whatif") return cmd_whatif(args);
    if (cmd == "replay") return cmd_replay(args);
    if (cmd == "burst") return cmd_burst(args);
    return usage(argv[0]);
  } catch (const std::exception& e) {
    std::cerr << "serve_ctl: " << e.what() << "\n";
    return 2;
  }
}
