// sweep_worker — the distributed-sweep command-line driver.
//
// One binary, four subcommands, so an orchestration script (or a cluster
// job array) needs a single artifact:
//
//   sweep_worker plan   --shards K --out-dir DIR [grid flags]
//       Expand the grid, partition it, write DIR/<prefix>-plan.csv plus one
//       shard file per worker.
//   sweep_worker run    --shard FILE --journal FILE [--batch N]
//       Run (or resume) one shard; every completed cell is fsync'd into the
//       journal, so `kill -9` mid-run loses at most one chunk.
//   sweep_worker merge  --plan FILE --out FILE JOURNAL...
//       Fold the journals into the merged summaries CSV (and optional
//       JSON), bit-identical to a single-process run of the grid.
//   sweep_worker single --plan FILE --out FILE
//       The single-process reference: ExperimentSuite::run on the plan's
//       grid, exported through the same writers — `diff` against the merged
//       output is the end-to-end determinism check CI performs.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "common/parse.hpp"
#include "sim/report.hpp"
#include "sweep/merge.hpp"
#include "sweep/plan.hpp"
#include "sweep/worker.hpp"
#include "workload/benchmarks.hpp"

namespace {

using namespace liquid3d;

int usage(const char* argv0) {
  std::cerr
      << "usage: " << argv0 << " COMMAND [options]\n"
      << "\n"
      << "  plan   --shards K --out-dir DIR [--prefix sweep]\n"
      << "         [--strategy round-robin|cost] [--scenarios a,b,...]\n"
      << "         [--workloads x,y,...] [--layer-pairs N] [--duration-s S]\n"
      << "         [--seed N] [--dpm 0|1] [--grid-rows N] [--grid-cols N]\n"
      << "  run    --shard FILE --journal FILE [--batch N] [--max-cells N]\n"
      << "         [--execution batched|threadpool] [--threads N]\n"
      << "  merge  --plan FILE --out FILE [--json FILE] JOURNAL...\n"
      << "  single --plan FILE --out FILE [--json FILE]\n";
  return 2;
}

/// Minimal flag cursor: every option takes exactly one value.
class Args {
 public:
  Args(int argc, char** argv) : argc_(argc), argv_(argv) {}

  [[nodiscard]] bool next_is_flag() const {
    return i_ < argc_ && argv_[i_][0] == '-';
  }
  [[nodiscard]] bool done() const { return i_ >= argc_; }
  [[nodiscard]] std::string take() { return argv_[i_++]; }
  [[nodiscard]] std::string value(const std::string& flag) {
    LIQUID3D_REQUIRE(i_ < argc_, "missing value for " + flag);
    return argv_[i_++];
  }

 private:
  int argc_;
  char** argv_;
  int i_ = 0;
};

std::vector<std::string> split_csv_list(const std::string& s) {
  std::vector<std::string> out;
  std::istringstream in(s);
  std::string item;
  while (std::getline(in, item, ',')) {
    if (!item.empty()) out.push_back(item);
  }
  return out;
}

void write_report_files(const std::vector<PolicySummary>& summaries,
                        const std::string& csv_path,
                        const std::string& json_path) {
  std::ofstream csv(csv_path);
  LIQUID3D_REQUIRE(csv.good(), "cannot open '" + csv_path + "' for writing");
  write_summaries_csv(csv, summaries);
  LIQUID3D_REQUIRE(csv.good(), "write to '" + csv_path + "' failed");
  if (!json_path.empty()) {
    std::ofstream json(json_path);
    LIQUID3D_REQUIRE(json.good(), "cannot open '" + json_path + "' for writing");
    write_summaries_json(json, summaries);
  }
}

int cmd_plan(Args& args) {
  SweepGridSpec grid;
  grid.duration = SimTime::from_s(60);
  std::vector<std::string> scenario_names;
  std::size_t shards = 0;
  ShardStrategy strategy = ShardStrategy::kRoundRobin;
  std::string out_dir;
  std::string prefix = "sweep";

  while (!args.done()) {
    const std::string flag = args.take();
    if (flag == "--shards") {
      shards = static_cast<std::size_t>(parse_u64(args.value(flag), flag));
    } else if (flag == "--out-dir") {
      out_dir = args.value(flag);
    } else if (flag == "--prefix") {
      prefix = args.value(flag);
    } else if (flag == "--strategy") {
      strategy = shard_strategy_from_name(args.value(flag));
    } else if (flag == "--scenarios") {
      scenario_names = split_csv_list(args.value(flag));
    } else if (flag == "--workloads") {
      grid.workloads = split_csv_list(args.value(flag));
    } else if (flag == "--layer-pairs") {
      grid.layer_pairs = static_cast<std::size_t>(parse_u64(args.value(flag), flag));
    } else if (flag == "--duration-s") {
      grid.duration = SimTime::from_s(parse_double(args.value(flag), flag));
    } else if (flag == "--seed") {
      grid.seed = parse_u64(args.value(flag), flag);
    } else if (flag == "--dpm") {
      grid.dpm_enabled = parse_u64(args.value(flag), flag) != 0;
    } else if (flag == "--grid-rows") {
      grid.grid_rows = static_cast<std::size_t>(parse_u64(args.value(flag), flag));
    } else if (flag == "--grid-cols") {
      grid.grid_cols = static_cast<std::size_t>(parse_u64(args.value(flag), flag));
    } else {
      throw ConfigError("unknown plan option '" + flag + "'");
    }
  }
  LIQUID3D_REQUIRE(shards >= 1, "plan requires --shards >= 1");
  LIQUID3D_REQUIRE(!out_dir.empty(), "plan requires --out-dir");

  if (scenario_names.empty()) {
    grid.scenarios = paper_scenario_grid();
  } else {
    for (const std::string& name : scenario_names) {
      grid.scenarios.push_back(ScenarioRegistry::global().at(name));
    }
  }
  if (grid.workloads.empty()) {
    for (const BenchmarkSpec& b : table2_benchmarks()) {
      grid.workloads.push_back(b.name);
    }
  } else {
    for (const std::string& name : grid.workloads) {
      LIQUID3D_REQUIRE(find_benchmark(name).has_value(),
                       "unknown workload '" + name + "'");
    }
  }

  const std::vector<std::string> shard_paths =
      write_sweep_plan(grid, shards, strategy, out_dir, prefix);
  std::cout << "planned " << grid.cell_count() << " cells ("
            << grid.scenarios.size() << " scenarios x "
            << grid.workloads.size() << " workloads) into "
            << shard_paths.size() << " shards [" << to_string(strategy)
            << "]\n";
  std::cout << "plan: " << out_dir << "/" << prefix << "-plan.csv\n";
  for (const std::string& p : shard_paths) std::cout << "shard: " << p << "\n";
  return 0;
}

int cmd_run(Args& args) {
  std::string shard_path;
  std::string journal_path;
  SweepWorkerOptions options;

  while (!args.done()) {
    const std::string flag = args.take();
    if (flag == "--shard") {
      shard_path = args.value(flag);
    } else if (flag == "--journal") {
      journal_path = args.value(flag);
    } else if (flag == "--batch") {
      options.batch_limit =
          static_cast<std::size_t>(parse_u64(args.value(flag), flag));
    } else if (flag == "--max-cells") {
      options.max_new_cells =
          static_cast<std::size_t>(parse_u64(args.value(flag), flag));
    } else if (flag == "--threads") {
      options.worker_threads =
          static_cast<std::size_t>(parse_u64(args.value(flag), flag));
    } else if (flag == "--execution") {
      const std::string mode = args.value(flag);
      if (mode == "batched") {
        options.execution = SuiteExecution::kBatched;
      } else if (mode == "threadpool") {
        options.execution = SuiteExecution::kThreadPool;
      } else {
        throw ConfigError("unknown execution mode '" + mode + "'");
      }
    } else {
      throw ConfigError("unknown run option '" + flag + "'");
    }
  }
  LIQUID3D_REQUIRE(!shard_path.empty() && !journal_path.empty(),
                   "run requires --shard and --journal");

  const SweepCellFile shard = read_sweep_file(shard_path);
  const SweepWorkerStats stats =
      run_sweep_shard(shard, journal_path, options);
  std::cout << "shard " << shard_path << ": " << stats.completed
            << " cells run, " << stats.already_done << " resumed, "
            << stats.remaining << " remaining (of " << stats.total_cells
            << ")\n";
  return stats.remaining == 0 ? 0 : 3;  // 3 = incomplete (max-cells cutoff)
}

int cmd_merge(Args& args) {
  std::string plan_path;
  std::string out_path;
  std::string json_path;
  std::vector<std::string> journals;

  while (!args.done()) {
    if (!args.next_is_flag()) {
      journals.push_back(args.take());
      continue;
    }
    const std::string flag = args.take();
    if (flag == "--plan") {
      plan_path = args.value(flag);
    } else if (flag == "--out") {
      out_path = args.value(flag);
    } else if (flag == "--json") {
      json_path = args.value(flag);
    } else {
      throw ConfigError("unknown merge option '" + flag + "'");
    }
  }
  LIQUID3D_REQUIRE(!plan_path.empty() && !out_path.empty(),
                   "merge requires --plan and --out");
  LIQUID3D_REQUIRE(!journals.empty(), "merge requires at least one journal");

  SweepMergeStats stats;
  const std::vector<PolicySummary> summaries =
      merge_sweep_journals(plan_path, journals, &stats);
  write_report_files(summaries, out_path, json_path);
  std::cout << "merged " << stats.cells << " cells from " << journals.size()
            << " journals (" << stats.duplicates
            << " duplicate entries dropped) -> " << out_path << "\n";
  return 0;
}

int cmd_single(Args& args) {
  std::string plan_path;
  std::string out_path;
  std::string json_path;

  while (!args.done()) {
    const std::string flag = args.take();
    if (flag == "--plan") {
      plan_path = args.value(flag);
    } else if (flag == "--out") {
      out_path = args.value(flag);
    } else if (flag == "--json") {
      json_path = args.value(flag);
    } else {
      throw ConfigError("unknown single option '" + flag + "'");
    }
  }
  LIQUID3D_REQUIRE(!plan_path.empty() && !out_path.empty(),
                   "single requires --plan and --out");

  const SweepCellFile plan = read_sweep_file(plan_path);
  std::vector<BenchmarkSpec> workloads;
  for (const std::string& name : plan.grid.workloads) {
    const std::optional<BenchmarkSpec> b = find_benchmark(name);
    LIQUID3D_REQUIRE(b.has_value(), "unknown workload '" + name + "'");
    workloads.push_back(*b);
  }
  ExperimentSuite suite(to_suite_config(plan.grid));
  const std::vector<PolicySummary> summaries =
      suite.run(plan.grid.scenarios, workloads);
  write_report_files(summaries, out_path, json_path);
  std::cout << "ran " << plan.grid.cell_count()
            << " cells single-process -> " << out_path << "\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage(argv[0]);
  const std::string command = argv[1];
  Args args(argc - 2, argv + 2);
  try {
    if (command == "plan") return cmd_plan(args);
    if (command == "run") return cmd_run(args);
    if (command == "merge") return cmd_merge(args);
    if (command == "single") return cmd_single(args);
    std::cerr << "unknown command '" << command << "'\n";
    return usage(argv[0]);
  } catch (const std::exception& e) {
    std::cerr << "sweep_worker " << command << ": " << e.what() << "\n";
    return 1;
  }
}
