// sweep_worker — the distributed-sweep command-line driver.
//
// One binary, four subcommands, so an orchestration script (or a cluster
// job array) needs a single artifact:
//
//   sweep_worker plan   --shards K --out-dir DIR [grid flags]
//       Expand the grid, partition it, write DIR/<prefix>-plan.csv plus one
//       shard file per worker.
//   sweep_worker run    --shard FILE --journal FILE [--batch N]
//       Run (or resume) one shard; every completed cell is fsync'd into the
//       journal, so `kill -9` mid-run loses at most one chunk.
//   sweep_worker merge  --plan FILE --out FILE JOURNAL...
//       Fold the journals into the merged summaries CSV (and optional
//       JSON), bit-identical to a single-process run of the grid.  With
//       --allow-partial, FAILED/missing cells degrade into a failure
//       manifest (--manifest FILE) instead of aborting the merge.
//   sweep_worker single --plan FILE --out FILE
//       The single-process reference: ExperimentSuite::run on the plan's
//       grid, exported through the same writers — `diff` against the merged
//       output is the end-to-end determinism check CI performs.
//   sweep_worker supervise --dir DIR [--prefix sweep]
//       Spawn one `run` child per DIR/<prefix>-shard-*.csv, restart
//       crashed children with exponential backoff, SIGKILL+restart children
//       whose journal stops growing.  The chaos harness for fleet runs.
//
// Fault injection: every subcommand arms LIQUID3D_FAULTS from the
// environment at startup (see common/fault_injection.hpp for the spec
// grammar); supervised children inherit the variable through fork/exec.
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "common/fault_injection.hpp"
#include "common/parse.hpp"
#include "obs/metrics.hpp"
#include "geom/stack_spec.hpp"
#include "sim/report.hpp"
#include "sweep/merge.hpp"
#include "sweep/plan.hpp"
#include "sweep/supervisor.hpp"
#include "sweep/worker.hpp"
#include "workload/benchmarks.hpp"

namespace {

using namespace liquid3d;

int usage(const char* argv0) {
  std::cerr
      << "usage: " << argv0 << " COMMAND [options]\n"
      << "\n"
      << "  plan   --shards K --out-dir DIR [--prefix sweep]\n"
      << "         [--strategy round-robin|cost] [--scenarios a,b,...]\n"
      << "         [--workloads x,y,...] [--layer-pairs N] [--duration-s S]\n"
      << "         [--seed N] [--dpm 0|1] [--grid-rows N] [--grid-cols N]\n"
      << "         [--stack PRESET|FILE]\n"
      << "  run    --shard FILE --journal FILE [--batch N] [--max-cells N]\n"
      << "         [--execution batched|threadpool] [--threads N]\n"
      << "         [--attempts N]\n"
      << "  merge  --plan FILE --out FILE [--json FILE] [--allow-partial]\n"
      << "         [--manifest FILE] JOURNAL...\n"
      << "  single --plan FILE --out FILE [--json FILE]\n"
      << "  supervise --dir DIR [--prefix sweep] [--max-restarts N]\n"
      << "         [--stall-timeout-ms N] [--backoff-ms N] [--poll-ms N]\n"
      << "         [--batch N] [--execution batched|threadpool]\n"
      << "         [--threads N] [--attempts N]\n"
      << "  validate --stack FILE\n"
      << "         Parse and sanity-check a stack file; exit 2 with the\n"
      << "         diagnostic on failure.\n";
  return 2;
}

/// Minimal flag cursor: every option takes exactly one value.
class Args {
 public:
  Args(int argc, char** argv) : argc_(argc), argv_(argv) {}

  [[nodiscard]] bool next_is_flag() const {
    return i_ < argc_ && argv_[i_][0] == '-';
  }
  [[nodiscard]] bool done() const { return i_ >= argc_; }
  [[nodiscard]] std::string take() { return argv_[i_++]; }
  [[nodiscard]] std::string value(const std::string& flag) {
    LIQUID3D_REQUIRE(i_ < argc_, "missing value for " + flag);
    return argv_[i_++];
  }

 private:
  int argc_;
  char** argv_;
  int i_ = 0;
};

std::vector<std::string> split_csv_list(const std::string& s) {
  std::vector<std::string> out;
  std::istringstream in(s);
  std::string item;
  while (std::getline(in, item, ',')) {
    if (!item.empty()) out.push_back(item);
  }
  return out;
}

void write_report_files(const std::vector<PolicySummary>& summaries,
                        const std::string& csv_path,
                        const std::string& json_path) {
  std::ofstream csv(csv_path);
  LIQUID3D_REQUIRE(csv.good(), "cannot open '" + csv_path + "' for writing");
  write_summaries_csv(csv, summaries);
  LIQUID3D_REQUIRE(csv.good(), "write to '" + csv_path + "' failed");
  if (!json_path.empty()) {
    std::ofstream json(json_path);
    LIQUID3D_REQUIRE(json.good(), "cannot open '" + json_path + "' for writing");
    write_summaries_json(json, summaries);
  }
}

int cmd_plan(Args& args) {
  SweepGridSpec grid;
  grid.duration = SimTime::from_s(60);
  std::vector<std::string> scenario_names;
  std::size_t shards = 0;
  ShardStrategy strategy = ShardStrategy::kRoundRobin;
  std::string out_dir;
  std::string prefix = "sweep";
  std::string stack_axis;

  while (!args.done()) {
    const std::string flag = args.take();
    if (flag == "--shards") {
      shards = static_cast<std::size_t>(parse_u64(args.value(flag), flag));
    } else if (flag == "--out-dir") {
      out_dir = args.value(flag);
    } else if (flag == "--prefix") {
      prefix = args.value(flag);
    } else if (flag == "--strategy") {
      strategy = shard_strategy_from_name(args.value(flag));
    } else if (flag == "--scenarios") {
      scenario_names = split_csv_list(args.value(flag));
    } else if (flag == "--workloads") {
      grid.workloads = split_csv_list(args.value(flag));
    } else if (flag == "--layer-pairs") {
      grid.layer_pairs = static_cast<std::size_t>(parse_u64(args.value(flag), flag));
    } else if (flag == "--duration-s") {
      grid.duration = SimTime::from_s(parse_double(args.value(flag), flag));
    } else if (flag == "--seed") {
      grid.seed = parse_u64(args.value(flag), flag);
    } else if (flag == "--dpm") {
      grid.dpm_enabled = parse_u64(args.value(flag), flag) != 0;
    } else if (flag == "--grid-rows") {
      grid.grid_rows = static_cast<std::size_t>(parse_u64(args.value(flag), flag));
    } else if (flag == "--grid-cols") {
      grid.grid_cols = static_cast<std::size_t>(parse_u64(args.value(flag), flag));
    } else if (flag == "--stack") {
      stack_axis = args.value(flag);
    } else {
      throw ConfigError("unknown plan option '" + flag + "'");
    }
  }
  LIQUID3D_REQUIRE(shards >= 1, "plan requires --shards >= 1");
  LIQUID3D_REQUIRE(!out_dir.empty(), "plan requires --out-dir");

  if (scenario_names.empty()) {
    grid.scenarios = paper_scenario_grid();
  } else {
    for (const std::string& name : scenario_names) {
      grid.scenarios.push_back(ScenarioRegistry::global().at(name));
    }
  }
  if (grid.workloads.empty()) {
    for (const BenchmarkSpec& b : table2_benchmarks()) {
      grid.workloads.push_back(b.name);
    }
  } else {
    for (const std::string& name : grid.workloads) {
      LIQUID3D_REQUIRE(find_benchmark(name).has_value(),
                       "unknown workload '" + name + "'");
    }
  }
  if (!stack_axis.empty()) {
    // Every scenario of the sweep runs on the requested geometry; the axis
    // must be resolvable (and cooling-compatible) for each of them, so fail
    // at plan time rather than on a remote worker.
    for (ScenarioSpec& s : grid.scenarios) s.stack = stack_axis;
    resolve_grid_stacks(grid);
    for (const ScenarioSpec& s : grid.scenarios) {
      const CoolingType type = s.cooling == CoolingMode::kAir
                                   ? CoolingType::kAir
                                   : CoolingType::kLiquid;
      (void)resolve_stack_axis(s.stack, type, grid.stacks);
    }
  }

  const std::vector<std::string> shard_paths =
      write_sweep_plan(grid, shards, strategy, out_dir, prefix);
  std::cout << "planned " << grid.cell_count() << " cells ("
            << grid.scenarios.size() << " scenarios x "
            << grid.workloads.size() << " workloads) into "
            << shard_paths.size() << " shards [" << to_string(strategy)
            << "]\n";
  std::cout << "plan: " << out_dir << "/" << prefix << "-plan.csv\n";
  for (const std::string& p : shard_paths) std::cout << "shard: " << p << "\n";
  return 0;
}

int cmd_run(Args& args) {
  std::string shard_path;
  std::string journal_path;
  SweepWorkerOptions options;

  while (!args.done()) {
    const std::string flag = args.take();
    if (flag == "--shard") {
      shard_path = args.value(flag);
    } else if (flag == "--journal") {
      journal_path = args.value(flag);
    } else if (flag == "--batch") {
      options.batch_limit =
          static_cast<std::size_t>(parse_u64(args.value(flag), flag));
    } else if (flag == "--max-cells") {
      options.max_new_cells =
          static_cast<std::size_t>(parse_u64(args.value(flag), flag));
    } else if (flag == "--threads") {
      options.worker_threads =
          static_cast<std::size_t>(parse_u64(args.value(flag), flag));
    } else if (flag == "--attempts") {
      options.max_cell_attempts =
          static_cast<std::size_t>(parse_u64(args.value(flag), flag));
    } else if (flag == "--execution") {
      const std::string mode = args.value(flag);
      if (mode == "batched") {
        options.execution = SuiteExecution::kBatched;
      } else if (mode == "threadpool") {
        options.execution = SuiteExecution::kThreadPool;
      } else {
        throw ConfigError("unknown execution mode '" + mode + "'");
      }
    } else {
      throw ConfigError("unknown run option '" + flag + "'");
    }
  }
  LIQUID3D_REQUIRE(!shard_path.empty() && !journal_path.empty(),
                   "run requires --shard and --journal");

  const SweepCellFile shard = read_sweep_file(shard_path);
  const SweepWorkerStats stats =
      run_sweep_shard(shard, journal_path, options);
  std::cout << "shard " << shard_path << ": " << stats.completed
            << " cells run, " << stats.failed << " failed, "
            << stats.already_done << " resumed, " << stats.remaining
            << " remaining (of " << stats.total_cells << ")\n";
  // FAILED cells are journaled data, not a worker error: the shard was
  // fully processed, so the exit is 0 and the failures surface at merge.
  return stats.remaining == 0 ? 0 : 3;  // 3 = incomplete (max-cells cutoff)
}

int cmd_merge(Args& args) {
  std::string plan_path;
  std::string out_path;
  std::string json_path;
  std::string manifest_path;
  SweepMergeOptions options;
  std::vector<std::string> journals;

  while (!args.done()) {
    if (!args.next_is_flag()) {
      journals.push_back(args.take());
      continue;
    }
    const std::string flag = args.take();
    if (flag == "--plan") {
      plan_path = args.value(flag);
    } else if (flag == "--out") {
      out_path = args.value(flag);
    } else if (flag == "--json") {
      json_path = args.value(flag);
    } else if (flag == "--allow-partial") {
      options.allow_partial = true;
    } else if (flag == "--manifest") {
      manifest_path = args.value(flag);
    } else {
      throw ConfigError("unknown merge option '" + flag + "'");
    }
  }
  LIQUID3D_REQUIRE(!plan_path.empty() && !out_path.empty(),
                   "merge requires --plan and --out");
  LIQUID3D_REQUIRE(!journals.empty(), "merge requires at least one journal");
  LIQUID3D_REQUIRE(manifest_path.empty() || options.allow_partial,
                   "--manifest only applies with --allow-partial");

  SweepMergeStats stats;
  std::vector<SweepFailure> manifest;
  const std::vector<PolicySummary> summaries = merge_sweep_journals(
      plan_path, journals, &stats, options, &manifest);
  write_report_files(summaries, out_path, json_path);
  if (!manifest_path.empty()) {
    std::ofstream out(manifest_path);
    LIQUID3D_REQUIRE(out.good(),
                     "cannot open '" + manifest_path + "' for writing");
    write_failure_manifest_csv(out, manifest);
    LIQUID3D_REQUIRE(out.good(), "write to '" + manifest_path + "' failed");
  }
  std::cout << "merged " << stats.cells << " cells from " << journals.size()
            << " journals (" << stats.duplicates
            << " duplicate entries dropped";
  if (options.allow_partial) {
    std::cout << ", " << stats.failed << " FAILED, " << stats.missing
              << " missing";
  }
  std::cout << ") -> " << out_path << "\n";
  return 0;
}

int cmd_supervise(Args& args) {
  std::string dir;
  std::string prefix = "sweep";
  SupervisorOptions options;
  std::vector<std::string> worker_flags;

  while (!args.done()) {
    const std::string flag = args.take();
    if (flag == "--dir") {
      dir = args.value(flag);
    } else if (flag == "--prefix") {
      prefix = args.value(flag);
    } else if (flag == "--max-restarts") {
      options.max_restarts =
          static_cast<std::size_t>(parse_u64(args.value(flag), flag));
    } else if (flag == "--stall-timeout-ms") {
      options.stall_timeout =
          std::chrono::milliseconds(parse_u64(args.value(flag), flag));
    } else if (flag == "--backoff-ms") {
      options.initial_backoff =
          std::chrono::milliseconds(parse_u64(args.value(flag), flag));
    } else if (flag == "--poll-ms") {
      options.poll_interval =
          std::chrono::milliseconds(parse_u64(args.value(flag), flag));
    } else if (flag == "--batch" || flag == "--execution" ||
               flag == "--threads" || flag == "--attempts") {
      // Forwarded verbatim to every spawned `run` child.
      worker_flags.push_back(flag);
      worker_flags.push_back(args.value(flag));
    } else {
      throw ConfigError("unknown supervise option '" + flag + "'");
    }
  }
  LIQUID3D_REQUIRE(!dir.empty(), "supervise requires --dir");

  // One worker per shard file the planner wrote; journals sit beside the
  // shards with the shard's own numeric suffix.
  const std::string shard_mark = prefix + "-shard-";
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (!entry.is_regular_file()) continue;
    const std::string name = entry.path().filename().string();
    if (name.rfind(shard_mark, 0) != 0) continue;
    if (entry.path().extension() != ".csv") continue;
    options.shard_paths.push_back(entry.path().string());
  }
  std::sort(options.shard_paths.begin(), options.shard_paths.end());
  LIQUID3D_REQUIRE(!options.shard_paths.empty(),
                   "supervise: no '" + shard_mark + "*.csv' shards in '" +
                       dir + "'");
  for (const std::string& shard : options.shard_paths) {
    const std::string stem = std::filesystem::path(shard).stem().string();
    const std::string suffix = stem.substr(shard_mark.size() - 1);  // -NNN
    options.journal_paths.push_back(
        (std::filesystem::path(dir) / (prefix + "-journal" + suffix + ".csv"))
            .string());
  }

  // Children are this very binary: no PATH lookup, no skew between the
  // supervisor's code and the workers'.
  std::error_code ec;
  const std::filesystem::path self =
      std::filesystem::read_symlink("/proc/self/exe", ec);
  LIQUID3D_REQUIRE(!ec, "supervise: cannot resolve /proc/self/exe");
  options.worker_binary = self.string();
  options.extra_args = worker_flags;

  const SupervisorResult result = supervise_sweep(options);
  for (const WorkerReport& w : result.workers) {
    std::cout << "worker " << w.shard_path << ": "
              << (w.succeeded ? "ok" : "FAILED") << " (" << w.spawns
              << " spawns, " << w.stall_kills << " stall kills)\n";
  }
  return result.all_succeeded ? 0 : 1;
}

int cmd_single(Args& args) {
  std::string plan_path;
  std::string out_path;
  std::string json_path;

  while (!args.done()) {
    const std::string flag = args.take();
    if (flag == "--plan") {
      plan_path = args.value(flag);
    } else if (flag == "--out") {
      out_path = args.value(flag);
    } else if (flag == "--json") {
      json_path = args.value(flag);
    } else {
      throw ConfigError("unknown single option '" + flag + "'");
    }
  }
  LIQUID3D_REQUIRE(!plan_path.empty() && !out_path.empty(),
                   "single requires --plan and --out");

  const SweepCellFile plan = read_sweep_file(plan_path);
  std::vector<BenchmarkSpec> workloads;
  for (const std::string& name : plan.grid.workloads) {
    const std::optional<BenchmarkSpec> b = find_benchmark(name);
    LIQUID3D_REQUIRE(b.has_value(), "unknown workload '" + name + "'");
    workloads.push_back(*b);
  }
  ExperimentSuite suite(to_suite_config(plan.grid));
  const std::vector<PolicySummary> summaries =
      suite.run(plan.grid.scenarios, workloads);
  write_report_files(summaries, out_path, json_path);
  std::cout << "ran " << plan.grid.cell_count()
            << " cells single-process -> " << out_path << "\n";
  return 0;
}

int cmd_validate(Args& args) {
  std::string stack_path;
  while (!args.done()) {
    const std::string flag = args.take();
    if (flag == "--stack") {
      stack_path = args.value(flag);
    } else {
      std::cerr << "unknown validate option '" << flag << "'\n";
      return 2;
    }
  }
  if (stack_path.empty()) {
    std::cerr << "validate requires --stack FILE\n";
    return 2;
  }
  // Own try/catch: a malformed stack file is a diagnostic for the user
  // (exit 2), not an internal worker error (exit 1).
  try {
    const StackSpec spec = load_stack_file(stack_path);
    const Stack3D stack = make_stack(spec);
    char fp[20];
    std::snprintf(fp, sizeof fp, "%016llx",
                  static_cast<unsigned long long>(stack_fingerprint(stack)));
    std::cout << stack_path << ": ok\n"
              << "  name: " << spec.name << "\n"
              << "  cooling: " << to_string(spec.cooling) << "\n"
              << "  layers: " << stack.layer_count() << " ("
              << stack.total_count(BlockType::kCore) << " cores, "
              << stack.total_count(BlockType::kL2Cache) << " l2 banks)\n"
              << "  cavities: " << stack.cavity_count() << "\n"
              << "  fingerprint: " << fp << "\n";
    return 0;
  } catch (const std::exception& e) {
    std::cerr << stack_path << ": " << e.what() << "\n";
    return 2;
  }
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage(argv[0]);
  const std::string command = argv[1];
  Args args(argc - 2, argv + 2);
  try {
    liquid3d::fault_injection::arm_from_env();
    liquid3d::obs::init_from_env();
    if (command == "plan") return cmd_plan(args);
    if (command == "run") return cmd_run(args);
    if (command == "merge") return cmd_merge(args);
    if (command == "single") return cmd_single(args);
    if (command == "supervise") return cmd_supervise(args);
    if (command == "validate") return cmd_validate(args);
    std::cerr << "unknown command '" << command << "'\n";
    return usage(argv[0]);
  } catch (const std::exception& e) {
    std::cerr << "sweep_worker " << command << ": " << e.what() << "\n";
    return 1;
  }
}
