// serve_daemon — the always-on thermal service as a network daemon.
//
//   serve_daemon --listen HOST:PORT|unix:PATH
//                [--workers N] [--max-inflight N]
//                [--queue-workers N] [--batch-window-ms X] [--max-batch N]
//                [--model-pool N] [--rom-cache N]
//
// Listens on the endpoint (port 0 = ephemeral), prints the bound endpoint
// as `listening ENDPOINT` on stdout (scripts parse this line), and serves
// framed envelope requests (src/serve/net/) until SIGTERM or SIGINT.
//
// Shutdown is a graceful drain: stop accepting connections, answer every
// new request `shutting-down`, finish the admitted in-flight requests,
// print the final counters, exit 0.  Clients in the middle of a burst see
// answers for admitted work and typed rejections for the rest — never a
// hang and never a torn reply (the drain-smoke CI job locks this in).
#include <poll.h>
#include <signal.h>
#include <unistd.h>

#include <cstdio>
#include <iostream>

#include "common/error.hpp"
#include "common/flags.hpp"
#include "obs/metrics.hpp"
#include "serve/net/server.hpp"
#include "serve/service.hpp"

namespace {

using namespace liquid3d;

int g_signal_pipe[2] = {-1, -1};

void on_signal(int) {
  const char byte = 's';
  [[maybe_unused]] const ssize_t n = ::write(g_signal_pipe[1], &byte, 1);
}

int usage() {
  std::cerr << "usage: serve_daemon --listen HOST:PORT|unix:PATH\n"
            << "         [--workers N] [--max-inflight N] [--queue-workers N]\n"
            << "         [--batch-window-ms X] [--max-batch N]\n"
            << "         [--model-pool N] [--rom-cache N]\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  liquid3d::obs::init_from_env();
  std::string listen_spec;
  ServerParams server_params;
  ServeParams serve_params;

  FlagSet flags("serve_daemon");
  flags.text("--listen", &listen_spec);
  flags.number("--workers", &server_params.workers);
  flags.number("--max-inflight", &server_params.max_inflight);
  flags.number("--queue-workers", &serve_params.queue.workers);
  flags.number("--batch-window-ms", &serve_params.queue.batch_window_ms);
  flags.number("--max-batch", &serve_params.queue.max_batch);
  flags.number("--model-pool", &serve_params.model_pool_capacity);
  flags.number("--rom-cache", &serve_params.rom_cache_capacity);

  try {
    flags.parse(argc - 1, argv + 1);
    if (listen_spec.empty()) return usage();
    const Endpoint endpoint = parse_endpoint(listen_spec, "--listen");

    if (::pipe(g_signal_pipe) != 0) {
      std::cerr << "serve_daemon: pipe() failed\n";
      return 2;
    }
    struct sigaction sa = {};
    sa.sa_handler = on_signal;
    ::sigaction(SIGTERM, &sa, nullptr);
    ::sigaction(SIGINT, &sa, nullptr);
    ::signal(SIGPIPE, SIG_IGN);

    ThermalService service(serve_params);
    ServeServer server(service, server_params);
    server.start(endpoint);
    std::printf("listening %s\n", to_string(server.endpoint()).c_str());
    std::fflush(stdout);

    // Park until a signal arrives; the server's own threads do the work.
    for (;;) {
      pollfd pfd = {g_signal_pipe[0], POLLIN, 0};
      if (::poll(&pfd, 1, -1) > 0) break;
    }

    std::printf("draining\n");
    std::fflush(stdout);
    server.drain();
    const ServeStats s = server.stats();
    server.stop();
    std::printf("drained accepted=%zu rejected=%zu timed_out=%zu hwm=%zu\n",
                s.wire_accepted, s.wire_rejected, s.wire_timed_out,
                s.wire_queue_hwm);
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "serve_daemon: " << e.what() << "\n";
    return 2;
  }
}
