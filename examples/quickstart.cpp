// quickstart.cpp — minimal end-to-end use of the liquid3d public API.
//
// Builds the paper's 2-layer liquid-cooled Niagara stack, runs the full
// technique (TALB scheduling + ARMA/SPRT-driven variable-flow control) on
// the Web-med workload for 60 simulated seconds, and prints a short trace
// plus the summary metrics.
//
//   $ ./quickstart
//
// With --stack FILE the run uses a declarative stack file (docs/stacks.md)
// instead of the built-in 2-layer system:
//
//   $ ./quickstart --stack examples/stacks/asym-3die.stack
#include <cstdio>
#include <cstring>

#include "geom/stack_spec.hpp"
#include "sim/simulator.hpp"
#include "workload/benchmarks.hpp"

int main(int argc, char** argv) {
  using namespace liquid3d;

  SimulationConfig cfg;
  cfg.layer_pairs = 1;  // 2-layer system, 8 cores
  cfg.cooling = CoolingMode::kLiquidVar;
  cfg.policy = Policy::kTalb;
  cfg.benchmark = *find_benchmark("Web-med");
  cfg.duration = SimTime::from_s(60);
  cfg.seed = 42;

  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--stack") == 0 && i + 1 < argc) {
      const StackSpec spec = load_stack_file(argv[++i]);
      // The file fixes the cooling type; keep variable flow on liquid stacks.
      cfg.cooling = spec.cooling == CoolingType::kAir ? CoolingMode::kAir
                                                      : CoolingMode::kLiquidVar;
      cfg.stack = spec;
    } else {
      std::fprintf(stderr, "usage: %s [--stack FILE]\n", argv[0]);
      return 2;
    }
  }

  Simulator sim(cfg);

  std::printf("system: %s | policy: %s | workload: %s\n",
              sim.stack().name().c_str(),
              policy_label(cfg.policy, cfg.cooling).c_str(),
              cfg.benchmark.name.c_str());
  std::printf("%8s %8s %9s %8s %10s %8s %8s\n", "t[s]", "Tmax[C]", "Tpred[C]",
              "setting", "flow[ml/m]", "chip[W]", "pump[W]");

  sim.set_trace_callback([](const SampleTrace& t) {
    if (t.now.as_ms() % 5000 != 0) return;  // print every 5 s
    std::printf("%8.1f %8.2f %9.2f %8zu %10.2f %8.2f %8.2f\n", t.now.as_s(),
                t.tmax, t.forecast, t.pump_setting, t.flow_ml_per_min,
                t.chip_watts, t.pump_watts);
  });

  const SimulationResult r = sim.run();

  std::printf("\n-- summary ------------------------------------------\n");
  std::printf("avg Tmax             : %.2f C (peak %.2f C)\n", r.avg_tmax,
              r.hotspot_max_sample);
  std::printf("time above 80C target: %.2f %%\n", r.above_target_percent);
  std::printf("hot spots (>85C)     : %.2f %%\n", r.hotspot_percent);
  std::printf("chip energy          : %.1f J\n", r.chip_energy_j);
  std::printf("pump energy          : %.1f J\n", r.pump_energy_j);
  std::printf("throughput           : %.1f threads/s\n", r.throughput_per_s);
  std::printf("avg utilization      : %.3f (Table II target %.3f)\n",
              r.avg_utilization, cfg.benchmark.avg_utilization);
  std::printf("pump transitions     : %zu | predictor rebuilds: %zu\n",
              r.pump_transitions, r.predictor_rebuilds);
  std::printf("forecast RMSE (500ms): %.3f C\n", r.forecast_rmse);
  return 0;
}
