// server_day_night.cpp — the paper's SPRT motivation scenario: a server
// whose load pattern changes abruptly (day-time vs night-time traffic).
//
// We run the 2-layer liquid-cooled system under Web-med, drop the offered
// load to 25 % at t = 60 s ("night") and restore it at t = 120 s ("day").
// Watch the ARMA forecaster mis-predict at each break, the SPRT alarm, the
// predictor rebuild, and the flow controller ride the pump settings down
// and back up.
//
//   $ ./server_day_night
#include <cstdio>

#include "sim/simulator.hpp"
#include "workload/benchmarks.hpp"

int main() {
  using namespace liquid3d;

  SimulationConfig cfg;
  cfg.cooling = CoolingMode::kLiquidVar;
  cfg.policy = Policy::kTalb;
  cfg.benchmark = *find_benchmark("Web-med");
  cfg.duration = SimTime::from_s(180);
  cfg.seed = 2024;
  cfg.phases = {
      {SimTime::from_s(60), 0.25},  // night: load collapses
      {SimTime::from_s(120), 1.0},  // day: back to normal
  };

  Simulator sim(cfg);
  std::printf("day/night trace on %s (load x0.25 at 60 s, x1.0 at 120 s)\n",
              sim.stack().name().c_str());
  std::printf("%7s %9s %9s %9s %11s %9s\n", "t[s]", "Tmax[C]", "pred[C]", "setting",
              "flow[ml/m]", "pump[W]");

  sim.set_trace_callback([](const SampleTrace& t) {
    if (t.now.as_ms() % 10000 != 0) return;
    std::printf("%7.0f %9.2f %9.2f %9zu %11.2f %9.2f\n", t.now.as_s(), t.tmax,
                t.forecast, t.pump_setting, t.flow_ml_per_min, t.pump_watts);
  });

  const SimulationResult r = sim.run();

  std::printf("\npredictor rebuilds (SPRT-triggered): %zu\n", r.predictor_rebuilds);
  std::printf("pump transitions                    : %zu\n", r.pump_transitions);
  std::printf("time above 80 C target              : %.2f %%\n",
              r.above_target_percent);
  std::printf("forecast RMSE (500 ms horizon)      : %.3f C\n", r.forecast_rmse);
  std::printf("pump energy                         : %.1f J (max flow would be %.1f J)\n",
              r.pump_energy_j, 21.0 * r.elapsed_s);
  std::printf("\nThe rebuild count shows the SPRT catching the two trend breaks; "
              "the settings ride down during the night phase and recover for "
              "the day phase without violating the target.\n");
  return 0;
}
