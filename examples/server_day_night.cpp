// server_day_night.cpp — the paper's SPRT motivation scenario: a server
// whose load pattern changes abruptly (day-time vs night-time traffic),
// asked through the always-on thermal service (serve/service.hpp).
//
// The day/night run is a transient-replay query: the TALB + variable-flow
// scenario bound to Web-med, with the offered load dropped to 25 % at
// t = 60 s ("night") and restored at t = 120 s ("day").  The service queues
// it, runs it at full fidelity, and returns the result plus a 10 s sample
// trace — watch the ARMA forecaster mis-predict at each break, the SPRT
// alarm, the predictor rebuild, and the flow controller ride the pump
// settings down and back up.  Before and after, two steady queries hit the
// reduced-order model: the day-load and night-load steady envelopes, each
// answered in microseconds from one cached basis.
//
//   $ ./server_day_night
#include <cstdio>

#include "serve/service.hpp"

int main() {
  using namespace liquid3d;

  ThermalService service;

  // Steady envelopes first: what T_max would the day and night loads pin at
  // if held forever?  ROM path — microseconds per answer once warm.
  SteadyQuery steady;
  steady.config.cooling = CoolingMode::kLiquidMax;
  steady.config.layer_pairs = 1;
  steady.core_watts = 3.0;  // active core power, day load
  const SteadyAnswer day = service.steady(steady);
  steady.core_watts = 0.75;  // night: load collapses to 25 %
  const SteadyAnswer night = service.steady(steady);
  std::printf("steady envelopes (reduced model, dim %zu):\n", day.rom_dimension);
  std::printf("  day  load: Tmax %6.2f C  (%s, %.0f us, est err %.2g K)\n",
              day.t_max_c, day.used_rom ? "rom" : "full", day.elapsed_us,
              day.estimated_error_c);
  std::printf("  night load: Tmax %6.2f C  (%s, %.0f us, est err %.2g K)\n\n",
              night.t_max_c, night.used_rom ? "rom" : "full", night.elapsed_us,
              night.estimated_error_c);

  // The transient story: one replay query over the phase schedule.
  ReplayQuery replay;
  replay.base.scenario = "talb-var";
  replay.base.benchmark = "Web-med";
  replay.base.duration_s = 180.0;
  replay.base.seed = 2024;
  replay.phases = {
      {SimTime::from_s(60), 0.25},  // night: load collapses
      {SimTime::from_s(120), 1.0},  // day: back to normal
  };
  replay.trace_period_s = 10.0;

  std::printf("day/night replay (load x0.25 at 60 s, x1.0 at 120 s)\n");
  std::printf("%7s %9s %9s %9s %11s %9s\n", "t[s]", "Tmax[C]", "pred[C]",
              "setting", "flow[ml/m]", "pump[W]");
  const SessionOutcome outcome = service.replay(replay).get();
  for (const SampleTrace& t : outcome.trace) {
    std::printf("%7.0f %9.2f %9.2f %9zu %11.2f %9.2f\n", t.now.as_s(), t.tmax,
                t.forecast, t.pump_setting, t.flow_ml_per_min, t.pump_watts);
  }

  const SimulationResult& r = outcome.result;
  std::printf("\npredictor rebuilds (SPRT-triggered): %zu\n", r.predictor_rebuilds);
  std::printf("pump transitions                    : %zu\n", r.pump_transitions);
  std::printf("time above 80 C target              : %.2f %%\n",
              r.above_target_percent);
  std::printf("forecast RMSE (500 ms horizon)      : %.3f C\n", r.forecast_rmse);
  std::printf("pump energy                         : %.1f J (max flow would be %.1f J)\n",
              r.pump_energy_j, 21.0 * r.elapsed_s);
  std::printf("\nThe rebuild count shows the SPRT catching the two trend breaks; "
              "the settings ride down during the night phase and recover for "
              "the day phase without violating the target.\n");
  return 0;
}
