// flow_characterization.cpp — the design-time analysis a deployment would
// run once per system: steady T_max across the (utilization x setting)
// plane, the resulting flow-rate look-up table, and the TALB thermal
// weights.  This is the offline half of the paper's technique (Sec. IV).
//
//   $ ./flow_characterization          # 2-layer system
//   $ ./flow_characterization 4        # 4-layer system
#include <cstdio>
#include <cstring>
#include <limits>
#include <sstream>

#include "common/table.hpp"
#include "control/characterize.hpp"
#include "control/flow_lut.hpp"
#include "control/talb_weights.hpp"

int main(int argc, char** argv) {
  using namespace liquid3d;

  const std::size_t pairs = (argc > 1 && std::strcmp(argv[1], "4") == 0) ? 2 : 1;
  const Stack3D stack = make_niagara_stack(pairs, CoolingType::kLiquid);
  CharacterizationHarness h(stack, ThermalModelParams{}, PowerModelParams{},
                            PumpModel::laing_ddc(), FlowDeliveryMode::kPressureLimited);

  std::printf("characterizing %s (%zu cores, %zu cavities)\n\n", stack.name().c_str(),
              stack.total_count(BlockType::kCore), stack.cavity_count());

  // 1. The T_max(u, setting) plane.
  {
    TablePrinter t({"util", "s1 [C]", "s2 [C]", "s3 [C]", "s4 [C]", "s5 [C]"});
    for (double u = 0.0; u <= 1.001; u += 0.2) {
      std::vector<std::string> row = {TablePrinter::num(u, 1)};
      for (std::size_t s = 0; s < h.setting_count(); ++s) {
        row.push_back(TablePrinter::num(h.steady_tmax(u, s), 1));
      }
      t.add_row(row);
    }
    std::ostringstream os;
    t.print(os);
    std::printf("steady T_max per pump setting:\n%s\n", os.str().c_str());
  }

  // 2. The flow LUT the controller runs on (boundaries observed at each
  //    current setting; 78 C = 80 C target minus the 2 C guard band).
  {
    const FlowLut lut = FlowLut::characterize(
        [&](double u, std::size_t s) { return h.steady_tmax(u, s); },
        h.setting_count(), 78.0, 25);
    TablePrinter t({"observed at", ">= s2 above [C]", ">= s3 above [C]",
                    ">= s4 above [C]", ">= s5 above [C]"});
    for (std::size_t s = 0; s < lut.setting_count(); ++s) {
      std::vector<std::string> row = {"setting " + std::to_string(s + 1)};
      for (std::size_t k = 1; k < lut.setting_count(); ++k) {
        const double b = lut.boundary(s, k);
        std::ostringstream cell;
        if (b == -std::numeric_limits<double>::infinity()) {
          cell << "always";
        } else if (b == std::numeric_limits<double>::infinity()) {
          cell << "never";
        } else {
          cell << TablePrinter::num(b, 1);
        }
        row.push_back(cell.str());
      }
      t.add_row(row);
    }
    std::ostringstream os;
    t.print(os);
    std::printf("flow-rate look-up table:\n%s\n", os.str().c_str());
  }

  // 3. TALB thermal weights at a balanced mid-load operating point.
  {
    const std::vector<double> temps = h.steady_core_temps(0.6, 2);
    const std::vector<double> w = TalbWeightTable::weights_from_temps(
        temps, ThermalModelParams{}.inlet_temperature);
    TablePrinter t({"core", "steady T [C]", "thermal weight"});
    for (std::size_t i = 0; i < w.size(); ++i) {
      t.add_row({std::to_string(i), TablePrinter::num(temps[i], 2),
                 TablePrinter::num(w[i], 3)});
    }
    std::ostringstream os;
    t.print(os);
    std::printf("TALB weights (u = 0.6, setting 3):\n%s", os.str().c_str());
    std::printf("\nweights > 1 mark thermally disadvantaged positions (the "
                "scheduler steers work away from them, Eq. 8).\n");
  }
  return 0;
}
