// thermal_map.cpp — ASCII heat map of the stack under a chosen pump setting
// and uniform utilization: the fastest way to *see* the physics the paper
// builds on (downstream sensible heating, core-vs-cache contrast, the cool
// crossbar TSV column).
//
//   $ ./thermal_map              # setting 3 (1-based), u = 0.6
//   $ ./thermal_map 1 0.9        # lowest flow, high load
#include <cstdio>
#include <cstdlib>
#include <string>

#include "control/characterize.hpp"

namespace {

char shade(double t, double lo, double hi) {
  static const char kRamp[] = " .:-=+*#%@";
  const double x = (t - lo) / (hi - lo);
  const int idx = std::max(0, std::min(9, static_cast<int>(x * 10.0)));
  return kRamp[idx];
}

}  // namespace

int main(int argc, char** argv) {
  using namespace liquid3d;

  const std::size_t setting =
      argc > 1 ? static_cast<std::size_t>(std::atoi(argv[1]) - 1) : 2;
  const double u = argc > 2 ? std::atof(argv[2]) : 0.6;
  if (setting > 4 || u < 0.0 || u > 1.0) {
    std::fprintf(stderr, "usage: %s [setting 1-5] [utilization 0-1]\n", argv[0]);
    return 1;
  }

  CharacterizationHarness h(make_2layer_system(), ThermalModelParams{},
                            PowerModelParams{}, PumpModel::laing_ddc(),
                            FlowDeliveryMode::kPressureLimited);
  const double tmax = h.steady_tmax(u, setting);
  ThermalModel3D& m = h.model();
  const Grid& g = m.grid();
  const double tmin = m.min_temperature();

  std::printf("2-layer stack | setting %zu (%.2f ml/min per cavity) | u = %.2f\n",
              setting + 1, h.delivery()->per_cavity(setting).ml_per_min(), u);
  std::printf("Tmax = %.1f C, Tmin = %.1f C | coolant flows left -> right, "
              "inlet %.0f C\n",
              tmax, tmin, m.params().inlet_temperature);

  for (std::size_t l = m.layer_count(); l-- > 0;) {
    const Floorplan& fp = m.stack().layer(l).floorplan;
    std::printf("\nlayer %zu (%s):\n", l, fp.name().c_str());
    for (std::size_t r = g.rows(); r-- > 0;) {
      std::string line;
      for (std::size_t c = 0; c < g.cols(); ++c) {
        line += shade(m.cell_temperature(l, g.index(r, c)), tmin, tmax);
      }
      std::printf("  |%s|\n", line.c_str());
    }
    // Per-block readback under the map.
    std::printf("  blocks: ");
    for (std::size_t b = 0; b < fp.block_count(); ++b) {
      std::printf("%s=%.1f ", fp.block(b).name.c_str(), m.block_temperature(l, b));
    }
    std::printf("\n");
  }

  std::printf("\ncavity outlet temperatures: ");
  for (std::size_t k = 0; k < m.stack().cavity_count(); ++k) {
    std::printf("%.1f ", m.fluid_outlet_temperature(k));
  }
  std::printf("C\nlegend: ' ' = %.1f C ... '@' = %.1f C; note the hot right "
              "(outlet) edge at low settings — the ΔT_heat term the "
              "controller modulates.\n",
              tmin, tmax);
  return 0;
}
