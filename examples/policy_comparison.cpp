// policy_comparison.cpp — compare the paper's policy/cooling configurations
// on one workload (default: Web&DB; pass a Table II name to change it).
//
//   $ ./policy_comparison            # Web&DB
//   $ ./policy_comparison gzip
#include <cstdio>
#include <sstream>
#include <string>

#include "common/table.hpp"
#include "sim/experiment.hpp"

int main(int argc, char** argv) {
  using namespace liquid3d;

  const std::string name = argc > 1 ? argv[1] : "Web&DB";
  const auto bench = find_benchmark(name);
  if (!bench) {
    std::fprintf(stderr, "unknown benchmark '%s'; use a Table II name\n", name.c_str());
    return 1;
  }

  SuiteConfig sc;
  sc.duration = SimTime::from_s(40);
  ExperimentSuite suite(sc);

  std::printf("policy comparison on '%s' (util %.1f%%), 2-layer system, 40 s\n\n",
              bench->name.c_str(), 100.0 * bench->avg_utilization);

  TablePrinter t({"policy", "avg Tmax [C]", "peak [C]", ">85C [%]", "grad>15C [%]",
                  "chip E [J]", "pump E [J]", "thr [thr/s]"});
  for (const PolicyConfig& pc : paper_policy_grid()) {
    Simulator sim(suite.make_config(pc, *bench));
    const SimulationResult r = sim.run();
    t.add_row({r.label, TablePrinter::num(r.avg_tmax, 1),
               TablePrinter::num(r.hotspot_max_sample, 1),
               TablePrinter::num(r.hotspot_percent, 2),
               TablePrinter::num(r.spatial_gradient_percent, 1),
               TablePrinter::num(r.chip_energy_j, 0),
               TablePrinter::num(r.pump_energy_j, 0),
               TablePrinter::num(r.throughput_per_s, 1)});
  }
  std::ostringstream os;
  t.print(os);
  std::fputs(os.str().c_str(), stdout);
  std::printf("\nTALB (Var) is the paper's technique: liquid cooling with the "
              "ARMA/SPRT-driven flow controller and weighted load balancing.\n");
  return 0;
}
