// valve_network_comparison — uniform vs. per-cavity (valve-network) coolant
// delivery on spatially skewed workloads, at equal total delivered flow.
//
// Runs the canonical skew scenarios (hot upper die, hot corner) on the
// 4-layer system with the pump pinned at its maximum setting, so the only
// difference between the two cells of each comparison is *where* the same
// total flow goes.  The valve network steers flow toward the hottest cavity
// (CavityFlowController), which lowers T_max on skewed loads.
//
// Results are emitted through the structured report writers (sim/report.hpp):
// the full per-cell table as CSV on stdout, and optionally the same data as
// JSON to a file.
//
// Usage: example_valve_network_comparison [duration_s] [layer_pairs] [out.json]
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>

#include "sim/experiment.hpp"
#include "sim/report.hpp"

using namespace liquid3d;

int main(int argc, char** argv) {
  const double duration_s = argc > 1 ? std::atof(argv[1]) : 30.0;
  const std::size_t layer_pairs = argc > 2 ? static_cast<std::size_t>(std::atoi(argv[2])) : 2;

  SuiteConfig sc;
  sc.layer_pairs = layer_pairs;
  sc.duration = SimTime::from_s(duration_s);
  ExperimentSuite suite(sc);

  const BenchmarkSpec workload = *find_benchmark("Web-med");
  std::printf("valve-network comparison: %zu-layer system, %s, %.0f s, equal "
              "total delivered flow (pump at max)\n\n",
              2 * layer_pairs, workload.name.c_str(), duration_s);

  std::vector<SimulationResult> results;
  for (const SkewScenario& scenario : skewed_workload_scenarios(layer_pairs)) {
    const FlowComparisonResult r = suite.run_flow_comparison(scenario, workload);
    SimulationResult uniform = r.uniform;
    SimulationResult valved = r.valved;
    // Make each row self-describing before export.
    uniform.label = scenario.name + " " + uniform.label;
    valved.label = scenario.name + " " + valved.label;
    results.push_back(std::move(uniform));
    results.push_back(std::move(valved));
    std::fprintf(stderr,
                 "%s: valve network dTmax(avg) = %+.2f K, dTmax(peak) = %+.2f K, "
                 "%zu valve transitions\n",
                 scenario.name.c_str(), r.valved.avg_tmax - r.uniform.avg_tmax,
                 r.valved.hotspot_max_sample - r.uniform.hotspot_max_sample,
                 r.valved.valve_transitions);
  }

  write_results_csv(std::cout, results);

  if (argc > 3) {
    std::ofstream json(argv[3]);
    if (!json) {
      std::fprintf(stderr, "cannot open %s for writing\n", argv[3]);
      return 1;
    }
    write_results_json(json, results);
    std::fprintf(stderr, "wrote %s\n", argv[3]);
  }
  return 0;
}
