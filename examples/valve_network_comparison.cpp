// valve_network_comparison — uniform vs. per-cavity (valve-network) coolant
// delivery on spatially skewed workloads, at equal total delivered flow.
//
// Runs the canonical skew scenarios (hot upper die, hot corner) on the
// 4-layer system with the pump pinned at its maximum setting, so the only
// difference between the two cells of each comparison is *where* the same
// total flow goes.  The valve network steers flow toward the hottest cavity
// (CavityFlowController), which lowers T_max on skewed loads.
//
// Usage: example_valve_network_comparison [duration_s] [layer_pairs]
#include <cstdio>
#include <cstdlib>

#include "sim/experiment.hpp"

using namespace liquid3d;

int main(int argc, char** argv) {
  const double duration_s = argc > 1 ? std::atof(argv[1]) : 30.0;
  const std::size_t layer_pairs = argc > 2 ? static_cast<std::size_t>(std::atoi(argv[2])) : 2;

  SuiteConfig sc;
  sc.layer_pairs = layer_pairs;
  sc.duration = SimTime::from_s(duration_s);
  ExperimentSuite suite(sc);

  const BenchmarkSpec workload = *find_benchmark("Web-med");
  std::printf("valve-network comparison: %zu-layer system, %s, %.0f s, equal "
              "total delivered flow (pump at max)\n\n",
              2 * layer_pairs, workload.name.c_str(), duration_s);
  std::printf("%-14s | %-8s | %9s | %9s | %8s | %8s | %6s\n", "scenario",
              "delivery", "avg Tmax", "peak Tmax", "hotspot%", "pump J", "skew");
  std::printf("---------------+----------+-----------+-----------+----------+--"
              "--------+-------\n");

  for (const SkewScenario& scenario : skewed_workload_scenarios(layer_pairs)) {
    const FlowComparisonResult r = suite.run_flow_comparison(scenario, workload);
    for (const SimulationResult* s : {&r.uniform, &r.valved}) {
      std::printf("%-14s | %-8s | %8.2fC | %8.2fC | %8.2f | %8.1f | %6.2f\n",
                  scenario.name.c_str(), s == &r.uniform ? "uniform" : "valved",
                  s->avg_tmax, s->hotspot_max_sample, s->hotspot_percent,
                  s->pump_energy_j, s->avg_flow_skew);
    }
    std::printf("  -> valve network: dTmax(avg) = %+.2f K, dTmax(peak) = %+.2f K, "
                "%zu valve transitions\n\n",
                r.valved.avg_tmax - r.uniform.avg_tmax,
                r.valved.hotspot_max_sample - r.uniform.hotspot_max_sample,
                r.valved.valve_transitions);
  }
  return 0;
}
