// thread_pool.hpp — a small reusable worker pool for the embarrassingly
// parallel outer loops: characterization grid points and the policy x
// workload experiment grid.  Each task owns its working set (typically a
// whole ThermalModel3D), so the pool needs no shared-state machinery beyond
// the queue itself.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

namespace liquid3d {

class ThreadPool {
 public:
  /// Worker count defaults to the hardware concurrency (at least 1).
  explicit ThreadPool(std::size_t threads = default_concurrency()) {
    if (threads == 0) threads = 1;
    workers_.reserve(threads);
    for (std::size_t i = 0; i < threads; ++i) {
      workers_.emplace_back([this] { worker_loop(); });
    }
  }

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  ~ThreadPool() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      stopping_ = true;
    }
    wake_.notify_all();
    for (std::thread& w : workers_) w.join();
  }

  [[nodiscard]] std::size_t thread_count() const { return workers_.size(); }

  [[nodiscard]] static std::size_t default_concurrency() {
    const unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : static_cast<std::size_t>(hw);
  }

  /// Enqueue a callable; the future carries its result (or exception).
  template <class F>
  [[nodiscard]] auto submit(F&& f) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    std::packaged_task<R()> task(std::forward<F>(f));
    std::future<R> fut = task.get_future();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      queue_.emplace_back(
          [t = std::make_shared<std::packaged_task<R()>>(std::move(task))] {
            (*t)();
          });
    }
    wake_.notify_one();
    return fut;
  }

  /// Run fn(i) for i in [begin, end) across the pool and block until every
  /// index finished.  The first exception (if any) is rethrown — but only
  /// after ALL indices have completed: `fn` is borrowed by reference, so
  /// returning while workers still run would leave them calling through a
  /// destroyed callable.
  void parallel_for(std::size_t begin, std::size_t end,
                    const std::function<void(std::size_t)>& fn) {
    std::vector<std::future<void>> pending;
    pending.reserve(end - begin);
    for (std::size_t i = begin; i < end; ++i) {
      pending.push_back(submit([&fn, i] { fn(i); }));
    }
    std::exception_ptr first_error;
    for (auto& f : pending) {
      try {
        f.get();
      } catch (...) {
        if (!first_error) first_error = std::current_exception();
      }
    }
    if (first_error) std::rethrow_exception(first_error);
  }

 private:
  void worker_loop() {
    for (;;) {
      std::function<void()> task;
      {
        std::unique_lock<std::mutex> lock(mutex_);
        wake_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
        if (queue_.empty()) return;  // stopping_ and drained
        task = std::move(queue_.front());
        queue_.pop_front();
      }
      task();
    }
  }

  std::mutex mutex_;
  std::condition_variable wake_;
  std::deque<std::function<void()>> queue_;
  bool stopping_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace liquid3d
