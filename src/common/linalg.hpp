// linalg.hpp — small dense linear algebra for model fitting and steady-state
// verification.  Row-major dense matrix, Gaussian elimination with partial
// pivoting, and linear least squares via normal equations with Tikhonov
// fallback.  Sized for ARMA fitting (tens of unknowns), not for the thermal
// grid itself (which uses a specialized iterative solver in thermal/).
#pragma once

#include <cstddef>
#include <vector>

namespace liquid3d {

class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols, double fill = 0.0);

  [[nodiscard]] std::size_t rows() const { return rows_; }
  [[nodiscard]] std::size_t cols() const { return cols_; }

  [[nodiscard]] double& operator()(std::size_t r, std::size_t c) {
    return data_[r * cols_ + c];
  }
  [[nodiscard]] double operator()(std::size_t r, std::size_t c) const {
    return data_[r * cols_ + c];
  }

  [[nodiscard]] Matrix transposed() const;
  [[nodiscard]] Matrix operator*(const Matrix& rhs) const;
  [[nodiscard]] std::vector<double> operator*(const std::vector<double>& v) const;

  /// Identity matrix of size n.
  [[nodiscard]] static Matrix identity(std::size_t n);

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

/// Solve A x = b by Gaussian elimination with partial pivoting.
/// Throws ConfigError on dimension mismatch or a numerically singular system.
[[nodiscard]] std::vector<double> solve_linear(Matrix a, std::vector<double> b);

/// Solve min ||A x - b||_2 via normal equations; if A^T A is near-singular a
/// small ridge term (lambda * I) is added, which is the standard regularized
/// fallback for short/collinear ARMA design matrices.
[[nodiscard]] std::vector<double> solve_least_squares(const Matrix& a,
                                                      const std::vector<double>& b,
                                                      double ridge = 1e-9);

}  // namespace liquid3d
