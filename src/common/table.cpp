#include "common/table.hpp"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "common/error.hpp"

namespace liquid3d {

TablePrinter::TablePrinter(std::vector<std::string> headers) : headers_(std::move(headers)) {
  LIQUID3D_REQUIRE(!headers_.empty(), "table must have at least one column");
}

void TablePrinter::add_row(std::vector<std::string> row) {
  LIQUID3D_REQUIRE(row.size() == headers_.size(), "row arity must match header");
  rows_.push_back(std::move(row));
}

std::string TablePrinter::num(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

std::string TablePrinter::pct(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v << '%';
  return os.str();
}

void TablePrinter::print(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c) widths[c] = std::max(widths[c], row[c].size());

  auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << "  " << std::left << std::setw(static_cast<int>(widths[c])) << row[c];
    }
    os << '\n';
  };

  print_row(headers_);
  std::size_t total = 0;
  for (std::size_t w : widths) total += w + 2;
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) print_row(row);
}

}  // namespace liquid3d
