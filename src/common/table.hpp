// table.hpp — fixed-width console table printer used by the benchmark
// harnesses to print the paper's tables/figures as aligned text.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace liquid3d {

class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers);

  /// Append a row; must have the same arity as the header.
  void add_row(std::vector<std::string> row);

  /// Convenience: format doubles with fixed precision.
  static std::string num(double v, int precision = 2);
  /// Format as a percentage string, e.g. "12.3%".
  static std::string pct(double v, int precision = 1);

  /// Render with column alignment and a header separator.
  void print(std::ostream& os) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace liquid3d
