// statistics.hpp — streaming and batch statistics used by the metrics layer.
#pragma once

#include <cstddef>
#include <vector>

namespace liquid3d {

/// Numerically stable streaming mean/variance/min/max (Welford's algorithm).
class RunningStats {
 public:
  void add(double x);

  [[nodiscard]] std::size_t count() const { return n_; }
  [[nodiscard]] double mean() const { return n_ > 0 ? mean_ : 0.0; }
  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  [[nodiscard]] double variance() const;
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double min() const { return n_ > 0 ? min_ : 0.0; }
  [[nodiscard]] double max() const { return n_ > 0 ? max_ : 0.0; }
  [[nodiscard]] double sum() const { return sum_; }

  void reset() { *this = RunningStats{}; }

  /// Merge another accumulator into this one (parallel reduction).
  void merge(const RunningStats& other);

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

/// Fraction of samples for which a predicate held; used for "time above
/// threshold" style metrics throughout the evaluation.
class FractionCounter {
 public:
  void add(bool hit) {
    ++total_;
    if (hit) ++hits_;
  }
  [[nodiscard]] std::size_t hits() const { return hits_; }
  [[nodiscard]] std::size_t total() const { return total_; }
  [[nodiscard]] double fraction() const {
    return total_ > 0 ? static_cast<double>(hits_) / static_cast<double>(total_) : 0.0;
  }
  [[nodiscard]] double percent() const { return 100.0 * fraction(); }
  void reset() { *this = FractionCounter{}; }

 private:
  std::size_t hits_ = 0;
  std::size_t total_ = 0;
};

/// Batch percentile (copies and sorts; use for reporting, not hot loops).
/// p is in [0, 100]; linear interpolation between order statistics.
[[nodiscard]] double percentile(std::vector<double> values, double p);

/// Pearson correlation of two equal-length series; 0 if degenerate.
[[nodiscard]] double pearson_correlation(const std::vector<double>& a,
                                         const std::vector<double>& b);

/// Root-mean-square error between two equal-length series.
[[nodiscard]] double rmse(const std::vector<double>& a, const std::vector<double>& b);

}  // namespace liquid3d
