// fault_injection.hpp — deterministic fault injection for chaos testing.
//
// Production code marks *fault sites* — named points where a failure can be
// provoked on demand: the PCG solve reporting non-convergence, the journal
// append tearing mid-write, a sweep worker chunk blowing up.  Sites are
// compiled in unconditionally but cost a single relaxed atomic load when
// nothing is armed, so the shipping binaries carry their own chaos harness.
//
// Arming is a spec string (env var `LIQUID3D_FAULTS` or programmatic):
//
//   site[:key=K][:nth=N][:count=M][:p=P][:seed=S][:kill][;site...]
//
//   key=K    only hits carrying key K match (e.g. worker.cell keys hits by
//            the cell's grid index — `worker.cell:key=7` fails cell 7 and
//            nothing else);
//   nth=N    matching hits before the Nth (1-based) pass; default 1;
//   count=M  at most M matching hits fail from the Nth on; default
//            unlimited (0 also means unlimited);
//   p=P      each otherwise-failing hit fails with probability P, decided
//            by a hash of (seed, site, hit index) — deterministic and
//            reproducible for a fixed seed, unlike rand();
//   seed=S   the seed for p (default 0);
//   kill     deliver SIGKILL to the process instead of reporting failure —
//            the crash-injection used to exercise supervisor restarts.
//
// Sites currently wired in:
//
//   pcg.solve       PcgSolver::solve returns a non-converged summary
//   journal.append  SweepJournal::append persists a torn prefix and throws
//   worker.chunk    run_sweep_shard fails a whole chunk (hit once per chunk)
//   worker.cell     run_sweep_shard fails one cell, keyed by grid index,
//                   on every quarantine attempt the spec keeps matching
//
// Semantics of should_fail(): every call is one *hit* of the site and
// advances that spec's matching-hit counter; the return value says whether
// the site must fail this time.  Hit counters are per armed spec and per
// process, so a restarted worker replays the same deterministic schedule.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>

namespace liquid3d::fault_injection {

namespace detail {
extern std::atomic<std::uint64_t> armed_spec_count;
[[nodiscard]] bool should_fail_slow(std::string_view site, std::uint64_t key);
}  // namespace detail

/// True when at least one spec is armed (single relaxed atomic load).
[[nodiscard]] inline bool armed() {
  return detail::armed_spec_count.load(std::memory_order_relaxed) != 0;
}

/// Record one hit of `site` (with an optional matching key) and report
/// whether the site must fail.  Disarmed fast path: one atomic load, no
/// locks, no allocation.
[[nodiscard]] inline bool should_fail(std::string_view site,
                                      std::uint64_t key = 0) {
  if (!armed()) return false;
  return detail::should_fail_slow(site, key);
}

/// Arm every `;`-separated spec in `specs` (see the file comment for the
/// grammar).  Specs accumulate — arming twice adds rules.  Throws
/// ConfigError on a malformed spec.
void arm(const std::string& specs);

/// Arm from the LIQUID3D_FAULTS environment variable (no-op when unset or
/// empty).  Process entry points (tools) call this once at startup.
void arm_from_env();

/// Remove every armed spec and reset all hit counters.
void disarm_all();

/// Hits recorded against `site` while the injector was armed (telemetry /
/// test assertions).  Disarmed hits take the fast path and are not counted.
[[nodiscard]] std::uint64_t hits(std::string_view site);

/// RAII arming for tests: arms on construction, disarms everything on
/// destruction.
class ScopedFaults {
 public:
  explicit ScopedFaults(const std::string& specs) { arm(specs); }
  ~ScopedFaults() { disarm_all(); }
  ScopedFaults(const ScopedFaults&) = delete;
  ScopedFaults& operator=(const ScopedFaults&) = delete;
};

}  // namespace liquid3d::fault_injection
