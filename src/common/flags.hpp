// flags.hpp — declarative command-line flag parsing over parse.hpp.
//
// The CLI tools (serve_ctl, serve_daemon, sweep_worker) share one flag
// grammar: `--flag VALUE` pairs and bare `--flag` switches, parsed
// strictly — numeric values go through parse_u64/parse_double (full
// consumption, no trailing junk), a missing value and an unknown flag both
// throw ConfigError naming the flag and the subcommand.  Each subcommand
// declares its flags against a FlagSet and calls parse(); cross-cutting
// flags (--connect, --deadline-ms, the system axes) are registered by
// shared helpers at the call site, so they compose with every subcommand
// instead of being re-implemented per command.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <type_traits>

#include "common/error.hpp"
#include "common/parse.hpp"

namespace liquid3d {

class FlagSet {
 public:
  /// `command` names the subcommand in error messages.
  explicit FlagSet(std::string command) : command_(std::move(command)) {}

  /// `--name VALUE`, handled by `fn` (which throws ConfigError to reject).
  void value(const std::string& name,
             std::function<void(const std::string&)> fn) {
    handlers_[name] = Handler{true, std::move(fn)};
  }
  /// Bare `--name` switch.
  void toggle(const std::string& name, std::function<void()> fn) {
    handlers_[name] = Handler{false, [fn = std::move(fn)](const std::string&) {
                               fn();
                             }};
  }

  // Typed field bindings (strict parses naming the flag).
  template <class T, std::enable_if_t<std::is_unsigned_v<T>, int> = 0>
  void number(const std::string& name, T* out) {
    value(name, [name, out](const std::string& v) {
      *out = static_cast<T>(parse_u64(v, name));
    });
  }
  void number(const std::string& name, double* out) {
    value(name, [name, out](const std::string& v) { *out = parse_double(v, name); });
  }
  void text(const std::string& name, std::string* out) {
    value(name, [out](const std::string& v) { *out = v; });
  }
  void flag(const std::string& name, bool* out) {
    toggle(name, [out] { *out = true; });
  }

  /// Consumes argv[0..argc); throws ConfigError on an unknown flag or a
  /// flag missing its value.
  void parse(int argc, char** argv) const {
    for (int i = 0; i < argc; ++i) {
      const std::string flag = argv[i];
      const auto it = handlers_.find(flag);
      if (it == handlers_.end()) {
        throw ConfigError(command_ + ": unknown flag " + flag +
                          " (see --help usage)");
      }
      std::string value;
      if (it->second.takes_value) {
        LIQUID3D_REQUIRE(i + 1 < argc,
                         command_ + ": missing value for " + flag);
        value = argv[++i];
      }
      it->second.fn(value);
    }
  }

 private:
  struct Handler {
    bool takes_value = false;
    std::function<void(const std::string&)> fn;
  };
  std::map<std::string, Handler> handlers_;
  std::string command_;
};

}  // namespace liquid3d
