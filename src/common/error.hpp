// error.hpp — error handling for liquid3d.
//
// Configuration errors (bad floorplans, inconsistent grids, invalid model
// parameters) throw ConfigError; violated internal invariants throw
// LogicError.  Hot inner loops use plain assert() instead — see the solvers.
#pragma once

#include <source_location>
#include <sstream>
#include <stdexcept>
#include <string>

namespace liquid3d {

/// Raised when user-supplied configuration is invalid.
class ConfigError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Raised when an internal invariant is violated (a bug in liquid3d itself).
class LogicError : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

namespace detail {
[[noreturn]] inline void throw_config_error(const char* expr, const std::string& msg,
                                            std::source_location loc) {
  std::ostringstream os;
  os << loc.file_name() << ':' << loc.line() << ": requirement failed (" << expr << ")";
  if (!msg.empty()) os << ": " << msg;
  throw ConfigError(os.str());
}
[[noreturn]] inline void throw_logic_error(const char* expr, const std::string& msg,
                                           std::source_location loc) {
  std::ostringstream os;
  os << loc.file_name() << ':' << loc.line() << ": invariant violated (" << expr << ")";
  if (!msg.empty()) os << ": " << msg;
  throw LogicError(os.str());
}
}  // namespace detail

/// Validate user-facing preconditions; throws ConfigError with location info.
#define LIQUID3D_REQUIRE(expr, msg)                                                       \
  do {                                                                                    \
    if (!(expr))                                                                          \
      ::liquid3d::detail::throw_config_error(#expr, (msg), std::source_location::current()); \
  } while (0)

/// Validate internal invariants; throws LogicError with location info.
#define LIQUID3D_ASSERT(expr, msg)                                                       \
  do {                                                                                   \
    if (!(expr))                                                                         \
      ::liquid3d::detail::throw_logic_error(#expr, (msg), std::source_location::current()); \
  } while (0)

}  // namespace liquid3d
