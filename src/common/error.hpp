// error.hpp — error handling for liquid3d.
//
// Three exception families, by *who has to act*:
//
//   ConfigError — the caller's inputs are structurally invalid (bad
//                 floorplans, inconsistent grids, out-of-range parameters,
//                 malformed files).  Fix: correct the configuration.
//   SolverError — the inputs were valid but a numerical method failed to
//                 produce a usable solution: an iterative solve stalled at
//                 its iteration cap, a factorization/recurrence broke down,
//                 or non-finite values appeared in inputs or solutions.
//                 These are conditioning/data outcomes, not bugs and not
//                 configuration mistakes; callers may legitimately retry
//                 with a different backend, a relaxed tolerance, or a larger
//                 iteration budget (the sweep worker's quarantine ladder
//                 does exactly that).  Carries the backend name, iteration
//                 count, and final residual when known.
//   LogicError  — an internal invariant is violated (a bug in liquid3d
//                 itself).  Fix: the code.
//
// Hot inner loops use plain assert() instead — see the solvers.
#pragma once

#include <cstddef>
#include <source_location>
#include <sstream>
#include <stdexcept>
#include <string>

namespace liquid3d {

/// Raised when user-supplied configuration is invalid.
class ConfigError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Raised when an internal invariant is violated (a bug in liquid3d itself).
class LogicError : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

namespace detail {
inline std::string solver_error_message(const std::string& what,
                                        const std::string& backend,
                                        std::size_t iterations,
                                        double residual) {
  std::ostringstream os;
  os << what << " [backend=" << backend << ", iterations=" << iterations
     << ", residual=" << residual << "]";
  return os.str();
}
}  // namespace detail

/// Raised when a numerical method fails: non-convergence within an
/// iteration cap, detected breakdown (loss of positive definiteness), or
/// non-finite values in solver inputs/outputs.  Deliberately distinct from
/// ConfigError (nothing about the configuration is malformed) and
/// LogicError (nothing about the code is wrong): a SolverError is a
/// retriable per-cell outcome that fault-tolerant drivers turn into data.
class SolverError : public std::runtime_error {
 public:
  explicit SolverError(const std::string& what)
      : std::runtime_error(what) {}
  /// `backend` is the solver family that failed ("pcg", "direct", ...);
  /// `iterations` how many it spent; `residual` the final convergence
  /// measure in the method's own metric (relative residual for PCG, max
  /// temperature delta in K for the steady continuation).
  SolverError(const std::string& what, std::string backend,
              std::size_t iterations, double residual)
      : std::runtime_error(
            detail::solver_error_message(what, backend, iterations, residual)),
        backend_(std::move(backend)),
        iterations_(iterations),
        residual_(residual) {}

  [[nodiscard]] const std::string& backend() const { return backend_; }
  [[nodiscard]] std::size_t iterations() const { return iterations_; }
  [[nodiscard]] double residual() const { return residual_; }

 private:
  std::string backend_;
  std::size_t iterations_ = 0;
  double residual_ = 0.0;
};

namespace detail {
[[noreturn]] inline void throw_config_error(const char* expr, const std::string& msg,
                                            std::source_location loc) {
  std::ostringstream os;
  os << loc.file_name() << ':' << loc.line() << ": requirement failed (" << expr << ")";
  if (!msg.empty()) os << ": " << msg;
  throw ConfigError(os.str());
}
[[noreturn]] inline void throw_logic_error(const char* expr, const std::string& msg,
                                           std::source_location loc) {
  std::ostringstream os;
  os << loc.file_name() << ':' << loc.line() << ": invariant violated (" << expr << ")";
  if (!msg.empty()) os << ": " << msg;
  throw LogicError(os.str());
}
}  // namespace detail

/// Validate user-facing preconditions; throws ConfigError with location info.
#define LIQUID3D_REQUIRE(expr, msg)                                                       \
  do {                                                                                    \
    if (!(expr))                                                                          \
      ::liquid3d::detail::throw_config_error(#expr, (msg), std::source_location::current()); \
  } while (0)

/// Validate internal invariants; throws LogicError with location info.
#define LIQUID3D_ASSERT(expr, msg)                                                       \
  do {                                                                                   \
    if (!(expr))                                                                         \
      ::liquid3d::detail::throw_logic_error(#expr, (msg), std::source_location::current()); \
  } while (0)

}  // namespace liquid3d
