// parse.hpp — strict scalar parsing shared by CSV readers and CLI flags.
//
// std::stoull quietly wraps negative input ("-1" → 2^64-1) and std::stod
// accepts trailing garbage; every serialized-integer consumer here (sweep
// plans, journals, sweep_worker flags) wants the same rule instead: digits
// only, full consumption, ConfigError naming the field otherwise.
#pragma once

#include <charconv>
#include <cstdint>
#include <cstdlib>
#include <string>

#include "common/error.hpp"

namespace liquid3d {

/// Strict base-10 unsigned parse: digits only (no sign, no whitespace, no
/// trailing characters).  `what` names the field/flag in the error.
[[nodiscard]] inline std::uint64_t parse_u64(const std::string& text,
                                             const std::string& what) {
  std::uint64_t v = 0;
  const char* begin = text.data();
  const char* end = begin + text.size();
  const auto [ptr, ec] = std::from_chars(begin, end, v, 10);
  LIQUID3D_REQUIRE(ec == std::errc() && ptr == end && !text.empty(),
                   what + ": not an unsigned integer: '" + text + "'");
  return v;
}

/// Strict double parse: full consumption required ("60x" is an error, not
/// 60).  Accepts everything strtod does otherwise (sign, exponent); built
/// on strtod rather than std::stod so subnormals round to the nearest
/// representable value instead of throwing out_of_range.
[[nodiscard]] inline double parse_double(const std::string& text,
                                         const std::string& what) {
  const char* begin = text.c_str();
  char* end = nullptr;
  const double v = std::strtod(begin, &end);
  LIQUID3D_REQUIRE(end == begin + text.size() && !text.empty(),
                   what + ": not a number: '" + text + "'");
  return v;
}

}  // namespace liquid3d
