#include "common/fault_injection.hpp"

#include <csignal>
#include <cstdlib>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "common/error.hpp"
#include "common/parse.hpp"

namespace liquid3d::fault_injection {

namespace detail {
std::atomic<std::uint64_t> armed_spec_count{0};
}  // namespace detail

namespace {

constexpr std::uint64_t kUnlimited = ~std::uint64_t{0};

struct Spec {
  std::string site;
  bool has_key = false;
  std::uint64_t key = 0;
  std::uint64_t nth = 1;            ///< first matching hit that fails
  std::uint64_t count = kUnlimited; ///< matching hits that fail from nth on
  double probability = 1.0;
  std::uint64_t seed = 0;
  bool kill = false;
  std::uint64_t matching_hits = 0;  ///< counter, advanced per matching hit
};

struct Registry {
  std::mutex mutex;
  std::vector<Spec> specs;
  std::unordered_map<std::string, std::uint64_t> site_hits;
};

Registry& registry() {
  static Registry r;
  return r;
}

/// splitmix64 — the same mixer the scenario cell seeds use; good avalanche,
/// no state.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

std::uint64_t fnv1a(std::string_view s) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ull;
  }
  return h;
}

/// Deterministic per-hit coin flip: uniform in [0, 1) from (seed, site,
/// hit index).
double hit_uniform(const Spec& spec, std::uint64_t hit_index) {
  const std::uint64_t h =
      mix64(spec.seed ^ mix64(fnv1a(spec.site)) ^ hit_index);
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

Spec parse_spec(const std::string& text) {
  Spec spec;
  std::size_t pos = 0;
  std::size_t colon = text.find(':');
  spec.site = text.substr(0, colon == std::string::npos ? text.size() : colon);
  LIQUID3D_REQUIRE(!spec.site.empty(),
                   "fault spec '" + text + "': empty site name");
  pos = colon;
  while (pos != std::string::npos) {
    ++pos;  // past ':'
    colon = text.find(':', pos);
    const std::string field =
        text.substr(pos, colon == std::string::npos ? std::string::npos
                                                    : colon - pos);
    const std::size_t eq = field.find('=');
    const std::string name = field.substr(0, eq);
    const std::string value =
        eq == std::string::npos ? std::string() : field.substr(eq + 1);
    if (name == "key") {
      spec.has_key = true;
      spec.key = parse_u64(value, "fault spec '" + text + "' key");
    } else if (name == "nth") {
      spec.nth = parse_u64(value, "fault spec '" + text + "' nth");
      LIQUID3D_REQUIRE(spec.nth >= 1,
                       "fault spec '" + text + "': nth must be >= 1");
    } else if (name == "count") {
      spec.count = parse_u64(value, "fault spec '" + text + "' count");
      if (spec.count == 0) spec.count = kUnlimited;
    } else if (name == "p") {
      spec.probability = parse_double(value, "fault spec '" + text + "' p");
      LIQUID3D_REQUIRE(spec.probability >= 0.0 && spec.probability <= 1.0,
                       "fault spec '" + text + "': p must be in [0, 1]");
    } else if (name == "seed") {
      spec.seed = parse_u64(value, "fault spec '" + text + "' seed");
    } else if (name == "kill") {
      LIQUID3D_REQUIRE(eq == std::string::npos,
                       "fault spec '" + text + "': kill takes no value");
      spec.kill = true;
    } else {
      throw ConfigError("fault spec '" + text + "': unknown field '" + name +
                        "'");
    }
    pos = colon;
  }
  return spec;
}

}  // namespace

namespace detail {

bool should_fail_slow(std::string_view site, std::uint64_t key) {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mutex);
  ++r.site_hits[std::string(site)];
  bool fail = false;
  bool kill = false;
  for (Spec& spec : r.specs) {
    if (spec.site != site) continue;
    if (spec.has_key && spec.key != key) continue;
    const std::uint64_t hit = ++spec.matching_hits;  // 1-based
    if (hit < spec.nth) continue;
    if (spec.count != kUnlimited && hit >= spec.nth + spec.count) continue;
    if (spec.probability < 1.0 && hit_uniform(spec, hit) >= spec.probability) {
      continue;
    }
    fail = true;
    kill = kill || spec.kill;
  }
  if (kill) {
    ::raise(SIGKILL);  // crash injection: no cleanup, exactly like kill -9
  }
  return fail;
}

}  // namespace detail

void arm(const std::string& specs) {
  std::vector<Spec> parsed;
  std::size_t pos = 0;
  while (pos <= specs.size()) {
    const std::size_t semi = specs.find(';', pos);
    const std::string one =
        specs.substr(pos, semi == std::string::npos ? std::string::npos
                                                    : semi - pos);
    if (!one.empty()) parsed.push_back(parse_spec(one));
    if (semi == std::string::npos) break;
    pos = semi + 1;
  }
  if (parsed.empty()) return;
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mutex);
  for (Spec& spec : parsed) r.specs.push_back(std::move(spec));
  detail::armed_spec_count.store(r.specs.size(), std::memory_order_relaxed);
}

void arm_from_env() {
  const char* env = std::getenv("LIQUID3D_FAULTS");
  if (env != nullptr && env[0] != '\0') arm(env);
}

void disarm_all() {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mutex);
  r.specs.clear();
  r.site_hits.clear();
  detail::armed_spec_count.store(0, std::memory_order_relaxed);
}

std::uint64_t hits(std::string_view site) {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mutex);
  const auto it = r.site_hits.find(std::string(site));
  return it == r.site_hits.end() ? 0 : it->second;
}

}  // namespace liquid3d::fault_injection
