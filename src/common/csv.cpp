#include "common/csv.hpp"

#include <istream>
#include <sstream>

#include "common/error.hpp"

namespace liquid3d {

std::string csv_escape(const std::string& field) {
  // '\r' must trigger quoting too: the reader treats an unquoted CRLF as a
  // line ending, so a bare trailing CR would not round-trip.
  if (field.find_first_of(",\"\n\r") == std::string::npos) return field;
  std::string out = "\"";
  for (char ch : field) {
    if (ch == '"') out += '"';
    out += ch;
  }
  out += '"';
  return out;
}

std::string to_csv_line(const std::vector<std::string>& row) {
  std::string line;
  for (std::size_t i = 0; i < row.size(); ++i) {
    if (i) line += ',';
    line += csv_escape(row[i]);
  }
  line += '\n';
  return line;
}

bool read_csv_record(std::istream& in, std::vector<std::string>& fields,
                     bool* terminated) {
  fields.clear();
  if (terminated != nullptr) *terminated = false;

  std::string field;
  bool in_quotes = false;
  bool any = false;  ///< consumed at least one character of a record
  int c;
  while ((c = in.get()) != std::char_traits<char>::eof()) {
    const char ch = static_cast<char>(c);
    any = true;
    if (in_quotes) {
      if (ch == '"') {
        if (in.peek() == '"') {
          field += '"';
          in.get();
        } else {
          in_quotes = false;
        }
      } else {
        field += ch;
      }
      continue;
    }
    if (ch == '"' && field.empty()) {
      in_quotes = true;
    } else if (ch == ',') {
      fields.push_back(std::move(field));
      field.clear();
    } else if (ch == '\n') {
      fields.push_back(std::move(field));
      if (terminated != nullptr) *terminated = true;
      return true;
    } else if (ch == '\r' && in.peek() == '\n') {
      // CRLF line ending: swallow the CR, let the LF terminate.
      continue;
    } else {
      field += ch;
    }
  }
  if (!any) return false;
  // Input ended mid-record (no trailing newline, or inside a quoted field):
  // return what we have with terminated=false so the caller can treat it as
  // a torn tail.
  fields.push_back(std::move(field));
  return true;
}

CsvWriter::CsvWriter(const std::string& path, const std::vector<std::string>& header)
    : out_(path), arity_(header.size()) {
  LIQUID3D_REQUIRE(arity_ > 0, "csv header must be non-empty");
  add_row(header);
}

void CsvWriter::add_row(const std::vector<std::string>& row) {
  LIQUID3D_REQUIRE(row.size() == arity_, "csv row arity mismatch");
  for (std::size_t i = 0; i < row.size(); ++i) {
    if (i) out_ << ',';
    out_ << csv_escape(row[i]);
  }
  out_ << '\n';
}

void CsvWriter::add_row(const std::vector<double>& row) {
  std::vector<std::string> cells;
  cells.reserve(row.size());
  for (double v : row) {
    std::ostringstream os;
    os << v;
    cells.push_back(os.str());
  }
  add_row(cells);
}

}  // namespace liquid3d
