#include "common/csv.hpp"

#include <sstream>

#include "common/error.hpp"

namespace liquid3d {

namespace {
std::string escape(const std::string& field) {
  if (field.find_first_of(",\"\n") == std::string::npos) return field;
  std::string out = "\"";
  for (char ch : field) {
    if (ch == '"') out += '"';
    out += ch;
  }
  out += '"';
  return out;
}
}  // namespace

CsvWriter::CsvWriter(const std::string& path, const std::vector<std::string>& header)
    : out_(path), arity_(header.size()) {
  LIQUID3D_REQUIRE(arity_ > 0, "csv header must be non-empty");
  add_row(header);
}

void CsvWriter::add_row(const std::vector<std::string>& row) {
  LIQUID3D_REQUIRE(row.size() == arity_, "csv row arity mismatch");
  for (std::size_t i = 0; i < row.size(); ++i) {
    if (i) out_ << ',';
    out_ << escape(row[i]);
  }
  out_ << '\n';
}

void CsvWriter::add_row(const std::vector<double>& row) {
  std::vector<std::string> cells;
  cells.reserve(row.size());
  for (double v : row) {
    std::ostringstream os;
    os << v;
    cells.push_back(os.str());
  }
  add_row(cells);
}

}  // namespace liquid3d
