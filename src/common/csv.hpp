// csv.hpp — minimal CSV writer so benchmark harnesses can dump the series
// behind each figure for external plotting.
#pragma once

#include <fstream>
#include <string>
#include <vector>

namespace liquid3d {

class CsvWriter {
 public:
  /// Opens (truncates) `path` and writes the header row.
  CsvWriter(const std::string& path, const std::vector<std::string>& header);

  void add_row(const std::vector<std::string>& row);
  void add_row(const std::vector<double>& row);

  [[nodiscard]] bool ok() const { return static_cast<bool>(out_); }

 private:
  std::ofstream out_;
  std::size_t arity_;
};

}  // namespace liquid3d
