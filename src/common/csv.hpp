// csv.hpp — minimal CSV writer/reader (RFC-4180 subset).
//
// The writer lets benchmark harnesses dump the series behind each figure
// for external plotting; the reader is the inverse used by the sweep
// subsystem (shard files, checkpoint journals, merged reports): fields
// containing commas, quotes, or newlines round-trip through double-quoting.
#pragma once

#include <fstream>
#include <iosfwd>
#include <string>
#include <vector>

namespace liquid3d {

/// Double-quote `field` if (and only if) it contains a comma, quote, or
/// newline; embedded quotes are doubled (RFC-4180).
[[nodiscard]] std::string csv_escape(const std::string& field);

/// One escaped, comma-joined, '\n'-terminated line.  The journal relies on
/// a record being a single contiguous string: one write() per record.
[[nodiscard]] std::string to_csv_line(const std::vector<std::string>& row);

/// Read one CSV record into `fields` (cleared first).  Handles quoted
/// fields with embedded separators, doubled quotes, and newlines — a record
/// may therefore span multiple physical lines.  Returns false at a clean
/// end of input (no record started).
///
/// `terminated` (when non-null) reports whether the record ended with a
/// newline outside quotes: false means the input ended mid-record (a torn
/// tail from a killed writer) — callers decide whether to drop or reject.
bool read_csv_record(std::istream& in, std::vector<std::string>& fields,
                     bool* terminated = nullptr);

class CsvWriter {
 public:
  /// Opens (truncates) `path` and writes the header row.
  CsvWriter(const std::string& path, const std::vector<std::string>& header);

  void add_row(const std::vector<std::string>& row);
  void add_row(const std::vector<double>& row);

  [[nodiscard]] bool ok() const { return static_cast<bool>(out_); }

 private:
  std::ofstream out_;
  std::size_t arity_;
};

}  // namespace liquid3d
