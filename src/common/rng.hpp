// rng.hpp — deterministic pseudo-random number generation.
//
// All stochastic parts of liquid3d (workload synthesis, thread lengths,
// arrival jitter) draw from this xoshiro256++ generator so that experiments
// are bit-reproducible given a seed.  We deliberately avoid std::mt19937 +
// std::*_distribution because their outputs are not guaranteed identical
// across standard library implementations.
#pragma once

#include <cmath>
#include <cstdint>
#include <numbers>

namespace liquid3d {

/// xoshiro256++ by Blackman & Vigna (public domain reference implementation,
/// re-expressed); fast, high-quality 64-bit generator.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) {
    // SplitMix64 seeding as recommended by the xoshiro authors.
    std::uint64_t x = seed;
    for (auto& s : state_) {
      x += 0x9e3779b97f4a7c15ULL;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      s = z ^ (z >> 31);
    }
  }

  /// Next raw 64-bit value.
  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(state_[0] + state_[3], 23) + state_[0];
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double uniform() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  /// Uniform integer in [0, n) for n > 0.
  std::uint64_t uniform_index(std::uint64_t n) {
    // Lemire's unbiased bounded generation (simplified rejection form).
    const std::uint64_t threshold = (~n + 1) % n;  // (2^64 - n) mod n
    for (;;) {
      const std::uint64_t r = next_u64();
      if (r >= threshold) return r % n;
    }
  }

  /// Standard normal via Box–Muller (polar-free form, deterministic).
  double normal() {
    if (have_spare_) {
      have_spare_ = false;
      return spare_;
    }
    const double u1 = 1.0 - uniform();  // avoid log(0)
    const double u2 = uniform();
    const double r = std::sqrt(-2.0 * std::log(u1));
    const double theta = 2.0 * std::numbers::pi * u2;
    spare_ = r * std::sin(theta);
    have_spare_ = true;
    return r * std::cos(theta);
  }

  /// Normal with given mean and standard deviation.
  double normal(double mean, double stddev) { return mean + stddev * normal(); }

  /// Exponential with given mean (> 0).
  double exponential(double mean) { return -mean * std::log(1.0 - uniform()); }

  /// Bernoulli trial with probability p.
  bool bernoulli(double p) { return uniform() < p; }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4] = {};
  double spare_ = 0.0;
  bool have_spare_ = false;
};

}  // namespace liquid3d
