// ring_buffer.hpp — fixed-capacity circular buffer.
//
// Used for temperature histories (ARMA input windows, SPRT residual windows,
// thermal-cycle sliding windows).  Overwrites the oldest element when full.
#pragma once

#include <cstddef>
#include <vector>

#include "common/error.hpp"

namespace liquid3d {

template <typename T>
class RingBuffer {
 public:
  explicit RingBuffer(std::size_t capacity) : data_(capacity) {
    LIQUID3D_REQUIRE(capacity > 0, "ring buffer capacity must be positive");
  }

  /// Append a value, evicting the oldest if at capacity.
  void push(const T& v) {
    if (size_ < data_.size()) {
      data_[(head_ + size_) % data_.size()] = v;
      ++size_;
    } else {
      data_[head_] = v;
      head_ = (head_ + 1) % data_.size();
    }
  }

  /// Element i, where 0 is the OLDEST retained element.
  [[nodiscard]] const T& operator[](std::size_t i) const {
    LIQUID3D_ASSERT(i < size_, "ring buffer index out of range");
    return data_[(head_ + i) % data_.size()];
  }

  /// The most recently pushed element.
  [[nodiscard]] const T& back() const {
    LIQUID3D_ASSERT(size_ > 0, "ring buffer is empty");
    return (*this)[size_ - 1];
  }

  /// The oldest retained element.
  [[nodiscard]] const T& front() const {
    LIQUID3D_ASSERT(size_ > 0, "ring buffer is empty");
    return (*this)[0];
  }

  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] std::size_t capacity() const { return data_.size(); }
  [[nodiscard]] bool empty() const { return size_ == 0; }
  [[nodiscard]] bool full() const { return size_ == data_.size(); }

  void clear() {
    head_ = 0;
    size_ = 0;
  }

  /// Copy contents oldest-to-newest into a vector (for fitting routines).
  [[nodiscard]] std::vector<T> to_vector() const {
    std::vector<T> out;
    out.reserve(size_);
    for (std::size_t i = 0; i < size_; ++i) out.push_back((*this)[i]);
    return out;
  }

 private:
  std::vector<T> data_;
  std::size_t head_ = 0;
  std::size_t size_ = 0;
};

}  // namespace liquid3d
