// units.hpp — lightweight unit helpers for the liquid3d library.
//
// The thermal, hydraulic, and power models mix SI and "datasheet" units
// (l/min, ml/min, l/h, mm, µm, mbar).  To keep call sites honest we provide
// explicit conversion helpers and a small set of strong wrapper types for the
// quantities that are easiest to confuse (flow rates in particular, which the
// paper quotes in three different units across Table I, Fig. 3, and Fig. 5).
#pragma once

#include <compare>
#include <cstdint>

namespace liquid3d {

// ---------------------------------------------------------------------------
// Scalar conversion helpers (all return SI unless suffixed otherwise).
// ---------------------------------------------------------------------------

/// Microns to meters.
constexpr double um(double v) { return v * 1e-6; }
/// Millimeters to meters.
constexpr double mm(double v) { return v * 1e-3; }
/// Square millimeters to square meters.
constexpr double mm2(double v) { return v * 1e-6; }
/// Square centimeters to square meters.
constexpr double cm2(double v) { return v * 1e-4; }
/// Celsius to Kelvin.
constexpr double celsius_to_kelvin(double c) { return c + 273.15; }
/// Kelvin to Celsius.
constexpr double kelvin_to_celsius(double k) { return k - 273.15; }
/// Milliseconds to seconds.
constexpr double ms(double v) { return v * 1e-3; }

// ---------------------------------------------------------------------------
// VolumetricFlow — strong type for coolant flow.
//
// Internally stored in m^3/s; constructed from and read back in any of the
// paper's units.  Comparison operators make look-up-table code read naturally.
// ---------------------------------------------------------------------------
class VolumetricFlow {
 public:
  constexpr VolumetricFlow() = default;

  [[nodiscard]] static constexpr VolumetricFlow from_m3_per_s(double v) {
    return VolumetricFlow{v};
  }
  [[nodiscard]] static constexpr VolumetricFlow from_l_per_min(double v) {
    return VolumetricFlow{v * 1e-3 / 60.0};
  }
  [[nodiscard]] static constexpr VolumetricFlow from_ml_per_min(double v) {
    return VolumetricFlow{v * 1e-6 / 60.0};
  }
  [[nodiscard]] static constexpr VolumetricFlow from_l_per_hour(double v) {
    return VolumetricFlow{v * 1e-3 / 3600.0};
  }

  [[nodiscard]] constexpr double m3_per_s() const { return m3s_; }
  [[nodiscard]] constexpr double l_per_min() const { return m3s_ * 60.0 * 1e3; }
  [[nodiscard]] constexpr double ml_per_min() const { return m3s_ * 60.0 * 1e6; }
  [[nodiscard]] constexpr double l_per_hour() const { return m3s_ * 3600.0 * 1e3; }

  [[nodiscard]] constexpr bool is_zero() const { return m3s_ == 0.0; }

  constexpr auto operator<=>(const VolumetricFlow&) const = default;

  [[nodiscard]] constexpr VolumetricFlow operator*(double s) const {
    return VolumetricFlow{m3s_ * s};
  }
  [[nodiscard]] constexpr VolumetricFlow operator/(double s) const {
    return VolumetricFlow{m3s_ / s};
  }
  [[nodiscard]] constexpr VolumetricFlow operator+(VolumetricFlow o) const {
    return VolumetricFlow{m3s_ + o.m3s_};
  }
  [[nodiscard]] constexpr VolumetricFlow operator-(VolumetricFlow o) const {
    return VolumetricFlow{m3s_ - o.m3s_};
  }

 private:
  constexpr explicit VolumetricFlow(double m3s) : m3s_(m3s) {}
  double m3s_ = 0.0;
};

// ---------------------------------------------------------------------------
// Simulated time — integer milliseconds to avoid floating-point drift over
// half-hour traces sampled at 100 ms.
// ---------------------------------------------------------------------------
class SimTime {
 public:
  constexpr SimTime() = default;

  [[nodiscard]] static constexpr SimTime from_ms(std::int64_t v) { return SimTime{v}; }
  [[nodiscard]] static constexpr SimTime from_s(double v) {
    return SimTime{static_cast<std::int64_t>(v * 1e3 + 0.5)};
  }

  [[nodiscard]] constexpr std::int64_t as_ms() const { return ms_; }
  [[nodiscard]] constexpr double as_s() const { return static_cast<double>(ms_) * 1e-3; }

  constexpr auto operator<=>(const SimTime&) const = default;

  constexpr SimTime& operator+=(SimTime o) {
    ms_ += o.ms_;
    return *this;
  }
  [[nodiscard]] constexpr SimTime operator+(SimTime o) const { return SimTime{ms_ + o.ms_}; }
  [[nodiscard]] constexpr SimTime operator-(SimTime o) const { return SimTime{ms_ - o.ms_}; }

 private:
  constexpr explicit SimTime(std::int64_t v) : ms_(v) {}
  std::int64_t ms_ = 0;
};

}  // namespace liquid3d
