#include "common/linalg.hpp"

#include <cmath>

#include "common/error.hpp"

namespace liquid3d {

Matrix::Matrix(std::size_t rows, std::size_t cols, double fill)
    : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

Matrix Matrix::transposed() const {
  Matrix t(cols_, rows_);
  for (std::size_t r = 0; r < rows_; ++r)
    for (std::size_t c = 0; c < cols_; ++c) t(c, r) = (*this)(r, c);
  return t;
}

Matrix Matrix::operator*(const Matrix& rhs) const {
  LIQUID3D_REQUIRE(cols_ == rhs.rows_, "matrix multiply dimension mismatch");
  Matrix out(rows_, rhs.cols_);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t k = 0; k < cols_; ++k) {
      const double a = (*this)(r, k);
      if (a == 0.0) continue;
      for (std::size_t c = 0; c < rhs.cols_; ++c) out(r, c) += a * rhs(k, c);
    }
  }
  return out;
}

std::vector<double> Matrix::operator*(const std::vector<double>& v) const {
  LIQUID3D_REQUIRE(cols_ == v.size(), "matrix-vector dimension mismatch");
  std::vector<double> out(rows_, 0.0);
  for (std::size_t r = 0; r < rows_; ++r) {
    double acc = 0.0;
    for (std::size_t c = 0; c < cols_; ++c) acc += (*this)(r, c) * v[c];
    out[r] = acc;
  }
  return out;
}

Matrix Matrix::identity(std::size_t n) {
  Matrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

std::vector<double> solve_linear(Matrix a, std::vector<double> b) {
  LIQUID3D_REQUIRE(a.rows() == a.cols(), "solve_linear requires square matrix");
  LIQUID3D_REQUIRE(a.rows() == b.size(), "solve_linear rhs size mismatch");
  const std::size_t n = a.rows();

  for (std::size_t col = 0; col < n; ++col) {
    // Partial pivot.
    std::size_t pivot = col;
    double best = std::abs(a(col, col));
    for (std::size_t r = col + 1; r < n; ++r) {
      if (std::abs(a(r, col)) > best) {
        best = std::abs(a(r, col));
        pivot = r;
      }
    }
    LIQUID3D_REQUIRE(best > 1e-300, "solve_linear: singular matrix");
    if (pivot != col) {
      for (std::size_t c = 0; c < n; ++c) std::swap(a(col, c), a(pivot, c));
      std::swap(b[col], b[pivot]);
    }
    // Eliminate below.
    const double inv = 1.0 / a(col, col);
    for (std::size_t r = col + 1; r < n; ++r) {
      const double f = a(r, col) * inv;
      if (f == 0.0) continue;
      for (std::size_t c = col; c < n; ++c) a(r, c) -= f * a(col, c);
      b[r] -= f * b[col];
    }
  }
  // Back substitution.
  std::vector<double> x(n, 0.0);
  for (std::size_t ri = n; ri-- > 0;) {
    double acc = b[ri];
    for (std::size_t c = ri + 1; c < n; ++c) acc -= a(ri, c) * x[c];
    x[ri] = acc / a(ri, ri);
  }
  return x;
}

std::vector<double> solve_least_squares(const Matrix& a, const std::vector<double>& b,
                                        double ridge) {
  LIQUID3D_REQUIRE(a.rows() == b.size(), "least squares rhs size mismatch");
  LIQUID3D_REQUIRE(a.rows() >= a.cols(), "least squares is under-determined");
  const Matrix at = a.transposed();
  Matrix ata = at * a;
  // Ridge scaled by the diagonal magnitude keeps conditioning stable without
  // visibly biasing well-posed fits.
  double diag_max = 0.0;
  for (std::size_t i = 0; i < ata.rows(); ++i) diag_max = std::max(diag_max, ata(i, i));
  const double lambda = ridge * std::max(diag_max, 1.0);
  for (std::size_t i = 0; i < ata.rows(); ++i) ata(i, i) += lambda;
  return solve_linear(std::move(ata), at * b);
}

}  // namespace liquid3d
