#include "common/statistics.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace liquid3d {

void RunningStats::add(double x) {
  ++n_;
  sum_ += x;
  if (n_ == 1) {
    mean_ = x;
    min_ = x;
    max_ = x;
    m2_ = 0.0;
    return;
  }
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

double RunningStats::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

void RunningStats::merge(const RunningStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const auto na = static_cast<double>(n_);
  const auto nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  n_ += other.n_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double percentile(std::vector<double> values, double p) {
  LIQUID3D_REQUIRE(!values.empty(), "percentile of empty set");
  LIQUID3D_REQUIRE(p >= 0.0 && p <= 100.0, "percentile must be in [0,100]");
  std::sort(values.begin(), values.end());
  if (values.size() == 1) return values.front();
  const double rank = p / 100.0 * static_cast<double>(values.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const auto hi = std::min(lo + 1, values.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return values[lo] * (1.0 - frac) + values[hi] * frac;
}

double pearson_correlation(const std::vector<double>& a, const std::vector<double>& b) {
  LIQUID3D_REQUIRE(a.size() == b.size(), "correlation requires equal lengths");
  if (a.size() < 2) return 0.0;
  RunningStats sa;
  RunningStats sb;
  for (double x : a) sa.add(x);
  for (double x : b) sb.add(x);
  if (sa.stddev() == 0.0 || sb.stddev() == 0.0) return 0.0;
  double cov = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    cov += (a[i] - sa.mean()) * (b[i] - sb.mean());
  }
  cov /= static_cast<double>(a.size() - 1);
  return cov / (sa.stddev() * sb.stddev());
}

double rmse(const std::vector<double>& a, const std::vector<double>& b) {
  LIQUID3D_REQUIRE(a.size() == b.size(), "rmse requires equal lengths");
  LIQUID3D_REQUIRE(!a.empty(), "rmse of empty series");
  double acc = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double d = a[i] - b[i];
    acc += d * d;
  }
  return std::sqrt(acc / static_cast<double>(a.size()));
}

}  // namespace liquid3d
