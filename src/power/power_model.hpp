// power_model.hpp — per-unit power consumption (Sec. V).
//
// Paper values: core active power 3 W (UltraSPARC T1, peak ≈ average), sleep
// power 0.02 W; L2 cache 1.28 W per bank (CACTI 4.0, verified against the
// ISSCC'06 numbers); crossbar power scaled with the number of active cores
// and memory accesses; leakage via the polynomial temperature model.
// The idle (clocked but unassigned) core power is not printed in the paper;
// we use 0.9 W (~30 % of active), a common ratio for in-order multithreaded
// cores of that generation.
#pragma once

#include "power/leakage.hpp"

namespace liquid3d {

/// Core power states.  Idle means clocked with an empty run queue; Sleep is
/// the DPM low-power state entered after the fixed timeout.
enum class CoreState { kActive, kIdle, kSleep };

[[nodiscard]] const char* to_string(CoreState s);

struct PowerModelParams {
  double core_active_w = 3.0;   ///< paper / ISSCC'06
  /// The T1's average power is close to its peak ("SPARC's peak power is
  /// close to its average value") — an idle-but-clocked core still burns a
  /// large fraction of active power.
  double core_idle_w = 1.5;
  double core_sleep_w = 0.02;   ///< paper
  double l2_w = 1.28;           ///< paper / CACTI 4.0
  double crossbar_max_w = 3.0;  ///< crossbar at full activity (paper's value)
  /// Crossbar idle floor as a fraction of max (clock distribution etc.).
  double crossbar_floor_frac = 0.25;
  /// Background (misc blocks: memory controllers, DRAM interface, IO) areal
  /// power density; sized so the 2-layer chip lands near the T1's power
  /// envelope at high load.
  double misc_w_per_m2 = 8.0e4;

  // Reference leakage per unit at the leakage model's reference temperature.
  double core_leak_ref_w = 0.50;
  double l2_leak_ref_w = 0.35;
  double crossbar_leak_ref_w = 0.25;
  double misc_leak_ref_w_per_m2 = 1.5e4;

  LeakageParams leakage{};
};

class PowerModel {
 public:
  explicit PowerModel(PowerModelParams params = {});

  [[nodiscard]] const PowerModelParams& params() const { return params_; }
  [[nodiscard]] const LeakageModel& leakage() const { return leakage_; }

  /// Core dynamic + leakage power for one sampling interval.
  ///   state    — DPM state during the interval,
  ///   busy     — fraction of the interval the core executed threads [0,1],
  ///   activity — benchmark-dependent switching intensity (FP-heavy code
  ///              runs hotter); 1.0 is nominal,
  ///   temperature_c — block temperature for the leakage term.
  [[nodiscard]] double core_power(CoreState state, double busy, double activity,
                                  double temperature_c) const;

  /// L2 bank power (paper: constant dynamic power + leakage).
  [[nodiscard]] double l2_power(double temperature_c) const;

  /// Crossbar power scaled by active-core fraction and memory intensity
  /// (both in [0,1]); the paper scales the average crossbar power by the
  /// number of active cores and the memory accesses.
  [[nodiscard]] double crossbar_power(double active_core_fraction,
                                      double memory_intensity,
                                      double temperature_c) const;

  /// Background power for a misc block of the given area [m^2].
  [[nodiscard]] double misc_power(double area_m2, double temperature_c) const;

 private:
  PowerModelParams params_;
  LeakageModel leakage_;
};

}  // namespace liquid3d
