// leakage.hpp — temperature-dependent leakage power.
//
// The paper accounts for the leakage-temperature feedback loop using the
// polynomial full-chip leakage model of Su et al. [ISLPED'03].  We implement
// the same functional form: a quadratic polynomial in temperature, normalized
// to 1.0 at a reference temperature, multiplying a per-block reference
// leakage power.  This is the term that makes *over*-cooling pay off up to a
// point and *under*-cooling self-reinforcing; the controller has to keep the
// system in the regime where pump savings are not eaten by leakage.
#pragma once

namespace liquid3d {

struct LeakageParams {
  double reference_temperature = 80.0;  ///< °C at which the scale factor is 1
  double linear_coeff = 0.016;          ///< 1/K
  double quadratic_coeff = 8.0e-5;      ///< 1/K^2
};

class LeakageModel {
 public:
  explicit LeakageModel(LeakageParams params = {});

  /// Scale factor relative to the reference temperature (>= 0, clamped).
  [[nodiscard]] double scale(double temperature_c) const;

  /// Leakage power for a block with the given reference leakage [W].
  [[nodiscard]] double power(double reference_watts, double temperature_c) const {
    return reference_watts * scale(temperature_c);
  }

  [[nodiscard]] const LeakageParams& params() const { return params_; }

 private:
  LeakageParams params_;
};

}  // namespace liquid3d
