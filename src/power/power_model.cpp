#include "power/power_model.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace liquid3d {

const char* to_string(CoreState s) {
  switch (s) {
    case CoreState::kActive: return "active";
    case CoreState::kIdle: return "idle";
    case CoreState::kSleep: return "sleep";
  }
  return "?";
}

PowerModel::PowerModel(PowerModelParams params)
    : params_(params), leakage_(params.leakage) {
  LIQUID3D_REQUIRE(params_.core_active_w >= params_.core_idle_w &&
                       params_.core_idle_w >= params_.core_sleep_w,
                   "core power states must be ordered active >= idle >= sleep");
}

double PowerModel::core_power(CoreState state, double busy, double activity,
                              double temperature_c) const {
  LIQUID3D_REQUIRE(busy >= 0.0 && busy <= 1.0, "busy fraction out of range");
  double dynamic = 0.0;
  switch (state) {
    case CoreState::kSleep:
      // Sleeping cores are power- and clock-gated; leakage is already folded
      // into the (tiny) sleep power figure.
      return params_.core_sleep_w;
    case CoreState::kIdle:
      dynamic = params_.core_idle_w;
      break;
    case CoreState::kActive:
      dynamic = params_.core_idle_w +
                (params_.core_active_w * activity - params_.core_idle_w) * busy;
      break;
  }
  return dynamic + leakage_.power(params_.core_leak_ref_w, temperature_c);
}

double PowerModel::l2_power(double temperature_c) const {
  return params_.l2_w + leakage_.power(params_.l2_leak_ref_w, temperature_c);
}

double PowerModel::crossbar_power(double active_core_fraction, double memory_intensity,
                                  double temperature_c) const {
  const double a = std::clamp(active_core_fraction, 0.0, 1.0);
  const double m = std::clamp(memory_intensity, 0.0, 1.0);
  const double scale =
      params_.crossbar_floor_frac +
      (1.0 - params_.crossbar_floor_frac) * a * (0.5 + 0.5 * m);
  return params_.crossbar_max_w * scale +
         leakage_.power(params_.crossbar_leak_ref_w, temperature_c);
}

double PowerModel::misc_power(double area_m2, double temperature_c) const {
  return params_.misc_w_per_m2 * area_m2 +
         leakage_.power(params_.misc_leak_ref_w_per_m2 * area_m2, temperature_c);
}

}  // namespace liquid3d
