// energy.cpp — EnergyAccountant is header-only; this TU anchors the library.
#include "power/energy.hpp"
