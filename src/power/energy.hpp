// energy.hpp — energy bookkeeping for the evaluation (Figs. 6 and 8).
//
// The paper reports chip energy and pump (cooling) energy separately, both
// normalized to the LB-on-air baseline.  Fan energy of the air-cooled system
// is intentionally not modeled (the paper excludes it as well).
#pragma once

#include <cstddef>

namespace liquid3d {

class EnergyAccountant {
 public:
  /// Accumulate one interval's consumption [W x s].
  void add_interval(double chip_watts, double pump_watts, double interval_s) {
    chip_j_ += chip_watts * interval_s;
    pump_j_ += pump_watts * interval_s;
    elapsed_s_ += interval_s;
  }

  [[nodiscard]] double chip_joules() const { return chip_j_; }
  [[nodiscard]] double pump_joules() const { return pump_j_; }
  [[nodiscard]] double total_joules() const { return chip_j_ + pump_j_; }
  [[nodiscard]] double elapsed_seconds() const { return elapsed_s_; }

  [[nodiscard]] double average_chip_watts() const {
    return elapsed_s_ > 0.0 ? chip_j_ / elapsed_s_ : 0.0;
  }
  [[nodiscard]] double average_pump_watts() const {
    return elapsed_s_ > 0.0 ? pump_j_ / elapsed_s_ : 0.0;
  }

  void reset() { *this = EnergyAccountant{}; }

 private:
  double chip_j_ = 0.0;
  double pump_j_ = 0.0;
  double elapsed_s_ = 0.0;
};

}  // namespace liquid3d
