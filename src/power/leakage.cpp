#include "power/leakage.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace liquid3d {

LeakageModel::LeakageModel(LeakageParams params) : params_(params) {
  LIQUID3D_REQUIRE(params_.linear_coeff >= 0.0 && params_.quadratic_coeff >= 0.0,
                   "leakage must be non-decreasing in temperature");
}

double LeakageModel::scale(double temperature_c) const {
  const double dt = temperature_c - params_.reference_temperature;
  const double s = 1.0 + params_.linear_coeff * dt + params_.quadratic_coeff * dt * dt;
  return std::max(0.0, s);
}

}  // namespace liquid3d
