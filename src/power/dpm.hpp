// dpm.hpp — dynamic power management (Sec. V).
//
// The paper evaluates a fixed-timeout DPM policy: a core that has been idle
// longer than the timeout (200 ms in the experiments) is put to sleep; it
// wakes when work arrives.  DPM is what creates the large thermal cycles
// Fig. 7 measures, so the policy also counts its transitions.
#pragma once

#include <cstddef>
#include <vector>

#include "common/units.hpp"
#include "power/power_model.hpp"

namespace liquid3d {

struct DpmParams {
  bool enabled = true;
  SimTime timeout = SimTime::from_ms(200);  ///< paper
};

class FixedTimeoutDpm {
 public:
  FixedTimeoutDpm(std::size_t core_count, DpmParams params = {});

  /// Advance one sampling interval.  busy[i] is the fraction of the interval
  /// core i executed threads.  Returns the per-core power state *during* the
  /// interval just elapsed.
  void tick(const std::vector<double>& busy, SimTime interval);

  [[nodiscard]] CoreState state(std::size_t core) const { return states_.at(core); }
  [[nodiscard]] const std::vector<CoreState>& states() const { return states_; }

  [[nodiscard]] std::size_t sleep_transitions() const { return sleeps_; }
  [[nodiscard]] std::size_t wake_transitions() const { return wakes_; }

  [[nodiscard]] const DpmParams& params() const { return params_; }

 private:
  DpmParams params_;
  std::vector<CoreState> states_;
  std::vector<SimTime> idle_for_;
  std::size_t sleeps_ = 0;
  std::size_t wakes_ = 0;
};

}  // namespace liquid3d
