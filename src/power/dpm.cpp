#include "power/dpm.hpp"

#include "common/error.hpp"

namespace liquid3d {

FixedTimeoutDpm::FixedTimeoutDpm(std::size_t core_count, DpmParams params)
    : params_(params),
      states_(core_count, CoreState::kIdle),
      idle_for_(core_count, SimTime{}) {
  LIQUID3D_REQUIRE(core_count > 0, "DPM requires at least one core");
}

void FixedTimeoutDpm::tick(const std::vector<double>& busy, SimTime interval) {
  LIQUID3D_REQUIRE(busy.size() == states_.size(), "busy arity mismatch");
  for (std::size_t i = 0; i < states_.size(); ++i) {
    if (busy[i] > 0.0) {
      if (states_[i] == CoreState::kSleep) ++wakes_;
      states_[i] = CoreState::kActive;
      idle_for_[i] = SimTime{};
      continue;
    }
    idle_for_[i] += interval;
    if (states_[i] == CoreState::kActive) {
      states_[i] = CoreState::kIdle;
    }
    if (params_.enabled && states_[i] == CoreState::kIdle &&
        idle_for_[i] >= params_.timeout) {
      states_[i] = CoreState::kSleep;
      ++sleeps_;
    }
  }
}

}  // namespace liquid3d
