#include "serve/service.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <utility>

#include "common/error.hpp"
#include "coolant/flow.hpp"
#include "coolant/pump.hpp"
#include "coolant/valve_network.hpp"
#include "geom/sites.hpp"
#include "geom/stack_spec.hpp"
#include "sim/scenario.hpp"
#include "workload/benchmarks.hpp"

namespace liquid3d {

namespace {

using Clock = std::chrono::steady_clock;

double elapsed_us(Clock::time_point start) {
  return std::chrono::duration<double, std::micro>(Clock::now() - start)
      .count();
}

void append(std::string& key, double v) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g,", v);
  key += buf;
}

void append(std::string& key, std::size_t v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%zu,", v);
  key += buf;
}

/// Everything that shapes the constructed thermal model (and therefore the
/// steady operator): geometry, cooling regime, and the thermal parameters.
/// The stack enters as its canonical spec encoding, so layer_pairs presets,
/// explicit specs, and stack files that build the same stack share entries.
std::string model_key(const SimulationConfig& cfg) {
  std::string key = encode_stack_spec(resolved_stack_spec(cfg));
  key += '|';
  key += cfg.cooling == CoolingMode::kAir ? "air," : "liquid,";
  key += to_string(cfg.delivery_mode);
  key += ',';
  const ThermalModelParams& t = cfg.thermal;
  append(key, t.grid_rows);
  append(key, t.grid_cols);
  append(key, t.silicon_conductivity);
  append(key, t.silicon_volumetric_heat_capacity);
  append(key, t.bond_conductivity);
  append(key, t.cavity_wall_conductivity);
  append(key, t.inlet_temperature);
  append(key, t.ambient_temperature);
  append(key, t.channel_params.beol_thickness);
  append(key, t.channel_params.beol_conductivity);
  append(key, t.channel_params.heat_transfer_coeff);
  append(key, t.coolant.heat_capacity);
  append(key, t.coolant.density);
  append(key, t.coolant.conductivity);
  append(key, t.coolant.dynamic_viscosity);
  append(key, t.tim_thickness);
  append(key, t.tim_conductivity);
  append(key, t.spreader_capacitance);
  append(key, t.sink_capacitance);
  append(key, t.spreader_to_sink_resistance);
  append(key, t.sink_to_ambient_resistance);
  key += t.alternate_flow_direction ? "alt," : "noalt,";
  append(key, t.fluid_tolerance);
  append(key, t.max_fluid_iterations);
  append(key, t.steady_fluid_iterations);
  append(key, t.steady_pseudo_dt);
  append(key, t.steady_tolerance);
  append(key, t.max_steady_iterations);
  key += t.direct_steady_solver ? "direct," : "pseudo,";
  return key;
}

/// ROM identity: the model key with the boundary references normalized out
/// (the reduced model answers any inlet/ambient exactly — the steady map is
/// affine in the reference, and the constant vector is in the basis), plus
/// the per-cavity flow vector the operator was exported under.
std::string rom_key(const SimulationConfig& cfg,
                    const std::vector<VolumetricFlow>& flows) {
  SimulationConfig normalized = cfg;
  normalized.thermal.inlet_temperature = 0.0;
  normalized.thermal.ambient_temperature = 0.0;
  std::string key = model_key(normalized);
  key += "|f:";
  for (VolumetricFlow f : flows) append(key, f.ml_per_min());
  return key;
}

/// Expand a query's power specification to full [layer][block] shape.
std::vector<std::vector<double>> resolve_watts(const SteadyQuery& q,
                                               const Stack3D& stack) {
  std::vector<std::vector<double>> watts(stack.layer_count());
  for (std::size_t l = 0; l < stack.layer_count(); ++l) {
    watts[l].assign(stack.layer(l).floorplan.block_count(), 0.0);
  }
  if (q.block_watts.empty()) {
    LIQUID3D_REQUIRE(std::isfinite(q.core_watts) && q.core_watts >= 0.0,
                     "steady query core_watts must be finite and >= 0");
    for (const BlockSite& site : enumerate_sites(stack, BlockType::kCore)) {
      watts[site.layer][site.block] = q.core_watts;
    }
    return watts;
  }
  LIQUID3D_REQUIRE(q.block_watts.size() <= stack.layer_count(),
                   "steady query has more power layers than the stack");
  for (std::size_t l = 0; l < q.block_watts.size(); ++l) {
    LIQUID3D_REQUIRE(q.block_watts[l].size() <= watts[l].size(),
                     "steady query has more blocks than the layer's floorplan");
    for (std::size_t b = 0; b < q.block_watts[l].size(); ++b) {
      const double w = q.block_watts[l][b];
      LIQUID3D_REQUIRE(std::isfinite(w) && w >= 0.0,
                       "steady query block power must be finite and >= 0");
      watts[l][b] = w;
    }
  }
  return watts;
}

/// Resolve the query's flow specification to a per-cavity vector (empty for
/// air).  Precedence: explicit flows > valve openings > uniform delivery.
std::vector<VolumetricFlow> resolve_flows(const SimulationConfig& cfg,
                                          const SteadyQuery& q,
                                          const Stack3D& stack) {
  if (cfg.cooling == CoolingMode::kAir) {
    LIQUID3D_REQUIRE(q.flows_ml_per_min.empty() && q.valve_openings.empty(),
                     "air configurations take no flow specification");
    return {};
  }
  const std::size_t cavities = stack.cavity_count();
  if (!q.flows_ml_per_min.empty()) {
    LIQUID3D_REQUIRE(q.flows_ml_per_min.size() == cavities,
                     "explicit flow arity must equal the cavity count");
    std::vector<VolumetricFlow> flows;
    flows.reserve(cavities);
    for (double ml : q.flows_ml_per_min) {
      LIQUID3D_REQUIRE(std::isfinite(ml) && ml > 0.0,
                       "per-cavity flows must be finite and > 0 ml/min");
      flows.push_back(VolumetricFlow::from_ml_per_min(ml));
    }
    return flows;
  }
  const MicrochannelModel channels(stack.cavity(), cfg.thermal.coolant,
                                   cfg.thermal.channel_params);
  const FlowDelivery delivery(PumpModel::laing_ddc(), cfg.delivery_mode,
                              channels, stack.width(), cavities);
  const std::size_t setting = q.pump_setting == SteadyQuery::kTopSetting
                                  ? delivery.setting_count() - 1
                                  : q.pump_setting;
  LIQUID3D_REQUIRE(setting < delivery.setting_count(),
                   "pump setting out of range");
  if (!q.valve_openings.empty()) {
    LIQUID3D_REQUIRE(q.valve_openings.size() == cavities,
                     "valve opening arity must equal the cavity count");
    const ValveNetwork network(delivery);
    return network.flows(setting, q.valve_openings);
  }
  return std::vector<VolumetricFlow>(cavities, delivery.per_cavity(setting));
}

}  // namespace

ThermalService::ThermalService(ServeParams params)
    : params_(params), queue_(params.queue) {
  LIQUID3D_REQUIRE(params_.model_pool_capacity >= 1,
                   "model pool capacity must be >= 1");
  LIQUID3D_REQUIRE(params_.rom_cache_capacity >= 1,
                   "ROM cache capacity must be >= 1");
}

ThermalService::~ThermalService() { queue_.stop(); }

std::shared_ptr<ThermalService::ModelEntry> ThermalService::model_for(
    const SimulationConfig& cfg, const std::string& key) {
  std::shared_ptr<ModelEntry> entry;
  {
    std::lock_guard<std::mutex> lock(mu_);
    PoolSlot& slot = models_[key];
    if (!slot.entry) slot.entry = std::make_shared<ModelEntry>();
    slot.last_used = ++lru_clock_;
    entry = slot.entry;
    while (models_.size() > params_.model_pool_capacity) {
      auto victim = models_.end();
      for (auto it = models_.begin(); it != models_.end(); ++it) {
        if (it->first == key) continue;
        if (victim == models_.end() ||
            it->second.last_used < victim->second.last_used) {
          victim = it;
        }
      }
      if (victim == models_.end()) break;
      models_.erase(victim);  // borrowers' shared_ptr keeps the model alive
      model_evictions_.add();
    }
  }
  std::lock_guard<std::mutex> entry_lock(entry->mu);
  if (!entry->model) {
    entry->model =
        std::make_unique<ThermalModel3D>(make_simulation_stack(cfg), cfg.thermal);
  }
  return entry;
}

std::shared_ptr<const ReducedSteadyModel> ThermalService::rom_for(
    const SimulationConfig& cfg, const std::string& mkey,
    const std::vector<VolumetricFlow>& flows) {
  const std::string key = rom_key(cfg, flows);
  std::promise<std::shared_ptr<const ReducedSteadyModel>> promise;
  std::shared_future<std::shared_ptr<const ReducedSteadyModel>> future;
  bool builder = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = roms_.find(key);
    if (it == roms_.end()) {
      future = promise.get_future().share();
      roms_.emplace(key, RomSlot{future, ++lru_clock_});
      builder = true;
    } else {
      it->second.last_used = ++lru_clock_;
      future = it->second.future;
    }
    while (roms_.size() > params_.rom_cache_capacity) {
      // Evict the least-recently-used *settled* entry; in-flight builds are
      // left alone (their waiters hold the future).
      auto victim = roms_.end();
      for (auto it2 = roms_.begin(); it2 != roms_.end(); ++it2) {
        if (it2->first == key) continue;
        if (it2->second.future.wait_for(std::chrono::seconds(0)) !=
            std::future_status::ready) {
          continue;
        }
        if (victim == roms_.end() ||
            it2->second.last_used < victim->second.last_used) {
          victim = it2;
        }
      }
      if (victim == roms_.end()) break;
      roms_.erase(victim);
      rom_evictions_.add();
    }
  }
  if (builder) {
    try {
      std::shared_ptr<ModelEntry> entry = model_for(cfg, mkey);
      std::shared_ptr<const ReducedSteadyModel> rom;
      {
        std::lock_guard<std::mutex> entry_lock(entry->mu);
        if (cfg.cooling != CoolingMode::kAir) {
          entry->model->set_cavity_flow(flows);
        }
        rom = std::make_shared<const ReducedSteadyModel>(
            ReducedSteadyModel::build(*entry->model, params_.rom));
      }
      rom_builds_.add();
      promise.set_value(std::move(rom));
    } catch (...) {
      {
        std::lock_guard<std::mutex> lock(mu_);
        roms_.erase(key);
      }
      promise.set_exception(std::current_exception());
      throw;
    }
  }
  return future.get();
}

SteadyAnswer ThermalService::full_steady(
    const SteadyQuery& query, const std::vector<std::vector<double>>& block_watts,
    const std::vector<VolumetricFlow>& flows) {
  SimulationConfig cfg = query.config;
  const bool liquid = cfg.cooling != CoolingMode::kAir;
  if (query.reference_c) {
    // The full model bakes the boundary reference into its parameters, so a
    // reference override is a distinct pool entry (the ROM does not care).
    (liquid ? cfg.thermal.inlet_temperature : cfg.thermal.ambient_temperature) =
        *query.reference_c;
  }
  const std::shared_ptr<ModelEntry> entry = model_for(cfg, model_key(cfg));
  SteadyAnswer answer;
  std::lock_guard<std::mutex> lock(entry->mu);
  ThermalModel3D& model = *entry->model;
  if (liquid) model.set_cavity_flow(flows);
  for (std::size_t l = 0; l < block_watts.size(); ++l) {
    model.set_block_power(l, block_watts[l]);
  }
  model.solve_steady_state();
  full_solves_.add();
  answer.t_max_c = model.max_temperature();
  const std::size_t layers = model.stack().layer_count();
  ThermalState state;
  model.save_state(state);
  answer.layer_max_c.assign(layers, -1e300);
  for (std::size_t i = 0; i < state.temps.size(); ++i) {
    const std::size_t layer = i % layers;
    answer.layer_max_c[layer] = std::max(answer.layer_max_c[layer], state.temps[i]);
  }
  return answer;
}

SteadyAnswer ThermalService::steady(const SteadyQuery& query) {
  // Latency distributions by path (shared across service instances; the
  // references are resolved once, so the steady hot path never takes the
  // registry lock).
  static obs::Histogram& rom_seconds =
      obs::Registry::global().histogram("liquid3d_serve_steady_rom_seconds");
  static obs::Histogram& full_seconds =
      obs::Registry::global().histogram("liquid3d_serve_steady_full_seconds");
  const auto start = Clock::now();
  steady_queries_.add();
  const SimulationConfig& cfg = query.config;
  const Stack3D stack = make_simulation_stack(cfg);
  const std::vector<std::vector<double>> watts = resolve_watts(query, stack);
  const std::vector<VolumetricFlow> flows = resolve_flows(cfg, query, stack);
  const bool liquid = cfg.cooling != CoolingMode::kAir;
  const double t_ref = query.reference_c
                           ? *query.reference_c
                           : (liquid ? cfg.thermal.inlet_temperature
                                     : cfg.thermal.ambient_temperature);

  if (!query.force_full) {
    const std::shared_ptr<const ReducedSteadyModel> rom =
        rom_for(cfg, model_key(cfg), flows);
    thread_local ReducedSteadyModel::Scratch scratch;
    RomEvaluation eval;
    rom->evaluate(watts, t_ref, query.max_error_c, scratch, eval);
    if (eval.within_bound) {
      rom_hits_.add();
      SteadyAnswer answer;
      answer.t_max_c = eval.t_max_c;
      answer.layer_max_c = std::move(eval.layer_max_c);
      answer.used_rom = true;
      answer.estimated_error_c = eval.estimated_error_c;
      answer.certified_error_c = rom->certified_error_c();
      answer.rom_dimension = rom->dimension();
      answer.elapsed_us = elapsed_us(start);
      rom_seconds.record(answer.elapsed_us * 1e-6);
      return answer;
    }
    rom_fallbacks_.add();
  }
  SteadyAnswer answer = full_steady(query, watts, flows);
  answer.elapsed_us = elapsed_us(start);
  full_seconds.record(answer.elapsed_us * 1e-6);
  return answer;
}

void ThermalService::warm(const SteadyQuery& query) {
  const Stack3D stack = make_simulation_stack(query.config);
  const std::vector<VolumetricFlow> flows =
      resolve_flows(query.config, query, stack);
  (void)rom_for(query.config, model_key(query.config), flows);
}

SimulationConfig ThermalService::session_config(const WhatIfQuery& query) {
  SimulationConfig cfg;
  cfg.layer_pairs = query.layer_pairs;
  if (query.stack) cfg.stack = *query.stack;
  const ScenarioSpec& spec = ScenarioRegistry::global().at(query.scenario);
  apply_scenario(spec, cfg);
  const std::optional<BenchmarkSpec> bench = find_benchmark(query.benchmark);
  LIQUID3D_REQUIRE(bench.has_value(), "unknown benchmark: " + query.benchmark);
  cfg.benchmark = *bench;
  LIQUID3D_REQUIRE(query.duration_s > 0.0, "what-if duration must be > 0");
  cfg.duration = SimTime::from_s(query.duration_s);
  cfg.seed = query.seed;
  if (query.grid_rows > 0) cfg.thermal.grid_rows = query.grid_rows;
  if (query.grid_cols > 0) cfg.thermal.grid_cols = query.grid_cols;
  return cfg;
}

std::uint64_t ThermalService::topology_key(const SimulationConfig& cfg) {
  std::uint64_t h = stack_fingerprint(make_simulation_stack(cfg));
  const auto mix = [&h](std::uint64_t v) {
    h ^= v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
  };
  mix(cfg.thermal.grid_rows);
  mix(cfg.thermal.grid_cols);
  mix(cfg.thermal_substeps);
  mix(static_cast<std::uint64_t>(cfg.sampling_interval.as_ms()));
  mix(static_cast<std::uint64_t>(cfg.cooling));
  return h;
}

std::future<SessionOutcome> ThermalService::submit_session(
    const WhatIfQuery& query, const std::vector<PhaseChange>& phases,
    double trace_period_s) {
  SessionJob job;
  try {
    job.cfg = session_config(query);
  } catch (...) {
    // Fail fast: malformed names surface through the future immediately,
    // without occupying the queue.
    std::promise<SessionOutcome> failed;
    failed.set_exception(std::current_exception());
    return failed.get_future();
  }
  job.cfg.phases = phases;
  job.group_key = topology_key(job.cfg);
  job.trace_period_s = trace_period_s;
  session_queries_.add();
  return queue_.submit(std::move(job));
}

std::future<SessionOutcome> ThermalService::what_if(const WhatIfQuery& query) {
  return submit_session(query, {}, 0.0);
}

std::future<SessionOutcome> ThermalService::replay(const ReplayQuery& query) {
  return submit_session(query.base, query.phases, query.trace_period_s);
}

void ThermalService::wait_idle() { queue_.wait_idle(); }

ServeStats ThermalService::stats() const {
  ServeStats s;
  s.steady_queries = steady_queries_.value();
  s.rom_hits = rom_hits_.value();
  s.rom_builds = rom_builds_.value();
  s.rom_fallbacks = rom_fallbacks_.value();
  s.rom_evictions = rom_evictions_.value();
  s.full_solves = full_solves_.value();
  s.model_evictions = model_evictions_.value();
  s.session_queries = session_queries_.value();
  s.batches = queue_.batches();
  s.batched_sessions = queue_.batched_sessions();
  s.max_batch = queue_.max_batch_seen();
  s.solo_fallbacks = queue_.solo_fallbacks();
  return s;
}

}  // namespace liquid3d
