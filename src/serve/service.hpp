// service.hpp — ThermalService: the long-lived thermal oracle.
//
// A sweep answers "run the whole grid"; a service answers "what would this
// configuration do, right now?" over and over, for schedulers, DSE loops,
// and operators.  The win over spawning a SimulationSession per question is
// warm state shared across queries:
//
//   * a pool of constructed thermal models per system topology (model
//     construction + characterization dominate one-shot latency);
//   * the process-wide CharacterizationCache (sharded; see
//     sim/characterization_cache.hpp) feeding every session it spawns;
//   * a cache of reduced-order steady models (serve/rom.hpp) keyed on
//     (system, flow vector), so repeat steady queries skip the solver
//     entirely — a projected dense solve plus one residual SpMV,
//     microseconds instead of a factorization;
//   * an asynchronous queue (serve/queue.hpp) that groups full-fidelity
//     what-if/replay queries by topology and runs them through BatchRunner
//     lockstep, sharing factorizations across concurrent questions.
//
// Steady answers carry an explicit error contract: the ROM result is used
// only when its residual-based estimate stays within the query's bound;
// otherwise the service transparently falls back to the full steady solver
// and the answer is exact (to solver tolerance).  Both caches are bounded
// LRU; eviction is by least-recent use, and an evicted ROM simply rebuilds
// on the next miss.
#pragma once

#include <cstdint>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "serve/query.hpp"
#include "serve/queue.hpp"
#include "serve/rom.hpp"

namespace liquid3d {

struct ServeParams {
  RomParams rom;
  /// Warm full-fidelity thermal models kept per system key (LRU).
  std::size_t model_pool_capacity = 4;
  /// Reduced models kept per (system, flow) key (LRU).
  std::size_t rom_cache_capacity = 8;
  QueryQueue::Params queue;
};

class ThermalService {
 public:
  explicit ThermalService(ServeParams params = {});
  ~ThermalService();

  ThermalService(const ThermalService&) = delete;
  ThermalService& operator=(const ThermalService&) = delete;

  /// Steady T_max for a configuration at fixed powers and flow.
  /// Synchronous; thread-safe.  ROM path when the error estimate admits it,
  /// full solve otherwise (or when the query forces it).
  [[nodiscard]] SteadyAnswer steady(const SteadyQuery& query);

  /// Pre-build the ROM (and pooled model) a steady query would use, so the
  /// first real query is already warm.  Blocks until built.
  void warm(const SteadyQuery& query);

  /// Queue a full-fidelity scenario run; batched with compatible queries.
  [[nodiscard]] std::future<SessionOutcome> what_if(const WhatIfQuery& query);

  /// Queue a transient replay over a workload phase schedule.
  [[nodiscard]] std::future<SessionOutcome> replay(const ReplayQuery& query);

  /// Block until every queued session query has been answered.
  void wait_idle();

  [[nodiscard]] ServeStats stats() const;
  [[nodiscard]] const ServeParams& params() const { return params_; }

  /// The SimulationConfig a what-if query denotes (exposed so callers — the
  /// CLI's --verify mode, tests — can replay the identical cell through a
  /// solo SimulationSession and compare).  Throws ConfigError on unknown
  /// scenario or benchmark names.
  [[nodiscard]] static SimulationConfig session_config(const WhatIfQuery& query);

  /// Batch-grouping key: stacks/grids that can share a lockstep group map to
  /// equal keys (conservative mirror of BatchRunner's compatibility check).
  [[nodiscard]] static std::uint64_t topology_key(const SimulationConfig& cfg);

 private:
  /// One pooled full-fidelity model; `mu` serializes solves on it.
  struct ModelEntry {
    std::mutex mu;
    std::unique_ptr<ThermalModel3D> model;
  };
  struct PoolSlot {
    std::shared_ptr<ModelEntry> entry;
    std::uint64_t last_used = 0;
  };
  struct RomSlot {
    std::shared_future<std::shared_ptr<const ReducedSteadyModel>> future;
    std::uint64_t last_used = 0;
  };

  [[nodiscard]] std::shared_ptr<ModelEntry> model_for(
      const SimulationConfig& cfg, const std::string& key);
  [[nodiscard]] std::shared_ptr<const ReducedSteadyModel> rom_for(
      const SimulationConfig& cfg, const std::string& model_key,
      const std::vector<VolumetricFlow>& flows);
  [[nodiscard]] SteadyAnswer full_steady(
      const SteadyQuery& query,
      const std::vector<std::vector<double>>& block_watts,
      const std::vector<VolumetricFlow>& flows);
  [[nodiscard]] std::future<SessionOutcome> submit_session(
      const WhatIfQuery& query, const std::vector<PhaseChange>& phases,
      double trace_period_s);

  ServeParams params_;
  mutable std::mutex mu_;  ///< guards the two cache maps + LRU clock
  std::map<std::string, PoolSlot> models_;
  std::map<std::string, RomSlot> roms_;
  std::uint64_t lru_clock_ = 0;

  // Per-instance obs counters (not in the global registry: each service
  // owns its own stats; the registry holds process-wide solver/batch
  // instruments).  Counter::add is the same one-relaxed-add the old
  // atomics did — these stay functional under the obs kill switch.
  obs::Counter steady_queries_;
  obs::Counter rom_hits_;
  obs::Counter rom_builds_;
  obs::Counter rom_fallbacks_;
  obs::Counter rom_evictions_;
  obs::Counter full_solves_;
  obs::Counter model_evictions_;
  obs::Counter session_queries_;

  QueryQueue queue_;
};

}  // namespace liquid3d
