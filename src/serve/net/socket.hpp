// socket.hpp — endpoint parsing plus listen/connect for the serve daemon.
//
// One endpoint grammar everywhere (daemon flag, client --connect, tests):
//
//   HOST:PORT        TCP (numeric host or name; PORT 0 = ephemeral)
//   unix:PATH        Unix-domain stream socket at PATH
//
// Listening on port 0 picks an ephemeral port; bound_endpoint() reports
// the actual address so tests and the daemon's stdout can hand it to
// clients.  All failures throw ConfigError (bad spec) or WireError
// (socket-layer failure) naming the endpoint.
#pragma once

#include <string>

namespace liquid3d {

struct Endpoint {
  enum class Kind { kTcp, kUnix };
  Kind kind = Kind::kTcp;
  std::string host;  ///< TCP only
  std::string port;  ///< TCP only (numeric string)
  std::string path;  ///< Unix only
};

/// Parses `HOST:PORT` or `unix:PATH`; throws ConfigError on a malformed
/// spec (`what` names the flag for the message).
[[nodiscard]] Endpoint parse_endpoint(const std::string& spec,
                                      const std::string& what);

/// Renders an endpoint back to its spec form.
[[nodiscard]] std::string to_string(const Endpoint& ep);

/// Creates a listening socket (SO_REUSEADDR for TCP; the Unix path is
/// unlinked first so a stale socket file does not block the bind).
[[nodiscard]] int listen_socket(const Endpoint& ep, int backlog = 64);

/// The endpoint a listening socket actually bound (resolves port 0).
[[nodiscard]] Endpoint bound_endpoint(int listen_fd, const Endpoint& requested);

/// Connects to an endpoint; throws WireError{kDisconnected} on refusal.
[[nodiscard]] int connect_socket(const Endpoint& ep);

}  // namespace liquid3d
