// client.hpp — ServeClient: the wire twin of ThermalService.
//
// One blocking request/response per call over a single framed connection,
// mirroring the in-process API call for call:
//
//   ThermalService            ServeClient
//   service.steady(q)         client.steady(q)
//   service.what_if(q).get()  client.what_if(q)
//   service.replay(q).get()   client.replay(q)
//   service.stats()           client.stats()
//
// Answers are bit-identical to the in-process calls (the envelope round-
// trips every double through %.17g), so a caller can switch between the
// two backends without re-validating anything.
//
// Error mapping restores the in-process contract: a server-side
// ConfigError/SolverError re-throws here as that same type, so `catch
// (const ConfigError&)` works unchanged over the wire.  Transport-only
// outcomes (overloaded, shutting-down, deadline-exceeded, protocol
// violations, disconnects) throw WireError with the matching code —
// failures that cannot happen in-process stay a distinct type.
#pragma once

#include <cstdint>
#include <string>

#include "serve/net/envelope.hpp"
#include "serve/net/socket.hpp"

namespace liquid3d {

class ServeClient {
 public:
  /// Connects immediately; throws WireError{kDisconnected} on refusal.
  explicit ServeClient(const Endpoint& endpoint);
  ~ServeClient();

  ServeClient(const ServeClient&) = delete;
  ServeClient& operator=(const ServeClient&) = delete;

  /// Per-request deadline [ms] sent with every query; 0 = none.  Measured
  /// server-side from admission.
  void set_deadline_ms(double ms) { deadline_ms_ = ms; }

  [[nodiscard]] SteadyAnswer steady(const SteadyQuery& query);
  [[nodiscard]] SessionOutcome what_if(const WhatIfQuery& query);
  [[nodiscard]] SessionOutcome replay(const ReplayQuery& query);
  /// With reset_hwm the server reports the windowed queue high-water
  /// mark, then resets the window (report-then-reset).
  [[nodiscard]] ServeStats stats(bool reset_hwm = false);
  /// Prometheus-style metrics exposition text.
  [[nodiscard]] std::string metrics();
  /// Recent trace spans, oldest first; limit == 0 means all retained.
  [[nodiscard]] std::vector<obs::TraceSpan> trace(std::uint64_t limit = 0);

 private:
  [[nodiscard]] WireResponse roundtrip(WireRequest request);

  int fd_ = -1;
  std::uint64_t next_id_ = 1;
  double deadline_ms_ = 0.0;
};

}  // namespace liquid3d
