#include "serve/net/server.hpp"

#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <string>
#include <utility>

#include "common/error.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "serve/net/frame.hpp"

namespace liquid3d {

namespace {

using Clock = std::chrono::steady_clock;

double elapsed_ms(Clock::time_point since) {
  return std::chrono::duration<double, std::milli>(Clock::now() - since)
      .count();
}

}  // namespace

ServeServer::Connection::~Connection() {
  if (fd >= 0) ::close(fd);
}

ServeServer::ServeServer(ThermalService& service, ServerParams params)
    : service_(service), params_(params) {
  LIQUID3D_REQUIRE(params_.workers > 0, "ServeServer needs >= 1 worker");
  LIQUID3D_REQUIRE(params_.max_inflight > 0,
                   "ServeServer needs max_inflight >= 1");
}

ServeServer::~ServeServer() { stop(); }

void ServeServer::start(const Endpoint& endpoint) {
  LIQUID3D_REQUIRE(!started_, "ServeServer already started");
  listen_fd_ = listen_socket(endpoint);
  endpoint_ = bound_endpoint(listen_fd_, endpoint);
  if (::pipe(wake_pipe_) != 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw WireError(WireErrorCode::kInternal, "pipe() failed");
  }
  started_ = true;
  listener_ = std::thread([this] { listener_loop(); });
  workers_.reserve(params_.workers);
  for (std::size_t i = 0; i < params_.workers; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

void ServeServer::listener_loop() {
  for (;;) {
    pollfd fds[2] = {{listen_fd_, POLLIN, 0}, {wake_pipe_[0], POLLIN, 0}};
    if (::poll(fds, 2, -1) < 0) {
      if (errno == EINTR) continue;
      return;
    }
    if (fds[1].revents != 0) return;  // wake pipe: shutting down
    if ((fds[0].revents & POLLIN) == 0) continue;
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) continue;

    auto conn = std::make_shared<Connection>();
    conn->fd = fd;
    {
      std::lock_guard<std::mutex> lock(mu_);
      // Connections are accepted even while draining: their requests get
      // typed shutting-down rejections from admission, which beats a
      // silent close for a client that connected just before the drain.
      ++active_conns_;
      conns_.push_back(conn);
      reap_locked();
    }
    conn->reader = std::thread([this, conn] { reader_loop(conn); });
  }
}

void ServeServer::reader_loop(const std::shared_ptr<Connection>& conn) {
  for (;;) {
    std::optional<std::string> payload;
    try {
      payload = recv_frame(conn->fd);
    } catch (const WireError&) {
      // Torn frame, oversized prefix, or reset: the stream cannot be
      // resynchronized, so drop the connection — shutdown (not close; the
      // fd must outlive in-flight workers) makes the peer see EOF now
      // instead of at the next reap.
      ::shutdown(conn->fd, SHUT_RDWR);
      break;
    }
    if (!payload) break;  // clean EOF
    const std::uint64_t recv_ns = obs::tracing_enabled() ? obs::now_ns() : 0;

    WireRequest request;
    try {
      request = decode_request(*payload);
    } catch (const std::exception& e) {
      // Envelope-level failure: this frame is lost but the stream is still
      // in sync — reply typed bad-request and keep serving.
      WireResponse resp;
      resp.id = peek_request_id(*payload);
      resp.payload = ErrorReply{WireErrorCode::kBadRequest, e.what()};
      send_response(conn, resp);
      continue;
    }

    // Control plane: stats/metrics/trace answer inline on this thread,
    // bypass admission, and are never traced themselves.
    if (const auto* sq = std::get_if<StatsQuery>(&request.payload)) {
      WireResponse resp;
      resp.id = request.id;
      ServeStats s = service_.stats();
      {
        std::lock_guard<std::mutex> lock(mu_);
        s.wire_accepted = accepted_;
        s.wire_rejected = rejected_;
        s.wire_timed_out = timed_out_;
        s.wire_connections = active_conns_;
        s.wire_queue_hwm = queue_hwm_;
        s.wire_queue_hwm_window = queue_hwm_window_;
        // Report-then-reset under one lock hold: no observation between
        // the snapshot and the reset can be lost.
        if (sq->reset_hwm) queue_hwm_window_ = 0;
      }
      resp.payload = s;
      send_response(conn, resp);
      continue;
    }
    if (std::holds_alternative<MetricsQuery>(request.payload)) {
      WireResponse resp;
      resp.id = request.id;
      resp.payload = MetricsAnswer{metrics_text()};
      send_response(conn, resp);
      continue;
    }
    if (const auto* tq = std::get_if<TraceQuery>(&request.payload)) {
      WireResponse resp;
      resp.id = request.id;
      resp.payload = TraceAnswer{obs::TraceRing::global().snapshot(
          static_cast<std::size_t>(tq->limit))};
      send_response(conn, resp);
      continue;
    }

    // Query plane: open the trace (decode already happened, so its span
    // is recorded post hoc against the frame-arrival stamp).
    std::uint64_t trace_id = 0;
    std::uint32_t root_span = 0;
    if (obs::tracing_enabled()) {
      trace_id = obs::next_trace_id();
      root_span = obs::next_span_id();
      obs::TraceRing::global().record(obs::TraceSpan{
          trace_id, obs::next_span_id(), root_span, "decode", recv_ns,
          obs::now_ns()});
    }

    WireErrorCode reject = WireErrorCode::kInternal;
    bool admitted = false;
    const std::uint64_t admit_start = trace_id != 0 ? obs::now_ns() : 0;
    std::uint64_t admitted_ns = 0;
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (draining_) {
        reject = WireErrorCode::kShuttingDown;
        ++rejected_;
      } else if (inflight_ >= params_.max_inflight) {
        reject = WireErrorCode::kOverloaded;
        ++rejected_;
      } else {
        admitted = true;
        ++accepted_;
        ++inflight_;
        queue_hwm_ = std::max(queue_hwm_, inflight_);
        queue_hwm_window_ = std::max(queue_hwm_window_, inflight_);
        QueuedRequest item{std::move(request), Clock::now()};
        item.trace_id = trace_id;
        item.root_span = root_span;
        item.recv_ns = recv_ns;
        if (trace_id != 0) item.admitted_ns = obs::now_ns();
        admitted_ns = item.admitted_ns;
        conn->pending.push_back(std::move(item));
      }
    }
    if (trace_id != 0) {
      obs::TraceRing::global().record(obs::TraceSpan{
          trace_id, obs::next_span_id(), root_span, "admission", admit_start,
          admitted ? admitted_ns : obs::now_ns()});
      if (!admitted) {
        // Rejected requests still close their root span.
        obs::TraceRing::global().record(obs::TraceSpan{
            trace_id, root_span, 0, "request", recv_ns, obs::now_ns()});
      }
    }
    if (admitted) {
      cv_work_.notify_one();
    } else {
      WireResponse resp;
      resp.id = request.id;
      resp.payload = ErrorReply{
          reject, reject == WireErrorCode::kOverloaded
                      ? "admission queue full (" +
                            std::to_string(params_.max_inflight) +
                            " in flight) — retry later"
                      : "server is draining — not admitting new requests"};
      send_response(conn, resp);
    }
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    conn->closed = true;
    --active_conns_;
    if (conn->pending.empty() && conn->executing == 0) {
      // Nothing left to answer: acknowledge the peer's close right away
      // (a half-closed pipelining client is waiting for our EOF).
      ::shutdown(conn->fd, SHUT_RDWR);
    }
  }
  // Admitted requests from this client still run (their replies will be
  // dropped on the closed socket); workers may be waiting on them.
  cv_work_.notify_all();
}

void ServeServer::worker_loop() {
  for (;;) {
    std::shared_ptr<Connection> conn;
    QueuedRequest item;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_work_.wait(lock, [this] {
        if (stop_workers_) return true;
        for (const auto& c : conns_) {
          if (!c->pending.empty()) return true;
        }
        return false;
      });
      // Fair pick: next non-empty connection after the last served one.
      const std::size_t n = conns_.size();
      for (std::size_t i = 0; i < n && !conn; ++i) {
        const std::size_t at = (rr_cursor_ + 1 + i) % n;
        if (!conns_[at]->pending.empty()) {
          conn = conns_[at];
          rr_cursor_ = at;
        }
      }
      if (!conn) {
        if (stop_workers_) return;
        continue;
      }
      item = std::move(conn->pending.front());
      conn->pending.pop_front();
      ++conn->executing;
    }
    execute(conn, std::move(item));
    {
      std::lock_guard<std::mutex> lock(mu_);
      --conn->executing;
      --inflight_;
      if (conn->closed && conn->pending.empty() && conn->executing == 0) {
        // That was the final reply owed to a departed client.
        ::shutdown(conn->fd, SHUT_RDWR);
      }
    }
    cv_drain_.notify_all();
  }
}

void ServeServer::execute(const std::shared_ptr<Connection>& conn,
                          QueuedRequest item) {
  WireResponse resp;
  resp.id = item.request.id;
  const double deadline_ms = item.request.deadline_ms;
  const auto budget_left = [&]() -> double {
    return deadline_ms - elapsed_ms(item.admitted);
  };
  // Tracing context opened by the reader (zero when tracing was off at
  // admission).  The dispatch span is the queue wait: admission decided
  // to worker pickup.
  const std::uint64_t trace_id = item.trace_id;
  if (trace_id != 0) {
    obs::TraceRing::global().record(obs::TraceSpan{
        trace_id, obs::next_span_id(), item.root_span, "dispatch",
        item.admitted_ns, obs::now_ns()});
  }
  const char* solve_stage = "solve";
  const std::uint64_t solve_start = trace_id != 0 ? obs::now_ns() : 0;
  try {
    if (deadline_ms > 0.0 && budget_left() <= 0.0) {
      throw WireError(WireErrorCode::kDeadlineExceeded,
                      "deadline of " + std::to_string(deadline_ms) +
                          " ms passed before dispatch");
    }
    if (const auto* steady = std::get_if<SteadyQuery>(&item.request.payload)) {
      // Synchronous; the deadline gates dispatch (a steady answer is
      // microseconds-to-milliseconds, not worth a cancellation channel).
      SteadyAnswer answer = service_.steady(*steady);
      solve_stage = answer.used_rom ? "solve/rom" : "solve/full";
      resp.payload = std::move(answer);
    } else {
      std::future<SessionOutcome> future;
      if (const auto* whatif =
              std::get_if<WhatIfQuery>(&item.request.payload)) {
        future = service_.what_if(*whatif);
      } else {
        future = service_.replay(std::get<ReplayQuery>(item.request.payload));
      }
      if (deadline_ms > 0.0) {
        const double left = budget_left();
        if (left <= 0.0 ||
            future.wait_for(std::chrono::duration<double, std::milli>(left)) !=
                std::future_status::ready) {
          // The session still completes in the background (it cannot be
          // cancelled mid-solve); only the reply is a timeout.
          throw WireError(WireErrorCode::kDeadlineExceeded,
                          "deadline of " + std::to_string(deadline_ms) +
                              " ms passed while the session ran");
        }
      }
      resp.payload = future.get();
      solve_stage = "solve/session";
    }
  } catch (const WireError& e) {
    if (e.code() == WireErrorCode::kDeadlineExceeded) {
      std::lock_guard<std::mutex> lock(mu_);
      ++timed_out_;
    }
    resp.payload = ErrorReply{e.code(), e.what()};
  } catch (const ConfigError& e) {
    resp.payload = ErrorReply{WireErrorCode::kBadRequest, e.what()};
  } catch (const SolverError& e) {
    resp.payload = ErrorReply{WireErrorCode::kSolver, e.what()};
  } catch (const std::exception& e) {
    resp.payload = ErrorReply{WireErrorCode::kInternal, e.what()};
  }
  if (trace_id != 0) {
    obs::TraceRing::global().record(obs::TraceSpan{
        trace_id, obs::next_span_id(), item.root_span, solve_stage,
        solve_start, obs::now_ns()});
  }
  // Encode before recording the final spans, and record them before the
  // frame leaves: the moment the client sees the answer, a follow-up
  // `trace` request must find the complete span tree (the daemon-smoke
  // scrape depends on this).  The socket write itself is untraced.
  const std::uint64_t encode_start = trace_id != 0 ? obs::now_ns() : 0;
  const std::string payload = encode_response(resp);
  if (trace_id != 0) {
    const std::uint64_t end = obs::now_ns();
    obs::TraceRing::global().record(obs::TraceSpan{
        trace_id, obs::next_span_id(), item.root_span, "encode", encode_start,
        end});
    obs::TraceRing::global().record(obs::TraceSpan{
        trace_id, item.root_span, 0, "request", item.recv_ns, end});
  }
  send_payload(conn, payload);
}

void ServeServer::send_response(const std::shared_ptr<Connection>& conn,
                                const WireResponse& response) {
  send_payload(conn, encode_response(response));
}

void ServeServer::send_payload(const std::shared_ptr<Connection>& conn,
                               const std::string& payload) {
  std::lock_guard<std::mutex> lock(conn->write_mu);
  try {
    send_frame(conn->fd, payload);
  } catch (const std::exception&) {
    // Client vanished mid-exchange (or the reply could not be framed);
    // nothing to deliver it to — the connection is already doomed.
  }
}

void ServeServer::reap_locked() {
  for (std::size_t i = 0; i < conns_.size();) {
    auto& c = conns_[i];
    if (c->closed && c->pending.empty() && c->executing == 0) {
      if (c->reader.joinable()) c->reader.join();
      conns_.erase(conns_.begin() + static_cast<std::ptrdiff_t>(i));
      if (rr_cursor_ >= conns_.size()) rr_cursor_ = 0;
    } else {
      ++i;
    }
  }
}

void ServeServer::drain() {
  if (!started_) return;
  {
    std::unique_lock<std::mutex> lock(mu_);
    draining_ = true;
    cv_drain_.wait(lock, [this] { return inflight_ == 0; });
  }
}

void ServeServer::stop() {
  if (!started_ || stopped_) return;
  stopped_ = true;
  drain();
  std::vector<std::shared_ptr<Connection>> conns;
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_workers_ = true;
    conns = conns_;
    // Unblock every reader: shut the sockets down (fds close with the
    // Connection objects, after the last worker reply).
    for (const auto& c : conns_) ::shutdown(c->fd, SHUT_RDWR);
  }
  // Wake and join the listener first so no new connection slips in.
  if (wake_pipe_[1] >= 0) {
    const char byte = 'x';
    [[maybe_unused]] const ssize_t n = ::write(wake_pipe_[1], &byte, 1);
  }
  if (listener_.joinable()) listener_.join();
  cv_work_.notify_all();
  for (auto& w : workers_) {
    if (w.joinable()) w.join();
  }
  workers_.clear();
  // Join readers without mu_ held — an exiting reader takes mu_ to mark
  // itself closed.
  for (const auto& c : conns) {
    if (c->reader.joinable()) c->reader.join();
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    conns_.clear();
  }
  if (listen_fd_ >= 0) ::close(listen_fd_);
  listen_fd_ = -1;
  for (int& fd : wake_pipe_) {
    if (fd >= 0) ::close(fd);
    fd = -1;
  }
  if (endpoint_.kind == Endpoint::Kind::kUnix) {
    ::unlink(endpoint_.path.c_str());
  }
}

ServeStats ServeServer::stats() const {
  ServeStats s = service_.stats();
  std::lock_guard<std::mutex> lock(mu_);
  s.wire_accepted = accepted_;
  s.wire_rejected = rejected_;
  s.wire_timed_out = timed_out_;
  s.wire_connections = active_conns_;
  s.wire_queue_hwm = queue_hwm_;
  s.wire_queue_hwm_window = queue_hwm_window_;
  return s;
}

std::string ServeServer::metrics_text() const {
  const ServeStats s = stats();
  std::string out = obs::Registry::global().prometheus();
  const auto counter = [&out](const char* name, std::size_t v) {
    out += "liquid3d_serve_";
    out += name;
    out += "_total ";
    out += std::to_string(v);
    out += '\n';
  };
  const auto gauge = [&out](const char* name, std::size_t v) {
    out += "liquid3d_serve_";
    out += name;
    out += ' ';
    out += std::to_string(v);
    out += '\n';
  };
  counter("steady_queries", s.steady_queries);
  counter("rom_hits", s.rom_hits);
  counter("rom_builds", s.rom_builds);
  counter("rom_fallbacks", s.rom_fallbacks);
  counter("rom_evictions", s.rom_evictions);
  counter("full_solves", s.full_solves);
  counter("model_evictions", s.model_evictions);
  counter("session_queries", s.session_queries);
  counter("batches", s.batches);
  counter("batched_sessions", s.batched_sessions);
  counter("solo_fallbacks", s.solo_fallbacks);
  counter("wire_accepted", s.wire_accepted);
  counter("wire_rejected", s.wire_rejected);
  counter("wire_timed_out", s.wire_timed_out);
  gauge("max_batch", s.max_batch);
  gauge("wire_connections", s.wire_connections);
  gauge("wire_queue_hwm", s.wire_queue_hwm);
  gauge("wire_queue_hwm_window", s.wire_queue_hwm_window);
  return out;
}

}  // namespace liquid3d
