// server.hpp — the network front end of ThermalService.
//
// ServeServer owns the listening socket and the threads that turn framed
// wire requests (net/frame.hpp + net/envelope.hpp) into calls on an
// existing ThermalService.  The service stays the single source of truth —
// the server adds exactly the concerns a wire adds:
//
//   * admission control — at most `max_inflight` requests queued or
//     executing; one past that is rejected immediately with a typed
//     `overloaded` reply (bounded memory and bounded latency instead of an
//     unbounded backlog);
//   * per-client fairness — admitted requests queue per connection and
//     workers pick round-robin across connections, so one client
//     pipelining a burst cannot starve another's single query;
//   * per-request deadlines — a request admitted with `deadline_ms > 0`
//     answers `deadline-exceeded` once its budget is spent (checked at
//     dispatch, and while waiting on session futures);
//   * graceful drain — drain() stops accepting connections, answers every
//     new request `shutting-down`, and returns once the admitted in-flight
//     requests have been answered (the daemon's SIGTERM path).
//
// Stats, metrics, and trace requests are control plane: readers answer
// them inline, bypassing admission, so an operator can watch an
// overloaded server.  They are also never traced themselves — spans
// describe query work, not the act of observing it.
//
// Threading: one listener (poll + wake pipe), one reader per connection
// (decode + admission + inline error/stats replies), `workers` dispatch
// threads (execute + reply).  Replies serialize on a per-connection write
// mutex; a reply to a vanished client is dropped silently.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "serve/net/envelope.hpp"
#include "serve/net/socket.hpp"
#include "serve/service.hpp"

namespace liquid3d {

struct ServerParams {
  /// Dispatch threads executing admitted requests.
  std::size_t workers = 2;
  /// Bound on requests queued + executing; one more is rejected.
  std::size_t max_inflight = 8;
};

class ServeServer {
 public:
  /// The server borrows the service; the caller keeps it alive (and may
  /// keep querying it in-process — answers are the same object either way).
  explicit ServeServer(ThermalService& service, ServerParams params = {});
  ~ServeServer();

  ServeServer(const ServeServer&) = delete;
  ServeServer& operator=(const ServeServer&) = delete;

  /// Binds, listens, and starts the listener/worker threads.
  void start(const Endpoint& endpoint);

  /// The endpoint actually bound (resolves an ephemeral port 0).
  [[nodiscard]] const Endpoint& endpoint() const { return endpoint_; }

  /// Stops accepting connections, rejects new requests (`shutting-down`),
  /// and returns once every admitted request has been answered.
  void drain();

  /// Hard stop: drain admitted work, shut every connection down, join all
  /// threads.  Idempotent; the destructor calls it.
  void stop();

  /// Service counters plus the wire_* transport counters.
  [[nodiscard]] ServeStats stats() const;

  /// Prometheus-style text exposition: the global obs registry plus this
  /// server's ServeStats rendered as `liquid3d_serve_*` lines (exact
  /// counters, so a scrape can be asserted against a burst's totals).
  [[nodiscard]] std::string metrics_text() const;

 private:
  struct QueuedRequest {
    WireRequest request;
    std::chrono::steady_clock::time_point admitted;
    // Tracing context (zero when tracing is off): decode/admission spans
    // are recorded on the reader thread; dispatch/solve/encode spans are
    // recorded by the worker against the same trace_id/root.
    std::uint64_t trace_id = 0;
    std::uint32_t root_span = 0;
    std::uint64_t recv_ns = 0;      ///< request start (frame received)
    std::uint64_t admitted_ns = 0;  ///< admission decided (dispatch from here)
  };
  struct Connection {
    ~Connection();
    int fd = -1;
    std::mutex write_mu;            ///< serializes frames onto fd
    std::deque<QueuedRequest> pending;  ///< admitted, waiting for a worker
    std::size_t executing = 0;      ///< popped by a worker, not yet replied
    bool closed = false;            ///< reader exited; fd closes with *this
    std::thread reader;
  };

  void listener_loop();
  void reader_loop(const std::shared_ptr<Connection>& conn);
  void worker_loop();
  void execute(const std::shared_ptr<Connection>& conn, QueuedRequest item);
  void send_response(const std::shared_ptr<Connection>& conn,
                     const WireResponse& response);
  void send_payload(const std::shared_ptr<Connection>& conn,
                    const std::string& payload);
  void reap_locked();

  ThermalService& service_;
  const ServerParams params_;
  Endpoint endpoint_;

  int listen_fd_ = -1;
  int wake_pipe_[2] = {-1, -1};
  std::thread listener_;
  std::vector<std::thread> workers_;

  mutable std::mutex mu_;
  std::condition_variable cv_work_;   ///< workers: pending work or shutdown
  std::condition_variable cv_drain_;  ///< drain(): in-flight hit zero
  std::vector<std::shared_ptr<Connection>> conns_;
  std::size_t rr_cursor_ = 0;  ///< round-robin position over conns_
  std::size_t inflight_ = 0;   ///< queued + executing (admission bound)
  bool draining_ = false;      ///< reject new requests
  bool stop_workers_ = false;  ///< workers exit once queues empty
  bool started_ = false;
  bool stopped_ = false;

  // Transport counters (ServeStats.wire_*).
  std::size_t accepted_ = 0;
  std::size_t rejected_ = 0;
  std::size_t timed_out_ = 0;
  std::size_t active_conns_ = 0;
  std::size_t queue_hwm_ = 0;         ///< lifetime (monotonic)
  std::size_t queue_hwm_window_ = 0;  ///< since last stats --reset-hwm
};

}  // namespace liquid3d
