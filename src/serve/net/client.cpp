#include "serve/net/client.hpp"

#include <unistd.h>

#include <utility>

#include "common/error.hpp"
#include "serve/net/frame.hpp"

namespace liquid3d {

ServeClient::ServeClient(const Endpoint& endpoint)
    : fd_(connect_socket(endpoint)) {}

ServeClient::~ServeClient() {
  if (fd_ >= 0) ::close(fd_);
}

WireResponse ServeClient::roundtrip(WireRequest request) {
  request.id = next_id_++;
  request.deadline_ms = deadline_ms_;
  send_frame(fd_, encode_request(request));
  const std::optional<std::string> payload = recv_frame(fd_);
  if (!payload) {
    throw WireError(WireErrorCode::kDisconnected,
                    "server closed the connection before replying");
  }
  WireResponse response;
  try {
    response = decode_response(*payload);
  } catch (const std::exception& e) {
    throw WireError(WireErrorCode::kProtocol,
                    std::string("malformed response: ") + e.what());
  }
  if (response.id != request.id) {
    throw WireError(WireErrorCode::kProtocol,
                    "response id " + std::to_string(response.id) +
                        " does not match request id " +
                        std::to_string(request.id));
  }
  if (const auto* error = std::get_if<ErrorReply>(&response.payload)) {
    // Restore the in-process exception contract for service-side failures;
    // transport-only outcomes stay WireError.
    switch (error->code) {
      case WireErrorCode::kBadRequest:
        throw ConfigError(error->message);
      case WireErrorCode::kSolver:
        throw SolverError(error->message);
      default:
        throw WireError(error->code, error->message);
    }
  }
  return response;
}

SteadyAnswer ServeClient::steady(const SteadyQuery& query) {
  WireRequest request;
  request.payload = query;
  WireResponse response = roundtrip(std::move(request));
  auto* answer = std::get_if<SteadyAnswer>(&response.payload);
  if (answer == nullptr) {
    throw WireError(WireErrorCode::kProtocol,
                    "steady query answered with the wrong payload type");
  }
  return std::move(*answer);
}

SessionOutcome ServeClient::what_if(const WhatIfQuery& query) {
  WireRequest request;
  request.payload = query;
  WireResponse response = roundtrip(std::move(request));
  auto* outcome = std::get_if<SessionOutcome>(&response.payload);
  if (outcome == nullptr) {
    throw WireError(WireErrorCode::kProtocol,
                    "what-if query answered with the wrong payload type");
  }
  return std::move(*outcome);
}

SessionOutcome ServeClient::replay(const ReplayQuery& query) {
  WireRequest request;
  request.payload = query;
  WireResponse response = roundtrip(std::move(request));
  auto* outcome = std::get_if<SessionOutcome>(&response.payload);
  if (outcome == nullptr) {
    throw WireError(WireErrorCode::kProtocol,
                    "replay query answered with the wrong payload type");
  }
  return std::move(*outcome);
}

ServeStats ServeClient::stats(bool reset_hwm) {
  WireRequest request;
  request.payload = StatsQuery{reset_hwm};
  WireResponse response = roundtrip(std::move(request));
  auto* stats = std::get_if<ServeStats>(&response.payload);
  if (stats == nullptr) {
    throw WireError(WireErrorCode::kProtocol,
                    "stats query answered with the wrong payload type");
  }
  return *stats;
}

std::string ServeClient::metrics() {
  WireRequest request;
  request.payload = MetricsQuery{};
  WireResponse response = roundtrip(std::move(request));
  auto* answer = std::get_if<MetricsAnswer>(&response.payload);
  if (answer == nullptr) {
    throw WireError(WireErrorCode::kProtocol,
                    "metrics query answered with the wrong payload type");
  }
  return std::move(answer->text);
}

std::vector<obs::TraceSpan> ServeClient::trace(std::uint64_t limit) {
  WireRequest request;
  request.payload = TraceQuery{limit};
  WireResponse response = roundtrip(std::move(request));
  auto* answer = std::get_if<TraceAnswer>(&response.payload);
  if (answer == nullptr) {
    throw WireError(WireErrorCode::kProtocol,
                    "trace query answered with the wrong payload type");
  }
  return std::move(answer->spans);
}

}  // namespace liquid3d
