// frame.hpp — length-prefixed framing for the serve wire protocol.
//
// One frame = a 4-byte big-endian payload length followed by that many
// bytes of serialized envelope (net/envelope.hpp).  The length prefix is
// capped at kMaxFramePayload so neither peer can be made to allocate
// unboundedly by a corrupt or hostile prefix; an oversized prefix also
// means the stream is desynchronized (there is no way to resynchronize a
// byte stream after a bad length), so the only safe reaction is to drop
// the connection — recv_frame throws WireError{kProtocol} and the caller
// closes.
//
// All calls handle EINTR and short reads/writes; writes use MSG_NOSIGNAL
// so a peer that vanished yields WireError{kDisconnected} instead of
// SIGPIPE.
#pragma once

#include <optional>
#include <string>
#include <string_view>

#include "serve/net/envelope.hpp"

namespace liquid3d {

/// Write one complete frame.  Throws WireError{kDisconnected} when the
/// peer is gone, LogicError when the payload exceeds kMaxFramePayload.
void send_frame(int fd, std::string_view payload);

/// Read one complete frame.  Returns nullopt on clean EOF at a frame
/// boundary; throws WireError{kDisconnected} on EOF or error mid-frame
/// and WireError{kProtocol} on an oversized length prefix.
[[nodiscard]] std::optional<std::string> recv_frame(int fd);

}  // namespace liquid3d
