#include "serve/net/envelope.hpp"

#include <algorithm>
#include <charconv>
#include <cstdio>
#include <string_view>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/error.hpp"
#include "common/parse.hpp"
#include "geom/stack_spec.hpp"
#include "thermal/solver/backend.hpp"
#include "thermal/solver/pcg.hpp"

namespace liquid3d {

namespace {

constexpr std::string_view kMagic = "liquid3d-serve";

// -- scalar formatting --------------------------------------------------------

std::string fmt_double(double v) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

std::string fmt_u64(std::uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof buf, "%llu", static_cast<unsigned long long>(v));
  return buf;
}

/// Same escape set as encode_stack_spec: '%', whitespace, control bytes —
/// the encoded token survives any line/space tokenizer unsplit.
std::string percent_encode(std::string_view raw) {
  static const char* hex = "0123456789ABCDEF";
  std::string out;
  out.reserve(raw.size());
  for (const char ch : raw) {
    const unsigned char c = static_cast<unsigned char>(ch);
    if (c == '%' || c <= 0x20 || c == 0x7f) {
      out += '%';
      out += hex[c >> 4];
      out += hex[c & 0xf];
    } else {
      out += ch;
    }
  }
  return out;
}

std::string percent_decode(const std::string& token, const std::string& what) {
  auto hex_digit = [](char c) -> int {
    if (c >= '0' && c <= '9') return c - '0';
    if (c >= 'A' && c <= 'F') return c - 'A' + 10;
    if (c >= 'a' && c <= 'f') return c - 'a' + 10;
    return -1;
  };
  std::string raw;
  raw.reserve(token.size());
  for (std::size_t i = 0; i < token.size(); ++i) {
    if (token[i] != '%') {
      raw += token[i];
      continue;
    }
    LIQUID3D_REQUIRE(i + 2 < token.size(),
                     what + ": truncated %XX escape in '" + token + "'");
    const int hi = hex_digit(token[i + 1]);
    const int lo = hex_digit(token[i + 2]);
    LIQUID3D_REQUIRE(hi >= 0 && lo >= 0,
                     what + ": malformed %XX escape in '" + token + "'");
    raw += static_cast<char>(hi * 16 + lo);
    i += 2;
  }
  return raw;
}

// -- enum spellings -----------------------------------------------------------

const char* cooling_name(CoolingMode m) {
  switch (m) {
    case CoolingMode::kAir: return "air";
    case CoolingMode::kLiquidMax: return "liquid-max";
    case CoolingMode::kLiquidVar: return "liquid-var";
  }
  return "?";
}

CoolingMode cooling_from_name(const std::string& s, const std::string& what) {
  if (s == "air") return CoolingMode::kAir;
  if (s == "liquid-max") return CoolingMode::kLiquidMax;
  if (s == "liquid-var") return CoolingMode::kLiquidVar;
  throw ConfigError(what + ": unknown cooling mode '" + s + "'");
}

FlowDeliveryMode delivery_from_name(const std::string& s,
                                    const std::string& what) {
  if (s == "paper-nominal") return FlowDeliveryMode::kPaperNominal;
  if (s == "pressure-limited") return FlowDeliveryMode::kPressureLimited;
  throw ConfigError(what + ": unknown delivery mode '" + s + "'");
}

const char* error_code_name(WireErrorCode code) { return to_string(code); }

WireErrorCode error_code_from_name(const std::string& s,
                                   const std::string& what) {
  if (s == "bad-request") return WireErrorCode::kBadRequest;
  if (s == "overloaded") return WireErrorCode::kOverloaded;
  if (s == "deadline-exceeded") return WireErrorCode::kDeadlineExceeded;
  if (s == "shutting-down") return WireErrorCode::kShuttingDown;
  if (s == "solver") return WireErrorCode::kSolver;
  if (s == "internal") return WireErrorCode::kInternal;
  throw ConfigError(what + ": unknown error code '" + s + "'");
}

// -- key/value writer ---------------------------------------------------------

struct Writer {
  std::string out;

  void header(const char* tag) {
    out += kMagic;
    out += ' ';
    out += fmt_u64(kServeWireVersion);
    out += ' ';
    out += tag;
    out += '\n';
  }
  void kv(const char* key, const std::string& value) {
    out += key;
    out += ' ';
    out += value;
    out += '\n';
  }
  void num(const char* key, double v) { kv(key, fmt_double(v)); }
  template <class T, std::enable_if_t<std::is_unsigned_v<T>, int> = 0>
  void num(const char* key, T v) {
    kv(key, fmt_u64(static_cast<std::uint64_t>(v)));
  }
  void flag(const char* key, bool v) { kv(key, v ? "1" : "0"); }
  void text(const char* key, const std::string& v) { kv(key, percent_encode(v)); }
  void list(const char* key, const std::vector<double>& v) {
    if (v.empty()) return;
    std::string joined;
    for (std::size_t i = 0; i < v.size(); ++i) {
      if (i > 0) joined += ',';
      joined += fmt_double(v[i]);
    }
    kv(key, joined);
  }
};

std::vector<double> parse_double_list(const std::string& s,
                                      const std::string& what) {
  std::vector<double> out;
  for (std::size_t pos = 0; pos <= s.size();) {
    const std::size_t comma = std::min(s.find(',', pos), s.size());
    out.push_back(parse_double(s.substr(pos, comma - pos), what));
    pos = comma + 1;
  }
  return out;
}

// -- the thermal-parameter field table ----------------------------------------
// One enumeration drives both encode and decode, so the two cannot drift.
// Every field of ThermalModelParams is on the wire: the model key (and so
// bit-identity with an in-process call) depends on all of them.

template <class F>
void visit_thermal(ThermalModelParams& t, F&& f) {
  f("t.grid_rows", t.grid_rows);
  f("t.grid_cols", t.grid_cols);
  f("t.silicon_conductivity", t.silicon_conductivity);
  f("t.silicon_volumetric_heat_capacity", t.silicon_volumetric_heat_capacity);
  f("t.bond_conductivity", t.bond_conductivity);
  f("t.cavity_wall_conductivity", t.cavity_wall_conductivity);
  f("t.inlet_temperature", t.inlet_temperature);
  f("t.ambient_temperature", t.ambient_temperature);
  f("t.beol_thickness", t.channel_params.beol_thickness);
  f("t.beol_conductivity", t.channel_params.beol_conductivity);
  f("t.heat_transfer_coeff", t.channel_params.heat_transfer_coeff);
  f("t.coolant_heat_capacity", t.coolant.heat_capacity);
  f("t.coolant_density", t.coolant.density);
  f("t.coolant_conductivity", t.coolant.conductivity);
  f("t.coolant_dynamic_viscosity", t.coolant.dynamic_viscosity);
  f("t.tim_thickness", t.tim_thickness);
  f("t.tim_conductivity", t.tim_conductivity);
  f("t.spreader_capacitance", t.spreader_capacitance);
  f("t.sink_capacitance", t.sink_capacitance);
  f("t.spreader_to_sink_resistance", t.spreader_to_sink_resistance);
  f("t.sink_to_ambient_resistance", t.sink_to_ambient_resistance);
  f("t.alternate_flow_direction", t.alternate_flow_direction);
  f("t.fluid_tolerance", t.fluid_tolerance);
  f("t.max_fluid_iterations", t.max_fluid_iterations);
  f("t.steady_fluid_iterations", t.steady_fluid_iterations);
  f("t.steady_pseudo_dt", t.steady_pseudo_dt);
  f("t.steady_tolerance", t.steady_tolerance);
  f("t.max_steady_iterations", t.max_steady_iterations);
  f("t.direct_steady_solver", t.direct_steady_solver);
  f("t.pcg_tolerance", t.pcg.tolerance);
  f("t.pcg_max_iterations", t.pcg.max_iterations);
  f("t.pcg_ssor_omega", t.pcg.ssor_omega);
}

void write_thermal(Writer& w, const ThermalModelParams& params) {
  ThermalModelParams t = params;  // visitor takes mutable refs
  visit_thermal(t, [&w](const char* key, auto& field) {
    using T = std::remove_reference_t<decltype(field)>;
    if constexpr (std::is_same_v<T, bool>) {
      w.flag(key, field);
    } else {
      w.num(key, field);
    }
  });
  w.kv("t.solver_backend", to_string(t.solver_backend));
  w.kv("t.pcg_preconditioner", to_string(t.pcg.preconditioner));
}

bool apply_thermal_field(ThermalModelParams& t, const std::string& key,
                         const std::string& value, const std::string& what) {
  if (key == "t.solver_backend") {
    t.solver_backend = solver_backend_from_name(value);
    return true;
  }
  if (key == "t.pcg_preconditioner") {
    t.pcg.preconditioner = pcg_preconditioner_from_name(value);
    return true;
  }
  bool hit = false;
  visit_thermal(t, [&](const char* name, auto& field) {
    if (hit || key != name) return;
    hit = true;
    using T = std::remove_reference_t<decltype(field)>;
    if constexpr (std::is_same_v<T, bool>) {
      LIQUID3D_REQUIRE(value == "0" || value == "1",
                       what + ": " + key + " must be 0 or 1, got '" + value + "'");
      field = value == "1";
    } else if constexpr (std::is_same_v<T, std::size_t>) {
      field = static_cast<std::size_t>(parse_u64(value, what + ": " + key));
    } else {
      field = parse_double(value, what + ": " + key);
    }
  });
  return hit;
}

// -- the SimulationResult field table -----------------------------------------

template <class F>
void visit_result(SimulationResult& r, F&& f) {
  f("r.hotspot_percent", r.hotspot_percent);
  f("r.hotspot_max_sample", r.hotspot_max_sample);
  f("r.above_target_percent", r.above_target_percent);
  f("r.spatial_gradient_percent", r.spatial_gradient_percent);
  f("r.thermal_cycles_per_1000", r.thermal_cycles_per_1000);
  f("r.avg_tmax", r.avg_tmax);
  f("r.chip_energy_j", r.chip_energy_j);
  f("r.pump_energy_j", r.pump_energy_j);
  f("r.total_energy_j", r.total_energy_j);
  f("r.throughput_per_s", r.throughput_per_s);
  f("r.avg_utilization", r.avg_utilization);
  f("r.migrations", r.migrations);
  f("r.pump_transitions", r.pump_transitions);
  f("r.valve_transitions", r.valve_transitions);
  f("r.avg_flow_skew", r.avg_flow_skew);
  f("r.predictor_rebuilds", r.predictor_rebuilds);
  f("r.forecast_rmse", r.forecast_rmse);
  f("r.avg_pump_setting", r.avg_pump_setting);
  f("r.elapsed_s", r.elapsed_s);
}

// -- the ServeStats field table -----------------------------------------------

template <class F>
void visit_stats(ServeStats& s, F&& f) {
  f("steady_queries", s.steady_queries);
  f("rom_hits", s.rom_hits);
  f("rom_builds", s.rom_builds);
  f("rom_fallbacks", s.rom_fallbacks);
  f("rom_evictions", s.rom_evictions);
  f("full_solves", s.full_solves);
  f("model_evictions", s.model_evictions);
  f("session_queries", s.session_queries);
  f("batches", s.batches);
  f("batched_sessions", s.batched_sessions);
  f("max_batch", s.max_batch);
  f("solo_fallbacks", s.solo_fallbacks);
  f("wire_accepted", s.wire_accepted);
  f("wire_rejected", s.wire_rejected);
  f("wire_timed_out", s.wire_timed_out);
  f("wire_connections", s.wire_connections);
  f("wire_queue_hwm", s.wire_queue_hwm);
  f("wire_queue_hwm_window", s.wire_queue_hwm_window);
}

// -- payload encoders ---------------------------------------------------------

void write_envelope_prefix(Writer& w, const char* tag, std::uint64_t id,
                           double deadline_ms) {
  w.header(tag);
  w.num("id", id);
  w.num("deadline_ms", deadline_ms);
}

void write_steady(Writer& w, const SteadyQuery& q) {
  const SimulationConfig& cfg = q.config;
  w.kv("cooling", cooling_name(cfg.cooling));
  w.num("layer_pairs", cfg.layer_pairs);
  if (cfg.stack) w.kv("stack", encode_stack_spec(*cfg.stack));
  w.kv("delivery_mode", to_string(cfg.delivery_mode));
  write_thermal(w, cfg.thermal);
  w.num("core_watts", q.core_watts);
  if (!q.block_watts.empty()) {
    std::string packed;
    for (std::size_t l = 0; l < q.block_watts.size(); ++l) {
      if (l > 0) packed += ';';
      packed += fmt_u64(l);
      packed += ':';
      for (std::size_t b = 0; b < q.block_watts[l].size(); ++b) {
        if (b > 0) packed += ',';
        packed += fmt_double(q.block_watts[l][b]);
      }
    }
    w.kv("block_watts", packed);
  }
  w.list("flows_ml_per_min", q.flows_ml_per_min);
  w.list("valve_openings", q.valve_openings);
  w.num("pump_setting", q.pump_setting);
  if (q.reference_c) w.num("reference_c", *q.reference_c);
  w.num("max_error_c", q.max_error_c);
  w.flag("force_full", q.force_full);
}

void write_whatif(Writer& w, const WhatIfQuery& q) {
  w.text("scenario", q.scenario);
  w.text("benchmark", q.benchmark);
  w.num("duration_s", q.duration_s);
  w.num("seed", q.seed);
  w.num("layer_pairs", q.layer_pairs);
  if (q.stack) w.kv("stack", encode_stack_spec(*q.stack));
  w.num("grid_rows", q.grid_rows);
  w.num("grid_cols", q.grid_cols);
}

void write_replay(Writer& w, const ReplayQuery& q) {
  write_whatif(w, q.base);
  for (const PhaseChange& p : q.phases) {
    w.kv("phase", fmt_u64(static_cast<std::uint64_t>(p.at.as_ms())) + ":" +
                      fmt_double(p.utilization_scale));
  }
  w.num("trace_period_s", q.trace_period_s);
}

void write_steady_answer(Writer& w, const SteadyAnswer& a) {
  w.num("t_max_c", a.t_max_c);
  w.list("layer_max_c", a.layer_max_c);
  w.flag("used_rom", a.used_rom);
  w.num("estimated_error_c", a.estimated_error_c);
  w.num("certified_error_c", a.certified_error_c);
  w.num("rom_dimension", a.rom_dimension);
  w.num("elapsed_us", a.elapsed_us);
}

void write_outcome(Writer& w, const SessionOutcome& o) {
  SimulationResult r = o.result;  // visitor takes mutable refs
  w.text("r.label", r.label);
  w.text("r.benchmark", r.benchmark);
  visit_result(r, [&w](const char* key, auto& field) { w.num(key, field); });
  for (const SampleTrace& s : o.trace) {
    std::string line = fmt_u64(static_cast<std::uint64_t>(s.now.as_ms()));
    for (const double v : {s.tmax, s.forecast}) {
      line += ' ';
      line += fmt_double(v);
    }
    line += ' ';
    line += fmt_u64(s.pump_setting);
    for (const double v : {s.flow_ml_per_min, s.chip_watts, s.pump_watts,
                           s.mean_busy}) {
      line += ' ';
      line += fmt_double(v);
    }
    line += ' ';
    line += fmt_u64(s.queued_threads);
    w.kv("trace", line);
  }
}

void write_stats(Writer& w, const ServeStats& stats) {
  ServeStats s = stats;  // visitor takes mutable refs
  visit_stats(s, [&w](const char* key, auto& field) { w.num(key, field); });
}

// -- line reader --------------------------------------------------------------

struct Line {
  std::string key;
  std::string value;
};

/// Splits the body into `<key> <value>` lines (value may be empty).
std::vector<Line> read_lines(std::string_view body, const std::string& what) {
  std::vector<Line> lines;
  std::size_t pos = 0;
  while (pos < body.size()) {
    std::size_t eol = body.find('\n', pos);
    if (eol == std::string_view::npos) eol = body.size();
    const std::string_view line = body.substr(pos, eol - pos);
    pos = eol + 1;
    if (line.empty()) continue;
    const std::size_t space = line.find(' ');
    LIQUID3D_REQUIRE(space != std::string_view::npos && space > 0,
                     what + ": malformed line '" + std::string(line) + "'");
    lines.push_back(Line{std::string(line.substr(0, space)),
                         std::string(line.substr(space + 1))});
  }
  return lines;
}

/// Header: `liquid3d-serve <version> <tag>`.  Returns the tag and the body
/// offset; rejects a foreign magic or an unsupported version.
std::string read_header(const std::string& text, std::size_t& body_pos,
                        const std::string& what) {
  std::size_t eol = text.find('\n');
  if (eol == std::string::npos) eol = text.size();
  const std::string_view header(text.data(), eol);
  body_pos = eol < text.size() ? eol + 1 : text.size();

  const std::size_t magic_end = header.find(' ');
  LIQUID3D_REQUIRE(magic_end != std::string_view::npos &&
                       header.substr(0, magic_end) == kMagic,
                   what + ": not a liquid3d-serve envelope");
  const std::size_t ver_end = header.find(' ', magic_end + 1);
  LIQUID3D_REQUIRE(ver_end != std::string_view::npos,
                   what + ": missing version/tag in header");
  const std::string version(header.substr(magic_end + 1, ver_end - magic_end - 1));
  const std::uint64_t v = parse_u64(version, what + ": envelope version");
  LIQUID3D_REQUIRE(v == kServeWireVersion,
                   what + ": unsupported envelope version " + version +
                       " (this peer speaks " + std::to_string(kServeWireVersion) +
                       ")");
  return std::string(header.substr(ver_end + 1));
}

// -- payload decoders ---------------------------------------------------------

bool apply_envelope_field(std::uint64_t& id, double& deadline_ms,
                          const Line& line, const std::string& what) {
  if (line.key == "id") {
    id = parse_u64(line.value, what + ": id");
    return true;
  }
  if (line.key == "deadline_ms") {
    deadline_ms = parse_double(line.value, what + ": deadline_ms");
    return true;
  }
  return false;
}

SteadyQuery decode_steady(const std::vector<Line>& lines, std::uint64_t& id,
                          double& deadline_ms, const std::string& what) {
  SteadyQuery q;
  for (const Line& line : lines) {
    const std::string& key = line.key;
    const std::string& value = line.value;
    if (apply_envelope_field(id, deadline_ms, line, what)) {
    } else if (key == "cooling") {
      q.config.cooling = cooling_from_name(value, what);
    } else if (key == "layer_pairs") {
      q.config.layer_pairs = static_cast<std::size_t>(parse_u64(value, what + ": " + key));
    } else if (key == "stack") {
      q.config.stack = decode_stack_spec(value, what);
    } else if (key == "delivery_mode") {
      q.config.delivery_mode = delivery_from_name(value, what);
    } else if (apply_thermal_field(q.config.thermal, key, value, what)) {
    } else if (key == "core_watts") {
      q.core_watts = parse_double(value, what + ": " + key);
    } else if (key == "block_watts") {
      for (std::size_t pos = 0; pos <= value.size();) {
        const std::size_t semi = std::min(value.find(';', pos), value.size());
        const std::string entry = value.substr(pos, semi - pos);
        pos = semi + 1;
        const std::size_t colon = entry.find(':');
        LIQUID3D_REQUIRE(colon != std::string::npos,
                         what + ": block_watts entry '" + entry +
                             "' is not LAYER:W,W,..");
        const auto layer = static_cast<std::size_t>(
            parse_u64(entry.substr(0, colon), what + ": block_watts layer"));
        if (layer >= q.block_watts.size()) q.block_watts.resize(layer + 1);
        const std::string csv = entry.substr(colon + 1);
        if (!csv.empty()) {
          q.block_watts[layer] = parse_double_list(csv, what + ": block_watts");
        }
      }
    } else if (key == "flows_ml_per_min") {
      q.flows_ml_per_min = parse_double_list(value, what + ": " + key);
    } else if (key == "valve_openings") {
      q.valve_openings = parse_double_list(value, what + ": " + key);
    } else if (key == "pump_setting") {
      q.pump_setting = static_cast<std::size_t>(parse_u64(value, what + ": " + key));
    } else if (key == "reference_c") {
      q.reference_c = parse_double(value, what + ": " + key);
    } else if (key == "max_error_c") {
      q.max_error_c = parse_double(value, what + ": " + key);
    } else if (key == "force_full") {
      q.force_full = value == "1";
    } else {
      throw ConfigError(what + ": unknown steady key '" + key + "'");
    }
  }
  return q;
}

/// Shared by whatif and replay ( `phases`/`trace_period_s` only legal for
/// replay — `replay` toggles them).
ReplayQuery decode_session_query(const std::vector<Line>& lines, bool replay,
                                 std::uint64_t& id, double& deadline_ms,
                                 const std::string& what) {
  ReplayQuery q;
  for (const Line& line : lines) {
    const std::string& key = line.key;
    const std::string& value = line.value;
    if (apply_envelope_field(id, deadline_ms, line, what)) {
    } else if (key == "scenario") {
      q.base.scenario = percent_decode(value, what + ": " + key);
    } else if (key == "benchmark") {
      q.base.benchmark = percent_decode(value, what + ": " + key);
    } else if (key == "duration_s") {
      q.base.duration_s = parse_double(value, what + ": " + key);
    } else if (key == "seed") {
      q.base.seed = parse_u64(value, what + ": " + key);
    } else if (key == "layer_pairs") {
      q.base.layer_pairs = static_cast<std::size_t>(parse_u64(value, what + ": " + key));
    } else if (key == "stack") {
      q.base.stack = decode_stack_spec(value, what);
    } else if (key == "grid_rows") {
      q.base.grid_rows = static_cast<std::size_t>(parse_u64(value, what + ": " + key));
    } else if (key == "grid_cols") {
      q.base.grid_cols = static_cast<std::size_t>(parse_u64(value, what + ": " + key));
    } else if (replay && key == "phase") {
      const std::size_t colon = value.find(':');
      LIQUID3D_REQUIRE(colon != std::string::npos,
                       what + ": phase '" + value + "' is not MS:SCALE");
      PhaseChange p;
      p.at = SimTime::from_ms(static_cast<std::int64_t>(
          parse_u64(value.substr(0, colon), what + ": phase time")));
      p.utilization_scale =
          parse_double(value.substr(colon + 1), what + ": phase scale");
      q.phases.push_back(p);
    } else if (replay && key == "trace_period_s") {
      q.trace_period_s = parse_double(value, what + ": " + key);
    } else {
      throw ConfigError(what + ": unknown " +
                        (replay ? std::string("replay") : std::string("whatif")) +
                        " key '" + key + "'");
    }
  }
  return q;
}

SteadyAnswer decode_steady_answer(const std::vector<Line>& lines,
                                  std::uint64_t& id, const std::string& what) {
  SteadyAnswer a;
  double ignored_deadline = 0.0;
  for (const Line& line : lines) {
    const std::string& key = line.key;
    const std::string& value = line.value;
    if (apply_envelope_field(id, ignored_deadline, line, what)) {
    } else if (key == "t_max_c") {
      a.t_max_c = parse_double(value, what + ": " + key);
    } else if (key == "layer_max_c") {
      a.layer_max_c = parse_double_list(value, what + ": " + key);
    } else if (key == "used_rom") {
      a.used_rom = value == "1";
    } else if (key == "estimated_error_c") {
      a.estimated_error_c = parse_double(value, what + ": " + key);
    } else if (key == "certified_error_c") {
      a.certified_error_c = parse_double(value, what + ": " + key);
    } else if (key == "rom_dimension") {
      a.rom_dimension = static_cast<std::size_t>(parse_u64(value, what + ": " + key));
    } else if (key == "elapsed_us") {
      a.elapsed_us = parse_double(value, what + ": " + key);
    } else {
      throw ConfigError(what + ": unknown steady-answer key '" + key + "'");
    }
  }
  return a;
}

SessionOutcome decode_outcome(const std::vector<Line>& lines, std::uint64_t& id,
                              const std::string& what) {
  SessionOutcome o;
  double ignored_deadline = 0.0;
  for (const Line& line : lines) {
    const std::string& key = line.key;
    const std::string& value = line.value;
    if (apply_envelope_field(id, ignored_deadline, line, what)) continue;
    if (key == "r.label") {
      o.result.label = percent_decode(value, what + ": " + key);
      continue;
    }
    if (key == "r.benchmark") {
      o.result.benchmark = percent_decode(value, what + ": " + key);
      continue;
    }
    if (key == "trace") {
      // 10 space-separated fields: ms tmax forecast pump flow chip pump_w
      // busy queued (see write_outcome).
      std::vector<std::string> parts;
      for (std::size_t pos = 0; pos <= value.size();) {
        const std::size_t space = std::min(value.find(' ', pos), value.size());
        parts.push_back(value.substr(pos, space - pos));
        pos = space + 1;
      }
      LIQUID3D_REQUIRE(parts.size() == 9,
                       what + ": trace record has " +
                           std::to_string(parts.size()) + " fields, expected 9");
      SampleTrace s;
      s.now = SimTime::from_ms(
          static_cast<std::int64_t>(parse_u64(parts[0], what + ": trace time")));
      s.tmax = parse_double(parts[1], what + ": trace tmax");
      s.forecast = parse_double(parts[2], what + ": trace forecast");
      s.pump_setting =
          static_cast<std::size_t>(parse_u64(parts[3], what + ": trace pump"));
      s.flow_ml_per_min = parse_double(parts[4], what + ": trace flow");
      s.chip_watts = parse_double(parts[5], what + ": trace chip watts");
      s.pump_watts = parse_double(parts[6], what + ": trace pump watts");
      s.mean_busy = parse_double(parts[7], what + ": trace busy");
      s.queued_threads =
          static_cast<std::size_t>(parse_u64(parts[8], what + ": trace queued"));
      o.trace.push_back(s);
      continue;
    }
    bool hit = false;
    visit_result(o.result, [&](const char* name, auto& field) {
      if (hit || key != name) return;
      hit = true;
      using T = std::remove_reference_t<decltype(field)>;
      if constexpr (std::is_same_v<T, std::size_t>) {
        field = static_cast<std::size_t>(parse_u64(value, what + ": " + key));
      } else {
        field = parse_double(value, what + ": " + key);
      }
    });
    if (!hit) throw ConfigError(what + ": unknown outcome key '" + key + "'");
  }
  return o;
}

ServeStats decode_stats(const std::vector<Line>& lines, std::uint64_t& id,
                        const std::string& what) {
  ServeStats s;
  double ignored_deadline = 0.0;
  for (const Line& line : lines) {
    if (apply_envelope_field(id, ignored_deadline, line, what)) continue;
    bool hit = false;
    visit_stats(s, [&](const char* name, auto& field) {
      if (hit || line.key != name) return;
      hit = true;
      field = static_cast<std::size_t>(
          parse_u64(line.value, what + ": " + line.key));
    });
    if (!hit) {
      throw ConfigError(what + ": unknown stats key '" + line.key + "'");
    }
  }
  return s;
}

/// One trace-answer span line:
///   <trace_id> <span_id> <parent_id> <stage> <start_ns> <end_ns>
/// (stage percent-encoded).
obs::TraceSpan decode_span(const std::string& value, const std::string& what) {
  std::vector<std::string> tokens;
  std::size_t pos = 0;
  while (pos <= value.size()) {
    std::size_t space = value.find(' ', pos);
    if (space == std::string::npos) space = value.size();
    tokens.push_back(value.substr(pos, space - pos));
    pos = space + 1;
  }
  LIQUID3D_REQUIRE(tokens.size() == 6,
                   what + ": malformed span line '" + value + "'");
  obs::TraceSpan s;
  s.trace_id = parse_u64(tokens[0], what + ": span trace_id");
  s.span_id =
      static_cast<std::uint32_t>(parse_u64(tokens[1], what + ": span id"));
  s.parent_id =
      static_cast<std::uint32_t>(parse_u64(tokens[2], what + ": span parent"));
  s.stage = percent_decode(tokens[3], what + ": span stage");
  s.start_ns = parse_u64(tokens[4], what + ": span start");
  s.end_ns = parse_u64(tokens[5], what + ": span end");
  return s;
}

ErrorReply decode_error(const std::vector<Line>& lines, std::uint64_t& id,
                        const std::string& what) {
  ErrorReply e;
  double ignored_deadline = 0.0;
  for (const Line& line : lines) {
    if (apply_envelope_field(id, ignored_deadline, line, what)) {
    } else if (line.key == "code") {
      e.code = error_code_from_name(line.value, what);
    } else if (line.key == "message") {
      e.message = percent_decode(line.value, what + ": message");
    } else {
      throw ConfigError(what + ": unknown error key '" + line.key + "'");
    }
  }
  return e;
}

}  // namespace

const char* to_string(WireErrorCode code) {
  switch (code) {
    case WireErrorCode::kBadRequest: return "bad-request";
    case WireErrorCode::kOverloaded: return "overloaded";
    case WireErrorCode::kDeadlineExceeded: return "deadline-exceeded";
    case WireErrorCode::kShuttingDown: return "shutting-down";
    case WireErrorCode::kSolver: return "solver";
    case WireErrorCode::kInternal: return "internal";
    case WireErrorCode::kProtocol: return "protocol";
    case WireErrorCode::kDisconnected: return "disconnected";
  }
  return "?";
}

std::string encode_request(const WireRequest& request) {
  Writer w;
  if (const auto* steady = std::get_if<SteadyQuery>(&request.payload)) {
    write_envelope_prefix(w, "steady", request.id, request.deadline_ms);
    write_steady(w, *steady);
  } else if (const auto* whatif = std::get_if<WhatIfQuery>(&request.payload)) {
    write_envelope_prefix(w, "whatif", request.id, request.deadline_ms);
    write_whatif(w, *whatif);
  } else if (const auto* replay = std::get_if<ReplayQuery>(&request.payload)) {
    write_envelope_prefix(w, "replay", request.id, request.deadline_ms);
    write_replay(w, *replay);
  } else if (const auto* trace = std::get_if<TraceQuery>(&request.payload)) {
    write_envelope_prefix(w, "trace", request.id, request.deadline_ms);
    if (trace->limit != 0) w.num("limit", trace->limit);
  } else if (std::get_if<MetricsQuery>(&request.payload) != nullptr) {
    write_envelope_prefix(w, "metrics", request.id, request.deadline_ms);
  } else {
    const auto& stats = std::get<StatsQuery>(request.payload);
    write_envelope_prefix(w, "stats", request.id, request.deadline_ms);
    // Emitted only when set, so plain stats requests stay byte-identical
    // to what pre-reset peers produced.
    if (stats.reset_hwm) w.flag("reset_hwm", true);
  }
  return std::move(w.out);
}

std::string encode_response(const WireResponse& response) {
  Writer w;
  if (const auto* answer = std::get_if<SteadyAnswer>(&response.payload)) {
    write_envelope_prefix(w, "steady-answer", response.id, 0.0);
    write_steady_answer(w, *answer);
  } else if (const auto* outcome = std::get_if<SessionOutcome>(&response.payload)) {
    write_envelope_prefix(w, "outcome", response.id, 0.0);
    write_outcome(w, *outcome);
  } else if (const auto* stats = std::get_if<ServeStats>(&response.payload)) {
    write_envelope_prefix(w, "stats-answer", response.id, 0.0);
    write_stats(w, *stats);
  } else if (const auto* metrics = std::get_if<MetricsAnswer>(&response.payload)) {
    write_envelope_prefix(w, "metrics-answer", response.id, 0.0);
    w.text("body", metrics->text);
  } else if (const auto* trace = std::get_if<TraceAnswer>(&response.payload)) {
    write_envelope_prefix(w, "trace-answer", response.id, 0.0);
    for (const obs::TraceSpan& s : trace->spans) {
      // One span per line: ids, percent-encoded stage, start/end ns.
      std::string line = fmt_u64(s.trace_id);
      line += ' ';
      line += fmt_u64(s.span_id);
      line += ' ';
      line += fmt_u64(s.parent_id);
      line += ' ';
      line += percent_encode(s.stage);
      line += ' ';
      line += fmt_u64(s.start_ns);
      line += ' ';
      line += fmt_u64(s.end_ns);
      w.kv("span", line);
    }
  } else {
    const auto& error = std::get<ErrorReply>(response.payload);
    write_envelope_prefix(w, "error", response.id, 0.0);
    w.kv("code", error_code_name(error.code));
    w.text("message", error.message);
  }
  return std::move(w.out);
}

WireRequest decode_request(const std::string& text) {
  const std::string what = "serve request";
  std::size_t body_pos = 0;
  const std::string tag = read_header(text, body_pos, what);
  const std::vector<Line> lines =
      read_lines(std::string_view(text).substr(body_pos), what);

  WireRequest request;
  if (tag == "steady") {
    request.payload =
        decode_steady(lines, request.id, request.deadline_ms, what);
  } else if (tag == "whatif") {
    request.payload =
        decode_session_query(lines, false, request.id, request.deadline_ms, what)
            .base;
  } else if (tag == "replay") {
    request.payload =
        decode_session_query(lines, true, request.id, request.deadline_ms, what);
  } else if (tag == "stats") {
    StatsQuery q;
    double ignored = 0.0;
    for (const Line& line : lines) {
      if (apply_envelope_field(request.id, ignored, line, what)) continue;
      if (line.key == "reset_hwm") {
        q.reset_hwm = line.value == "1";
        continue;
      }
      throw ConfigError(what + ": unknown stats key '" + line.key + "'");
    }
    request.deadline_ms = ignored;
    request.payload = q;
  } else if (tag == "metrics") {
    MetricsQuery q;
    double ignored = 0.0;
    for (const Line& line : lines) {
      LIQUID3D_REQUIRE(apply_envelope_field(request.id, ignored, line, what),
                       what + ": unknown metrics key '" + line.key + "'");
    }
    request.deadline_ms = ignored;
    request.payload = q;
  } else if (tag == "trace") {
    TraceQuery q;
    double ignored = 0.0;
    for (const Line& line : lines) {
      if (apply_envelope_field(request.id, ignored, line, what)) continue;
      if (line.key == "limit") {
        q.limit = parse_u64(line.value, what + ": limit");
        continue;
      }
      throw ConfigError(what + ": unknown trace key '" + line.key + "'");
    }
    request.deadline_ms = ignored;
    request.payload = q;
  } else {
    throw ConfigError(what + ": unknown request tag '" + tag + "'");
  }
  return request;
}

WireResponse decode_response(const std::string& text) {
  const std::string what = "serve response";
  std::size_t body_pos = 0;
  const std::string tag = read_header(text, body_pos, what);
  const std::vector<Line> lines =
      read_lines(std::string_view(text).substr(body_pos), what);

  WireResponse response;
  if (tag == "steady-answer") {
    response.payload = decode_steady_answer(lines, response.id, what);
  } else if (tag == "outcome") {
    response.payload = decode_outcome(lines, response.id, what);
  } else if (tag == "stats-answer") {
    response.payload = decode_stats(lines, response.id, what);
  } else if (tag == "metrics-answer") {
    MetricsAnswer a;
    double ignored = 0.0;
    for (const Line& line : lines) {
      if (apply_envelope_field(response.id, ignored, line, what)) continue;
      if (line.key == "body") {
        a.text = percent_decode(line.value, what + ": body");
        continue;
      }
      throw ConfigError(what + ": unknown metrics-answer key '" + line.key +
                        "'");
    }
    response.payload = std::move(a);
  } else if (tag == "trace-answer") {
    TraceAnswer a;
    double ignored = 0.0;
    for (const Line& line : lines) {
      if (apply_envelope_field(response.id, ignored, line, what)) continue;
      if (line.key == "span") {
        a.spans.push_back(decode_span(line.value, what));
        continue;
      }
      throw ConfigError(what + ": unknown trace-answer key '" + line.key +
                        "'");
    }
    response.payload = std::move(a);
  } else if (tag == "error") {
    response.payload = decode_error(lines, response.id, what);
  } else {
    throw ConfigError(what + ": unknown response tag '" + tag + "'");
  }
  return response;
}

std::uint64_t peek_request_id(const std::string& text) {
  std::size_t pos = 0;
  while (pos < text.size()) {
    std::size_t eol = text.find('\n', pos);
    if (eol == std::string::npos) eol = text.size();
    const std::string_view line = std::string_view(text).substr(pos, eol - pos);
    pos = eol + 1;
    if (line.substr(0, 3) == "id ") {
      std::uint64_t v = 0;
      const char* begin = line.data() + 3;
      const char* end = line.data() + line.size();
      if (std::from_chars(begin, end, v, 10).ptr == end) return v;
      return 0;
    }
  }
  return 0;
}

}  // namespace liquid3d
