#include "serve/net/frame.hpp"

#include <sys/socket.h>

#include <cerrno>
#include <cstdint>
#include <cstring>

#include "common/error.hpp"

namespace liquid3d {

namespace {

void send_all(int fd, const char* data, std::size_t len) {
  std::size_t sent = 0;
  while (sent < len) {
    const ssize_t n = ::send(fd, data + sent, len - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw WireError(WireErrorCode::kDisconnected,
                      std::string("send failed: ") + std::strerror(errno));
    }
    sent += static_cast<std::size_t>(n);
  }
}

/// Reads exactly `len` bytes.  Returns false on EOF before the first byte
/// (clean close); throws on EOF or error after a partial read when
/// `mid_frame` (a torn frame is a protocol event, not a clean close).
bool recv_all(int fd, char* data, std::size_t len, bool mid_frame) {
  std::size_t got = 0;
  while (got < len) {
    const ssize_t n = ::recv(fd, data + got, len - got, 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw WireError(WireErrorCode::kDisconnected,
                      std::string("recv failed: ") + std::strerror(errno));
    }
    if (n == 0) {
      if (got == 0 && !mid_frame) return false;
      throw WireError(WireErrorCode::kDisconnected,
                      "connection closed mid-frame (" + std::to_string(got) +
                          " of " + std::to_string(len) + " bytes)");
    }
    got += static_cast<std::size_t>(n);
  }
  return true;
}

}  // namespace

void send_frame(int fd, std::string_view payload) {
  LIQUID3D_REQUIRE(payload.size() <= kMaxFramePayload,
                   "serve frame payload exceeds cap");
  const auto len = static_cast<std::uint32_t>(payload.size());
  char prefix[4] = {static_cast<char>(len >> 24), static_cast<char>(len >> 16),
                    static_cast<char>(len >> 8), static_cast<char>(len)};
  // One gathered buffer so small replies leave in a single segment.
  std::string buf;
  buf.reserve(sizeof prefix + payload.size());
  buf.append(prefix, sizeof prefix);
  buf.append(payload);
  send_all(fd, buf.data(), buf.size());
}

std::optional<std::string> recv_frame(int fd) {
  unsigned char prefix[4];
  if (!recv_all(fd, reinterpret_cast<char*>(prefix), sizeof prefix, false)) {
    return std::nullopt;
  }
  const std::uint32_t len = (static_cast<std::uint32_t>(prefix[0]) << 24) |
                            (static_cast<std::uint32_t>(prefix[1]) << 16) |
                            (static_cast<std::uint32_t>(prefix[2]) << 8) |
                            static_cast<std::uint32_t>(prefix[3]);
  if (len > kMaxFramePayload) {
    throw WireError(WireErrorCode::kProtocol,
                    "frame length " + std::to_string(len) +
                        " exceeds cap " + std::to_string(kMaxFramePayload));
  }
  std::string payload(len, '\0');
  recv_all(fd, payload.data(), len, true);
  return payload;
}

}  // namespace liquid3d
