#include "serve/net/socket.hpp"

#include <netdb.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "common/error.hpp"
#include "serve/net/envelope.hpp"

namespace liquid3d {

namespace {

[[noreturn]] void throw_errno(const std::string& what) {
  throw WireError(WireErrorCode::kDisconnected,
                  what + ": " + std::strerror(errno));
}

sockaddr_un unix_sockaddr(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  LIQUID3D_REQUIRE(path.size() < sizeof addr.sun_path,
                   "unix socket path too long: " + path);
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  return addr;
}

/// getaddrinfo wrapper; caller owns the returned list.
addrinfo* resolve(const Endpoint& ep, bool listening) {
  addrinfo hints{};
  hints.ai_family = AF_UNSPEC;
  hints.ai_socktype = SOCK_STREAM;
  if (listening) hints.ai_flags = AI_PASSIVE;
  addrinfo* list = nullptr;
  const char* host =
      (listening && ep.host == "*") ? nullptr : ep.host.c_str();
  const int rc = ::getaddrinfo(host, ep.port.c_str(), &hints, &list);
  if (rc != 0) {
    throw ConfigError("cannot resolve endpoint '" + to_string(ep) +
                      "': " + gai_strerror(rc));
  }
  return list;
}

}  // namespace

Endpoint parse_endpoint(const std::string& spec, const std::string& what) {
  Endpoint ep;
  if (spec.rfind("unix:", 0) == 0) {
    ep.kind = Endpoint::Kind::kUnix;
    ep.path = spec.substr(5);
    LIQUID3D_REQUIRE(!ep.path.empty(),
                     what + ": empty unix socket path in '" + spec + "'");
    return ep;
  }
  const std::size_t colon = spec.rfind(':');
  LIQUID3D_REQUIRE(colon != std::string::npos && colon > 0 &&
                       colon + 1 < spec.size(),
                   what + ": endpoint '" + spec +
                       "' is neither HOST:PORT nor unix:PATH");
  ep.host = spec.substr(0, colon);
  ep.port = spec.substr(colon + 1);
  for (const char c : ep.port) {
    LIQUID3D_REQUIRE(c >= '0' && c <= '9',
                     what + ": non-numeric port in '" + spec + "'");
  }
  return ep;
}

std::string to_string(const Endpoint& ep) {
  if (ep.kind == Endpoint::Kind::kUnix) return "unix:" + ep.path;
  return ep.host + ":" + ep.port;
}

int listen_socket(const Endpoint& ep, int backlog) {
  if (ep.kind == Endpoint::Kind::kUnix) {
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) throw_errno("socket(unix)");
    ::unlink(ep.path.c_str());
    const sockaddr_un addr = unix_sockaddr(ep.path);
    if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) < 0 ||
        ::listen(fd, backlog) < 0) {
      ::close(fd);
      throw_errno("bind/listen " + to_string(ep));
    }
    return fd;
  }
  addrinfo* list = resolve(ep, true);
  int fd = -1;
  for (addrinfo* ai = list; ai != nullptr; ai = ai->ai_next) {
    fd = ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
    if (fd < 0) continue;
    const int one = 1;
    ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
    if (::bind(fd, ai->ai_addr, ai->ai_addrlen) == 0 &&
        ::listen(fd, backlog) == 0) {
      break;
    }
    ::close(fd);
    fd = -1;
  }
  ::freeaddrinfo(list);
  if (fd < 0) throw_errno("bind/listen " + to_string(ep));
  return fd;
}

Endpoint bound_endpoint(int listen_fd, const Endpoint& requested) {
  if (requested.kind == Endpoint::Kind::kUnix) return requested;
  sockaddr_storage storage{};
  socklen_t len = sizeof storage;
  if (::getsockname(listen_fd, reinterpret_cast<sockaddr*>(&storage), &len) <
      0) {
    throw_errno("getsockname");
  }
  in_port_t port = 0;
  if (storage.ss_family == AF_INET) {
    port = reinterpret_cast<const sockaddr_in*>(&storage)->sin_port;
  } else if (storage.ss_family == AF_INET6) {
    port = reinterpret_cast<const sockaddr_in6*>(&storage)->sin6_port;
  }
  Endpoint ep = requested;
  ep.port = std::to_string(ntohs(port));
  return ep;
}

int connect_socket(const Endpoint& ep) {
  if (ep.kind == Endpoint::Kind::kUnix) {
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) throw_errno("socket(unix)");
    const sockaddr_un addr = unix_sockaddr(ep.path);
    if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) <
        0) {
      ::close(fd);
      throw_errno("connect " + to_string(ep));
    }
    return fd;
  }
  addrinfo* list = resolve(ep, false);
  int fd = -1;
  int saved_errno = ECONNREFUSED;
  for (addrinfo* ai = list; ai != nullptr; ai = ai->ai_next) {
    fd = ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
    if (fd < 0) continue;
    if (::connect(fd, ai->ai_addr, ai->ai_addrlen) == 0) break;
    saved_errno = errno;
    ::close(fd);
    fd = -1;
  }
  ::freeaddrinfo(list);
  if (fd < 0) {
    errno = saved_errno;
    throw_errno("connect " + to_string(ep));
  }
  return fd;
}

}  // namespace liquid3d
