// envelope.hpp — the versioned, serializable request/response envelope of
// the thermal service.
//
// PR 8 gave the service three ad-hoc in-process query structs; this header
// is the contract that lets them leave the process.  The existing structs
// (SteadyQuery, WhatIfQuery, ReplayQuery, SteadyAnswer, SessionOutcome,
// ServeStats — serve/query.hpp) stay the payload types, so every in-process
// caller keeps compiling; the envelope adds what a wire needs and nothing
// else:
//
//   * a version + tag header line, so an old client talking to a new server
//     (or vice versa) gets a typed error instead of a misparse;
//   * a correlation id, so responses can come back out of order over one
//     pipelined connection;
//   * a per-request deadline, so a slow solve cannot hold a caller hostage;
//   * a typed error reply (ErrorReply), the wire image of the exception the
//     in-process call would have thrown, plus the transport-only outcomes
//     (overloaded, shutting down, deadline exceeded).
//
// Serialization is line-oriented text: a `liquid3d-serve <version> <tag>`
// header, then one `<key> <value>` line per field.  Doubles are printed
// %.17g (bit-exact round-trip — the same convention as geom/stack_spec and
// sim/report), free-form strings and embedded stack specs are
// percent-encoded into single whitespace-free tokens (the stack spec by
// encode_stack_spec, everything else by the same %XX escape).  Decoding is
// strict: an unknown version, tag, or key and any malformed value throw
// ConfigError naming the offender — version 1 never silently ignores input.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <variant>
#include <vector>

#include "obs/trace.hpp"
#include "serve/query.hpp"

namespace liquid3d {

/// Wire-protocol version this build speaks.  Bump when a key changes
/// meaning or a new key must not be ignored by old peers.  Purely
/// additive control-plane tags/keys (metrics, trace, stats reset_hwm)
/// do NOT bump the version: an old server answers them with a typed
/// bad-request — strict decoding already guarantees they can never be
/// silently ignored — and everything a version-1 peer could say before
/// still means the same thing.
inline constexpr std::uint32_t kServeWireVersion = 1;

/// Payload cap for one frame (guards both peers against a hostile or
/// corrupt length prefix; see net/frame.hpp).
inline constexpr std::size_t kMaxFramePayload = 16u << 20;

/// Request for the service's counter snapshot.  With `reset_hwm` set the
/// server reports the current windowed queue high-water mark, then resets
/// the window (report-then-reset, so no observation is lost).
struct StatsQuery {
  bool reset_hwm = false;
};

/// Request for the Prometheus-style metrics exposition (`serve_ctl
/// metrics`).  Answered inline on the reader thread, like stats.
struct MetricsQuery {};

/// Request for a dump of recent trace spans; `limit` == 0 means all
/// retained spans.
struct TraceQuery {
  std::uint64_t limit = 0;
};

/// Metrics exposition text (see docs/observability.md for the format).
struct MetricsAnswer {
  std::string text;
};

/// Recent trace spans, oldest first.
struct TraceAnswer {
  std::vector<obs::TraceSpan> spans;
};

/// How a request can fail, as carried on the wire and surfaced to client
/// code.  The first four are transport outcomes; kSolver/kBadRequest mirror
/// the exception the in-process call would have thrown (common/error.hpp).
enum class WireErrorCode {
  kBadRequest,        ///< malformed envelope or ConfigError from the service
  kOverloaded,        ///< admission queue full — retry later, nothing ran
  kDeadlineExceeded,  ///< the request's deadline passed before an answer
  kShuttingDown,      ///< server draining — nothing new is admitted
  kSolver,            ///< SolverError from the service (retriable outcome)
  kInternal,          ///< unexpected server-side exception
  kProtocol,          ///< client-local: malformed frame/envelope from peer
  kDisconnected,      ///< client-local: connection closed mid-exchange
};

[[nodiscard]] const char* to_string(WireErrorCode code);

/// Typed client-side failure: transport outcomes and protocol violations.
/// (Server-reported ConfigError/SolverError re-throw as those types so wire
/// callers handle errors exactly like in-process callers.)
class WireError : public std::runtime_error {
 public:
  WireError(WireErrorCode code, const std::string& what)
      : std::runtime_error(what), code_(code) {}
  [[nodiscard]] WireErrorCode code() const { return code_; }

 private:
  WireErrorCode code_;
};

/// The error reply payload (the wire image of an exception).
struct ErrorReply {
  WireErrorCode code = WireErrorCode::kInternal;
  std::string message;
};

/// One request envelope.  `id` is chosen by the client and echoed in the
/// response; `deadline_ms` is a relative time budget (0 = none) measured
/// from server-side admission.
struct WireRequest {
  std::uint64_t id = 0;
  double deadline_ms = 0.0;
  std::variant<SteadyQuery, WhatIfQuery, ReplayQuery, StatsQuery,
               MetricsQuery, TraceQuery>
      payload;
};

/// One response envelope; `id` echoes the request it answers (0 when the
/// request was too malformed to recover an id from).
struct WireResponse {
  std::uint64_t id = 0;
  std::variant<SteadyAnswer, SessionOutcome, ServeStats, ErrorReply,
               MetricsAnswer, TraceAnswer>
      payload;
};

[[nodiscard]] std::string encode_request(const WireRequest& request);
[[nodiscard]] std::string encode_response(const WireResponse& response);

/// Strict decoders; throw ConfigError naming the offending line/key.
[[nodiscard]] WireRequest decode_request(const std::string& text);
[[nodiscard]] WireResponse decode_response(const std::string& text);

/// Best-effort id of a request that failed to decode, so the error reply
/// can still be correlated (0 when even the id line is unreadable).
[[nodiscard]] std::uint64_t peek_request_id(const std::string& text);

}  // namespace liquid3d
