// query.hpp — the typed request/response surface of the always-on thermal
// service (serve/service.hpp).
//
// Three query families:
//
//   SteadyQuery  — "what is T_max of this configuration at these powers and
//                  this flow?"  Answered synchronously, through the reduced
//                  order model when its residual estimate stays within the
//                  bound (microseconds), else through a full steady solve on
//                  a pooled thermal model.
//   WhatIfQuery  — "run this scenario/benchmark cell for a few simulated
//                  seconds" (e.g. a valve/flow policy trial).  Asynchronous:
//                  queued, grouped by topology, and batched through
//                  BatchRunner lockstep.
//   ReplayQuery  — a WhatIfQuery plus a workload phase schedule and an
//                  optional sample trace (the transient-replay path the
//                  day/night example uses).
//
// Answers are plain structs; failures surface as exceptions through the
// returned std::future (ConfigError for malformed queries, SolverError for
// numerical outcomes), matching the rest of the codebase.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "sim/session.hpp"

namespace liquid3d {

/// Steady-state "what if" at fixed powers and flow.  The `config` member
/// carries the system identity (stack, cooling mode, thermal parameters) —
/// policy/workload/seed fields are ignored, a steady query has no workload.
struct SteadyQuery {
  SimulationConfig config;

  /// Injected powers [W] per [layer][block] (floorplan order; missing layers
  /// or blocks mean 0 W).  Empty = `core_watts` into every core block.
  std::vector<std::vector<double>> block_watts;
  double core_watts = 3.0;

  // -- Flow (liquid configurations; precedence top to bottom) ----------------
  /// Explicit per-cavity flows [ml/min]; arity = cavity count.
  std::vector<double> flows_ml_per_min;
  /// Valve openings steered through the valve network at `pump_setting`.
  std::vector<double> valve_openings;
  /// Uniform delivery at this pump setting; kTopSetting = highest.
  std::size_t pump_setting = kTopSetting;

  /// Boundary reference override [°C]: coolant inlet (liquid) or ambient
  /// (air).  Unset = the config's value.  The ROM answers any reference
  /// from one basis (the steady map is affine in it).
  std::optional<double> reference_c;

  /// Per-query ROM error bound [K]; <= 0 uses the service default.
  double max_error_c = 0.0;
  /// Bypass the ROM and run the full steady solver.
  bool force_full = false;

  static constexpr std::size_t kTopSetting = static_cast<std::size_t>(-1);
};

struct SteadyAnswer {
  double t_max_c = 0.0;
  std::vector<double> layer_max_c;  ///< per-layer silicon maxima [°C]
  bool used_rom = false;
  /// ROM residual-based error estimate [K] (0 when the full solver ran).
  double estimated_error_c = 0.0;
  /// ROM build-time certification error [K] (0 when the full solver ran).
  double certified_error_c = 0.0;
  std::size_t rom_dimension = 0;
  double elapsed_us = 0.0;
};

/// One full-fidelity simulation cell: a registry scenario bound to a
/// benchmark on a stack, run for `duration_s` of simulated time.
struct WhatIfQuery {
  /// ScenarioRegistry name, e.g. "talb-var" or "lb-max-valved/hot-corner".
  std::string scenario;
  /// Table 2 benchmark name, e.g. "Web-med".
  std::string benchmark;
  double duration_s = 3.0;
  std::uint64_t seed = 1;

  /// Stack axis: explicit spec wins, else the Niagara preset.
  std::size_t layer_pairs = 1;
  std::optional<StackSpec> stack;

  /// Grid overrides (0 = the config default); tests use coarse grids.
  std::size_t grid_rows = 0;
  std::size_t grid_cols = 0;
};

/// Transient replay: a WhatIfQuery advanced through a workload phase
/// schedule, optionally tracing samples.
struct ReplayQuery {
  WhatIfQuery base;
  std::vector<PhaseChange> phases;
  /// Trace sampling period [s]; 0 disables the trace.
  double trace_period_s = 0.0;
};

/// What an asynchronous session query resolves to.
struct SessionOutcome {
  SimulationResult result;
  std::vector<SampleTrace> trace;  ///< empty unless a trace was requested
};

/// Monotonic service counters (snapshot).
struct ServeStats {
  std::size_t steady_queries = 0;
  std::size_t rom_hits = 0;       ///< steady answers served by a cached ROM
  std::size_t rom_builds = 0;
  std::size_t rom_fallbacks = 0;  ///< ROM estimate exceeded the bound
  std::size_t rom_evictions = 0;
  std::size_t full_solves = 0;    ///< full steady solves (fallback + forced)
  std::size_t model_evictions = 0;
  std::size_t session_queries = 0;  ///< what-if + replay submissions
  std::size_t batches = 0;          ///< lockstep batches run
  std::size_t batched_sessions = 0;
  std::size_t max_batch = 0;        ///< largest batch observed
  std::size_t solo_fallbacks = 0;   ///< jobs re-run solo after a batch error

  // Transport counters — zero for an in-process service, filled in by
  // ServeServer (serve/net/server.hpp) when the service fronts a socket.
  std::size_t wire_accepted = 0;     ///< requests admitted for execution
  std::size_t wire_rejected = 0;     ///< overloaded + shutting-down rejections
  std::size_t wire_timed_out = 0;    ///< deadline-exceeded replies
  std::size_t wire_connections = 0;  ///< currently open connections
  std::size_t wire_queue_hwm = 0;    ///< in-flight high-water mark (lifetime)
  /// In-flight high-water mark since the last `stats --reset-hwm`, so
  /// successive burst measurements are independent of earlier traffic.
  std::size_t wire_queue_hwm_window = 0;
};

}  // namespace liquid3d
