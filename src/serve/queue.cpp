#include "serve/queue.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <memory>
#include <utility>

#include "common/error.hpp"
#include "sim/batch_runner.hpp"

namespace liquid3d {

namespace {

/// Install a trace collector on a session: keep every n-th sample so the
/// trace lands near the requested period regardless of the sampling rate.
void attach_trace(SimulationSession& session, double period_s,
                  std::vector<SampleTrace>& out) {
  const double sample_s = session.config().sampling_interval.as_s();
  const auto every =
      std::max<std::size_t>(1, static_cast<std::size_t>(
                                   std::llround(period_s / sample_s)));
  auto count = std::make_shared<std::size_t>(0);
  session.set_trace_callback([&out, every, count](const SampleTrace& s) {
    if ((*count)++ % every == 0) out.push_back(s);
  });
}

}  // namespace

QueryQueue::QueryQueue(Params params) : params_(params) {
  LIQUID3D_REQUIRE(params_.workers >= 1, "query queue needs at least 1 worker");
  LIQUID3D_REQUIRE(params_.max_batch >= 1, "max_batch must be >= 1");
  workers_.reserve(params_.workers);
  for (std::size_t i = 0; i < params_.workers; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

QueryQueue::~QueryQueue() { stop(); }

std::future<SessionOutcome> QueryQueue::submit(SessionJob job) {
  std::future<SessionOutcome> future = job.promise.get_future();
  {
    std::lock_guard<std::mutex> lock(mu_);
    LIQUID3D_REQUIRE(!stopping_, "query queue is stopping");
    pending_.push_back(std::move(job));
  }
  cv_.notify_one();
  return future;
}

std::size_t QueryQueue::pending() const {
  std::lock_guard<std::mutex> lock(mu_);
  return pending_.size();
}

void QueryQueue::wait_idle() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock, [this] { return pending_.empty() && active_ == 0; });
}

void QueryQueue::stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (std::thread& w : workers_) {
    if (w.joinable()) w.join();
  }
}

void QueryQueue::worker_loop() {
  using Clock = std::chrono::steady_clock;
  for (;;) {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [this] { return stopping_ || !pending_.empty(); });
    if (pending_.empty()) {
      if (stopping_) return;  // stop() drains before exiting
      continue;
    }

    const std::uint64_t key = pending_.front().group_key;
    const auto count_key = [this, key] {
      return static_cast<std::size_t>(
          std::count_if(pending_.begin(), pending_.end(),
                        [key](const SessionJob& j) { return j.group_key == key; }));
    };
    if (params_.batch_window_ms > 0.0) {
      // Hold the head open briefly: same-topology arrivals join this batch
      // and share one lockstep run instead of paying N factorizations.
      const auto deadline =
          Clock::now() + std::chrono::duration_cast<Clock::duration>(
                             std::chrono::duration<double, std::milli>(
                                 params_.batch_window_ms));
      while (!stopping_ && count_key() < params_.max_batch) {
        if (cv_.wait_until(lock, deadline) == std::cv_status::timeout) break;
      }
    }

    std::vector<SessionJob> batch;
    batch.reserve(std::min(params_.max_batch, pending_.size()));
    for (auto it = pending_.begin();
         it != pending_.end() && batch.size() < params_.max_batch;) {
      if (it->group_key == key) {
        batch.push_back(std::move(*it));
        it = pending_.erase(it);
      } else {
        ++it;
      }
    }
    ++active_;
    lock.unlock();

    run_batch(batch);

    batches_.add();
    batched_sessions_.add(batch.size());
    max_batch_seen_.observe(batch.size());

    lock.lock();
    --active_;
    idle_cv_.notify_all();
  }
}

void QueryQueue::run_batch(std::vector<SessionJob>& jobs) {
  std::vector<std::vector<SampleTrace>> traces(jobs.size());
  try {
    BatchRunner runner;
    for (std::size_t i = 0; i < jobs.size(); ++i) {
      auto session = std::make_unique<SimulationSession>(jobs[i].cfg);
      if (jobs[i].trace_period_s > 0.0) {
        attach_trace(*session, jobs[i].trace_period_s, traces[i]);
      }
      runner.add(std::move(session));
    }
    std::vector<SimulationResult> results = runner.run();
    for (std::size_t i = 0; i < jobs.size(); ++i) {
      jobs[i].promise.set_value(
          SessionOutcome{std::move(results[i]), std::move(traces[i])});
    }
  } catch (...) {
    // One bad configuration must not poison its groupmates: retry each job
    // alone, so only the genuinely failing ones surface an exception.
    for (SessionJob& job : jobs) {
      run_solo(job);
      solo_fallbacks_.add();
    }
  }
}

void QueryQueue::run_solo(SessionJob& job) {
  try {
    SimulationSession session(job.cfg);
    std::vector<SampleTrace> trace;
    if (job.trace_period_s > 0.0) {
      attach_trace(session, job.trace_period_s, trace);
    }
    session.init();
    while (session.step()) {
    }
    job.promise.set_value(SessionOutcome{session.result(), std::move(trace)});
  } catch (...) {
    job.promise.set_exception(std::current_exception());
  }
}

}  // namespace liquid3d
