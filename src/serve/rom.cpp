#include "serve/rom.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "common/error.hpp"

namespace liquid3d {

namespace {

/// In-place dense LU with partial pivoting (Doolittle, row-major m×m).
/// Pivot indices are LAPACK-style: row k was swapped with row pivot[k].
void factorize_dense(std::vector<double>& a, std::vector<int>& pivot,
                     std::size_t m) {
  pivot.assign(m, 0);
  for (std::size_t k = 0; k < m; ++k) {
    std::size_t p = k;
    double best = std::abs(a[k * m + k]);
    for (std::size_t i = k + 1; i < m; ++i) {
      const double mag = std::abs(a[i * m + k]);
      if (mag > best) {
        best = mag;
        p = i;
      }
    }
    pivot[k] = static_cast<int>(p);
    if (p != k) {
      for (std::size_t j = 0; j < m; ++j) std::swap(a[k * m + j], a[p * m + j]);
    }
    // A singular projected operator means the basis collapsed (it is
    // orthonormal and A is nonsingular, so this indicates a bug upstream).
    LIQUID3D_ASSERT(best > 1e-300, "projected steady operator is singular");
    const double inv_piv = 1.0 / a[k * m + k];
    for (std::size_t i = k + 1; i < m; ++i) {
      const double l = a[i * m + k] * inv_piv;
      a[i * m + k] = l;
      for (std::size_t j = k + 1; j < m; ++j) {
        a[i * m + j] -= l * a[k * m + j];
      }
    }
  }
}

}  // namespace

void ReducedSteadyModel::solve_reduced(const double* b, double* y) const {
  const std::size_t m = m_;
  std::memcpy(y, b, m * sizeof(double));
  for (std::size_t k = 0; k < m; ++k) {
    const auto p = static_cast<std::size_t>(pivot_[k]);
    if (p != k) std::swap(y[k], y[p]);
  }
  for (std::size_t i = 1; i < m; ++i) {
    double acc = y[i];
    for (std::size_t j = 0; j < i; ++j) acc -= h_lu_[i * m + j] * y[j];
    y[i] = acc;
  }
  for (std::size_t ii = m; ii-- > 0;) {
    double acc = y[ii];
    for (std::size_t j = ii + 1; j < m; ++j) acc -= h_lu_[ii * m + j] * y[j];
    y[ii] = acc / h_lu_[ii * m + ii];
  }
}

ReducedSteadyModel ReducedSteadyModel::build(ThermalModel3D& model,
                                             const RomParams& params) {
  LIQUID3D_REQUIRE(params.max_basis >= 1, "ROM basis cap must be >= 1");
  LIQUID3D_REQUIRE(params.drop_tolerance > 0.0 && params.drop_tolerance < 1.0,
                   "ROM drop tolerance must be in (0, 1)");
  LIQUID3D_REQUIRE(params.gain_safety >= 1.0, "ROM gain safety must be >= 1");

  ReducedSteadyModel rom;
  rom.params_ = params;
  model.export_steady_operator(rom.op_);
  const SteadyOperator& op = rom.op_;
  const std::size_t n = op.nodes;
  const double t_ref = op.t_ref;

  const Stack3D& stack = model.stack();
  std::vector<std::vector<double>> zero_watts(stack.layer_count());
  std::size_t inputs = 0;
  for (std::size_t l = 0; l < stack.layer_count(); ++l) {
    zero_watts[l].assign(stack.layer(l).floorplan.block_count(), 0.0);
    inputs += zero_watts[l].size();
  }
  rom.inputs_ = inputs;

  // Influence snapshots: the steady response to 1 W in each block, solved
  // through the model's own steady path (direct elimination or
  // pseudo-transient — whatever this operating point resolves to), so the
  // subspace is built from the answers the full solver would give.
  ThermalState state;
  const auto solve_snapshot = [&](double* out_field) {
    model.solve_steady_state();
    model.save_state(state);
    std::copy(state.temps.begin(), state.temps.end(), out_field);
    if (!op.liquid) {
      out_field[op.silicon_nodes] = state.spreader_temp;
      out_field[op.silicon_nodes + 1] = state.sink_temp;
    }
  };

  // Candidate 0 is the exact affine direction: with zero power the steady
  // field is uniformly t_ref (every boundary reference is t_ref), so the
  // constant vector handles inlet/ambient overrides exactly.
  std::vector<double> basis;
  basis.reserve((inputs + 1) * n);
  basis.assign(n, 1.0 / std::sqrt(static_cast<double>(n)));
  std::size_t m = 1;
  std::size_t dropped = 0;

  std::vector<double> snapshot(n);
  std::vector<double> candidate(n);
  double gain = 0.0;
  for (std::size_t l = 0; l < stack.layer_count(); ++l) {
    for (std::size_t b = 0; b < zero_watts[l].size(); ++b) {
      for (std::size_t l2 = 0; l2 < stack.layer_count(); ++l2) {
        if (l2 == l) {
          zero_watts[l][b] = 1.0;
          model.set_block_power(l, zero_watts[l]);
          zero_watts[l][b] = 0.0;
        } else {
          model.set_block_power(l2, zero_watts[l2]);
        }
      }
      solve_snapshot(snapshot.data());
      // u_b = A^{-1} m_b: the deviation field of 1 W in block (l, b).  Its
      // peak samples the residual→temperature amplification of A^{-1}.
      double peak = 0.0;
      for (std::size_t i = 0; i < n; ++i) {
        candidate[i] = snapshot[i] - t_ref;
        peak = std::max(peak, std::abs(candidate[i]));
      }
      gain = std::max(gain, peak);

      double norm0 = 0.0;
      for (double v : candidate) norm0 += v * v;
      norm0 = std::sqrt(norm0);
      if (norm0 <= 0.0 || m >= params.max_basis) {
        ++dropped;
        continue;
      }
      // Modified Gram-Schmidt, one re-orthogonalization pass ("twice is
      // enough") so the basis stays orthonormal to machine precision.
      for (int pass = 0; pass < 2; ++pass) {
        for (std::size_t j = 0; j < m; ++j) {
          const double* v = basis.data() + j * n;
          double dot = 0.0;
          for (std::size_t i = 0; i < n; ++i) dot += v[i] * candidate[i];
          for (std::size_t i = 0; i < n; ++i) candidate[i] -= dot * v[i];
        }
      }
      double norm = 0.0;
      for (double v : candidate) norm += v * v;
      norm = std::sqrt(norm);
      if (norm < params.drop_tolerance * norm0) {
        ++dropped;  // direction already (numerically) in the span
        continue;
      }
      const double inv_norm = 1.0 / norm;
      basis.resize((m + 1) * n);
      double* dst = basis.data() + m * n;
      for (std::size_t i = 0; i < n; ++i) dst[i] = candidate[i] * inv_norm;
      ++m;
    }
  }
  rom.basis_ = std::move(basis);
  rom.m_ = m;
  rom.dropped_ = dropped;
  rom.gain_c_per_w_ = gain;

  // Galerkin projection H = Vᵀ A V, factored once.
  std::vector<double> av(n);
  rom.h_lu_.assign(m * m, 0.0);
  for (std::size_t j = 0; j < m; ++j) {
    op.multiply(rom.basis_.data() + j * n, av.data());
    for (std::size_t i = 0; i < m; ++i) {
      const double* vi = rom.basis_.data() + i * n;
      double dot = 0.0;
      for (std::size_t k = 0; k < n; ++k) dot += vi[k] * av[k];
      rom.h_lu_[i * m + j] = dot;
    }
  }
  factorize_dense(rom.h_lu_, rom.pivot_, m);

  // Projected inputs: Vᵀ m_b from the sparse shares, Vᵀ c for the boundary.
  rom.input_proj_.assign(op.block_inputs.size(), {});
  for (std::size_t l = 0; l < op.block_inputs.size(); ++l) {
    rom.input_proj_[l].resize(op.block_inputs[l].size());
    for (std::size_t b = 0; b < op.block_inputs[l].size(); ++b) {
      auto& proj = rom.input_proj_[l][b];
      proj.assign(m, 0.0);
      for (const SteadyOperator::InputShare& share : op.block_inputs[l][b]) {
        for (std::size_t j = 0; j < m; ++j) {
          proj[j] += share.weight * rom.basis_[j * n + share.node];
        }
      }
    }
  }
  rom.ref_proj_.assign(m, 0.0);
  for (std::size_t j = 0; j < m; ++j) {
    const double* v = rom.basis_.data() + j * n;
    double dot = 0.0;
    for (std::size_t i = 0; i < n; ++i) dot += v[i] * op.ref_coef[i];
    rom.ref_proj_[j] = dot;
  }

  // Certification: deterministic probe power mixtures, reduced vs full.
  Scratch scratch;
  RomEvaluation eval;
  std::vector<std::vector<double>> probe_watts = zero_watts;
  for (std::size_t probe = 0; probe < params.certification_probes; ++probe) {
    std::size_t cursor = 0;
    for (std::size_t l = 0; l < probe_watts.size(); ++l) {
      for (std::size_t b = 0; b < probe_watts[l].size(); ++b, ++cursor) {
        // Probe 0: uniform 1 W; later probes: deterministic skewed ramps.
        probe_watts[l][b] =
            probe == 0 ? 1.0
                       : 0.25 + 1.75 * static_cast<double>(
                                           (cursor * 7 + probe * 3) % 8) /
                                    7.0;
      }
      model.set_block_power(l, probe_watts[l]);
    }
    solve_snapshot(snapshot.data());
    double full_tmax = snapshot[0];
    for (std::size_t i = 1; i < op.silicon_nodes; ++i) {
      full_tmax = std::max(full_tmax, snapshot[i]);
    }
    rom.evaluate(probe_watts, t_ref, /*max_error_c=*/0.0, scratch, eval);
    rom.certified_error_c_ =
        std::max(rom.certified_error_c_, std::abs(eval.t_max_c - full_tmax));
  }
  return rom;
}

void ReducedSteadyModel::evaluate(
    const std::vector<std::vector<double>>& block_watts, double t_ref_c,
    double max_error_c, Scratch& s, RomEvaluation& out) const {
  LIQUID3D_REQUIRE(block_watts.size() <= input_proj_.size(),
                   "ROM query has more layers than the stack");
  LIQUID3D_REQUIRE(std::isfinite(t_ref_c), "ROM reference temperature must be finite");
  const double bound = max_error_c > 0.0 ? max_error_c : params_.max_error_c;
  const std::size_t n = op_.nodes;
  const std::size_t m = m_;

  // Projected right-hand side: Vᵀ(p + c T_ref) from the precomputed pieces.
  s.reduced_rhs.assign(m, 0.0);
  for (std::size_t l = 0; l < block_watts.size(); ++l) {
    LIQUID3D_REQUIRE(block_watts[l].size() <= input_proj_[l].size(),
                     "ROM query has more blocks than the layer's floorplan");
    for (std::size_t b = 0; b < block_watts[l].size(); ++b) {
      const double w = block_watts[l][b];
      if (w == 0.0) continue;
      if (!std::isfinite(w)) throw SolverError("ROM query power is non-finite");
      LIQUID3D_REQUIRE(w >= 0.0, "ROM query power must be non-negative");
      const std::vector<double>& proj = input_proj_[l][b];
      for (std::size_t j = 0; j < m; ++j) s.reduced_rhs[j] += w * proj[j];
    }
  }
  for (std::size_t j = 0; j < m; ++j) {
    s.reduced_rhs[j] += t_ref_c * ref_proj_[j];
  }

  s.y.resize(m);
  solve_reduced(s.reduced_rhs.data(), s.y.data());

  // Reconstruct T = V y, tracking the silicon maxima on the fly.
  s.field.assign(n, 0.0);
  for (std::size_t j = 0; j < m; ++j) {
    const double yj = s.y[j];
    const double* v = basis_.data() + j * n;
    for (std::size_t i = 0; i < n; ++i) s.field[i] += yj * v[i];
  }
  out.layer_max_c.assign(op_.layer_count, -1e300);
  double t_max = -1e300;
  for (std::size_t i = 0; i < op_.silicon_nodes; ++i) {
    const double t = s.field[i];
    const std::size_t layer = i % op_.layer_count;
    if (t > out.layer_max_c[layer]) out.layer_max_c[layer] = t;
    if (t > t_max) t_max = t;
  }
  out.t_max_c = t_max;

  // Residual through the true operator: r = A (V y) − (p + c T_ref).
  s.full_rhs.assign(n, 0.0);
  for (std::size_t l = 0; l < block_watts.size(); ++l) {
    for (std::size_t b = 0; b < block_watts[l].size(); ++b) {
      const double w = block_watts[l][b];
      if (w == 0.0) continue;
      for (const SteadyOperator::InputShare& share : op_.block_inputs[l][b]) {
        s.full_rhs[share.node] += w * share.weight;
      }
    }
  }
  for (std::size_t i = 0; i < n; ++i) {
    s.full_rhs[i] += t_ref_c * op_.ref_coef[i];
  }
  s.residual.resize(n);
  op_.multiply(s.field.data(), s.residual.data());
  double r1 = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    r1 += std::abs(s.residual[i] - s.full_rhs[i]);
  }
  out.estimated_error_c = params_.gain_safety * gain_c_per_w_ * r1;
  out.within_bound = out.estimated_error_c <= bound;
}

std::size_t ReducedSteadyModel::memory_bytes() const {
  return sizeof(double) * (basis_.size() + h_lu_.size() + ref_proj_.size() +
                           op_.val.size() + op_.ref_coef.size()) +
         sizeof(std::size_t) * (op_.col.size() + op_.row_ptr.size());
}

}  // namespace liquid3d
