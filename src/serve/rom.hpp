// rom.hpp — reduced-order steady thermal model: Galerkin projection of the
// exported steady operator onto a block-Krylov subspace of steady responses.
//
// The steady state is exactly linear in the block powers and the boundary
// reference temperature (thermal/steady_operator.hpp):  A T = p + c T_ref.
// Offline, per (topology, flow vector), the builder solves one full steady
// state per floorplan block (a unit-power influence solution — the first
// block-Krylov direction of A^{-1} for each input column) plus the constant
// vector, orthonormalizes them by modified Gram-Schmidt with a drop
// tolerance, and projects:  H = Vᵀ A V  (dense, m ≈ blocks+1 « n), factored
// once by a small partially-pivoted LU.
//
// Online, a steady query is:  assemble the projected right-hand side from
// the precomputed per-block input projections (O(blocks·m)), solve the m×m
// dense system, reconstruct T = V y while tracking the maxima (O(n·m)), and
// bound the error through the true operator's residual r = A V y − b (one
// CSR SpMV).  Microseconds, no factorization, no fluid march.
//
// Error semantics: `estimated_error_c` maps the residual through an
// amplification gain sampled offline from the influence solutions
// (max ‖A⁻¹ m_b‖_∞ over the input columns, times a safety factor).  It is a
// calibrated estimator, not an a-priori bound — the builder certifies it
// against full solves on probe power vectors, and the service falls back to
// the full solver whenever the estimate exceeds the query's bound.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "thermal/model3d.hpp"
#include "thermal/steady_operator.hpp"

namespace liquid3d {

struct RomParams {
  /// Basis size cap.  The natural basis is one direction per floorplan
  /// block plus the constant vector; a smaller cap truncates the subspace
  /// (queries outside the span then fail the residual check and fall back).
  std::size_t max_basis = 128;
  /// Modified Gram-Schmidt drop tolerance (relative to the candidate's
  /// norm): directions this close to the current span are redundant —
  /// symmetric blocks of a floorplan produce near-identical responses.
  double drop_tolerance = 1e-8;
  /// Default per-query error bound [K]; queries may override.
  double max_error_c = 0.05;
  /// Safety factor on the sampled residual→temperature gain.
  double gain_safety = 4.0;
  /// Offline certification probes (deterministic power mixtures compared
  /// against full steady solves); 0 disables certification.
  std::size_t certification_probes = 3;
};

/// One reduced steady query answer.
struct RomEvaluation {
  double t_max_c = 0.0;
  std::vector<double> layer_max_c;   ///< per-layer silicon maxima [°C]
  double estimated_error_c = 0.0;    ///< residual-based estimate [K]
  bool within_bound = false;         ///< estimate <= the query's bound
};

class ReducedSteadyModel {
 public:
  /// Reusable per-thread work vectors: `evaluate` is const and allocation
  /// free after the first call with a given scratch.
  struct Scratch {
    std::vector<double> reduced_rhs;
    std::vector<double> y;
    std::vector<double> field;
    std::vector<double> full_rhs;
    std::vector<double> residual;
  };

  /// Build offline from the full model under its *current* flow vector.
  /// Runs one full steady solve per floorplan block (through the model's
  /// own steady path, so reduced answers are consistent with full ones),
  /// projects the exported operator, and certifies against probe solves.
  /// The model's power map and temperature field are left at the last
  /// snapshot state — callers own re-setting them.
  [[nodiscard]] static ReducedSteadyModel build(ThermalModel3D& model,
                                                const RomParams& params);

  /// Answer a steady query: `block_watts[layer][block]` (missing layers or
  /// blocks = 0 W), boundary reference `t_ref_c` (inlet / ambient), and an
  /// error bound (<= 0 uses RomParams::max_error_c).  Thread-safe const.
  void evaluate(const std::vector<std::vector<double>>& block_watts,
                double t_ref_c, double max_error_c, Scratch& scratch,
                RomEvaluation& out) const;

  [[nodiscard]] std::size_t dimension() const { return m_; }
  [[nodiscard]] std::size_t node_count() const { return op_.nodes; }
  [[nodiscard]] std::size_t input_count() const { return inputs_; }
  /// Candidate directions dropped by the Gram-Schmidt tolerance or the
  /// basis cap (a truncated basis is what makes fallback reachable).
  [[nodiscard]] std::size_t dropped_directions() const { return dropped_; }
  /// Max |reduced − full| T_max over the certification probes [K].
  [[nodiscard]] double certified_error_c() const { return certified_error_c_; }
  /// Sampled residual→temperature amplification [K/W] (before safety).
  [[nodiscard]] double gain_c_per_w() const { return gain_c_per_w_; }
  [[nodiscard]] const RomParams& params() const { return params_; }
  /// Approximate resident size (basis + operator), for cache accounting.
  [[nodiscard]] std::size_t memory_bytes() const;

 private:
  ReducedSteadyModel() = default;

  /// Solve H y = b through the stored LU (partial pivoting).
  void solve_reduced(const double* b, double* y) const;

  RomParams params_;
  SteadyOperator op_;
  std::size_t m_ = 0;        ///< basis dimension
  std::size_t inputs_ = 0;   ///< total floorplan blocks
  std::size_t dropped_ = 0;
  std::vector<double> basis_;  ///< column-major nodes × m
  std::vector<double> h_lu_;   ///< m × m row-major LU factors of Vᵀ A V
  std::vector<int> pivot_;     ///< LU row permutation
  /// Vᵀ m_b per [layer][block], m entries each.
  std::vector<std::vector<std::vector<double>>> input_proj_;
  std::vector<double> ref_proj_;  ///< Vᵀ ref_coef
  double gain_c_per_w_ = 0.0;
  double certified_error_c_ = 0.0;
};

}  // namespace liquid3d
