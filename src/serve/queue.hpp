// queue.hpp — the asynchronous session-query queue behind ThermalService.
//
// Full-fidelity queries (what-if, replay) are submitted as SessionJobs and
// answered through futures.  A worker drains the queue in arrival order,
// but before running it holds the head job open for a short batch window so
// queries against the same topology can pile up and go through one
// BatchRunner lockstep run — the shared-factorization path that gives the
// batched-throughput win.  Grouping is by a caller-supplied key
// (ThermalService keys on the stack/grid topology, mirroring what
// BatchRunner's own compatibility grouping checks).
//
// BatchRunner results are bit-identical to serial runs (a locked contract
// covered by its tests), so batched answers need no accuracy caveat.  If a
// batch throws, every job in it is retried solo so one poisoned
// configuration cannot take down its groupmates' answers.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"
#include "serve/query.hpp"

namespace liquid3d {

/// One queued full-fidelity run.
struct SessionJob {
  SimulationConfig cfg;
  /// Jobs with equal keys are eligible for the same lockstep batch.
  std::uint64_t group_key = 0;
  /// Trace sampling period [s]; 0 = no trace.
  double trace_period_s = 0.0;
  std::promise<SessionOutcome> promise;
};

struct QueueParams {
  std::size_t workers = 1;
  /// How long the head job waits for same-key arrivals [ms].
  double batch_window_ms = 2.0;
  std::size_t max_batch = 16;
};

class QueryQueue {
 public:
  using Params = QueueParams;

  explicit QueryQueue(Params params = {});
  ~QueryQueue();

  QueryQueue(const QueryQueue&) = delete;
  QueryQueue& operator=(const QueryQueue&) = delete;

  /// Enqueue a job; the returned future resolves when its batch completes
  /// (or with the exception its run produced).
  [[nodiscard]] std::future<SessionOutcome> submit(SessionJob job);

  /// Block until every submitted job has been answered.
  void wait_idle();

  /// Drain remaining jobs, then join the workers.  Idempotent; the
  /// destructor calls it.
  void stop();

  [[nodiscard]] std::size_t pending() const;
  [[nodiscard]] std::size_t batches() const { return batches_.value(); }
  [[nodiscard]] std::size_t batched_sessions() const {
    return batched_sessions_.value();
  }
  [[nodiscard]] std::size_t max_batch_seen() const {
    return max_batch_seen_.lifetime();
  }
  [[nodiscard]] std::size_t solo_fallbacks() const {
    return solo_fallbacks_.value();
  }

 private:
  void worker_loop();
  void run_batch(std::vector<SessionJob>& jobs);
  static void run_solo(SessionJob& job);

  Params params_;
  mutable std::mutex mu_;
  std::condition_variable cv_;       ///< queue state changed
  std::condition_variable idle_cv_;  ///< a batch finished
  std::deque<SessionJob> pending_;
  std::size_t active_ = 0;
  bool stopping_ = false;
  std::vector<std::thread> workers_;

  // Per-instance obs counters: lock-free reads (the accessors above used
  // to take mu_ just to read a size_t).
  obs::Counter batches_;
  obs::Counter batched_sessions_;
  obs::MaxTracker max_batch_seen_;
  obs::Counter solo_fallbacks_;
};

}  // namespace liquid3d
