#include "forecast/adaptive_predictor.hpp"

namespace liquid3d {

AdaptivePredictor::AdaptivePredictor(AdaptivePredictorConfig cfg)
    : cfg_(cfg), predictor_(cfg.arma, cfg.window_capacity), sprt_(cfg.sprt) {}

void AdaptivePredictor::observe(double value) {
  if (!have_smoothed_) {
    smoothed_ = value;
    have_smoothed_ = true;
  } else {
    const double a = cfg_.input_smoothing;
    smoothed_ = a * value + (1.0 - a) * smoothed_;
  }
  predictor_.observe(smoothed_);

  // A finite-window ARMA fit underestimates the innovation scale (in-sample
  // residuals of an overfit model); inflating the SPRT's noise estimate
  // keeps spurious reconstructions rare while leaving trend-break detection
  // (many sigmas) essentially instant.
  constexpr double kNoiseSafetyFactor = 1.5;

  if (!predictor_.ready()) {
    // Initial fit once a comfortable window is available (fitting at the
    // bare minimum overfits; see initial_fit_window_factor).
    const auto want = static_cast<std::size_t>(
        cfg_.initial_fit_window_factor *
        static_cast<double>(predictor_.min_fit_window()));
    if (predictor_.observation_count() >= want && predictor_.fit()) {
      sprt_.set_noise_std(kNoiseSafetyFactor * predictor_.residual_std());
      sprt_warmup_left_ = cfg_.sprt_warmup_samples;
    }
    return;
  }

  if (rebuild_pending_) {
    if (rebuild_countdown_ > 0) {
      --rebuild_countdown_;
    }
    if (rebuild_countdown_ == 0) {
      // The replacement model is ready: fit it on the samples collected
      // *since the alarm* so the detected trend break cannot contaminate
      // the new model, then swap it in.
      predictor_.fit(rebuild_window_);
      sprt_.set_noise_std(kNoiseSafetyFactor * predictor_.residual_std());
      sprt_.reset();
      sprt_warmup_left_ = cfg_.sprt_warmup_samples;
      rebuild_pending_ = false;
      ++rebuilds_;
    }
    return;  // keep serving the old model while rebuilding
  }

  if (sprt_warmup_left_ > 0) {
    --sprt_warmup_left_;
    return;
  }
  if (sprt_.observe(predictor_.last_innovation())) {
    rebuild_pending_ = true;
    // Wait at least until a full minimum fitting window of post-break data
    // exists; fitting earlier would mix the two regimes.
    rebuild_window_ = std::max(cfg_.rebuild_delay_samples, predictor_.min_fit_window());
    rebuild_countdown_ = rebuild_window_;
  }
}

double AdaptivePredictor::forecast() const { return forecast(cfg_.horizon); }

double AdaptivePredictor::forecast(std::size_t horizon) const {
  return predictor_.forecast(horizon);
}

}  // namespace liquid3d
