// adaptive_predictor.hpp — the paper's monitoring + forecasting pipeline.
//
// Combines the ARMA predictor with the SPRT health monitor (Sec. IV,
// "Temperature Monitoring and Forecasting"): the maximum system temperature
// is observed every sampling interval; the SPRT watches the one-step
// prediction residuals; when it alarms (the workload trend changed, e.g. the
// day/night pattern of a server), the ARMA model is reconstructed from the
// recent window.  Reconstruction takes a configurable number of samples,
// during which the existing model keeps serving forecasts — exactly the
// behaviour the paper describes.
#pragma once

#include <cstddef>

#include "forecast/arma.hpp"
#include "forecast/sprt.hpp"

namespace liquid3d {

struct AdaptivePredictorConfig {
  ArmaConfig arma{};
  SprtParams sprt{};
  std::size_t window_capacity = 128;
  /// Samples between an SPRT alarm and the refit becoming active — models
  /// the cost of reconstructing the predictor online.
  std::size_t rebuild_delay_samples = 5;
  /// Multiple of the minimum ARMA window to collect before the *initial*
  /// fit: fitting at the bare minimum overfits and hands the SPRT a badly
  /// underestimated noise scale.
  double initial_fit_window_factor = 2.0;
  /// Samples after any (re)fit during which SPRT updates are skipped while
  /// the innovation sequence settles onto the new model.
  std::size_t sprt_warmup_samples = 5;
  /// Forecast horizon in samples (paper: 5 x 100 ms = 500 ms).
  std::size_t horizon = 5;
  /// EWMA coefficient applied to the raw sensor signal before modeling
  /// (1 = no filtering).  Thermal sensors are noisy and the max-over-cores
  /// signal jumps when the hottest core changes; light filtering keeps the
  /// ARMA fit on the thermal trend instead of the sampling noise.
  double input_smoothing = 0.45;
};

class AdaptivePredictor {
 public:
  explicit AdaptivePredictor(AdaptivePredictorConfig cfg = {});

  /// Push one observation of the monitored signal (max temperature).
  void observe(double value);

  /// Forecast `horizon` samples ahead; falls back to the latest observation
  /// until the first fit completes.
  [[nodiscard]] double forecast() const;
  [[nodiscard]] double forecast(std::size_t horizon) const;

  [[nodiscard]] bool ready() const { return predictor_.ready(); }
  [[nodiscard]] std::size_t rebuild_count() const { return rebuilds_; }
  [[nodiscard]] std::size_t sprt_alarm_count() const { return sprt_.alarm_count(); }
  [[nodiscard]] double last_innovation() const { return predictor_.last_innovation(); }
  [[nodiscard]] const AdaptivePredictorConfig& config() const { return cfg_; }

 private:
  AdaptivePredictorConfig cfg_;
  ArmaPredictor predictor_;
  SprtDetector sprt_;
  double smoothed_ = 0.0;
  bool have_smoothed_ = false;
  bool rebuild_pending_ = false;
  std::size_t rebuild_countdown_ = 0;
  std::size_t rebuild_window_ = 0;
  std::size_t rebuilds_ = 0;
  std::size_t sprt_warmup_left_ = 0;
};

}  // namespace liquid3d
