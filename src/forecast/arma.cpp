#include "forecast/arma.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "common/linalg.hpp"

namespace liquid3d {

namespace {

/// Robust innovation scale: 1.4826 * median(|residuals|).  A fitting window
/// that straddles a level shift produces a block of large residuals; the
/// RMS estimate would absorb them and blind the downstream SPRT, while the
/// median-based scale stays anchored to the quiet majority.
double robust_residual_std(std::vector<double> abs_residuals) {
  if (abs_residuals.empty()) return 0.0;
  const std::size_t mid = abs_residuals.size() / 2;
  std::nth_element(abs_residuals.begin(),
                   abs_residuals.begin() + static_cast<std::ptrdiff_t>(mid),
                   abs_residuals.end());
  return 1.4826 * abs_residuals[mid];
}

/// Least-squares AR(L) fit on demeaned data; returns coefficients and fills
/// residuals (aligned with series indices >= L).
std::vector<double> fit_long_ar(const std::vector<double>& x, std::size_t order,
                                std::vector<double>& residuals) {
  const std::size_t n = x.size();
  const std::size_t rows = n - order;
  Matrix a(rows, order);
  std::vector<double> b(rows);
  for (std::size_t t = 0; t < rows; ++t) {
    b[t] = x[t + order];
    for (std::size_t i = 0; i < order; ++i) {
      a(t, i) = x[t + order - 1 - i];
    }
  }
  std::vector<double> coeff = solve_least_squares(a, b);
  residuals.assign(n, 0.0);
  for (std::size_t t = order; t < n; ++t) {
    double pred = 0.0;
    for (std::size_t i = 0; i < order; ++i) pred += coeff[i] * x[t - 1 - i];
    residuals[t] = x[t] - pred;
  }
  return coeff;
}

}  // namespace

ArmaModel ArmaModel::fit(const std::vector<double>& series, ArmaConfig cfg) {
  const std::size_t p = cfg.ar_order;
  const std::size_t q = cfg.ma_order;
  LIQUID3D_REQUIRE(p > 0, "ARMA requires at least one AR lag");
  const std::size_t min_n = 4 * (p + q) + 8;
  LIQUID3D_REQUIRE(series.size() >= min_n, "series too short for ARMA fit");

  ArmaModel m;
  double mu = 0.0;
  for (double v : series) mu += v;
  mu /= static_cast<double>(series.size());
  m.mu_ = mu;

  std::vector<double> x(series.size());
  for (std::size_t i = 0; i < series.size(); ++i) x[i] = series[i] - mu;

  // Constant series (e.g. thermally saturated): the best model is "predict
  // the mean", which zero coefficients deliver.
  double max_dev = 0.0;
  for (double v : x) max_dev = std::max(max_dev, std::abs(v));
  if (max_dev < 1e-9) {
    m.phi_.assign(p, 0.0);
    m.theta_.assign(q, 0.0);
    m.residual_std_ = 0.0;
    return m;
  }

  // Stage 1: long AR to estimate the innovation sequence.
  std::size_t long_order = cfg.long_ar_order;
  if (long_order == 0) {
    long_order = std::min<std::size_t>(std::max<std::size_t>(2 * (p + q), 8),
                                       series.size() / 4);
  }
  std::vector<double> innovations;
  fit_long_ar(x, long_order, innovations);

  if (q == 0) {
    // Pure AR: one least-squares stage suffices.
    std::vector<double> resid;
    std::vector<double> coeff = fit_long_ar(x, p, resid);
    m.phi_ = std::move(coeff);
    m.theta_.clear();
    std::vector<double> abs_resid;
    abs_resid.reserve(x.size() - p);
    for (std::size_t t = p; t < x.size(); ++t) abs_resid.push_back(std::abs(resid[t]));
    m.residual_std_ = robust_residual_std(std::move(abs_resid));
    return m;
  }

  // Stage 2: regress x_t on p own lags and q innovation lags.
  const std::size_t start = std::max(p, std::max(q, long_order));
  const std::size_t rows = x.size() - start;
  Matrix a(rows, p + q);
  std::vector<double> b(rows);
  for (std::size_t t = 0; t < rows; ++t) {
    const std::size_t idx = t + start;
    b[t] = x[idx];
    for (std::size_t i = 0; i < p; ++i) a(t, i) = x[idx - 1 - i];
    for (std::size_t j = 0; j < q; ++j) a(t, p + j) = innovations[idx - 1 - j];
  }
  std::vector<double> coeff = solve_least_squares(a, b);
  m.phi_.assign(coeff.begin(), coeff.begin() + static_cast<std::ptrdiff_t>(p));
  m.theta_.assign(coeff.begin() + static_cast<std::ptrdiff_t>(p), coeff.end());

  std::vector<double> abs_resid;
  abs_resid.reserve(rows);
  for (std::size_t t = 0; t < rows; ++t) {
    double pred = 0.0;
    const std::size_t idx = t + start;
    for (std::size_t i = 0; i < p; ++i) pred += m.phi_[i] * x[idx - 1 - i];
    for (std::size_t j = 0; j < q; ++j) pred += m.theta_[j] * innovations[idx - 1 - j];
    abs_resid.push_back(std::abs(x[idx] - pred));
  }
  m.residual_std_ = robust_residual_std(std::move(abs_resid));
  return m;
}

double ArmaModel::predict_one(const std::vector<double>& recent_values,
                              const std::vector<double>& recent_innovations) const {
  double pred = 0.0;
  for (std::size_t i = 0; i < phi_.size(); ++i) {
    const double v = i < recent_values.size()
                         ? recent_values[recent_values.size() - 1 - i] - mu_
                         : 0.0;
    pred += phi_[i] * v;
  }
  for (std::size_t j = 0; j < theta_.size(); ++j) {
    const double e = j < recent_innovations.size()
                         ? recent_innovations[recent_innovations.size() - 1 - j]
                         : 0.0;
    pred += theta_[j] * e;
  }
  return mu_ + pred;
}

double ArmaModel::forecast(const std::vector<double>& recent_values,
                           const std::vector<double>& recent_innovations,
                           std::size_t horizon) const {
  LIQUID3D_REQUIRE(horizon >= 1, "forecast horizon must be >= 1");
  std::vector<double> values = recent_values;
  std::vector<double> innov = recent_innovations;
  double pred = 0.0;
  for (std::size_t h = 0; h < horizon; ++h) {
    pred = predict_one(values, innov);
    values.push_back(pred);
    innov.push_back(0.0);  // future innovations have zero expectation
  }
  return pred;
}

ArmaPredictor::ArmaPredictor(ArmaConfig cfg, std::size_t window_capacity)
    : cfg_(cfg),
      window_(window_capacity),
      innovations_(std::max<std::size_t>(cfg.ma_order + 1, 4)) {
  LIQUID3D_REQUIRE(window_capacity >= min_fit_window(),
                   "predictor window smaller than the minimum fit size");
}

std::size_t ArmaPredictor::min_fit_window() const {
  return 4 * (cfg_.ar_order + cfg_.ma_order) + 8;
}

void ArmaPredictor::observe(double value) {
  if (have_prediction_) {
    last_innovation_ = value - last_prediction_;
  } else {
    last_innovation_ = 0.0;
  }
  innovations_.push(last_innovation_);
  window_.push(value);
  ++observations_;
  if (fitted_) {
    last_prediction_ = model_.predict_one(window_.to_vector(), innovations_.to_vector());
    have_prediction_ = true;
  }
}

bool ArmaPredictor::fit(std::size_t recent_n) {
  std::vector<double> series = window_.to_vector();
  if (recent_n > 0 && recent_n < series.size()) {
    series.erase(series.begin(),
                 series.end() - static_cast<std::ptrdiff_t>(recent_n));
  }
  if (series.size() < min_fit_window()) return false;
  model_ = ArmaModel::fit(series, cfg_);
  fitted_ = true;
  last_prediction_ = model_.predict_one(window_.to_vector(), innovations_.to_vector());
  have_prediction_ = true;
  return true;
}

double ArmaPredictor::forecast(std::size_t horizon) const {
  if (!fitted_ || window_.empty()) {
    return window_.empty() ? 0.0 : window_.back();
  }
  return model_.forecast(window_.to_vector(), innovations_.to_vector(), horizon);
}

double ArmaPredictor::residual_std() const {
  return fitted_ ? model_.residual_std() : 0.0;
}

}  // namespace liquid3d
