// arma.hpp — autoregressive moving average modeling and forecasting.
//
// The controller (Sec. IV) forecasts the maximum system temperature 500 ms
// ahead on a 100 ms sampling grid using an ARMA model fitted online to the
// recent T_max history — no offline analysis is required.  We implement
// ARMA(p, q) estimation with the Hannan–Rissanen two-stage procedure:
//   1. fit a long autoregression by least squares and extract residuals,
//   2. regress the series on its own lags and the lagged residuals.
// Forecasts run the difference equation forward with future innovations set
// to zero.  Fitting happens on the deviation from the window mean, which
// handles the slowly drifting operating point.
#pragma once

#include <cstddef>
#include <vector>

#include "common/ring_buffer.hpp"

namespace liquid3d {

struct ArmaConfig {
  std::size_t ar_order = 5;  ///< p
  std::size_t ma_order = 2;  ///< q
  /// Long-AR order for the Hannan–Rissanen first stage (0 = auto).
  std::size_t long_ar_order = 0;
};

/// A fitted ARMA(p, q) model:  (y_t - mu) = sum phi_i (y_{t-i} - mu)
///                                        + sum theta_j e_{t-j} + e_t.
class ArmaModel {
 public:
  /// Fit to a series (oldest first).  Requires
  /// series.size() >= 4 * (p + q) + 8; throws ConfigError otherwise.
  [[nodiscard]] static ArmaModel fit(const std::vector<double>& series, ArmaConfig cfg);

  [[nodiscard]] const std::vector<double>& ar() const { return phi_; }
  [[nodiscard]] const std::vector<double>& ma() const { return theta_; }
  [[nodiscard]] double mean() const { return mu_; }
  /// Standard deviation of the in-sample innovations.
  [[nodiscard]] double residual_std() const { return residual_std_; }

  /// One-step-ahead prediction given the most recent p observations
  /// (history.back() is the newest) and the most recent q innovations.
  [[nodiscard]] double predict_one(const std::vector<double>& recent_values,
                                   const std::vector<double>& recent_innovations) const;

  /// h-step-ahead forecast (h >= 1), future innovations zero.
  [[nodiscard]] double forecast(const std::vector<double>& recent_values,
                                const std::vector<double>& recent_innovations,
                                std::size_t horizon) const;

  [[nodiscard]] std::size_t ar_order() const { return phi_.size(); }
  [[nodiscard]] std::size_t ma_order() const { return theta_.size(); }

  /// Default-constructed model predicts the running value (all-zero
  /// coefficients); replaced by fit() before use in the predictor.
  ArmaModel() = default;

 private:
  std::vector<double> phi_;
  std::vector<double> theta_;
  double mu_ = 0.0;
  double residual_std_ = 0.0;
};

/// Stateful online predictor: maintains the observation window and the
/// innovation history, and refits on demand.
class ArmaPredictor {
 public:
  ArmaPredictor(ArmaConfig cfg, std::size_t window_capacity = 128);

  /// Push a new observation; updates the innovation history using the
  /// previous one-step prediction when a model is fitted.
  void observe(double value);

  /// Fit (or refit) the model from the current window.  Returns false when
  /// the window is still too short.  When recent_n > 0, only the newest
  /// recent_n observations are used — the rebuild path fits on post-break
  /// data only, so a detected trend change cannot contaminate the new model.
  bool fit(std::size_t recent_n = 0);

  [[nodiscard]] bool ready() const { return fitted_; }

  /// Forecast `horizon` steps ahead (e.g. 5 for 500 ms at 100 ms sampling).
  /// Falls back to the latest observation if no model is fitted yet.
  [[nodiscard]] double forecast(std::size_t horizon) const;

  /// One-step-ahead prediction error of the latest observation
  /// (observation minus prediction); 0 until the model is ready.
  [[nodiscard]] double last_innovation() const { return last_innovation_; }

  [[nodiscard]] double residual_std() const;
  [[nodiscard]] std::size_t observation_count() const { return observations_; }
  [[nodiscard]] const ArmaConfig& config() const { return cfg_; }

  /// Smallest window that allows fitting.
  [[nodiscard]] std::size_t min_fit_window() const;

 private:
  ArmaConfig cfg_;
  RingBuffer<double> window_;
  RingBuffer<double> innovations_;
  ArmaModel model_;
  bool fitted_ = false;
  double last_prediction_ = 0.0;
  bool have_prediction_ = false;
  double last_innovation_ = 0.0;
  std::size_t observations_ = 0;
};

}  // namespace liquid3d
