// sprt.hpp — sequential probability ratio test on forecast residuals.
//
// The paper (Sec. IV) monitors predictor health with the SPRT of Gross &
// Humenik: a logarithmic likelihood ratio test deciding whether the error
// between the predicted and measured series is diverging from zero.  We run
// the standard two-sided Gaussian mean test — H0: residual mean 0 versus H1:
// mean shifted by ±m (m expressed in units of the innovation standard
// deviation).  Crossing the upper threshold raises an alarm (the ARMA model
// no longer fits and must be reconstructed); crossing the lower threshold
// accepts H0 and restarts the test.
#pragma once

#include <cstddef>

namespace liquid3d {

struct SprtParams {
  double false_alarm_prob = 0.005;   ///< alpha
  double missed_alarm_prob = 0.005;  ///< beta
  /// Disturbance magnitude under H1, in innovation standard deviations.
  /// The rebuild path targets *trend breaks* (day/night-scale level shifts,
  /// many sigmas), so the design magnitude is set high enough that ordinary
  /// workload noise does not trigger spurious reconstructions.
  double magnitude_sigmas = 4.0;
  /// Floor on the noise std so a perfectly fitting model (sigma ~ 0) does
  /// not turn numerical dust into alarms [same unit as the residuals, K].
  double min_noise_std = 0.05;
};

class SprtDetector {
 public:
  explicit SprtDetector(SprtParams params = {});

  /// Set the innovation standard deviation (from the ARMA fit).
  void set_noise_std(double sigma);

  /// Feed one residual; returns true when the test alarms (either side).
  /// The test state resets after any decision.
  bool observe(double residual);

  void reset();

  [[nodiscard]] double upper_threshold() const { return upper_; }
  [[nodiscard]] double lower_threshold() const { return lower_; }
  [[nodiscard]] double llr_positive() const { return llr_pos_; }
  [[nodiscard]] double llr_negative() const { return llr_neg_; }
  [[nodiscard]] std::size_t alarm_count() const { return alarms_; }
  [[nodiscard]] const SprtParams& params() const { return params_; }

 private:
  SprtParams params_;
  double sigma_;
  double upper_;
  double lower_;
  double llr_pos_ = 0.0;
  double llr_neg_ = 0.0;
  std::size_t alarms_ = 0;
};

}  // namespace liquid3d
