#include "forecast/sprt.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace liquid3d {

SprtDetector::SprtDetector(SprtParams params) : params_(params) {
  LIQUID3D_REQUIRE(params_.false_alarm_prob > 0.0 && params_.false_alarm_prob < 1.0,
                   "alpha must be in (0,1)");
  LIQUID3D_REQUIRE(params_.missed_alarm_prob > 0.0 && params_.missed_alarm_prob < 1.0,
                   "beta must be in (0,1)");
  LIQUID3D_REQUIRE(params_.magnitude_sigmas > 0.0, "H1 magnitude must be positive");
  // Wald's thresholds.
  upper_ = std::log((1.0 - params_.missed_alarm_prob) / params_.false_alarm_prob);
  lower_ = std::log(params_.missed_alarm_prob / (1.0 - params_.false_alarm_prob));
  sigma_ = params_.min_noise_std;
}

void SprtDetector::set_noise_std(double sigma) {
  sigma_ = std::max(sigma, params_.min_noise_std);
}

bool SprtDetector::observe(double residual) {
  // Gaussian mean test increment: (m / sigma^2) * (x - m / 2) for shift +m.
  const double m = params_.magnitude_sigmas * sigma_;
  const double inc_pos = m / (sigma_ * sigma_) * (residual - m / 2.0);
  const double inc_neg = m / (sigma_ * sigma_) * (-residual - m / 2.0);

  llr_pos_ = std::max(lower_, llr_pos_ + inc_pos);
  llr_neg_ = std::max(lower_, llr_neg_ + inc_neg);

  // Accepting H0 restarts that side of the test.
  if (llr_pos_ <= lower_) llr_pos_ = 0.0;
  if (llr_neg_ <= lower_) llr_neg_ = 0.0;

  if (llr_pos_ >= upper_ || llr_neg_ >= upper_) {
    ++alarms_;
    llr_pos_ = 0.0;
    llr_neg_ = 0.0;
    return true;
  }
  return false;
}

void SprtDetector::reset() {
  llr_pos_ = 0.0;
  llr_neg_ = 0.0;
}

}  // namespace liquid3d
