#include "coolant/valve_network.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace liquid3d {

ValveNetwork::ValveNetwork(FlowDelivery delivery, ValveNetworkParams params)
    : delivery_(std::move(delivery)), params_(params) {
  LIQUID3D_REQUIRE(params_.min_opening > 0.0 && params_.min_opening <= 1.0,
                   "min_opening must be in (0, 1]");
  LIQUID3D_REQUIRE(params_.deadband >= 0.0, "deadband must be non-negative");
  LIQUID3D_REQUIRE(delivery_.cavity_count() > 0, "valve network requires cavities");
}

VolumetricFlow ValveNetwork::total_delivered(std::size_t setting) const {
  return delivery_.per_cavity(setting) * static_cast<double>(cavity_count());
}

double ValveNetwork::clamp_opening(double opening) const {
  return std::clamp(opening, params_.min_opening, 1.0);
}

std::vector<VolumetricFlow> ValveNetwork::flows(
    std::size_t setting, const std::vector<double>& openings) const {
  std::vector<VolumetricFlow> result;
  flows_into(setting, openings, result);
  return result;
}

void ValveNetwork::flows_into(std::size_t setting,
                              const std::vector<double>& openings,
                              std::vector<VolumetricFlow>& out) const {
  LIQUID3D_REQUIRE(openings.size() == cavity_count(),
                   "opening vector arity must equal the cavity count");
  const VolumetricFlow total = total_delivered(setting);
  double sum = 0.0;
  for (double o : openings) {
    LIQUID3D_REQUIRE(std::isfinite(o), "opening must be finite");
    sum += clamp_opening(o);
  }
  out.resize(openings.size());
  for (std::size_t k = 0; k < openings.size(); ++k) {
    out[k] = total * (clamp_opening(openings[k]) / sum);
  }
}

std::vector<VolumetricFlow> ValveNetwork::uniform_flows(std::size_t setting) const {
  return std::vector<VolumetricFlow>(cavity_count(), delivery_.per_cavity(setting));
}

ValveNetworkActuator::ValveNetworkActuator(ValveNetwork network)
    : network_(std::move(network)),
      effective_(network_.cavity_count(), 1.0),
      target_(network_.cavity_count(), 1.0) {}

bool ValveNetworkActuator::within_deadband(const std::vector<double>& a,
                                           const std::vector<double>& b) const {
  for (std::size_t k = 0; k < a.size(); ++k) {
    if (std::abs(a[k] - b[k]) > network_.params().deadband) return false;
  }
  return true;
}

void ValveNetworkActuator::command(const std::vector<double>& openings, SimTime now) {
  LIQUID3D_REQUIRE(openings.size() == network_.cavity_count(),
                   "opening vector arity must equal the cavity count");
  // Per-tick path: clamp into persistent scratch (no allocation after the
  // first command; swaps/copies below stay within existing capacity).
  clamp_scratch_.resize(openings.size());
  for (std::size_t k = 0; k < openings.size(); ++k) {
    clamp_scratch_[k] = network_.clamp_opening(openings[k]);
  }
  if (within_deadband(clamp_scratch_, target_)) return;
  if (within_deadband(clamp_scratch_, effective_)) {
    // Canceling a pending transition back to where the valves already are:
    // no motion, no latency, no transition counted (PumpActuator semantics).
    target_ = effective_;
    return;
  }
  // Dwell gate: a real retarget is accepted at most once per min_dwell.
  if (transitions_ > 0 && now < dwell_until_) return;
  target_.swap(clamp_scratch_);
  transition_due_ = now + network_.params().actuation_latency;
  dwell_until_ = now + network_.params().min_dwell;
  ++transitions_;
}

void ValveNetworkActuator::tick(SimTime now) {
  if (effective_ != target_ && now >= transition_due_) {
    effective_ = target_;
  }
}

}  // namespace liquid3d
