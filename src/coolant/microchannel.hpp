// microchannel.hpp — per-channel hydraulics and the paper's convective model.
//
// Implements the three components of the junction temperature rise of Sec.
// III-A (Eq. 1-7):
//   ΔT_cond : conduction through the BEOL wiring stack (flow-independent),
//   ΔT_heat : sensible heating of the coolant along the channel,
//   ΔT_conv : convective film drop (flow-independent once boundary layers
//             are developed; the paper uses the constant h of Table I).
// Also provides engineering quantities (hydraulic diameter, Reynolds number,
// laminar pressure drop) used for sanity checks against the datasheet's
// 300-600 mbar operating range.
#pragma once

#include "common/units.hpp"
#include "coolant/properties.hpp"
#include "geom/stack.hpp"

namespace liquid3d {

/// Constants of Table I that are not geometry.
struct MicrochannelModelParams {
  double beol_thickness = 12e-6;       ///< t_B [m]
  double beol_conductivity = 2.25;     ///< k_BEOL [W/(m K)]
  double heat_transfer_coeff = 37132;  ///< h [W/(m^2 K)], FE-verified (Table I)

  /// R_th-BEOL per unit area = t_B / k_BEOL  (Eq. 3).
  /// Table I quotes 5.333 (K mm^2)/W; this returns SI (K m^2)/W.
  [[nodiscard]] double r_beol_area() const { return beol_thickness / beol_conductivity; }
};

/// Hydraulic and convective model for one cavity's channels.
class MicrochannelModel {
 public:
  MicrochannelModel(CavitySpec cavity, CoolantProperties coolant,
                    MicrochannelModelParams params = {});

  [[nodiscard]] const CavitySpec& cavity() const { return cavity_; }
  [[nodiscard]] const CoolantProperties& coolant() const { return coolant_; }
  [[nodiscard]] const MicrochannelModelParams& params() const { return params_; }

  // -- Convective model (Eq. 6-7) --------------------------------------------

  /// Effective heat transfer coefficient over the channel-pitch footprint:
  /// h_eff = h * 2 (w_c + t_c) / p  (Eq. 7); the fin-area enhancement folded
  /// into a flat-plate coefficient.  [W/(m^2 K)]
  [[nodiscard]] double h_eff() const;

  /// ΔT_conv for a given heat flux sum (q1 + q2) [W/m^2]  (Eq. 6).
  [[nodiscard]] double delta_t_conv(double heat_flux_sum) const;

  /// ΔT_cond for heat flux q1 [W/m^2] through the BEOL  (Eq. 2).
  [[nodiscard]] double delta_t_cond(double heat_flux) const;

  /// Effective sensible-heat resistance R_th-heat = A_heater / (c_p rho V̇)
  /// (Eq. 5) for heater area [m^2] and per-cavity flow.  [K/W per W/m^2 — the
  /// paper's form; multiply by heat flux sum to get ΔT_heat (Eq. 4)].
  [[nodiscard]] double r_th_heat(double heater_area, VolumetricFlow cavity_flow) const;

  // -- Hydraulics -------------------------------------------------------------

  /// Hydraulic diameter D_h = 4 A / P of one rectangular channel [m].
  [[nodiscard]] double hydraulic_diameter() const;

  /// Mean velocity in one channel for a per-cavity flow [m/s].
  [[nodiscard]] double channel_velocity(VolumetricFlow cavity_flow) const;

  /// Reynolds number for a per-cavity flow (laminar regime expected).
  [[nodiscard]] double reynolds(VolumetricFlow cavity_flow) const;

  /// Laminar pressure drop across a channel of given length [Pa], using the
  /// f*Re correlation for rectangular ducts (aspect-ratio dependent).
  [[nodiscard]] double pressure_drop(VolumetricFlow cavity_flow, double channel_length) const;

  /// Coolant transit time through a channel of given length [s]; used to
  /// justify the quasi-static fluid treatment (transit << thermal sampling).
  [[nodiscard]] double transit_time(VolumetricFlow cavity_flow, double channel_length) const;

  /// Flow through a single channel, assuming uniform division (Sec. III-B).
  [[nodiscard]] VolumetricFlow per_channel_flow(VolumetricFlow cavity_flow) const;

 private:
  CavitySpec cavity_;
  CoolantProperties coolant_;
  MicrochannelModelParams params_;
};

}  // namespace liquid3d
