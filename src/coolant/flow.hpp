// flow.hpp — mapping pump settings to the flow actually delivered per cavity.
//
// Two delivery models are provided:
//
//  * kPaperNominal — the paper's accounting (Sec. III-B): the datasheet flow
//    reduced by a global 50 % loss factor and divided equally over cavities.
//    This reproduces Fig. 3's printed values exactly and is what
//    bench_fig3_pump reports.
//
//  * kPressureLimited — the physically self-consistent interpretation used by
//    the thermal simulation: the flow a 50 µm x 100 µm laminar microchannel
//    actually passes under the pump's head (the paper quotes 300-600 mbar
//    across the settings; with pump affinity laws the head scales with the
//    square of impeller speed, giving ~150-600 mbar over the five settings).
//    The nominal datasheet flows are not sustainable through these channels —
//    at the quoted heads a channel passes ~0.1-0.6 ml/min, not the ~3-16
//    ml/min equal division would suggest.  Using the pressure-limited flow
//    puts the coolant sensible-heat rise (the only flow-dependent term in
//    Eq. 1) in the regime where Fig. 5's 70-90 °C control range exists.
//    DESIGN.md discusses this substitution.
#pragma once

#include <cstddef>
#include <vector>

#include "common/units.hpp"
#include "coolant/microchannel.hpp"
#include "coolant/pump.hpp"

namespace liquid3d {

enum class FlowDeliveryMode { kPaperNominal, kPressureLimited };

[[nodiscard]] const char* to_string(FlowDeliveryMode m);

class FlowDelivery {
 public:
  /// channel_length: flow path length through a cavity [m] (the die width).
  FlowDelivery(const PumpModel& pump, FlowDeliveryMode mode,
               const MicrochannelModel& channels, double channel_length,
               std::size_t cavity_count);

  [[nodiscard]] VolumetricFlow per_cavity(std::size_t setting) const {
    return per_cavity_.at(setting);
  }
  [[nodiscard]] VolumetricFlow per_channel(std::size_t setting) const;

  [[nodiscard]] std::size_t setting_count() const { return per_cavity_.size(); }
  [[nodiscard]] FlowDeliveryMode mode() const { return mode_; }
  [[nodiscard]] std::size_t cavity_count() const { return cavity_count_; }

  /// Pump head at a setting [Pa]: linear from kMinHeadPa at the lowest
  /// setting to kMaxHeadPa at the highest (paper: "pressure drop for these
  /// flow rates changes between 300-600 mbar"; affinity-law extrapolation
  /// widens the low end).
  [[nodiscard]] static double head_pa(std::size_t setting, std::size_t setting_count);

  static constexpr double kMinHeadPa = 15000.0;  // 150 mbar
  static constexpr double kMaxHeadPa = 60000.0;  // 600 mbar

 private:
  FlowDeliveryMode mode_;
  std::size_t cavity_count_;
  std::size_t channel_count_;
  std::vector<VolumetricFlow> per_cavity_;
};

}  // namespace liquid3d
