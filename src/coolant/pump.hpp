// pump.hpp — the shared coolant pump (Sec. III-B) and its runtime actuator.
//
// The paper assumes a Laing DDC 12 V DC pump with five discrete flow-rate
// settings between 75 and 375 l/h.  Pump power grows quadratically with flow
// (Fig. 3, right axis: ~3 W at the lowest setting, 21 W at the highest).
// Only 50 % of the nominal flow is delivered to the cavities (pump
// inefficiency + microchannel pressure drop), and the delivered flow divides
// equally among cavities and among each cavity's channels.  A setting change
// takes 250-300 ms to complete, which is what motivates the paper's
// *proactive* (forecast-driven) controller.
#pragma once

#include <cstddef>
#include <vector>

#include "common/units.hpp"

namespace liquid3d {

/// One discrete operating point of the pump.
struct PumpSetting {
  double nominal_flow_l_per_hour = 0.0;  ///< datasheet flow at the pump outlet
  double power_w = 0.0;                  ///< electrical power drawn
};

class PumpModel {
 public:
  PumpModel(std::vector<PumpSetting> settings, double delivery_efficiency,
            SimTime transition_latency);

  /// The paper's pump: settings 75/150/225/300/375 l/h with a quadratic
  /// power curve through (75 l/h, 3 W) and (375 l/h, 21 W), 50 % delivery,
  /// 275 ms transition latency (midpoint of the quoted 250-300 ms).
  [[nodiscard]] static PumpModel laing_ddc();

  [[nodiscard]] std::size_t setting_count() const { return settings_.size(); }
  [[nodiscard]] const PumpSetting& setting(std::size_t i) const { return settings_.at(i); }
  [[nodiscard]] std::size_t max_setting() const { return settings_.size() - 1; }

  [[nodiscard]] double power(std::size_t setting_index) const {
    return setting(setting_index).power_w;
  }

  /// Total flow delivered to the stack after the 50 % loss factor.
  [[nodiscard]] VolumetricFlow delivered_flow(std::size_t setting_index) const;

  /// Flow through one cavity (delivered flow split equally over cavities).
  [[nodiscard]] VolumetricFlow per_cavity_flow(std::size_t setting_index,
                                               std::size_t cavity_count) const;

  [[nodiscard]] double delivery_efficiency() const { return delivery_efficiency_; }
  [[nodiscard]] SimTime transition_latency() const { return transition_latency_; }

 private:
  std::vector<PumpSetting> settings_;
  double delivery_efficiency_;
  SimTime transition_latency_;
};

/// Runtime state of the pump: tracks the commanded setting and models the
/// transition latency.  The *effective* setting (the one that determines
/// cooling and the conservative power draw) lags commands by the latency;
/// during an upward transition we charge the higher of the two powers, which
/// is the conservative choice for an impeller spin-up.
class PumpActuator {
 public:
  PumpActuator(const PumpModel& model, std::size_t initial_setting);

  /// Command a new setting; ignored if equal to the current target.
  /// Commanding the current *effective* setting while a transition is
  /// pending cancels that transition instantly (the impeller never left),
  /// without counting a transition or imposing latency.
  void command(std::size_t setting_index, SimTime now);

  /// Advance time; completes any pending transition whose latency elapsed.
  void tick(SimTime now);

  [[nodiscard]] std::size_t effective_setting() const { return effective_; }
  [[nodiscard]] std::size_t target_setting() const { return target_; }
  [[nodiscard]] bool in_transition() const { return effective_ != target_; }

  /// Instantaneous electrical power [W].
  [[nodiscard]] double power() const;

  /// Delivered per-cavity flow at the effective setting.
  [[nodiscard]] VolumetricFlow per_cavity_flow(std::size_t cavity_count) const;

  /// Number of setting changes commanded so far (oscillation metric).
  [[nodiscard]] std::size_t transition_count() const { return transitions_; }

 private:
  // Held by value: actuators outlive (and move independently of) the model
  // they were built from — storing a pointer dangled when a ThermalManager
  // was constructed from a temporary PumpModel and then moved.
  PumpModel model_;
  std::size_t effective_;
  std::size_t target_;
  SimTime transition_due_{};
  std::size_t transitions_ = 0;
};

}  // namespace liquid3d
