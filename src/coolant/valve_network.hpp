// valve_network.hpp — multi-branch coolant delivery: one shared pump feeding
// N cavities through individually throttled valves.
//
// The paper's delivery model (Sec. III-B) drives every cavity with the same
// flow; real cooling plants route a shared supply through a manifold of
// branch valves so coolant can be steered toward the hottest branch (cf. the
// cryogenics-plant benchmarking literature in PAPERS.md).  The model here:
//
//   * the pump is a (setting-discrete) flow source: the total delivered flow
//     at setting s is exactly `cavity_count x FlowDelivery::per_cavity(s)` —
//     throttling *redistributes* flow between branches, it never changes the
//     total (conservation; the pump head rises until the open branches carry
//     the displaced flow);
//   * each branch valve has an opening in [0, 1] acting as a linear
//     conductance, so branch i carries `total x opening_i / sum(openings)`;
//   * valves are lossy: they never seal below `min_opening` (a closed valve
//     still leaks), which also keeps every cavity's flow strictly positive —
//     a dry microchannel cavity has no bounded steady state;
//   * opening changes take an actuation latency to complete
//     (`ValveNetworkActuator`, same effective/target split as PumpActuator),
//     and commands within `deadband` of the target are ignored so the
//     controller cannot chatter the valves.
#pragma once

#include <cstddef>
#include <vector>

#include "common/units.hpp"
#include "coolant/flow.hpp"

namespace liquid3d {

struct ValveNetworkParams {
  /// Valves are lossy and never seal: the smallest effective opening.  Also
  /// the hydraulic guarantee that every cavity keeps nonzero flow.
  double min_opening = 0.05;
  /// Opening commands take this long to complete (motorized needle valves
  /// are slower than the pump's impeller spin-up).
  SimTime actuation_latency = SimTime::from_ms(150);
  /// Commanded openings within this distance (per valve, absolute) of the
  /// current target are treated as "no change".
  double deadband = 0.04;
  /// Minimum time between accepted retargets.  The steering loop is
  /// self-attenuating (moving flow toward the hot cavity shrinks the very
  /// spread that commanded the move), so an unconstrained controller
  /// retargets nearly every sample; the dwell bounds the transition rate
  /// the way a relay's minimum off-time does.  Cancels (free) are exempt.
  SimTime min_dwell = SimTime::from_ms(500);
};

/// Static hydraulic model of the manifold: pump settings x valve openings
/// -> per-cavity flow vector.
class ValveNetwork {
 public:
  ValveNetwork(FlowDelivery delivery, ValveNetworkParams params = {});

  [[nodiscard]] std::size_t cavity_count() const { return delivery_.cavity_count(); }
  [[nodiscard]] std::size_t setting_count() const { return delivery_.setting_count(); }
  [[nodiscard]] const ValveNetworkParams& params() const { return params_; }
  [[nodiscard]] const FlowDelivery& delivery() const { return delivery_; }

  /// Total flow the pump delivers to the manifold at a setting (what the
  /// uniform model splits equally).
  [[nodiscard]] VolumetricFlow total_delivered(std::size_t setting) const;

  /// Per-cavity flows for a set of valve openings.  Openings are clamped to
  /// [min_opening, 1]; the result always sums to `total_delivered(setting)`.
  [[nodiscard]] std::vector<VolumetricFlow> flows(
      std::size_t setting, const std::vector<double>& openings) const;
  /// Allocation-free variant for per-tick callers: writes into `out`
  /// (resized once, no allocation after first use).
  void flows_into(std::size_t setting, const std::vector<double>& openings,
                  std::vector<VolumetricFlow>& out) const;

  /// All valves fully open: the uniform split (bit-identical to the paper's
  /// per-cavity delivery).
  [[nodiscard]] std::vector<VolumetricFlow> uniform_flows(std::size_t setting) const;

  /// Clamp one commanded opening to the valve's physical range.
  [[nodiscard]] double clamp_opening(double opening) const;

 private:
  FlowDelivery delivery_;
  ValveNetworkParams params_;
};

/// Runtime state of the valve manifold: commanded vs. effective openings,
/// actuation latency, and the transition count (oscillation metric) — the
/// PumpActuator pattern generalized to a vector of actuators that move
/// together.  Commanding the current *effective* openings while a transition
/// is pending cancels it without counting a transition (see
/// PumpActuator::command).
class ValveNetworkActuator {
 public:
  /// Valves start fully open (the uniform-delivery state).
  explicit ValveNetworkActuator(ValveNetwork network);

  /// Command a new opening vector (arity = cavity count); no-op when every
  /// valve is within the deadband of the current target.
  void command(const std::vector<double>& openings, SimTime now);

  /// Advance time; completes a pending transition whose latency elapsed.
  void tick(SimTime now);

  [[nodiscard]] const ValveNetwork& network() const { return network_; }
  [[nodiscard]] const std::vector<double>& effective_openings() const {
    return effective_;
  }
  [[nodiscard]] const std::vector<double>& target_openings() const { return target_; }
  [[nodiscard]] bool in_transition() const { return effective_ != target_; }
  [[nodiscard]] std::size_t transition_count() const { return transitions_; }

  /// Per-cavity flows at the *effective* openings for a pump setting.
  [[nodiscard]] std::vector<VolumetricFlow> effective_flows(
      std::size_t pump_setting) const {
    return network_.flows(pump_setting, effective_);
  }
  /// Allocation-free variant (see ValveNetwork::flows_into).
  void effective_flows_into(std::size_t pump_setting,
                            std::vector<VolumetricFlow>& out) const {
    network_.flows_into(pump_setting, effective_, out);
  }

 private:
  [[nodiscard]] bool within_deadband(const std::vector<double>& a,
                                     const std::vector<double>& b) const;

  ValveNetwork network_;
  std::vector<double> effective_;
  std::vector<double> target_;
  SimTime transition_due_{};
  SimTime dwell_until_{};
  std::size_t transitions_ = 0;
  std::vector<double> clamp_scratch_;  ///< command() must not allocate per tick
};

}  // namespace liquid3d
