#include "coolant/pump.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace liquid3d {

PumpModel::PumpModel(std::vector<PumpSetting> settings, double delivery_efficiency,
                     SimTime transition_latency)
    : settings_(std::move(settings)),
      delivery_efficiency_(delivery_efficiency),
      transition_latency_(transition_latency) {
  LIQUID3D_REQUIRE(!settings_.empty(), "pump needs at least one setting");
  LIQUID3D_REQUIRE(delivery_efficiency_ > 0.0 && delivery_efficiency_ <= 1.0,
                   "delivery efficiency must be in (0, 1]");
  for (std::size_t i = 1; i < settings_.size(); ++i) {
    LIQUID3D_REQUIRE(settings_[i].nominal_flow_l_per_hour >
                         settings_[i - 1].nominal_flow_l_per_hour,
                     "pump settings must be sorted by increasing flow");
    LIQUID3D_REQUIRE(settings_[i].power_w >= settings_[i - 1].power_w,
                     "pump power must be non-decreasing in flow");
  }
}

PumpModel PumpModel::laing_ddc() {
  // Quadratic power curve P = P0 + a * FR^2 fitted through the endpoints of
  // Fig. 3's right axis: P(75 l/h) = 3 W, P(375 l/h) = 21 W.
  //   a  = (21 - 3) / (375^2 - 75^2) = 1.3333e-4 W/(l/h)^2
  //   P0 = 3 - a * 75^2            = 2.25 W
  constexpr double kA = 18.0 / (375.0 * 375.0 - 75.0 * 75.0);
  constexpr double kP0 = 3.0 - kA * 75.0 * 75.0;
  std::vector<PumpSetting> settings;
  for (double fr = 75.0; fr <= 375.0; fr += 75.0) {
    settings.push_back({fr, kP0 + kA * fr * fr});
  }
  return PumpModel(std::move(settings), 0.5, SimTime::from_ms(275));
}

VolumetricFlow PumpModel::delivered_flow(std::size_t setting_index) const {
  return VolumetricFlow::from_l_per_hour(setting(setting_index).nominal_flow_l_per_hour) *
         delivery_efficiency_;
}

VolumetricFlow PumpModel::per_cavity_flow(std::size_t setting_index,
                                          std::size_t cavity_count) const {
  LIQUID3D_REQUIRE(cavity_count > 0, "per-cavity flow requires cavities");
  return delivered_flow(setting_index) / static_cast<double>(cavity_count);
}

PumpActuator::PumpActuator(const PumpModel& model, std::size_t initial_setting)
    : model_(model), effective_(initial_setting), target_(initial_setting) {
  LIQUID3D_REQUIRE(initial_setting < model.setting_count(), "invalid pump setting");
}

void PumpActuator::command(std::size_t setting_index, SimTime now) {
  LIQUID3D_REQUIRE(setting_index < model_.setting_count(), "invalid pump setting");
  if (setting_index == target_) return;
  if (setting_index == effective_) {
    // Canceling a pending transition back to the setting the pump is
    // effectively at: the impeller never left, so no transition happens and
    // no latency is imposed.
    target_ = setting_index;
    return;
  }
  target_ = setting_index;
  transition_due_ = now + model_.transition_latency();
  ++transitions_;
}

void PumpActuator::tick(SimTime now) {
  if (effective_ != target_ && now >= transition_due_) {
    effective_ = target_;
  }
}

double PumpActuator::power() const {
  // During a transition charge the larger of the two powers (conservative).
  return std::max(model_.power(effective_), model_.power(target_));
}

VolumetricFlow PumpActuator::per_cavity_flow(std::size_t cavity_count) const {
  return model_.per_cavity_flow(effective_, cavity_count);
}

}  // namespace liquid3d
