// properties.hpp — thermophysical properties of the coolant.
//
// The paper assumes forced convective interlayer cooling with water
// (Table I: c_p = 4183 J/(kg K), rho = 998 kg/m^3).  Other coolants can be
// described by instantiating CoolantProperties with their constants.
#pragma once

namespace liquid3d {

struct CoolantProperties {
  double heat_capacity = 4183.0;    ///< c_p [J/(kg K)]
  double density = 998.0;           ///< rho [kg/m^3]
  double conductivity = 0.6;        ///< k [W/(m K)], water at ~300 K
  double dynamic_viscosity = 1e-3;  ///< mu [Pa s], water at ~300 K

  /// Volumetric heat capacity rho * c_p [J/(m^3 K)].
  [[nodiscard]] double volumetric_heat_capacity() const {
    return heat_capacity * density;
  }

  [[nodiscard]] static CoolantProperties water() { return CoolantProperties{}; }
};

}  // namespace liquid3d
