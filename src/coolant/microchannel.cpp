#include "coolant/microchannel.hpp"

#include <cmath>

#include "common/error.hpp"

namespace liquid3d {

MicrochannelModel::MicrochannelModel(CavitySpec cavity, CoolantProperties coolant,
                                     MicrochannelModelParams params)
    : cavity_(cavity), coolant_(coolant), params_(params) {
  LIQUID3D_REQUIRE(cavity_.channel_count > 0, "cavity must have channels");
  LIQUID3D_REQUIRE(params_.heat_transfer_coeff > 0.0, "h must be positive");
}

double MicrochannelModel::h_eff() const {
  return params_.heat_transfer_coeff * 2.0 *
         (cavity_.channel_width + cavity_.channel_height) / cavity_.pitch;
}

double MicrochannelModel::delta_t_conv(double heat_flux_sum) const {
  return heat_flux_sum / h_eff();
}

double MicrochannelModel::delta_t_cond(double heat_flux) const {
  return params_.r_beol_area() * heat_flux;
}

double MicrochannelModel::r_th_heat(double heater_area, VolumetricFlow cavity_flow) const {
  LIQUID3D_REQUIRE(cavity_flow.m3_per_s() > 0.0, "R_th-heat requires nonzero flow");
  return heater_area /
         (coolant_.heat_capacity * coolant_.density * cavity_flow.m3_per_s());
}

double MicrochannelModel::hydraulic_diameter() const {
  const double a = cavity_.channel_width;
  const double b = cavity_.channel_height;
  return 2.0 * a * b / (a + b);
}

double MicrochannelModel::channel_velocity(VolumetricFlow cavity_flow) const {
  return per_channel_flow(cavity_flow).m3_per_s() / cavity_.channel_cross_section();
}

double MicrochannelModel::reynolds(VolumetricFlow cavity_flow) const {
  return coolant_.density * channel_velocity(cavity_flow) * hydraulic_diameter() /
         coolant_.dynamic_viscosity;
}

double MicrochannelModel::pressure_drop(VolumetricFlow cavity_flow,
                                        double channel_length) const {
  // Fully developed laminar flow in a rectangular duct:
  //   dP = (f Re) * mu * L * u / (2 D_h^2),
  // with f*Re from the Shah-London polynomial in the aspect ratio.
  const double a = std::min(cavity_.channel_width, cavity_.channel_height) /
                   std::max(cavity_.channel_width, cavity_.channel_height);
  const double f_re =
      96.0 * (1.0 - 1.3553 * a + 1.9467 * a * a - 1.7012 * a * a * a +
              0.9564 * a * a * a * a - 0.2537 * a * a * a * a * a);
  const double dh = hydraulic_diameter();
  const double u = channel_velocity(cavity_flow);
  return f_re * coolant_.dynamic_viscosity * channel_length * u / (2.0 * dh * dh);
}

double MicrochannelModel::transit_time(VolumetricFlow cavity_flow,
                                       double channel_length) const {
  const double u = channel_velocity(cavity_flow);
  LIQUID3D_REQUIRE(u > 0.0, "transit time requires nonzero flow");
  return channel_length / u;
}

VolumetricFlow MicrochannelModel::per_channel_flow(VolumetricFlow cavity_flow) const {
  return cavity_flow / static_cast<double>(cavity_.channel_count);
}

}  // namespace liquid3d
