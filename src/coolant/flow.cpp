#include "coolant/flow.hpp"

#include "common/error.hpp"

namespace liquid3d {

const char* to_string(FlowDeliveryMode m) {
  switch (m) {
    case FlowDeliveryMode::kPaperNominal: return "paper-nominal";
    case FlowDeliveryMode::kPressureLimited: return "pressure-limited";
  }
  return "?";
}

double FlowDelivery::head_pa(std::size_t setting, std::size_t setting_count) {
  LIQUID3D_REQUIRE(setting < setting_count, "invalid pump setting");
  if (setting_count == 1) return kMaxHeadPa;
  const double frac =
      static_cast<double>(setting) / static_cast<double>(setting_count - 1);
  return kMinHeadPa + frac * (kMaxHeadPa - kMinHeadPa);
}

FlowDelivery::FlowDelivery(const PumpModel& pump, FlowDeliveryMode mode,
                           const MicrochannelModel& channels, double channel_length,
                           std::size_t cavity_count)
    : mode_(mode),
      cavity_count_(cavity_count),
      channel_count_(channels.cavity().channel_count) {
  LIQUID3D_REQUIRE(cavity_count > 0, "flow delivery requires cavities");
  LIQUID3D_REQUIRE(channel_length > 0.0, "channel length must be positive");

  per_cavity_.reserve(pump.setting_count());
  for (std::size_t s = 0; s < pump.setting_count(); ++s) {
    if (mode == FlowDeliveryMode::kPaperNominal) {
      per_cavity_.push_back(pump.per_cavity_flow(s, cavity_count));
      continue;
    }
    // Pressure-limited: fully developed laminar rectangular-duct flow,
    //   u = 2 D_h^2 dP / (f Re mu L),   V̇_channel = u A_cs.
    const double dp = head_pa(s, pump.setting_count());
    // Invert MicrochannelModel::pressure_drop, which is linear in velocity.
    const double dp_per_velocity =
        channels.pressure_drop(VolumetricFlow::from_m3_per_s(
                                   channels.cavity().channel_cross_section() *
                                   static_cast<double>(channel_count_)),
                               channel_length);  // dP at u = 1 m/s
    const double u = dp / dp_per_velocity;
    const double v_channel = u * channels.cavity().channel_cross_section();
    per_cavity_.push_back(
        VolumetricFlow::from_m3_per_s(v_channel * static_cast<double>(channel_count_)));
  }
}

VolumetricFlow FlowDelivery::per_channel(std::size_t setting) const {
  return per_cavity(setting) / static_cast<double>(channel_count_);
}

}  // namespace liquid3d
