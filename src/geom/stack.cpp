#include "geom/stack.hpp"

#include <cmath>

#include "common/error.hpp"
#include "geom/niagara.hpp"

namespace liquid3d {

const char* to_string(CoolingType t) {
  switch (t) {
    case CoolingType::kAir: return "air";
    case CoolingType::kLiquid: return "liquid";
  }
  return "?";
}

Stack3D::Stack3D(std::string name, CoolingType cooling)
    : name_(std::move(name)), cooling_(cooling) {}

void Stack3D::add_layer(LayerSpec layer) {
  LIQUID3D_REQUIRE(layer.die_thickness > 0.0, "die thickness must be positive");
  if (!layers_.empty()) {
    const double eps = 1e-12;
    LIQUID3D_REQUIRE(std::abs(layer.floorplan.width() - width()) < eps &&
                         std::abs(layer.floorplan.height() - height()) < eps,
                     "all layers must share the die outline");
  }
  layers_.push_back(std::move(layer));
}

void Stack3D::set_cavities(CavitySpec cavity) {
  LIQUID3D_REQUIRE(cooling_ == CoolingType::kLiquid,
                   "cavities only exist on liquid-cooled stacks");
  LIQUID3D_REQUIRE(cavity.channel_count > 0, "cavity needs at least one channel");
  LIQUID3D_REQUIRE(cavity.channel_width > 0.0 && cavity.channel_height > 0.0 &&
                       cavity.pitch >= cavity.channel_width,
                   "invalid channel geometry");
  cavity_ = cavity;
}

std::size_t Stack3D::cavity_count() const {
  if (cooling_ != CoolingType::kLiquid || layers_.empty()) return 0;
  return layers_.size() + 1;
}

double Stack3D::width() const {
  LIQUID3D_REQUIRE(!layers_.empty(), "stack has no layers");
  return layers_.front().floorplan.width();
}

double Stack3D::height() const {
  LIQUID3D_REQUIRE(!layers_.empty(), "stack has no layers");
  return layers_.front().floorplan.height();
}

std::size_t Stack3D::total_count(BlockType t) const {
  std::size_t n = 0;
  for (const LayerSpec& l : layers_) n += l.floorplan.count(t);
  return n;
}

Stack3D make_niagara_stack(std::size_t layer_pairs, CoolingType cooling) {
  LIQUID3D_REQUIRE(layer_pairs >= 1 && layer_pairs <= 4,
                   "supported systems have 1..4 core/cache layer pairs");
  const std::string name = std::to_string(2 * layer_pairs) + "layer_" +
                           std::string(to_string(cooling));
  Stack3D stack(name, cooling);
  for (std::size_t p = 0; p < layer_pairs; ++p) {
    stack.add_layer(LayerSpec{make_niagara_core_die()});
    stack.add_layer(LayerSpec{make_niagara_cache_die()});
  }
  if (cooling == CoolingType::kLiquid) {
    stack.set_cavities(CavitySpec{});
    stack.set_tsvs(TsvSpec{});
  }
  return stack;
}

}  // namespace liquid3d
