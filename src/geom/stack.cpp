#include "geom/stack.hpp"

#include <bit>
#include <cmath>

#include "common/error.hpp"
#include "geom/stack_spec.hpp"

namespace liquid3d {

namespace {

constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ULL;
constexpr std::uint64_t kFnvPrime = 0x100000001b3ULL;

void fnv_mix(std::uint64_t& h, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (8 * i)) & 0xffULL;
    h *= kFnvPrime;
  }
}

void fnv_mix(std::uint64_t& h, double v) {
  fnv_mix(h, std::bit_cast<std::uint64_t>(v));
}

}  // namespace

const char* to_string(CoolingType t) {
  switch (t) {
    case CoolingType::kAir: return "air";
    case CoolingType::kLiquid: return "liquid";
  }
  return "?";
}

Stack3D::Stack3D(std::string name, CoolingType cooling)
    : name_(std::move(name)), cooling_(cooling) {}

void Stack3D::add_layer(LayerSpec layer) {
  LIQUID3D_REQUIRE(layer.die_thickness > 0.0, "die thickness must be positive");
  if (!layers_.empty()) {
    const double eps = 1e-12;
    LIQUID3D_REQUIRE(std::abs(layer.floorplan.width() - width()) < eps &&
                         std::abs(layer.floorplan.height() - height()) < eps,
                     "all layers must share the die outline");
  }
  layers_.push_back(std::move(layer));
}

void Stack3D::set_cavities(CavitySpec cavity) {
  LIQUID3D_REQUIRE(cooling_ == CoolingType::kLiquid,
                   "cavities only exist on liquid-cooled stacks");
  LIQUID3D_REQUIRE(cavity.channel_count > 0, "cavity needs at least one channel");
  LIQUID3D_REQUIRE(cavity.channel_width > 0.0 && cavity.channel_height > 0.0 &&
                       cavity.pitch >= cavity.channel_width,
                   "invalid channel geometry");
  cavity_ = cavity;
}

std::size_t Stack3D::cavity_count() const {
  if (cooling_ != CoolingType::kLiquid || layers_.empty()) return 0;
  return layers_.size() + 1;
}

double Stack3D::width() const {
  LIQUID3D_REQUIRE(!layers_.empty(), "stack has no layers");
  return layers_.front().floorplan.width();
}

double Stack3D::height() const {
  LIQUID3D_REQUIRE(!layers_.empty(), "stack has no layers");
  return layers_.front().floorplan.height();
}

std::size_t Stack3D::total_count(BlockType t) const {
  std::size_t n = 0;
  for (const LayerSpec& l : layers_) n += l.floorplan.count(t);
  return n;
}

std::uint64_t stack_fingerprint(const Stack3D& stack) {
  std::uint64_t h = kFnvOffset;
  fnv_mix(h, static_cast<std::uint64_t>(stack.cooling()));
  fnv_mix(h, static_cast<std::uint64_t>(stack.layer_count()));
  fnv_mix(h, stack.width());
  fnv_mix(h, stack.height());
  for (const LayerSpec& layer : stack.layers()) {
    fnv_mix(h, layer.die_thickness);
    fnv_mix(h, layer.beol_thickness);
    fnv_mix(h, static_cast<std::uint64_t>(layer.floorplan.blocks().size()));
    // Block names are identity-neutral: they label outputs, never geometry.
    for (const Block& b : layer.floorplan.blocks()) {
      fnv_mix(h, static_cast<std::uint64_t>(b.type));
      fnv_mix(h, static_cast<std::uint64_t>(b.type_index));
      fnv_mix(h, b.rect.x);
      fnv_mix(h, b.rect.y);
      fnv_mix(h, b.rect.w);
      fnv_mix(h, b.rect.h);
    }
  }
  if (stack.has_cavities()) {
    const CavitySpec& c = stack.cavity();
    fnv_mix(h, static_cast<std::uint64_t>(c.channel_count));
    fnv_mix(h, c.channel_width);
    fnv_mix(h, c.channel_height);
    fnv_mix(h, c.wall_thickness);
    fnv_mix(h, c.pitch);
    fnv_mix(h, c.cavity_thickness);
  }
  fnv_mix(h, static_cast<std::uint64_t>(stack.tsvs().count));
  fnv_mix(h, stack.tsvs().side);
  fnv_mix(h, stack.tsvs().cu_conductivity);
  fnv_mix(h, stack.bond_thickness());
  fnv_mix(h, stack.interlayer_resistivity());
  return h;
}

Stack3D make_niagara_stack(std::size_t layer_pairs, CoolingType cooling) {
  // The preset spec is the single source of truth now; the golden parity
  // tests lock this delegation to the historical hand-built stacks.
  return make_stack(niagara_stack_spec(layer_pairs, cooling));
}

}  // namespace liquid3d
