#include "geom/grid.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace liquid3d {

Grid::Grid(std::size_t rows, std::size_t cols, double width_m, double height_m)
    : rows_(rows), cols_(cols), width_(width_m), height_(height_m),
      cell_w_(width_m / static_cast<double>(cols)),
      cell_h_(height_m / static_cast<double>(rows)) {
  LIQUID3D_REQUIRE(rows > 0 && cols > 0, "grid must have positive dimensions");
  LIQUID3D_REQUIRE(width_m > 0.0 && height_m > 0.0, "grid extent must be positive");
}

Rect Grid::cell_rect(std::size_t cell) const {
  const std::size_t r = row_of(cell);
  const std::size_t c = col_of(cell);
  return Rect{static_cast<double>(c) * cell_w_, static_cast<double>(r) * cell_h_, cell_w_,
              cell_h_};
}

BlockCellMap::BlockCellMap(const Grid& grid, const Floorplan& fp)
    : cell_owner_(grid.cell_count(), npos), block_cells_(fp.block_count()) {
  std::vector<double> best_overlap(grid.cell_count(), 0.0);
  std::vector<double> block_covered(fp.block_count(), 0.0);

  for (std::size_t b = 0; b < fp.block_count(); ++b) {
    const Rect& br = fp.block(b).rect;
    // Only visit the cell window the block can overlap.
    const auto col_lo = static_cast<std::size_t>(
        std::clamp(br.x / grid.cell_width(), 0.0, static_cast<double>(grid.cols() - 1)));
    const auto col_hi = static_cast<std::size_t>(std::clamp(
        br.right() / grid.cell_width(), 0.0, static_cast<double>(grid.cols() - 1)));
    const auto row_lo = static_cast<std::size_t>(
        std::clamp(br.y / grid.cell_height(), 0.0, static_cast<double>(grid.rows() - 1)));
    const auto row_hi = static_cast<std::size_t>(std::clamp(
        br.top() / grid.cell_height(), 0.0, static_cast<double>(grid.rows() - 1)));

    for (std::size_t r = row_lo; r <= row_hi; ++r) {
      for (std::size_t c = col_lo; c <= col_hi; ++c) {
        const std::size_t cell = grid.index(r, c);
        const double overlap = br.overlap_area(grid.cell_rect(cell));
        if (overlap <= 0.0) continue;
        block_cells_[b].push_back({cell, overlap});
        block_covered[b] += overlap;
        if (overlap > best_overlap[cell]) {
          best_overlap[cell] = overlap;
          cell_owner_[cell] = b;
        }
      }
    }
  }

  // Normalize cell shares to the block's covered area so power is conserved
  // even if a block edge falls slightly outside the grid due to rounding.
  for (std::size_t b = 0; b < block_cells_.size(); ++b) {
    LIQUID3D_REQUIRE(block_covered[b] > 0.0,
                     "block '" + fp.block(b).name + "' overlaps no grid cell");
    for (CellShare& share : block_cells_[b]) share.weight /= block_covered[b];
  }
}

void BlockCellMap::distribute_power(const std::vector<double>& block_power,
                                    std::vector<double>& cell_power) const {
  LIQUID3D_REQUIRE(block_power.size() == block_cells_.size(),
                   "block power arity mismatch");
  std::fill(cell_power.begin(), cell_power.end(), 0.0);
  for (std::size_t b = 0; b < block_cells_.size(); ++b) {
    const double p = block_power[b];
    if (p == 0.0) continue;
    for (const CellShare& share : block_cells_[b]) {
      cell_power[share.cell] += p * share.weight;
    }
  }
}

double BlockCellMap::block_max(const std::vector<double>& cell_values,
                               std::size_t block) const {
  const auto& cells = block_cells_.at(block);
  LIQUID3D_ASSERT(!cells.empty(), "block has no cells");
  double best = cell_values[cells.front().cell];
  for (const CellShare& share : cells) best = std::max(best, cell_values[share.cell]);
  return best;
}

double BlockCellMap::block_mean(const std::vector<double>& cell_values,
                                std::size_t block) const {
  const auto& cells = block_cells_.at(block);
  LIQUID3D_ASSERT(!cells.empty(), "block has no cells");
  double acc = 0.0;
  for (const CellShare& share : cells) acc += cell_values[share.cell] * share.weight;
  return acc;
}

}  // namespace liquid3d
