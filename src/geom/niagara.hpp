// niagara.hpp — UltraSPARC T1 ("Niagara") derived die floorplans.
//
// The DATE'10 paper builds its 3D systems from the 90 nm UltraSPARC T1:
// 8 multithreaded cores, one shared L2 bank per two cores, and a central
// crossbar.  Cores and caches are placed on separate layers (Fig. 1), with
// the crossbar footprint repeated on every layer so the TSV bundle it hosts
// lines up vertically.  Dimensions follow Table III:
//   area per core 10 mm², per L2 cache 19 mm², total layer area 115 mm².
#pragma once

#include "geom/floorplan.hpp"

namespace liquid3d {

/// Die outline shared by all layers: 11.5 mm x 10 mm = 115 mm² (Table III).
inline constexpr double kDieWidth = 11.5e-3;
inline constexpr double kDieHeight = 10.0e-3;

/// Crossbar footprint (identical rect on every layer; hosts 128 TSVs).
inline constexpr double kCrossbarWidth = 4.6e-3;
inline constexpr double kCrossbarHeight = 3.0434782608695653e-3;

/// Block areas per Table III.
inline constexpr double kCoreArea = 10.0e-6;   ///< m², per core
inline constexpr double kCacheArea = 19.0e-6;  ///< m², per L2 bank

/// Crossbar rect, centered on the die — the same rect on every layer so the
/// TSV bundle it hosts lines up vertically.
[[nodiscard]] constexpr Rect niagara_crossbar_rect() {
  return Rect{(kDieWidth - kCrossbarWidth) / 2.0,
              (kDieHeight - kCrossbarHeight) / 2.0, kCrossbarWidth,
              kCrossbarHeight};
}

/// Core die: 8 cores of 10 mm² in two rows of four, central crossbar band
/// flanked by misc (memory control / buffering) blocks.
[[nodiscard]] Floorplan make_niagara_core_die();

/// Cache die: 4 L2 banks of 19 mm² in the corners, the same central crossbar
/// rect, and misc fill.
[[nodiscard]] Floorplan make_niagara_cache_die();

}  // namespace liquid3d
