// grid.hpp — rasterization of block floorplans onto a regular thermal grid.
//
// The thermal solver works on a uniform rows x cols grid per layer (HotSpot's
// "grid mode").  This class maps between blocks and cells:
//   * block -> cells: distributes a block's power over the cells it overlaps,
//     proportional to overlap area;
//   * cell -> block: majority owner, used to read block temperatures back
//     (a block's temperature is the maximum over its cells, matching how a
//     worst-case thermal sensor per unit would behave).
#pragma once

#include <cstddef>
#include <vector>

#include "geom/floorplan.hpp"

namespace liquid3d {

class Grid {
 public:
  /// rows cells along die height (y), cols along die width (x).
  Grid(std::size_t rows, std::size_t cols, double width_m, double height_m);

  [[nodiscard]] std::size_t rows() const { return rows_; }
  [[nodiscard]] std::size_t cols() const { return cols_; }
  [[nodiscard]] std::size_t cell_count() const { return rows_ * cols_; }
  [[nodiscard]] double cell_width() const { return cell_w_; }
  [[nodiscard]] double cell_height() const { return cell_h_; }
  [[nodiscard]] double cell_area() const { return cell_w_ * cell_h_; }
  [[nodiscard]] double width() const { return width_; }
  [[nodiscard]] double height() const { return height_; }

  [[nodiscard]] std::size_t index(std::size_t row, std::size_t col) const {
    return row * cols_ + col;
  }
  [[nodiscard]] std::size_t row_of(std::size_t cell) const { return cell / cols_; }
  [[nodiscard]] std::size_t col_of(std::size_t cell) const { return cell % cols_; }

  /// Geometric extent of a cell.
  [[nodiscard]] Rect cell_rect(std::size_t cell) const;

 private:
  std::size_t rows_;
  std::size_t cols_;
  double width_;
  double height_;
  double cell_w_;
  double cell_h_;
};

/// Result of rasterizing one floorplan onto a grid.
class BlockCellMap {
 public:
  BlockCellMap(const Grid& grid, const Floorplan& fp);

  /// Majority owner block of a cell, or npos if the floorplan leaves it
  /// uncovered (shouldn't happen for tiling floorplans).
  [[nodiscard]] std::size_t owner(std::size_t cell) const { return cell_owner_[cell]; }
  static constexpr std::size_t npos = static_cast<std::size_t>(-1);

  /// (cell, weight) pairs for a block; weights sum to 1 and give the share of
  /// the block's power assigned to each cell.
  struct CellShare {
    std::size_t cell;
    double weight;
  };
  [[nodiscard]] const std::vector<CellShare>& cells_of(std::size_t block) const {
    return block_cells_[block];
  }

  [[nodiscard]] std::size_t block_count() const { return block_cells_.size(); }

  /// Spread per-block power [W] into per-cell power [W].
  void distribute_power(const std::vector<double>& block_power,
                        std::vector<double>& cell_power) const;

  /// Maximum cell temperature over a block's footprint.
  [[nodiscard]] double block_max(const std::vector<double>& cell_values,
                                 std::size_t block) const;

  /// Area-weighted mean cell temperature over a block's footprint.
  [[nodiscard]] double block_mean(const std::vector<double>& cell_values,
                                  std::size_t block) const;

 private:
  std::vector<std::size_t> cell_owner_;
  std::vector<std::vector<CellShare>> block_cells_;
};

}  // namespace liquid3d
