// sites.hpp — enumeration of functional units across the stack.
//
// Gives every core / cache / crossbar / misc block a stable global index
// (layer-major, floorplan order within a layer), which is how the scheduler
// queues, the power model, and the thermal readback refer to the same unit.
#pragma once

#include <cstddef>
#include <vector>

#include "geom/stack.hpp"

namespace liquid3d {

/// Location of one block instance in the stack.
struct BlockSite {
  std::size_t layer = 0;
  std::size_t block = 0;  ///< index into that layer's floorplan
};

/// All sites of a given type, ordered bottom layer first, floorplan order
/// within each layer.
[[nodiscard]] std::vector<BlockSite> enumerate_sites(const Stack3D& stack, BlockType type);

}  // namespace liquid3d
