#include "geom/sites.hpp"

namespace liquid3d {

std::vector<BlockSite> enumerate_sites(const Stack3D& stack, BlockType type) {
  std::vector<BlockSite> sites;
  for (std::size_t l = 0; l < stack.layer_count(); ++l) {
    const Floorplan& fp = stack.layer(l).floorplan;
    for (std::size_t b = 0; b < fp.block_count(); ++b) {
      if (fp.block(b).type == type) sites.push_back({l, b});
    }
  }
  return sites;
}

}  // namespace liquid3d
