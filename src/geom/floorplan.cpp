#include "geom/floorplan.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace liquid3d {

double Rect::overlap_area(const Rect& o) const {
  const double ox = std::max(0.0, std::min(right(), o.right()) - std::max(x, o.x));
  const double oy = std::max(0.0, std::min(top(), o.top()) - std::max(y, o.y));
  return ox * oy;
}

const char* to_string(BlockType t) {
  switch (t) {
    case BlockType::kCore: return "core";
    case BlockType::kL2Cache: return "l2";
    case BlockType::kCrossbar: return "xbar";
    case BlockType::kMisc: return "misc";
  }
  return "?";
}

Floorplan::Floorplan(std::string name, double width_m, double height_m)
    : name_(std::move(name)), width_(width_m), height_(height_m) {
  LIQUID3D_REQUIRE(width_ > 0.0 && height_ > 0.0, "die outline must be positive");
}

void Floorplan::add_block(Block block) {
  const Rect& r = block.rect;
  LIQUID3D_REQUIRE(r.w > 0.0 && r.h > 0.0, "block '" + block.name + "' has empty extent");
  const double eps = 1e-9;
  LIQUID3D_REQUIRE(r.x >= -eps && r.y >= -eps && r.right() <= width_ + eps &&
                       r.top() <= height_ + eps,
                   "block '" + block.name + "' exceeds die outline");
  for (const Block& existing : blocks_) {
    const double overlap = existing.rect.overlap_area(r);
    LIQUID3D_REQUIRE(overlap <= 1e-3 * std::min(existing.rect.area(), r.area()),
                     "block '" + block.name + "' overlaps '" + existing.name + "'");
  }
  blocks_.push_back(std::move(block));
}

std::size_t Floorplan::count(BlockType t) const {
  return static_cast<std::size_t>(
      std::count_if(blocks_.begin(), blocks_.end(),
                    [t](const Block& b) { return b.type == t; }));
}

std::optional<std::size_t> Floorplan::find(const std::string& name) const {
  for (std::size_t i = 0; i < blocks_.size(); ++i) {
    if (blocks_[i].name == name) return i;
  }
  return std::nullopt;
}

std::optional<std::size_t> Floorplan::block_at(double x, double y) const {
  for (std::size_t i = 0; i < blocks_.size(); ++i) {
    if (blocks_[i].rect.contains(x, y)) return i;
  }
  return std::nullopt;
}

double Floorplan::coverage() const {
  double covered = 0.0;
  for (const Block& b : blocks_) covered += b.rect.area();
  return covered / area();
}

}  // namespace liquid3d
