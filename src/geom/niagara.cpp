#include "geom/niagara.hpp"

#include <string>

namespace liquid3d {

Floorplan make_niagara_core_die() {
  Floorplan fp("niagara_core_die", kDieWidth, kDieHeight);

  const double core_w = kDieWidth / 4.0;        // 2.875 mm
  const double core_h = kCoreArea / core_w;     // 3.478 mm -> 10 mm^2
  const double top_row_y = kDieHeight - core_h;

  // Bottom row: cores 0..3, top row: cores 4..7 (left to right).
  for (std::size_t i = 0; i < 4; ++i) {
    fp.add_block({"core" + std::to_string(i), BlockType::kCore,
                  Rect{static_cast<double>(i) * core_w, 0.0, core_w, core_h}, i});
  }
  for (std::size_t i = 0; i < 4; ++i) {
    fp.add_block({"core" + std::to_string(i + 4), BlockType::kCore,
                  Rect{static_cast<double>(i) * core_w, top_row_y, core_w, core_h}, i + 4});
  }

  const Rect xbar = niagara_crossbar_rect();
  fp.add_block({"xbar", BlockType::kCrossbar, xbar, 0});

  // Middle band sides: memory controllers, DRAM interface, buffers.
  const double band_y = core_h;
  const double band_h = top_row_y - core_h;
  fp.add_block({"misc_left", BlockType::kMisc, Rect{0.0, band_y, xbar.x, band_h}, 0});
  fp.add_block({"misc_right", BlockType::kMisc,
                Rect{xbar.right(), band_y, kDieWidth - xbar.right(), band_h}, 1});
  return fp;
}

Floorplan make_niagara_cache_die() {
  Floorplan fp("niagara_cache_die", kDieWidth, kDieHeight);

  const double cache_w = kDieWidth / 2.0;        // 5.75 mm
  const double cache_h = kCacheArea / cache_w;   // 3.304 mm -> 19 mm^2
  const double top_row_y = kDieHeight - cache_h;

  // L2 banks: 0,1 bottom (left,right); 2,3 top (left,right).
  fp.add_block({"l2_0", BlockType::kL2Cache, Rect{0.0, 0.0, cache_w, cache_h}, 0});
  fp.add_block({"l2_1", BlockType::kL2Cache, Rect{cache_w, 0.0, cache_w, cache_h}, 1});
  fp.add_block({"l2_2", BlockType::kL2Cache, Rect{0.0, top_row_y, cache_w, cache_h}, 2});
  fp.add_block({"l2_3", BlockType::kL2Cache, Rect{cache_w, top_row_y, cache_w, cache_h}, 3});

  const Rect xbar = niagara_crossbar_rect();
  fp.add_block({"xbar", BlockType::kCrossbar, xbar, 0});

  // Fill the rest of the middle band with misc blocks: left, right, and the
  // thin strips directly below/above the crossbar.
  const double band_y = cache_h;
  const double band_top = top_row_y;
  fp.add_block({"misc_left", BlockType::kMisc, Rect{0.0, band_y, xbar.x, band_top - band_y}, 0});
  fp.add_block({"misc_right", BlockType::kMisc,
                Rect{xbar.right(), band_y, kDieWidth - xbar.right(), band_top - band_y}, 1});
  fp.add_block({"misc_below_xbar", BlockType::kMisc,
                Rect{xbar.x, band_y, xbar.w, xbar.y - band_y}, 2});
  fp.add_block({"misc_above_xbar", BlockType::kMisc,
                Rect{xbar.x, xbar.top(), xbar.w, band_top - xbar.top()}, 3});
  return fp;
}

}  // namespace liquid3d
