// stack.hpp — 3D stack description: die layers, interlayer cavities, TSVs.
//
// Geometry only; the thermal network construction lives in thermal/ and the
// hydraulics in coolant/.  Conventions:
//   * layers are indexed bottom (0) to top (n-1);
//   * a liquid-cooled stack has n+1 cavities — one between each pair of
//     adjacent layers plus cooling layers at the very bottom and very top
//     (the paper's 2-layer system has 3 cavities x 65 channels = 195, the
//     4-layer system 5 x 65 = 325);
//   * cavity i sits below layer i; cavity n sits above the top layer;
//   * an air-cooled stack has thin interlayer material between dies and a
//     conventional package (spreader + heat sink) on top.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "geom/floorplan.hpp"

namespace liquid3d {

enum class CoolingType { kAir, kLiquid };

[[nodiscard]] const char* to_string(CoolingType t);

/// One die layer.
struct LayerSpec {
  Floorplan floorplan;
  double die_thickness = 0.15e-3;  ///< silicon slab thickness [m] (Table III)
  double beol_thickness = 12e-6;   ///< wiring (BEOL) thickness t_B [m] (Table I)
};

/// One interlayer cooling cavity (uniform parallel microchannels).
/// Geometry per Table I: w_c = 50 µm, t_c = 100 µm, t_s = 50 µm, p = 100 µm.
struct CavitySpec {
  std::size_t channel_count = 65;     ///< channels per cavity (paper, Sec. III-A)
  double channel_width = 50e-6;       ///< w_c [m]
  double channel_height = 100e-6;     ///< t_c [m]
  double wall_thickness = 50e-6;      ///< t_s [m]
  double pitch = 100e-6;              ///< p [m]
  double cavity_thickness = 0.4e-3;   ///< interlayer thickness with channels [m]

  /// Cross-sectional flow area of a single channel [m^2].
  [[nodiscard]] double channel_cross_section() const {
    return channel_width * channel_height;
  }
};

/// TSV bundle hosted by the crossbar block (Sec. III-A).
struct TsvSpec {
  std::size_t count = 128;      ///< TSVs connecting each pair of layers
  double side = 50e-6;          ///< each TSV occupies 50 µm x 50 µm
  double cu_conductivity = 400.0;  ///< W/(m K), bulk copper

  [[nodiscard]] double total_area() const {
    return static_cast<double>(count) * side * side;
  }
};

/// Complete 3D stack.
class Stack3D {
 public:
  Stack3D(std::string name, CoolingType cooling);

  void add_layer(LayerSpec layer);
  /// Must be called after all layers are added; sizes the cavity list.
  void set_cavities(CavitySpec cavity);
  void set_tsvs(TsvSpec tsvs) { tsvs_ = tsvs; }

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] CoolingType cooling() const { return cooling_; }
  [[nodiscard]] std::size_t layer_count() const { return layers_.size(); }
  [[nodiscard]] const LayerSpec& layer(std::size_t i) const { return layers_.at(i); }
  [[nodiscard]] const std::vector<LayerSpec>& layers() const { return layers_; }

  [[nodiscard]] bool has_cavities() const { return cooling_ == CoolingType::kLiquid; }
  /// Number of cavities: layer_count()+1 for liquid stacks, 0 for air.
  [[nodiscard]] std::size_t cavity_count() const;
  [[nodiscard]] const CavitySpec& cavity() const { return cavity_; }
  [[nodiscard]] const TsvSpec& tsvs() const { return tsvs_; }

  /// Total microchannels across all cavities (195 / 325 in the paper).
  [[nodiscard]] std::size_t total_channel_count() const {
    return cavity_count() * cavity_.channel_count;
  }

  /// Die outline (all layers must share it; enforced by add_layer).
  [[nodiscard]] double width() const;
  [[nodiscard]] double height() const;

  /// Total cores / caches across all layers.
  [[nodiscard]] std::size_t total_count(BlockType t) const;

  /// Thin interlayer bond material (air-cooled stacks, Table III: 0.02 mm,
  /// resistivity 0.25 mK/W without TSVs).
  [[nodiscard]] double bond_thickness() const { return 0.02e-3; }
  [[nodiscard]] double interlayer_resistivity() const { return 0.25; }

 private:
  std::string name_;
  CoolingType cooling_;
  std::vector<LayerSpec> layers_;
  CavitySpec cavity_;
  TsvSpec tsvs_;
};

/// Canonical FNV-1a fingerprint of a stack's built geometry: cooling type,
/// outline, per-layer thicknesses and block rects (types and type_index, not
/// names), cavity and TSV geometry, bond material.  Two stacks with equal
/// fingerprints produce identical thermal topologies regardless of whether
/// they came from the legacy builder, a preset spec, or a stack file — the
/// characterization cache and ThermalModel3D::topology_fingerprint both mix
/// this value in.
[[nodiscard]] std::uint64_t stack_fingerprint(const Stack3D& stack);

/// The paper's two target systems (Fig. 1), plus air-cooled twins.
/// 2-layer: core die + cache die (8 cores).  4-layer: core, cache, core,
/// cache (16 cores).  Layer order bottom to top.
[[nodiscard]] Stack3D make_niagara_stack(std::size_t layer_pairs, CoolingType cooling);

/// Convenience aliases used throughout tests and benches.
[[nodiscard]] inline Stack3D make_2layer_system(CoolingType c = CoolingType::kLiquid) {
  return make_niagara_stack(1, c);
}
[[nodiscard]] inline Stack3D make_4layer_system(CoolingType c = CoolingType::kLiquid) {
  return make_niagara_stack(2, c);
}

}  // namespace liquid3d
