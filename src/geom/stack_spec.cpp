#include "geom/stack_spec.hpp"

#include <array>
#include <cctype>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>

#include "common/error.hpp"
#include "common/parse.hpp"
#include "geom/niagara.hpp"

namespace liquid3d {

CoolingType cooling_type_from_name(std::string_view s) {
  if (s == "air") return CoolingType::kAir;
  if (s == "liquid") return CoolingType::kLiquid;
  throw ConfigError("unknown cooling type '" + std::string(s) +
                    "' (expected 'air' or 'liquid')");
}

BlockType block_type_from_name(std::string_view s) {
  if (s == "core") return BlockType::kCore;
  if (s == "l2") return BlockType::kL2Cache;
  if (s == "xbar") return BlockType::kCrossbar;
  if (s == "misc") return BlockType::kMisc;
  throw ConfigError("unknown block type '" + std::string(s) +
                    "' (expected core, l2, xbar, or misc)");
}

namespace {

[[noreturn]] void fail_field(const std::string& field, const std::string& msg) {
  throw ConfigError("stack spec field '" + field + "': " + msg);
}

/// Shared outline tolerance, matching Stack3D::add_layer.
constexpr double kOutlineEps = 1e-12;

std::string joined_preset_names() {
  std::string out;
  for (const std::string& name : stack_preset_names()) {
    if (!out.empty()) out += ", ";
    out += name;
  }
  return out;
}

/// Build the Floorplan for an inline layer; type_index counts per block
/// type in order of appearance (core 0..N-1, l2 0..M-1, ...), mirroring the
/// hand-written Niagara builders.
Floorplan build_inline_floorplan(const StackSpec& spec, std::size_t layer) {
  const StackLayerEntry& entry = spec.layers[layer];
  Floorplan fp(spec.name + ".layer" + std::to_string(layer), spec.die_width,
               spec.die_height);
  std::array<std::size_t, 4> type_counts{};
  for (const BlockEntry& b : entry.blocks) {
    std::size_t& index = type_counts[static_cast<std::size_t>(b.type)];
    fp.add_block({b.name, b.type, b.rect, index});
    ++index;
  }
  return fp;
}

bool cavities_equal(const CavitySpec& a, const CavitySpec& b) {
  return a.channel_count == b.channel_count &&
         a.channel_width == b.channel_width &&
         a.channel_height == b.channel_height &&
         a.wall_thickness == b.wall_thickness && a.pitch == b.pitch &&
         a.cavity_thickness == b.cavity_thickness;
}

}  // namespace

void validate_stack_spec(const StackSpec& spec) {
  if (spec.name.empty()) fail_field("name", "must not be empty");
  if (!(spec.die_width > 0.0)) fail_field("die_width", "must be positive");
  if (!(spec.die_height > 0.0)) fail_field("die_height", "must be positive");
  if (spec.layers.empty()) fail_field("layers", "need at least one layer");

  std::size_t cores = 0;
  for (std::size_t i = 0; i < spec.layers.size(); ++i) {
    const StackLayerEntry& layer = spec.layers[i];
    const std::string prefix = "layers[" + std::to_string(i) + "]";
    if (!(layer.die_thickness > 0.0)) {
      fail_field(prefix + ".die_thickness", "must be positive");
    }
    if (!(layer.beol_thickness > 0.0)) {
      fail_field(prefix + ".beol_thickness", "must be positive");
    }
    if (!layer.floorplan.empty()) {
      if (!layer.blocks.empty()) {
        fail_field(prefix, "a floorplan preset and inline blocks are mutually "
                           "exclusive");
      }
      Floorplan fp = [&] {
        try {
          return make_floorplan_preset(layer.floorplan);
        } catch (const ConfigError& e) {
          fail_field(prefix + ".floorplan", e.what());
        }
      }();
      if (std::abs(fp.width() - spec.die_width) >= kOutlineEps ||
          std::abs(fp.height() - spec.die_height) >= kOutlineEps) {
        fail_field(prefix + ".floorplan",
                   "preset '" + layer.floorplan +
                       "' outline does not match die_width x die_height");
      }
      cores += fp.count(BlockType::kCore);
    } else {
      if (layer.blocks.empty()) {
        fail_field(prefix + ".blocks",
                   "layer needs a floorplan preset or at least one inline "
                   "block");
      }
      for (std::size_t j = 0; j < layer.blocks.size(); ++j) {
        const BlockEntry& b = layer.blocks[j];
        const std::string bfield =
            prefix + ".blocks[" + std::to_string(j) + "].name";
        if (b.name.empty()) fail_field(bfield, "must not be empty");
        for (const char c : b.name) {
          if (std::isspace(static_cast<unsigned char>(c)) != 0) {
            fail_field(bfield, "must not contain whitespace ('" + b.name + "')");
          }
        }
        if (b.type == BlockType::kCore) ++cores;
      }
      // Trial-build the floorplan so outline/overlap violations surface with
      // the layer named, not just the block.
      try {
        (void)build_inline_floorplan(spec, i);
      } catch (const ConfigError& e) {
        fail_field(prefix + ".blocks", e.what());
      }
    }
  }
  if (cores == 0) fail_field("layers", "stack has no core blocks");

  if (spec.cooling == CoolingType::kAir) {
    if (!spec.cavities.empty()) {
      fail_field("cavities", "air-cooled stacks must not declare cavities");
    }
  } else {
    const std::size_t expected = spec.layers.size() + 1;
    if (spec.cavities.empty()) {
      fail_field("cavities", "liquid-cooled stacks need a cavity entry");
    }
    if (spec.cavities.size() != 1 && spec.cavities.size() != expected) {
      fail_field("cavities",
                 "expected 1 uniform entry or layer_count+1 (= " +
                     std::to_string(expected) + ") entries, got " +
                     std::to_string(spec.cavities.size()));
    }
    for (std::size_t i = 1; i < spec.cavities.size(); ++i) {
      if (!cavities_equal(spec.cavities[i], spec.cavities.front())) {
        fail_field("cavities[" + std::to_string(i) + "]",
                   "per-cavity geometry must be uniform (the stack model "
                   "carries one cavity spec)");
      }
    }
    for (std::size_t i = 0; i < spec.cavities.size(); ++i) {
      const CavitySpec& c = spec.cavities[i];
      const std::string prefix = "cavities[" + std::to_string(i) + "]";
      if (c.channel_count == 0) {
        fail_field(prefix + ".channel_count", "need at least one channel");
      }
      if (!(c.channel_width > 0.0)) {
        fail_field(prefix + ".channel_width", "must be positive");
      }
      if (!(c.channel_height > 0.0)) {
        fail_field(prefix + ".channel_height", "must be positive");
      }
      if (!(c.wall_thickness > 0.0)) {
        fail_field(prefix + ".wall_thickness", "must be positive");
      }
      if (!(c.pitch >= c.channel_width)) {
        fail_field(prefix + ".pitch", "must be >= channel_width");
      }
      if (!(c.cavity_thickness > 0.0)) {
        fail_field(prefix + ".cavity_thickness", "must be positive");
      }
      const double band = static_cast<double>(c.channel_count) * c.pitch;
      if (band > spec.die_width + kOutlineEps) {
        fail_field(prefix + ".channel_count",
                   "channel band (count x pitch) exceeds die_width");
      }
    }
  }

  if (!(spec.tsvs.side > 0.0)) fail_field("tsvs.side", "must be positive");
  if (!(spec.tsvs.cu_conductivity > 0.0)) {
    fail_field("tsvs.cu_conductivity", "must be positive");
  }
}

Stack3D make_stack(const StackSpec& spec) {
  validate_stack_spec(spec);
  Stack3D stack(spec.name, spec.cooling);
  for (std::size_t i = 0; i < spec.layers.size(); ++i) {
    const StackLayerEntry& layer = spec.layers[i];
    Floorplan fp = layer.floorplan.empty()
                       ? build_inline_floorplan(spec, i)
                       : make_floorplan_preset(layer.floorplan);
    stack.add_layer(
        LayerSpec{std::move(fp), layer.die_thickness, layer.beol_thickness});
  }
  if (spec.cooling == CoolingType::kLiquid) {
    stack.set_cavities(spec.cavities.front());
  }
  stack.set_tsvs(spec.tsvs);
  return stack;
}

const std::vector<std::string>& floorplan_preset_names() {
  static const std::vector<std::string> names = {"niagara-core",
                                                 "niagara-cache"};
  return names;
}

Floorplan make_floorplan_preset(std::string_view name) {
  if (name == "niagara-core") return make_niagara_core_die();
  if (name == "niagara-cache") return make_niagara_cache_die();
  std::string known;
  for (const std::string& n : floorplan_preset_names()) {
    if (!known.empty()) known += ", ";
    known += n;
  }
  throw ConfigError("unknown floorplan preset '" + std::string(name) +
                    "' (known: " + known + ")");
}

const std::vector<std::string>& stack_preset_names() {
  static const std::vector<std::string> names = {"niagara-2layer",
                                                 "niagara-4layer"};
  return names;
}

bool is_stack_preset(std::string_view name) {
  for (const std::string& n : stack_preset_names()) {
    if (n == name) return true;
  }
  return false;
}

StackSpec stack_preset(std::string_view name, CoolingType cooling) {
  if (name == "niagara-2layer") return niagara_stack_spec(1, cooling);
  if (name == "niagara-4layer") return niagara_stack_spec(2, cooling);
  throw ConfigError("unknown stack preset '" + std::string(name) +
                    "' (known: " + joined_preset_names() + ")");
}

StackSpec niagara_stack_spec(std::size_t layer_pairs, CoolingType cooling) {
  LIQUID3D_REQUIRE(layer_pairs >= 1 && layer_pairs <= 4,
                   "supported systems have 1..4 core/cache layer pairs");
  StackSpec spec;
  spec.name = std::to_string(2 * layer_pairs) + "layer_" +
              std::string(to_string(cooling));
  spec.cooling = cooling;
  // Die outline and per-layer thicknesses exist once: the outline in
  // geom/niagara.hpp, the thicknesses as StackLayerEntry's defaults (which
  // mirror LayerSpec's Table I/III values).
  spec.die_width = kDieWidth;
  spec.die_height = kDieHeight;
  for (std::size_t p = 0; p < layer_pairs; ++p) {
    StackLayerEntry core;
    core.floorplan = "niagara-core";
    spec.layers.push_back(std::move(core));
    StackLayerEntry cache;
    cache.floorplan = "niagara-cache";
    spec.layers.push_back(std::move(cache));
  }
  if (cooling == CoolingType::kLiquid) spec.cavities = {CavitySpec{}};
  return spec;
}

// -- Stack files --------------------------------------------------------------

namespace {

std::string fmt_double(double v) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

std::string trim(const std::string& s) {
  std::size_t begin = 0;
  std::size_t end = s.size();
  while (begin < end && std::isspace(static_cast<unsigned char>(s[begin]))) {
    ++begin;
  }
  while (end > begin && std::isspace(static_cast<unsigned char>(s[end - 1]))) {
    --end;
  }
  return s.substr(begin, end - begin);
}

std::vector<std::string> split_tokens(const std::string& s) {
  std::vector<std::string> out;
  std::istringstream in(s);
  std::string token;
  while (in >> token) out.push_back(token);
  return out;
}

enum class Section { kNone, kStack, kLayer, kCavity, kTsv };

}  // namespace

StackSpec parse_stack_file(std::istream& in, const std::string& source) {
  StackSpec spec;
  Section section = Section::kNone;
  bool stack_seen = false;
  std::size_t line_no = 0;
  std::string line;

  auto fail = [&](const std::string& msg) -> void {
    throw ConfigError(source + ":" + std::to_string(line_no) + ": " + msg);
  };
  auto parse_num = [&](const std::string& value,
                       const std::string& key) -> double {
    try {
      return parse_double(value, "key '" + key + "'");
    } catch (const ConfigError& e) {
      fail(e.what());
    }
  };
  auto parse_count = [&](const std::string& value,
                         const std::string& key) -> std::size_t {
    try {
      return static_cast<std::size_t>(parse_u64(value, "key '" + key + "'"));
    } catch (const ConfigError& e) {
      fail(e.what());
    }
  };

  while (std::getline(in, line)) {
    ++line_no;
    const std::string text = trim(line);
    if (text.empty() || text[0] == '#') continue;

    if (text.front() == '[') {
      if (text.back() != ']') fail("unterminated section header '" + text + "'");
      const std::string name = text.substr(1, text.size() - 2);
      if (name == "stack") {
        if (stack_seen) fail("duplicate [stack] section");
        stack_seen = true;
        section = Section::kStack;
      } else if (name == "layer") {
        spec.layers.emplace_back();
        section = Section::kLayer;
      } else if (name == "cavity") {
        spec.cavities.emplace_back();
        section = Section::kCavity;
      } else if (name == "tsv") {
        section = Section::kTsv;
      } else {
        fail("unknown section '[" + name + "]' (expected [stack], [layer], "
             "[cavity], or [tsv])");
      }
      continue;
    }

    if (section == Section::kLayer && text.rfind("block", 0) == 0 &&
        (text.size() == 5 ||
         std::isspace(static_cast<unsigned char>(text[5])) != 0)) {
      const std::vector<std::string> tokens = split_tokens(text);
      if (tokens.size() != 7) {
        fail("block row needs 'block NAME TYPE x y w h' (7 tokens, got " +
             std::to_string(tokens.size()) + ")");
      }
      BlockEntry block;
      block.name = tokens[1];
      try {
        block.type = block_type_from_name(tokens[2]);
      } catch (const ConfigError& e) {
        fail("block '" + block.name + "': " + e.what());
      }
      block.rect.x = parse_num(tokens[3], "block " + block.name + " x");
      block.rect.y = parse_num(tokens[4], "block " + block.name + " y");
      block.rect.w = parse_num(tokens[5], "block " + block.name + " w");
      block.rect.h = parse_num(tokens[6], "block " + block.name + " h");
      spec.layers.back().blocks.push_back(std::move(block));
      continue;
    }

    const std::size_t eq = text.find('=');
    if (eq == std::string::npos) {
      fail("expected 'key = value' (or a section header), got '" + text + "'");
    }
    const std::string key = trim(text.substr(0, eq));
    const std::string value = trim(text.substr(eq + 1));
    if (key.empty()) fail("empty key before '='");
    if (value.empty()) fail("key '" + key + "': empty value");

    switch (section) {
      case Section::kNone:
        fail("key '" + key + "' outside any section (start with [stack])");
        break;
      case Section::kStack:
        if (key == "name") {
          spec.name = value;
        } else if (key == "cooling") {
          try {
            spec.cooling = cooling_type_from_name(value);
          } catch (const ConfigError& e) {
            fail("key 'cooling': " + std::string(e.what()));
          }
        } else if (key == "die_width") {
          spec.die_width = parse_num(value, key);
        } else if (key == "die_height") {
          spec.die_height = parse_num(value, key);
        } else {
          fail("unknown [stack] key '" + key + "'");
        }
        break;
      case Section::kLayer:
        if (key == "floorplan") {
          spec.layers.back().floorplan = value;
        } else if (key == "die_thickness") {
          spec.layers.back().die_thickness = parse_num(value, key);
        } else if (key == "beol_thickness") {
          spec.layers.back().beol_thickness = parse_num(value, key);
        } else {
          fail("unknown [layer] key '" + key + "'");
        }
        break;
      case Section::kCavity: {
        CavitySpec& cavity = spec.cavities.back();
        if (key == "channel_count") {
          cavity.channel_count = parse_count(value, key);
        } else if (key == "channel_width") {
          cavity.channel_width = parse_num(value, key);
        } else if (key == "channel_height") {
          cavity.channel_height = parse_num(value, key);
        } else if (key == "wall_thickness") {
          cavity.wall_thickness = parse_num(value, key);
        } else if (key == "pitch") {
          cavity.pitch = parse_num(value, key);
        } else if (key == "cavity_thickness") {
          cavity.cavity_thickness = parse_num(value, key);
        } else {
          fail("unknown [cavity] key '" + key + "'");
        }
        break;
      }
      case Section::kTsv:
        if (key == "count") {
          spec.tsvs.count = parse_count(value, key);
        } else if (key == "side") {
          spec.tsvs.side = parse_num(value, key);
        } else if (key == "cu_conductivity") {
          spec.tsvs.cu_conductivity = parse_num(value, key);
        } else {
          fail("unknown [tsv] key '" + key + "'");
        }
        break;
    }
  }

  if (!stack_seen) {
    ++line_no;  // point past the end of input
    fail("missing [stack] section");
  }
  return spec;
}

StackSpec load_stack_file(const std::string& path) {
  std::ifstream in(path);
  LIQUID3D_REQUIRE(in.good(), "cannot open stack file '" + path + "'");
  return parse_stack_file(in, path);
}

void write_stack_file(std::ostream& out, const StackSpec& spec) {
  out << "#liquid3d-stack v1\n";
  out << "[stack]\n";
  out << "name = " << spec.name << "\n";
  out << "cooling = " << to_string(spec.cooling) << "\n";
  out << "die_width = " << fmt_double(spec.die_width) << "\n";
  out << "die_height = " << fmt_double(spec.die_height) << "\n";
  for (const StackLayerEntry& layer : spec.layers) {
    out << "\n[layer]\n";
    if (!layer.floorplan.empty()) {
      out << "floorplan = " << layer.floorplan << "\n";
    }
    out << "die_thickness = " << fmt_double(layer.die_thickness) << "\n";
    out << "beol_thickness = " << fmt_double(layer.beol_thickness) << "\n";
    for (const BlockEntry& b : layer.blocks) {
      out << "block " << b.name << " " << to_string(b.type) << " "
          << fmt_double(b.rect.x) << " " << fmt_double(b.rect.y) << " "
          << fmt_double(b.rect.w) << " " << fmt_double(b.rect.h) << "\n";
    }
  }
  for (const CavitySpec& c : spec.cavities) {
    out << "\n[cavity]\n";
    out << "channel_count = " << c.channel_count << "\n";
    out << "channel_width = " << fmt_double(c.channel_width) << "\n";
    out << "channel_height = " << fmt_double(c.channel_height) << "\n";
    out << "wall_thickness = " << fmt_double(c.wall_thickness) << "\n";
    out << "pitch = " << fmt_double(c.pitch) << "\n";
    out << "cavity_thickness = " << fmt_double(c.cavity_thickness) << "\n";
  }
  out << "\n[tsv]\n";
  out << "count = " << spec.tsvs.count << "\n";
  out << "side = " << fmt_double(spec.tsvs.side) << "\n";
  out << "cu_conductivity = " << fmt_double(spec.tsvs.cu_conductivity) << "\n";
}

// -- #suite metadata encoding -------------------------------------------------

std::string encode_stack_spec(const StackSpec& spec) {
  std::ostringstream text;
  write_stack_file(text, spec);
  const std::string raw = text.str();
  static const char* hex = "0123456789ABCDEF";
  std::string out;
  out.reserve(raw.size() + 16);
  for (const char ch : raw) {
    const unsigned char c = static_cast<unsigned char>(ch);
    // Escape '%' itself plus anything a whitespace tokenizer could split on
    // (space, tabs, newlines, all other control bytes).
    if (c == '%' || c <= 0x20 || c == 0x7f) {
      out += '%';
      out += hex[c >> 4];
      out += hex[c & 0xf];
    } else {
      out += ch;
    }
  }
  return out;
}

StackSpec decode_stack_spec(const std::string& token,
                            const std::string& source) {
  auto hex_digit = [&](char c) -> int {
    if (c >= '0' && c <= '9') return c - '0';
    if (c >= 'A' && c <= 'F') return c - 'A' + 10;
    if (c >= 'a' && c <= 'f') return c - 'a' + 10;
    return -1;
  };
  std::string raw;
  raw.reserve(token.size());
  for (std::size_t i = 0; i < token.size(); ++i) {
    if (token[i] != '%') {
      raw += token[i];
      continue;
    }
    LIQUID3D_REQUIRE(i + 2 < token.size(),
                     source + ": truncated %XX escape in stack token");
    const int hi = hex_digit(token[i + 1]);
    const int lo = hex_digit(token[i + 2]);
    LIQUID3D_REQUIRE(hi >= 0 && lo >= 0,
                     source + ": malformed %XX escape in stack token");
    raw += static_cast<char>(hi * 16 + lo);
    i += 2;
  }
  std::istringstream in(raw);
  return parse_stack_file(in, source);
}

// -- Scenario axis resolution -------------------------------------------------

StackSpec resolve_stack_axis(const std::string& axis, CoolingType cooling,
                             const std::vector<StackSpec>& extra) {
  LIQUID3D_REQUIRE(!axis.empty(), "stack axis value is empty");
  auto check_cooling = [&](const StackSpec& spec) {
    LIQUID3D_REQUIRE(spec.cooling == cooling,
                     "stack '" + axis + "' is " +
                         std::string(to_string(spec.cooling)) +
                         "-cooled but the scenario requires " +
                         std::string(to_string(cooling)) + " cooling");
  };
  for (const StackSpec& s : extra) {
    if (s.name == axis) {
      check_cooling(s);
      return s;
    }
  }
  if (is_stack_preset(axis)) return stack_preset(axis, cooling);
  std::error_code ec;
  if (!std::filesystem::exists(axis, ec) || ec) {
    throw ConfigError("stack '" + axis +
                      "' is not an embedded spec, not a preset (known: " +
                      joined_preset_names() + "), and not a readable file");
  }
  StackSpec spec = load_stack_file(axis);
  // The axis string becomes the spec's identity, so a plan that embeds this
  // spec into `#suite` metadata resolves it by name on a remote worker with
  // no filesystem access to the original file.
  spec.name = axis;
  check_cooling(spec);
  return spec;
}

}  // namespace liquid3d
