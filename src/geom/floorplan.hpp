// floorplan.hpp — 2D block geometry for one die layer.
//
// A Floorplan is a set of named, axis-aligned, non-overlapping rectangular
// blocks that tile a die outline.  Block types drive the power model (cores
// dissipate state-dependent power, caches fixed power, crossbar scaled power)
// and the thermal interlayer model (the crossbar hosts the TSV bundle).
#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <vector>

namespace liquid3d {

/// Axis-aligned rectangle; coordinates in meters, origin at die lower-left.
struct Rect {
  double x = 0.0;  ///< left edge [m]
  double y = 0.0;  ///< bottom edge [m]
  double w = 0.0;  ///< width [m]
  double h = 0.0;  ///< height [m]

  [[nodiscard]] double area() const { return w * h; }
  [[nodiscard]] double right() const { return x + w; }
  [[nodiscard]] double top() const { return y + h; }
  [[nodiscard]] double center_x() const { return x + 0.5 * w; }
  [[nodiscard]] double center_y() const { return y + 0.5 * h; }

  [[nodiscard]] bool contains(double px, double py) const {
    return px >= x && px < right() && py >= y && py < top();
  }

  /// Area of intersection with another rectangle (0 if disjoint).
  [[nodiscard]] double overlap_area(const Rect& o) const;
};

/// Functional classification of a block; drives power and TSV modeling.
enum class BlockType {
  kCore,      ///< multithreaded processor core
  kL2Cache,   ///< shared L2 cache bank
  kCrossbar,  ///< core-cache crossbar; hosts the inter-layer TSV bundle
  kMisc,      ///< memory controllers, buffers, IO — background power
};

[[nodiscard]] const char* to_string(BlockType t);

/// One placed block.
struct Block {
  std::string name;
  BlockType type = BlockType::kMisc;
  Rect rect;
  /// Index of this block among same-typed blocks (core 0..N-1, cache 0..M-1);
  /// used to bind cores to scheduler queues and caches to power entries.
  std::size_t type_index = 0;
};

/// A single die layer's floorplan.
class Floorplan {
 public:
  Floorplan(std::string name, double width_m, double height_m);

  /// Add a block; throws ConfigError if it exceeds the outline or overlaps an
  /// existing block by more than a 0.1 % area tolerance.
  void add_block(Block block);

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] double width() const { return width_; }
  [[nodiscard]] double height() const { return height_; }
  [[nodiscard]] double area() const { return width_ * height_; }

  [[nodiscard]] const std::vector<Block>& blocks() const { return blocks_; }
  [[nodiscard]] std::size_t block_count() const { return blocks_.size(); }
  [[nodiscard]] const Block& block(std::size_t i) const { return blocks_.at(i); }

  /// Number of blocks of a given type.
  [[nodiscard]] std::size_t count(BlockType t) const;

  /// Find block by name.
  [[nodiscard]] std::optional<std::size_t> find(const std::string& name) const;

  /// Block covering a point, if any.
  [[nodiscard]] std::optional<std::size_t> block_at(double x, double y) const;

  /// Total area covered by blocks as a fraction of the outline (≈1 when the
  /// floorplan tiles the die).
  [[nodiscard]] double coverage() const;

 private:
  std::string name_;
  double width_;
  double height_;
  std::vector<Block> blocks_;
};

}  // namespace liquid3d
