// stack_spec.hpp — declarative stack compositions.
//
// A StackSpec is the serializable, single source of truth for a 3D stack's
// geometry: ordered die layers (each a named floorplan preset or inline
// block rects), the interlayer cavity geometry, the TSV bundle, and the
// cooling type.  make_stack() turns a spec into the Stack3D everything else
// consumes; the Niagara 2-/4-layer systems of the paper are preset specs
// (niagara_stack_spec) that build bit-identical stacks to the legacy
// make_niagara_stack.
//
// Specs travel three ways:
//   * stack files — a HotSpot-style sectioned text format ([stack],
//     [layer], [cavity], [tsv]) parsed with file:line-, key-named
//     ConfigErrors (parse_stack_file / load_stack_file / write_stack_file);
//   * scenario axis — ScenarioSpec::stack names a preset, an embedded spec,
//     or a stack-file path, resolved by resolve_stack_axis;
//   * sweep metadata — encode_stack_spec/decode_stack_spec pack a spec into
//     a single whitespace-free `#suite stack=` token, so remote shards
//     rebuild identical geometry without access to the original file.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

#include "geom/stack.hpp"

namespace liquid3d {

/// "air" / "liquid" -> CoolingType; throws ConfigError otherwise.
[[nodiscard]] CoolingType cooling_type_from_name(std::string_view s);
/// "core" / "l2" / "xbar" / "misc" -> BlockType; throws ConfigError otherwise.
[[nodiscard]] BlockType block_type_from_name(std::string_view s);

/// One inline block of a layer entry (a `block NAME TYPE x y w h` row).
struct BlockEntry {
  std::string name;
  BlockType type = BlockType::kMisc;
  Rect rect;
};

/// One die layer: either a named floorplan preset or inline blocks.
struct StackLayerEntry {
  /// Floorplan preset name ("niagara-core" / "niagara-cache"); empty means
  /// the layer is described by its inline `blocks`.
  std::string floorplan;
  /// Inline rects; type_index is assigned per type in order of appearance.
  std::vector<BlockEntry> blocks;
  double die_thickness = 0.15e-3;  ///< silicon slab thickness [m]
  double beol_thickness = 12e-6;   ///< wiring (BEOL) thickness [m]
};

/// Complete declarative stack description.  Layers bottom to top.
struct StackSpec {
  std::string name;
  CoolingType cooling = CoolingType::kLiquid;
  double die_width = 0.0;   ///< outline shared by every layer [m]
  double die_height = 0.0;
  std::vector<StackLayerEntry> layers;
  /// Cavity geometry.  Air stacks: must be empty.  Liquid stacks: one entry
  /// (applied uniformly to all layer_count+1 cavities) or layer_count+1
  /// equal entries — Stack3D models a single uniform cavity, so unequal
  /// per-cavity geometry is rejected by validate_stack_spec.
  std::vector<CavitySpec> cavities;
  TsvSpec tsvs;
};

/// Structural validation; throws ConfigError naming the offending field
/// ("layers[1].die_thickness", "cavities", ...).  make_stack calls this.
void validate_stack_spec(const StackSpec& spec);

/// Build the Stack3D a spec describes (validates first).
[[nodiscard]] Stack3D make_stack(const StackSpec& spec);

// -- Floorplan presets --------------------------------------------------------
[[nodiscard]] const std::vector<std::string>& floorplan_preset_names();
/// Build a preset floorplan by name; throws ConfigError when unknown.
[[nodiscard]] Floorplan make_floorplan_preset(std::string_view name);

// -- Stack presets ------------------------------------------------------------
/// Names accepted by stack_preset(): "niagara-2layer", "niagara-4layer".
[[nodiscard]] const std::vector<std::string>& stack_preset_names();
[[nodiscard]] bool is_stack_preset(std::string_view name);
/// The named preset adapted to `cooling`; throws ConfigError when unknown.
[[nodiscard]] StackSpec stack_preset(std::string_view name, CoolingType cooling);

/// The paper's Niagara-derived systems as specs: `layer_pairs` core/cache
/// die pairs (1..4).  make_stack(niagara_stack_spec(p, c)) is bit-identical
/// to make_niagara_stack(p, c) — locked by the golden parity tests.
[[nodiscard]] StackSpec niagara_stack_spec(std::size_t layer_pairs,
                                           CoolingType cooling);

// -- Stack files --------------------------------------------------------------
/// Parse the sectioned stack-file format (see docs/stacks.md).  `source`
/// names the input in diagnostics ("file.stack:12: ...").
[[nodiscard]] StackSpec parse_stack_file(std::istream& in,
                                         const std::string& source);
/// Read and parse a stack file from disk.
[[nodiscard]] StackSpec load_stack_file(const std::string& path);
/// Emit a spec in the stack-file format.  Doubles print as %.17g, so
/// write -> parse round-trips bit-exactly.
void write_stack_file(std::ostream& out, const StackSpec& spec);

// -- #suite metadata encoding -------------------------------------------------
/// The spec's stack-file text, percent-encoded into a single token free of
/// whitespace — safe as a `#suite stack=` value.
[[nodiscard]] std::string encode_stack_spec(const StackSpec& spec);
/// Inverse of encode_stack_spec; `source` names the input in diagnostics.
[[nodiscard]] StackSpec decode_stack_spec(const std::string& token,
                                          const std::string& source);

// -- Scenario axis resolution -------------------------------------------------
/// Resolve a ScenarioSpec::stack axis value in order: (1) a spec in `extra`
/// whose name matches (sweep-embedded specs), (2) a stack preset adapted to
/// `cooling`, (3) a stack-file path.  Throws ConfigError when nothing
/// matches or the resolved spec's cooling contradicts `cooling`.
[[nodiscard]] StackSpec resolve_stack_axis(const std::string& axis,
                                           CoolingType cooling,
                                           const std::vector<StackSpec>& extra);

}  // namespace liquid3d
