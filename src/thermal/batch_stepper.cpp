#include "thermal/batch_stepper.hpp"

#include "common/error.hpp"

namespace liquid3d {

void BatchThermalStepper::step(std::span<ThermalModel3D* const> models,
                               double dt_s) {
  LIQUID3D_REQUIRE(!models.empty(), "batch step needs at least one model");
  LIQUID3D_REQUIRE(dt_s > 0.0, "time step must be positive");
  ThermalModel3D& lead = *models.front();
  for (ThermalModel3D* m : models) {
    LIQUID3D_REQUIRE(m->topology_fingerprint() == lead.topology_fingerprint(),
                     "batched models must share stack geometry and thermal "
                     "parameters (topology fingerprints differ)");
    // Serial step() with a zero iteration budget is a degenerate no-op the
    // lockstep loop below cannot reproduce (every active model gets one
    // solve); reject it instead of silently diverging from serial.
    LIQUID3D_REQUIRE(m->params().max_fluid_iterations >= 1,
                     "batched stepping requires max_fluid_iterations >= 1");
  }
  // The shared-factor multi-RHS path is a direct-backend construct.  PCG
  // models share nothing step-to-step beyond their (cheap, per-model) CSR
  // systems, so a PCG batch — homogeneous, because the topology fingerprint
  // mixes the resolved backend in — steps serially; the lockstep grouping
  // machinery above still applies, it just buys no shared solve.
  if (lead.backend_ != SolverBackend::kDirect) {
    for (ThermalModel3D* m : models) m->step(dt_s);
    return;
  }
  const BandedSpdMatrix& mat = lead.matrix_for_dt(dt_s);
  const double inv_dt = 1.0 / dt_s;
  const std::size_t n = lead.node_count_;
  const bool liquid = lead.stack_.has_cavities();

  // Mirror of ThermalModel3D::advance, vectorized over models: every model
  // assembles from its own temps_prev_ snapshot each iteration, and a model
  // leaves the active set exactly when its serial loop would have broken —
  // an extra solve after convergence would perturb the state.
  active_.assign(models.begin(), models.end());
  for (ThermalModel3D* m : active_) {
    m->temps_prev_.assign(m->temps_.begin(), m->temps_.end());
  }
  // Interleaving is done as a tiled transpose: each model assembles into
  // its own contiguous rhs_ scratch, and tiles of kTile rows are exchanged
  // with the packed buffer so the strided accesses stay inside an
  // L1-resident window — a straight per-model strided pass would re-walk
  // the whole packed buffer once per model.
  constexpr std::size_t kTile = 64;
  for (std::size_t iter = 0; !active_.empty(); ++iter) {
    const std::size_t nb = active_.size();
    packed_.resize(n * nb);
    for (ThermalModel3D* m : active_) {
      m->assemble_transient_rhs(inv_dt, m->rhs_.data());
    }
    for (std::size_t i0 = 0; i0 < n; i0 += kTile) {
      const std::size_t i_end = std::min(n, i0 + kTile);
      for (std::size_t r = 0; r < nb; ++r) {
        const double* const src = active_[r]->rhs_.data();
        double* const dst = packed_.data() + r;
        for (std::size_t i = i0; i < i_end; ++i) dst[i * nb] = src[i];
      }
    }
    mat.solve(std::span<double>(packed_.data(), n * nb), nb);
    ++shared_solves_;
    solved_columns_ += nb;
    for (std::size_t i0 = 0; i0 < n; i0 += kTile) {
      const std::size_t i_end = std::min(n, i0 + kTile);
      for (std::size_t r = 0; r < nb; ++r) {
        double* const dst = active_[r]->temps_.data();
        const double* const src = packed_.data() + r;
        for (std::size_t i = i0; i < i_end; ++i) dst[i] = src[i * nb];
      }
    }
    next_active_.clear();
    for (ThermalModel3D* m : active_) {
      if (!liquid) continue;  // air: single implicit solve, no fluid loop
      const double delta = m->march_all_fluid();
      if (delta >= m->params_.fluid_tolerance &&
          iter + 1 < m->params_.max_fluid_iterations) {
        next_active_.push_back(m);
      }
    }
    active_.swap(next_active_);
  }
  if (!liquid) {
    for (ThermalModel3D* m : models) m->update_package_transient(dt_s);
  }
}

}  // namespace liquid3d
