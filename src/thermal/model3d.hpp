// model3d.hpp — grid-level transient/steady thermal model of a 3D stack with
// interlayer microchannel liquid cooling or a conventional air package.
//
// This is the reproduction of Sec. III of the paper (the HotSpot v4.2
// extension).  Physics implemented:
//
//   * per-layer uniform grid of silicon "junction" cells with lateral
//     conduction and per-cell heat capacity;
//   * vertical conduction between adjacent dies through the interlayer:
//     - liquid stacks: solid channel-wall path in parallel with the coolant
//       path, with TSV (copper) enhancement under the crossbar footprint;
//     - air stacks: bond material path with the same TSV enhancement;
//   * per-cell convective coupling into the coolant with the constant
//     h_eff = h 2(w_c+t_c)/p of Table I (Eq. 7) — flow-independent, exactly
//     as the paper treats ΔT_conv;
//   * quasi-static coolant advection: the fluid temperature profile is
//     marched downstream from the inlet each evaluation (the iterative
//     ΔT_heat accumulation of Sec. III-A, Eq. 4-5).  The coolant transit
//     time (<1 ms) is far below both the thermal time constant (~100 ms)
//     and the 100 ms sampling interval, so treating the fluid as algebraic
//     is the faithful discretization of the paper's model;
//   * BEOL conduction resistance (Eq. 2-3) in series with every coupling on
//     a die's active face;
//   * air-cooled stacks: TIM + spreader + sink lumped package (Table III
//     capacitance), heat sink to ambient.
//
// Numerics: backward Euler with a banded Cholesky factorization that is
// computed once per time step size (the network conductances do not depend
// on the flow rate — only the fluid temperatures do), plus a fixed-point
// outer loop coupling the silicon solve with the fluid march.  The runtime
// flow-rate dependence enters through the advection term, which is the
// paper's "cell resistivity varies at runtime" mechanism expressed in its
// physically equivalent form.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "common/units.hpp"
#include "coolant/microchannel.hpp"
#include "coolant/properties.hpp"
#include "geom/grid.hpp"
#include "geom/stack.hpp"
#include "thermal/solver/backend.hpp"
#include "thermal/solver/banded_lu.hpp"
#include "thermal/solver/banded_spd.hpp"
#include "thermal/solver/factorization_cache.hpp"
#include "thermal/solver/pcg.hpp"
#include "thermal/steady_operator.hpp"

namespace liquid3d {

/// Complete dynamic state of a ThermalModel3D — everything `step` and
/// `solve_steady_state` evolve.  Snapshot/restore lets characterization
/// warm-start a steady solve from a previously converged nearby operating
/// point instead of pseudo-timestepping from scratch.
struct ThermalState {
  std::vector<double> temps;                   ///< silicon nodes [°C]
  std::vector<std::vector<double>> fluid_temp; ///< [cavity][cell]
  std::vector<double> cavity_absorbed;
  std::vector<double> cavity_outlet;
  double spreader_temp = 0.0;
  double sink_temp = 0.0;
};

struct ThermalModelParams {
  // Grid resolution (per layer).  The paper uses 100 µm cells; the default
  // here (~0.44 mm) keeps half-hour transient sweeps tractable, and the
  // grid-convergence test demonstrates the refinement behaviour.
  std::size_t grid_rows = 23;
  std::size_t grid_cols = 26;

  // Silicon properties (~350 K values).
  double silicon_conductivity = 120.0;              ///< W/(m K)
  double silicon_volumetric_heat_capacity = 1.63e6; ///< J/(m^3 K)

  // Interlayer bond material: Table III resistivity 0.25 (m K)/W -> k = 4.
  double bond_conductivity = 4.0;  ///< W/(m K)

  // Effective conductivity of the cavity's solid (channel-wall) path,
  // silicon walls plus bond interfaces in series.
  double cavity_wall_conductivity = 100.0;  ///< W/(m K)

  // Boundary temperatures [°C].  45 °C reflects warm-water cooling and a
  // within-enclosure ambient; see DESIGN.md calibration notes.
  double inlet_temperature = 45.0;
  double ambient_temperature = 45.0;

  // Microchannel constants (Table I).
  MicrochannelModelParams channel_params{};
  CoolantProperties coolant = CoolantProperties::water();

  // Air package (liquid stacks ignore these).  The sink-to-ambient value is
  // calibrated so the air-cooled 3D stack exhibits the hot-spot rates of
  // Fig. 6; Table III's 0.1 K/W is the bare convection term of that package.
  double tim_thickness = 140e-6;            ///< m (thermal paste bondline)
  double tim_conductivity = 2.0;            ///< W/(m K)
  double spreader_capacitance = 40.0;       ///< J/K
  double sink_capacitance = 140.0;          ///< J/K (Table III)
  double spreader_to_sink_resistance = 0.10; ///< K/W
  double sink_to_ambient_resistance = 0.05;  ///< K/W (calibrated; see above)

  /// Alternate the coolant flow direction of successive cavities
  /// (counterflow routing).  In the *convection-limited* regime (high flow)
  /// this evens the axial gradient; in the *advection-limited* regime this
  /// system operates in (the coolant saturates to wall temperature within a
  /// couple of cells), a reversed middle cavity exhausts at the cold end
  /// and wastes its capacity, raising T_max.  Off by default — the paper
  /// assumes a common inlet side.
  bool alternate_flow_direction = false;

  // Fluid fixed-point iteration (inner loop of each implicit step).
  double fluid_tolerance = 0.005;       ///< K
  std::size_t max_fluid_iterations = 10;
  /// Inner fluid iterations during steady-state pseudo-transient steps; the
  /// silicon<->fluid coupling approaches unit gain at very low flow, so the
  /// steady path gets a larger budget.
  std::size_t steady_fluid_iterations = 40;

  // Steady-state solve: pseudo-transient continuation.  A bare
  // silicon<->fluid alternation loses contraction when the coolant
  // dominates the heat path (low flow, many cavities), so the steady state
  // is reached by backward-Euler steps with a time step far above every
  // system time constant.
  double steady_pseudo_dt = 5.0;        ///< s
  double steady_tolerance = 1e-4;       ///< K
  std::size_t max_steady_iterations = 1500;

  /// Liquid stacks only: solve the steady state directly.  The coolant
  /// march is linear in the wall temperatures, and eliminating it couples
  /// each cell only to upstream cells in its channel row — within the
  /// matrix bandwidth — so one banded-LU solve replaces the whole
  /// pseudo-transient continuation (which this flag falls back to).
  /// Applies to the direct backend; the PCG backend always reaches the
  /// steady state by pseudo-transient continuation (the fluid-eliminated
  /// system is non-symmetric and banded — exactly the O(n b^2) object the
  /// iterative backend exists to avoid).
  bool direct_steady_solver = true;

  /// Linear solver family for the backward-Euler (and steady pseudo-step)
  /// systems.  kAuto resolves per model from the bandwidth x size cost
  /// model in solver/backend.hpp — direct for every current grid, PCG once
  /// the half-bandwidth (cols x layers) makes O(n b^2) factorization the
  /// bottleneck (the paper-native 100 µm regime).
  SolverBackend solver_backend = SolverBackend::kAuto;
  /// Iterative-backend knobs (tolerance, iteration cap, preconditioner).
  PcgParams pcg{};
};

class ThermalModel3D {
 public:
  explicit ThermalModel3D(Stack3D stack, ThermalModelParams params = {});

  // -- Topology ---------------------------------------------------------------
  [[nodiscard]] const Stack3D& stack() const { return stack_; }
  [[nodiscard]] const Grid& grid() const { return grid_; }
  [[nodiscard]] const ThermalModelParams& params() const { return params_; }
  [[nodiscard]] std::size_t layer_count() const { return layer_count_; }
  [[nodiscard]] const BlockCellMap& block_map(std::size_t layer) const {
    return maps_.at(layer);
  }
  [[nodiscard]] std::size_t node_count() const { return node_count_; }

  // -- Inputs -----------------------------------------------------------------
  /// Per-block dissipated power [W] for one layer (arity = block count).
  void set_block_power(std::size_t layer, const std::vector<double>& watts);

  /// Uniform per-cavity volumetric flow (Sec. III-B assumption): broadcasts
  /// one value to every cavity.
  void set_cavity_flow(VolumetricFlow per_cavity);
  /// Per-cavity flow vector (arity = cavity count) — the valve-network
  /// generalization.  Each cavity's value feeds its own fluid march and the
  /// fluid-eliminated steady assembly.
  void set_cavity_flow(const std::vector<VolumetricFlow>& per_cavity);
  /// Flow of one cavity.
  [[nodiscard]] VolumetricFlow cavity_flow(std::size_t cavity) const {
    return cavity_flows_.at(cavity);
  }
  [[nodiscard]] const std::vector<VolumetricFlow>& cavity_flows() const {
    return cavity_flows_;
  }

  /// Override the coolant inlet temperature [°C].
  void set_inlet_temperature(double celsius) { inlet_temperature_ = celsius; }

  // -- Simulation -------------------------------------------------------------
  /// Reset every node (and the package/fluid) to the given temperature [°C].
  void initialize(double temperature_c);

  /// Advance the transient solution by dt seconds (backward Euler).
  void step(double dt_s);

  /// Solve directly for the steady state under the current power and flow.
  /// `pre_step`, when given, runs before every pseudo-transient step — the
  /// hook characterization uses to fold the temperature-dependent leakage
  /// power update into the continuation loop instead of wrapping the whole
  /// solve in an outer fixed point.  Returning false aborts the iteration
  /// (e.g. on detected thermal runaway).
  void solve_steady_state(const std::function<bool()>& pre_step = {});

  // -- Readback ---------------------------------------------------------------
  [[nodiscard]] double cell_temperature(std::size_t layer, std::size_t cell) const;
  /// Worst-case (max-cell) temperature over a block's footprint — what a
  /// per-unit thermal sensor reports.  NOTE: the block readbacks share a
  /// per-model scratch buffer (no per-call allocation), so a model instance
  /// must not be read concurrently from multiple threads — parallel drivers
  /// give each worker its own model.
  [[nodiscard]] double block_temperature(std::size_t layer, std::size_t block) const;
  [[nodiscard]] double block_mean_temperature(std::size_t layer, std::size_t block) const;
  /// Maximum junction temperature anywhere in the stack.
  [[nodiscard]] double max_temperature() const;
  [[nodiscard]] double min_temperature() const;

  /// Maximum junction temperature over the dies a cavity touches (layer
  /// k-1 below and layer k above) — the per-cavity observation the valve
  /// controller steers on [°C].
  [[nodiscard]] double cavity_max_temperature(std::size_t cavity) const;
  /// Per-cavity maxima for all cavities, written into `out` (no allocation
  /// after first use).
  void cavity_max_temperatures(std::vector<double>& out) const;

  /// Mean coolant outlet temperature of a cavity [°C].
  [[nodiscard]] double fluid_outlet_temperature(std::size_t cavity) const;
  /// Heat absorbed by one cavity's coolant [W] (from the last evaluation).
  [[nodiscard]] double cavity_absorbed_power(std::size_t cavity) const;
  /// Heat-sink temperature (air-cooled stacks) [°C].
  [[nodiscard]] double sink_temperature() const { return sink_temp_; }

  /// Total power currently injected [W].
  [[nodiscard]] double total_power() const;

  // -- State snapshot (warm starts) -------------------------------------------
  /// Copy the full dynamic state into `out` (reuses its storage).
  void save_state(ThermalState& out) const;
  /// Restore a state previously captured from this model (or an identically
  /// configured one); sizes must match.
  void restore_state(const ThermalState& state);

  /// Factorization cache statistics (shared by transient and steady solves).
  [[nodiscard]] const FactorizationCache& factorization_cache() const {
    return factor_cache_;
  }

  /// The backend this model resolved to (never kAuto).
  [[nodiscard]] SolverBackend solver_backend() const { return backend_; }
  /// PCG system cache statistics (iterative backend; empty on direct).
  [[nodiscard]] const DtKeyedLruCache<PcgSolver>& pcg_cache() const {
    return pcg_cache_;
  }
  /// Outcome of the most recent PCG solve (iterative backend).
  [[nodiscard]] const PcgSummary& last_pcg() const { return last_pcg_; }

  /// Hash of the conduction topology (capacitances, couplings, external
  /// conductances, grid shape).  Two models with equal fingerprints assemble
  /// bit-identical system matrices for any dt, so one factorization can
  /// serve both — the compatibility check behind BatchThermalStepper.
  [[nodiscard]] std::uint64_t topology_fingerprint() const {
    return topo_fingerprint_;
  }

  /// Export the steady-state linear system A T = p + ref_coef * T_ref for
  /// the *current* flow vector (see thermal/steady_operator.hpp): the
  /// fluid-eliminated operator for liquid stacks (requires nonzero flow in
  /// every cavity), the conduction network plus the two package unknowns
  /// for air stacks.  Offline-path cost (dense band scan); reuses `out`'s
  /// storage.  The exported algebra is exact — the pseudo-transient and
  /// direct steady paths both converge to solutions of this system.
  void export_steady_operator(SteadyOperator& out) const;

 private:
  friend class BatchThermalStepper;
  struct Coupling {
    std::size_t a;
    std::size_t b;
    double g;
  };

  [[nodiscard]] std::size_t node(std::size_t layer, std::size_t cell) const {
    return cell * layer_count_ + layer;
  }

  void build_topology();
  /// Stamp the backward-Euler operator (C/dt + G) into any matrix exposing
  /// add_diagonal/add_coupling — the single assembly both backends share.
  template <typename MatrixT>
  void stamp_system(MatrixT& m, double inv_dt) const;
  void build_matrix(BandedSpdMatrix& m, double inv_dt) const;
  /// CSR twin of build_matrix: the identical operator, assembled by the
  /// same stamp, for the iterative backend.
  void build_sparse_matrix(SparseMatrix& m, double inv_dt) const;
  /// Factorized system matrix for the given step size — a cache lookup
  /// after the first use of each dt (assembly + factorization on miss).
  /// Direct backend only.
  const BandedSpdMatrix& matrix_for_dt(double dt_s);
  /// PCG system (CSR operator + preconditioner) for the given step size —
  /// cached per dt exactly like the banded factorizations.
  PcgSolver& pcg_for_dt(double dt_s);
  /// Assemble the fluid-eliminated steady system (liquid stacks): matrix
  /// over silicon nodes plus each node's coefficient on the inlet
  /// temperature (the constant term the elimination produces).
  void build_steady_direct_system(BandedLuMatrix& m,
                                  std::vector<double>& inlet_coef) const;
  /// Direct steady solve (liquid stacks); see ThermalModelParams.
  void solve_steady_state_direct(const std::function<bool()>& pre_step);
  /// One backward-Euler step (including the fluid fixed point); returns the
  /// largest node temperature change.  `fluid_tol` bounds the inner
  /// silicon<->fluid alternation error for this step.  Dispatches the
  /// linear solves to the resolved backend: the direct path back-substitutes
  /// through the cached factorization, the PCG path iterates warm-started
  /// from the current temperature field.
  double advance(double dt_s, std::size_t fluid_iters, double fluid_tol);
  /// Write the backward-Euler right-hand side (stored heat + injected power
  /// + external coupling terms) into out[i] for node i.  Reads temps_prev_
  /// — callers snapshot temps_ there first.  Shared by the serial advance
  /// and the batch stepper (which interleaves the per-model vectors
  /// afterwards with a tiled transpose).
  void assemble_transient_rhs(double inv_dt, double* out) const;
  /// March the coolant downstream through one cavity given silicon temps.
  /// Returns the largest fluid temperature change.
  double march_fluid(std::size_t cavity);
  double march_all_fluid();
  void update_package_transient(double dt_s);
  void update_package_steady();

  Stack3D stack_;
  ThermalModelParams params_;
  Grid grid_;
  std::vector<BlockCellMap> maps_;
  std::size_t layer_count_;
  std::size_t cell_count_;
  std::size_t node_count_;

  // Static topology.
  std::uint64_t topo_fingerprint_ = 0;
  std::vector<Coupling> couplings_;
  std::vector<double> capacitance_;  ///< per node [J/K]
  std::vector<double> ext_diag_;     ///< per node: total conductance to
                                     ///< external (fluid/package) temps [W/K]
  // Per-cavity convective conductances per cell (uniform over cells).
  double g_fluid_dn_ = 0.0;  ///< cavity fluid <-> layer below (BEOL face)
  double g_fluid_up_ = 0.0;  ///< cavity fluid <-> layer above (slab face)
  double g_package_ = 0.0;   ///< top-layer cell <-> spreader (air only)

  // State.
  std::vector<double> temps_;       ///< silicon node temperatures [°C]
  std::vector<double> cell_power_;  ///< per node injected power [W]
  std::vector<std::vector<double>> fluid_temp_;  ///< [cavity][cell]
  std::vector<double> cavity_absorbed_;          ///< [cavity] W
  std::vector<double> cavity_outlet_;            ///< [cavity] mean outlet °C
  double spreader_temp_ = 45.0;
  double sink_temp_ = 45.0;
  double inlet_temperature_;
  std::vector<VolumetricFlow> cavity_flows_;  ///< [cavity]

  // Resolved solver backend (kAuto is decided at construction, before the
  // topology fingerprint is computed — the fingerprint mixes it in, so
  // batch groups are backend-homogeneous).
  SolverBackend backend_ = SolverBackend::kDirect;

  // Cached factorizations, keyed by dt (transient sub-steps and the steady
  // pseudo-step share one cache; see FactorizationCache for the tolerant
  // key comparison that replaced the seed's exact `transient_dt_ == dt_s`).
  FactorizationCache factor_cache_{4};
  // Iterative-backend twin: PCG systems (CSR + preconditioner) per dt.
  DtKeyedLruCache<PcgSolver> pcg_cache_{4};
  PcgSummary last_pcg_{};
  // Direct steady system, cached per flow *vector* (the elimination
  // coefficients depend on every cavity's flow; conduction topology does
  // not).  A change to any single cavity's flow invalidates the cache.
  std::unique_ptr<BandedLuMatrix> steady_direct_;
  std::vector<double> steady_inlet_coef_;
  std::vector<double> steady_direct_flows_;  ///< ml/min key; empty = not built

  // Persistent scratch — the hot loop (`step`/`advance`) and the per-sample
  // readbacks must not touch the heap after warm-up.
  std::vector<double> rhs_;
  std::vector<double> temps_prev_;
  std::vector<double> pcg_x_;  ///< PCG solution buffer (warm-start copy)
  mutable std::vector<double> layer_scratch_;
  std::vector<double> block_power_scratch_;
};

}  // namespace liquid3d
