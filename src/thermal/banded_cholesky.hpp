// banded_cholesky.hpp — symmetric positive-definite banded direct solver.
//
// The 3D thermal grid, ordered column-of-cells-major with layers innermost,
// produces an SPD matrix with half-bandwidth cols x layers.  Backward-Euler
// stepping solves with the same matrix thousands of times, so we factorize
// once (O(n b^2)) and back-substitute per step (O(n b)).
#pragma once

#include <cstddef>
#include <vector>

namespace liquid3d {

/// Lower-banded storage: element (i, j) with i-b <= j <= i lives at
/// band_[i * (b+1) + (j - i + b)].
class BandedSpdMatrix {
 public:
  BandedSpdMatrix(std::size_t n, std::size_t half_bandwidth);

  [[nodiscard]] std::size_t size() const { return n_; }
  [[nodiscard]] std::size_t half_bandwidth() const { return b_; }

  /// Access A(i, j) for j in [i - b, i]; callers must keep j <= i.
  [[nodiscard]] double& at(std::size_t i, std::size_t j);
  [[nodiscard]] double at(std::size_t i, std::size_t j) const;

  /// Symmetric accumulate: adds g to A(i,i) and A(j,j), -g to A(max,min).
  void add_coupling(std::size_t i, std::size_t j, double g);
  /// Adds g to the diagonal A(i,i).
  void add_diagonal(std::size_t i, double g);

  void set_zero();

  /// In-place Cholesky A = L L^T.  Throws LogicError if a pivot is not
  /// positive (matrix not SPD — indicates a malformed thermal network).
  void factorize();
  [[nodiscard]] bool factorized() const { return factorized_; }

  /// Solve A x = rhs using the factorization (rhs is overwritten with x).
  void solve(std::vector<double>& rhs) const;

 private:
  std::size_t n_;
  std::size_t b_;
  std::vector<double> band_;
  bool factorized_ = false;
};

}  // namespace liquid3d
