// banded_cholesky.hpp — compatibility forward to the solver engine.
//
// The banded SPD solver moved to thermal/solver/ (column-major band
// storage, multi-RHS batching, factorization cache); this header keeps the
// original include path working.
#pragma once

#include "thermal/solver/banded_spd.hpp"  // IWYU pragma: export
