#include "thermal/model3d.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>
#include <map>
#include <memory>

#include "common/error.hpp"
#include "obs/metrics.hpp"

namespace liquid3d {

namespace {
/// Fraction of the die footprint that lies over channel structures: the
/// 65 channels at pitch p cover 65 * p of the die height (Sec. III-A).
double channel_coverage(const CavitySpec& cavity, double die_height) {
  return std::min(1.0, static_cast<double>(cavity.channel_count) * cavity.pitch /
                           die_height);
}

// FNV-1a over 64-bit words; the topology fingerprint hashes the exact bit
// patterns of every quantity that enters build_matrix, so equal fingerprints
// imply bit-identical system matrices.
constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ULL;
constexpr std::uint64_t kFnvPrime = 0x100000001b3ULL;

void fnv_mix(std::uint64_t& h, std::uint64_t word) {
  for (int shift = 0; shift < 64; shift += 8) {
    h ^= (word >> shift) & 0xffULL;
    h *= kFnvPrime;
  }
}

/// Sum-then-test: one pass, and NaN/Inf anywhere poisons the sum, so a
/// single isfinite() check covers the whole vector.
void require_finite(const double* v, std::size_t n, const char* what) {
  double sum = 0.0;
  for (std::size_t i = 0; i < n; ++i) sum += v[i];
  if (!std::isfinite(sum)) throw SolverError(what);
}

void fnv_mix(std::uint64_t& h, double v) {
  std::uint64_t bits;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  fnv_mix(h, bits);
}
}  // namespace

ThermalModel3D::ThermalModel3D(Stack3D stack, ThermalModelParams params)
    : stack_(std::move(stack)),
      params_(params),
      grid_(params.grid_rows, params.grid_cols, stack_.width(), stack_.height()),
      layer_count_(stack_.layer_count()),
      cell_count_(grid_.cell_count()),
      node_count_(stack_.layer_count() * grid_.cell_count()),
      inlet_temperature_(params.inlet_temperature) {
  LIQUID3D_REQUIRE(layer_count_ >= 1, "stack must have at least one layer");
  backend_ = resolve_solver_backend(params_.solver_backend, node_count_,
                                    grid_.cols() * layer_count_);
  maps_.reserve(layer_count_);
  for (std::size_t l = 0; l < layer_count_; ++l) {
    maps_.emplace_back(grid_, stack_.layer(l).floorplan);
  }
  temps_.assign(node_count_, params_.ambient_temperature);
  cell_power_.assign(node_count_, 0.0);
  rhs_.assign(node_count_, 0.0);
  temps_prev_.assign(node_count_, 0.0);
  if (backend_ == SolverBackend::kPcg) pcg_x_.assign(node_count_, 0.0);
  layer_scratch_.assign(cell_count_, 0.0);
  if (stack_.has_cavities()) {
    fluid_temp_.assign(stack_.cavity_count(),
                       std::vector<double>(cell_count_, inlet_temperature_));
    cavity_absorbed_.assign(stack_.cavity_count(), 0.0);
    cavity_outlet_.assign(stack_.cavity_count(), inlet_temperature_);
    cavity_flows_.assign(stack_.cavity_count(), VolumetricFlow{});
  }
  spreader_temp_ = params_.ambient_temperature;
  sink_temp_ = params_.ambient_temperature;
  build_topology();
}

void ThermalModel3D::build_topology() {
  capacitance_.assign(node_count_, 0.0);
  ext_diag_.assign(node_count_, 0.0);
  couplings_.clear();

  const double a_cell = grid_.cell_area();
  const double k_si = params_.silicon_conductivity;

  // Per-node heat capacity: silicon cell volume, plus (for liquid stacks)
  // the thermal mass of the adjacent interlayer cavities — the etched
  // channel walls and the coolant held in the channels move with the die
  // temperature and roughly triple the per-cell mass.  Each cavity's mass is
  // split between the two dies it touches (edge cavities give their full
  // share to their single die).
  for (std::size_t l = 0; l < layer_count_; ++l) {
    const double c_node =
        params_.silicon_volumetric_heat_capacity * a_cell * stack_.layer(l).die_thickness;
    for (std::size_t cell = 0; cell < cell_count_; ++cell) {
      capacitance_[node(l, cell)] = c_node;
    }
  }
  if (stack_.has_cavities()) {
    const CavitySpec& cav = stack_.cavity();
    const double coverage = channel_coverage(cav, stack_.height());
    const double solid_frac = 1.0 - coverage * (cav.channel_width / cav.pitch);
    const double c_solid = params_.silicon_volumetric_heat_capacity * a_cell *
                           cav.cavity_thickness * solid_frac;
    const double c_fluid = params_.coolant.volumetric_heat_capacity() * a_cell *
                           cav.channel_height * coverage *
                           (cav.channel_width / cav.pitch);
    const double c_cavity = c_solid + c_fluid;
    for (std::size_t l = 0; l < layer_count_; ++l) {
      // Cavity below (index l) and above (index l+1); interior cavities are
      // shared between two dies.
      const double share_below = (l == 0) ? 1.0 : 0.5;
      const double share_above = (l == layer_count_ - 1) ? 1.0 : 0.5;
      for (std::size_t cell = 0; cell < cell_count_; ++cell) {
        capacitance_[node(l, cell)] += c_cavity * (share_below + share_above);
      }
    }
  }

  // Lateral conduction.
  for (std::size_t l = 0; l < layer_count_; ++l) {
    const double t_die = stack_.layer(l).die_thickness;
    const double g_col = k_si * grid_.cell_height() * t_die / grid_.cell_width();
    const double g_row = k_si * grid_.cell_width() * t_die / grid_.cell_height();
    for (std::size_t r = 0; r < grid_.rows(); ++r) {
      for (std::size_t c = 0; c < grid_.cols(); ++c) {
        const std::size_t cell = grid_.index(r, c);
        if (c + 1 < grid_.cols()) {
          couplings_.push_back({node(l, cell), node(l, grid_.index(r, c + 1)), g_col});
        }
        if (r + 1 < grid_.rows()) {
          couplings_.push_back({node(l, cell), node(l, grid_.index(r + 1, c)), g_row});
        }
      }
    }
  }

  // TSV footprint: per-cell share of the crossbar TSV bundle.  All layers
  // share the crossbar rect by construction; use layer 0's.
  std::vector<double> tsv_area_cell(cell_count_, 0.0);
  {
    const Floorplan& fp = stack_.layer(0).floorplan;
    for (const Block& b : fp.blocks()) {
      if (b.type != BlockType::kCrossbar) continue;
      for (std::size_t cell = 0; cell < cell_count_; ++cell) {
        const double overlap = b.rect.overlap_area(grid_.cell_rect(cell));
        if (overlap > 0.0) {
          tsv_area_cell[cell] +=
              stack_.tsvs().total_area() * overlap / b.rect.area();
        }
      }
    }
  }

  // Vertical conduction between adjacent layers and external couplings.
  const bool liquid = stack_.has_cavities();
  const double coverage =
      liquid ? channel_coverage(stack_.cavity(), stack_.height()) : 0.0;

  // Per-cell series resistances on the die faces.
  auto r_beol_cell = [&](std::size_t l) {
    return MicrochannelModelParams{stack_.layer(l).beol_thickness,
                                   params_.channel_params.beol_conductivity,
                                   params_.channel_params.heat_transfer_coeff}
               .r_beol_area() /
           a_cell;
  };
  auto r_slab_cell = [&](std::size_t l) {
    return stack_.layer(l).die_thickness / (k_si * a_cell);
  };

  if (liquid) {
    const CavitySpec& cav = stack_.cavity();
    const MicrochannelModel channels(cav, params_.coolant, params_.channel_params);
    // Convective resistance over the channeled share of a cell's footprint.
    const double r_conv_cell = 1.0 / (channels.h_eff() * a_cell * coverage);
    // Couplings identical for all layers (same thickness); use layer 0.
    g_fluid_dn_ = 1.0 / (r_beol_cell(0) + r_conv_cell);
    g_fluid_up_ = 1.0 / (r_slab_cell(0) + r_conv_cell);

    // Solid channel-wall path area fraction: outside the channeled band the
    // full cell is solid; inside it, walls occupy (1 - w_c/p).
    const double solid_frac = 1.0 - coverage * (cav.channel_width / cav.pitch);
    for (std::size_t l = 0; l + 1 < layer_count_; ++l) {
      for (std::size_t cell = 0; cell < cell_count_; ++cell) {
        const double g_wall = params_.cavity_wall_conductivity * a_cell * solid_frac /
                              cav.cavity_thickness;
        const double g_tsv =
            stack_.tsvs().cu_conductivity * tsv_area_cell[cell] / cav.cavity_thickness;
        const double r_mid = 1.0 / (g_wall + g_tsv);
        const double g =
            1.0 / (r_beol_cell(l) + r_mid + r_slab_cell(l + 1));
        couplings_.push_back({node(l, cell), node(l + 1, cell), g});
      }
    }

    // External (fluid) conductance totals per node: cavity k couples layer
    // k-1 through its BEOL face (g_dn) and layer k through its slab (g_up).
    for (std::size_t k = 0; k <= layer_count_; ++k) {
      if (k >= 1) {
        for (std::size_t cell = 0; cell < cell_count_; ++cell) {
          ext_diag_[node(k - 1, cell)] += g_fluid_dn_;
        }
      }
      if (k < layer_count_) {
        for (std::size_t cell = 0; cell < cell_count_; ++cell) {
          ext_diag_[node(k, cell)] += g_fluid_up_;
        }
      }
    }
  } else {
    // Air-cooled: bond material between dies, package on top.
    const double t_bond = stack_.bond_thickness();
    const double k_bond = params_.bond_conductivity;
    for (std::size_t l = 0; l + 1 < layer_count_; ++l) {
      for (std::size_t cell = 0; cell < cell_count_; ++cell) {
        const double g_bond = k_bond * a_cell / t_bond;
        const double g_tsv =
            stack_.tsvs().cu_conductivity * tsv_area_cell[cell] / t_bond;
        const double r_mid = 1.0 / (g_bond + g_tsv);
        const double g = 1.0 / (r_beol_cell(l) + r_mid + r_slab_cell(l + 1));
        couplings_.push_back({node(l, cell), node(l + 1, cell), g});
      }
    }
    // Top layer -> spreader through BEOL + TIM.
    const double r_tim_cell = params_.tim_thickness / (params_.tim_conductivity * a_cell);
    g_package_ = 1.0 / (r_beol_cell(layer_count_ - 1) + r_tim_cell);
    for (std::size_t cell = 0; cell < cell_count_; ++cell) {
      ext_diag_[node(layer_count_ - 1, cell)] += g_package_;
    }
  }

  // Fingerprint everything build_matrix consumes (plus the shape and the
  // fluid/package coupling constants, which enter the RHS).  The resolved
  // solver backend is mixed in too: equal fingerprints promise that the
  // batch stepper can advance the models identically, which holds only
  // within one backend.
  std::uint64_t h = kFnvOffset;
  fnv_mix(h, static_cast<std::uint64_t>(backend_));
  // The canonical geometry fingerprint guards against distinct stacks whose
  // discretized networks happen to coincide at this grid resolution.
  fnv_mix(h, stack_fingerprint(stack_));
  fnv_mix(h, static_cast<std::uint64_t>(layer_count_));
  fnv_mix(h, static_cast<std::uint64_t>(grid_.rows()));
  fnv_mix(h, static_cast<std::uint64_t>(grid_.cols()));
  fnv_mix(h, static_cast<std::uint64_t>(liquid ? 1 : 0));
  for (double c : capacitance_) fnv_mix(h, c);
  for (double g : ext_diag_) fnv_mix(h, g);
  for (const Coupling& c : couplings_) {
    fnv_mix(h, static_cast<std::uint64_t>(c.a));
    fnv_mix(h, static_cast<std::uint64_t>(c.b));
    fnv_mix(h, c.g);
  }
  fnv_mix(h, g_fluid_dn_);
  fnv_mix(h, g_fluid_up_);
  fnv_mix(h, g_package_);
  topo_fingerprint_ = h;
}

void ThermalModel3D::set_block_power(std::size_t layer, const std::vector<double>& watts) {
  LIQUID3D_REQUIRE(layer < layer_count_, "layer index out of range");
  const BlockCellMap& map = maps_[layer];
  LIQUID3D_REQUIRE(watts.size() == map.block_count(), "block power arity mismatch");
  for (std::size_t cell = 0; cell < cell_count_; ++cell) {
    cell_power_[node(layer, cell)] = 0.0;
  }
  for (std::size_t b = 0; b < watts.size(); ++b) {
    // Non-finite power is a numerical blowup upstream (a diverged power
    // model), not a malformed configuration — keep it out of ConfigError's
    // `>= 0` check (NaN >= 0.0 is false) so it classifies as retriable.
    if (!std::isfinite(watts[b])) {
      throw SolverError("block power input is non-finite");
    }
    LIQUID3D_REQUIRE(watts[b] >= 0.0, "block power must be non-negative");
    for (const BlockCellMap::CellShare& share : map.cells_of(b)) {
      cell_power_[node(layer, share.cell)] += watts[b] * share.weight;
    }
  }
}

void ThermalModel3D::set_cavity_flow(VolumetricFlow per_cavity) {
  LIQUID3D_REQUIRE(stack_.has_cavities(), "flow only applies to liquid stacks");
  LIQUID3D_REQUIRE(per_cavity.m3_per_s() >= 0.0, "flow must be non-negative");
  std::fill(cavity_flows_.begin(), cavity_flows_.end(), per_cavity);
}

void ThermalModel3D::set_cavity_flow(const std::vector<VolumetricFlow>& per_cavity) {
  LIQUID3D_REQUIRE(stack_.has_cavities(), "flow only applies to liquid stacks");
  LIQUID3D_REQUIRE(per_cavity.size() == stack_.cavity_count(),
                   "flow vector arity must equal the cavity count");
  for (const VolumetricFlow& f : per_cavity) {
    LIQUID3D_REQUIRE(f.m3_per_s() >= 0.0, "flow must be non-negative");
  }
  cavity_flows_.assign(per_cavity.begin(), per_cavity.end());
}

void ThermalModel3D::initialize(double temperature_c) {
  std::fill(temps_.begin(), temps_.end(), temperature_c);
  for (auto& cavity : fluid_temp_) {
    std::fill(cavity.begin(), cavity.end(), inlet_temperature_);
  }
  std::fill(cavity_absorbed_.begin(), cavity_absorbed_.end(), 0.0);
  std::fill(cavity_outlet_.begin(), cavity_outlet_.end(), inlet_temperature_);
  spreader_temp_ = params_.ambient_temperature;
  sink_temp_ = params_.ambient_temperature;
}

// One stamping routine serves both backends (their matrix types share the
// add_diagonal/add_coupling interface on purpose): the direct and iterative
// paths must assemble the identical operator, and a single stamp keeps an
// assembly change from reaching one backend but not the other.
template <typename MatrixT>
void ThermalModel3D::stamp_system(MatrixT& m, double inv_dt) const {
  for (std::size_t i = 0; i < node_count_; ++i) {
    m.add_diagonal(i, capacitance_[i] * inv_dt + ext_diag_[i]);
  }
  for (const Coupling& c : couplings_) {
    m.add_coupling(c.a, c.b, c.g);
  }
}

void ThermalModel3D::build_matrix(BandedSpdMatrix& m, double inv_dt) const {
  m.set_zero();
  stamp_system(m, inv_dt);
}

const BandedSpdMatrix& ThermalModel3D::matrix_for_dt(double dt_s) {
  if (const BandedSpdMatrix* cached = factor_cache_.find(dt_s)) return *cached;
  static obs::Histogram& assemble_h =
      obs::Registry::global().histogram("liquid3d_solver_assemble_seconds");
  static obs::Histogram& factorize_h =
      obs::Registry::global().histogram("liquid3d_solver_factorize_seconds");
  const std::size_t bw = grid_.cols() * layer_count_;
  auto m = std::make_unique<BandedSpdMatrix>(node_count_, bw);
  {
    obs::ScopedTimer t(assemble_h);
    build_matrix(*m, 1.0 / dt_s);
  }
  {
    obs::ScopedTimer t(factorize_h);
    m->factorize();
  }
  return factor_cache_.insert(dt_s, std::move(m));
}

void ThermalModel3D::build_sparse_matrix(SparseMatrix& m, double inv_dt) const {
  stamp_system(m, inv_dt);
}

PcgSolver& ThermalModel3D::pcg_for_dt(double dt_s) {
  if (PcgSolver* cached = pcg_cache_.find(dt_s)) return *cached;
  static obs::Histogram& assemble_h =
      obs::Registry::global().histogram("liquid3d_solver_assemble_seconds");
  obs::ScopedTimer assemble_t(assemble_h);
  SparseMatrix a(node_count_);
  build_sparse_matrix(a, 1.0 / dt_s);
  a.finalize();
  assemble_t.stop();
  return pcg_cache_.insert(dt_s,
                           std::make_unique<PcgSolver>(std::move(a), params_.pcg));
}

double ThermalModel3D::march_fluid(std::size_t cavity) {
  auto& fluid = fluid_temp_[cavity];
  const double w_cavity = params_.coolant.volumetric_heat_capacity() *
                          cavity_flows_[cavity].m3_per_s();
  const double w_row = w_cavity / static_cast<double>(grid_.rows());
  const bool has_below = cavity >= 1;
  const bool has_above = cavity < layer_count_;
  const double g_dn = has_below ? g_fluid_dn_ : 0.0;
  const double g_up = has_above ? g_fluid_up_ : 0.0;
  const double g_sum = g_dn + g_up;
  // Per-cavity loop invariants, hoisted by hand: the compiler must not
  // replace a division by a reciprocal multiply on its own (the rounding
  // differs), and three divisions per cell dominated the march.
  const bool flowing = w_row > 1e-12;
  const double inv_denom =
      flowing ? 1.0 / (1.0 + g_sum / (2.0 * w_row)) : 0.0;
  const double inv_w = flowing ? 1.0 / w_row : 0.0;
  const double half_inv_w = 0.5 * inv_w;

  // Counterflow routing: odd cavities flow -x (inlet at the right edge).
  const bool reverse = params_.alternate_flow_direction && (cavity % 2 == 1);

  double max_delta = 0.0;
  double absorbed = 0.0;
  double outlet_acc = 0.0;
  for (std::size_t r = 0; r < grid_.rows(); ++r) {
    double t_in = inlet_temperature_;
    for (std::size_t ci = 0; ci < grid_.cols(); ++ci) {
      const std::size_t c = reverse ? grid_.cols() - 1 - ci : ci;
      const std::size_t cell = grid_.index(r, c);
      const double t_below = has_below ? temps_[node(cavity - 1, cell)] : 0.0;
      const double t_above = has_above ? temps_[node(cavity, cell)] : 0.0;
      double t_f;
      if (w_row > 1e-12) {
        // Heat balance with the cell-mean fluid temperature
        // T_f = T_in + q/(2W):  q (1 + G/(2W)) = Σ g_i T_wall_i - G T_in.
        const double num = g_dn * t_below + g_up * t_above - g_sum * t_in;
        const double q = num * inv_denom;
        t_f = t_in + q * half_inv_w;
        t_in += q * inv_w;
        absorbed += q;
      } else {
        // Stagnant coolant: pure conduction equilibrium between the walls.
        t_f = g_sum > 0.0 ? (g_dn * t_below + g_up * t_above) / g_sum
                          : inlet_temperature_;
      }
      max_delta = std::max(max_delta, std::abs(t_f - fluid[cell]));
      fluid[cell] = t_f;
    }
    outlet_acc += t_in;
  }
  cavity_absorbed_[cavity] = absorbed;
  cavity_outlet_[cavity] = outlet_acc / static_cast<double>(grid_.rows());
  return max_delta;
}

double ThermalModel3D::march_all_fluid() {
  double max_delta = 0.0;
  for (std::size_t k = 0; k < fluid_temp_.size(); ++k) {
    max_delta = std::max(max_delta, march_fluid(k));
  }
  return max_delta;
}

void ThermalModel3D::assemble_transient_rhs(double inv_dt, double* out) const {
  // Stored heat + injected power + external couplings.
  for (std::size_t i = 0; i < node_count_; ++i) {
    out[i] = capacitance_[i] * inv_dt * temps_prev_[i] + cell_power_[i];
  }
  if (stack_.has_cavities()) {
    for (std::size_t k = 0; k <= layer_count_; ++k) {
      const auto& fluid = fluid_temp_[k];
      if (k >= 1) {
        for (std::size_t cell = 0; cell < cell_count_; ++cell) {
          out[node(k - 1, cell)] += g_fluid_dn_ * fluid[cell];
        }
      }
      if (k < layer_count_) {
        for (std::size_t cell = 0; cell < cell_count_; ++cell) {
          out[node(k, cell)] += g_fluid_up_ * fluid[cell];
        }
      }
    }
  } else {
    for (std::size_t cell = 0; cell < cell_count_; ++cell) {
      out[node(layer_count_ - 1, cell)] += g_package_ * spreader_temp_;
    }
  }
}

double ThermalModel3D::advance(double dt_s, std::size_t fluid_iters,
                               double fluid_tol) {
  const double inv_dt = 1.0 / dt_s;
  const BandedSpdMatrix* direct =
      backend_ == SolverBackend::kDirect ? &matrix_for_dt(dt_s) : nullptr;
  PcgSolver* pcg = direct ? nullptr : &pcg_for_dt(dt_s);
  temps_prev_.assign(temps_.begin(), temps_.end());
  const bool liquid = stack_.has_cavities();
  const std::size_t max_iters = liquid ? fluid_iters : 1;

  for (std::size_t iter = 0; iter < max_iters; ++iter) {
    assemble_transient_rhs(inv_dt, rhs_.data());
    // A single NaN/Inf in the RHS (a power-model blowup, a diverged fluid
    // state) would silently poison the entire field through the solve;
    // catch it at the boundary where the cause is still nameable.
    require_finite(rhs_.data(), node_count_,
                   "assembled backward-Euler RHS contains non-finite values "
                   "(check power inputs and fluid state)");
    if (direct) {
      static obs::Histogram& solve_h = obs::Registry::global().histogram(
          "liquid3d_solver_direct_solve_seconds");
      {
        obs::ScopedTimer t(solve_h);
        direct->solve(rhs_);
      }
      temps_.swap(rhs_);
    } else {
      // Warm-start from the current field: across fluid iterations (and
      // across steps) the solution moves by fractions of a kelvin, so the
      // iterative solve needs a handful of iterations, not a cold start's.
      pcg_x_.assign(temps_.begin(), temps_.end());
      last_pcg_ = pcg->solve(rhs_.data(), pcg_x_.data());
      // An iterate that stalled at the iteration cap is not a solution;
      // accepting it silently would corrupt every sample and policy
      // decision built on the field.  SolverError, not ConfigError or
      // LogicError: the configuration is well-formed and the code is not
      // buggy — the system is ill-conditioned for the configured budget,
      // and callers (the sweep worker's quarantine ladder) may retry with
      // another backend or a relaxed tolerance.
      if (!last_pcg_.converged) {
        throw SolverError(
            "PCG transient step did not converge within max_iterations; "
            "raise ThermalModelParams::pcg.max_iterations or loosen the "
            "tolerance",
            "pcg", last_pcg_.iterations, last_pcg_.relative_residual);
      }
      temps_.swap(pcg_x_);
    }
    require_finite(temps_.data(), node_count_,
                   "linear solve produced non-finite temperatures");
    if (!liquid) break;
    const double delta = march_all_fluid();
    if (delta < fluid_tol) break;
  }

  double change = 0.0;
  for (std::size_t i = 0; i < node_count_; ++i) {
    change = std::max(change, std::abs(temps_[i] - temps_prev_[i]));
  }
  return change;
}

void ThermalModel3D::step(double dt_s) {
  LIQUID3D_REQUIRE(dt_s > 0.0, "time step must be positive");
  advance(dt_s, params_.max_fluid_iterations, params_.fluid_tolerance);
  if (!stack_.has_cavities()) update_package_transient(dt_s);
}

void ThermalModel3D::update_package_transient(double dt_s) {
  // Explicit update is stable here: the package time constants (seconds) are
  // far above the step size.
  double q_in = 0.0;
  for (std::size_t cell = 0; cell < cell_count_; ++cell) {
    q_in += g_package_ * (temps_[node(layer_count_ - 1, cell)] - spreader_temp_);
  }
  const double q_ss = (spreader_temp_ - sink_temp_) / params_.spreader_to_sink_resistance;
  const double q_sa = (sink_temp_ - params_.ambient_temperature) /
                      params_.sink_to_ambient_resistance;
  spreader_temp_ += dt_s * (q_in - q_ss) / params_.spreader_capacitance;
  sink_temp_ += dt_s * (q_ss - q_sa) / params_.sink_capacitance;
}

void ThermalModel3D::update_package_steady() {
  double g_total = 0.0;
  double gt_total = 0.0;
  for (std::size_t cell = 0; cell < cell_count_; ++cell) {
    g_total += g_package_;
    gt_total += g_package_ * temps_[node(layer_count_ - 1, cell)];
  }
  const double g_ss = 1.0 / params_.spreader_to_sink_resistance;
  const double g_sa = 1.0 / params_.sink_to_ambient_resistance;
  // Two-node linear balance, solved exactly.
  //   (g_total + g_ss) T_spr - g_ss T_sink = gt_total
  //   -g_ss T_spr + (g_ss + g_sa) T_sink  = g_sa T_amb
  const double a11 = g_total + g_ss;
  const double a22 = g_ss + g_sa;
  const double det = a11 * a22 - g_ss * g_ss;
  spreader_temp_ =
      (gt_total * a22 + g_ss * g_sa * params_.ambient_temperature) / det;
  sink_temp_ = (a11 * g_sa * params_.ambient_temperature + g_ss * gt_total) / det;
}

void ThermalModel3D::build_steady_direct_system(BandedLuMatrix& m,
                                                std::vector<double>& inlet_coef) const {
  m.set_zero();
  inlet_coef.assign(node_count_, 0.0);
  // Conduction network (no capacitance term: this is the true steady state,
  // not a pseudo-transient step).
  for (const Coupling& c : couplings_) {
    m.add(c.a, c.a, c.g);
    m.add(c.b, c.b, c.g);
    m.add(c.a, c.b, -c.g);
    m.add(c.b, c.a, -c.g);
  }
  // Fluid elimination.  Per channel row the march is an affine recursion in
  // the wall temperatures (see march_fluid):
  //   q_c    = (g_dn T_dn,c + g_up T_up,c - g_sum T_in,c) / denom
  //   T_f,c  = s2 T_in,c + d2 T_dn,c + u2 T_up,c
  //   T_in,c+1 = s T_in,c + d T_dn,c + u T_up,c
  // so each cell's fluid temperature is a closed-form linear combination of
  // the inlet and the upstream wall temperatures, and the convective term
  // g_w (T_wall - T_f) becomes ordinary matrix couplings plus an inlet
  // constant — all within the band, since upstream cells of the same row
  // are at most (cols-1)*layers node indices away.
  std::vector<double> coef_dn(cell_count_, 0.0);
  std::vector<double> coef_up(cell_count_, 0.0);
  for (std::size_t k = 0; k < stack_.cavity_count(); ++k) {
    const double w_cavity =
        params_.coolant.volumetric_heat_capacity() * cavity_flows_[k].m3_per_s();
    const double w_row = w_cavity / static_cast<double>(grid_.rows());
    LIQUID3D_ASSERT(w_row > 1e-12, "direct steady solve requires nonzero flow");
    const bool has_below = k >= 1;
    const bool has_above = k < layer_count_;
    const double g_dn = has_below ? g_fluid_dn_ : 0.0;
    const double g_up = has_above ? g_fluid_up_ : 0.0;
    const double g_sum = g_dn + g_up;
    const double denom = 1.0 + g_sum / (2.0 * w_row);
    const double s = 1.0 - g_sum / (w_row * denom);
    const double d = g_dn / (w_row * denom);
    const double u = g_up / (w_row * denom);
    const double s2 = 1.0 - g_sum / (2.0 * w_row * denom);
    const double d2 = g_dn / (2.0 * w_row * denom);
    const double u2 = g_up / (2.0 * w_row * denom);
    const bool reverse = params_.alternate_flow_direction && (k % 2 == 1);
    for (std::size_t r = 0; r < grid_.rows(); ++r) {
      double alpha = 1.0;  // T_in coefficient on the inlet temperature
      std::vector<std::size_t> upstream;  // visited cells, march order
      upstream.reserve(grid_.cols());
      for (std::size_t ci = 0; ci < grid_.cols(); ++ci) {
        const std::size_t c = reverse ? grid_.cols() - 1 - ci : ci;
        const std::size_t cell = grid_.index(r, c);
        // Couple both walls of this cell to T_f,c's expansion.
        for (int face = 0; face < 2; ++face) {
          const bool is_dn = face == 0;
          if (is_dn ? !has_below : !has_above) continue;
          const double g_w = is_dn ? g_dn : g_up;
          const std::size_t wall = is_dn ? node(k - 1, cell) : node(k, cell);
          m.add(wall, wall, g_w);  // the g_w T_wall term
          // -g_w T_f,c: current cell's walls...
          if (has_below) m.add(wall, node(k - 1, cell), -g_w * d2);
          if (has_above) m.add(wall, node(k, cell), -g_w * u2);
          // ...the upstream walls through T_in,c...
          for (const std::size_t cu : upstream) {
            if (has_below && coef_dn[cu] != 0.0) {
              m.add(wall, node(k - 1, cu), -g_w * s2 * coef_dn[cu]);
            }
            if (has_above && coef_up[cu] != 0.0) {
              m.add(wall, node(k, cu), -g_w * s2 * coef_up[cu]);
            }
          }
          // ...and the inlet constant.
          inlet_coef[wall] += g_w * s2 * alpha;
        }
        // Advance the T_in recursion past this cell.
        alpha *= s;
        for (const std::size_t cu : upstream) {
          coef_dn[cu] *= s;
          coef_up[cu] *= s;
        }
        coef_dn[cell] = d;
        coef_up[cell] = u;
        upstream.push_back(cell);
      }
      for (const std::size_t cu : upstream) {
        coef_dn[cu] = 0.0;
        coef_up[cu] = 0.0;
      }
    }
  }
}

void ThermalModel3D::export_steady_operator(SteadyOperator& out) const {
  const bool liquid = stack_.has_cavities();
  out.nodes = liquid ? node_count_ : node_count_ + 2;
  out.silicon_nodes = node_count_;
  out.layer_count = layer_count_;
  out.liquid = liquid;
  out.t_ref = liquid ? inlet_temperature_ : params_.ambient_temperature;
  out.row_ptr.clear();
  out.col.clear();
  out.val.clear();
  out.row_ptr.reserve(out.nodes + 1);

  if (liquid) {
    for (const VolumetricFlow& f : cavity_flows_) {
      LIQUID3D_REQUIRE(f.m3_per_s() > 0.0,
                       "steady operator export requires nonzero flow in "
                       "every cavity");
    }
    // The fluid-eliminated assembly is exact algebra for any flow (only the
    // unpivoted *factorization* needs diagonal dominance, and the export
    // never factorizes), so the operator is valid in the advection-limited
    // regime too — where solve_steady_state reaches the same solution by
    // pseudo-transient continuation.
    const std::size_t bw = grid_.cols() * layer_count_;
    BandedLuMatrix m(node_count_, bw, bw);
    build_steady_direct_system(m, out.ref_coef);
    out.row_ptr.push_back(0);
    for (std::size_t i = 0; i < node_count_; ++i) {
      const std::size_t j0 = i >= bw ? i - bw : 0;
      const std::size_t j1 = std::min(node_count_ - 1, i + bw);
      for (std::size_t j = j0; j <= j1; ++j) {
        const double v = m.at(i, j);
        if (v != 0.0) {
          out.col.push_back(j);
          out.val.push_back(v);
        }
      }
      out.row_ptr.push_back(out.col.size());
    }
  } else {
    // Silicon conduction network plus the two-node package (spreader, sink)
    // appended as unknowns — the coupled system update_package_steady and
    // the pseudo-transient continuation jointly converge to.
    const std::size_t spr = node_count_;
    const std::size_t snk = node_count_ + 1;
    std::vector<std::map<std::size_t, double>> rows(out.nodes);
    const auto add = [&rows](std::size_t i, std::size_t j, double v) {
      rows[i][j] += v;
    };
    for (const Coupling& c : couplings_) {
      add(c.a, c.a, c.g);
      add(c.b, c.b, c.g);
      add(c.a, c.b, -c.g);
      add(c.b, c.a, -c.g);
    }
    for (std::size_t cell = 0; cell < cell_count_; ++cell) {
      const std::size_t i = node(layer_count_ - 1, cell);
      add(i, i, g_package_);
      add(i, spr, -g_package_);
      add(spr, i, -g_package_);
      add(spr, spr, g_package_);
    }
    const double g_ss = 1.0 / params_.spreader_to_sink_resistance;
    const double g_sa = 1.0 / params_.sink_to_ambient_resistance;
    add(spr, spr, g_ss);
    add(spr, snk, -g_ss);
    add(snk, spr, -g_ss);
    add(snk, snk, g_ss + g_sa);
    out.ref_coef.assign(out.nodes, 0.0);
    out.ref_coef[snk] = g_sa;
    out.row_ptr.push_back(0);
    for (std::size_t i = 0; i < out.nodes; ++i) {
      for (const auto& [j, v] : rows[i]) {
        if (v != 0.0) {
          out.col.push_back(j);
          out.val.push_back(v);
        }
      }
      out.row_ptr.push_back(out.col.size());
    }
  }

  out.block_inputs.assign(layer_count_, {});
  for (std::size_t l = 0; l < layer_count_; ++l) {
    const BlockCellMap& map = maps_[l];
    out.block_inputs[l].resize(map.block_count());
    for (std::size_t b = 0; b < map.block_count(); ++b) {
      auto& shares = out.block_inputs[l][b];
      shares.clear();
      for (const BlockCellMap::CellShare& share : map.cells_of(b)) {
        shares.push_back({node(l, share.cell), share.weight});
      }
    }
  }
}

void ThermalModel3D::solve_steady_state_direct(const std::function<bool()>& pre_step) {
  // Cache key: the full per-cavity flow vector.  Any single cavity moving
  // outside the key tolerance invalidates the factorization — the eliminated
  // coefficients of that cavity's rows change.
  bool key_matches = steady_direct_ != nullptr &&
                     steady_direct_flows_.size() == cavity_flows_.size();
  if (key_matches) {
    for (std::size_t k = 0; k < cavity_flows_.size(); ++k) {
      if (!FactorizationCache::keys_match(steady_direct_flows_[k],
                                          cavity_flows_[k].ml_per_min())) {
        key_matches = false;
        break;
      }
    }
  }
  if (!key_matches) {
    static obs::Histogram& assemble_h =
        obs::Registry::global().histogram("liquid3d_solver_assemble_seconds");
    static obs::Histogram& factorize_h =
        obs::Registry::global().histogram("liquid3d_solver_factorize_seconds");
    const std::size_t bw = grid_.cols() * layer_count_;
    if (!steady_direct_) {
      steady_direct_ = std::make_unique<BandedLuMatrix>(node_count_, bw, bw);
    }
    {
      obs::ScopedTimer t(assemble_h);
      build_steady_direct_system(*steady_direct_, steady_inlet_coef_);
    }
    {
      obs::ScopedTimer t(factorize_h);
      steady_direct_->factorize();
    }
    steady_direct_flows_.resize(cavity_flows_.size());
    for (std::size_t k = 0; k < cavity_flows_.size(); ++k) {
      steady_direct_flows_[k] = cavity_flows_[k].ml_per_min();
    }
  }
  // The solve is exact for a fixed power map; the loop only iterates the
  // temperature-dependent power (leakage) supplied through pre_step.  Near
  // runaway the leakage loop gain approaches 1 and convergence stalls —
  // like the seed's outer fixed point (80 iterations, 0.05 K) we return the
  // last iterate rather than failing: callers treat a hot non-converged
  // point as "needs more flow".
  constexpr std::size_t kMaxPowerIterations = 80;
  constexpr double kPowerTolerance = 0.05;  // K, the seed's leakage criterion
  for (std::size_t iter = 0; iter < kMaxPowerIterations; ++iter) {
    if (pre_step && !pre_step()) return;
    for (std::size_t i = 0; i < node_count_; ++i) {
      rhs_[i] = cell_power_[i] + steady_inlet_coef_[i] * inlet_temperature_;
    }
    static obs::Histogram& solve_h = obs::Registry::global().histogram(
        "liquid3d_solver_direct_solve_seconds");
    {
      obs::ScopedTimer t(solve_h);
      steady_direct_->solve(rhs_);
    }
    double delta = 0.0;
    for (std::size_t i = 0; i < node_count_; ++i) {
      delta = std::max(delta, std::abs(rhs_[i] - temps_[i]));
    }
    temps_.swap(rhs_);
    require_finite(temps_.data(), node_count_,
                   "direct steady solve produced non-finite temperatures");
    (void)march_all_fluid();  // refresh fluid state for readbacks
    if (!pre_step || delta < kPowerTolerance) return;
  }
}

void ThermalModel3D::solve_steady_state(const std::function<bool()>& pre_step) {
  // Zero flow in any cavity of a liquid stack has no bounded steady state
  // (every heat path ends in the coolant); fail fast instead of iterating
  // forever.
  if (stack_.has_cavities()) {
    for (const VolumetricFlow& f : cavity_flows_) {
      LIQUID3D_REQUIRE(f.m3_per_s() > 0.0,
                       "steady state of a liquid stack requires nonzero flow "
                       "in every cavity");
    }
  }
  // The fluid-eliminated direct steady solve is a banded-LU object — the
  // O(n b^2) cost profile the iterative backend exists to avoid — so the
  // PCG backend always takes the pseudo-transient continuation below, with
  // each backward-Euler step solved iteratively and warm-started.
  if (params_.direct_steady_solver && stack_.has_cavities() &&
      backend_ == SolverBackend::kDirect) {
    // The unpivoted LU is provably stable while every fluid-eliminated row
    // stays diagonally dominant, which holds exactly when the per-cell
    // convective conductance does not exceed twice the per-row-channel
    // capacity rate (sigma = g_sum / w_row <= 2).  With per-cavity flows
    // the weakest cavity (smallest flow) governs.
    double min_flow = cavity_flows_.front().m3_per_s();
    for (const VolumetricFlow& f : cavity_flows_) {
      min_flow = std::min(min_flow, f.m3_per_s());
    }
    const double w_row = params_.coolant.volumetric_heat_capacity() * min_flow /
                         static_cast<double>(grid_.rows());
    const double g_sum_max = g_fluid_dn_ + g_fluid_up_;
    if (g_sum_max <= 2.0 * w_row) {
      solve_steady_state_direct(pre_step);
      return;
    }
    // Deeply advection-limited regime: dominance is not guaranteed, so the
    // direct solution is demoted to an initializer — the pseudo-transient
    // loop below owns convergence, and its criterion does not depend on the
    // LU's accuracy.  A sanity clamp discards the initializer outright if
    // the factorization ever did go unstable.
    std::vector<double> backup(temps_);
    solve_steady_state_direct({});
    for (double t : temps_) {
      if (!std::isfinite(t) || t < -200.0 || t > 2000.0) {
        temps_ = std::move(backup);
        (void)march_all_fluid();
        break;
      }
    }
  }
  // Far from the steady state the inner silicon<->fluid alternation need
  // not be polished: its tolerance tracks the last outer step's movement
  // (floored at the configured tolerance, so the endgame — and the final
  // answer — is exactly as tight as before).
  double fluid_tol = params_.fluid_tolerance;
  double delta = 0.0;
  for (std::size_t iter = 0; iter < params_.max_steady_iterations; ++iter) {
    if (pre_step && !pre_step()) return;
    delta = advance(params_.steady_pseudo_dt,
                    params_.steady_fluid_iterations, fluid_tol);
    if (!stack_.has_cavities()) {
      const double spr_before = spreader_temp_;
      update_package_steady();
      delta = std::max(delta, std::abs(spreader_temp_ - spr_before));
    }
    if (delta < params_.steady_tolerance) return;
    fluid_tol = std::max(params_.fluid_tolerance, 0.1 * delta);
  }
  // Not converged within the iteration cap — surface it; silent divergence
  // would corrupt every characterization built on top.  SolverError (a
  // numerical outcome of this operating point), not LogicError: nothing is
  // wrong with the code, and a retry with more iterations or the direct
  // backend may well succeed.
  throw SolverError(
      "steady-state pseudo-transient iteration did not converge within "
      "max_steady_iterations",
      to_string(backend_), params_.max_steady_iterations, delta);
}

double ThermalModel3D::cell_temperature(std::size_t layer, std::size_t cell) const {
  LIQUID3D_REQUIRE(layer < layer_count_ && cell < cell_count_, "index out of range");
  return temps_[node(layer, cell)];
}

double ThermalModel3D::block_temperature(std::size_t layer, std::size_t block) const {
  LIQUID3D_REQUIRE(layer < layer_count_, "layer index out of range");
  for (std::size_t cell = 0; cell < cell_count_; ++cell) {
    layer_scratch_[cell] = temps_[node(layer, cell)];
  }
  return maps_[layer].block_max(layer_scratch_, block);
}

double ThermalModel3D::block_mean_temperature(std::size_t layer, std::size_t block) const {
  LIQUID3D_REQUIRE(layer < layer_count_, "layer index out of range");
  for (std::size_t cell = 0; cell < cell_count_; ++cell) {
    layer_scratch_[cell] = temps_[node(layer, cell)];
  }
  return maps_[layer].block_mean(layer_scratch_, block);
}

double ThermalModel3D::max_temperature() const {
  return *std::max_element(temps_.begin(), temps_.end());
}

double ThermalModel3D::min_temperature() const {
  return *std::min_element(temps_.begin(), temps_.end());
}

double ThermalModel3D::cavity_max_temperature(std::size_t cavity) const {
  LIQUID3D_REQUIRE(stack_.has_cavities() && cavity < stack_.cavity_count(),
                   "cavity index out of range");
  double best = -std::numeric_limits<double>::infinity();
  for (std::size_t l : {cavity >= 1 ? cavity - 1 : layer_count_, cavity}) {
    if (l >= layer_count_) continue;  // edge cavities touch a single die
    for (std::size_t cell = 0; cell < cell_count_; ++cell) {
      best = std::max(best, temps_[node(l, cell)]);
    }
  }
  return best;
}

void ThermalModel3D::cavity_max_temperatures(std::vector<double>& out) const {
  out.resize(stack_.cavity_count());
  for (std::size_t k = 0; k < out.size(); ++k) {
    out[k] = cavity_max_temperature(k);
  }
}

double ThermalModel3D::fluid_outlet_temperature(std::size_t cavity) const {
  LIQUID3D_REQUIRE(cavity < cavity_outlet_.size(), "cavity index out of range");
  return cavity_outlet_[cavity];
}

double ThermalModel3D::cavity_absorbed_power(std::size_t cavity) const {
  LIQUID3D_REQUIRE(cavity < cavity_absorbed_.size(), "cavity index out of range");
  return cavity_absorbed_[cavity];
}

double ThermalModel3D::total_power() const {
  double acc = 0.0;
  for (double p : cell_power_) acc += p;
  return acc;
}

void ThermalModel3D::save_state(ThermalState& out) const {
  out.temps.assign(temps_.begin(), temps_.end());
  out.fluid_temp.resize(fluid_temp_.size());
  for (std::size_t k = 0; k < fluid_temp_.size(); ++k) {
    out.fluid_temp[k].assign(fluid_temp_[k].begin(), fluid_temp_[k].end());
  }
  out.cavity_absorbed.assign(cavity_absorbed_.begin(), cavity_absorbed_.end());
  out.cavity_outlet.assign(cavity_outlet_.begin(), cavity_outlet_.end());
  out.spreader_temp = spreader_temp_;
  out.sink_temp = sink_temp_;
}

void ThermalModel3D::restore_state(const ThermalState& state) {
  LIQUID3D_REQUIRE(state.temps.size() == temps_.size() &&
                       state.fluid_temp.size() == fluid_temp_.size(),
                   "state shape does not match this model");
  temps_.assign(state.temps.begin(), state.temps.end());
  for (std::size_t k = 0; k < fluid_temp_.size(); ++k) {
    LIQUID3D_REQUIRE(state.fluid_temp[k].size() == fluid_temp_[k].size(),
                     "fluid state shape does not match this model");
    fluid_temp_[k].assign(state.fluid_temp[k].begin(), state.fluid_temp[k].end());
  }
  cavity_absorbed_.assign(state.cavity_absorbed.begin(), state.cavity_absorbed.end());
  cavity_outlet_.assign(state.cavity_outlet.begin(), state.cavity_outlet.end());
  spreader_temp_ = state.spreader_temp;
  sink_temp_ = state.sink_temp;
}

}  // namespace liquid3d
