// steady_operator.hpp — the steady-state thermal operator exported as an
// explicit sparse linear system, for offline model-order reduction.
//
// For a fixed per-cavity flow vector the steady state of either cooling
// configuration is *exactly linear* in the injected block powers and the
// boundary reference temperature:
//
//   A T = p + ref_coef * T_ref
//
//  * liquid stacks: A is the fluid-eliminated steady operator (the same
//    non-symmetric banded system solve_steady_state_direct factorizes;
//    advection makes upstream cells heat downstream ones, not vice versa),
//    T_ref is the coolant inlet temperature, and ref_coef collects the
//    inlet constants the channel-march elimination produces;
//  * air stacks: A is the conduction network over the silicon nodes plus
//    two appended package unknowns (spreader, sink), T_ref is ambient, and
//    ref_coef has a single entry on the sink row (1/R_sa).
//
// The export is a snapshot: it captures the operator for the flow vector
// set on the model at export time.  serve/rom.hpp projects this operator
// onto a Krylov subspace of steady responses; the CSR `multiply` is the
// residual check that guards every reduced answer.
#pragma once

#include <cstddef>
#include <vector>

namespace liquid3d {

struct SteadyOperator {
  std::size_t nodes = 0;          ///< unknowns (silicon [+2 package for air])
  std::size_t silicon_nodes = 0;  ///< leading entries that are junction cells
  std::size_t layer_count = 0;    ///< stack layers (node = cell*layers+layer)
  bool liquid = false;
  double t_ref = 0.0;  ///< inlet (liquid) / ambient (air) at export time [°C]

  // CSR storage of A (general: the liquid operator is non-symmetric).
  std::vector<std::size_t> row_ptr;  ///< size nodes+1
  std::vector<std::size_t> col;
  std::vector<double> val;
  /// Per-row coefficient of T_ref on the right-hand side [W/K].
  std::vector<double> ref_coef;

  /// Unit-power injection map: 1 W into block b of layer l distributes
  /// `weight` watts onto `node` (mirrors ThermalModel3D::set_block_power).
  struct InputShare {
    std::size_t node;
    double weight;
  };
  /// [layer][block] -> node shares.
  std::vector<std::vector<std::vector<InputShare>>> block_inputs;

  [[nodiscard]] std::size_t nonzeros() const { return val.size(); }

  /// y = A x (dense vectors of length `nodes`).
  void multiply(const double* x, double* y) const {
    for (std::size_t i = 0; i < nodes; ++i) {
      double acc = 0.0;
      for (std::size_t k = row_ptr[i]; k < row_ptr[i + 1]; ++k) {
        acc += val[k] * x[col[k]];
      }
      y[i] = acc;
    }
  }
};

}  // namespace liquid3d
