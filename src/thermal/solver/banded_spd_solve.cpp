// banded_spd_solve.cpp — the single-RHS triangular-solve path, in its own
// translation unit so the build can disable floating-point contraction for
// every solve kernel (see CMakeLists): with FMA contraction on, the
// single-RHS and multi-RHS code shapes contract differently and the
// bit-identity contract between batched and serial solves breaks.
// Factorization stays in banded_spd.cpp with contraction enabled — it is
// the same code for every model, so parity never depends on it.
#include "thermal/solver/banded_spd.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "thermal/solver/banded_spd_kernels.hpp"

namespace liquid3d {

void BandedSpdMatrix::solve(std::vector<double>& rhs) const {
  LIQUID3D_REQUIRE(rhs.size() == n_, "rhs size mismatch");
  solve(std::span<double>(rhs), 1);
}

void BandedSpdMatrix::solve(std::span<double> rhs, std::size_t nrhs) const {
  LIQUID3D_ASSERT(factorized_, "solve requires a factorized matrix");
  LIQUID3D_REQUIRE(nrhs > 0, "need at least one right-hand side");
  LIQUID3D_REQUIRE(rhs.size() == n_ * nrhs, "rhs size mismatch");
  const double* const band = band_.data();
  double* const x = rhs.data();

  if (nrhs > 1) {
    detail::solve_multi_dispatch(band, x, n_, b_, w_, nrhs);
    return;
  }

  // Forward: L y = rhs, column-oriented — once y[j] is final, its
  // contribution is pushed down the contiguous L column (an axpy).  The
  // blocked path finalizes kBlk y values at a time and applies their
  // columns in one fused sweep: the factor is read exactly once either
  // way, but the x update — a full store stream per column in the naive
  // axpy — is written once per block, dividing write traffic by kBlk.
  {
    constexpr std::size_t kBlk = 8;
    std::size_t j0 = 0;
    for (; j0 + kBlk <= n_; j0 += kBlk) {
      // Finalize y within the block (intra-block dependencies are the
      // kBlk x kBlk lower triangle at the top of the block's columns).
      for (std::size_t j = j0; j < j0 + kBlk; ++j) {
        double yj = x[j];
        for (std::size_t p = j0; p < j; ++p) {
          if (j - p <= b_) yj -= band[p * w_ + (j - p)] * x[p];
        }
        x[j] = yj / band[j * w_];
      }
      // Fused update of the rows every block column reaches.  cJ[i] is
      // L(i, J) — base pointers shifted so all eight streams index by i.
      const double y0 = x[j0], y1 = x[j0 + 1], y2 = x[j0 + 2], y3 = x[j0 + 3];
      const double y4 = x[j0 + 4], y5 = x[j0 + 5], y6 = x[j0 + 6], y7 = x[j0 + 7];
      const double* const c0 = band + j0 * w_ - j0;
      const double* const c1 = c0 + w_ - 1;
      const double* const c2 = c1 + w_ - 1;
      const double* const c3 = c2 + w_ - 1;
      const double* const c4 = c3 + w_ - 1;
      const double* const c5 = c4 + w_ - 1;
      const double* const c6 = c5 + w_ - 1;
      const double* const c7 = c6 + w_ - 1;
      const std::size_t i_common = std::min(n_ - 1, j0 + b_);
      for (std::size_t i = j0 + kBlk; i <= i_common; ++i) {
        x[i] -= c0[i] * y0 + c1[i] * y1 + c2[i] * y2 + c3[i] * y3 +
                c4[i] * y4 + c5[i] * y5 + c6[i] * y6 + c7[i] * y7;
      }
      // Per-column tails beyond the first column's band reach.  Rows inside
      // the block were already finalized above, so tails start no earlier
      // than the block end (narrow bands would otherwise re-apply
      // intra-block updates).
      for (std::size_t j = j0 + 1; j < j0 + kBlk; ++j) {
        const std::size_t i_hi = std::min(n_ - 1, j + b_);
        const double* const cj = band + j * w_ - j;
        const double yj = x[j];
        for (std::size_t i = std::max(i_common + 1, j0 + kBlk); i <= i_hi; ++i) {
          x[i] -= cj[i] * yj;
        }
      }
    }
    for (std::size_t j = j0; j < n_; ++j) {
      const double* const colj = band + j * w_;
      const double yj = x[j] / colj[0];
      x[j] = yj;
      const std::size_t m = std::min(b_, n_ - 1 - j);
      for (std::size_t t = 1; t <= m; ++t) x[j + t] -= colj[t] * yj;
    }
  }
  // Backward: L^T x = y — row j of L^T is column j of L, so this is a dot
  // product over the same contiguous run.  The reduction uses eight explicit
  // accumulators: a single serial chain is FMA-latency-bound and the
  // compiler may not reassociate floating-point sums on its own.  The
  // summation order is fixed, so results stay deterministic.
  for (std::size_t jj = n_; jj-- > 0;) {
    const double* const colj = band + jj * w_;
    const std::size_t m = std::min(b_, n_ - 1 - jj);
    const double* const xs = x + jj;
    double s0 = 0.0, s1 = 0.0, s2 = 0.0, s3 = 0.0;
    double s4 = 0.0, s5 = 0.0, s6 = 0.0, s7 = 0.0;
    std::size_t t = 1;
    for (; t + 7 <= m; t += 8) {
      s0 += colj[t] * xs[t];
      s1 += colj[t + 1] * xs[t + 1];
      s2 += colj[t + 2] * xs[t + 2];
      s3 += colj[t + 3] * xs[t + 3];
      s4 += colj[t + 4] * xs[t + 4];
      s5 += colj[t + 5] * xs[t + 5];
      s6 += colj[t + 6] * xs[t + 6];
      s7 += colj[t + 7] * xs[t + 7];
    }
    for (; t <= m; ++t) s0 += colj[t] * xs[t];
    x[jj] = (x[jj] - (((s0 + s1) + (s2 + s3)) + ((s4 + s5) + (s6 + s7)))) / colj[0];
  }
}

}  // namespace liquid3d
