#include "thermal/solver/banded_spd.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "thermal/solver/banded_spd_kernels.hpp"

namespace liquid3d {

BandedSpdMatrix::BandedSpdMatrix(std::size_t n, std::size_t half_bandwidth)
    : n_(n),
      b_(half_bandwidth),
      w_(half_bandwidth + 1),
      band_(n * (half_bandwidth + 1), 0.0) {
  LIQUID3D_REQUIRE(n > 0, "matrix must be non-empty");
}

double& BandedSpdMatrix::at(std::size_t i, std::size_t j) {
  LIQUID3D_ASSERT(j <= i && i - j <= b_ && i < n_, "band index out of range");
  return band_[j * w_ + (i - j)];
}

double BandedSpdMatrix::at(std::size_t i, std::size_t j) const {
  LIQUID3D_ASSERT(j <= i && i - j <= b_ && i < n_, "band index out of range");
  return band_[j * w_ + (i - j)];
}

void BandedSpdMatrix::add_coupling(std::size_t i, std::size_t j, double g) {
  LIQUID3D_ASSERT(i != j, "coupling requires distinct nodes");
  const std::size_t lo = std::min(i, j);
  const std::size_t hi = std::max(i, j);
  at(lo, lo) += g;
  at(hi, hi) += g;
  at(hi, lo) -= g;
}

void BandedSpdMatrix::add_diagonal(std::size_t i, double g) { at(i, i) += g; }

void BandedSpdMatrix::set_zero() {
  std::fill(band_.begin(), band_.end(), 0.0);
  factorized_ = false;
}

void BandedSpdMatrix::factorize() {
  LIQUID3D_ASSERT(!factorized_, "matrix already factorized");
  // Panel-blocked right-looking Cholesky.  Pivots are processed in panels
  // of kPanel columns: the panel is factorized internally with rank-1
  // updates, then every trailing column receives the whole panel's updates
  // in one visit.  Compared with plain right-looking (one visit per pivot),
  // each trailing column — up to b+1 doubles, L1-resident once loaded — is
  // streamed from cache kPanel times instead of being re-fetched from the
  // O(b^2) trailing window, cutting the dominant write-back traffic by the
  // panel width.
  constexpr std::size_t kPanel = 8;
  double* const band = band_.data();
  for (std::size_t k0 = 0; k0 < n_; k0 += kPanel) {
    const std::size_t nb = std::min(kPanel, n_ - k0);
    const std::size_t panel_end = k0 + nb;  // exclusive
    // 1. Factorize the panel: full-length pivot scaling, but updates only
    // onto columns still inside the panel.
    for (std::size_t k = k0; k < panel_end; ++k) {
      double* const colk = band + k * w_;
      const double d = colk[0];
      LIQUID3D_ASSERT(d > 0.0, "banded Cholesky: non-positive pivot");
      const double lkk = std::sqrt(d);
      colk[0] = lkk;
      const std::size_t m = std::min(b_, n_ - 1 - k);
      const double inv = 1.0 / lkk;
      for (std::size_t i = 1; i <= m; ++i) colk[i] *= inv;
      const std::size_t j_hi = std::min(panel_end - 1, k + m);
      for (std::size_t j = k + 1; j <= j_hi; ++j) {
        const double ljk = colk[j - k];
        if (ljk == 0.0) continue;
        double* const colj = band + j * w_;
        const double* const src = colk + (j - k);
        const std::size_t len = m - (j - k);
        for (std::size_t t = 0; t <= len; ++t) colj[t] -= ljk * src[t];
      }
    }
    // 2. Trailing update: each column beyond the panel accumulates every
    // panel pivot that reaches it while it stays hot in cache.
    const std::size_t j_last = std::min(n_ - 1, panel_end - 1 + b_);
    for (std::size_t j = panel_end; j <= j_last; ++j) {
      double* const colj = band + j * w_;
      const std::size_t p_lo = (j >= b_) ? std::max(k0, j - b_) : k0;
      for (std::size_t p = p_lo; p < panel_end; ++p) {
        const double* const colp = band + p * w_;
        const double ljp = colp[j - p];
        if (ljp == 0.0) continue;
        const double* const src = colp + (j - p);
        const std::size_t len = std::min(b_, n_ - 1 - p) - (j - p);
        for (std::size_t t = 0; t <= len; ++t) colj[t] -= ljp * src[t];
      }
    }
  }
  factorized_ = true;
}

}  // namespace liquid3d
