#include "thermal/solver/banded_spd.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace liquid3d {

BandedSpdMatrix::BandedSpdMatrix(std::size_t n, std::size_t half_bandwidth)
    : n_(n),
      b_(half_bandwidth),
      w_(half_bandwidth + 1),
      band_(n * (half_bandwidth + 1), 0.0) {
  LIQUID3D_REQUIRE(n > 0, "matrix must be non-empty");
}

double& BandedSpdMatrix::at(std::size_t i, std::size_t j) {
  LIQUID3D_ASSERT(j <= i && i - j <= b_ && i < n_, "band index out of range");
  return band_[j * w_ + (i - j)];
}

double BandedSpdMatrix::at(std::size_t i, std::size_t j) const {
  LIQUID3D_ASSERT(j <= i && i - j <= b_ && i < n_, "band index out of range");
  return band_[j * w_ + (i - j)];
}

void BandedSpdMatrix::add_coupling(std::size_t i, std::size_t j, double g) {
  LIQUID3D_ASSERT(i != j, "coupling requires distinct nodes");
  const std::size_t lo = std::min(i, j);
  const std::size_t hi = std::max(i, j);
  at(lo, lo) += g;
  at(hi, hi) += g;
  at(hi, lo) -= g;
}

void BandedSpdMatrix::add_diagonal(std::size_t i, double g) { at(i, i) += g; }

void BandedSpdMatrix::set_zero() {
  std::fill(band_.begin(), band_.end(), 0.0);
  factorized_ = false;
}

void BandedSpdMatrix::factorize() {
  LIQUID3D_ASSERT(!factorized_, "matrix already factorized");
  // Panel-blocked right-looking Cholesky.  Pivots are processed in panels
  // of kPanel columns: the panel is factorized internally with rank-1
  // updates, then every trailing column receives the whole panel's updates
  // in one visit.  Compared with plain right-looking (one visit per pivot),
  // each trailing column — up to b+1 doubles, L1-resident once loaded — is
  // streamed from cache kPanel times instead of being re-fetched from the
  // O(b^2) trailing window, cutting the dominant write-back traffic by the
  // panel width.
  constexpr std::size_t kPanel = 8;
  double* const band = band_.data();
  for (std::size_t k0 = 0; k0 < n_; k0 += kPanel) {
    const std::size_t nb = std::min(kPanel, n_ - k0);
    const std::size_t panel_end = k0 + nb;  // exclusive
    // 1. Factorize the panel: full-length pivot scaling, but updates only
    // onto columns still inside the panel.
    for (std::size_t k = k0; k < panel_end; ++k) {
      double* const colk = band + k * w_;
      const double d = colk[0];
      LIQUID3D_ASSERT(d > 0.0, "banded Cholesky: non-positive pivot");
      const double lkk = std::sqrt(d);
      colk[0] = lkk;
      const std::size_t m = std::min(b_, n_ - 1 - k);
      const double inv = 1.0 / lkk;
      for (std::size_t i = 1; i <= m; ++i) colk[i] *= inv;
      const std::size_t j_hi = std::min(panel_end - 1, k + m);
      for (std::size_t j = k + 1; j <= j_hi; ++j) {
        const double ljk = colk[j - k];
        if (ljk == 0.0) continue;
        double* const colj = band + j * w_;
        const double* const src = colk + (j - k);
        const std::size_t len = m - (j - k);
        for (std::size_t t = 0; t <= len; ++t) colj[t] -= ljk * src[t];
      }
    }
    // 2. Trailing update: each column beyond the panel accumulates every
    // panel pivot that reaches it while it stays hot in cache.
    const std::size_t j_last = std::min(n_ - 1, panel_end - 1 + b_);
    for (std::size_t j = panel_end; j <= j_last; ++j) {
      double* const colj = band + j * w_;
      const std::size_t p_lo = (j >= b_) ? std::max(k0, j - b_) : k0;
      for (std::size_t p = p_lo; p < panel_end; ++p) {
        const double* const colp = band + p * w_;
        const double ljp = colp[j - p];
        if (ljp == 0.0) continue;
        const double* const src = colp + (j - p);
        const std::size_t len = std::min(b_, n_ - 1 - p) - (j - p);
        for (std::size_t t = 0; t <= len; ++t) colj[t] -= ljp * src[t];
      }
    }
  }
  factorized_ = true;
}

void BandedSpdMatrix::solve(std::vector<double>& rhs) const {
  LIQUID3D_REQUIRE(rhs.size() == n_, "rhs size mismatch");
  solve(std::span<double>(rhs), 1);
}

void BandedSpdMatrix::solve(std::span<double> rhs, std::size_t nrhs) const {
  LIQUID3D_ASSERT(factorized_, "solve requires a factorized matrix");
  LIQUID3D_REQUIRE(nrhs > 0, "need at least one right-hand side");
  LIQUID3D_REQUIRE(rhs.size() == n_ * nrhs, "rhs size mismatch");
  const double* const band = band_.data();
  double* const x = rhs.data();

  // Forward: L y = rhs, column-oriented — once y[j] is final, its
  // contribution is pushed down the contiguous L column (an axpy).  The
  // single-RHS path finalizes kBlk y values at a time and applies their
  // columns in one fused sweep: the factor is read exactly once either
  // way, but the x update — a full store stream per column in the naive
  // axpy — is written once per block, dividing write traffic by kBlk.
  if (nrhs == 1) {
    constexpr std::size_t kBlk = 8;
    std::size_t j0 = 0;
    for (; j0 + kBlk <= n_; j0 += kBlk) {
      // Finalize y within the block (intra-block dependencies are the
      // kBlk x kBlk lower triangle at the top of the block's columns).
      for (std::size_t j = j0; j < j0 + kBlk; ++j) {
        double yj = x[j];
        for (std::size_t p = j0; p < j; ++p) {
          if (j - p <= b_) yj -= band[p * w_ + (j - p)] * x[p];
        }
        x[j] = yj / band[j * w_];
      }
      // Fused update of the rows every block column reaches.  cJ[i] is
      // L(i, J) — base pointers shifted so all eight streams index by i.
      const double y0 = x[j0], y1 = x[j0 + 1], y2 = x[j0 + 2], y3 = x[j0 + 3];
      const double y4 = x[j0 + 4], y5 = x[j0 + 5], y6 = x[j0 + 6], y7 = x[j0 + 7];
      const double* const c0 = band + j0 * w_ - j0;
      const double* const c1 = c0 + w_ - 1;
      const double* const c2 = c1 + w_ - 1;
      const double* const c3 = c2 + w_ - 1;
      const double* const c4 = c3 + w_ - 1;
      const double* const c5 = c4 + w_ - 1;
      const double* const c6 = c5 + w_ - 1;
      const double* const c7 = c6 + w_ - 1;
      const std::size_t i_common = std::min(n_ - 1, j0 + b_);
      for (std::size_t i = j0 + kBlk; i <= i_common; ++i) {
        x[i] -= c0[i] * y0 + c1[i] * y1 + c2[i] * y2 + c3[i] * y3 +
                c4[i] * y4 + c5[i] * y5 + c6[i] * y6 + c7[i] * y7;
      }
      // Per-column tails beyond the first column's band reach.  Rows inside
      // the block were already finalized above, so tails start no earlier
      // than the block end (narrow bands would otherwise re-apply
      // intra-block updates).
      for (std::size_t j = j0 + 1; j < j0 + kBlk; ++j) {
        const std::size_t i_hi = std::min(n_ - 1, j + b_);
        const double* const cj = band + j * w_ - j;
        const double yj = x[j];
        for (std::size_t i = std::max(i_common + 1, j0 + kBlk); i <= i_hi; ++i) {
          x[i] -= cj[i] * yj;
        }
      }
    }
    for (std::size_t j = j0; j < n_; ++j) {
      const double* const colj = band + j * w_;
      const double yj = x[j] / colj[0];
      x[j] = yj;
      const std::size_t m = std::min(b_, n_ - 1 - j);
      for (std::size_t t = 1; t <= m; ++t) x[j + t] -= colj[t] * yj;
    }
  } else {
    for (std::size_t j = 0; j < n_; ++j) {
      const double* const colj = band + j * w_;
      const double inv = 1.0 / colj[0];
      double* const xj = x + j * nrhs;
      for (std::size_t r = 0; r < nrhs; ++r) xj[r] *= inv;
      const std::size_t m = std::min(b_, n_ - 1 - j);
      for (std::size_t t = 1; t <= m; ++t) {
        const double l = colj[t];
        double* const xi = x + (j + t) * nrhs;
        for (std::size_t r = 0; r < nrhs; ++r) xi[r] -= l * xj[r];
      }
    }
  }
  // Backward: L^T x = y — row j of L^T is column j of L, so this is a dot
  // product over the same contiguous run.  The reduction uses four explicit
  // accumulators: a single serial chain is FMA-latency-bound and the
  // compiler may not reassociate floating-point sums on its own.  The
  // summation order is fixed, so results stay deterministic.
  for (std::size_t jj = n_; jj-- > 0;) {
    const double* const colj = band + jj * w_;
    const std::size_t m = std::min(b_, n_ - 1 - jj);
    double* const xj = x + jj * nrhs;
    if (nrhs == 1) {
      const double* const xs = x + jj;
      double s0 = 0.0, s1 = 0.0, s2 = 0.0, s3 = 0.0;
      double s4 = 0.0, s5 = 0.0, s6 = 0.0, s7 = 0.0;
      std::size_t t = 1;
      for (; t + 7 <= m; t += 8) {
        s0 += colj[t] * xs[t];
        s1 += colj[t + 1] * xs[t + 1];
        s2 += colj[t + 2] * xs[t + 2];
        s3 += colj[t + 3] * xs[t + 3];
        s4 += colj[t + 4] * xs[t + 4];
        s5 += colj[t + 5] * xs[t + 5];
        s6 += colj[t + 6] * xs[t + 6];
        s7 += colj[t + 7] * xs[t + 7];
      }
      for (; t <= m; ++t) s0 += colj[t] * xs[t];
      xj[0] = (xj[0] - (((s0 + s1) + (s2 + s3)) + ((s4 + s5) + (s6 + s7)))) / colj[0];
    } else {
      for (std::size_t t = 1; t <= m; ++t) {
        const double l = colj[t];
        const double* const xi = x + (jj + t) * nrhs;
        for (std::size_t r = 0; r < nrhs; ++r) xj[r] -= l * xi[r];
      }
      const double inv = 1.0 / colj[0];
      for (std::size_t r = 0; r < nrhs; ++r) xj[r] *= inv;
    }
  }
}

}  // namespace liquid3d
