#include "thermal/solver/factorization_cache.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace liquid3d {

FactorizationCache::FactorizationCache(std::size_t capacity) : capacity_(capacity) {
  LIQUID3D_REQUIRE(capacity >= 1, "cache needs at least one slot");
  entries_.reserve(capacity);
}

bool FactorizationCache::keys_match(double dt_a, double dt_b) {
  return std::abs(dt_a - dt_b) <= 1e-9 * std::max(std::abs(dt_a), std::abs(dt_b));
}

BandedSpdMatrix* FactorizationCache::find(double dt) {
  for (Entry& e : entries_) {
    if (keys_match(e.dt, dt)) {
      e.stamp = ++clock_;
      ++hits_;
      return e.matrix.get();
    }
  }
  ++misses_;
  return nullptr;
}

BandedSpdMatrix& FactorizationCache::insert(double dt,
                                            std::unique_ptr<BandedSpdMatrix> matrix) {
  LIQUID3D_REQUIRE(matrix != nullptr, "cannot cache a null matrix");
  for (Entry& e : entries_) {
    if (keys_match(e.dt, dt)) {
      e.stamp = ++clock_;
      e.matrix = std::move(matrix);
      return *e.matrix;
    }
  }
  if (entries_.size() < capacity_) {
    entries_.push_back({dt, ++clock_, std::move(matrix)});
    return *entries_.back().matrix;
  }
  auto lru = std::min_element(entries_.begin(), entries_.end(),
                              [](const Entry& a, const Entry& b) {
                                return a.stamp < b.stamp;
                              });
  lru->dt = dt;
  lru->stamp = ++clock_;
  lru->matrix = std::move(matrix);
  return *lru->matrix;
}

void FactorizationCache::clear() { entries_.clear(); }

}  // namespace liquid3d
