#include "thermal/solver/backend.hpp"

#include <algorithm>
#include <string>

#include "common/error.hpp"

namespace liquid3d {

const char* to_string(SolverBackend b) {
  switch (b) {
    case SolverBackend::kAuto: return "auto";
    case SolverBackend::kDirect: return "direct";
    case SolverBackend::kPcg: return "pcg";
  }
  return "?";
}

SolverBackend solver_backend_from_name(std::string_view s) {
  if (s == "auto") return SolverBackend::kAuto;
  if (s == "direct") return SolverBackend::kDirect;
  if (s == "pcg") return SolverBackend::kPcg;
  throw ConfigError("unknown solver backend name '" + std::string(s) + "'");
}

SolverBackend resolve_solver_backend(SolverBackend requested, std::size_t n,
                                     std::size_t half_bandwidth) {
  if (requested != SolverBackend::kAuto) return requested;
  // Solves served by one cached factorization before its dt is evicted —
  // transient runs reuse a factor for thousands of substeps, so this is a
  // deliberately conservative (direct-favoring) amortization.
  constexpr double kDirectFactorAmortization = 200.0;
  // Conservative iteration estimate for warm-started IC(0)-PCG on the
  // stencil, and the per-row flop count of one iteration (SpMV + IC(0)
  // sweeps + the vector updates).
  constexpr double kPcgIterationEstimate = 60.0;
  constexpr double kPcgFlopsPerRow = 22.0;

  const double b = static_cast<double>(std::min(half_bandwidth, n - 1));
  const double direct_per_row = 2.0 * b + b * b / kDirectFactorAmortization;
  const double pcg_per_row = kPcgIterationEstimate * kPcgFlopsPerRow;
  return direct_per_row > pcg_per_row ? SolverBackend::kPcg
                                      : SolverBackend::kDirect;
}

}  // namespace liquid3d
