#include "thermal/solver/sparse_matrix.hpp"

#include <algorithm>
#include <limits>

#include "common/error.hpp"

namespace liquid3d {

SparseMatrix::SparseMatrix(std::size_t n) : n_(n), diag_(n, 0.0) {
  LIQUID3D_REQUIRE(n > 0, "matrix must be non-empty");
  LIQUID3D_REQUIRE(n <= std::numeric_limits<std::uint32_t>::max(),
                   "CSR index type limits the matrix to 2^32 rows");
  // 7-point stencil: ~3 stored off-diagonal pairs per node.
  coords_.reserve(6 * n);
}

void SparseMatrix::add_diagonal(std::size_t i, double g) {
  LIQUID3D_ASSERT(!finalized_ && i < n_, "bad diagonal accumulate");
  diag_[i] += g;
}

void SparseMatrix::add_coupling(std::size_t i, std::size_t j, double g) {
  LIQUID3D_ASSERT(!finalized_ && i != j && i < n_ && j < n_, "bad coupling");
  diag_[i] += g;
  diag_[j] += g;
  coords_.push_back({static_cast<std::uint32_t>(i), static_cast<std::uint32_t>(j), -g});
  coords_.push_back({static_cast<std::uint32_t>(j), static_cast<std::uint32_t>(i), -g});
}

void SparseMatrix::finalize() {
  LIQUID3D_REQUIRE(!finalized_, "matrix already finalized");
  std::sort(coords_.begin(), coords_.end(), [](const Entry& a, const Entry& b) {
    return a.row != b.row ? a.row < b.row : a.col < b.col;
  });

  row_ptr_.assign(n_ + 1, 0);
  diag_pos_.assign(n_, 0);
  col_.clear();
  val_.clear();
  col_.reserve(coords_.size() + n_);
  val_.reserve(coords_.size() + n_);

  std::size_t k = 0;
  for (std::size_t i = 0; i < n_; ++i) {
    row_ptr_[i] = col_.size();
    bool diag_emitted = false;
    while (k < coords_.size() && coords_[k].row == i) {
      const std::uint32_t c = coords_[k].col;
      if (!diag_emitted && c > i) {
        diag_pos_[i] = col_.size();
        col_.push_back(static_cast<std::uint32_t>(i));
        val_.push_back(diag_[i]);
        diag_emitted = true;
      }
      double v = coords_[k].v;
      ++k;
      while (k < coords_.size() && coords_[k].row == i && coords_[k].col == c) {
        v += coords_[k].v;  // merge duplicate stamps
        ++k;
      }
      col_.push_back(c);
      val_.push_back(v);
    }
    if (!diag_emitted) {
      diag_pos_[i] = col_.size();
      col_.push_back(static_cast<std::uint32_t>(i));
      val_.push_back(diag_[i]);
    }
  }
  row_ptr_[n_] = col_.size();

  coords_.clear();
  coords_.shrink_to_fit();
  diag_.clear();
  diag_.shrink_to_fit();
  finalized_ = true;
}

void SparseMatrix::multiply(const double* x, double* y) const {
  LIQUID3D_ASSERT(finalized_, "multiply requires a finalized matrix");
  const std::size_t* const rp = row_ptr_.data();
  const std::uint32_t* const ci = col_.data();
  const double* const v = val_.data();
  for (std::size_t i = 0; i < n_; ++i) {
    double acc = 0.0;
    const std::size_t end = rp[i + 1];
    for (std::size_t p = rp[i]; p < end; ++p) acc += v[p] * x[ci[p]];
    y[i] = acc;
  }
}

}  // namespace liquid3d
