// pcg.hpp — preconditioned conjugate gradient solver over SparseMatrix.
//
// The iterative counterpart of BandedSpdMatrix for the backward-Euler
// thermal systems: the operator is SPD (capacitance/dt plus a conduction
// M-matrix), so CG converges unconditionally, and each iteration costs
// O(nnz) ≈ O(7n) instead of the banded back-substitution's O(n b).  At the
// paper's native 100 µm grid (b in the thousands) that — plus skipping the
// O(n b^2) factorization entirely — is the whole ballgame.
//
// Preconditioners (all SPD-preserving):
//   * kJacobi             — diagonal scaling; cheapest apply, most iterations.
//   * kSsor               — symmetric SOR sweep (ω=1 ⇒ symmetric
//                           Gauss-Seidel); no setup beyond the matrix itself.
//   * kIncompleteCholesky — IC(0), zero fill-in.  The thermal operators are
//                           diagonally dominant M-matrices, for which IC(0)
//                           provably does not break down (Meijerink & van
//                           der Vorst); it is the default and the iteration
//                           count winner.
//
// Warm starts: solve() takes the initial guess in x.  Backward-Euler steps
// and fluid fixed-point iterations change the solution by a fraction of a
// kelvin, so seeding from the previous temperature field cuts iterations by
// several-fold versus a cold start — the iterative analogue of the direct
// path reusing one factorization across steps.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string_view>
#include <vector>

#include "thermal/solver/sparse_matrix.hpp"

namespace liquid3d {

enum class PcgPreconditioner { kJacobi, kSsor, kIncompleteCholesky };

[[nodiscard]] const char* to_string(PcgPreconditioner p);
[[nodiscard]] PcgPreconditioner pcg_preconditioner_from_name(std::string_view s);

struct PcgParams {
  /// Convergence target on the relative residual ‖b - A x‖ / ‖b‖.  The
  /// default sits two decades under the 1e-8 agreement contract with the
  /// direct solver, at a cost of a couple of extra iterations.
  double tolerance = 1e-10;
  std::size_t max_iterations = 1000;
  PcgPreconditioner preconditioner = PcgPreconditioner::kIncompleteCholesky;
  /// SSOR relaxation factor in (0, 2); 1.0 = symmetric Gauss-Seidel.
  double ssor_omega = 1.0;
};

/// Outcome of one solve() call.
struct PcgSummary {
  std::size_t iterations = 0;
  /// Recurrence-residual estimate of ‖b - A x‖ / ‖b‖ at exit.
  double relative_residual = 0.0;
  bool converged = false;
};

/// One assembled system: the CSR operator plus its preconditioner, ready to
/// solve any number of right-hand sides.  Owns the matrix — the model's
/// dt-keyed cache stores PcgSolver instances exactly where the direct path
/// stores factorized BandedSpdMatrix instances.
class PcgSolver {
 public:
  /// Takes the finalized matrix and builds the configured preconditioner.
  PcgSolver(SparseMatrix matrix, PcgParams params);

  [[nodiscard]] const SparseMatrix& matrix() const { return a_; }
  [[nodiscard]] const PcgParams& params() const { return params_; }

  /// Solve A x = b.  On entry x holds the initial guess (warm start); on
  /// exit the solution.  Throws LogicError if the operator is detected
  /// non-SPD mid-iteration.  Allocation-free after the first call.
  PcgSummary solve(const double* b, double* x);

  /// Last solve's outcome.
  [[nodiscard]] const PcgSummary& last() const { return last_; }
  /// Iterations accumulated over every solve (hot-loop telemetry).
  [[nodiscard]] std::uint64_t total_iterations() const { return total_iterations_; }
  [[nodiscard]] std::uint64_t solves() const { return solves_; }

 private:
  void build_jacobi();
  void build_ic0();
  void apply_preconditioner(const double* r, double* z) const;

  SparseMatrix a_;
  PcgParams params_;

  // Preconditioner data.
  std::vector<double> inv_diag_;      ///< Jacobi (and SSOR diagonal scaling)
  std::vector<std::size_t> lrow_ptr_; ///< IC(0) factor, lower CSR (diag last)
  std::vector<std::uint32_t> lcol_;
  std::vector<double> lval_;

  // Persistent solve scratch.
  std::vector<double> r_, z_, p_, q_;

  PcgSummary last_{};
  std::uint64_t total_iterations_ = 0;
  std::uint64_t solves_ = 0;
};

}  // namespace liquid3d
