// factorization_cache.hpp — small LRU cache of banded Cholesky
// factorizations keyed by time step.
//
// A thermal network's system matrix depends only on the topology (fixed for
// a model's lifetime) and on 1/dt, so every distinct step size seen by
// transient stepping, steady pseudo-timestepping, and characterization maps
// to exactly one factorization.  The simulator alternates between a handful
// of step sizes (the sampling sub-step and the steady pseudo-step), so a
// small LRU keyed by dt makes every `ensure_*_matrix`-style call after the
// first a pure lookup — no re-assembly, no re-factorization, no allocation.
//
// Keys match under a relative tolerance rather than bit equality: step
// sizes arrive through arithmetic like `dt / substeps`, and the seed's
// exact `transient_dt_ == dt_s` comparison silently re-factorized on
// last-ulp differences.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "thermal/solver/banded_spd.hpp"

namespace liquid3d {

class FactorizationCache {
 public:
  explicit FactorizationCache(std::size_t capacity = 4);

  /// True when the two step sizes address the same factorization (relative
  /// tolerance 1e-9, far below any physically meaningful dt change).
  [[nodiscard]] static bool keys_match(double dt_a, double dt_b);

  /// Cached factorization for `dt`, or nullptr on miss.  A hit refreshes
  /// the entry's recency.  Never allocates.
  [[nodiscard]] BandedSpdMatrix* find(double dt);

  /// Insert a factorized matrix under `dt`, evicting the least recently
  /// used entry when at capacity.  Returns the cached matrix.
  BandedSpdMatrix& insert(double dt, std::unique_ptr<BandedSpdMatrix> matrix);

  void clear();
  [[nodiscard]] std::size_t size() const { return entries_.size(); }
  [[nodiscard]] std::size_t capacity() const { return capacity_; }
  [[nodiscard]] std::uint64_t hits() const { return hits_; }
  [[nodiscard]] std::uint64_t misses() const { return misses_; }

 private:
  struct Entry {
    double dt;
    std::uint64_t stamp;
    std::unique_ptr<BandedSpdMatrix> matrix;
  };

  std::size_t capacity_;
  std::uint64_t clock_ = 0;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::vector<Entry> entries_;
};

}  // namespace liquid3d
