// factorization_cache.hpp — small LRU cache of assembled solver systems
// keyed by time step.
//
// A thermal network's system matrix depends only on the topology (fixed for
// a model's lifetime) and on 1/dt, so every distinct step size seen by
// transient stepping, steady pseudo-timestepping, and characterization maps
// to exactly one assembled system.  The simulator alternates between a
// handful of step sizes (the sampling sub-step and the steady pseudo-step),
// so a small LRU keyed by dt makes every lookup after the first a pure hit —
// no re-assembly, no re-factorization, no allocation.
//
// Keys match under a relative tolerance rather than bit equality: step
// sizes arrive through arithmetic like `dt / substeps`, and the seed's
// exact `transient_dt_ == dt_s` comparison silently re-factorized on
// last-ulp differences.
//
// The cache is generic over the cached system type: the direct backend
// stores factorized BandedSpdMatrix instances (FactorizationCache), the
// iterative backend stores PcgSolver instances (CSR operator +
// preconditioner) through the same template.
#pragma once

#include <cmath>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/error.hpp"
#include "thermal/solver/banded_spd.hpp"

namespace liquid3d {

template <typename SystemT>
class DtKeyedLruCache {
 public:
  explicit DtKeyedLruCache(std::size_t capacity = 4) : capacity_(capacity) {
    LIQUID3D_REQUIRE(capacity >= 1, "cache needs at least one slot");
    entries_.reserve(capacity);
  }

  /// True when the two step sizes address the same system (relative
  /// tolerance 1e-9, far below any physically meaningful dt change).
  [[nodiscard]] static bool keys_match(double dt_a, double dt_b) {
    return std::abs(dt_a - dt_b) <=
           1e-9 * std::max(std::abs(dt_a), std::abs(dt_b));
  }

  /// Cached system for `dt`, or nullptr on miss.  A hit refreshes the
  /// entry's recency.  Never allocates.
  [[nodiscard]] SystemT* find(double dt) {
    for (Entry& e : entries_) {
      if (keys_match(e.dt, dt)) {
        e.stamp = ++clock_;
        ++hits_;
        return e.system.get();
      }
    }
    ++misses_;
    return nullptr;
  }

  /// Insert a system under `dt`, evicting the least recently used entry
  /// when at capacity.  Returns the cached system.
  SystemT& insert(double dt, std::unique_ptr<SystemT> system) {
    LIQUID3D_REQUIRE(system != nullptr, "cannot cache a null system");
    for (Entry& e : entries_) {
      if (keys_match(e.dt, dt)) {
        e.stamp = ++clock_;
        e.system = std::move(system);
        return *e.system;
      }
    }
    if (entries_.size() < capacity_) {
      entries_.push_back({dt, ++clock_, std::move(system)});
      return *entries_.back().system;
    }
    std::size_t lru = 0;
    for (std::size_t i = 1; i < entries_.size(); ++i) {
      if (entries_[i].stamp < entries_[lru].stamp) lru = i;
    }
    entries_[lru] = {dt, ++clock_, std::move(system)};
    return *entries_[lru].system;
  }

  void clear() { entries_.clear(); }
  [[nodiscard]] std::size_t size() const { return entries_.size(); }
  [[nodiscard]] std::size_t capacity() const { return capacity_; }
  [[nodiscard]] std::uint64_t hits() const { return hits_; }
  [[nodiscard]] std::uint64_t misses() const { return misses_; }

 private:
  struct Entry {
    double dt;
    std::uint64_t stamp;
    std::unique_ptr<SystemT> system;
  };

  std::size_t capacity_;
  std::uint64_t clock_ = 0;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::vector<Entry> entries_;
};

/// The direct backend's cache of banded Cholesky factorizations.
using FactorizationCache = DtKeyedLruCache<BandedSpdMatrix>;

}  // namespace liquid3d
