// banded_spd_multi.cpp — the multi-RHS triangular-solve kernels, isolated in
// their own translation unit so the build can compile them with full-width
// (512-bit) vector preference on AVX-512 hosts without touching the
// single-RHS path: the system-lane loops here are long streams of
// independent element-wise FMAs — exactly the shape wide vectors pay off
// for (~1.6x at 16 lanes) — while the single-RHS dot-product reduction is
// latency-bound and regresses under the same preference.  See CMakeLists
// (LIQUID3D_PREFER_WIDE_VECTORS) for the flag plumbing.
#include "thermal/solver/banded_spd_kernels.hpp"

#include <algorithm>
#include <array>
#include <vector>

namespace liquid3d::detail {

namespace {


// Multi-RHS triangular solves: the same blocked algorithm as the single-RHS
// path with the system loop innermost.  Every floating-point operation a
// given system sees — order, association, and the use of division rather
// than reciprocal multiplication — is identical to the single-RHS kernel,
// so each column of a batched solve is bit-identical to a standalone solve
// of that right-hand side (systems interleave, but no system's own sequence
// changes).  The factor column is loaded once per row and reused across all
// systems, every inner loop strides unit over the interleaved layout, and
// the finalized y rows of each block are staged into a scratch buffer so
// the hot loops see provably distinct (__restrict__) arrays — that is where
// the per-solve win comes from.
//
// NR is the compile-time system count (0 = runtime `nrhs`): the dispatcher
// below instantiates the common batch widths so the per-row system loops
// fully unroll into straight-line vector code instead of paying a
// vector-loop setup on every entry — with a 16-trip inner loop entered
// O(n b / 8) times, that setup cost dominated the runtime-width version.
template <std::size_t NR>
void solve_multi(const double* const band, double* const x, std::size_t n,
                 std::size_t b, std::size_t w, std::size_t nrhs_runtime) {
  const std::size_t nrhs = NR == 0 ? nrhs_runtime : NR;
  constexpr std::size_t kBlk = 8;
  // Lane scratch on the stack for the compile-time widths — this function
  // runs once per fluid fixed-point iteration of a batched transient, so a
  // per-call heap allocation would sit in the hot loop; only the unbounded
  // runtime-width fallback pays for a vector.
  std::array<double, kBlk * (NR == 0 ? 1 : NR)> scratch_fixed;
  std::vector<double> scratch_dyn(NR == 0 ? kBlk * nrhs : 0);
  double* __restrict__ const yblk =
      NR == 0 ? scratch_dyn.data() : scratch_fixed.data();

  // Forward: L y = rhs.
  std::size_t j0 = 0;
  for (; j0 + kBlk <= n; j0 += kBlk) {
    // Finalize y within the block (intra-block dependencies are the
    // kBlk x kBlk lower triangle at the top of the block's columns).
    for (std::size_t j = j0; j < j0 + kBlk; ++j) {
      double* const xj = x + j * nrhs;
      const double dj = band[j * w];
      double* __restrict__ const yj = yblk + (j - j0) * nrhs;
      for (std::size_t r = 0; r < nrhs; ++r) yj[r] = xj[r];
      for (std::size_t p = j0; p < j; ++p) {
        if (j - p > b) continue;
        const double lpj = band[p * w + (j - p)];
        const double* const yp = yblk + (p - j0) * nrhs;
        for (std::size_t r = 0; r < nrhs; ++r) yj[r] -= lpj * yp[r];
      }
      for (std::size_t r = 0; r < nrhs; ++r) yj[r] /= dj;
      for (std::size_t r = 0; r < nrhs; ++r) xj[r] = yj[r];
    }
    // Fused update of the rows every block column reaches.
    const double* __restrict__ const y0 = yblk;
    const double* __restrict__ const y1 = y0 + nrhs;
    const double* __restrict__ const y2 = y1 + nrhs;
    const double* __restrict__ const y3 = y2 + nrhs;
    const double* __restrict__ const y4 = y3 + nrhs;
    const double* __restrict__ const y5 = y4 + nrhs;
    const double* __restrict__ const y6 = y5 + nrhs;
    const double* __restrict__ const y7 = y6 + nrhs;
    const double* const c0 = band + j0 * w - j0;
    const double* const c1 = c0 + w - 1;
    const double* const c2 = c1 + w - 1;
    const double* const c3 = c2 + w - 1;
    const double* const c4 = c3 + w - 1;
    const double* const c5 = c4 + w - 1;
    const double* const c6 = c5 + w - 1;
    const double* const c7 = c6 + w - 1;
    const std::size_t i_common = std::min(n - 1, j0 + b);
    for (std::size_t i = j0 + kBlk; i <= i_common; ++i) {
      double* __restrict__ const xi = x + i * nrhs;
      const double l0 = c0[i], l1 = c1[i], l2 = c2[i], l3 = c3[i];
      const double l4 = c4[i], l5 = c5[i], l6 = c6[i], l7 = c7[i];
      for (std::size_t r = 0; r < nrhs; ++r) {
        xi[r] -= l0 * y0[r] + l1 * y1[r] + l2 * y2[r] + l3 * y3[r] +
                 l4 * y4[r] + l5 * y5[r] + l6 * y6[r] + l7 * y7[r];
      }
    }
    // Per-column tails beyond the first column's band reach.
    for (std::size_t j = j0 + 1; j < j0 + kBlk; ++j) {
      const std::size_t i_hi = std::min(n - 1, j + b);
      const double* const cj = band + j * w - j;
      const double* __restrict__ const yj = yblk + (j - j0) * nrhs;
      for (std::size_t i = std::max(i_common + 1, j0 + kBlk); i <= i_hi; ++i) {
        const double lj = cj[i];
        double* __restrict__ const xi = x + i * nrhs;
        for (std::size_t r = 0; r < nrhs; ++r) xi[r] -= lj * yj[r];
      }
    }
  }
  for (std::size_t j = j0; j < n; ++j) {
    const double* const colj = band + j * w;
    double* const xj = x + j * nrhs;
    const std::size_t m = std::min(b, n - 1 - j);
    double* __restrict__ const yj = yblk;
    for (std::size_t r = 0; r < nrhs; ++r) yj[r] = xj[r] / colj[0];
    for (std::size_t r = 0; r < nrhs; ++r) xj[r] = yj[r];
    for (std::size_t t = 1; t <= m; ++t) {
      const double l = colj[t];
      double* __restrict__ const xi = x + (j + t) * nrhs;
      for (std::size_t r = 0; r < nrhs; ++r) xi[r] -= l * yj[r];
    }
  }

  // Backward: L^T x = y.  The single-RHS branch's eight scalar accumulators
  // become eight contiguous lanes of `yblk`; the reassociated eight-way sum
  // and the final division are replicated exactly per system.
  double* __restrict__ const s0 = yblk;
  double* __restrict__ const s1 = s0 + nrhs;
  double* __restrict__ const s2 = s1 + nrhs;
  double* __restrict__ const s3 = s2 + nrhs;
  double* __restrict__ const s4 = s3 + nrhs;
  double* __restrict__ const s5 = s4 + nrhs;
  double* __restrict__ const s6 = s5 + nrhs;
  double* __restrict__ const s7 = s6 + nrhs;
  for (std::size_t jj = n; jj-- > 0;) {
    const double* const colj = band + jj * w;
    const std::size_t m = std::min(b, n - 1 - jj);
    double* const xj = x + jj * nrhs;
    for (std::size_t r = 0; r < kBlk * nrhs; ++r) yblk[r] = 0.0;
    const double* const xs = x + jj * nrhs;
    std::size_t t = 1;
    for (; t + 7 <= m; t += 8) {
      const double l0 = colj[t], l1 = colj[t + 1], l2 = colj[t + 2];
      const double l3 = colj[t + 3], l4 = colj[t + 4], l5 = colj[t + 5];
      const double l6 = colj[t + 6], l7 = colj[t + 7];
      const double* const x0 = xs + t * nrhs;
      for (std::size_t r = 0; r < nrhs; ++r) {
        s0[r] += l0 * x0[r];
        s1[r] += l1 * x0[nrhs + r];
        s2[r] += l2 * x0[2 * nrhs + r];
        s3[r] += l3 * x0[3 * nrhs + r];
        s4[r] += l4 * x0[4 * nrhs + r];
        s5[r] += l5 * x0[5 * nrhs + r];
        s6[r] += l6 * x0[6 * nrhs + r];
        s7[r] += l7 * x0[7 * nrhs + r];
      }
    }
    for (; t <= m; ++t) {
      const double l = colj[t];
      const double* const xt = xs + t * nrhs;
      for (std::size_t r = 0; r < nrhs; ++r) s0[r] += l * xt[r];
    }
    for (std::size_t r = 0; r < nrhs; ++r) {
      xj[r] = (xj[r] - (((s0[r] + s1[r]) + (s2[r] + s3[r])) +
                        ((s4[r] + s5[r]) + (s6[r] + s7[r])))) /
              colj[0];
    }
  }
}

}  // namespace

void solve_multi_dispatch(const double* band, double* x, std::size_t n,
                          std::size_t b, std::size_t w, std::size_t nrhs) {
  // Instantiate the common batch widths so the per-row system loops are
  // compile-time-unrolled; anything else takes the runtime-width kernel.
  switch (nrhs) {
    case 2: solve_multi<2>(band, x, n, b, w, nrhs); return;
    case 3: solve_multi<3>(band, x, n, b, w, nrhs); return;
    case 4: solve_multi<4>(band, x, n, b, w, nrhs); return;
    case 5: solve_multi<5>(band, x, n, b, w, nrhs); return;
    case 6: solve_multi<6>(band, x, n, b, w, nrhs); return;
    case 7: solve_multi<7>(band, x, n, b, w, nrhs); return;
    case 8: solve_multi<8>(band, x, n, b, w, nrhs); return;
    case 9: solve_multi<9>(band, x, n, b, w, nrhs); return;
    case 10: solve_multi<10>(band, x, n, b, w, nrhs); return;
    case 11: solve_multi<11>(band, x, n, b, w, nrhs); return;
    case 12: solve_multi<12>(band, x, n, b, w, nrhs); return;
    case 13: solve_multi<13>(band, x, n, b, w, nrhs); return;
    case 14: solve_multi<14>(band, x, n, b, w, nrhs); return;
    case 15: solve_multi<15>(band, x, n, b, w, nrhs); return;
    case 16: solve_multi<16>(band, x, n, b, w, nrhs); return;
    default: solve_multi<0>(band, x, n, b, w, nrhs); return;
  }
}

}  // namespace liquid3d::detail
