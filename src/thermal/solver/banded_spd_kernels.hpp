// banded_spd_kernels.hpp — internal seam between BandedSpdMatrix and the
// multi-RHS triangular-solve kernels (banded_spd_multi.cpp), which live in
// their own translation unit so the build can give them a wider vector
// preference than the single-RHS path.  Not part of the public solver API.
#pragma once

#include <cstddef>

namespace liquid3d::detail {

/// Solve L L^T X = B for nrhs interleaved right-hand sides (layout
/// x[i * nrhs + r]); band/w describe the factorized lower band exactly as
/// stored by BandedSpdMatrix.  Each system's solution is bit-identical to a
/// standalone single-RHS solve of that column.
void solve_multi_dispatch(const double* band, double* x, std::size_t n,
                          std::size_t b, std::size_t w, std::size_t nrhs);

}  // namespace liquid3d::detail
