// banded_spd.hpp — symmetric positive-definite banded direct solver.
//
// The 3D thermal grid, ordered column-of-cells-major with layers innermost,
// produces an SPD matrix with half-bandwidth cols x layers.  Backward-Euler
// stepping solves with the same matrix thousands of times, so we factorize
// once (O(n b^2)) and back-substitute per step (O(n b)).
//
// Storage is LAPACK-style lower-band column-major ('L' of dpbtrf): column j
// of the band — the diagonal followed by the sub-diagonal entries — is a
// contiguous run of b+1 doubles.  The factorization is the right-looking
// (submatrix-update) variant, whose two inner-loop streams are both unit
// stride, and the triangular solves are column-oriented for the same reason;
// every hot loop auto-vectorizes.  The seed implementation kept the band
// row-major, which made every inner-loop access stride by the full band
// width (~1.7 KB at the production sizes) — one cache miss per multiply.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace liquid3d {

/// Lower-banded column-major storage: element (i, j) with j <= i <= j+b
/// lives at band_[j * (b+1) + (i - j)].
class BandedSpdMatrix {
 public:
  BandedSpdMatrix(std::size_t n, std::size_t half_bandwidth);

  [[nodiscard]] std::size_t size() const { return n_; }
  [[nodiscard]] std::size_t half_bandwidth() const { return b_; }

  /// Access A(i, j) for i in [j, j + b]; callers must keep j <= i.
  [[nodiscard]] double& at(std::size_t i, std::size_t j);
  [[nodiscard]] double at(std::size_t i, std::size_t j) const;

  /// Symmetric accumulate: adds g to A(i,i) and A(j,j), -g to A(max,min).
  void add_coupling(std::size_t i, std::size_t j, double g);
  /// Adds g to the diagonal A(i,i).
  void add_diagonal(std::size_t i, double g);

  /// Clears every entry and the factorized flag; the matrix can be
  /// re-assembled and factorized again.
  void set_zero();

  /// In-place Cholesky A = L L^T.  Throws LogicError if a pivot is not
  /// positive (matrix not SPD — indicates a malformed thermal network).
  void factorize();
  [[nodiscard]] bool factorized() const { return factorized_; }

  /// Solve A x = rhs using the factorization (rhs is overwritten with x).
  void solve(std::vector<double>& rhs) const;

  /// Batched multi-RHS solve.  `rhs` holds nrhs right-hand sides in
  /// node-major interleaved layout — rhs[i * nrhs + r] is row i of system r
  /// — so the per-row inner loop over systems is contiguous and the L
  /// column loaded for row i is reused across every system.  Overwrites
  /// `rhs` with the solutions in the same layout.  Each system's solution is
  /// BIT-IDENTICAL to a standalone single-RHS solve of that right-hand side
  /// (the kernel replicates the single-RHS operation order per system);
  /// batched transient scenarios rely on this for serial parity.
  void solve(std::span<double> rhs, std::size_t nrhs) const;

 private:
  std::size_t n_;
  std::size_t b_;
  std::size_t w_;  ///< column stride = b_ + 1
  std::vector<double> band_;
  bool factorized_ = false;
};

}  // namespace liquid3d
