#include "thermal/solver/banded_lu.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace liquid3d {

BandedLuMatrix::BandedLuMatrix(std::size_t n, std::size_t lower_bandwidth,
                               std::size_t upper_bandwidth)
    : n_(n),
      bl_(lower_bandwidth),
      bu_(upper_bandwidth),
      w_(lower_bandwidth + upper_bandwidth + 1),
      band_(n * (lower_bandwidth + upper_bandwidth + 1), 0.0) {
  LIQUID3D_REQUIRE(n > 0, "matrix must be non-empty");
}

double& BandedLuMatrix::at(std::size_t i, std::size_t j) {
  LIQUID3D_ASSERT(i < n_ && j < n_ && i + bu_ >= j && j + bl_ >= i,
                  "band index out of range");
  return band_[j * w_ + (i - j + bu_)];
}

double BandedLuMatrix::at(std::size_t i, std::size_t j) const {
  LIQUID3D_ASSERT(i < n_ && j < n_ && i + bu_ >= j && j + bl_ >= i,
                  "band index out of range");
  return band_[j * w_ + (i - j + bu_)];
}

void BandedLuMatrix::set_zero() {
  std::fill(band_.begin(), band_.end(), 0.0);
  factorized_ = false;
}

void BandedLuMatrix::factorize() {
  LIQUID3D_ASSERT(!factorized_, "matrix already factorized");
  double* const band = band_.data();
  for (std::size_t k = 0; k < n_; ++k) {
    double* const colk = band + k * w_;
    const double pivot = colk[bu_];
    LIQUID3D_ASSERT(std::abs(pivot) > 1e-300, "banded LU: vanishing pivot");
    const double inv = 1.0 / pivot;
    const std::size_t ml = std::min(bl_, n_ - 1 - k);
    for (std::size_t i = 1; i <= ml; ++i) colk[bu_ + i] *= inv;
    const std::size_t mu = std::min(bu_, n_ - 1 - k);
    for (std::size_t j = 1; j <= mu; ++j) {
      double* const colj = band + (k + j) * w_;
      const double ukj = colj[bu_ - j];
      if (ukj == 0.0) continue;
      double* const dst = colj + (bu_ - j);
      const double* const src = colk + bu_;
      for (std::size_t i = 1; i <= ml; ++i) dst[i] -= src[i] * ukj;
    }
  }
  factorized_ = true;
}

void BandedLuMatrix::solve(std::vector<double>& rhs) const {
  LIQUID3D_ASSERT(factorized_, "solve requires a factorized matrix");
  LIQUID3D_REQUIRE(rhs.size() == n_, "rhs size mismatch");
  const double* const band = band_.data();
  double* const x = rhs.data();
  // Forward, unit-diagonal L: once y[k] is final, push it down the column.
  for (std::size_t k = 0; k < n_; ++k) {
    const double yk = x[k];
    if (yk == 0.0) continue;
    const double* const colk = band + k * w_ + bu_;
    const std::size_t ml = std::min(bl_, n_ - 1 - k);
    for (std::size_t i = 1; i <= ml; ++i) x[k + i] -= colk[i] * yk;
  }
  // Backward, U: finalize x[j], then push it up the column.
  for (std::size_t jj = n_; jj-- > 0;) {
    const double* const colj = band + jj * w_ + bu_;
    const double xj = x[jj] / colj[0];
    x[jj] = xj;
    const std::size_t mu = std::min(bu_, jj);
    const double* const up = colj - jj;  // up[i] = U(i, jj)
    for (std::size_t i = jj - mu; i < jj; ++i) x[i] -= up[i] * xj;
  }
}

}  // namespace liquid3d
