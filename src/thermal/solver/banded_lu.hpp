// banded_lu.hpp — general (non-symmetric) banded LU direct solver.
//
// The liquid steady state admits an exact linear reduction: the coolant
// march is linear in the wall temperatures, and eliminating the fluid
// couples each silicon cell only to cells upstream in the same channel row
// — a distance of at most (cols-1)*layers + 1 node indices, i.e. within
// the thermal matrix's existing half-bandwidth.  The eliminated system is
// non-symmetric (advection is directional: upstream heats downstream, not
// vice versa), so it needs LU rather than Cholesky.  Factorization is
// unpivoted — thermal conduction networks with advection eliminated remain
// strictly diagonally dominant — with a pivot-magnitude check that fails
// loudly if an ill-formed network ever violates that.
#pragma once

#include <cstddef>
#include <vector>

namespace liquid3d {

/// Column-major band storage: element (i, j) with j - bu <= i <= j + bl
/// lives at band_[j * (bl + bu + 1) + (i - j + bu)] — each column is a
/// contiguous run, upper band first.
class BandedLuMatrix {
 public:
  BandedLuMatrix(std::size_t n, std::size_t lower_bandwidth,
                 std::size_t upper_bandwidth);

  [[nodiscard]] std::size_t size() const { return n_; }
  [[nodiscard]] std::size_t lower_bandwidth() const { return bl_; }
  [[nodiscard]] std::size_t upper_bandwidth() const { return bu_; }

  /// Access A(i, j); |i - j| must be within the respective bandwidth.
  [[nodiscard]] double& at(std::size_t i, std::size_t j);
  [[nodiscard]] double at(std::size_t i, std::size_t j) const;
  /// Accumulate v into A(i, j).
  void add(std::size_t i, std::size_t j, double v) { at(i, j) += v; }

  void set_zero();

  /// In-place unpivoted LU (Doolittle: unit lower L).  Throws LogicError on
  /// a vanishing pivot.
  void factorize();
  [[nodiscard]] bool factorized() const { return factorized_; }

  /// Solve A x = rhs in place.
  void solve(std::vector<double>& rhs) const;

 private:
  std::size_t n_;
  std::size_t bl_;
  std::size_t bu_;
  std::size_t w_;  ///< column stride = bl_ + bu_ + 1
  std::vector<double> band_;
  bool factorized_ = false;
};

}  // namespace liquid3d
