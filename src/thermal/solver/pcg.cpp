#include "thermal/solver/pcg.hpp"

#include <algorithm>
#include <cmath>
#include <string>

#include "common/error.hpp"
#include "common/fault_injection.hpp"
#include "obs/metrics.hpp"

namespace liquid3d {

namespace {

double dot(const std::vector<double>& a, const std::vector<double>& b) {
  double acc = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) acc += a[i] * b[i];
  return acc;
}

}  // namespace

const char* to_string(PcgPreconditioner p) {
  switch (p) {
    case PcgPreconditioner::kJacobi: return "jacobi";
    case PcgPreconditioner::kSsor: return "ssor";
    case PcgPreconditioner::kIncompleteCholesky: return "ic0";
  }
  return "?";
}

PcgPreconditioner pcg_preconditioner_from_name(std::string_view s) {
  if (s == "jacobi") return PcgPreconditioner::kJacobi;
  if (s == "ssor") return PcgPreconditioner::kSsor;
  if (s == "ic0") return PcgPreconditioner::kIncompleteCholesky;
  throw ConfigError("unknown preconditioner name '" + std::string(s) + "'");
}

PcgSolver::PcgSolver(SparseMatrix matrix, PcgParams params)
    : a_(std::move(matrix)), params_(params) {
  LIQUID3D_REQUIRE(a_.finalized(), "PcgSolver needs a finalized matrix");
  LIQUID3D_REQUIRE(params_.tolerance > 0.0, "tolerance must be positive");
  LIQUID3D_REQUIRE(params_.max_iterations >= 1, "need at least one iteration");
  LIQUID3D_REQUIRE(params_.ssor_omega > 0.0 && params_.ssor_omega < 2.0,
                   "SSOR omega must lie in (0, 2)");
  const std::size_t n = a_.size();
  r_.assign(n, 0.0);
  z_.assign(n, 0.0);
  p_.assign(n, 0.0);
  q_.assign(n, 0.0);
  build_jacobi();  // SSOR also uses the inverse diagonal
  if (params_.preconditioner == PcgPreconditioner::kIncompleteCholesky) {
    build_ic0();
  }
}

void PcgSolver::build_jacobi() {
  const std::size_t n = a_.size();
  inv_diag_.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double d = a_.diagonal(i);
    LIQUID3D_REQUIRE(d > 0.0, "PCG requires a positive diagonal");
    inv_diag_[i] = 1.0 / d;
  }
}

void PcgSolver::build_ic0() {
  // IC(0): Cholesky restricted to the sparsity of lower(A).  Stored as a
  // lower CSR whose rows end with the diagonal; with ~3 sub-diagonal
  // entries per row the row-intersection inner loop is effectively O(1).
  const std::size_t n = a_.size();
  const auto& rp = a_.row_ptr();
  const auto& ci = a_.col();
  const auto& av = a_.val();

  lrow_ptr_.assign(n + 1, 0);
  for (std::size_t i = 0; i < n; ++i) {
    lrow_ptr_[i + 1] = lrow_ptr_[i] + (a_.diag_index(i) - rp[i] + 1);
  }
  lcol_.resize(lrow_ptr_[n]);
  lval_.resize(lrow_ptr_[n]);
  for (std::size_t i = 0; i < n; ++i) {
    std::size_t out = lrow_ptr_[i];
    for (std::size_t p = rp[i]; p <= a_.diag_index(i); ++p, ++out) {
      lcol_[out] = ci[p];
      lval_[out] = av[p];
    }
  }

  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t row_lo = lrow_ptr_[i];
    const std::size_t row_diag = lrow_ptr_[i + 1] - 1;  // diag last (sorted)
    for (std::size_t p = row_lo; p < row_diag; ++p) {
      const std::size_t k = lcol_[p];
      const std::size_t k_lo = lrow_ptr_[k];
      const std::size_t k_diag = lrow_ptr_[k + 1] - 1;
      double s = lval_[p];
      // s -= Σ_j L(i,j) L(k,j) over the shared sparsity j < k.
      std::size_t pi = row_lo;
      std::size_t pk = k_lo;
      while (pi < p && pk < k_diag) {
        if (lcol_[pi] == lcol_[pk]) {
          s -= lval_[pi] * lval_[pk];
          ++pi;
          ++pk;
        } else if (lcol_[pi] < lcol_[pk]) {
          ++pi;
        } else {
          ++pk;
        }
      }
      lval_[p] = s / lval_[k_diag];
    }
    double d = lval_[row_diag];
    for (std::size_t p = row_lo; p < row_diag; ++p) d -= lval_[p] * lval_[p];
    // Diagonally dominant M-matrices (every thermal operator we assemble)
    // cannot break down here; fail loudly if handed something else.
    LIQUID3D_REQUIRE(d > 0.0, "IC(0) breakdown: matrix is not an H-matrix");
    lval_[row_diag] = std::sqrt(d);
  }
}

void PcgSolver::apply_preconditioner(const double* r, double* z) const {
  const std::size_t n = a_.size();
  switch (params_.preconditioner) {
    case PcgPreconditioner::kJacobi: {
      for (std::size_t i = 0; i < n; ++i) z[i] = r[i] * inv_diag_[i];
      return;
    }
    case PcgPreconditioner::kSsor: {
      // M = (D + ωL) D⁻¹ (D + ωU) / (ω(2-ω)), applied as a forward sweep, a
      // diagonal scaling folded into the backward sweep, and a final scale.
      const double w = params_.ssor_omega;
      const auto& rp = a_.row_ptr();
      const auto& ci = a_.col();
      const auto& av = a_.val();
      for (std::size_t i = 0; i < n; ++i) {
        double acc = r[i];
        const std::size_t diag = a_.diag_index(i);
        for (std::size_t p = rp[i]; p < diag; ++p) acc -= w * av[p] * z[ci[p]];
        z[i] = acc * inv_diag_[i];
      }
      for (std::size_t i = n; i-- > 0;) {
        double acc = 0.0;
        const std::size_t diag = a_.diag_index(i);
        for (std::size_t p = diag + 1; p < rp[i + 1]; ++p) {
          acc += av[p] * z[ci[p]];
        }
        z[i] -= w * acc * inv_diag_[i];
      }
      const double scale = w * (2.0 - w);
      for (std::size_t i = 0; i < n; ++i) z[i] *= scale;
      return;
    }
    case PcgPreconditioner::kIncompleteCholesky: {
      // Forward solve L y = r, then backward solve Lᵀ z = y, in place.
      for (std::size_t i = 0; i < n; ++i) {
        const std::size_t diag = lrow_ptr_[i + 1] - 1;
        double acc = r[i];
        for (std::size_t p = lrow_ptr_[i]; p < diag; ++p) {
          acc -= lval_[p] * z[lcol_[p]];
        }
        z[i] = acc / lval_[diag];
      }
      for (std::size_t i = n; i-- > 0;) {
        const std::size_t diag = lrow_ptr_[i + 1] - 1;
        const double zi = z[i] / lval_[diag];
        z[i] = zi;
        for (std::size_t p = lrow_ptr_[i]; p < diag; ++p) {
          z[lcol_[p]] -= lval_[p] * zi;
        }
      }
      return;
    }
  }
}

PcgSummary PcgSolver::solve(const double* b, double* x) {
  // Profiling hooks (out of band; see docs/observability.md): wall time
  // per solve, iteration count, and final relative residual.  Iteration
  // growth with grid resolution is the ROADMAP's preconditioner metric.
  static obs::Histogram& solve_h =
      obs::Registry::global().histogram("liquid3d_pcg_solve_seconds");
  static obs::Histogram& iters_h =
      obs::Registry::global().histogram("liquid3d_pcg_iterations");
  static obs::Histogram& resid_h =
      obs::Registry::global().histogram("liquid3d_pcg_residual");
  obs::ScopedTimer timer(solve_h);
  const auto finish = [this]() -> PcgSummary {
    if (obs::enabled()) {
      iters_h.record_always(static_cast<double>(last_.iterations));
      resid_h.record_always(last_.relative_residual);
    }
    return last_;
  };
  const std::size_t n = a_.size();
  ++solves_;
  // Chaos site: report a full-budget non-converged solve without touching
  // the iterate, exactly the shape a genuine stall presents to callers.
  if (fault_injection::should_fail("pcg.solve")) {
    last_ = {params_.max_iterations, 1.0, false};
    return finish();
  }

  double b_norm2 = 0.0;
  for (std::size_t i = 0; i < n; ++i) b_norm2 += b[i] * b[i];
  if (b_norm2 == 0.0) {
    std::fill(x, x + n, 0.0);
    last_ = {0, 0.0, true};
    return finish();
  }
  const double target2 =
      params_.tolerance * params_.tolerance * b_norm2;

  a_.multiply(x, q_.data());
  for (std::size_t i = 0; i < n; ++i) r_[i] = b[i] - q_[i];
  double r_norm2 = dot(r_, r_);
  if (r_norm2 <= target2) {
    last_ = {0, std::sqrt(r_norm2 / b_norm2), true};
    return finish();
  }

  apply_preconditioner(r_.data(), z_.data());
  p_ = z_;
  double rz = dot(r_, z_);

  std::size_t it = 0;
  bool converged = false;
  while (it < params_.max_iterations) {
    ++it;
    a_.multiply(p_.data(), q_.data());
    const double pq = dot(p_, q_);
    // Curvature breakdown means the operator handed to us is not SPD for
    // this right-hand side — a numerical outcome (SolverError), since the
    // same assembly succeeds at other operating points.
    if (!(pq > 0.0)) {
      throw SolverError("PCG breakdown: operator is not positive definite",
                        "pcg", it, std::sqrt(r_norm2 / b_norm2));
    }
    const double alpha = rz / pq;
    for (std::size_t i = 0; i < n; ++i) {
      x[i] += alpha * p_[i];
      r_[i] -= alpha * q_[i];
    }
    r_norm2 = dot(r_, r_);
    if (r_norm2 <= target2) {
      converged = true;
      break;
    }
    apply_preconditioner(r_.data(), z_.data());
    const double rz_next = dot(r_, z_);
    const double beta = rz_next / rz;
    rz = rz_next;
    for (std::size_t i = 0; i < n; ++i) p_[i] = z_[i] + beta * p_[i];
  }

  total_iterations_ += it;
  last_ = {it, std::sqrt(r_norm2 / b_norm2), converged};
  return finish();
}

}  // namespace liquid3d
