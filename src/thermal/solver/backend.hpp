// backend.hpp — which linear solver family serves a thermal model.
//
// The backward-Euler systems can be solved two ways:
//
//   kDirect — banded Cholesky (solver/banded_spd.hpp): factorize once per
//             dt at O(n b^2), back-substitute per solve at O(n b).  Exact,
//             cache-friendly, and unbeatable while the half-bandwidth
//             b = cols x layers stays modest (every grid the tests and the
//             paper evaluation use today).
//   kPcg    — preconditioned conjugate gradient over CSR (solver/pcg.hpp):
//             no factorization, O(nnz) ≈ O(7n) per iteration, warm-started
//             from the previous temperature field.  Wins when the band gets
//             fat — the paper's native 100 µm grid drives b into the
//             thousands, where O(n b^2) assembly hits the wall.
//   kAuto   — pick per model from the bandwidth-driven cost model below;
//             resolves to kDirect for every current grid.
#pragma once

#include <cstddef>
#include <string_view>

namespace liquid3d {

enum class SolverBackend { kAuto, kDirect, kPcg };

[[nodiscard]] const char* to_string(SolverBackend b);
[[nodiscard]] SolverBackend solver_backend_from_name(std::string_view s);

/// Resolve kAuto to a concrete backend for an n-node system of the given
/// half-bandwidth; explicit requests pass through untouched.
///
/// Cost model (per solve, per row): the direct path costs ~2b flops of
/// back-substitution plus b^2 / kDirectFactorAmortization of factorization
/// (one factorization serves the ~hundreds of solves a cached dt sees);
/// PCG costs ~kPcgIterationEstimate iterations of ~kPcgFlopsPerRow each,
/// sized for the IC(0)-preconditioned stencil.  With the constants below
/// the cutover lands near b ≈ 340 — far above every current grid (b ≤ 208),
/// safely below the paper-native regime (b ≥ 1000).
[[nodiscard]] SolverBackend resolve_solver_backend(SolverBackend requested,
                                                   std::size_t n,
                                                   std::size_t half_bandwidth);

}  // namespace liquid3d
