// sparse_matrix.hpp — compressed-sparse-row matrix for the iterative
// thermal backend.
//
// The 7-point conduction stencil has ~4 neighbours per node regardless of
// grid size, so at the paper's native 100 µm resolution — where the banded
// solvers' half-bandwidth b = cols x layers climbs into the thousands and
// their O(n b^2) factorization cost hits the wall — the system is
// overwhelmingly sparse: nnz ≈ 7n versus the band's n(b+1) stored entries.
// CSR keeps exactly the nonzeros, makes the matrix-vector product O(nnz),
// and gives the preconditioners (solver/pcg.hpp) ordered row access to the
// lower/upper triangles.
//
// Assembly mirrors BandedSpdMatrix: the same add_diagonal/add_coupling
// calls, fed by the same ThermalModel3D::build_* topology walk, so the two
// backends assemble the identical operator.  Entries accumulate into a
// coordinate buffer; finalize() compresses to CSR (rows contiguous, columns
// sorted ascending, duplicates merged) after which the structure is
// immutable.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace liquid3d {

class SparseMatrix {
 public:
  explicit SparseMatrix(std::size_t n);

  [[nodiscard]] std::size_t size() const { return n_; }
  /// Stored nonzeros (valid after finalize()).
  [[nodiscard]] std::size_t nnz() const { return val_.size(); }
  [[nodiscard]] bool finalized() const { return finalized_; }

  /// Adds g to A(i,i).
  void add_diagonal(std::size_t i, double g);
  /// Symmetric accumulate: adds g to A(i,i) and A(j,j), -g to A(i,j) and
  /// A(j,i) — the same conductance stamp BandedSpdMatrix::add_coupling makes.
  void add_coupling(std::size_t i, std::size_t j, double g);

  /// Compress the accumulated entries to CSR.  Every diagonal must have
  /// been touched (thermal systems always stamp the full diagonal).
  void finalize();

  /// y = A x (finalized matrices only).
  void multiply(const double* x, double* y) const;

  // -- CSR access (preconditioners) -------------------------------------------
  /// Row i occupies [row_ptr()[i], row_ptr()[i+1]) in col()/val(), columns
  /// sorted ascending.
  [[nodiscard]] const std::vector<std::size_t>& row_ptr() const { return row_ptr_; }
  [[nodiscard]] const std::vector<std::uint32_t>& col() const { return col_; }
  [[nodiscard]] const std::vector<double>& val() const { return val_; }
  /// Index of A(i,i) within col()/val().
  [[nodiscard]] std::size_t diag_index(std::size_t i) const { return diag_pos_[i]; }
  [[nodiscard]] double diagonal(std::size_t i) const { return val_[diag_pos_[i]]; }

 private:
  struct Entry {
    std::uint32_t row;
    std::uint32_t col;
    double v;
  };

  std::size_t n_;
  bool finalized_ = false;
  std::vector<double> diag_;       ///< diagonal accumulator (pre-finalize)
  std::vector<Entry> coords_;      ///< off-diagonal accumulator (pre-finalize)
  std::vector<std::size_t> row_ptr_;
  std::vector<std::uint32_t> col_;
  std::vector<double> val_;
  std::vector<std::size_t> diag_pos_;
};

}  // namespace liquid3d
