#include "thermal/banded_cholesky.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace liquid3d {

BandedSpdMatrix::BandedSpdMatrix(std::size_t n, std::size_t half_bandwidth)
    : n_(n), b_(half_bandwidth), band_(n * (half_bandwidth + 1), 0.0) {
  LIQUID3D_REQUIRE(n > 0, "matrix must be non-empty");
}

double& BandedSpdMatrix::at(std::size_t i, std::size_t j) {
  LIQUID3D_ASSERT(j <= i && i - j <= b_ && i < n_, "band index out of range");
  return band_[i * (b_ + 1) + (j - i + b_)];
}

double BandedSpdMatrix::at(std::size_t i, std::size_t j) const {
  LIQUID3D_ASSERT(j <= i && i - j <= b_ && i < n_, "band index out of range");
  return band_[i * (b_ + 1) + (j - i + b_)];
}

void BandedSpdMatrix::add_coupling(std::size_t i, std::size_t j, double g) {
  LIQUID3D_ASSERT(i != j, "coupling requires distinct nodes");
  const std::size_t lo = std::min(i, j);
  const std::size_t hi = std::max(i, j);
  at(lo, lo) += g;
  at(hi, hi) += g;
  at(hi, lo) -= g;
}

void BandedSpdMatrix::add_diagonal(std::size_t i, double g) { at(i, i) += g; }

void BandedSpdMatrix::set_zero() {
  std::fill(band_.begin(), band_.end(), 0.0);
  factorized_ = false;
}

void BandedSpdMatrix::factorize() {
  LIQUID3D_ASSERT(!factorized_, "matrix already factorized");
  const std::size_t w = b_ + 1;
  for (std::size_t j = 0; j < n_; ++j) {
    // Diagonal pivot.
    double d = band_[j * w + b_];
    const std::size_t k_lo = (j >= b_) ? j - b_ : 0;
    for (std::size_t k = k_lo; k < j; ++k) {
      const double ljk = band_[j * w + (k - j + b_)];
      d -= ljk * ljk;
    }
    LIQUID3D_ASSERT(d > 0.0, "banded Cholesky: non-positive pivot");
    const double ljj = std::sqrt(d);
    band_[j * w + b_] = ljj;
    const double inv = 1.0 / ljj;
    // Column below the pivot.
    const std::size_t i_hi = std::min(n_ - 1, j + b_);
    for (std::size_t i = j + 1; i <= i_hi; ++i) {
      double s = band_[i * w + (j - i + b_)];
      const std::size_t kk_lo = std::max((i >= b_) ? i - b_ : 0, k_lo);
      for (std::size_t k = kk_lo; k < j; ++k) {
        s -= band_[i * w + (k - i + b_)] * band_[j * w + (k - j + b_)];
      }
      band_[i * w + (j - i + b_)] = s * inv;
    }
  }
  factorized_ = true;
}

void BandedSpdMatrix::solve(std::vector<double>& rhs) const {
  LIQUID3D_ASSERT(factorized_, "solve requires a factorized matrix");
  LIQUID3D_REQUIRE(rhs.size() == n_, "rhs size mismatch");
  const std::size_t w = b_ + 1;
  // Forward: L y = rhs.
  for (std::size_t i = 0; i < n_; ++i) {
    double s = rhs[i];
    const std::size_t k_lo = (i >= b_) ? i - b_ : 0;
    for (std::size_t k = k_lo; k < i; ++k) {
      s -= band_[i * w + (k - i + b_)] * rhs[k];
    }
    rhs[i] = s / band_[i * w + b_];
  }
  // Backward: L^T x = y.
  for (std::size_t ii = n_; ii-- > 0;) {
    double s = rhs[ii];
    const std::size_t j_hi = std::min(n_ - 1, ii + b_);
    for (std::size_t j = ii + 1; j <= j_hi; ++j) {
      s -= band_[j * w + (ii - j + b_)] * rhs[j];
    }
    rhs[ii] = s / band_[ii * w + b_];
  }
}

}  // namespace liquid3d
