// batch_stepper.hpp — lockstep transient stepping of several independent
// ThermalModel3D instances through ONE shared banded Cholesky factorization.
//
// Independent simulations that share a stack geometry and a step size share
// a system matrix: the backward-Euler matrix depends only on the conduction
// topology and 1/dt, never on the runtime inputs (power map, per-cavity
// flow, fluid state).  Advancing N such models together therefore needs one
// factor stream per step instead of N — the models' RHS vectors are packed
// node-major interleaved and routed through the multi-RHS
// BandedSpdMatrix::solve(span, nrhs), whose per-system arithmetic replicates
// the single-RHS kernel exactly.
//
// Bit-identity contract: step(models, dt) leaves every model in exactly the
// state models[i]->step(dt) would have — the per-model silicon<->fluid
// fixed point keeps its own convergence trajectory (models that converge
// early are masked out of subsequent shared solves rather than over-solved).
//
// The shared factor stream applies to the direct (banded Cholesky) backend;
// models resolved to the PCG backend (solver/backend.hpp) step serially —
// trivially bit-identical — since an iterative solve has no factorization
// to share.  Batches are always backend-homogeneous: the topology
// fingerprint mixes the resolved backend in.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "thermal/model3d.hpp"

namespace liquid3d {

class BatchThermalStepper {
 public:
  /// Advance every model by one backward-Euler step of `dt_s` seconds,
  /// sharing models[0]'s cached factorization.  All models must have equal
  /// `topology_fingerprint()` (same stack geometry and thermal parameters —
  /// enforced); inputs (power, flow, temperatures) may differ freely.
  void step(std::span<ThermalModel3D* const> models, double dt_s);

  /// Shared multi-RHS solves issued so far (one per fluid fixed-point
  /// iteration per step; a serial run would have issued one per model).
  [[nodiscard]] std::uint64_t shared_solves() const { return shared_solves_; }
  /// Single-model RHS columns routed through those solves.
  [[nodiscard]] std::uint64_t solved_columns() const { return solved_columns_; }

 private:
  std::vector<double> packed_;  ///< node-major interleaved RHS block
  std::vector<ThermalModel3D*> active_;
  std::vector<ThermalModel3D*> next_active_;
  std::uint64_t shared_solves_ = 0;
  std::uint64_t solved_columns_ = 0;
};

}  // namespace liquid3d
