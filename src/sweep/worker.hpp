// worker.hpp — run one shard of a distributed sweep, checkpointing every
// completed cell.
//
// The worker reconstructs the shard's ExperimentSuite from the shard file's
// suite metadata (so make_config — characterization artifacts, cell seeds,
// scenario binding — is bit-for-bit the single-process path), skips cells
// already present in the journal, and runs the rest in chunks:
//
//   * kBatched (default): each chunk goes through a BatchRunner, so
//     compatible cells within the chunk share one thermal factorization in
//     lockstep — the PR 3 multi-RHS win, now per shard;
//   * kThreadPool: one session per worker thread, for wide shards of
//     incompatible cells.
//
// Both are bit-identical to serial runs.  After a chunk completes, each
// cell's result is appended to the journal (fsync per cell), so the
// checkpoint granularity is `batch_limit` cells: a SIGKILL costs at most
// one chunk of recomputation and never corrupts the journal.
//
// Failure containment: a SolverError anywhere in a cell's solve is a
// per-cell outcome, never a shard-killing exception.  The failing cell is
// evicted from its lockstep group (siblings keep their shared
// factorization semantics — on a batched SolverError the chunk re-runs
// solo, which is bit-identical by the locked batch==solo contract) and
// retried through an escalation ladder: attempt 1 as configured, attempt 2
// on the direct backend, attempt 3 direct with relaxed tolerances/budgets.
// A cell that exhausts `max_cell_attempts` becomes a FAILED journal record
// carrying the error text and the attempt count; ConfigError/LogicError
// still propagate (they are not numerical outcomes and retrying cannot
// help).
#pragma once

#include <cstddef>
#include <string>

#include "sweep/journal.hpp"
#include "sweep/plan.hpp"

namespace liquid3d {

struct SweepWorkerOptions {
  SuiteExecution execution = SuiteExecution::kBatched;
  /// Cells per lockstep chunk (checkpoint granularity).  1 = journal after
  /// every single cell; larger values trade resume granularity for more
  /// factorization sharing.
  std::size_t batch_limit = 8;
  /// Stop after journaling this many new cells (the shard is then left
  /// partially complete).  Drives deterministic kill/resume tests and the
  /// CI smoke job; production workers leave it unlimited.
  std::size_t max_new_cells = static_cast<std::size_t>(-1);
  /// Worker threads for the kThreadPool execution (0 = hardware
  /// concurrency).
  std::size_t worker_threads = 0;
  /// Solve attempts per cell before it is journaled as FAILED: 1 = as
  /// configured, 2 = direct backend, 3 = direct backend with relaxed
  /// tolerances.  Values above 3 repeat the most-relaxed rung.
  std::size_t max_cell_attempts = 3;
};

struct SweepWorkerStats {
  std::size_t total_cells = 0;    ///< cells in the shard
  std::size_t already_done = 0;   ///< journaled before this run (resume)
  std::size_t completed = 0;      ///< newly run and journaled by this run
  std::size_t failed = 0;         ///< newly journaled as FAILED by this run
  std::size_t remaining = 0;      ///< left undone (max_new_cells cutoff)
};

/// Where a worker writes its JSONL metrics heartbeat: one line at chunk
/// start and one per completed chunk, next to the journal, so a
/// supervisor (or an operator's tail -f) can see liveness + throughput
/// without parsing the journal itself.  See docs/observability.md.
[[nodiscard]] std::string sweep_metrics_path(const std::string& journal_path);

/// Run (or resume) `shard` against the journal at `journal_path`.
/// Unknown workload names or scenarios that fail to bind throw ConfigError
/// naming the cell.  Safe to call again after a crash or cutoff: journaled
/// cells (completed or FAILED) are never recomputed.  SolverError never
/// escapes — cell-scoped numerical failures become FAILED journal records
/// after the escalation ladder runs dry.
SweepWorkerStats run_sweep_shard(const SweepCellFile& shard,
                                 const std::string& journal_path,
                                 const SweepWorkerOptions& options = {});

}  // namespace liquid3d
