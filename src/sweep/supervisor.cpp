#include "sweep/supervisor.hpp"

#include <signal.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <cmath>
#include <cstring>
#include <thread>

#include "common/error.hpp"
#include "sweep/worker.hpp"

namespace liquid3d {

namespace {

using Clock = std::chrono::steady_clock;

/// File size in bytes; 0 when the file does not exist yet.
std::uint64_t file_size(const std::string& path) {
  struct stat st{};
  if (::stat(path.c_str(), &st) != 0) return 0;
  return static_cast<std::uint64_t>(st.st_size);
}

/// The progress heartbeat: journal bytes (the worker fsyncs an append per
/// finished cell) plus the worker's JSONL metrics heartbeat next to it
/// (a chunk_start line lands before the first cell completes, so a
/// worker grinding through a slow first chunk is not misread as stalled).
std::uint64_t journal_size(const std::string& path) {
  return file_size(path) + file_size(sweep_metrics_path(path));
}

pid_t spawn(const std::vector<std::string>& argv) {
  std::vector<char*> cargv;
  cargv.reserve(argv.size() + 1);
  for (const std::string& a : argv) cargv.push_back(const_cast<char*>(a.c_str()));
  cargv.push_back(nullptr);
  const pid_t pid = ::fork();
  LIQUID3D_REQUIRE(pid >= 0,
                   std::string("supervisor: fork failed: ") + std::strerror(errno));
  if (pid == 0) {
    ::execvp(cargv[0], cargv.data());
    // exec failed; report distinctly from any worker exit code and avoid
    // running the parent's atexit machinery in the forked child.
    ::_exit(127);
  }
  return pid;
}

enum class WorkerPhase { kPending, kRunning, kBackoff, kSucceeded, kGivenUp };

struct WorkerState {
  WorkerReport report;
  std::vector<std::string> argv;
  WorkerPhase phase = WorkerPhase::kPending;
  pid_t pid = -1;
  Clock::time_point next_start;        ///< earliest respawn (kBackoff)
  Clock::time_point last_progress;     ///< last journal growth (kRunning)
  std::uint64_t last_size = 0;
};

}  // namespace

std::chrono::milliseconds restart_backoff(const SupervisorOptions& options,
                                          std::size_t restart_index) {
  const double factor =
      std::pow(options.backoff_multiplier, static_cast<double>(restart_index));
  const double ms =
      static_cast<double>(options.initial_backoff.count()) * factor;
  const double cap = static_cast<double>(options.max_backoff.count());
  return std::chrono::milliseconds(
      static_cast<std::chrono::milliseconds::rep>(std::min(ms, cap)));
}

SupervisorResult supervise_sweep(const SupervisorOptions& options) {
  LIQUID3D_REQUIRE(!options.shard_paths.empty(), "supervisor: no shards");
  LIQUID3D_REQUIRE(options.shard_paths.size() == options.journal_paths.size(),
                   "supervisor: shard/journal arity mismatch");
  LIQUID3D_REQUIRE(options.command_override.empty() ||
                       options.command_override.size() ==
                           options.shard_paths.size(),
                   "supervisor: command_override arity mismatch");
  LIQUID3D_REQUIRE(options.backoff_multiplier >= 1.0,
                   "supervisor: backoff_multiplier must be >= 1");

  std::vector<WorkerState> workers(options.shard_paths.size());
  for (std::size_t i = 0; i < workers.size(); ++i) {
    WorkerState& w = workers[i];
    w.report.shard_path = options.shard_paths[i];
    w.report.journal_path = options.journal_paths[i];
    if (!options.command_override.empty() &&
        !options.command_override[i].empty()) {
      w.argv = options.command_override[i];
    } else {
      LIQUID3D_REQUIRE(!options.worker_binary.empty(),
                       "supervisor: worker_binary not set");
      w.argv = {options.worker_binary, "run", "--shard",
                options.shard_paths[i], "--journal", options.journal_paths[i]};
      w.argv.insert(w.argv.end(), options.extra_args.begin(),
                    options.extra_args.end());
    }
    w.next_start = Clock::now();
  }

  auto live = [&] {
    for (const WorkerState& w : workers) {
      if (w.phase != WorkerPhase::kSucceeded &&
          w.phase != WorkerPhase::kGivenUp) {
        return true;
      }
    }
    return false;
  };

  while (live()) {
    const Clock::time_point now = Clock::now();
    for (WorkerState& w : workers) {
      if ((w.phase == WorkerPhase::kPending ||
           w.phase == WorkerPhase::kBackoff) &&
          now >= w.next_start) {
        w.pid = spawn(w.argv);
        ++w.report.spawns;
        w.phase = WorkerPhase::kRunning;
        w.last_size = journal_size(w.report.journal_path);
        w.last_progress = now;
        continue;
      }
      if (w.phase != WorkerPhase::kRunning) continue;

      int status = 0;
      const pid_t reaped = ::waitpid(w.pid, &status, WNOHANG);
      if (reaped == w.pid) {
        w.pid = -1;
        if (WIFEXITED(status)) {
          w.report.last_exit_code = WEXITSTATUS(status);
          w.report.last_signal = 0;
        } else if (WIFSIGNALED(status)) {
          w.report.last_exit_code = 0;
          w.report.last_signal = WTERMSIG(status);
        }
        if (WIFEXITED(status) && WEXITSTATUS(status) == 0) {
          w.phase = WorkerPhase::kSucceeded;
          w.report.succeeded = true;
        } else if (w.report.spawns > options.max_restarts) {
          w.phase = WorkerPhase::kGivenUp;
        } else {
          // Restart r is the r-th respawn (0-based): spawns counts the
          // initial launch too.
          w.phase = WorkerPhase::kBackoff;
          w.next_start = now + restart_backoff(options, w.report.spawns - 1);
        }
        continue;
      }

      // Still running: journal-progress watchdog.
      if (options.stall_timeout.count() > 0) {
        const std::uint64_t size = journal_size(w.report.journal_path);
        if (size != w.last_size) {
          w.last_size = size;
          w.last_progress = now;
        } else if (now - w.last_progress >= options.stall_timeout) {
          // Wedged by the only liveness signal we trust; the kill is safe
          // (fsync-per-record journal) and the next poll reaps + restarts.
          ::kill(w.pid, SIGKILL);
          ++w.report.stall_kills;
          w.last_progress = now;  // one kill per stall window
        }
      }
    }
    std::this_thread::sleep_for(options.poll_interval);
  }

  SupervisorResult result;
  result.all_succeeded = true;
  for (WorkerState& w : workers) {
    result.all_succeeded = result.all_succeeded && w.report.succeeded;
    result.workers.push_back(std::move(w.report));
  }
  return result;
}

}  // namespace liquid3d
