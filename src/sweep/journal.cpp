#include "sweep/journal.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <fstream>
#include <sstream>

#include "common/csv.hpp"
#include "common/error.hpp"
#include "common/fault_injection.hpp"
#include "common/parse.hpp"
#include "sim/report.hpp"

namespace liquid3d {

namespace {

const std::vector<std::string>& journal_csv_header() {
  static const std::vector<std::string> header = [] {
    std::vector<std::string> h = {"cell"};
    const std::vector<std::string>& result = simulation_result_csv_header();
    h.insert(h.end(), result.begin(), result.end());
    return h;
  }();
  return header;
}

void write_all(int fd, const std::string& data, const std::string& path) {
  std::size_t off = 0;
  while (off < data.size()) {
    const ssize_t n = ::write(fd, data.data() + off, data.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw ConfigError("journal '" + path + "': write failed: " +
                        std::strerror(errno));
    }
    off += static_cast<std::size_t>(n);
  }
}

/// Byte length of the longest prefix ending on a record boundary: a '\n'
/// outside quotes.  Mirrors read_csv_record's quote rules (a quote opens a
/// quoted field only at field start; doubled quotes are literals).
std::size_t terminated_prefix_size(const std::string& data) {
  bool in_quotes = false;
  bool at_field_start = true;
  std::size_t valid = 0;
  for (std::size_t i = 0; i < data.size(); ++i) {
    const char ch = data[i];
    if (in_quotes) {
      if (ch == '"') {
        if (i + 1 < data.size() && data[i + 1] == '"') {
          ++i;
        } else {
          in_quotes = false;
        }
      }
    } else if (ch == '"' && at_field_start) {
      in_quotes = true;
      at_field_start = false;
    } else if (ch == ',') {
      at_field_start = true;
    } else if (ch == '\n') {
      valid = i + 1;
      at_field_start = true;
    } else {
      at_field_start = false;
    }
  }
  return valid;
}

}  // namespace

SweepJournal::SweepJournal(std::string path) : path_(std::move(path)) {
  fd_ = ::open(path_.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
  LIQUID3D_REQUIRE(fd_ >= 0, "cannot open journal '" + path_ +
                                 "': " + std::strerror(errno));
  // Repair a torn tail before appending: a crash mid-write leaves a partial
  // record with no terminating newline, and O_APPEND would otherwise weld
  // the next entry onto it.  Truncating to the last record boundary keeps
  // every surviving byte parseable.
  // (The scan reads from byte 0 — quoted labels may contain newlines, so
  // the last record boundary cannot be found by a backward search.)
  std::string data;
  {
    std::ifstream scan(path_, std::ios::binary | std::ios::ate);
    const std::streamoff size = scan.good() ? std::streamoff(scan.tellg()) : 0;
    if (size > 0) {
      data.resize(static_cast<std::size_t>(size));
      scan.seekg(0);
      scan.read(data.data(), size);
    }
  }
  const std::size_t valid = terminated_prefix_size(data);
  // The preamble is usable only if a complete non-comment line (the header
  // row) survived: a crash inside the initial write can persist the schema
  // comment but tear the header, and appending entries after a bare comment
  // would make the journal permanently unloadable.  Comments appear only
  // before the header, so the first non-'#' line in the valid prefix is it.
  bool has_header = false;
  for (std::size_t pos = 0; pos < valid;
       pos = data.find('\n', pos) + 1) {
    if (data[pos] != '#') {
      has_header = true;
      break;
    }
  }
  if (!has_header) {
    // Fresh, fully torn, or comment-only journal: restart it with the
    // schema comment + header row, synced before any entry so a loader
    // never sees entries without a header.
    LIQUID3D_REQUIRE(::ftruncate(fd_, 0) == 0,
                     "journal '" + path_ + "': cannot truncate torn header");
    write_all(fd_, "#liquid3d-sweep-journal v1\n" +
                       to_csv_line(journal_csv_header()),
              path_);
    ::fsync(fd_);
  } else if (valid < data.size()) {
    LIQUID3D_REQUIRE(::ftruncate(fd_, static_cast<off_t>(valid)) == 0,
                     "journal '" + path_ + "': cannot truncate torn tail");
  }
}

SweepJournal::~SweepJournal() {
  if (fd_ >= 0) ::close(fd_);
}

void SweepJournal::append(const JournalEntry& entry) {
  std::vector<std::string> row;
  if (entry.failed) {
    row = {"FAILED",        std::to_string(entry.cell),
           entry.scenario,  entry.workload,
           entry.error,     std::to_string(entry.attempts)};
  } else {
    row = {std::to_string(entry.cell)};
    const std::vector<std::string> result = to_csv_row(entry.result);
    row.insert(row.end(), result.begin(), result.end());
  }
  const std::string line = to_csv_line(row);
  // Chaos site: persist a torn prefix (no terminating newline) and then
  // fail, the exact on-disk state a crash between write(2) and fsync(2)
  // leaves behind.  load() must drop it, and the next open must truncate it
  // rather than weld the following record onto it.
  if (fault_injection::should_fail("journal.append")) {
    write_all(fd_, line.substr(0, line.size() / 2), path_);
    ::fsync(fd_);
    throw ConfigError("journal '" + path_ + "': injected write failure");
  }
  // One contiguous write per record: a crash tears at most the tail record,
  // which load() drops.
  write_all(fd_, line, path_);
  if (::fsync(fd_) != 0) {
    throw ConfigError("journal '" + path_ + "': fsync failed: " +
                      std::strerror(errno));
  }
}

std::vector<JournalEntry> SweepJournal::load(const std::string& path) {
  std::ifstream in(path);
  if (!in.good()) return {};  // not started yet

  std::vector<JournalEntry> entries;
  std::size_t row_number = 0;
  auto fail = [&](const std::string& msg) -> void {
    throw ConfigError("journal '" + path + "' row " +
                      std::to_string(row_number) + ": " + msg);
  };

  while (in.peek() == '#') {
    std::string comment;
    std::getline(in, comment);
    ++row_number;
  }

  std::vector<std::string> record;
  bool terminated = false;
  ++row_number;
  if (!read_csv_record(in, record, &terminated)) return {};  // header-only crash
  if (!terminated) return {};  // torn header: no entries yet
  if (record != journal_csv_header()) fail("mismatched journal header row");

  while (read_csv_record(in, record, &terminated)) {
    ++row_number;
    if (!terminated) break;  // torn tail from a killed worker: drop it
    JournalEntry entry;
    if (!record.empty() && record[0] == "FAILED") {
      if (record.size() != 6) {
        fail("FAILED entry arity mismatch: got " +
             std::to_string(record.size()) + " columns, expected 6");
      }
      entry.failed = true;
      try {
        entry.cell =
            static_cast<std::size_t>(parse_u64(record[1], "column 'cell'"));
        entry.scenario = record[2];
        entry.workload = record[3];
        entry.error = record[4];
        entry.attempts = static_cast<std::size_t>(
            parse_u64(record[5], "column 'attempts'"));
      } catch (const std::exception& e) {
        fail(e.what());
      }
      entries.push_back(std::move(entry));
      continue;
    }
    const std::size_t arity = journal_csv_header().size();
    if (record.size() != arity) {
      fail("entry arity mismatch: got " + std::to_string(record.size()) +
           " columns, expected " + std::to_string(arity));
    }
    try {
      entry.cell = static_cast<std::size_t>(parse_u64(record[0], "column 'cell'"));
      entry.result = simulation_result_from_csv_row(
          std::vector<std::string>(record.begin() + 1, record.end()));
    } catch (const std::exception& e) {
      fail(e.what());
    }
    entries.push_back(std::move(entry));
  }
  return entries;
}

}  // namespace liquid3d
