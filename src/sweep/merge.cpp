#include "sweep/merge.hpp"

#include <algorithm>
#include <iterator>
#include <map>
#include <ostream>

#include "common/csv.hpp"
#include "common/error.hpp"
#include "sim/report.hpp"

namespace liquid3d {

std::vector<PolicySummary> merge_sweep_entries(
    const SweepCellFile& plan, const std::vector<JournalEntry>& entries,
    SweepMergeStats* stats, const SweepMergeOptions& options,
    std::vector<SweepFailure>* manifest) {
  SweepMergeStats local;
  local.entries = entries.size();

  const std::size_t workload_count = plan.grid.workloads.size();
  const std::size_t cell_count = plan.grid.cell_count();
  LIQUID3D_REQUIRE(plan.cells.size() == cell_count,
                   "plan file does not cover its full grid (" +
                       std::to_string(plan.cells.size()) + " cells, grid is " +
                       std::to_string(cell_count) + ") — merge needs the "
                       "planner's plan.csv, not a shard file");

  // Key by grid index.  std::map (not order-of-arrival) makes the fold
  // independent of journal order; conflicting duplicates are an error, not
  // a race to resolve.  Completed and FAILED records fold separately: a
  // cell can legitimately carry both (one shard gave up, a rerun
  // succeeded), and the completed result always wins.
  std::map<std::size_t, const SimulationResult*> by_cell;
  std::map<std::size_t, const JournalEntry*> failed_by_cell;
  for (const JournalEntry& e : entries) {
    LIQUID3D_REQUIRE(e.cell < cell_count,
                     "journal entry for cell " + std::to_string(e.cell) +
                         " is outside the plan's " +
                         std::to_string(cell_count) + "-cell grid");
    if (e.failed) {
      // Keep-first: FAILED payloads may differ between attempts (different
      // error text from different rungs), and no choice affects the merged
      // report — only the manifest.
      const auto [it, inserted] = failed_by_cell.emplace(e.cell, &e);
      if (!inserted) ++local.duplicates;
      continue;
    }
    const auto [it, inserted] = by_cell.emplace(e.cell, &e.result);
    if (!inserted) {
      LIQUID3D_REQUIRE(
          results_identical(*it->second, e.result),
          "conflicting duplicate journal entries for cell " +
              std::to_string(e.cell) +
              " — shards disagree, the determinism contract is broken");
      ++local.duplicates;
    }
  }

  // Every cell with no completed result is either FAILED (a worker
  // exhausted its ladder and said so) or missing (no worker got there).
  std::vector<SweepFailure> failures;
  for (std::size_t i = 0; i < cell_count; ++i) {
    if (by_cell.find(i) != by_cell.end()) continue;
    SweepFailure f;
    f.cell = i;
    const auto failed = failed_by_cell.find(i);
    if (failed != failed_by_cell.end()) {
      f.scenario = failed->second->scenario;
      f.workload = failed->second->workload;
      f.error = failed->second->error;
      f.attempts = failed->second->attempts;
      ++local.failed;
    } else {
      f.scenario = plan.cells[i].scenario.name;
      f.workload = plan.cells[i].workload;
      f.error = "missing from every journal";
      ++local.missing;
    }
    failures.push_back(std::move(f));
  }

  if (!failures.empty() && !options.allow_partial) {
    std::string msg = "sweep incomplete: ";
    msg += std::to_string(failures.size());
    msg += " of ";
    msg += std::to_string(cell_count);
    msg += " cells unusable (";
    msg += std::to_string(local.failed);
    msg += " FAILED, ";
    msg += std::to_string(local.missing);
    msg += " missing; first:";
    for (std::size_t i = 0; i < std::min<std::size_t>(failures.size(), 8);
         ++i) {
      msg += ' ';
      msg += std::to_string(failures[i].cell);
    }
    throw ConfigError(msg + ") — rerun the shards or merge --allow-partial");
  }

  // Placeholder rows for degraded cells: labeled so a reader of the merged
  // CSV can see which operating point the row stands for, deterministic so
  // two degraded merges of the same journals stay byte-identical.
  std::map<std::size_t, SimulationResult> placeholders;
  for (const SweepFailure& f : failures) {
    SimulationResult placeholder;
    placeholder.label = plan.grid.scenarios[f.cell / workload_count]
                            .display_label();
    placeholder.benchmark = plan.cells[f.cell].workload;
    by_cell.emplace(f.cell,
                    &placeholders.emplace(f.cell, std::move(placeholder))
                         .first->second);
  }

  // Regroup exactly like ExperimentSuite::run: one summary per scenario in
  // plan order, per_workload in workload order.
  std::vector<PolicySummary> summaries;
  summaries.reserve(plan.grid.scenarios.size());
  for (std::size_t s = 0; s < plan.grid.scenarios.size(); ++s) {
    PolicySummary summary;
    summary.label = plan.grid.scenarios[s].display_label();
    summary.per_workload.reserve(workload_count);
    for (std::size_t w = 0; w < workload_count; ++w) {
      summary.per_workload.push_back(*by_cell.at(s * workload_count + w));
    }
    summaries.push_back(std::move(summary));
  }

  local.cells = cell_count;
  if (stats != nullptr) *stats = local;
  if (manifest != nullptr) *manifest = std::move(failures);
  return summaries;
}

std::vector<PolicySummary> merge_sweep_journals(
    const std::string& plan_path,
    const std::vector<std::string>& journal_paths, SweepMergeStats* stats,
    const SweepMergeOptions& options, std::vector<SweepFailure>* manifest) {
  const SweepCellFile plan = read_sweep_file(plan_path);
  std::vector<JournalEntry> entries;
  for (const std::string& path : journal_paths) {
    std::vector<JournalEntry> loaded = SweepJournal::load(path);
    entries.insert(entries.end(), std::make_move_iterator(loaded.begin()),
                   std::make_move_iterator(loaded.end()));
  }
  return merge_sweep_entries(plan, entries, stats, options, manifest);
}

void write_failure_manifest_csv(std::ostream& out,
                                const std::vector<SweepFailure>& manifest) {
  out << to_csv_line({"cell", "scenario", "workload", "error", "attempts"});
  for (const SweepFailure& f : manifest) {
    out << to_csv_line({std::to_string(f.cell), f.scenario, f.workload,
                        f.error, std::to_string(f.attempts)});
  }
}

}  // namespace liquid3d
