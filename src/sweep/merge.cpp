#include "sweep/merge.hpp"

#include <algorithm>
#include <iterator>
#include <map>

#include "common/error.hpp"
#include "sim/report.hpp"

namespace liquid3d {

std::vector<PolicySummary> merge_sweep_entries(
    const SweepCellFile& plan, const std::vector<JournalEntry>& entries,
    SweepMergeStats* stats) {
  SweepMergeStats local;
  local.entries = entries.size();

  const std::size_t workload_count = plan.grid.workloads.size();
  const std::size_t cell_count = plan.grid.cell_count();
  LIQUID3D_REQUIRE(plan.cells.size() == cell_count,
                   "plan file does not cover its full grid (" +
                       std::to_string(plan.cells.size()) + " cells, grid is " +
                       std::to_string(cell_count) + ") — merge needs the "
                       "planner's plan.csv, not a shard file");

  // Key by grid index.  std::map (not order-of-arrival) makes the fold
  // independent of journal order; conflicting duplicates are an error, not
  // a race to resolve.
  std::map<std::size_t, const SimulationResult*> by_cell;
  for (const JournalEntry& e : entries) {
    LIQUID3D_REQUIRE(e.cell < cell_count,
                     "journal entry for cell " + std::to_string(e.cell) +
                         " is outside the plan's " +
                         std::to_string(cell_count) + "-cell grid");
    const auto [it, inserted] = by_cell.emplace(e.cell, &e.result);
    if (!inserted) {
      LIQUID3D_REQUIRE(
          results_identical(*it->second, e.result),
          "conflicting duplicate journal entries for cell " +
              std::to_string(e.cell) +
              " — shards disagree, the determinism contract is broken");
      ++local.duplicates;
    }
  }

  std::vector<std::size_t> missing;
  for (std::size_t i = 0; i < cell_count; ++i) {
    if (by_cell.find(i) == by_cell.end()) missing.push_back(i);
  }
  if (!missing.empty()) {
    std::string msg = "sweep incomplete: ";
    msg += std::to_string(missing.size());
    msg += " of ";
    msg += std::to_string(cell_count);
    msg += " cells missing from the journals (first missing:";
    for (std::size_t i = 0; i < std::min<std::size_t>(missing.size(), 8); ++i) {
      msg += ' ';
      msg += std::to_string(missing[i]);
    }
    throw ConfigError(msg + ")");
  }

  // Regroup exactly like ExperimentSuite::run: one summary per scenario in
  // plan order, per_workload in workload order.
  std::vector<PolicySummary> summaries;
  summaries.reserve(plan.grid.scenarios.size());
  for (std::size_t s = 0; s < plan.grid.scenarios.size(); ++s) {
    PolicySummary summary;
    summary.label = plan.grid.scenarios[s].display_label();
    summary.per_workload.reserve(workload_count);
    for (std::size_t w = 0; w < workload_count; ++w) {
      summary.per_workload.push_back(*by_cell.at(s * workload_count + w));
    }
    summaries.push_back(std::move(summary));
  }

  local.cells = cell_count;
  if (stats != nullptr) *stats = local;
  return summaries;
}

std::vector<PolicySummary> merge_sweep_journals(
    const std::string& plan_path,
    const std::vector<std::string>& journal_paths, SweepMergeStats* stats) {
  const SweepCellFile plan = read_sweep_file(plan_path);
  std::vector<JournalEntry> entries;
  for (const std::string& path : journal_paths) {
    std::vector<JournalEntry> loaded = SweepJournal::load(path);
    entries.insert(entries.end(), std::make_move_iterator(loaded.begin()),
                   std::make_move_iterator(loaded.end()));
  }
  return merge_sweep_entries(plan, entries, stats);
}

}  // namespace liquid3d
