// journal.hpp — per-shard append-only checkpoint journal.
//
// A sweep worker appends one record per completed cell — the cell's grid
// index plus its full SimulationResult CSV row — and fsyncs after every
// append, so a worker killed mid-shard loses at most the cells whose solves
// were in flight.  On restart the worker loads the journal and skips every
// journaled cell; the merge reads the same files.
//
// Durability model: each record is written with a single write(2) on an
// O_APPEND descriptor followed by fsync(2).  A crash can therefore leave at
// most one torn record at the tail; the loader detects it (missing
// terminating newline, or EOF inside a quoted field) and drops it.  Any
// malformed record before the tail means real corruption and throws.
// Duplicate cell indices are legal — a worker re-run after an unsynced
// journal write recomputes the cell deterministically, so duplicates carry
// identical payloads (the merge verifies exactly that).
//
// Besides completed cells, a journal may hold FAILED records — cells whose
// solves kept failing through the worker's quarantine ladder.  They are
// rows whose first column is the literal `FAILED` (never confusable with a
// numeric cell index) followed by cell, scenario, workload, error, and the
// attempt count, so old journals (no FAILED rows) still load byte-for-byte
// and old ok-rows are written unchanged.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "sim/session.hpp"

namespace liquid3d {

struct JournalEntry {
  std::size_t cell = 0;  ///< grid index from the shard plan
  SimulationResult result;

  // FAILED records: `result` is empty; the fields below say what died.
  bool failed = false;
  std::string scenario;
  std::string workload;
  std::string error;
  std::size_t attempts = 0;
};

class SweepJournal {
 public:
  /// Open (create if absent) the journal for appending; a fresh/empty file
  /// gets the schema header first.  Throws ConfigError when unopenable.
  explicit SweepJournal(std::string path);
  ~SweepJournal();

  SweepJournal(const SweepJournal&) = delete;
  SweepJournal& operator=(const SweepJournal&) = delete;

  /// Append one completed cell: single write, then fsync.
  void append(const JournalEntry& entry);

  [[nodiscard]] const std::string& path() const { return path_; }

  /// Parse a journal file.  A missing file is an empty journal (the worker
  /// has simply not started yet); a torn tail record is dropped; malformed
  /// interior records throw ConfigError with the row number.
  [[nodiscard]] static std::vector<JournalEntry> load(const std::string& path);

 private:
  std::string path_;
  int fd_ = -1;
};

}  // namespace liquid3d
