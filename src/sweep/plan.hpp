// plan.hpp — shard planner for distributed experiment sweeps.
//
// ExperimentSuite::run holds an entire policy x workload grid in one
// process; reproducing the paper's sweeps at production scale means
// spreading that grid over many worker processes (and machines).  The seam
// was prepared deliberately: cells are serializable ScenarioSpec CSV rows,
// cell seeds are position-independent, and results export through
// sim/report.hpp.  This header closes the loop:
//
//   SweepGridSpec  — the grid axes (scenarios x workload names) plus the
//                    suite-level parameters every cell shares, in exactly
//                    the serializable subset a worker needs to reconstruct
//                    ExperimentSuite::make_config bit-for-bit;
//   SweepCell      — one cell with its canonical grid position (the merge
//                    key; the seed does NOT depend on it);
//   plan_sweep     — expand the grid and partition the cells into K shards,
//                    round-robin or cost-weighted (LPT over the PR 4 solver
//                    cost model: per-cell grid size, stack depth, backend);
//   write/read     — shard files: '#'-prefixed suite metadata, then one
//                    RFC-4180 CSV row per cell (scenario columns + workload).
//
// A shard file is self-contained: `sweep_worker run` needs nothing else.
// The plan file is simply the shard schema holding ALL cells in grid order;
// the merge reads it to recover scenario/workload order and labels.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "sim/experiment.hpp"
#include "sim/scenario.hpp"

namespace liquid3d {

/// The serializable identity of a sweep: grid axes + shared suite knobs.
/// Anything else in SuiteConfig::base (custom thermal constants, phases...)
/// deliberately does not ship — a sweep that needs those runs in-process.
struct SweepGridSpec {
  std::vector<ScenarioSpec> scenarios;
  /// Table II workload names, resolved through find_benchmark at run time.
  std::vector<std::string> workloads;
  std::size_t layer_pairs = 1;
  SimTime duration = SimTime::from_s(60);
  std::uint64_t seed = 7;
  bool dpm_enabled = true;
  /// Thermal grid override (0 = ThermalModelParams defaults).  Shipped so
  /// coarse-grid smoke sweeps reproduce bit-exactly across processes.
  std::size_t grid_rows = 0;
  std::size_t grid_cols = 0;
  /// Stack specs referenced by scenarios' `stack` axes, embedded so workers
  /// rebuild identical geometry with no access to the original stack files.
  /// Serialized as `#suite stack=` tokens (encode_stack_spec); populated
  /// from file-path axes by resolve_grid_stacks (presets need no embedding).
  std::vector<StackSpec> stacks;

  [[nodiscard]] std::size_t cell_count() const {
    return scenarios.size() * workloads.size();
  }
};

/// One grid cell.  `index` is the scenario-major position
/// (scenario_idx * workloads.size() + workload_idx) — the journal/merge
/// key.  Results never depend on it: cell_seed mixes identity only.
struct SweepCell {
  std::size_t index = 0;
  ScenarioSpec scenario;
  std::string workload;
};

enum class ShardStrategy {
  kRoundRobin,    ///< cell i -> shard i % K
  kCostWeighted,  ///< LPT greedy over estimate_cell_cost (balanced wall-clock)
};

[[nodiscard]] const char* to_string(ShardStrategy s);
[[nodiscard]] ShardStrategy shard_strategy_from_name(std::string_view s);

/// The SuiteConfig a worker (or the single-process reference run)
/// reconstructs from the grid spec.  Every field a shard file serializes
/// lands here; everything else keeps its default.
[[nodiscard]] SuiteConfig to_suite_config(const SweepGridSpec& grid);

/// Expand the grid into cells in canonical scenario-major order.
[[nodiscard]] std::vector<SweepCell> expand_grid(const SweepGridSpec& grid);

/// Resolve every scenario's `stack` axis and embed the specs the grid needs
/// to be self-contained: file-path axes are loaded (the axis string becomes
/// the spec's name) and appended to grid.stacks; presets and already
/// embedded names are left alone.  Throws ConfigError for an unresolvable
/// axis or a cooling mismatch — planning fails fast, not on a worker.
void resolve_grid_stacks(SweepGridSpec& grid);

/// Relative wall-clock cost of one cell under the PR 4 solver cost model:
/// ticks x substeps x per-substep solve cost, where the solve cost follows
/// the resolved backend (direct back-substitution ~ n*b plus amortized
/// factorization; PCG ~ n x estimated iterations), plus the fluid march on
/// liquid stacks.  Deterministic and cheap (geometry only, no model build).
[[nodiscard]] double estimate_cell_cost(const SweepGridSpec& grid,
                                        const ScenarioSpec& scenario);

/// Partition `cells` into exactly `shard_count` shards (some possibly
/// empty).  Round-robin preserves grid interleaving; cost-weighted runs LPT
/// (longest-processing-time greedy) with deterministic tie-breaking, so the
/// same grid always shards the same way.
[[nodiscard]] std::vector<std::vector<SweepCell>> partition_cells(
    const SweepGridSpec& grid, std::vector<SweepCell> cells,
    std::size_t shard_count, ShardStrategy strategy);

// -- Shard/plan files ---------------------------------------------------------

/// Write suite metadata ('#' comment lines) + header + one row per cell.
void write_sweep_cells(std::ostream& out, const SweepGridSpec& grid,
                       const std::vector<SweepCell>& cells);

/// A parsed shard (or plan) file: the shared suite metadata, the cells, and
/// the grid axes reconstructed from the cells in index order.  For a plan
/// file (all cells) the reconstruction recovers the full grid; for a shard
/// it covers just the shard's slice — enough for a worker.
struct SweepCellFile {
  SweepGridSpec grid;  ///< scenarios/workloads in order of first appearance
  std::vector<SweepCell> cells;
};

/// Inverse of write_sweep_cells.  Malformed input throws ConfigError with
/// `source` and the 1-based row number, plus the offending column for
/// scenario fields.
[[nodiscard]] SweepCellFile read_sweep_cells(std::istream& in,
                                             const std::string& source);

/// Plan a sweep and write `<dir>/<prefix>-plan.csv` plus
/// `<dir>/<prefix>-shard-NNN.csv` for each shard.  Returns the shard file
/// paths (plan path excluded), in shard order.
[[nodiscard]] std::vector<std::string> write_sweep_plan(
    const SweepGridSpec& grid, std::size_t shard_count, ShardStrategy strategy,
    const std::string& dir, const std::string& prefix = "sweep");

/// Read one shard/plan file from disk; throws ConfigError when unreadable.
[[nodiscard]] SweepCellFile read_sweep_file(const std::string& path);

}  // namespace liquid3d
