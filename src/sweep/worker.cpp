#include "sweep/worker.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <optional>
#include <unordered_set>

#include "common/error.hpp"
#include "common/fault_injection.hpp"
#include "common/thread_pool.hpp"
#include "obs/metrics.hpp"
#include "sim/batch_runner.hpp"
#include "sim/simulator.hpp"
#include "workload/benchmarks.hpp"

namespace liquid3d {

std::string sweep_metrics_path(const std::string& journal_path) {
  return journal_path + ".metrics.jsonl";
}

namespace {

/// Appends one JSONL heartbeat line per chunk boundary next to the
/// journal.  Advisory telemetry: plain buffered appends (no fsync — a
/// torn final line costs nothing; the journal holds the durable state),
/// and disabled entirely by the obs kill switch.
class MetricsHeartbeat {
 public:
  MetricsHeartbeat(const std::string& journal_path,
                   const SweepWorkerStats& stats)
      : stats_(stats), enabled_(obs::enabled()) {
    if (enabled_) {
      out_.open(sweep_metrics_path(journal_path), std::ios::app);
      enabled_ = out_.is_open();
    }
  }

  void chunk_start(std::size_t chunk, std::size_t cells) {
    chunk_began_ = std::chrono::steady_clock::now();
    line("chunk_start", chunk, cells, /*with_rate=*/false, 0.0);
  }

  void chunk_end(std::size_t chunk, std::size_t cells) {
    const double elapsed =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      chunk_began_)
            .count();
    line("chunk_end", chunk, cells, /*with_rate=*/true, elapsed);
  }

 private:
  void line(const char* event, std::size_t chunk, std::size_t cells,
            bool with_rate, double elapsed_s) {
    if (!enabled_) return;
    const auto ts_ms =
        std::chrono::duration_cast<std::chrono::milliseconds>(
            std::chrono::system_clock::now().time_since_epoch())
            .count();
    char buf[256];
    if (with_rate) {
      const double rate =
          elapsed_s > 0.0 ? static_cast<double>(cells) / elapsed_s : 0.0;
      std::snprintf(buf, sizeof(buf),
                    "{\"ts_ms\":%lld,\"event\":\"%s\",\"chunk\":%zu,"
                    "\"cells\":%zu,\"completed\":%zu,\"failed\":%zu,"
                    "\"total\":%zu,\"elapsed_s\":%.3f,\"cells_per_s\":%.3f}\n",
                    static_cast<long long>(ts_ms), event, chunk, cells,
                    stats_.completed, stats_.failed, stats_.total_cells,
                    elapsed_s, rate);
    } else {
      std::snprintf(buf, sizeof(buf),
                    "{\"ts_ms\":%lld,\"event\":\"%s\",\"chunk\":%zu,"
                    "\"cells\":%zu,\"completed\":%zu,\"failed\":%zu,"
                    "\"total\":%zu}\n",
                    static_cast<long long>(ts_ms), event, chunk, cells,
                    stats_.completed, stats_.failed, stats_.total_cells);
    }
    out_ << buf;
    out_.flush();  // a supervisor tails this file for liveness
  }

  const SweepWorkerStats& stats_;
  bool enabled_;
  std::ofstream out_;
  std::chrono::steady_clock::time_point chunk_began_{};
};

/// What the worker knows about one pending cell while its chunk runs.
struct CellSlot {
  const SweepCell* cell = nullptr;
  BenchmarkSpec workload;
  bool ok = false;              ///< result is valid
  bool quarantined = false;     ///< needs the escalation ladder
  SimulationResult result;
  std::string error;            ///< last failure (quarantined / FAILED)
  std::size_t attempts = 0;     ///< ladder attempts consumed
};

/// Loosen every budget/tolerance a stall can hit.  Only the most-relaxed
/// rung of the ladder uses this: it trades accuracy for an answer, which is
/// still better than no record at all for a pathological operating point.
void relax_thermal_params(ThermalModelParams& p) {
  p.pcg.tolerance *= 1e4;
  p.pcg.max_iterations *= 4;
  p.max_steady_iterations *= 4;
  p.steady_tolerance *= 10.0;
  p.max_fluid_iterations *= 2;
}

/// One rung of the escalation ladder (attempt is 1-based).  Rebuilds the
/// config from the suite each time: the backend lives on the seed-neutral
/// ScenarioSpec::solver axis, so characterization artifacts rebuild
/// correctly for the escalated backend instead of being patched in place.
SimulationResult run_cell_attempt(ExperimentSuite& suite, const SweepCell& cell,
                                  const BenchmarkSpec& workload,
                                  std::size_t attempt) {
  if (fault_injection::should_fail("worker.cell", cell.index)) {
    throw SolverError("injected worker.cell fault");
  }
  ScenarioSpec scenario = cell.scenario;
  if (attempt >= 2) scenario.solver = SolverBackend::kDirect;
  SimulationConfig cfg = suite.make_config(scenario, workload);
  if (attempt >= 3) relax_thermal_params(cfg.thermal);
  Simulator sim(cfg);
  return sim.run();
}

/// Drive one quarantined cell up the ladder.  Returns with slot.ok set on
/// success; otherwise slot.error / slot.attempts describe the FAILED record
/// to journal.  Only SolverError is retried — anything else propagates.
void run_cell_quarantined(ExperimentSuite& suite, CellSlot& slot,
                          std::size_t max_attempts) {
  while (slot.attempts < max_attempts) {
    ++slot.attempts;
    try {
      slot.result =
          run_cell_attempt(suite, *slot.cell, slot.workload, slot.attempts);
      slot.ok = true;
      return;
    } catch (const SolverError& e) {
      slot.error = e.what();
    }
  }
}

}  // namespace

SweepWorkerStats run_sweep_shard(const SweepCellFile& shard,
                                 const std::string& journal_path,
                                 const SweepWorkerOptions& options) {
  LIQUID3D_REQUIRE(options.batch_limit >= 1, "batch_limit must be >= 1");
  LIQUID3D_REQUIRE(options.max_cell_attempts >= 1,
                   "max_cell_attempts must be >= 1");

  SweepWorkerStats stats;
  stats.total_cells = shard.cells.size();

  // Resume: everything already journaled is done — completed results are
  // deterministic (recomputing reproduces the same bytes) and FAILED cells
  // already exhausted their ladder, so neither is retried.
  std::unordered_set<std::size_t> done;
  for (const JournalEntry& e : SweepJournal::load(journal_path)) {
    done.insert(e.cell);
  }

  std::vector<const SweepCell*> pending;
  for (const SweepCell& cell : shard.cells) {
    if (done.count(cell.index) != 0) {
      ++stats.already_done;
    } else {
      pending.push_back(&cell);
    }
  }
  const std::size_t budget = std::min(options.max_new_cells, pending.size());
  stats.remaining = pending.size() - budget;
  pending.resize(budget);

  ExperimentSuite suite(to_suite_config(shard.grid));
  SweepJournal journal(journal_path);

  // Fleet observability: chunk timings in the global registry plus a
  // JSONL heartbeat next to the journal (liveness before the first
  // journal append, throughput after every chunk).
  static obs::Counter& completed_c = obs::Registry::global().counter(
      "liquid3d_sweep_cells_completed_total");
  static obs::Counter& failed_c =
      obs::Registry::global().counter("liquid3d_sweep_cells_failed_total");
  static obs::Histogram& chunk_h =
      obs::Registry::global().histogram("liquid3d_sweep_chunk_seconds");
  MetricsHeartbeat heartbeat(journal_path, stats);
  std::size_t chunk_index = 0;

  for (std::size_t begin = 0; begin < pending.size();
       begin += options.batch_limit) {
    const std::size_t end =
        std::min(begin + options.batch_limit, pending.size());

    heartbeat.chunk_start(chunk_index, end - begin);
    obs::ScopedTimer chunk_timer(chunk_h);

    std::vector<CellSlot> slots(end - begin);

    // Phase 1: bind workloads and build the chunk's configs up front on
    // this thread (make_config fills the shared characterization cache),
    // exactly like ExperimentSuite::run.  A SolverError here (the
    // characterization itself solves steady states) quarantines the cell;
    // ConfigError still names the cell and escapes — retrying cannot fix a
    // malformed configuration.
    std::vector<SimulationConfig> configs;
    std::vector<std::size_t> config_slot;  // slots index per config
    configs.reserve(slots.size());
    for (std::size_t i = 0; i < slots.size(); ++i) {
      CellSlot& slot = slots[i];
      slot.cell = pending[begin + i];
      const std::optional<BenchmarkSpec> workload =
          find_benchmark(slot.cell->workload);
      LIQUID3D_REQUIRE(workload.has_value(),
                       "cell " + std::to_string(slot.cell->index) +
                           ": unknown workload '" + slot.cell->workload + "'");
      slot.workload = *workload;
      if (fault_injection::should_fail("worker.cell", slot.cell->index)) {
        slot.quarantined = true;
        slot.error = "injected worker.cell fault";
        continue;
      }
      try {
        configs.push_back(suite.make_config(slot.cell->scenario, *workload));
        config_slot.push_back(i);
      } catch (const SolverError& e) {
        slot.quarantined = true;
        slot.error = e.what();
        slot.attempts = 1;  // the as-configured rung already ran and failed
      } catch (const ConfigError& e) {
        throw ConfigError("cell " + std::to_string(slot.cell->index) + " ('" +
                          slot.cell->scenario.name + "'): " + e.what());
      }
    }

    // Phase 2: run the buildable cells of the chunk.  When quarantine
    // already swallowed every cell (small chunks, aggressive faults) there
    // is nothing to run — BatchRunner rejects an empty session list.
    if (configs.empty()) {
      // fall through to the escalation ladder
    } else if (options.execution == SuiteExecution::kBatched) {
      // A SolverError inside a lockstep batch aborts the whole group with
      // no per-cell attribution, so on failure (or an injected
      // worker.chunk fault) the chunk falls back to solo re-runs — which
      // are bit-identical to the batch by the locked batch==solo contract,
      // so surviving cells' bytes cannot change.
      bool batch_ok = false;
      if (!fault_injection::should_fail("worker.chunk")) {
        try {
          BatchRunner batch;
          for (SimulationConfig& cfg : configs) batch.add(std::move(cfg));
          std::vector<SimulationResult> results = batch.run();
          for (std::size_t c = 0; c < results.size(); ++c) {
            slots[config_slot[c]].result = std::move(results[c]);
            slots[config_slot[c]].ok = true;
          }
          batch_ok = true;
        } catch (const SolverError&) {
          // fall through to the solo re-run below
        }
      }
      if (!batch_ok) {
        for (const std::size_t i : config_slot) {
          CellSlot& slot = slots[i];
          ++slot.attempts;  // this solo run is the cell's as-configured rung
          try {
            slot.result = run_cell_attempt(suite, *slot.cell, slot.workload,
                                           slot.attempts);
            slot.ok = true;
          } catch (const SolverError& e) {
            slot.quarantined = true;
            slot.error = e.what();
          }
        }
      }
    } else {
      ThreadPool pool(options.worker_threads == 0
                          ? ThreadPool::default_concurrency()
                          : options.worker_threads);
      pool.parallel_for(0, configs.size(), [&](std::size_t c) {
        CellSlot& slot = slots[config_slot[c]];
        try {
          Simulator sim(configs[c]);
          slot.result = sim.run();
          slot.ok = true;
        } catch (const SolverError& e) {
          // Per-cell containment; non-solver exceptions propagate through
          // the pool's first-exception rethrow.
          slot.quarantined = true;
          slot.error = e.what();
          slot.attempts = 1;  // this pool run was the as-configured rung
        }
      });
    }

    // Phase 3: escalation ladder for everything quarantined above, serial
    // (a quarantined cell is pathological — keep it away from siblings).
    for (CellSlot& slot : slots) {
      if (slot.ok || !slot.quarantined) continue;
      run_cell_quarantined(suite, slot, options.max_cell_attempts);
    }

    // Phase 4: checkpoint the chunk in shard order, fsync per cell.
    // Completed cells write the same bytes as a fault-free run; exhausted
    // cells write FAILED records.
    for (CellSlot& slot : slots) {
      JournalEntry entry;
      entry.cell = slot.cell->index;
      if (slot.ok) {
        entry.result = std::move(slot.result);
        ++stats.completed;
        completed_c.add();
      } else {
        entry.failed = true;
        entry.scenario = slot.cell->scenario.name;
        entry.workload = slot.cell->workload;
        entry.error = slot.error;
        entry.attempts = slot.attempts;
        ++stats.failed;
        failed_c.add();
      }
      journal.append(entry);
    }

    chunk_timer.stop();
    heartbeat.chunk_end(chunk_index, end - begin);
    ++chunk_index;
  }
  return stats;
}

}  // namespace liquid3d
