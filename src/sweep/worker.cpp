#include "sweep/worker.hpp"

#include <algorithm>
#include <optional>
#include <unordered_set>

#include "common/error.hpp"
#include "common/thread_pool.hpp"
#include "sim/batch_runner.hpp"
#include "sim/simulator.hpp"
#include "workload/benchmarks.hpp"

namespace liquid3d {

SweepWorkerStats run_sweep_shard(const SweepCellFile& shard,
                                 const std::string& journal_path,
                                 const SweepWorkerOptions& options) {
  LIQUID3D_REQUIRE(options.batch_limit >= 1, "batch_limit must be >= 1");

  SweepWorkerStats stats;
  stats.total_cells = shard.cells.size();

  // Resume: everything already journaled is done — results are
  // deterministic, so recomputing would only reproduce the same bytes.
  std::unordered_set<std::size_t> done;
  for (const JournalEntry& e : SweepJournal::load(journal_path)) {
    done.insert(e.cell);
  }

  std::vector<const SweepCell*> pending;
  for (const SweepCell& cell : shard.cells) {
    if (done.count(cell.index) != 0) {
      ++stats.already_done;
    } else {
      pending.push_back(&cell);
    }
  }
  const std::size_t budget = std::min(options.max_new_cells, pending.size());
  stats.remaining = pending.size() - budget;
  pending.resize(budget);

  ExperimentSuite suite(to_suite_config(shard.grid));
  SweepJournal journal(journal_path);

  for (std::size_t begin = 0; begin < pending.size();
       begin += options.batch_limit) {
    const std::size_t end =
        std::min(begin + options.batch_limit, pending.size());

    // Build the chunk's configs up front on this thread (make_config fills
    // the shared characterization cache), exactly like ExperimentSuite::run.
    std::vector<SimulationConfig> configs;
    configs.reserve(end - begin);
    for (std::size_t i = begin; i < end; ++i) {
      const SweepCell& cell = *pending[i];
      const std::optional<BenchmarkSpec> workload =
          find_benchmark(cell.workload);
      LIQUID3D_REQUIRE(workload.has_value(),
                       "cell " + std::to_string(cell.index) +
                           ": unknown workload '" + cell.workload + "'");
      try {
        configs.push_back(suite.make_config(cell.scenario, *workload));
      } catch (const ConfigError& e) {
        throw ConfigError("cell " + std::to_string(cell.index) + " ('" +
                          cell.scenario.name + "'): " + e.what());
      }
    }

    std::vector<SimulationResult> results(configs.size());
    if (options.execution == SuiteExecution::kBatched) {
      BatchRunner batch;
      for (SimulationConfig& cfg : configs) batch.add(std::move(cfg));
      results = batch.run();
    } else {
      ThreadPool pool(options.worker_threads == 0
                          ? ThreadPool::default_concurrency()
                          : options.worker_threads);
      pool.parallel_for(0, configs.size(), [&](std::size_t i) {
        Simulator sim(configs[i]);
        results[i] = sim.run();
      });
    }

    // Checkpoint the chunk in shard order, fsync per cell.
    for (std::size_t i = begin; i < end; ++i) {
      journal.append({pending[i]->index, results[i - begin]});
      ++stats.completed;
    }
  }
  return stats;
}

}  // namespace liquid3d
