// supervisor.hpp — process-level supervision for sweep workers.
//
// One supervisor drives K worker processes over the shards of a sweep plan,
// restarting crashed workers (exponential backoff, capped attempts) and
// watchdogging stalled ones.  The liveness signal is the worker's own
// checkpoint journal: a worker that has not grown its journal file within
// `stall_timeout` is presumed wedged (a hung solve, a deadlocked pool) and
// is SIGKILLed, which the restart path then treats like any other crash.
// Killing is safe at any instant by the journal's durability model — a
// restarted worker resumes from the last fsynced record and recomputes at
// most one in-flight chunk, bit-identically.
//
// The supervisor is deliberately policy-free about *why* a worker died:
// exit(0) is success, anything else (nonzero exit, any signal) is a crash.
// Cell-scoped solver failures never surface here — the worker contains
// them as FAILED journal records and still exits 0.
#pragma once

#include <chrono>
#include <cstddef>
#include <string>
#include <vector>

namespace liquid3d {

struct SupervisorOptions {
  /// One worker per shard: shard_paths[i] is run against journal_paths[i].
  std::vector<std::string> shard_paths;
  std::vector<std::string> journal_paths;

  /// argv[0] for spawned workers, typically the sweep_worker binary; the
  /// worker command is
  /// `<binary> run --shard <shard> --journal <journal> [extra_args...]`.
  std::string worker_binary;
  std::vector<std::string> extra_args;

  /// Per-worker argv override for tests (empty inner vector = use the
  /// normal worker command).  Lets supervision logic be exercised with
  /// /bin/true, /bin/false, or a sleeping shell instead of real workers.
  std::vector<std::vector<std::string>> command_override;

  /// Restarts allowed per worker after its first spawn.
  std::size_t max_restarts = 5;
  /// Backoff before restart r (0-based): initial * multiplier^r, capped.
  std::chrono::milliseconds initial_backoff{200};
  double backoff_multiplier = 2.0;
  std::chrono::milliseconds max_backoff{10'000};

  /// SIGKILL a running worker whose journal has not grown for this long
  /// (0 = watchdog off).  Restart accounting treats the kill as a crash.
  std::chrono::milliseconds stall_timeout{0};
  /// Main loop sleep between liveness checks.
  std::chrono::milliseconds poll_interval{50};
};

struct WorkerReport {
  std::string shard_path;
  std::string journal_path;
  bool succeeded = false;     ///< final state was exit(0)
  std::size_t spawns = 0;     ///< processes started (1 + restarts used)
  std::size_t stall_kills = 0;///< watchdog SIGKILLs delivered
  int last_exit_code = 0;     ///< valid when the last death was an exit
  int last_signal = 0;        ///< nonzero when the last death was a signal
};

struct SupervisorResult {
  std::vector<WorkerReport> workers;
  bool all_succeeded = false;
};

/// Backoff before 0-based restart `restart_index` under `options`
/// (pure — exposed for tests).
[[nodiscard]] std::chrono::milliseconds restart_backoff(
    const SupervisorOptions& options, std::size_t restart_index);

/// Spawn, watch, restart, and reap one worker per shard; returns when every
/// worker has either succeeded or exhausted its restarts.  Throws
/// ConfigError on malformed options (arity mismatch, no shards).
SupervisorResult supervise_sweep(const SupervisorOptions& options);

}  // namespace liquid3d
